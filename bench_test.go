// Package repro's root benchmarks regenerate each evaluation figure as a
// testing.B target (one bench family per table/figure; see docs/benchmarking.md's
// experiment index). Benchmarks drive a single closed-loop session through
// a freshly populated cluster and report tx/s; the multi-client peak
// numbers come from cmd/basil-bench.
package repro

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/basil"
	"repro/internal/benchharness"
	"repro/internal/client"
	"repro/internal/txbase"
	"repro/internal/workload"
)

// drive runs b.N transactions of gen through one session of sys.
func drive(b *testing.B, sys benchharness.System, gen workload.Generator) {
	b.Helper()
	sess := sys.NewSession()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	committed := 0
	start := time.Now()
	for i := 0; i < b.N; i++ {
		fn := gen.Next(rng)
		for {
			tx := sess.Begin()
			err := fn.Body(tx)
			if err == nil {
				err = tx.Commit()
			} else {
				tx.Abort()
			}
			if err == nil {
				committed++
				break
			}
			if errors.Is(err, workload.ErrWorkloadAbort) {
				break
			}
		}
	}
	b.StopTimer()
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(committed)/elapsed, "tx/s")
	}
}

func smallGen(kind string) workload.Generator {
	switch kind {
	case "tpcc":
		return workload.NewTPCC(workload.TPCCConfig{
			Warehouses: 2, Districts: 4, CustomersPer: 40, Items: 200, StockOrders: 2,
		})
	case "smallbank":
		return workload.NewSmallbank(workload.SmallbankConfig{Accounts: 10_000})
	case "retwis":
		return workload.NewRetwis(workload.RetwisConfig{Users: 1_000})
	case "rwz":
		return workload.NewYCSB(workload.YCSBConfig{Keys: 10_000, ReadOps: 2, WriteOps: 2, Theta: 0.9})
	default: // rwu
		return workload.NewYCSB(workload.YCSBConfig{Keys: 10_000, ReadOps: 2, WriteOps: 2})
	}
}

// --- Figure 4a/4b: application workloads across all four systems ---

func benchFig4(b *testing.B, wl string, mk func(gen workload.Generator) benchharness.System) {
	gen := smallGen(wl)
	sys := mk(gen)
	defer sys.Close()
	drive(b, sys, gen)
}

func mkBasil(opts basil.Options) func(workload.Generator) benchharness.System {
	return func(gen workload.Generator) benchharness.System {
		return benchharness.NewBasil(gen, opts)
	}
}

func mkTapir(gen workload.Generator) benchharness.System { return benchharness.NewTapir(gen, 1) }

func mkTxBase(kind txbase.Kind) func(workload.Generator) benchharness.System {
	return func(gen workload.Generator) benchharness.System {
		return benchharness.NewTxBase(gen, kind, 1)
	}
}

func BenchmarkFig4a_TPCC_Tapir(b *testing.B) { benchFig4(b, "tpcc", mkTapir) }
func BenchmarkFig4a_TPCC_Basil(b *testing.B) {
	benchFig4(b, "tpcc", mkBasil(basil.Options{F: 1, Shards: 1, BatchSize: 4}))
}
func BenchmarkFig4a_TPCC_TxHotstuff(b *testing.B) {
	benchFig4(b, "tpcc", mkTxBase(txbase.KindHotStuff))
}
func BenchmarkFig4a_TPCC_TxBFTSmart(b *testing.B) { benchFig4(b, "tpcc", mkTxBase(txbase.KindPBFT)) }

func BenchmarkFig4a_Smallbank_Tapir(b *testing.B) { benchFig4(b, "smallbank", mkTapir) }
func BenchmarkFig4a_Smallbank_Basil(b *testing.B) {
	benchFig4(b, "smallbank", mkBasil(basil.Options{F: 1, Shards: 1, BatchSize: 16}))
}
func BenchmarkFig4a_Smallbank_TxHotstuff(b *testing.B) {
	benchFig4(b, "smallbank", mkTxBase(txbase.KindHotStuff))
}
func BenchmarkFig4a_Smallbank_TxBFTSmart(b *testing.B) {
	benchFig4(b, "smallbank", mkTxBase(txbase.KindPBFT))
}

func BenchmarkFig4a_Retwis_Tapir(b *testing.B) { benchFig4(b, "retwis", mkTapir) }
func BenchmarkFig4a_Retwis_Basil(b *testing.B) {
	benchFig4(b, "retwis", mkBasil(basil.Options{F: 1, Shards: 1, BatchSize: 16}))
}
func BenchmarkFig4a_Retwis_TxHotstuff(b *testing.B) {
	benchFig4(b, "retwis", mkTxBase(txbase.KindHotStuff))
}
func BenchmarkFig4a_Retwis_TxBFTSmart(b *testing.B) {
	benchFig4(b, "retwis", mkTxBase(txbase.KindPBFT))
}

// Fig 4b (latency at peak) reuses the same runs; the per-op ns/op the
// benchmarks above report IS the single-session commit latency.

// --- Figure 5a: signatures vs none ---

func BenchmarkFig5a_RWU_Basil(b *testing.B) {
	benchFig4(b, "rwu", mkBasil(basil.Options{F: 1, Shards: 1, BatchSize: 16}))
}
func BenchmarkFig5a_RWU_NoProofs(b *testing.B) {
	benchFig4(b, "rwu", mkBasil(basil.Options{F: 1, Shards: 1, NoSignatures: true}))
}
func BenchmarkFig5a_RWZ_Basil(b *testing.B) {
	benchFig4(b, "rwz", mkBasil(basil.Options{F: 1, Shards: 1, BatchSize: 16}))
}
func BenchmarkFig5a_RWZ_NoProofs(b *testing.B) {
	benchFig4(b, "rwz", mkBasil(basil.Options{F: 1, Shards: 1, NoSignatures: true}))
}

// --- Figure 5b: read quorum sizes on a read-only workload ---

func benchFig5b(b *testing.B, wait int) {
	gen := workload.ReadOnlyYCSB(10_000, 24)
	sys := benchharness.NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 16, ReadWait: wait})
	defer sys.Close()
	drive(b, sys, gen)
}

func BenchmarkFig5b_ReadQuorum1(b *testing.B)   { benchFig5b(b, 1) }
func BenchmarkFig5b_ReadQuorumF1(b *testing.B)  { benchFig5b(b, 2) }
func BenchmarkFig5b_ReadQuorum2F1(b *testing.B) { benchFig5b(b, 3) }

// --- Figure 5c: shard scaling ---

func benchFig5c(b *testing.B, shards int, noSigs bool) {
	gen := workload.NewYCSB(workload.YCSBConfig{Keys: 10_000, ReadOps: 3, WriteOps: 3})
	sys := benchharness.NewBasil(gen, basil.Options{
		F: 1, Shards: shards, BatchSize: 16, NoSignatures: noSigs,
	})
	defer sys.Close()
	drive(b, sys, gen)
}

func BenchmarkFig5c_Shards1(b *testing.B)          { benchFig5c(b, 1, false) }
func BenchmarkFig5c_Shards2(b *testing.B)          { benchFig5c(b, 2, false) }
func BenchmarkFig5c_Shards3(b *testing.B)          { benchFig5c(b, 3, false) }
func BenchmarkFig5c_Shards1_NoProofs(b *testing.B) { benchFig5c(b, 1, true) }
func BenchmarkFig5c_Shards3_NoProofs(b *testing.B) { benchFig5c(b, 3, true) }

// --- Figure 6a: fast path on/off ---

func BenchmarkFig6a_RWU_FastPath(b *testing.B) {
	benchFig4(b, "rwu", mkBasil(basil.Options{F: 1, Shards: 1, BatchSize: 16}))
}
func BenchmarkFig6a_RWU_NoFP(b *testing.B) {
	benchFig4(b, "rwu", mkBasil(basil.Options{F: 1, Shards: 1, BatchSize: 16, DisableFastPath: true}))
}
func BenchmarkFig6a_RWZ_FastPath(b *testing.B) {
	benchFig4(b, "rwz", mkBasil(basil.Options{F: 1, Shards: 1, BatchSize: 16}))
}
func BenchmarkFig6a_RWZ_NoFP(b *testing.B) {
	benchFig4(b, "rwz", mkBasil(basil.Options{F: 1, Shards: 1, BatchSize: 16, DisableFastPath: true}))
}

// --- Figure 6b: reply-batch size sweep ---

func BenchmarkFig6b_BatchSweep(b *testing.B) {
	for _, size := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("b%d", size), func(b *testing.B) {
			benchFig4(b, "rwu", mkBasil(basil.Options{F: 1, Shards: 1, BatchSize: size}))
		})
	}
}

// --- Figure 7: Byzantine client failure modes ---

func benchFig7(b *testing.B, mode client.FaultMode, allowUnvalidated bool) {
	// The uniform workload (the paper's Fig. 7a) keeps conflicts — and
	// hence recovery chains — bounded; the contended Fig. 7b sweep lives
	// in cmd/basil-bench where run windows are wall-clock bounded.
	gen := smallGen("rwu")
	sys := benchharness.NewBasil(gen, basil.Options{
		F: 1, Shards: 1, BatchSize: 16,
		PhaseTimeout:        50 * time.Millisecond,
		AllowUnvalidatedST2: allowUnvalidated,
	})
	defer sys.Close()
	// Two Byzantine clients misbehave continuously in the background.
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < 2; i++ {
		byz := sys.C.NewClient()
		rng := rand.New(rand.NewSource(int64(i) + 55))
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				fn := gen.Next(rng)
				inner := byz.Inner()
				tx := inner.Begin()
				if fn.Body(byzTxAdapter{tx}) == nil {
					inner.CommitFaulty(tx, mode)
				}
			}
		}()
	}
	drive(b, sys, gen)
}

type byzTxAdapter struct{ t *client.Txn }

func (a byzTxAdapter) Read(k string) ([]byte, error) { return a.t.Read(k) }
func (a byzTxAdapter) Write(k string, v []byte)      { a.t.Write(k, v) }

func BenchmarkFig7_StallEarly(b *testing.B)  { benchFig7(b, client.FaultStallEarly, false) }
func BenchmarkFig7_StallLate(b *testing.B)   { benchFig7(b, client.FaultStallLate, false) }
func BenchmarkFig7_EquivReal(b *testing.B)   { benchFig7(b, client.FaultEquivReal, false) }
func BenchmarkFig7_EquivForced(b *testing.B) { benchFig7(b, client.FaultEquivForced, true) }

// --- §6.1 commit-rate table: covered by the drive loop's retry behavior;
// the cmd tool reports rates. Here we pin the fast-path share invariant.

func BenchmarkCommitRates_FastPathShare(b *testing.B) {
	gen := smallGen("smallbank")
	sys := benchharness.NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 16})
	defer sys.Close()
	drive(b, sys, gen)
	b.ReportMetric(sys.FastPathShare(), "fastpath-share")
}
