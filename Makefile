# Tier-1 verification plus formatting/lint gates. `make check` is what CI
# (and every PR) must keep green; it would have caught the missing-go.mod
# breakage this target suite was introduced to prevent.

GO ?= go

.PHONY: check lint fmt vet build test test-race race bench scenarios doc-check linkcheck invariant-check

check: fmt vet build doc-check linkcheck invariant-check test test-race

# All static gates without the test suites — the fast pre-commit loop.
lint: vet doc-check linkcheck invariant-check

fmt:
	@out="$$(gofmt -s -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Every package must carry a package-level doc comment (role plus
# locking/ownership rules); tools/doccheck fails on undocumented ones.
doc-check:
	$(GO) run ./tools/doccheck ./internal ./basil ./cmd ./tools ./examples

# Documentation references — markdown links and anchors, repo paths in
# code spans, command flags — must resolve; tools/linkcheck fails on rot.
linkcheck:
	$(GO) run ./tools/linkcheck README.md ARCHITECTURE.md docs

# Project invariants go vet cannot see — lock discipline, log-before-
# externalize, error/goroutine hygiene, metrics tax and definition sites;
# tools/basilvet fails on unjustified violations (codes BV000-BV008,
# documented in ARCHITECTURE.md "Machine-checked invariants").
invariant-check:
	$(GO) run ./tools/basilvet ./internal/... ./basil ./cmd/...

test:
	$(GO) test ./...

# Transport concurrency (writer goroutines, background dialing, SendAll
# body sharing), client reply collection, the replica's parallel ingest
# pipeline, the striped store, the WAL's group-commit flusher, and the
# metrics record path (lock-free histograms hammered from many
# goroutines) must stay race-clean, along with the quorum tally/verifier
# paths, the bench harness that drives clusters from many client
# goroutines, the wire codec, and the signature pool; the crash-restart
# battery (race-scaled via the raceEnabled build tag) rides along so
# durability regressions are caught locally, as does the tracer (a
# lock-free span ring written by every component at once), the seeded
# fault-schedule determinism regression (internal/faults), and the
# scenario harness's smoke storms (internal/scenario, race-scaled via
# its Tuning). Runs as part of `make check`.
test-race:
	$(GO) test -race ./internal/transport/ ./internal/client/ ./internal/replica/ ./internal/store/ ./internal/wal/ ./internal/metrics/ ./internal/quorum/ ./internal/benchharness/ ./internal/types/ ./internal/cryptoutil/ ./internal/trace/ ./internal/faults/ ./internal/scenario/
	$(GO) test -race ./basil/ -run 'TestCrashRestart|TestRestartReplica|TestOverloadSheds'

# The transport and codec tests are required to pass under the race
# detector (per-connection writer goroutines, reverse-route eviction).
race:
	$(GO) test -race ./internal/transport/ ./internal/types/ ./internal/cryptoutil/ ./basil/ -run 'TestTCP|TestWire|TestBatch'

# Perf trajectory: the parallel-pipeline prepare benchmarks (recorded to
# BENCH_parallel.json at GOMAXPROCS=4 with exactly-twice message delivery;
# see internal/store/parallel_bench_test.go for what each side models),
# the WAL group-commit sweep (recorded to BENCH_wal.json — the fsync
# amortization curve across appender counts and flush windows), the
# checkpoint lifecycle ladder (recorded to BENCH_checkpoint.json —
# steady-state checkpoint cost must stay flat as history grows), the
# admission overload scenario (recorded to BENCH_admission.json — honest
# throughput under a line-rate spammer, unlimited vs bounded intake; see
# internal/benchharness/admission.go), the tracing experiment (recorded
# to BENCH_trace.json — per-stage p50/p99 from a fully sampled cluster
# plus the unsampled-path overhead, which must stay within 2%; see
# internal/benchharness/tracefig.go), and the wire-path benchmarks.
# The production-scenario matrix (internal/scenario): open-loop load,
# chaos storms (crash+WAL restart, slow disk, partition, equivocating
# replica, spam) and explicit SLO verdicts, recorded to
# BENCH_scenarios.json. Each scenario reproduces from its recorded seed
# (`-seed N`). A seeded smoke subset runs inside test/test-race.
scenarios:
	$(GO) run ./cmd/basil-bench -experiment scenarios -json $(CURDIR)/BENCH_scenarios.json

bench:
	$(GO) test ./internal/store/ -run TestWriteParallelBench -parallelbench $(CURDIR)/BENCH_parallel.json -v -count=1
	$(GO) test ./internal/wal/ -run TestWriteWALBench -walbench $(CURDIR)/BENCH_wal.json -v -count=1
	$(GO) test ./internal/replica/ -run TestWriteCheckpointBench -checkpointbench $(CURDIR)/BENCH_checkpoint.json -v -count=1
	$(GO) test ./internal/benchharness/ -run TestWriteAdmissionBench -admissionbench $(CURDIR)/BENCH_admission.json -v -count=1
	$(GO) test ./internal/benchharness/ -run TestWriteTraceBench -tracebench $(CURDIR)/BENCH_trace.json -v -count=1
	GOMAXPROCS=4 $(GO) test ./internal/store/ -run xxx -bench 'BenchmarkPrepare' -benchtime=2000x
	$(GO) test ./internal/wal/ -run xxx -bench BenchmarkWALAppend -benchtime=1000x
	$(GO) test ./internal/types/ -run xxx -bench BenchmarkWireCodec
	$(GO) test ./internal/transport/ -run xxx -bench 'BenchmarkTCPTransport|BenchmarkTCPBroadcast'
