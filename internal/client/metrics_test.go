package client

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestInitMetricsGating pins the metrics-tax latch (basilvet BV005): a
// live registry must arm the timed flag and hand out recording
// histograms, and the Nop registry must disarm it with nil-safe no-op
// handles — the shape Begin/Read/Commit rely on to skip clock reads
// when instrumentation is off without ever dropping samples when it is
// on.
func TestInitMetricsGating(t *testing.T) {
	live := &Client{cfg: Config{ID: 7}}
	live.initMetrics(metrics.NewRegistry())
	if !live.timed {
		t.Fatal("live registry must set timed (hot paths would skip all clock reads)")
	}
	for name, h := range map[string]*metrics.Histogram{
		"hRead": live.hRead, "hCommit": live.hCommit, "hTxn": live.hTxn,
	} {
		if h == nil {
			t.Fatalf("%s is nil on a live registry", name)
		}
	}
	live.hRead.Since(time.Now())
	if got := live.hRead.Count(); got != 1 {
		t.Fatalf("live read histogram recorded %d samples, want 1", got)
	}

	off := &Client{cfg: Config{ID: 8}}
	off.initMetrics(metrics.Nop)
	if off.timed {
		t.Fatal("Nop registry must clear timed (disabled metrics still pay for time.Now)")
	}
	// Nop handles are nil and must stay safe to call: the gated paths
	// skip them, but ungated counters elsewhere rely on nil no-ops.
	off.hRead.Since(time.Now())
	if got := off.hRead.Count(); got != 0 {
		t.Fatalf("nop histogram recorded %d samples, want 0", got)
	}
}
