package client

import (
	"strconv"

	"repro/internal/metrics"
)

// initMetrics is the client's single metric definition site (basilvet
// BV006): every name the client registers lives here, next to the bound
// counters it mirrors. It also latches whether the registry is live so
// hot-path clock reads can be skipped entirely when instrumentation is
// off (BV005 — the metrics-tax rule).
func (c *Client) initMetrics(reg *metrics.Registry) {
	c.reg = reg
	c.timed = reg.Enabled()
	// Every instrument carries a client label so multiple clients can
	// share one registry (and one /metrics page) without name collisions.
	lbl := []string{"client", strconv.Itoa(int(c.cfg.ID))}
	reg.BindCounter("basil_client_tx_begun_total", &c.Stats.TxBegun, lbl...)
	reg.BindCounter("basil_client_tx_committed_total", &c.Stats.TxCommitted, lbl...)
	reg.BindCounter("basil_client_tx_aborted_total", &c.Stats.TxAborted, lbl...)
	reg.BindCounter("basil_client_fastpath_total", &c.Stats.FastPathTaken, lbl...)
	reg.BindCounter("basil_client_slowpath_total", &c.Stats.SlowPathTaken, lbl...)
	reg.BindCounter("basil_client_deps_acquired_total", &c.Stats.DepsAcquired, lbl...)
	reg.BindCounter("basil_client_recoveries_total", &c.Stats.Recoveries, lbl...)
	reg.BindCounter("basil_client_fallback_rounds_total", &c.Stats.FallbackRounds, lbl...)
	reg.BindCounter("basil_client_read_retries_total", &c.Stats.ReadRetries, lbl...)
	reg.BindCounter("basil_client_overloads_total", &c.Stats.Overloads, lbl...)
	c.hRead = reg.Histogram("basil_client_read_latency_seconds", lbl...)
	c.hCommit = reg.Histogram("basil_client_commit_latency_seconds", lbl...)
	c.hTxn = reg.Histogram("basil_client_txn_latency_seconds", lbl...)
}
