package client

import (
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

// Byzantine client behaviors for the fault-injection experiments (paper
// §6.4). These methods exist solely for the benchmark harness: they let a
// client deviate from the protocol in exactly the ways the paper
// evaluates. A correct application never calls them.

// FaultMode selects a misbehavior (paper Fig. 7).
type FaultMode uint8

// Fault modes.
const (
	// FaultNone behaves correctly.
	FaultNone FaultMode = iota
	// FaultStallEarly sends ST1 and then abandons the transaction.
	FaultStallEarly
	// FaultStallLate completes the Prepare phase (including ST2 when
	// needed) but never broadcasts the writeback certificates.
	FaultStallLate
	// FaultEquivReal equivocates conflicting ST2 decisions only when the
	// received votes genuinely allow both a CommitQuorum and an
	// AbortQuorum, then stalls; otherwise it behaves like stall-late.
	FaultEquivReal
	// FaultEquivForced always sends conflicting ST2 decisions (requires
	// replicas running with AllowUnvalidatedST2, modeling the paper's
	// artificial worst case), then stalls.
	FaultEquivForced
)

// CommitFaulty executes the transaction's commit protocol under the given
// fault mode. It returns true if the misbehavior was exercised (for
// equiv-real: whether equivocation was possible).
func (c *Client) CommitFaulty(t *Txn, mode FaultMode) bool {
	if t.finished {
		return false
	}
	t.finished = true
	meta := t.buildMeta()
	if len(meta.Shards) == 0 {
		return false
	}
	id := meta.ID()

	reqID, ch := c.newRequest(c.qc.N() * len(meta.Shards) * 2)
	defer c.endRequest(reqID)
	st1 := &types.ST1Request{ReqID: reqID, ClientID: uint64(c.cfg.ID), Meta: meta}
	for _, s := range meta.Shards {
		c.broadcastShard(s, st1)
	}
	if mode == FaultStallEarly {
		return true // never even look at the votes
	}

	// Gather votes like a correct client would.
	tallies := newTallies(meta.Shards)
	res, err := c.collectVotes(id, tallies, ch, time.Now().Add(c.cfg.RetryTimeout), meta, t.depMetas, nil)
	if err != nil {
		return false
	}

	switch mode {
	case FaultStallLate:
		// Make the decision durable if the slow path requires it, then
		// withhold the writeback so dependents must recover.
		if !res.fast {
			_, _ = c.logDecision(meta, id, res, 0)
		}
		return true
	case FaultEquivReal, FaultEquivForced:
		commitTallies, abortTallies, can := c.equivocationTallies(id, res, meta, mode == FaultEquivForced)
		if !can {
			// Equivocation impossible: fall back to stalling late.
			if !res.fast {
				_, _ = c.logDecision(meta, id, res, 0)
			}
			return false
		}
		c.sendConflictingST2(meta, id, commitTallies, abortTallies)
		return true
	default:
		return false
	}
}

// equivocationTallies determines whether the collected votes allow the
// client to justify both decisions (≥3f+1 commits and ≥f+1 aborts on some
// shard, paper §5), returning tally sets justifying each. With forced set,
// fabricated empty tallies are returned (replicas must be configured to
// skip validation).
func (c *Client) equivocationTallies(id types.TxID, res prepareResult, meta *types.TxMeta, forced bool) (commitT, abortT []types.VoteTally, ok bool) {
	if forced {
		for _, t := range res.tallies {
			vt := t.toVoteTally(id, c.qc)
			vt.Vote = types.VoteCommit
			commitT = append(commitT, vt)
			va := t.toVoteTally(id, c.qc)
			va.Vote = types.VoteAbort
			abortT = append(abortT, va)
		}
		return commitT, abortT, true
	}
	// Real equivocation: every shard must justify commit (CQ), and at
	// least one shard must also justify abort (AQ).
	haveAbort := false
	for _, s := range meta.Shards {
		t := res.tallies[s]
		if len(t.commits) < c.qc.CommitQuorum() {
			return nil, nil, false
		}
		vt := types.VoteTally{TxID: id, ShardID: s, Vote: types.VoteCommit}
		vt.Replies = append(vt.Replies, t.commits...)
		commitT = append(commitT, vt)
		if !haveAbort && len(t.aborts) >= c.qc.AbortQuorum() {
			va := types.VoteTally{TxID: id, ShardID: s, Vote: types.VoteAbort}
			va.Replies = append(va.Replies, t.aborts...)
			abortT = append(abortT, va)
			haveAbort = true
		}
	}
	if !haveAbort {
		return nil, nil, false
	}
	return commitT, abortT, true
}

// sendConflictingST2 splits the logging shard's replicas in half and logs
// Commit on one half, Abort on the other (Figure 3's equivocation), then
// stalls.
func (c *Client) sendConflictingST2(meta *types.TxMeta, id types.TxID, commitT, abortT []types.VoteTally) {
	reqID, _ := c.newRequest(1)
	defer c.endRequest(reqID)
	logShard := meta.LogShard()
	n := c.qc.N()
	commitReq := &types.ST2Request{
		ReqID: reqID, ClientID: uint64(c.cfg.ID), TxID: id, Meta: meta,
		Decision: types.DecisionCommit, Tallies: commitT,
	}
	abortReq := &types.ST2Request{
		ReqID: reqID, ClientID: uint64(c.cfg.ID), TxID: id, Meta: meta,
		Decision: types.DecisionAbort, Tallies: abortT,
	}
	for i := 0; i < n; i++ {
		msg := any(commitReq)
		if i%2 == 1 {
			msg = abortReq
		}
		c.send(transport.ReplicaAddr(logShard, int32(i)), msg)
	}
}
