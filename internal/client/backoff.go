package client

import (
	"time"

	"repro/internal/types"
)

// Load-shed pacing. A replica over its admission cap answers waited-on
// requests with types.Overloaded{RetryAfterMicros} instead of silence
// (replica/admission.go). The client turns that hint into capped
// exponential backoff with jitter, so a shed request retries when capacity
// is plausibly back instead of hammering the replica in a tight loop or
// burning its whole deadline waiting for a reply that was never queued.
//
// All of this runs on the client's own goroutine: Overloaded replies reach
// the collect loops through the pending-request channel (Deliver routes
// them by ReqID), so the hint field and rng need no locking.

const (
	baseRetryDelay = 2 * time.Millisecond
	maxRetryDelay  = 250 * time.Millisecond
	// maxRetryHint caps how far a (possibly Byzantine) replica's
	// RetryAfter can push our pacing — the hint is advisory, and a forged
	// huge value must not park an honest client.
	maxRetryHint = 100 * time.Millisecond
)

// retryDelay computes the pause before retry number attempt (0-based):
// capped exponential growth, floored at the server's RetryAfter hint,
// with ±50% jitter so a cohort of shed clients does not re-arrive in
// lockstep at the same instant the replica drains.
func (c *Client) retryDelay(attempt int, hint time.Duration) time.Duration {
	d := baseRetryDelay
	for i := 0; i < attempt && d < maxRetryDelay; i++ {
		d *= 2
	}
	if d > maxRetryDelay {
		d = maxRetryDelay
	}
	if hint > maxRetryHint {
		hint = maxRetryHint
	}
	if hint > d {
		d = hint
	}
	return d/2 + time.Duration(c.rng.Int63n(int64(d)))
}

// noteOverloaded records a shed reply: counts it and keeps the largest
// outstanding RetryAfter hint for the next pacing decision.
func (c *Client) noteOverloaded(m *types.Overloaded) {
	c.Stats.Overloads.Add(1)
	c.forceTrace(forcedOverload, "overload")
	if h := time.Duration(m.RetryAfterMicros) * time.Microsecond; h > c.retryHint {
		c.retryHint = h
	}
}

// takeRetryAfter returns and clears the recorded RetryAfter hint.
func (c *Client) takeRetryAfter() time.Duration {
	h := c.retryHint
	c.retryHint = 0
	return h
}

// overloadRetry paces resends for a collect loop whose requests were shed.
// The loop selects on C; note() arms the timer on the first Overloaded of
// a cycle, fire() rebroadcasts and re-opens the cycle with exponentially
// longer spacing.
type overloadRetry struct {
	c        *Client
	resend   func()
	attempts int
	timer    *time.Timer
	C        <-chan time.Time
}

func newOverloadRetry(c *Client, resend func()) *overloadRetry {
	return &overloadRetry{c: c, resend: resend}
}

// note handles one Overloaded reply: records the hint and, if no resend is
// already pending, arms the retry timer.
func (o *overloadRetry) note(m *types.Overloaded) {
	o.c.noteOverloaded(m)
	if o.timer == nil {
		o.timer = time.NewTimer(o.c.retryDelay(o.attempts, o.c.takeRetryAfter()))
		o.C = o.timer.C
	}
}

// fire runs the pending resend; call it when C delivers.
func (o *overloadRetry) fire() {
	o.attempts++
	o.timer = nil
	o.C = nil
	if o.resend != nil {
		o.resend()
	}
}

func (o *overloadRetry) stop() {
	if o.timer != nil {
		o.timer.Stop()
	}
}
