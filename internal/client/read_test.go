package client

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/cryptoutil"
	"repro/internal/transport"
	"repro/internal/types"
)

// readHarness wires a real Client to scripted replica handlers over a
// Local transport, so tests can inject byte-exact (and validly signed)
// replies that a cluster of correct replicas would never produce.
type readHarness struct {
	net      *transport.Local
	reg      *cryptoutil.Registry
	signerOf func(shard, replica int32) int32
	cli      *Client
}

const harnessN = 6 // f=1 => n=5f+1

// newReadHarness registers harnessN scripted shard-0 replicas and builds a
// client over them. onRead runs on each replica's dispatch goroutine.
func newReadHarness(t *testing.T, clk clock.Clock, readWait int,
	onRead func(h *readHarness, replica int32, from transport.Addr, req *types.ReadRequest)) *readHarness {
	t.Helper()
	h := &readHarness{
		net: transport.NewLocal(),
		// Two shards' worth of keys: shard 1's replicas have real,
		// verifiable identities even though requests only target shard 0.
		reg:      cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, 2*harnessN, 1),
		signerOf: func(shard, replica int32) int32 { return shard*harnessN + replica },
	}
	t.Cleanup(h.net.Close)
	for i := int32(0); i < harnessN; i++ {
		i := i
		h.net.Register(transport.ReplicaAddr(0, i), transport.HandlerFunc(func(from transport.Addr, msg any) {
			if req, ok := msg.(*types.ReadRequest); ok {
				onRead(h, i, from, req)
			}
		}))
	}
	h.cli = New(Config{
		ID: 1, F: 1, NumShards: 2,
		ShardOf:      func(string) int32 { return 0 },
		Clock:        clk,
		Registry:     h.reg,
		SignerOf:     h.signerOf,
		Net:          h.net,
		ReadWait:     readWait,
		PhaseTimeout: 25 * time.Millisecond,
	})
	return h
}

// sign attaches a direct signature from (shard, replica)'s real key.
func (h *readHarness) sign(shard, replica int32, rr *types.ReadReply) {
	id := h.signerOf(shard, replica)
	rr.Sig = types.Signature{SignerID: id, Direct: h.reg.Signer(id).Sign(rr.Payload())}
}

// TestReadRejectsCrossShardReply is the regression test for cross-shard
// read confusion: a reply correctly signed by a same-index replica of a
// *different* shard must not count toward the read quorum, even though
// its signature verifies under SignerOf(the reply's own ShardID,
// ReplicaID). Before the fix every scripted reply below counted as a
// genesis vote and the read returned the forged value.
func TestReadRejectsCrossShardReply(t *testing.T) {
	evil := []byte("cross-shard-forgery")
	h := newReadHarness(t, clock.NewManual(2000), 0, /* default ReadWait f+1 */
		func(h *readHarness, replica int32, from transport.Addr, req *types.ReadRequest) {
			// The replica answers the shard-0 read with a reply claiming to
			// be from shard 1, signed with shard 1's matching replica key —
			// exactly what a Byzantine shard-1 replica could emit.
			rr := &types.ReadReply{
				ReqID: req.ReqID, Key: req.Key,
				ShardID: 1, ReplicaID: replica,
				Committed: &types.CommittedRead{Value: evil}, // "genesis" value
			}
			h.sign(1, replica, rr)
			h.net.Send(transport.ReplicaAddr(0, replica), from, rr)
		})

	tx := h.cli.Begin()
	val, err := tx.Read("k")
	if err == nil && bytes.Equal(val, evil) {
		t.Fatal("cross-shard reply counted toward the read quorum: forged value returned")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("read ended with (%q, %v), want ErrTimeout once all replies are rejected", val, err)
	}
}

// TestRepeatReadReturnsCachedValue is the repeatable-reads regression
// test: two Read(key) calls in one transaction must return identical
// bytes even when a version newer than the recorded one commits between
// them. Before the fix the second read re-contacted replicas and returned
// the newer value, while ST1 still validated the version recorded by the
// first read.
func TestRepeatReadReturnsCachedValue(t *testing.T) {
	v0 := []byte("original")
	v1 := []byte("advanced")
	served := make([]int, harnessN)                  // per-replica request count; each touched only by its own dispatch goroutine
	h := newReadHarness(t, clock.NewManual(2000), 1, /* Fig. 5b "one read": no cross-validation */
		func(h *readHarness, replica int32, from transport.Addr, req *types.ReadRequest) {
			rr := &types.ReadReply{
				ReqID: req.ReqID, Key: req.Key,
				ShardID: 0, ReplicaID: replica,
			}
			if served[replica] == 0 {
				// First contact: the key is still at its genesis value.
				rr.Committed = &types.CommittedRead{Value: v0}
			} else {
				// A committer advanced the key to version 1500 — still below
				// the transaction's timestamp 2000, so a re-read would
				// legitimately pick it.
				rr.Committed = &types.CommittedRead{
					Value: v1,
					WriterMeta: &types.TxMeta{
						Timestamp: types.Timestamp{Time: 1500, ClientID: 9},
						WriteSet:  []types.WriteEntry{{Key: req.Key, Value: v1}},
					},
					Cert: &types.DecisionCert{Decision: types.DecisionCommit},
				}
			}
			served[replica]++
			h.sign(0, replica, rr)
			h.net.Send(transport.ReplicaAddr(0, replica), from, rr)
		})

	tx := h.cli.Begin()
	first, err := tx.Read("k")
	if err != nil {
		t.Fatalf("first read: %v", err)
	}
	if !bytes.Equal(first, v0) {
		t.Fatalf("first read returned %q, want %q", first, v0)
	}
	second, err := tx.Read("k")
	if err != nil {
		t.Fatalf("second read: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("repeat read diverged: first %q, second %q", first, second)
	}
	if len(tx.reads) != 1 || tx.reads[0].Version.Time != 0 {
		t.Fatalf("read set changed by repeat read: %+v", tx.reads)
	}
}
