package client

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/transport"
	"repro/internal/types"
)

// TestRetryDelayBounds pins the pacing contract: jitter stays within
// [d/2, 3d/2), growth is capped, the server hint floors the delay, and a
// Byzantine hint cannot push it past maxRetryHint.
func TestRetryDelayBounds(t *testing.T) {
	c := &Client{rng: rand.New(rand.NewSource(1))}
	for attempt := 0; attempt < 12; attempt++ {
		want := baseRetryDelay << attempt
		if want > maxRetryDelay || want <= 0 {
			want = maxRetryDelay
		}
		for i := 0; i < 100; i++ {
			d := c.retryDelay(attempt, 0)
			if d < want/2 || d >= want+want/2 {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, want/2, want+want/2)
			}
		}
	}
	// The hint floors the backoff...
	hint := 50 * time.Millisecond
	for i := 0; i < 100; i++ {
		if d := c.retryDelay(0, hint); d < hint/2 {
			t.Fatalf("hinted delay %v below %v", d, hint/2)
		}
	}
	// ...but an adversarial hint is clamped.
	for i := 0; i < 100; i++ {
		if d := c.retryDelay(0, time.Hour); d >= maxRetryHint+maxRetryHint/2 {
			t.Fatalf("forged hint produced %v", d)
		}
	}
}

// TestPrepareBackoffBoundsAttempts is the tight-loop regression test: a
// shard whose replicas answer every ST1 with Overloaded must see a
// *bounded* resend rate — jittered exponential backoff — not a reqs/µs
// hammer, and the client must surface ErrTimeout once its deadline is
// spent rather than hanging.
func TestPrepareBackoffBoundsAttempts(t *testing.T) {
	net := transport.NewLocal()
	defer net.Close()
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeNone, 6, 1)

	var st1Count atomic.Int64
	for i := int32(0); i < 6; i++ {
		ra, idx := transport.ReplicaAddr(0, i), i
		net.Register(ra, transport.HandlerFunc(func(from transport.Addr, msg any) {
			if m, ok := msg.(*types.ST1Request); ok {
				st1Count.Add(1)
				net.Send(ra, from, &types.Overloaded{
					ReqID: m.ReqID, ShardID: 0, ReplicaID: idx, RetryAfterMicros: 2_000,
				})
			}
		}))
	}

	c := New(Config{
		ID: 1, F: 1, NumShards: 1,
		ShardOf:      func(string) int32 { return 0 },
		Registry:     reg,
		SignerOf:     func(s, i int32) int32 { return i },
		Net:          net,
		PhaseTimeout: 50 * time.Millisecond,
		RetryTimeout: 400 * time.Millisecond,
	})

	tx := c.Begin()
	tx.Write("k", []byte("v"))
	start := time.Now()
	err := tx.Commit()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("commit against a refusing shard: %v, want ErrTimeout", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("commit hung %v past its 400ms deadline", elapsed)
	}
	if c.Stats.Overloads.Load() == 0 {
		t.Fatal("no Overloaded reply recorded")
	}

	n := st1Count.Load()
	// 6 replicas per broadcast; the initial broadcast plus at least one
	// backoff resend proves the retry path fired.
	if n < 12 {
		t.Fatalf("only %d ST1s seen; overload resend never happened", n)
	}
	// Bounded: backoff spacing (2,4,8,...ms jittered) plus one resend per
	// 50ms phase tick admits a few dozen broadcasts in 400ms. A tight
	// loop would send thousands.
	if n > 6*40 {
		t.Fatalf("%d ST1s in 400ms: resends are not backing off", n)
	}
}

// TestOverloadedRoutesToPendingRequest: Deliver must route Overloaded by
// ReqID like any other reply so the waiting collect loop sees it.
func TestOverloadedRoutesToPendingRequest(t *testing.T) {
	c := &Client{pending: make(map[uint64]chan any)}
	id, ch := uint64(7), make(chan any, 1)
	c.pending[id] = ch
	c.Deliver(transport.ReplicaAddr(0, 0), &types.Overloaded{ReqID: id, RetryAfterMicros: 99})
	select {
	case m := <-ch:
		if ov, ok := m.(*types.Overloaded); !ok || ov.RetryAfterMicros != 99 {
			t.Fatalf("routed %#v", m)
		}
	default:
		t.Fatal("Overloaded not routed to its pending request")
	}
}
