package client

import (
	"testing"
	"time"

	"repro/internal/types"
)

func TestMarkRecoveryDedupes(t *testing.T) {
	c := &Client{recovered: make(map[types.TxID]time.Time)}
	var id types.TxID
	id[0] = 1
	if !c.markRecovery(id) {
		t.Fatal("first attempt must be allowed")
	}
	if c.markRecovery(id) {
		t.Fatal("immediate retry must be deduplicated")
	}
	var other types.TxID
	other[0] = 2
	if !c.markRecovery(other) {
		t.Fatal("unrelated transaction must not be deduplicated")
	}
	// Expired entries are retried.
	c.recovered[id] = time.Now().Add(-time.Second)
	if !c.markRecovery(id) {
		t.Fatal("expired dedup window must allow a retry")
	}
}

func TestTallyClassificationHelpers(t *testing.T) {
	tallies := newTallies([]int32{0, 1})
	if len(tallies) != 2 || tallies[0].shard != 0 || tallies[1].shard != 1 {
		t.Fatal("tallies not initialized per shard")
	}
	r := &types.ST1Reply{ShardID: 0, ReplicaID: 3, Vote: types.VoteCommit}
	if !tallies[0].add(r) {
		t.Fatal("first vote rejected")
	}
	if tallies[0].add(r) {
		t.Fatal("duplicate replica vote accepted")
	}
	if len(tallies[0].commits) != 1 || len(tallies[0].aborts) != 0 {
		t.Fatal("vote misfiled")
	}
}

func TestTxnMetaSnapshotDeterministic(t *testing.T) {
	txn := &Txn{
		c:        &Client{cfg: Config{ShardOf: func(string) int32 { return 0 }}},
		ts:       types.Timestamp{Time: 9, ClientID: 4},
		readKeys: map[string]bool{},
		writes:   map[string][]byte{},
		deps:     map[types.TxID]types.Dependency{},
		depMetas: map[types.TxID]*types.TxMeta{},
	}
	txn.Write("b", []byte("2"))
	txn.Write("a", []byte("1"))
	txn.reads = append(txn.reads, types.ReadEntry{Key: "r", Version: types.Timestamp{Time: 3}})
	m1 := txn.MetaSnapshot()
	m2 := txn.MetaSnapshot()
	if m1.ID() != m2.ID() {
		t.Fatal("meta snapshot nondeterministic")
	}
	if len(m1.WriteSet) != 2 || m1.WriteSet[0].Key != "b" || m1.WriteSet[1].Key != "a" {
		t.Fatal("write order not preserved")
	}
	if len(m1.Shards) != 1 || m1.Shards[0] != 0 {
		t.Fatalf("shards wrong: %v", m1.Shards)
	}
}

func TestWriteOverwriteKeepsSingleEntry(t *testing.T) {
	txn := &Txn{
		c:        &Client{cfg: Config{ShardOf: func(string) int32 { return 0 }}},
		readKeys: map[string]bool{},
		writes:   map[string][]byte{},
	}
	txn.Write("k", []byte("v1"))
	txn.Write("k", []byte("v2"))
	m := txn.MetaSnapshot()
	if len(m.WriteSet) != 1 || string(m.WriteSet[0].Value) != "v2" {
		t.Fatalf("overwrite produced %v", m.WriteSet)
	}
}
