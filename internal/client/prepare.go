package client

import (
	"time"

	"repro/internal/quorum"
	"repro/internal/types"
)

// shardTally accumulates one shard's stage-1 votes (paper §4.2 step 4).
type shardTally struct {
	shard        int32
	seen         map[int32]bool
	commits      []types.ST1Reply
	aborts       []types.ST1Reply
	conflict     *types.DecisionCert
	conflictMeta *types.TxMeta
	conflictVote *types.ST1Reply
	// blockers are prepared-but-undecided transactions replicas reported
	// as the cause of abort votes; the client finishes them before
	// retrying (§5 invariant).
	blockers map[types.TxID]*types.TxMeta
}

func newTallies(shards []int32) map[int32]*shardTally {
	m := make(map[int32]*shardTally, len(shards))
	for _, s := range shards {
		m[s] = &shardTally{shard: s, seen: make(map[int32]bool),
			blockers: make(map[types.TxID]*types.TxMeta)}
	}
	return m
}

// add records a validated vote; returns false on duplicates.
func (t *shardTally) add(r *types.ST1Reply) bool {
	if t.seen[r.ReplicaID] {
		return false
	}
	t.seen[r.ReplicaID] = true
	if r.Vote == types.VoteCommit {
		t.commits = append(t.commits, *r)
	} else {
		t.aborts = append(t.aborts, *r)
	}
	return true
}

// outcome classifies the tally.
func (t *shardTally) outcome(qc quorum.Config) quorum.ShardOutcome {
	return qc.Classify(len(t.commits), len(t.aborts), t.conflict != nil)
}

// settled reports whether waiting longer can still improve this shard's
// classification toward a fast outcome.
func (t *shardTally) settled(qc quorum.Config) bool {
	o := t.outcome(qc)
	switch o {
	case quorum.OutcomeCommitFast, quorum.OutcomeAbortFast:
		return true
	case quorum.OutcomePending:
		return false
	default:
		return !qc.FastStillPossible(len(t.commits), len(t.aborts))
	}
}

// toVoteTally converts to the wire representation used in ST2 requests.
func (t *shardTally) toVoteTally(id types.TxID, qc quorum.Config) types.VoteTally {
	vt := types.VoteTally{TxID: id, ShardID: t.shard}
	o := t.outcome(qc)
	switch o {
	case quorum.OutcomeCommitFast, quorum.OutcomeCommitSlow:
		vt.Vote = types.VoteCommit
		vt.Replies = append(vt.Replies, t.commits...)
	default:
		vt.Vote = types.VoteAbort
		if t.conflict != nil && t.conflictVote != nil {
			vt.Conflict = t.conflict
			vt.ConflictMeta = t.conflictMeta
			vt.Replies = []types.ST1Reply{*t.conflictVote}
		} else {
			vt.Replies = append(vt.Replies, t.aborts...)
		}
	}
	return vt
}

// acceptST1Reply validates and tallies one ST1 vote. It returns true if
// the reply advanced the tally.
func (c *Client) acceptST1Reply(id types.TxID, tallies map[int32]*shardTally, r *types.ST1Reply) bool {
	t := tallies[r.ShardID]
	if t == nil || r.TxID != id || r.Vote == types.VoteNone {
		return false
	}
	if c.qv.VerifyST1Reply(r, id) != nil {
		return false
	}
	if !t.add(r) {
		return false
	}
	if r.Vote == types.VoteAbort && r.BlockedBy != nil && len(t.blockers) < 4 {
		t.blockers[r.BlockedBy.ID()] = r.BlockedBy
	}
	// Abort-with-conflict fast path (case 5): validate the embedded
	// commit certificate of the conflicting transaction.
	if r.Vote == types.VoteAbort && r.Conflict != nil && r.ConflictMeta != nil && t.conflict == nil {
		if r.ConflictMeta.ID() == r.Conflict.TxID &&
			r.Conflict.Decision == types.DecisionCommit &&
			c.qv.VerifyDecisionCert(r.Conflict, r.ConflictMeta) == nil {
			t.conflict = r.Conflict
			t.conflictMeta = r.ConflictMeta
			t.conflictVote = r
		}
	}
	return true
}

// prepareResult is the aggregate of stage 1.
type prepareResult struct {
	decision types.Decision
	fast     bool // decision durable without ST2
	tallies  map[int32]*shardTally
}

// decide computes the global 2PC outcome from settled tallies: commit iff
// every shard voted commit; fast iff there are no slow shards or a single
// fast-abort shard exists (paper §4.2 step 4).
func (c *Client) decide(tallies map[int32]*shardTally) (prepareResult, error) {
	res := prepareResult{decision: types.DecisionCommit, fast: true, tallies: tallies}
	for _, t := range tallies {
		switch t.outcome(c.qc) {
		case quorum.OutcomePending:
			return res, errPending
		case quorum.OutcomeAbortFast:
			res.decision = types.DecisionAbort
			res.fast = true // a single fast abort V-CERT suffices
			return res, nil
		case quorum.OutcomeAbortSlow:
			res.decision = types.DecisionAbort
			res.fast = false
		case quorum.OutcomeCommitSlow:
			res.fast = false
		case quorum.OutcomeCommitFast:
			// contributes a durable commit vote
		}
	}
	if c.cfg.DisableFastPath {
		res.fast = false
	}
	return res, nil
}

// runPrepare executes stage 1 (vote aggregation), optionally stage 2
// (decision logging) and the writeback phase for meta. depMetas supplies
// writer metadata for this transaction's dependencies so stalled ones can
// be finished (paper §5).
func (c *Client) runPrepare(meta *types.TxMeta, depMetas map[types.TxID]*types.TxMeta) (types.Decision, error) {
	id := meta.ID()
	deadline := time.Now().Add(c.cfg.RetryTimeout)

	reqID, ch := c.newRequest(c.qc.N() * len(meta.Shards) * 2)
	defer c.endRequest(reqID)
	prepStart := c.tracer.Start(c.curTC)
	st1 := &types.ST1Request{ReqID: reqID, ClientID: uint64(c.cfg.ID), Meta: meta, TC: c.curTC}
	for _, s := range meta.Shards {
		c.broadcastShard(s, st1)
	}

	tallies := newTallies(meta.Shards)
	resend := func() {
		// Rebroadcast only to shards that can still improve: settled
		// tallies owe us nothing, and re-asking them is pure load.
		for _, s := range meta.Shards {
			if !tallies[s].settled(c.qc) {
				c.broadcastShard(s, st1)
			}
		}
	}
	res, err := c.collectVotes(id, tallies, ch, deadline, meta, depMetas, resend)
	c.tracer.End(c.curTC, c.traceNode, "client.prepare", c.curRoot, prepStart)
	if err != nil {
		return types.DecisionNone, err
	}

	if res.fast {
		c.Stats.FastPathTaken.Add(1)
		cert := c.buildFastCert(id, meta, res)
		c.writeback(meta, res.decision, cert)
		if res.decision == types.DecisionAbort {
			c.recoverBlockers(tallies)
		}
		return res.decision, nil
	}
	c.Stats.SlowPathTaken.Add(1)
	cert, err := c.logDecision(meta, id, res, 0)
	if err != nil {
		// The logging shard disagreed or starved: recover our own
		// transaction via the fallback.
		dec, _, rerr := c.FinishTransaction(meta)
		if rerr != nil {
			return types.DecisionNone, rerr
		}
		return dec, nil
	}
	c.writeback(meta, res.decision, cert)
	if res.decision == types.DecisionAbort {
		c.recoverBlockers(tallies)
	}
	return res.decision, nil
}

// recoverBlockers finishes the prepared-but-undecided transactions that
// replicas blamed for this abort, so the retry finds them decided. The
// client deduplicates recent recoveries to bound wasted work if Byzantine
// replicas report bogus blockers.
func (c *Client) recoverBlockers(tallies map[int32]*shardTally) {
	done := 0
	for _, t := range tallies {
		for id, meta := range t.blockers {
			if done >= 2 {
				return
			}
			if !c.markRecovery(id) {
				continue
			}
			done++
			c.Stats.Recoveries.Add(1)
			_, _, _ = c.FinishTransaction(meta)
		}
	}
}

// collectVotes gathers ST1 replies until every shard settles. On phase
// timeouts it recovers stalled dependencies, rebroadcasts to unsettled
// shards and keeps waiting (replicas queue our vote request and answer
// once their dependency wait resolves). Overloaded shed replies schedule
// a jittered backoff resend instead of waiting out the phase timer.
func (c *Client) collectVotes(id types.TxID, tallies map[int32]*shardTally, ch chan any,
	deadline time.Time, meta *types.TxMeta, depMetas map[types.TxID]*types.TxMeta, resend func()) (prepareResult, error) {

	retry := newOverloadRetry(c, resend)
	defer retry.stop()
	recovered := false
	var fastTimer *time.Timer
	var fastC <-chan time.Time
	fastExpired := false
	phase := time.NewTimer(c.cfg.PhaseTimeout)
	defer phase.Stop()
	defer func() {
		if fastTimer != nil {
			fastTimer.Stop()
		}
	}()

	ready := func() (prepareResult, bool) {
		allSettled := true
		anyPending := false
		for _, t := range tallies {
			if !t.settled(c.qc) {
				allSettled = false
			}
			if t.outcome(c.qc) == quorum.OutcomePending {
				anyPending = true
			}
		}
		if allSettled || (fastExpired && !anyPending) {
			res, err := c.decide(tallies)
			if err == nil {
				return res, true
			}
		}
		if !anyPending && fastTimer == nil && !allSettled {
			// Classifiable but not fast-settled: give stragglers a short
			// window to complete the fast path, then decide.
			fastTimer = time.NewTimer(c.cfg.FastPathWait)
			fastC = fastTimer.C
		}
		return prepareResult{}, false
	}

	for {
		if res, ok := ready(); ok {
			return res, nil
		}
		select {
		case m := <-ch:
			switch r := m.(type) {
			case *types.ST1Reply:
				if r.RPKind != types.RPCert && r.ST2R == nil {
					c.acceptST1Reply(id, tallies, r)
				}
			case *types.Overloaded:
				retry.note(r)
			}
		case <-retry.C:
			retry.fire()
		case <-fastC:
			fastExpired = true
			fastC = nil
		case <-phase.C:
			if time.Now().After(deadline) {
				return prepareResult{}, ErrTimeout
			}
			if !recovered && len(depMetas) > 0 {
				recovered = true
				c.Stats.Recoveries.Add(1)
				for _, dm := range depMetas {
					// Finishing a stalled dependency unblocks the replicas
					// deferring our vote (paper §5).
					_, _, _ = c.FinishTransaction(dm)
				}
			}
			if resend != nil {
				resend() // replies may have been shed silently at the hard cap
			}
			phase.Reset(c.cfg.PhaseTimeout)
		}
	}
}

// buildFastCert assembles the fast-path decision certificate: per-shard
// fast commit V-CERTs, or a single fast-abort / conflict V-CERT.
func (c *Client) buildFastCert(id types.TxID, meta *types.TxMeta, res prepareResult) *types.DecisionCert {
	cert := &types.DecisionCert{TxID: id, Decision: res.decision}
	if res.decision == types.DecisionCommit {
		for _, s := range meta.Shards {
			t := res.tallies[s]
			cert.Shards = append(cert.Shards, types.ShardCert{
				ShardID: s, Kind: types.CertST1Fast, Vote: types.VoteCommit,
				ST1Rs: append([]types.ST1Reply(nil), t.commits...),
			})
		}
		return cert
	}
	for _, t := range res.tallies {
		switch {
		case t.conflict != nil && t.conflictVote != nil:
			cert.Shards = []types.ShardCert{{
				ShardID: t.shard, Kind: types.CertConflict, Vote: types.VoteAbort,
				ST1Rs:    []types.ST1Reply{*t.conflictVote},
				Conflict: t.conflict, ConflictMeta: t.conflictMeta,
			}}
			return cert
		case len(t.aborts) >= c.qc.FastAbort():
			cert.Shards = []types.ShardCert{{
				ShardID: t.shard, Kind: types.CertST1Fast, Vote: types.VoteAbort,
				ST1Rs: append([]types.ST1Reply(nil), t.aborts...),
			}}
			return cert
		}
	}
	// Unreachable when res.fast held; return a defensive empty abort cert.
	return cert
}

// logDecision runs stage 2: store the decision on the logging shard and
// assemble the V-CERT_Slog from n-f matching acknowledgements.
func (c *Client) logDecision(meta *types.TxMeta, id types.TxID, res prepareResult, view uint64) (*types.DecisionCert, error) {
	tallies := make([]types.VoteTally, 0, len(res.tallies))
	for _, t := range res.tallies {
		tallies = append(tallies, t.toVoteTally(id, c.qc))
	}
	reqID, ch := c.newRequest(c.qc.N() * 2)
	defer c.endRequest(reqID)
	st2Start := c.tracer.Start(c.curTC)
	st2 := &types.ST2Request{
		ReqID: reqID, ClientID: uint64(c.cfg.ID), TxID: id, Meta: meta,
		Decision: res.decision, Tallies: tallies, View: view, TC: c.curTC,
	}
	c.broadcastShard(meta.LogShard(), st2)
	st2rs, err := c.collectST2(id, meta.LogShard(), res.decision, ch,
		func() { c.broadcastShard(meta.LogShard(), st2) })
	c.tracer.End(c.curTC, c.traceNode, "client.st2", c.curRoot, st2Start)
	if err != nil {
		return nil, err
	}
	vote := types.VoteCommit
	if res.decision == types.DecisionAbort {
		vote = types.VoteAbort
	}
	return &types.DecisionCert{
		TxID: id, Decision: res.decision,
		Shards: []types.ShardCert{{
			ShardID: meta.LogShard(), Kind: types.CertST2Logged, Vote: vote, ST2Rs: st2rs,
		}},
	}, nil
}

// collectST2 waits for n-f ST2 acknowledgements from the logging shard
// matching the expected decision (and a single decision view). A
// mismatching ST2R means another client (or an equivocator) raced us:
// surface an error so the caller falls back to recovery. Replies from any
// shard but logShard are rejected — signatures bind a reply to its own
// shard's replica, not to the shard this request logged on (same
// cross-shard confusion as the read path).
func (c *Client) collectST2(id types.TxID, logShard int32, want types.Decision, ch chan any,
	resend func()) ([]types.ST2Reply, error) {
	byKey := make(map[uint64][]types.ST2Reply) // viewDecision -> replies
	seen := make(map[int32]bool)
	mismatch := false
	retry := newOverloadRetry(c, resend)
	defer retry.stop()
	deadline := time.NewTimer(c.cfg.PhaseTimeout)
	defer deadline.Stop()
	for {
		select {
		case <-retry.C:
			retry.fire()
			continue
		case m := <-ch:
			if ov, isOv := m.(*types.Overloaded); isOv {
				retry.note(ov)
				continue
			}
			r, ok := m.(*types.ST2Reply)
			if !ok {
				// ST1Reply stragglers from stage 1 reuse the channel space;
				// RPCert replies are handled by recovery paths.
				continue
			}
			if r.TxID != id || r.ShardID != logShard || seen[r.ReplicaID] {
				continue
			}
			if c.qv.VerifyST2Reply(r, id) != nil {
				continue
			}
			seen[r.ReplicaID] = true
			if r.Decision != want {
				mismatch = true
				continue
			}
			byKey[r.ViewDecision] = append(byKey[r.ViewDecision], *r)
			if len(byKey[r.ViewDecision]) >= c.qc.LogQuorum() {
				return byKey[r.ViewDecision], nil
			}
		case <-deadline.C:
			if mismatch {
				return nil, errPending
			}
			return nil, ErrTimeout
		}
	}
}

// writeback broadcasts the decision certificate to every participant shard
// (paper §4.3 step 1); it is asynchronous and needs no acknowledgement.
func (c *Client) writeback(meta *types.TxMeta, dec types.Decision, cert *types.DecisionCert) {
	wbStart := c.tracer.Start(c.curTC)
	wb := &types.WritebackRequest{
		ClientID: uint64(c.cfg.ID), TxID: cert.TxID, Decision: dec, Cert: cert, Meta: meta,
		TC: c.curTC,
	}
	for _, s := range meta.Shards {
		c.broadcastShard(s, wb)
	}
	c.tracer.End(c.curTC, c.traceNode, "client.writeback", c.curRoot, wbStart)
}
