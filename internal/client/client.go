// Package client implements the Basil client: it drives interactive
// transactions through the Execution, Prepare and Writeback phases (paper
// §4), validates replica replies and certificates, and runs the recovery
// protocol for stalled transactions (paper §5).
//
// Ownership: a Client is the paper's closed-loop actor — one transaction
// at a time, driven by one goroutine; run one Client per concurrent
// actor. Internally the reply mux (pending map) is mutex-guarded because
// transport dispatchers deliver concurrently, and Stats fields are
// atomics bound into the metrics registry. A Txn belongs to its Client's
// goroutine and must not be shared.
package client

import (
	"errors"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/types"
)

// Errors surfaced to applications.
var (
	// ErrAborted reports that the transaction failed serializability
	// validation (application may retry).
	ErrAborted = errors.New("basil: transaction aborted")
	// ErrTimeout reports that a protocol phase starved even after
	// recovery; only possible under severe partitions.
	ErrTimeout = errors.New("basil: protocol timeout")
	// ErrConflictPending is returned internally when votes cannot yet be
	// classified.
	errPending = errors.New("basil: tally pending")
)

// Config parameterizes a client.
type Config struct {
	ID        int32 // client id; also the timestamp ClientID
	F         int
	NumShards int32
	// ShardOf maps keys to shards. Must agree across all nodes.
	ShardOf func(key string) int32

	Clock    clock.Clock
	Registry *cryptoutil.Registry
	SignerOf quorum.SignerOf
	Net      transport.Network

	// ReadWait is how many read replies the client waits for before
	// choosing a version: 1, f+1 (default) or 2f+1 (paper Fig. 5b). The
	// broadcast fans out to ReadWait+f replicas.
	ReadWait int
	// DisableFastPath forces the ST2 logging stage even for unanimous
	// shards (Basil-NoFP, Fig. 6a).
	DisableFastPath bool
	// FastPathWait bounds the extra time spent waiting for unanimity
	// after a classifiable quorum arrives.
	FastPathWait time.Duration
	// PhaseTimeout bounds each protocol phase before recovery kicks in.
	PhaseTimeout time.Duration
	// RetryTimeout bounds a whole commit attempt.
	RetryTimeout time.Duration
	// VerifyPool, if non-nil, parallelizes the signature checks of
	// multi-reply validations (tallies, certificates) across its workers —
	// the same bounded pool machinery the replica ingest path uses. Pools
	// may be shared between clients; verification falls back inline when
	// the pool is busy.
	VerifyPool *cryptoutil.VerifyPool

	// Metrics is the registry the client registers its instruments on:
	// bound Stats counters plus read-op, commit-op and end-to-end
	// transaction latency histograms. Nil creates a private registry
	// (exposed via Client.Metrics); metrics.Nop disables instrumentation.
	Metrics *metrics.Registry

	// Tracer, when non-nil, samples transactions at Begin and records the
	// client-side lifecycle spans; the sampling decision rides every
	// request as types.TraceContext. Transactions that hit an Overloaded
	// shed, recovery, or the fallback are force-captured regardless of the
	// sampling rate.
	Tracer *trace.Tracer
}

// Stats counts client-side protocol events.
type Stats struct {
	TxBegun        atomic.Uint64
	TxCommitted    atomic.Uint64
	TxAborted      atomic.Uint64
	FastPathTaken  atomic.Uint64
	SlowPathTaken  atomic.Uint64
	DepsAcquired   atomic.Uint64
	Recoveries     atomic.Uint64
	FallbackRounds atomic.Uint64
	ReadRetries    atomic.Uint64
	// Overloads counts explicit load-shed (types.Overloaded) replies; the
	// client answers them with jittered backoff (backoff.go).
	Overloads atomic.Uint64
}

// Client is a Basil client. It is safe for use by one goroutine at a time
// (the paper's closed-loop model); run one Client per concurrent actor.
type Client struct {
	cfg  Config
	qc   quorum.Config
	addr transport.Addr
	qv   *quorum.Verifier
	sv   *cryptoutil.SigVerifier

	reqSeq atomic.Uint64
	// mu guards pending and recovered; held only for map bookkeeping,
	// never across a network wait.
	mu      sync.Mutex
	pending map[uint64]chan any
	// recent recovery attempts, for deduplication.
	recovered map[types.TxID]time.Time

	// Retry pacing state (backoff.go); both are touched only from the
	// client's own goroutine, per the one-goroutine-per-Client contract.
	rng       *rand.Rand
	retryHint time.Duration

	Stats Stats

	// reg is the metrics registry; the histograms are nil-safe no-op
	// handles when instrumentation is off (metrics.Nop). timed caches
	// reg.Enabled() so hot paths skip clock reads entirely when
	// instrumentation is off (the metrics-tax rule, basilvet BV005).
	reg     *metrics.Registry
	timed   bool
	hRead   *metrics.Histogram // one network Read op
	hCommit *metrics.Histogram // one Commit call (prepare + writeback)
	hTxn    *metrics.Histogram // end-to-end Begin -> successful commit

	// Tracing state for the current transaction. Plain fields are safe
	// under the one-goroutine-per-Client contract: every collect loop and
	// note runs on the client's own goroutine (Deliver only forwards into
	// channels). tracer is nil-safe throughout.
	tracer    *trace.Tracer
	traceNode string             // span node label, e.g. "c7"
	curTC     types.TraceContext // current transaction's wire context
	curRoot   uint64             // root span id from tracer.Begin
	curBegun  int64              // root span start anchor (tracer clock)
	forced    uint8              // forcedX bits already recorded this txn
}

// Forced-capture reason bits: each reason is recorded at most once per
// transaction, however many sheds or fallback rounds it hits.
const (
	forcedOverload uint8 = 1 << iota
	forcedRecovery
	forcedFallback
)

// forceTrace upgrades the current transaction's trace on a tail event
// (shed, recovery, fallback) so it is captured regardless of sampling.
func (c *Client) forceTrace(bit uint8, reason string) {
	if c.tracer == nil || c.curTC.TraceID == 0 || c.forced&bit != 0 {
		return
	}
	c.forced |= bit
	c.tracer.Force(&c.curTC, c.traceNode, reason)
}

// Metrics returns the client's registry (snapshot it in tests, serve it
// from an operator endpoint, or diff it across a bench window).
func (c *Client) Metrics() *metrics.Registry { return c.reg }

// markRecovery reports whether the client should attempt to finish id now
// (it has not tried within the dedup window).
func (c *Client) markRecovery(id types.TxID) bool {
	const window = 100 * time.Millisecond
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.recovered[id]; ok && now.Sub(t) < window {
		return false
	}
	if len(c.recovered) > 4096 {
		c.recovered = make(map[types.TxID]time.Time)
	}
	c.recovered[id] = now
	return true
}

// New constructs and registers a client on cfg.Net.
func New(cfg Config) *Client {
	if cfg.ReadWait <= 0 {
		cfg.ReadWait = cfg.F + 1
	}
	if cfg.FastPathWait <= 0 {
		cfg.FastPathWait = 2 * time.Millisecond
	}
	if cfg.PhaseTimeout <= 0 {
		cfg.PhaseTimeout = 250 * time.Millisecond
	}
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 5 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	c := &Client{
		cfg:       cfg,
		qc:        quorum.Config{F: cfg.F},
		addr:      transport.ClientAddr(cfg.ID),
		sv:        cryptoutil.NewSigVerifier(cfg.Registry, 4096),
		pending:   make(map[uint64]chan any),
		recovered: make(map[types.TxID]time.Time),
		// Deterministic per-client seed: distinct clients jitter apart,
		// and a test run's pacing is reproducible.
		rng: rand.New(rand.NewSource(int64(cfg.ID)*2654435761 + 1)),
	}
	c.qv = &quorum.Verifier{Cfg: c.qc, Sigs: c.sv, SignerOf: cfg.SignerOf, Pool: cfg.VerifyPool}
	c.tracer = cfg.Tracer
	c.traceNode = "c" + strconv.FormatInt(int64(cfg.ID), 10)
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c.initMetrics(reg)
	cfg.Net.Register(c.addr, c)
	return c
}

// Addr returns the client's transport address.
func (c *Client) Addr() transport.Addr { return c.addr }

// ID returns the client id.
func (c *Client) ID() int32 { return c.cfg.ID }

// Deliver implements transport.Handler: replies are routed to the pending
// request they answer.
func (c *Client) Deliver(_ transport.Addr, msg any) {
	var reqID uint64
	switch m := msg.(type) {
	case *types.ReadReply:
		reqID = m.ReqID
	case *types.ST1Reply:
		reqID = m.ReqID
	case *types.ST2Reply:
		reqID = m.ReqID
	case *types.Overloaded:
		reqID = m.ReqID
	default:
		return
	}
	c.mu.Lock()
	ch := c.pending[reqID]
	c.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- msg:
	default: // request already satisfied; drop the straggler
	}
}

// newRequest allocates a reply channel for a fresh request id.
func (c *Client) newRequest(buf int) (uint64, chan any) {
	id := c.reqSeq.Add(1)
	ch := make(chan any, buf)
	c.mu.Lock()
	c.pending[id] = ch
	c.mu.Unlock()
	return id, ch
}

// endRequest retires a request id.
func (c *Client) endRequest(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// replicasOf enumerates shard s's replica addresses.
func (c *Client) replicasOf(s int32) []transport.Addr {
	return transport.ShardAddrs(s, c.qc.N())
}

// send transmits msg to one replica.
func (c *Client) send(to transport.Addr, msg any) {
	c.cfg.Net.Send(c.addr, to, msg)
}

// broadcastShard sends msg to every replica of shard s, encoding the
// body once on wire transports.
func (c *Client) broadcastShard(s int32, msg any) {
	c.cfg.Net.SendAll(c.addr, c.replicasOf(s), msg)
}

// now returns the client's current timestamp time component.
func (c *Client) now() uint64 { return c.cfg.Clock.NowMicros() }
