package client

import (
	"time"

	"repro/internal/types"
)

// FinishTransaction drives a stalled transaction (typically somebody
// else's, acquired as a dependency) to a decision (paper §5).
//
// Common case: a Recovery Prepare (RP) resend of ST1 lets the client
// fast-forward from whatever artifacts replicas hold — stored votes, a
// logged ST2 decision, or a full certificate — and finish the transaction
// on the normal path. Divergent case: replicas of the logging shard hold
// conflicting logged decisions (an equivocating client, or concurrent
// recoverers); the client then drives fallback leader election rounds
// until n-f replicas converge on one decision.
func (c *Client) FinishTransaction(meta *types.TxMeta) (types.Decision, *types.DecisionCert, error) {
	id := meta.ID()
	deadline := time.Now().Add(c.cfg.RetryTimeout)

	// Recovery is a tail event by definition: force-capture the invoking
	// transaction's trace before the RP broadcast so the recovery requests
	// already carry the upgraded context.
	c.forceTrace(forcedRecovery, "recovery")
	if rcStart := c.tracer.Start(c.curTC); rcStart != 0 {
		defer func() { c.tracer.End(c.curTC, c.traceNode, "client.recovery", c.curRoot, rcStart) }()
	}

	// --- Common case: RP broadcast. ---
	reqID, ch := c.newRequest(c.qc.N() * (len(meta.Shards) + 1) * 2)
	rp := &types.ST1Request{ReqID: reqID, ClientID: uint64(c.cfg.ID), Meta: meta, Recovery: true, TC: c.curTC}
	for _, s := range meta.Shards {
		c.broadcastShard(s, rp)
	}

	tallies := newTallies(meta.Shards)
	st2rs := make(map[int32]types.ST2Reply) // logging-shard replica -> latest signed view
	divergent := false

	rpResend := func() {
		for _, s := range meta.Shards {
			if !tallies[s].settled(c.qc) {
				c.broadcastShard(s, rp)
			}
		}
	}
	dec, cert, done := c.collectRecovery(id, meta, ch, tallies, st2rs, &divergent, rpResend)
	c.endRequest(reqID)
	if done {
		c.writeback(meta, dec, cert)
		return dec, cert, nil
	}

	// If stage-1 votes classified, try to finish on the normal path by
	// logging the decision ourselves.
	if !divergent {
		if res, err := c.decide(tallies); err == nil {
			if res.fast {
				cert := c.buildFastCert(id, meta, res)
				c.writeback(meta, res.decision, cert)
				return res.decision, cert, nil
			}
			cert, err := c.logDecision(meta, id, res, 0)
			if err == nil {
				c.writeback(meta, res.decision, cert)
				return res.decision, cert, nil
			}
			divergent = true // logging shard disagreed: fall through
		}
	}

	// --- Divergent case: fallback leader election rounds. ---
	var lastRes *prepareResult
	if res, err := c.decide(tallies); err == nil {
		lastRes = &res
	}
	for round := 0; round < c.qc.N()+2; round++ {
		if round > 0 || c.retryHint > 0 {
			// Pace the rounds: jittered backoff, floored at any RetryAfter
			// hint an overloaded logging replica handed us. Back-to-back
			// rounds against a saturated shard only feed the overload.
			time.Sleep(c.retryDelay(round, c.takeRetryAfter()))
		}
		if time.Now().After(deadline) {
			return types.DecisionNone, nil, ErrTimeout
		}
		c.Stats.FallbackRounds.Add(1)
		c.forceTrace(forcedFallback, "fallback")
		reqID, ch := c.newRequest(c.qc.N() * 4)
		inv := &types.InvokeFB{
			ReqID: reqID, ClientID: uint64(c.cfg.ID), TxID: id, Meta: meta, TC: c.curTC,
		}
		for _, r := range st2rs {
			inv.ST2Rs = append(inv.ST2Rs, r)
		}
		if lastRes != nil {
			inv.Decision = lastRes.decision
			for _, t := range lastRes.tallies {
				inv.Tallies = append(inv.Tallies, t.toVoteTally(id, c.qc))
			}
		}
		c.broadcastShard(meta.LogShard(), inv)

		dec, cert, done := c.collectFallback(id, meta, ch, st2rs,
			func() { c.broadcastShard(meta.LogShard(), inv) })
		c.endRequest(reqID)
		if done {
			c.writeback(meta, dec, cert)
			return dec, cert, nil
		}
	}
	return types.DecisionNone, nil, ErrTimeout
}

// collectRecovery gathers RP replies. It returns done=true with a decision
// and certificate when the transaction can be finished immediately (a
// certificate surfaced, or n-f matching logged decisions exist).
func (c *Client) collectRecovery(id types.TxID, meta *types.TxMeta, ch chan any,
	tallies map[int32]*shardTally, st2rs map[int32]types.ST2Reply, divergent *bool,
	resend func()) (types.Decision, *types.DecisionCert, bool) {

	retry := newOverloadRetry(c, resend)
	defer retry.stop()
	deadline := time.NewTimer(c.cfg.PhaseTimeout)
	defer deadline.Stop()
	matching := make(map[uint64]map[int32]types.ST2Reply) // viewDecision -> replica -> reply
	decisionsSeen := make(map[types.Decision]bool)

	tryST2Quorum := func() (types.Decision, *types.DecisionCert, bool) {
		for _, byReplica := range matching {
			var dec types.Decision
			replies := make([]types.ST2Reply, 0, len(byReplica))
			for _, r := range byReplica {
				dec = r.Decision
				replies = append(replies, r)
			}
			// Group by decision within the view.
			byDec := map[types.Decision][]types.ST2Reply{}
			for _, r := range replies {
				byDec[r.Decision] = append(byDec[r.Decision], r)
			}
			for d, rs := range byDec {
				if len(rs) >= c.qc.LogQuorum() {
					vote := types.VoteCommit
					if d == types.DecisionAbort {
						vote = types.VoteAbort
					}
					cert := &types.DecisionCert{
						TxID: id, Decision: d,
						Shards: []types.ShardCert{{
							ShardID: meta.LogShard(), Kind: types.CertST2Logged, Vote: vote, ST2Rs: rs,
						}},
					}
					return d, cert, true
				}
			}
			_ = dec
		}
		return types.DecisionNone, nil, false
	}

	for {
		select {
		case <-retry.C:
			retry.fire()
		case m := <-ch:
			switch r := m.(type) {
			case *types.Overloaded:
				retry.note(r)
				continue
			case *types.ST1Reply:
				switch r.RPKind {
				case types.RPCert:
					if r.Cert != nil && r.CertMeta != nil && r.CertMeta.ID() == id &&
						c.qv.VerifyDecisionCert(r.Cert, r.CertMeta) == nil {
						return r.Cert.Decision, r.Cert, true
					}
				case types.RPDecision:
					// Logged decisions are meaningful only from the logging
					// shard; a signed ST2R from another shard's replica must
					// not enter the view/quorum bookkeeping (cross-shard
					// confusion, as on the read path).
					if r.ST2R != nil && r.ST2R.ShardID == meta.LogShard() &&
						c.qv.VerifyST2Reply(r.ST2R, id) == nil {
						c.noteST2R(*r.ST2R, st2rs, matching, decisionsSeen)
						if len(decisionsSeen) > 1 {
							*divergent = true
						}
						if d, cert, ok := tryST2Quorum(); ok {
							return d, cert, true
						}
					}
				default:
					c.acceptST1Reply(id, tallies, r)
				}
			case *types.ST2Reply:
				if r.ShardID == meta.LogShard() && c.qv.VerifyST2Reply(r, id) == nil {
					c.noteST2R(*r, st2rs, matching, decisionsSeen)
					if len(decisionsSeen) > 1 {
						*divergent = true
					}
					if d, cert, ok := tryST2Quorum(); ok {
						return d, cert, true
					}
				}
			}
			// Fast exit when votes alone already classify every shard.
			settled := true
			for _, t := range tallies {
				if !t.settled(c.qc) {
					settled = false
					break
				}
			}
			if settled && len(st2rs) == 0 {
				return types.DecisionNone, nil, false
			}
		case <-deadline.C:
			if len(st2rs) > 0 {
				*divergent = true
			}
			return types.DecisionNone, nil, false
		}
	}
}

// noteST2R records a signed logged decision for view evidence and quorum
// matching.
func (c *Client) noteST2R(r types.ST2Reply, st2rs map[int32]types.ST2Reply,
	matching map[uint64]map[int32]types.ST2Reply, decisionsSeen map[types.Decision]bool) {
	prev, ok := st2rs[r.ReplicaID]
	if !ok || prev.ViewCurrent < r.ViewCurrent {
		st2rs[r.ReplicaID] = r
	}
	byReplica := matching[r.ViewDecision]
	if byReplica == nil {
		byReplica = make(map[int32]types.ST2Reply)
		matching[r.ViewDecision] = byReplica
	}
	byReplica[r.ReplicaID] = r
	decisionsSeen[r.Decision] = true
}

// collectFallback waits for post-election ST2 replies and assembles a
// logging-shard certificate from n-f replies matching in decision and
// decision view.
func (c *Client) collectFallback(id types.TxID, meta *types.TxMeta, ch chan any,
	st2rs map[int32]types.ST2Reply, resend func()) (types.Decision, *types.DecisionCert, bool) {

	retry := newOverloadRetry(c, resend)
	defer retry.stop()
	deadline := time.NewTimer(c.cfg.PhaseTimeout)
	defer deadline.Stop()
	type key struct {
		dec  types.Decision
		view uint64
	}
	groups := make(map[key]map[int32]types.ST2Reply)
	for {
		select {
		case <-retry.C:
			retry.fire()
		case m := <-ch:
			if ov, isOv := m.(*types.Overloaded); isOv {
				retry.note(ov)
				continue
			}
			r, ok := m.(*types.ST2Reply)
			if !ok {
				if s1, isS1 := m.(*types.ST1Reply); isS1 && s1.RPKind == types.RPCert &&
					s1.Cert != nil && s1.CertMeta != nil && s1.CertMeta.ID() == id &&
					c.qv.VerifyDecisionCert(s1.Cert, s1.CertMeta) == nil {
					return s1.Cert.Decision, s1.Cert, true
				}
				continue
			}
			if r.TxID != id || r.ShardID != meta.LogShard() || c.qv.VerifyST2Reply(r, id) != nil {
				continue
			}
			if prev, ok := st2rs[r.ReplicaID]; !ok || prev.ViewCurrent < r.ViewCurrent {
				st2rs[r.ReplicaID] = *r
			}
			k := key{r.Decision, r.ViewDecision}
			g := groups[k]
			if g == nil {
				g = make(map[int32]types.ST2Reply)
				groups[k] = g
			}
			g[r.ReplicaID] = *r
			if len(g) >= c.qc.LogQuorum() {
				replies := make([]types.ST2Reply, 0, len(g))
				for _, rr := range g {
					replies = append(replies, rr)
				}
				vote := types.VoteCommit
				if k.dec == types.DecisionAbort {
					vote = types.VoteAbort
				}
				cert := &types.DecisionCert{
					TxID: id, Decision: k.dec,
					Shards: []types.ShardCert{{
						ShardID: meta.LogShard(), Kind: types.CertST2Logged, Vote: vote, ST2Rs: replies,
					}},
				}
				return k.dec, cert, true
			}
		case <-deadline.C:
			return types.DecisionNone, nil, false
		}
	}
}
