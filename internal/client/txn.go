package client

import (
	"sort"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

// Txn is one interactive transaction (paper §4.1). Reads go to replicas;
// writes buffer locally until Commit. A Txn is single-goroutine.
type Txn struct {
	c  *Client
	ts types.Timestamp
	// begun anchors the end-to-end latency histogram (Begin -> commit).
	begun time.Time

	reads    []types.ReadEntry
	readKeys map[string]bool
	// readVals caches the value chosen for each read key so repeat reads
	// return exactly the bytes whose version is in the read set — never a
	// newer version committed between the two reads.
	readVals   map[string][]byte
	writes     map[string][]byte
	writeOrder []string
	deps       map[types.TxID]types.Dependency
	depMetas   map[types.TxID]*types.TxMeta

	finished bool
}

// Begin starts a transaction with a client-chosen timestamp (paper §4.1).
func (c *Client) Begin() *Txn {
	c.Stats.TxBegun.Add(1)
	t := &Txn{
		c:        c,
		ts:       types.Timestamp{Time: c.now(), ClientID: uint64(c.cfg.ID)},
		readKeys: make(map[string]bool),
		readVals: make(map[string][]byte),
		writes:   make(map[string][]byte),
		deps:     make(map[types.TxID]types.Dependency),
		depMetas: make(map[types.TxID]*types.TxMeta),
	}
	if c.timed {
		t.begun = time.Now()
	}
	// One sampling decision per transaction; the anchor is taken even when
	// unsampled so a mid-flight Force still yields a rooted trace.
	if c.tracer != nil {
		c.curTC, c.curRoot = c.tracer.Begin()
		c.curBegun = c.tracer.Now()
		c.forced = 0
	}
	return t
}

// Timestamp returns the transaction's MVTSO timestamp.
func (t *Txn) Timestamp() types.Timestamp { return t.ts }

// Write buffers a write (paper §4.1 Write); it becomes visible to others
// only once the transaction prepares.
func (t *Txn) Write(key string, value []byte) {
	if _, seen := t.writes[key]; !seen {
		t.writeOrder = append(t.writeOrder, key)
	}
	t.writes[key] = value
}

// readCandidate is one validated (version, value) option.
type readCandidate struct {
	version  types.Timestamp
	value    []byte
	prepared bool
	writer   *types.TxMeta
}

// Read returns the value of key visible at the transaction's timestamp
// (paper §4.1 Read): it broadcasts to ReadWait+f replicas, waits for
// ReadWait replies, validates them (commit certificates for committed
// versions, f+1 agreement for prepared or genesis versions), and picks the
// highest-timestamped valid version. Reading a prepared version records a
// dependency on its writer.
func (t *Txn) Read(key string) ([]byte, error) {
	// Read-your-own-writes from the local buffer.
	if v, ok := t.writes[key]; ok {
		return v, nil
	}
	// Repeatable reads: once a version is chosen for a key it is fixed in
	// the read set, so repeat reads must serve the cached value. Re-asking
	// replicas could return a version newer than the recorded one,
	// diverging what the application saw from what ST1 validates.
	if t.readKeys[key] {
		return t.readVals[key], nil
	}
	c := t.c
	if c.timed {
		defer c.hRead.Since(time.Now())
	}
	if rdStart := c.tracer.Start(c.curTC); rdStart != 0 {
		defer func() { c.tracer.End(c.curTC, c.traceNode, "client.read", c.curRoot, rdStart) }()
	}
	shard := c.cfg.ShardOf(key)
	replicas := c.replicasOf(shard)
	fanout := c.cfg.ReadWait + c.cfg.F
	if fanout > len(replicas) {
		fanout = len(replicas)
	}

	attempt := 0
	for {
		reqID, ch := c.newRequest(len(replicas))
		req := &types.ReadRequest{ReqID: reqID, ClientID: uint64(c.cfg.ID), Key: key, Ts: t.ts, TC: c.curTC}
		n := fanout
		if attempt > 0 {
			n = len(replicas) // retry against the full shard
		}
		// Spread load: start at a rotating offset so replicas share the
		// f+1-read traffic. One SendAll = one body encode on the wire.
		off := int(reqID) % len(replicas)
		tos := make([]transport.Addr, n)
		for i := range tos {
			tos[i] = replicas[(off+i)%len(replicas)]
		}
		c.cfg.Net.SendAll(c.addr, tos, req)
		val, err := t.collectRead(key, shard, reqID, ch)
		c.endRequest(reqID)
		if err == nil {
			return val, nil
		}
		attempt++
		if attempt > 3 {
			return nil, ErrTimeout
		}
		c.Stats.ReadRetries.Add(1)
		// Jittered backoff before the retry, floored at any RetryAfter an
		// overloaded replica handed us — never a tight resend loop.
		time.Sleep(c.retryDelay(attempt-1, c.takeRetryAfter()))
	}
}

// collectRead gathers replies until a valid choice exists. shard is the
// shard the request targeted; replies from any other shard are rejected
// even when correctly signed.
func (t *Txn) collectRead(key string, shard int32, reqID uint64, ch chan any) ([]byte, error) {
	c := t.c
	need := c.cfg.ReadWait
	trustSingle := need == 1 // Fig. 5b "one read": no cross-validation

	var (
		got       int
		cands     []readCandidate
		prepCount = make(map[types.Timestamp]int) // prepared version -> votes
		prepSeen  = make(map[types.Timestamp]*types.PreparedRead)
		genCount  = make(map[string]int) // genesis value -> votes
		genVal    = make(map[string][]byte)
	)
	deadline := time.NewTimer(c.cfg.PhaseTimeout)
	defer deadline.Stop()
	seen := make(map[int32]bool)
	for {
		select {
		case m := <-ch:
			if ov, isOv := m.(*types.Overloaded); isOv {
				// Shed: count it and keep the pacing hint for the retry in
				// Read's attempt loop (no resend from inside one attempt).
				c.noteOverloaded(ov)
				continue
			}
			rr, ok := m.(*types.ReadReply)
			if !ok || rr.Key != key || seen[rr.ReplicaID] {
				continue
			}
			// A same-index replica of a different shard signs its replies
			// with its own (valid) key, so signature verification alone
			// does not bind the reply to the shard we asked: check the
			// shard id explicitly or cross-shard replies would count
			// toward this shard's read quorum.
			if rr.ShardID != shard {
				continue
			}
			sig := rr.Sig
			if sig.SignerID != c.cfg.SignerOf(rr.ShardID, rr.ReplicaID) || !c.sv.Verify(rr.Payload(), &sig) {
				continue
			}
			seen[rr.ReplicaID] = true
			got++
			if rr.Committed == nil && rr.Prepared == nil {
				// Key absent at this replica: a vote for the empty
				// genesis state (reads of never-written keys are legal
				// and return nil).
				if trustSingle {
					cands = append(cands, readCandidate{})
				} else {
					genCount[""]++
					if genCount[""] == c.qc.ReadValidity() {
						cands = append(cands, readCandidate{})
					}
				}
			}
			if rr.Committed != nil {
				cr := rr.Committed
				switch {
				case cr.WriterMeta == nil: // genesis version
					if trustSingle {
						cands = append(cands, readCandidate{value: cr.Value})
					} else {
						k := string(cr.Value)
						genCount[k]++
						genVal[k] = cr.Value
						if genCount[k] == c.qc.ReadValidity() {
							cands = append(cands, readCandidate{value: cr.Value})
						}
					}
				case cr.Cert != nil && cr.Version().Less(t.ts):
					if trustSingle || t.validCommittedRead(key, cr) {
						cands = append(cands, readCandidate{
							version: cr.Version(), value: cr.Value, writer: cr.WriterMeta,
						})
					}
				}
			}
			if rr.Prepared != nil && rr.Prepared.WriterMeta != nil && rr.Prepared.Version().Less(t.ts) {
				pr := rr.Prepared
				v := pr.Version()
				prepCount[v]++
				if prepSeen[v] == nil {
					prepSeen[v] = pr
				}
				valid := c.qc.ReadValidity()
				if trustSingle {
					valid = 1
				}
				if prepCount[v] == valid {
					cands = append(cands, readCandidate{
						version: v, value: pr.Value, prepared: true, writer: pr.WriterMeta,
					})
				}
			}
			if got >= need && len(cands) > 0 {
				return t.chooseRead(key, cands), nil
			}
		case <-deadline.C:
			if len(cands) > 0 {
				return t.chooseRead(key, cands), nil
			}
			return nil, ErrTimeout
		}
	}
}

// validCommittedRead verifies a committed version's certificate and its
// binding to (key, value): H(meta) must equal the certificate's tx id and
// the write must appear in the writer's write set.
func (t *Txn) validCommittedRead(key string, cr *types.CommittedRead) bool {
	meta := cr.WriterMeta
	found := false
	for _, w := range meta.WriteSet {
		if w.Key == key && string(w.Value) == string(cr.Value) {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	return t.c.qv.VerifyDecisionCert(cr.Cert, meta) == nil
}

// chooseRead picks the highest-timestamped valid candidate, records the
// read entry and (for prepared versions) the dependency.
func (t *Txn) chooseRead(key string, cands []readCandidate) []byte {
	best := cands[0]
	for _, cd := range cands[1:] {
		if best.version.Less(cd.version) {
			best = cd
		}
	}
	if !t.readKeys[key] {
		t.reads = append(t.reads, types.ReadEntry{Key: key, Version: best.version})
		t.readKeys[key] = true
		t.readVals[key] = best.value
	}
	if best.prepared && best.writer != nil {
		id := best.writer.ID()
		if _, dup := t.deps[id]; !dup {
			t.deps[id] = types.Dependency{TxID: id, Version: best.version}
			t.depMetas[id] = best.writer
			t.c.Stats.DepsAcquired.Add(1)
		}
	}
	return best.value
}

// Abort abandons the transaction, releasing read timestamps (paper §4.1
// Abort). Writes were never visible.
func (t *Txn) Abort() {
	if t.finished {
		return
	}
	t.finished = true
	t.c.Stats.TxAborted.Add(1)
	t.c.tracer.Finish(t.c.curTC, t.c.traceNode, t.c.curRoot, t.c.curBegun, "abort")
	if len(t.reads) == 0 {
		return
	}
	byShard := make(map[int32][]string)
	for _, r := range t.reads {
		s := t.c.cfg.ShardOf(r.Key)
		byShard[s] = append(byShard[s], r.Key)
	}
	for s, keys := range byShard {
		t.c.broadcastShard(s, &types.AbortRead{ClientID: uint64(t.c.cfg.ID), Ts: t.ts, Keys: keys})
	}
}

// MetaSnapshot returns the transaction's metadata as it would be (or was)
// submitted in ST1. Used by the verification harness to rebuild committed
// histories; safe to call after Commit.
func (t *Txn) MetaSnapshot() *types.TxMeta { return t.buildMeta() }

// buildMeta assembles the signed transaction metadata.
func (t *Txn) buildMeta() *types.TxMeta {
	meta := &types.TxMeta{Timestamp: t.ts}
	meta.ReadSet = append(meta.ReadSet, t.reads...)
	for _, k := range t.writeOrder {
		meta.WriteSet = append(meta.WriteSet, types.WriteEntry{Key: k, Value: t.writes[k]})
	}
	for _, d := range t.deps {
		meta.Deps = append(meta.Deps, d)
	}
	sort.Slice(meta.Deps, func(i, j int) bool {
		return string(meta.Deps[i].TxID[:]) < string(meta.Deps[j].TxID[:])
	})
	shardSet := make(map[int32]bool)
	for _, r := range meta.ReadSet {
		shardSet[t.c.cfg.ShardOf(r.Key)] = true
	}
	for _, w := range meta.WriteSet {
		shardSet[t.c.cfg.ShardOf(w.Key)] = true
	}
	for s := range shardSet {
		meta.Shards = append(meta.Shards, s)
	}
	sort.Slice(meta.Shards, func(i, j int) bool { return meta.Shards[i] < meta.Shards[j] })
	return meta
}

// Commit runs the Prepare and Writeback phases (paper §4.2–4.3). It
// returns nil if the transaction committed and ErrAborted if any shard
// voted abort.
func (t *Txn) Commit() error {
	if t.finished {
		return ErrAborted
	}
	t.finished = true
	if t.c.timed {
		defer t.c.hCommit.Since(time.Now())
	}
	if len(t.reads) == 0 && len(t.writes) == 0 {
		t.c.Stats.TxCommitted.Add(1)
		t.c.hTxn.Since(t.begun)
		t.c.tracer.Finish(t.c.curTC, t.c.traceNode, t.c.curRoot, t.c.curBegun, "commit")
		return nil // empty transaction commits trivially
	}
	meta := t.buildMeta()
	dec, err := t.c.runPrepare(meta, t.depMetas)
	if err != nil {
		t.c.Stats.TxAborted.Add(1)
		t.c.tracer.Finish(t.c.curTC, t.c.traceNode, t.c.curRoot, t.c.curBegun, "failed")
		return err
	}
	if dec == types.DecisionCommit {
		t.c.Stats.TxCommitted.Add(1)
		t.c.hTxn.Since(t.begun)
		t.c.tracer.Finish(t.c.curTC, t.c.traceNode, t.c.curRoot, t.c.curBegun, "commit")
		return nil
	}
	t.c.Stats.TxAborted.Add(1)
	t.c.tracer.Finish(t.c.curTC, t.c.traceNode, t.c.curRoot, t.c.curBegun, "abort")
	return ErrAborted
}
