package replica

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

// checkpointBenchOut makes `go test -run TestWriteCheckpointBench` write
// the checkpoint-cost-vs-history comparison as JSON (used by `make bench`
// to record the perf trajectory in BENCH_checkpoint.json). Empty = skipped.
var checkpointBenchOut = flag.String("checkpointbench", "", "write the checkpoint lifecycle benchmark results as JSON to this file")

// ckptBenchWM is the watermark the collected scenarios advance to: above
// every seeded history timestamp, below every seeded live timestamp.
const ckptBenchWM = uint64(1) << 30

// seedCheckpointHistory drives n finalized transactions over a fixed
// 512-key space plus `live` prepared (undecided) transactions above the
// watermark, installing the same store records and txStates the protocol
// path would — without the per-transaction WAL appends, so seeding 16k
// transactions stays cheap and the measured checkpoints dominate.
func seedCheckpointHistory(r *Replica, n, live int) {
	for i := 0; i < n; i++ {
		m := &types.TxMeta{
			Timestamp: types.Timestamp{Time: uint64(i + 1), ClientID: 7},
			WriteSet:  []types.WriteEntry{{Key: fmt.Sprintf("h%03d", i%512), Value: []byte("v")}},
			Shards:    []int32{0},
		}
		id := m.ID()
		r.store.CheckAndPrepare(m, id)
		r.store.Finalize(id, m, types.DecisionCommit,
			&types.DecisionCert{TxID: id, Decision: types.DecisionCommit})
		t := r.tx(id)
		t.mu.Lock()
		t.meta = m
		t.vote = types.VoteCommit
		t.voteReady = true
		t.finalized = true
		t.mu.Unlock()
	}
	for i := 0; i < live; i++ {
		m := &types.TxMeta{
			Timestamp: types.Timestamp{Time: ckptBenchWM + uint64(i+1), ClientID: 8},
			WriteSet:  []types.WriteEntry{{Key: fmt.Sprintf("live%03d", i), Value: []byte("v")}},
			Shards:    []int32{0},
		}
		id := m.ID()
		r.store.CheckAndPrepare(m, id)
		t := r.tx(id)
		t.mu.Lock()
		t.meta = m
		t.vote = types.VoteCommit
		t.voteReady = true
		r.markLive(t)
		t.mu.Unlock()
	}
}

// checkpointBenchRow is one history size in BENCH_checkpoint.json.
type checkpointBenchRow struct {
	History    int `json:"history_txns"`
	Live       int `json:"live_txns"`
	HeldBefore int `json:"txstates_before_collect"`
	HeldAfter  int `json:"txstates_after_collect"`
	// RetainedMs is a watermark-zero checkpoint: nothing collectable, the
	// snapshot carries every version and finalized record — the pre-PR
	// steady state, growing with history.
	RetainedMs float64 `json:"checkpoint_retained_ms"`
	// CollectMs is the first watermark-advanced checkpoint: the one-time
	// O(history) pass that GCs the store and collects finished txStates.
	CollectMs float64 `json:"first_collect_ms"`
	// SteadyMs is a watermark-advanced checkpoint after collection: the
	// recurring cost, which must stay flat as history grows.
	SteadyMs float64 `json:"checkpoint_steady_ms"`
}

// TestWriteCheckpointBench measures the full durable checkpoint (store
// GC, snapshot + txState capture into the WAL, watermark collection) on
// replicas that have seen 1000/4000/16000 transactions over a fixed key
// space with a fixed 64-transaction live set, and writes the comparison
// as JSON. The acceptance shape: checkpoint_steady_ms flat across
// history sizes (capture walks the live-set index, the GC'd store stays
// O(keys)), while checkpoint_retained_ms grows with history. Skipped
// unless -checkpointbench names an output file.
func TestWriteCheckpointBench(t *testing.T) {
	if *checkpointBenchOut == "" {
		t.Skip("no -checkpointbench output file given")
	}
	const liveSet = 64
	wm := types.Timestamp{Time: ckptBenchWM}

	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	var rows []checkpointBenchRow
	for _, history := range []int{1000, 4000, 16000} {
		net := transport.NewLocal()
		r := New(durableConfig(net, t.TempDir()))
		seedCheckpointHistory(r, history, liveSet)

		row := checkpointBenchRow{History: history, Live: liveSet, HeldBefore: r.TxStateCount()}
		t0 := time.Now()
		if err := r.Checkpoint(types.Timestamp{}); err != nil {
			t.Fatalf("history %d: retained checkpoint: %v", history, err)
		}
		row.RetainedMs = ms(time.Since(t0))

		t0 = time.Now()
		if err := r.Checkpoint(wm); err != nil {
			t.Fatalf("history %d: collecting checkpoint: %v", history, err)
		}
		row.CollectMs = ms(time.Since(t0))
		row.HeldAfter = r.TxStateCount()

		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			t0 = time.Now()
			if err := r.Checkpoint(wm); err != nil {
				t.Fatalf("history %d: steady checkpoint: %v", history, err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		row.SteadyMs = ms(best)
		rows = append(rows, row)

		r.Close()
		net.Close()
	}

	first, last := rows[0], rows[len(rows)-1]
	out := struct {
		Benchmark string               `json:"benchmark"`
		Workload  string               `json:"workload"`
		Results   []checkpointBenchRow `json:"results"`
		// RetainedGrowth is the watermark-zero checkpoint cost at the
		// largest history relative to the smallest — the pre-lifecycle
		// trajectory (grows with transactions seen).
		RetainedGrowth float64 `json:"retained_growth"`
		// SteadyGrowth is the same ratio for watermark-advanced
		// checkpoints — the lifecycle claim is that this stays near 1
		// over a 16x history spread.
		SteadyGrowth float64 `json:"steady_growth"`
	}{
		Benchmark:      "TestWriteCheckpointBench",
		Workload:       "finalized history over 512 keys + 64 live prepared txns, durable replica, full checkpoint (GC + WAL snapshot + collection)",
		Results:        rows,
		RetainedGrowth: last.RetainedMs / first.RetainedMs,
		SteadyGrowth:   last.SteadyMs / first.SteadyMs,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*checkpointBenchOut, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", *checkpointBenchOut, err)
	}
	for _, row := range rows {
		t.Logf("history %5d: retained %.2fms, collect %.2fms, steady %.3fms, held %d -> %d",
			row.History, row.RetainedMs, row.CollectMs, row.SteadyMs, row.HeldBefore, row.HeldAfter)
	}
	t.Logf("retained growth %.2fx vs steady growth %.2fx over a 16x history spread",
		out.RetainedGrowth, out.SteadyGrowth)
}
