package replica

import (
	"repro/internal/transport"
	"repro/internal/types"
)

// onRead handles the execution-phase read (paper §4.1 step 2): enforce the
// δ bound, record the RTS, and return the latest committed and prepared
// versions below the transaction timestamp, signed.
func (r *Replica) onRead(from transport.Addr, m *types.ReadRequest) {
	if r.cfg.Byzantine != nil && r.cfg.Byzantine.DropRead(m.Key) {
		return
	}
	if !r.withinDelta(m.Ts) {
		// Paper: the replica ignores over-δ requests. The client's read
		// quorum absorbs the silence.
		return
	}
	r.Stats.Reads.Add(1)
	res := r.store.Read(m.Key, m.Ts)
	reply := &types.ReadReply{
		ReqID:     m.ReqID,
		Key:       m.Key,
		ShardID:   r.cfg.Shard,
		ReplicaID: r.cfg.Index,
		Committed: res.Committed,
		Prepared:  res.Prepared,
	}
	r.signThen(reply.Payload(), func(sig types.Signature) {
		reply.Sig = sig
		r.send(from, reply)
	})
}

// withinDelta implements the timestamp admission bound: accept iff
// ts.Time ≤ local clock + δ.
func (r *Replica) withinDelta(ts types.Timestamp) bool {
	return ts.Time <= r.cfg.Clock.NowMicros()+r.cfg.DeltaMicros
}
