package replica

import (
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/types"
)

// Transaction-state lifecycle.
//
// A txState moves active → finalized → collectable. Active states can
// still change protocol outcome (a check may run, a vote or decision may
// be logged); finalized states only re-serve a proven outcome; collectable
// states sit below the checkpoint watermark — which promises nothing at or
// below it will ever be read, prepared, or recovered again (store.GC) —
// with every waiter answered, so the checkpoint pass deletes them from
// Replica.txs (collectBelow). Replica memory is thereby O(live
// transactions), not O(history).
//
// The removal is safe only because resurrection is guarded: a late
// duplicate ST1/recovery/writeback for a collected transaction finds no
// state, and lifecycleCheck answers it from the store's finalized table
// (which store.GC retains for live writers) or drops it when it is below
// the watermark with no provable outcome — it never re-runs the MVTSO
// check, which could contradict the vote whose state is gone.

// txPhase is a txState's lifecycle phase, derived (not stored) by
// phaseLocked from the flags the protocol already maintains.
type txPhase uint8

const (
	txActive txPhase = iota
	txFinalized
	txCollectable
)

// phaseLocked classifies t against the collect watermark wm and its store
// status st. Caller holds t.mu (store reads are lock-order leaves, so st
// may be sampled before or under it).
//
// Never collectable: states at or above the watermark, states whose MVTSO
// check is in flight (checkStarted without a promise), and prepared-but-
// undecided transactions — dependents and blocked clients still need their
// decision, and store.GC never collects prepared writes either.
func (t *txState) phaseLocked(wm types.Timestamp, st store.TxStatus) txPhase {
	promised := t.voteReady || t.decisionLogged
	if t.meta == nil {
		// No metadata means no timestamp to compare: these are ballot-only
		// or ghost states (ElectFB traffic for transactions this replica
		// never saw). Promise-free ones are collectable at any watermark —
		// dropping in-flight election ballots is self-healing (clients
		// re-invoke the fallback) and the alternative is unbounded memory
		// for unattributable spam.
		if !promised && !t.checkStarted && !t.finalized {
			return txCollectable
		}
		if t.finalized {
			return txFinalized
		}
		return txActive
	}
	below := t.meta.Timestamp.Less(wm)
	switch {
	case t.finalized:
		if below {
			return txCollectable
		}
		return txFinalized
	case !below:
		return txActive
	case st == store.StatusPrepared:
		return txActive
	case t.checkStarted && !promised:
		return txActive
	default:
		return txCollectable
	}
}

// maxTxWaiters caps each per-transaction waiter set. One entry per client
// address costs ~32 bytes; without a cap a Byzantine client herd can tie
// replica memory to the number of addresses it invents, long before the
// watermark collector applies. 64 covers every honest configuration (one
// entry per concurrently-retrying client of one transaction).
const maxTxWaiters = 64

// waiterSet is a bounded addr → reqID map with insertion order: at
// capacity the oldest entry is evicted. The zero value is ready to use.
// It is guarded by the owning txState's mutex.
type waiterSet struct {
	m     map[transport.Addr]uint64
	order []transport.Addr
}

// add records addr → reqID, updating in place when addr is already
// present. Returns true when a distinct oldest entry was evicted to make
// room. An evicted client is not answered — it re-requests, exactly as it
// would after a dropped message, which the protocol already tolerates.
func (ws *waiterSet) add(addr transport.Addr, reqID uint64) bool {
	if ws.m == nil {
		ws.m = make(map[transport.Addr]uint64)
	}
	if _, ok := ws.m[addr]; ok {
		ws.m[addr] = reqID
		return false
	}
	evicted := false
	if len(ws.order) >= maxTxWaiters {
		delete(ws.m, ws.order[0])
		ws.order = ws.order[1:]
		evicted = true
	}
	ws.m[addr] = reqID
	ws.order = append(ws.order, addr)
	return evicted
}

// length returns the number of waiters held.
func (ws *waiterSet) length() int { return len(ws.m) }

// take returns the current entries and resets the set.
func (ws *waiterSet) take() map[transport.Addr]uint64 {
	m := ws.m
	ws.m = nil
	ws.order = nil
	return m
}

// addWaiterLocked records addr in ws (a waiter set of a txState whose
// mutex the caller holds), counting cap evictions.
func (r *Replica) addWaiterLocked(ws *waiterSet, addr transport.Addr, reqID uint64) {
	if ws.add(addr, reqID) {
		r.Stats.WaiterEvictions.Add(1)
	}
}

// markLive indexes t as checkpoint-capture relevant (it holds an
// unfinalized promise). Called at every promise flip, usually under t.mu —
// taking Replica.mu under a txState mutex is the documented lock order.
// Re-inserting into txs also heals the benign race where the collector
// removed a promise-free state between a handler's map lookup and its
// promise flip.
func (r *Replica) markLive(t *txState) {
	r.mu.Lock()
	if r.txs[t.id] == nil {
		r.txs[t.id] = t
	}
	r.live[t.id] = t
	r.mu.Unlock()
}

// unmarkLive drops id from the live index once finalized: the outcome is
// in the store section of every future checkpoint, so the replica section
// no longer needs the state.
func (r *Replica) unmarkLive(id types.TxID) {
	r.mu.Lock()
	delete(r.live, id)
	r.mu.Unlock()
}

// TxStateCount returns the number of per-transaction protocol states held
// (the basil_replica_txstates gauge; the fuzz batteries bound it by the
// prepared set after the watermark passes all traffic).
func (r *Replica) TxStateCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.txs)
}

// lifecycleOutcome is lifecycleCheck's verdict for an incoming message.
type lifecycleOutcome uint8

const (
	// lifecycleLive: protocol state exists, or the transaction is new and
	// above the watermark — take the normal protocol path.
	lifecycleLive lifecycleOutcome = iota
	// lifecycleServed: the state was collected (or never built) but the
	// store still proves the outcome — answer from the returned record.
	lifecycleServed
	// lifecycleStale: below the collect watermark with no provable
	// outcome — drop. Re-admitting it would re-run the MVTSO check against
	// GC-truncated history and could contradict the vote whose state is
	// gone (the resurrection bug class).
	lifecycleStale
)

// lifecycleCheck classifies a message about id carrying timestamp ts
// against the collected-state lifecycle. It takes only Replica.mu (one
// acquisition) plus a store read.
func (r *Replica) lifecycleCheck(id types.TxID, ts types.Timestamp) (store.TxRecord, lifecycleOutcome) {
	r.mu.Lock()
	known := r.txs[id] != nil
	wm := r.collectWM
	r.mu.Unlock()
	if known {
		return store.TxRecord{}, lifecycleLive
	}
	if rec, ok := r.store.FinalizedOutcome(id); ok {
		return rec, lifecycleServed
	}
	if !wm.IsZero() && ts.Less(wm) {
		r.Stats.StaleDrops.Add(1)
		return store.TxRecord{}, lifecycleStale
	}
	return store.TxRecord{}, lifecycleLive
}

// serveFinalized answers a late duplicate with the store-proven outcome:
// an RPCert ST1Reply. Certificates are self-authenticating, so there is no
// signing round and nothing is promised — the record was logged (final
// record) before the outcome ever externalized. Returns false when the
// record carries no certificate; the caller then falls back to the normal
// path, which derives a vote from the final status rather than re-running
// the check.
func (r *Replica) serveFinalized(to transport.Addr, reqID uint64, rec store.TxRecord) bool {
	if rec.Cert == nil {
		return false
	}
	r.send(to, &types.ST1Reply{
		ReqID: reqID, TxID: rec.Cert.TxID, ShardID: r.cfg.Shard, ReplicaID: r.cfg.Index,
		RPKind: types.RPCert, Cert: rec.Cert, CertMeta: rec.Meta,
	})
	return true
}

// collectBelow reclaims protocol state below the watermark: every
// candidate in txCollectable phase with its waiter sets empty — after a
// last notification round — is deleted from txs and live. Returns the
// number collected.
//
// Waiters on a collectable state are answered or dropped, never silently
// retained: vote waiters flush when the vote is ready, interested clients
// get the certificate when the store still proves it, and what cannot be
// answered is discarded — below the watermark the outcome will never
// change again, so state held for a reply that can never improve is pure
// leak. Sends happen after every lock is released (transport calls block).
func (r *Replica) collectBelow(wm types.Timestamp) int {
	if wm.IsZero() {
		return 0
	}
	r.mu.Lock()
	cands := make([]*txState, 0, len(r.txs))
	for _, t := range r.txs {
		cands = append(cands, t)
	}
	r.mu.Unlock()

	type notice struct {
		addr  transport.Addr
		reply *types.ST1Reply
	}
	var notify []notice
	collected := 0
	for _, t := range cands {
		st := r.store.TxStatusOf(t.id)
		t.mu.Lock()
		if t.phaseLocked(wm, st) != txCollectable {
			// Prepared-but-undecided below the watermark stays resident
			// (its write still aborts future readers, so the state must
			// survive GC) — but the owner had 2δ to finish and did not:
			// the canonical dependency-hostage pattern. Charge the
			// abandonment now, once, without collecting; recovery can
			// still resolve the transaction later.
			if st == store.StatusPrepared && t.voteReady && !t.finalized &&
				t.vote == types.VoteCommit && t.meta != nil &&
				t.meta.Timestamp.Less(wm) && !t.abandonCharged {
				t.abandonCharged = true
				r.adm.noteAbandoned(t.meta.Timestamp.ClientID)
				r.frec.Note("reputation", "abandon charged (prepared past watermark)")
			}
			t.mu.Unlock()
			continue
		}
		if t.voteReady && !t.finalized && t.vote == types.VoteCommit && t.meta != nil && !t.abandonCharged {
			// Prepared here, never finished anywhere we can see: the owner
			// abandoned it past the watermark (held locks hostage until GC).
			t.abandonCharged = true
			r.adm.noteAbandoned(t.meta.Timestamp.ClientID)
			r.frec.Note("reputation", "abandon charged (collected unfinished)")
		}
		r.flushVoteWaitersLocked(t) // answers iff the vote resolved
		t.voteWaiters.take()
		if t.interested.length() > 0 {
			rec, ok := r.store.FinalizedOutcome(t.id)
			for addr, reqID := range t.interested.take() {
				if !ok || rec.Cert == nil {
					continue
				}
				notify = append(notify, notice{addr: addr, reply: &types.ST1Reply{
					ReqID: reqID, TxID: t.id, ShardID: r.cfg.Shard, ReplicaID: r.cfg.Index,
					RPKind: types.RPCert, Cert: rec.Cert, CertMeta: rec.Meta,
				}})
			}
		}
		t.mu.Unlock()

		r.mu.Lock()
		// Identity check: a handler may have raced a fresh state for the
		// same id into the map; only remove the object we classified.
		if r.txs[t.id] == t {
			delete(r.txs, t.id)
			delete(r.live, t.id)
			collected++
		}
		r.mu.Unlock()
	}
	for _, n := range notify {
		r.send(n.addr, n.reply)
	}
	if collected > 0 {
		r.Stats.TxCollected.Add(uint64(collected))
	}
	return collected
}
