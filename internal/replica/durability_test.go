package replica

import (
	"os"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/quorum"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/types"
)

// durableConfig is newTestReplica's config with a data dir and a tight
// group-commit window.
func durableConfig(net transport.Network, dir string) Config {
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, 6, 1)
	return Config{
		Shard: 0, Index: 0, F: 1,
		DeltaMicros:   60_000_000,
		BatchSize:     1,
		Registry:      reg,
		SignerID:      0,
		SignerOf:      quorum.SignerOf(func(s, i int32) int32 { return i }),
		Net:           net,
		DataDir:       dir,
		WALFlushDelay: 100 * time.Microsecond,
		// Tests that exercise the ST2 path inject decisions without
		// building full vote tallies.
		AllowUnvalidatedST2: true,
	}
}

// captureClient registers a client address whose replies land on the
// returned channels.
func captureClient(net *transport.Local, id int32) (transport.Addr, chan *types.ST1Reply, chan *types.ST2Reply) {
	addr := transport.ClientAddr(id)
	st1 := make(chan *types.ST1Reply, 32)
	st2 := make(chan *types.ST2Reply, 32)
	net.Register(addr, transport.HandlerFunc(func(_ transport.Addr, msg any) {
		switch m := msg.(type) {
		case *types.ST1Reply:
			st1 <- m
		case *types.ST2Reply:
			st2 <- m
		}
	}))
	return addr, st1, st2
}

// TestRestartReservesSameVote is the core equivocation test: a replica
// that voted pre-crash must re-serve the *same* vote after Restore, and
// must refuse a conflicting transaction its pre-crash state would have
// refused — even though all of that state was in memory when it died.
func TestRestartReservesSameVote(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewLocal()
	defer net.Close()
	cfg := durableConfig(net, dir)
	r := New(cfg)
	client, st1, _ := captureClient(net, 9)

	// A: reads x (genesis) at ts 100, writes y. The replica votes commit
	// and installs A's reader record on x.
	r.LoadGenesis("x", []byte("v0"))
	metaA := &types.TxMeta{
		Timestamp: types.Timestamp{Time: 100, ClientID: 9},
		ReadSet:   []types.ReadEntry{{Key: "x", Version: types.Timestamp{}}},
		WriteSet:  []types.WriteEntry{{Key: "y", Value: []byte("vA")}},
		Shards:    []int32{0},
	}
	idA := metaA.ID()
	r.Deliver(client, &types.ST1Request{ReqID: 1, ClientID: 9, Meta: metaA})
	rep := awaitReply(t, st1, idA)
	if rep.Vote != types.VoteCommit {
		t.Fatalf("setup: vote for A = %v", rep.Vote)
	}

	// Crash. All in-memory state dies with the process.
	r.Close()

	r2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r2.Close()

	// Same ST1 re-delivered: the restarted replica must re-serve the same
	// commit vote it promised before the crash.
	r2.Deliver(client, &types.ST1Request{ReqID: 2, ClientID: 9, Meta: metaA})
	rep2 := awaitReply(t, st1, idA)
	if rep2.Vote != types.VoteCommit {
		t.Fatalf("restarted replica changed its vote: %v", rep2.Vote)
	}

	// B writes x at ts 50 — between A's read version (0) and A's
	// timestamp (100) — so committing B would invalidate the read A's
	// commit vote validated. The pre-crash replica would have voted
	// abort; the restarted one must too (a forgetful replica voting
	// commit here is exactly the equivocation durability prevents).
	metaB := &types.TxMeta{
		Timestamp: types.Timestamp{Time: 50, ClientID: 7},
		WriteSet:  []types.WriteEntry{{Key: "x", Value: []byte("vB")}},
		Shards:    []int32{0},
	}
	idB := metaB.ID()
	r2.Deliver(client, &types.ST1Request{ReqID: 3, ClientID: 7, Meta: metaB})
	repB := awaitReply(t, st1, idB)
	if repB.Vote != types.VoteAbort {
		t.Fatalf("restarted replica voted %v on a conflict its pre-crash state refused", repB.Vote)
	}
}

// TestRestartReservesLoggedDecision: a logged ST2 decision must survive
// the crash and be re-served to recovery requests.
func TestRestartReservesLoggedDecision(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewLocal()
	defer net.Close()
	cfg := durableConfig(net, dir)
	r := New(cfg)
	client, st1, st2 := captureClient(net, 9)

	m := st1For("k", 10)
	id := m.Meta.ID()
	r.Deliver(client, m)
	awaitReply(t, st1, id)
	r.Deliver(client, &types.ST2Request{
		ReqID: 2, ClientID: 9, TxID: id, Meta: m.Meta, Decision: types.DecisionCommit,
	})
	d := awaitST2(t, st2, id)
	if d.Decision != types.DecisionCommit {
		t.Fatalf("setup: logged decision = %v", d.Decision)
	}

	r.Close()
	r2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r2.Close()

	// A recovery ST1 must surface the logged decision (RPDecision), same
	// decision as pre-crash.
	r2.Deliver(client, &types.ST1Request{ReqID: 3, ClientID: 9, Meta: m.Meta, Recovery: true})
	for {
		rep := awaitReply(t, st1, id)
		if rep.RPKind != types.RPDecision {
			continue // the vote reply also arrives; we want the decision
		}
		if rep.Decision != types.DecisionCommit || rep.ST2R == nil || rep.ST2R.Decision != types.DecisionCommit {
			t.Fatalf("restarted replica re-served decision %v", rep.Decision)
		}
		return
	}
}

// TestRestartReservesFinalizedOutcome: a writeback applied pre-crash is
// part of the store after restart — committed data survives.
func TestRestartReservesFinalizedOutcome(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewLocal()
	defer net.Close()
	cfg := durableConfig(net, dir)
	r := New(cfg)
	client, st1, _ := captureClient(net, 9)

	m := st1For("k", 10)
	id := m.Meta.ID()
	r.Deliver(client, m)
	awaitReply(t, st1, id)
	// Finalize directly (a full valid cert needs a whole shard; the
	// replica's own finalize path is what logs the record).
	r.finalize(id, m.Meta, types.DecisionCommit, nil, types.TraceContext{})
	r.Close()

	r2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r2.Close()
	if r2.Store().TxStatusOf(id) != store.StatusCommitted {
		t.Fatal("finalized commit lost across restart")
	}
	if ver, val, ok := r2.Store().LatestCommitted("k"); !ok || ver != m.Meta.Timestamp || string(val) != "v" {
		t.Fatalf("committed write lost: ok=%v ver=%v val=%q", ok, ver, val)
	}
}

// TestRestartFromCheckpoint: same guarantees when the state comes from a
// checkpoint plus a log suffix instead of a full replay, and the
// superseded segments really are gone.
func TestRestartFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewLocal()
	defer net.Close()
	cfg := durableConfig(net, dir)
	r := New(cfg)
	client, st1, _ := captureClient(net, 9)

	// Pre-checkpoint history: an old committed tx and a still-prepared
	// vote.
	mOld := st1For("old", 10)
	r.Deliver(client, mOld)
	awaitReply(t, st1, mOld.Meta.ID())
	r.finalize(mOld.Meta.ID(), mOld.Meta, types.DecisionCommit, nil, types.TraceContext{})

	mPrep := st1For("prep", 50)
	idPrep := mPrep.Meta.ID()
	r.Deliver(client, mPrep)
	if rep := awaitReply(t, st1, idPrep); rep.Vote != types.VoteCommit {
		t.Fatalf("setup vote: %v", rep.Vote)
	}

	// Checkpoint above the committed tx but below the prepared one.
	if err := r.Checkpoint(types.Timestamp{Time: 30}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint history: one more vote in the log suffix.
	mNew := st1For("new", 60)
	idNew := mNew.Meta.ID()
	r.Deliver(client, mNew)
	awaitReply(t, st1, idNew)
	r.Close()

	r2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r2.Close()

	// Old committed state: present (from the snapshot).
	if _, _, ok := r2.Store().LatestCommitted("old"); !ok {
		t.Fatal("checkpointed committed write lost")
	}
	// Both votes re-served identically.
	for _, m := range []*types.ST1Request{mPrep, mNew} {
		m := &types.ST1Request{ReqID: 9, ClientID: 9, Meta: m.Meta}
		r2.Deliver(client, m)
		if rep := awaitReply(t, st1, m.Meta.ID()); rep.Vote != types.VoteCommit {
			t.Fatalf("vote for %v not re-served: %v", m.Meta.ID(), rep.Vote)
		}
	}
}

// TestRestartWithdrawsUnpromisedPrepares: a transaction whose check
// passed but whose vote never reached disk (crash in the window between
// prepare and the group-commit fsync... modeled here by a dependency
// wait, which defers the vote indefinitely) must be withdrawn on
// restart: nothing was promised, and keeping the prepared entry without
// a vote would wedge the slot.
func TestRestartWithdrawsUnpromisedPrepares(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewLocal()
	defer net.Close()
	cfg := durableConfig(net, dir)
	r := New(cfg)
	client, st1, _ := captureClient(net, 9)

	// D: prepared with a commit vote (logged).
	mD := st1For("d", 10)
	idD := mD.Meta.ID()
	r.Deliver(client, mD)
	awaitReply(t, st1, idD)
	// X depends on D, so its vote defers — X is prepared in the store but
	// no vote record exists when the crash hits.
	metaX := &types.TxMeta{
		Timestamp: types.Timestamp{Time: 20, ClientID: 9},
		WriteSet:  []types.WriteEntry{{Key: "x", Value: []byte("v")}},
		Deps:      []types.Dependency{{TxID: idD, Version: mD.Meta.Timestamp}},
		Shards:    []int32{0},
	}
	idX := metaX.ID()
	r.Deliver(client, &types.ST1Request{ReqID: 2, ClientID: 9, Meta: metaX})
	waitFor(t, func() bool { return r.Store().TxStatusOf(idX) == store.StatusPrepared })
	// Checkpoint so X's prepared entry reaches disk (in the store
	// snapshot) even though no vote for it ever will — the exact shape
	// the restart sweep must clean up.
	if err := r.Checkpoint(types.Timestamp{Time: 5}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	r.Close()

	r2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r2.Close()
	if st := r2.Store().TxStatusOf(idX); st != store.StatusUnknown {
		t.Fatalf("unpromised prepare survived restart as %v", st)
	}
	// D's promise, by contrast, is intact.
	if st := r2.Store().TxStatusOf(idD); st != store.StatusPrepared {
		t.Fatalf("promised prepare lost: %v", st)
	}
}

// TestRestartRTSFloorConservative: after a restart the replica refuses
// writers below the highest replayed timestamp — the conservative
// stand-in for the RTS entries the crash erased.
func TestRestartRTSFloorConservative(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewLocal()
	defer net.Close()
	cfg := durableConfig(net, dir)
	r := New(cfg)
	client, st1, _ := captureClient(net, 9)

	m := st1For("k", 1000)
	r.Deliver(client, m)
	awaitReply(t, st1, m.Meta.ID())
	r.Close()

	r2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r2.Close()
	// A writer below ts 1000 (which a pre-crash read might have raced)
	// is refused...
	mLow := st1For("other", 500)
	r2.Deliver(client, mLow)
	if rep := awaitReply(t, st1, mLow.Meta.ID()); rep.Vote != types.VoteAbort {
		t.Fatalf("writer below restart floor voted %v", rep.Vote)
	}
	// ...while fresh, higher-timestamped traffic proceeds.
	mHigh := st1For("other2", 2000)
	r2.Deliver(client, mHigh)
	if rep := awaitReply(t, st1, mHigh.Meta.ID()); rep.Vote != types.VoteCommit {
		t.Fatalf("writer above restart floor voted %v", rep.Vote)
	}
}

// TestRestartNoDataDirStaysInMemory: an empty DataDir keeps the original
// behavior and writes nothing to disk.
func TestRestartNoDataDirStaysInMemory(t *testing.T) {
	r, net := newTestReplica(t, 1)
	defer net.Close()
	defer r.Close()
	if r.wal != nil {
		t.Fatal("replica without DataDir opened a WAL")
	}
	if st := r.WALStats(); st.Appends != 0 || st.Syncs != 0 {
		t.Fatalf("stats nonzero: %+v", st)
	}
}

// awaitST2 drains ch until an ST2 reply for id arrives.
func awaitST2(t *testing.T, ch <-chan *types.ST2Reply, id types.TxID) *types.ST2Reply {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case rep := <-ch:
			if rep.TxID == id {
				return rep
			}
		case <-deadline:
			t.Fatalf("no ST2 reply for %x", id[:4])
		}
	}
}

// waitFor polls cond with a deadline (replica handlers run on the pool).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWALFilesActuallyWritten sanity-checks that the data dir holds a
// segment with content after traffic (guards against a silently
// disconnected logging path).
func TestWALFilesActuallyWritten(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewLocal()
	defer net.Close()
	cfg := durableConfig(net, dir)
	r := New(cfg)
	defer r.Close()
	client, st1, _ := captureClient(net, 9)
	m := st1For("k", 10)
	r.Deliver(client, m)
	awaitReply(t, st1, m.Meta.ID())
	st := r.WALStats()
	if st.Appends == 0 || st.Syncs == 0 {
		t.Fatalf("no WAL activity after a vote: %+v", st)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("data dir empty: %v", err)
	}
}
