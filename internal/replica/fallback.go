package replica

import (
	"sort"

	"repro/internal/transport"
	"repro/internal/types"
)

// Fallback protocol (paper §5, divergent case).
//
// Views are per-transaction. A replica that receives InvokeFB reconciles
// its current view using rules R1/R2 with vote subsumption, then sends an
// ELECT-FB ballot (carrying its logged decision) to the fallback leader of
// the new view. A leader that gathers 4f+1 matching-view ballots proposes
// the majority decision in a DECFB; replicas at or below that view adopt
// it and answer interested clients with fresh ST2R messages.
//
// All signature verification happens before the transaction's state lock
// is taken (or in onInvokeFB's tally-adoption case, with the lock dropped
// around the check).

// leaderFor returns the replica index of view's fallback leader: the
// replica with id (view + idT mod n) mod n (paper §5 step 2).
func (r *Replica) leaderFor(id types.TxID, view uint64) int32 {
	n := uint64(r.qc.N())
	return int32((view + uint64(id.ShardIndex(int(n)))) % n)
}

// onInvokeFB handles a client's fallback invocation (paper §5 steps 1–2).
func (r *Replica) onInvokeFB(from transport.Addr, m *types.InvokeFB) {
	if m.Meta == nil || m.Meta.ID() != m.TxID {
		return
	}
	if m.Meta.LogShard() != r.cfg.Shard {
		return // the divergent case touches only the logging shard
	}
	r.Stats.FallbackInvoke.Add(1)
	r.frec.Note("fallback", "invoke received")

	// Resurrection guard (lifecycle.go): recovery of a collected
	// transaction is answered from the store's finalized table; a
	// below-watermark invocation with no provable outcome is dropped.
	switch rec, oc := r.lifecycleCheck(m.TxID, m.Meta.Timestamp); oc {
	case lifecycleStale:
		return
	case lifecycleServed:
		if r.serveFinalized(from, m.ReqID, rec) {
			return
		}
	}

	// Verify the signed current views attached to the invocation.
	views := make([]uint64, 0, len(m.ST2Rs))
	for i := range m.ST2Rs {
		st2r := &m.ST2Rs[i]
		if st2r.TxID != m.TxID || st2r.ShardID != r.cfg.Shard {
			continue
		}
		if r.qv.VerifyST2Reply(st2r, m.TxID) != nil {
			continue
		}
		views = append(views, st2r.ViewCurrent)
	}

	t := r.tx(m.TxID)
	t.mu.Lock()
	if t.meta == nil {
		t.meta = m.Meta
	}

	if t.finalized {
		// Serve the certificate when the store still proves it — without
		// registering interest, so an answered client does not pin the
		// state as non-collectable. Only a certless finalized record (the
		// certificate never reached this replica) keeps the client
		// registered for the eventual writeback's notification round.
		if rec, ok := r.store.Tx(m.TxID); ok && rec.Cert != nil {
			t.mu.Unlock()
			r.send(from, &types.ST1Reply{
				ReqID: m.ReqID, TxID: m.TxID, ShardID: r.cfg.Shard, ReplicaID: r.cfg.Index,
				RPKind: types.RPCert, Cert: rec.Cert, CertMeta: rec.Meta,
			})
			return
		}
		r.addWaiterLocked(&t.interested, from, m.ReqID)
		t.mu.Unlock()
		return
	}
	r.addWaiterLocked(&t.interested, from, m.ReqID)

	// View reconciliation (paper §5 step 2 box, rules R1/R2 with vote
	// subsumption). An InvokeFB without view evidence is accepted only at
	// view 0 (Appendix B.5 optimization).
	newView := reconcileView(t.viewCurrent, views, r.qc.ViewCatchupStrong(), r.qc.ViewCatchupWeak())
	if len(views) == 0 && t.viewCurrent == 0 {
		newView = 1
	}
	if newView > t.viewCurrent {
		t.viewCurrent = newView
	}

	// A replica only casts ELECT-FB ballots once it has logged a decision
	// (Lemma 5). A replica that missed the ST2 adopts the invoking
	// client's decision after validating the attached tallies — with the
	// state lock dropped around the crypto.
	if !t.decisionLogged && m.Decision != types.DecisionNone && len(m.Tallies) > 0 {
		t.mu.Unlock()
		if err := r.qv.VerifyTallyJustifies(m.Meta, m.Decision, m.Tallies); err != nil {
			return
		}
		t.mu.Lock()
		if !t.decisionLogged {
			t.decision = m.Decision
			t.decisionLogged = true
			t.viewDecision = 0
			if !r.logDecisionLocked(t, m.TC) {
				t.decisionLogged = false
				t.mu.Unlock()
				return
			}
			r.markLive(t)
		}
	}
	if !t.decisionLogged {
		t.mu.Unlock()
		return
	}
	ballot := &types.ElectFB{
		TxID:      m.TxID,
		ShardID:   r.cfg.Shard,
		ReplicaID: r.cfg.Index,
		Decision:  t.decision,
		View:      t.viewCurrent,
	}
	leader := r.leaderFor(m.TxID, t.viewCurrent)
	r.Stats.Elections.Add(1)
	t.mu.Unlock()
	r.frec.Note("election", "elect-fb ballot cast")

	r.signThen(ballot.Payload(), func(sig types.Signature) {
		ballot.Sig = sig
		r.send(transport.ReplicaAddr(r.cfg.Shard, leader), ballot)
	})
}

// reconcileView applies rules R1/R2: if some view v appears at least
// strong (3f+1) times under subsumption, advance to v+1; otherwise jump to
// the largest view above cur appearing at least weak (f+1) times.
func reconcileView(cur uint64, views []uint64, strong, weak int) uint64 {
	if len(views) == 0 {
		return cur
	}
	sorted := append([]uint64(nil), views...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	// With subsumption, view v is supported by every reported view ≥ v;
	// in the descending list, sorted[k] has k+1 supporters.
	best := cur
	for k, v := range sorted {
		support := k + 1
		if support >= strong && v+1 > best {
			best = v + 1
		}
		if support >= weak && v > cur && v > best {
			best = v
		}
	}
	// Deduplicate support counting: the loop above already considers each
	// distinct view at its highest support because later (smaller) views
	// have larger k.
	return best
}

// onElectFB collects ballots as the putative fallback leader (paper §5
// step 3).
func (r *Replica) onElectFB(_ transport.Addr, m *types.ElectFB) {
	if m.ShardID != r.cfg.Shard {
		return
	}
	if r.leaderFor(m.TxID, m.View) != r.cfg.Index {
		return // not the leader for that view
	}
	if m.ReplicaID < 0 || int(m.ReplicaID) >= r.qc.N() {
		return
	}
	sig := m.Sig
	if sig.SignerID != r.cfg.SignerOf(m.ShardID, m.ReplicaID) || !r.sv.Verify(m.Payload(), &sig) {
		return
	}
	t := r.tx(m.TxID)
	t.mu.Lock()
	if t.ballots == nil {
		t.ballots = make(map[uint64]map[int32]types.ElectFB)
	}
	byView := t.ballots[m.View]
	if byView == nil {
		byView = make(map[int32]types.ElectFB)
		t.ballots[m.View] = byView
	}
	if _, dup := byView[m.ReplicaID]; dup {
		t.mu.Unlock()
		return
	}
	byView[m.ReplicaID] = *m
	if len(byView) < r.qc.ElectQuorum() {
		t.mu.Unlock()
		return
	}
	// Elected: propose the majority decision among the ballots.
	elects := make([]types.ElectFB, 0, len(byView))
	commits := 0
	for _, b := range byView {
		elects = append(elects, b)
		if b.Decision == types.DecisionCommit {
			commits++
		}
	}
	delete(t.ballots, m.View) // propose at most once per view
	t.mu.Unlock()

	dec := types.DecisionAbort
	if commits*2 > len(elects) {
		dec = types.DecisionCommit
	}
	sort.Slice(elects, func(i, j int) bool { return elects[i].ReplicaID < elects[j].ReplicaID })
	decMsg := &types.DecFB{
		TxID:     m.TxID,
		ShardID:  r.cfg.Shard,
		LeaderID: r.cfg.Index,
		Decision: dec,
		View:     m.View,
		Elects:   elects,
	}
	r.Stats.DecFBs.Add(1)
	r.signThen(decMsg.Payload(), func(sig types.Signature) {
		decMsg.Sig = sig
		r.broadcastShard(decMsg)
	})
}

// onDecFB adopts a fallback leader's reconciled decision (paper §5 step 4)
// and answers interested clients with fresh ST2R messages.
func (r *Replica) onDecFB(_ transport.Addr, m *types.DecFB) {
	if m.ShardID != r.cfg.Shard {
		return
	}
	if r.leaderFor(m.TxID, m.View) != m.LeaderID {
		return
	}
	sig := m.Sig
	if sig.SignerID != r.cfg.SignerOf(m.ShardID, m.LeaderID) || !r.sv.Verify(m.Payload(), &sig) {
		return
	}
	// Validate the election proof: 4f+1 distinct ballots with matching
	// view, and the proposed decision must be their majority. The ballot
	// signatures fan across the verify pool after the cheap field pass.
	seen := make(map[int32]bool)
	commits := 0
	for i := range m.Elects {
		e := &m.Elects[i]
		if e.TxID != m.TxID || e.ShardID != m.ShardID || e.View != m.View || seen[e.ReplicaID] {
			return
		}
		if e.Sig.SignerID != r.cfg.SignerOf(e.ShardID, e.ReplicaID) {
			return
		}
		seen[e.ReplicaID] = true
		if e.Decision == types.DecisionCommit {
			commits++
		}
	}
	if len(seen) < r.qc.ElectQuorum() {
		return
	}
	if !r.pool.All(len(m.Elects), func(i int) bool {
		esig := m.Elects[i].Sig
		return r.sv.Verify(m.Elects[i].Payload(), &esig)
	}) {
		return
	}
	major := types.DecisionAbort
	if commits*2 > len(seen) {
		major = types.DecisionCommit
	}
	if major != m.Decision {
		return
	}

	// Resurrection guard: a DecFB carries no timestamp, so only the
	// proven-outcome verdict applies — a collected transaction the store
	// already finalized has nothing left to reconcile, and no interested
	// clients are pinned to the vanished state.
	if r.peekTx(m.TxID) == nil {
		if _, done := r.store.FinalizedOutcome(m.TxID); done {
			return
		}
	}

	t := r.tx(m.TxID)
	t.mu.Lock()
	if t.viewCurrent > m.View {
		t.mu.Unlock()
		return // stale proposal from an older view
	}
	prevDec, prevLogged, prevViewDec := t.decision, t.decisionLogged, t.viewDecision
	t.viewCurrent = m.View
	t.decision = m.Decision
	t.decisionLogged = true
	t.viewDecision = m.View
	// A DecFB is replica-to-replica traffic with no carrier context.
	if !r.logDecisionLocked(t, types.TraceContext{}) {
		t.decision, t.decisionLogged, t.viewDecision = prevDec, prevLogged, prevViewDec
		t.mu.Unlock()
		return
	}
	if !t.finalized {
		r.markLive(t)
	}
	for addr, reqID := range t.interested.m {
		r.replyLoggedDecisionST2Locked(addr, reqID, t)
	}
	t.mu.Unlock()
}
