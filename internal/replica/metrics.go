package replica

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
)

// Observability wiring. Every replica owns a metrics.Registry (its
// process-visible namespace; basil-server serves it at -admin-addr). The
// pre-existing Stats atomics stay the counters of record — the registry
// binds them rather than duplicating them, so the hot paths still pay a
// single atomic add. The only instrumentation added to the ingest hot
// path is the per-kind Deliver latency pair of clock reads, gated on
// mx.timed so a Nop registry is a true uninstrumented baseline (the
// overhead is bounded by `basil-bench -experiment metrics`).

// deliver-latency histogram indices, one per protocol message kind.
const (
	kindRead = iota
	kindAbortRead
	kindST1
	kindST2
	kindWriteback
	kindInvokeFB
	kindElectFB
	kindDecFB
	kindCount
)

var kindNames = [kindCount]string{
	"read", "abort_read", "st1", "st2", "writeback",
	"invoke_fb", "elect_fb", "dec_fb",
}

// replicaMetrics holds the replica's live instrument handles. All fields
// are nil (no-op handles) when the registry is Nop.
type replicaMetrics struct {
	timed      bool // registry is live: pay the clock reads in dispatch
	deliver    [kindCount]*metrics.Histogram
	checkpoint *metrics.Histogram
	ckpts      *metrics.Counter
}

// initMetrics builds the replica's registry-backed instrumentation:
// bound protocol counters, per-kind deliver latency histograms, store
// counters and occupancy gauges, and (when durable) WAL latency
// histograms bound later by Restore via walHistograms. Called once from
// Restore before the replica is registered on the network.
func (r *Replica) initMetrics(reg *metrics.Registry) {
	r.reg = reg
	r.mx.timed = reg.Enabled()

	// Protocol counters: bind the existing Stats atomics so tests and
	// metrics read the same memory.
	reg.BindCounter("basil_replica_reads_total", &r.Stats.Reads)
	reg.BindCounter("basil_replica_st1_total", &r.Stats.ST1s)
	reg.BindCounter("basil_replica_votes_total", &r.Stats.VotesCommit, "vote", "commit")
	reg.BindCounter("basil_replica_votes_total", &r.Stats.VotesAbort, "vote", "abort")
	reg.BindCounter("basil_replica_misbehavior_total", &r.Stats.Misbehavior)
	reg.BindCounter("basil_replica_dep_waits_total", &r.Stats.DepWaits)
	reg.BindCounter("basil_replica_st2_total", &r.Stats.ST2s)
	reg.BindCounter("basil_replica_writebacks_total", &r.Stats.Writebacks)
	reg.BindCounter("basil_replica_fallback_invokes_total", &r.Stats.FallbackInvoke)
	reg.BindCounter("basil_replica_elections_total", &r.Stats.Elections)
	reg.BindCounter("basil_replica_decfb_total", &r.Stats.DecFBs)
	reg.BindCounter("basil_replica_sigs_signed_total", &r.Stats.SigsSigned)
	reg.BindCounter("basil_replica_sigs_verified_total", &r.Stats.SigsVerified)

	// Transaction-state lifecycle (lifecycle.go): held states, watermark
	// collections, waiter-cap evictions, and stale below-watermark drops.
	// txstates held vs basil_store_txns is the retention signal operators
	// alert on (docs/operations.md).
	reg.BindGaugeFunc("basil_replica_txstates", func() int64 { return int64(r.TxStateCount()) })
	reg.BindCounter("basil_replica_txstates_collected_total", &r.Stats.TxCollected)
	reg.BindCounter("basil_replica_waiters_evicted_total", &r.Stats.WaiterEvictions)
	reg.BindCounter("basil_replica_stale_drops_total", &r.Stats.StaleDrops)

	// Admission queue (admission.go): occupancy against its cap, and how
	// much arriving work is being shed — the overload alerting pair
	// (docs/operations.md). The capacity gauge is 0 when admission is
	// disabled (DispatchQueue < 0).
	reg.BindGaugeFunc("basil_replica_dispatch_depth", func() int64 { return r.adm.depth() })
	reg.BindGaugeFunc("basil_replica_dispatch_capacity", func() int64 {
		if r.adm.cap > 0 {
			return r.adm.cap
		}
		return 0
	})
	reg.BindCounter("basil_replica_shed_total", &r.Stats.Shed)
	reg.BindCounter("basil_replica_shed_reputation_total", &r.Stats.ShedReputation)

	// Deliver latency by message kind (handler run time on the pool).
	for k := 0; k < kindCount; k++ {
		r.mx.deliver[k] = reg.Histogram("basil_replica_deliver_latency_seconds", "kind", kindNames[k])
	}

	// Durability state: 1 when the replica muted itself after a WAL
	// append failure (fail-stop; see durability.go), mirrored by /healthz.
	reg.BindGaugeFunc("basil_replica_muted", func() int64 {
		if r.walFailed.Load() {
			return 1
		}
		return 0
	})

	// Checkpoint activity.
	r.mx.ckpts = reg.Counter("basil_replica_checkpoints_total")
	r.mx.checkpoint = reg.Histogram("basil_replica_checkpoint_seconds")

	// Store: MVTSO-check outcomes and occupancy. The gauges share one
	// cached walk so a scrape costs a single StatsSnapshot.
	r.store.SetMetrics(store.RegistryMetrics(reg))
	if reg.Enabled() {
		cache := &cachedStoreStats{src: r.store}
		reg.BindGaugeFunc("basil_store_keys", func() int64 { return int64(cache.get().Keys) })
		reg.BindGaugeFunc("basil_store_versions", func() int64 { return int64(cache.get().Versions) })
		reg.BindGaugeFunc("basil_store_txns", func() int64 { return int64(cache.get().Txns) })
		reg.BindGaugeFunc("basil_store_prepared", func() int64 { return int64(cache.get().Prepared) })
	}
}

// walMetrics builds the instrument handles wal.Open consumes, keeping the
// WAL's metric names in this file — the package's single definition site.
func walMetrics(reg *metrics.Registry) (appendLat, syncLat *metrics.Histogram, pruneFails *metrics.Counter) {
	return reg.Histogram("basil_wal_append_latency_seconds"),
		reg.Histogram("basil_wal_fsync_latency_seconds"),
		reg.Counter("basil_wal_prune_failures_total")
}

// bindWALMetrics exposes the WAL's cumulative counters once the log is
// open (called from Restore for durable replicas only).
func (r *Replica) bindWALMetrics() {
	r.reg.BindCounterFunc("basil_wal_appends_total", func() uint64 { return r.WALStats().Appends })
	r.reg.BindCounterFunc("basil_wal_fsyncs_total", func() uint64 { return r.WALStats().Syncs })
}

// Metrics returns the replica's registry (serve it with
// metrics.AdminHandler, or snapshot it in tests and experiments).
func (r *Replica) Metrics() *metrics.Registry { return r.reg }

// Health reports whether this replica still serves protocol traffic —
// the /healthz answer. A replica whose WAL append failed is "muted":
// alive but deliberately silent (fail-stop, never fail-equivocate).
func (r *Replica) Health() metrics.Health {
	switch {
	case r.walFailed.Load():
		return metrics.Health{OK: false, State: "muted",
			Detail: "wal append failed; replica is fail-stopped to avoid equivocation — restart it from its data dir"}
	case r.closed.Load():
		return metrics.Health{OK: false, State: "closed"}
	default:
		return metrics.Health{OK: true, State: "serving"}
	}
}

// cachedStoreStats throttles StatsSnapshot (a full store walk under the
// global lock) so the bound occupancy gauges scraped together cost one
// walk per second, not one per gauge per scrape.
type cachedStoreStats struct {
	src *store.Store

	mu sync.Mutex
	at time.Time
	st store.Stats
}

func (c *cachedStoreStats) get() store.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.at.IsZero() || time.Since(c.at) > time.Second {
		c.st = c.src.StatsSnapshot()
		c.at = time.Now()
	}
	return c.st
}
