package replica

import "testing"

func TestReconcileViewR1(t *testing.T) {
	// Rule R1: 3f+1 matching views (f=1: strong=4) advance to v+1.
	got := reconcileView(0, []uint64{0, 0, 0, 0, 0}, 4, 2)
	if got != 1 {
		t.Fatalf("R1 from uniform view 0: got %d want 1", got)
	}
	got = reconcileView(1, []uint64{3, 3, 3, 3}, 4, 2)
	if got != 4 {
		t.Fatalf("R1 from view 3 quorum: got %d want 4", got)
	}
}

func TestReconcileViewR2(t *testing.T) {
	// Rule R2: f+1 (weak=2) matching views allow a jump to that view.
	got := reconcileView(0, []uint64{5, 5, 0}, 4, 2)
	if got != 5 {
		t.Fatalf("R2 jump: got %d want 5", got)
	}
	// A single high view is not enough evidence.
	got = reconcileView(0, []uint64{9, 0, 0}, 4, 2)
	if got == 9 {
		t.Fatal("single vote should not justify a jump")
	}
}

func TestReconcileViewSubsumption(t *testing.T) {
	// Vote subsumption: view 4 counts as support for every view ≤ 4, so
	// {4,4,3,3} gives view 3 four supporters -> advance to 4 under R1
	// (strong=4); then view 4 itself has 2 supporters (weak) so the
	// result must be ≥ 4.
	got := reconcileView(0, []uint64{4, 4, 3, 3}, 4, 2)
	if got < 4 {
		t.Fatalf("subsumption lost support: got %d want >=4", got)
	}
}

func TestReconcileViewNeverRegresses(t *testing.T) {
	for _, views := range [][]uint64{nil, {0}, {1, 2, 3}, {9, 9, 9, 9, 9}} {
		if got := reconcileView(7, views, 4, 2); got < 7 {
			t.Fatalf("view regressed to %d from 7 with %v", got, views)
		}
	}
}

func TestLeaderRotationCoversAllReplicas(t *testing.T) {
	r := &Replica{cfg: Config{F: 1}}
	r.qc.F = 1
	var id [32]byte
	id[0] = 0xCD
	seen := make(map[int32]bool)
	for v := uint64(0); v < uint64(r.qc.N()); v++ {
		seen[r.leaderFor(id, v)] = true
	}
	if len(seen) != r.qc.N() {
		t.Fatalf("leader rotation covered %d of %d replicas", len(seen), r.qc.N())
	}
}
