package replica

import (
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/types"
)

// onST1 runs the Prepare-phase concurrency-control check (paper §4.2
// step 2, Algorithm 1). A correct replica executes the check at most once
// per transaction — the first worker to claim checkStarted owns it — and
// stores its vote for duplicate and recovery requests; duplicates that
// arrive while the check is in flight queue as voteWaiters and are
// answered when the vote resolves.
func (r *Replica) onST1(from transport.Addr, m *types.ST1Request) {
	if m.Meta == nil {
		return
	}
	id := m.Meta.ID()
	r.Stats.ST1s.Add(1)

	// Resurrection guard (lifecycle.go): a duplicate for a collected
	// transaction is answered from the store's finalized table, a
	// below-watermark request with no provable outcome is dropped —
	// neither rebuilds votable state.
	switch rec, oc := r.lifecycleCheck(id, m.Meta.Timestamp); oc {
	case lifecycleStale:
		r.adm.noteStale(m.ClientID)
		return
	case lifecycleServed:
		if r.serveFinalized(from, m.ReqID, rec) {
			return
		}
	}

	if m.Recovery && m.ClientID != m.Meta.Timestamp.ClientID {
		// Someone other than the owner is recovering this transaction: the
		// owner left it hanging. Reputation signal, not the recoverer's.
		r.adm.noteRecovery(m.Meta.Timestamp.ClientID)
	}

	t := r.tx(id)
	t.mu.Lock()
	if t.meta == nil {
		t.meta = m.Meta
	}
	if m.Recovery {
		// Recovery fast-forward: if we already hold a certificate or a
		// logged decision, return that instead of a plain vote (paper §5
		// common case). Interest is registered only when the request is
		// not answered with the certificate right here — an immediately
		// served client must not pin the state as non-collectable.
		if rec, ok := r.store.Tx(id); ok && rec.Cert != nil &&
			(rec.Status == store.StatusCommitted || rec.Status == store.StatusAborted) {
			reply := &types.ST1Reply{
				ReqID: m.ReqID, TxID: id, ShardID: r.cfg.Shard, ReplicaID: r.cfg.Index,
				RPKind: types.RPCert, Cert: rec.Cert, CertMeta: rec.Meta,
			}
			t.mu.Unlock()
			// Certificates are self-authenticating; no signature needed.
			r.send(from, reply)
			return
		}
		r.addWaiterLocked(&t.interested, from, m.ReqID)
		if t.decisionLogged {
			r.replyLoggedDecisionLocked(from, m.ReqID, t)
			// Fall through to the stage-1 vote as well: recovery must
			// surface every artifact this replica holds. A client that
			// finds only a minority of logged decisions cannot assemble an
			// ST2 certificate from them, and without votes it could
			// neither re-log the decision nor arm the fallback with
			// justifying tallies — the transaction would be stuck for
			// every recoverer.
		}
	}
	if t.voteReady {
		r.sendVoteLocked(from, m.ReqID, t)
		t.mu.Unlock()
		return
	}
	if t.checkStarted {
		// The check is running on another worker or waiting on
		// dependencies; owe this client a vote.
		r.addWaiterLocked(&t.voteWaiters, from, m.ReqID)
		t.mu.Unlock()
		return
	}
	t.checkStarted = true
	t.mu.Unlock()

	// The check touches only the store (stripe-locked) — no protocol lock
	// is held while it runs.
	vote, conflict, conflictMeta, blockedBy, pendingDeps, depAborted := r.runCheck(m.Meta, id, m.TC)

	t.mu.Lock()
	if t.voteReady {
		// A writeback finalized the transaction while the check ran; the
		// stored vote (derived from the outcome) wins.
		r.sendVoteLocked(from, m.ReqID, t)
		r.flushVoteWaitersLocked(t)
		t.mu.Unlock()
		return
	}
	if vote == types.VoteCommit && len(pendingDeps) > 0 {
		// Algorithm 1 line 15: defer the vote until dependencies decide.
		r.Stats.DepWaits.Add(1)
		r.addWaiterLocked(&t.voteWaiters, from, m.ReqID)
		if depAborted {
			t.depAborted = true
		}
		for _, dep := range pendingDeps {
			t.waitingOn[dep] = true
		}
		t.mu.Unlock()
		r.registerDeps(id, pendingDeps)
		return
	}
	if vote == types.VoteCommit && depAborted {
		// Line 16–18: a dependency aborted; withdraw the prepare.
		r.store.RemovePrepared(id)
		vote = types.VoteAbort
	}
	r.finishVoteLocked(t, vote, conflict, conflictMeta, m.TC)
	if t.blockedBy == nil {
		t.blockedBy = blockedBy
	}
	r.sendVoteLocked(from, m.ReqID, t)
	r.flushVoteWaitersLocked(t)
	t.mu.Unlock()
}

// registerDeps subscribes id to its pending dependencies' decisions, then
// closes the registration race: a dependency that finalized between the
// check and the registration will never fire another wakeup, so its
// decision is resolved from store state immediately.
func (r *Replica) registerDeps(id types.TxID, deps []types.TxID) {
	r.mu.Lock()
	for _, dep := range deps {
		r.depWaiters[dep] = append(r.depWaiters[dep], id)
	}
	r.mu.Unlock()
	for _, dep := range deps {
		var dec types.Decision
		switch r.store.TxStatusOf(dep) {
		case store.StatusCommitted:
			dec = types.DecisionCommit
		case store.StatusAborted:
			dec = types.DecisionAbort
		default:
			continue
		}
		// The dependency finalized before (or while) we registered, so no
		// future finalize pass will consume depWaiters[dep]: pop whatever is
		// there and resolve every waiter from the store state directly. The
		// list may hold other registrants whose own re-check raced the
		// finalize the other way (saw StatusPrepared before the status was
		// published) — dropping their entries without resolving them would
		// stall their votes forever. resolveDependency is idempotent under
		// the voteReady guard, so double-resolving a waiter that finalize
		// also saw is harmless.
		r.mu.Lock()
		stale := r.depWaiters[dep]
		delete(r.depWaiters, dep)
		r.mu.Unlock()
		resolvedSelf := false
		for _, w := range stale {
			r.resolveDependency(w, dep, dec)
			if w == id {
				resolvedSelf = true
			}
		}
		if !resolvedSelf {
			// finalize popped our entry (and will resolve it), but resolving
			// here too costs nothing and keeps this path self-contained.
			r.resolveDependency(id, dep, dec)
		}
	}
}

// runCheck performs Algorithm 1 lines 1–14 and classifies dependencies.
// It returns the tentative vote, optional conflict evidence, the set of
// still-undecided dependencies, and whether any dependency already aborted.
func (r *Replica) runCheck(meta *types.TxMeta, id types.TxID, tc types.TraceContext) (types.Vote, *types.DecisionCert, *types.TxMeta, *types.TxMeta, []types.TxID, bool) {
	// Line 1: timestamp admission.
	if !r.withinDelta(meta.Timestamp) {
		return types.VoteAbort, nil, nil, nil, nil, false
	}
	// Lines 3–4: dependency validity. Each dependency must name a
	// transaction this replica has prepared or committed, producing the
	// claimed version.
	var pending []types.TxID
	depAborted := false
	for _, d := range meta.Deps {
		rec, ok := r.store.Tx(d.TxID)
		if !ok || rec.Meta == nil || rec.Meta.Timestamp != d.Version {
			return types.VoteAbort, nil, nil, nil, nil, false
		}
		switch rec.Status {
		case store.StatusAborted:
			depAborted = true
		case store.StatusPrepared:
			pending = append(pending, d.TxID)
		}
	}
	// Lines 5–14: serializability checks + prepare.
	ckStart := r.tracer.Start(tc)
	res := r.store.CheckAndPrepare(meta, id)
	r.tracer.End(tc, r.traceNode, "replica.check", 0, ckStart)
	switch res.Outcome {
	case store.CheckMisbehavior:
		r.Stats.Misbehavior.Add(1)
		return types.VoteAbort, nil, nil, nil, nil, false
	case store.CheckAbort:
		return types.VoteAbort, res.Conflict, res.ConflictMeta, res.PreparedConflict, nil, false
	case store.CheckDuplicate:
		// Vote already stored (or the transaction is finalized); the
		// caller resends the stored vote.
		return types.VoteNone, nil, nil, nil, nil, false
	}
	return types.VoteCommit, nil, nil, nil, pending, depAborted
}

// finishVoteLocked fixes the replica's stage-1 vote, making it durable
// before any reply can carry it: the WAL append (group-committed) runs
// under t.mu, and every reply path reads the vote under the same lock,
// so a vote that reaches the wire is always already on disk. Caller
// holds t.mu.
func (r *Replica) finishVoteLocked(t *txState, vote types.Vote, conflict *types.DecisionCert, conflictMeta *types.TxMeta, tc types.TraceContext) {
	if t.voteReady || vote == types.VoteNone {
		if !t.voteReady && vote == types.VoteNone {
			// Duplicate outcome without a stored vote can only happen if
			// the transaction was finalized straight from a writeback;
			// derive the vote from the final status. The finalize record
			// already made the outcome durable, so no separate vote
			// record is needed.
			switch r.store.TxStatusOf(t.id) {
			case store.StatusCommitted:
				t.vote, t.voteReady = types.VoteCommit, true
			case store.StatusAborted:
				t.vote, t.voteReady = types.VoteAbort, true
			}
			if t.voteReady && !t.finalized {
				r.markLive(t)
			}
		}
		return
	}
	if r.cfg.Byzantine != nil {
		vote = r.cfg.Byzantine.MutateVote(t.id, vote)
		if vote == types.VoteNone {
			return // suppressed
		}
	}
	t.vote = vote
	t.voteReady = true
	t.voteConflict = conflict
	t.conflictMeta = conflictMeta
	if !r.logVoteLocked(t, tc) {
		// The promise never reached disk; withdraw it so no reply is
		// sent. The replica is mute from here on (fail-stop).
		t.vote, t.voteReady = types.VoteNone, false
		t.voteConflict, t.conflictMeta = nil, nil
		return
	}
	r.markLive(t)
	if vote == types.VoteCommit {
		r.Stats.VotesCommit.Add(1)
	} else {
		r.Stats.VotesAbort.Add(1)
		if t.meta != nil {
			r.adm.noteAbortVote(t.meta.Timestamp.ClientID)
		}
	}
}

// sendVoteLocked signs and sends the stored ST1 vote to one client.
// Caller holds t.mu; signing is enqueued to the batcher (which may run it
// on this goroutine when it completes a batch or batching is off).
func (r *Replica) sendVoteLocked(to transport.Addr, reqID uint64, t *txState) {
	if !t.voteReady {
		r.addWaiterLocked(&t.voteWaiters, to, reqID)
		return
	}
	vote, conflict, conflictMeta := t.vote, t.voteConflict, t.conflictMeta
	if eq, ok := r.cfg.Byzantine.(VoteEquivocator); ok {
		// Per-recipient equivocation: the stored (and logged) vote stays
		// honest; only this recipient's reply is corrupted. A flipped
		// vote drops the conflict evidence — the equivocator has no
		// proof for the vote it invents.
		if v := eq.EquivocateVote(t.id, to, vote); v != vote {
			if v == types.VoteNone {
				return // suppressed for this recipient
			}
			vote, conflict, conflictMeta = v, nil, nil
		}
	}
	reply := &types.ST1Reply{
		ReqID:        reqID,
		TxID:         t.id,
		ShardID:      r.cfg.Shard,
		ReplicaID:    r.cfg.Index,
		Vote:         vote,
		Conflict:     conflict,
		ConflictMeta: conflictMeta,
		BlockedBy:    t.blockedBy,
		RPKind:       types.RPVote,
	}
	r.signThen(reply.Payload(), func(sig types.Signature) {
		reply.Sig = sig
		r.send(to, reply)
	})
}

// flushVoteWaitersLocked answers every client owed a vote. Caller holds
// t.mu. No-op while the vote is still unresolved (or suppressed).
func (r *Replica) flushVoteWaitersLocked(t *txState) {
	if !t.voteReady || t.voteWaiters.length() == 0 {
		return
	}
	for addr, reqID := range t.voteWaiters.take() {
		r.sendVoteLocked(addr, reqID, t)
	}
}

// replyLoggedDecisionLocked answers a recovery request with the signed
// logged ST2 decision. Caller holds t.mu.
func (r *Replica) replyLoggedDecisionLocked(to transport.Addr, reqID uint64, t *txState) {
	st2r := &types.ST2Reply{
		ReqID:        reqID,
		TxID:         t.id,
		ShardID:      r.cfg.Shard,
		ReplicaID:    r.cfg.Index,
		Decision:     t.decision,
		ViewDecision: t.viewDecision,
		ViewCurrent:  t.viewCurrent,
	}
	reply := &types.ST1Reply{
		ReqID: reqID, TxID: t.id, ShardID: r.cfg.Shard, ReplicaID: r.cfg.Index,
		RPKind: types.RPDecision, Decision: t.decision, ST2R: st2r,
	}
	r.signThen(st2r.Payload(), func(sig types.Signature) {
		st2r.Sig = sig
		r.send(to, reply)
	})
}

// onST2 logs the client's tentative 2PC decision on the logging shard
// (paper §4.2 stage 2). The replica validates that the decision is
// justified by the attached vote tallies before it creates or touches any
// transaction state — the signature checks run on this worker (fanned
// through the verify pool), never under a protocol lock. Correct replicas
// never change a logged decision within a view (equivocating clients
// therefore produce divergent logs that only the fallback reconciles).
func (r *Replica) onST2(from transport.Addr, m *types.ST2Request) {
	if m.Meta == nil || m.Meta.ID() != m.TxID {
		return
	}
	if m.Meta.LogShard() != r.cfg.Shard {
		return // not the logging shard for this transaction
	}
	r.Stats.ST2s.Add(1)
	// Resurrection guard: an ST2 for a collected transaction gets the
	// proven outcome (a certificate beats a logged decision; the client's
	// recovery paths consume RPCert) instead of re-logging a decision into
	// fresh state; below-watermark requests with no outcome are dropped.
	switch rec, oc := r.lifecycleCheck(m.TxID, m.Meta.Timestamp); oc {
	case lifecycleStale:
		r.adm.noteStale(m.ClientID)
		return
	case lifecycleServed:
		if r.serveFinalized(from, m.ReqID, rec) {
			return
		}
	}
	if !r.cfg.AllowUnvalidatedST2 && !r.decisionLoggedFor(m.TxID) {
		vfStart := r.tracer.Start(m.TC)
		err := r.qv.VerifyTallyJustifies(m.Meta, m.Decision, m.Tallies)
		r.tracer.End(m.TC, r.traceNode, "replica.verify", 0, vfStart)
		if err != nil {
			return
		}
	}
	t := r.tx(m.TxID)
	t.mu.Lock()
	if t.meta == nil {
		t.meta = m.Meta
	}
	r.addWaiterLocked(&t.interested, from, m.ReqID)
	if !t.decisionLogged && t.viewCurrent <= m.View {
		t.decision = m.Decision
		t.decisionLogged = true
		t.viewDecision = m.View
		if !r.logDecisionLocked(t, m.TC) {
			// Never acknowledge a decision that is not on disk.
			t.decisionLogged = false
			t.mu.Unlock()
			return
		}
		r.markLive(t)
	}
	r.replyLoggedDecisionST2Locked(from, m.ReqID, t)
	t.mu.Unlock()
}

// decisionLoggedFor reports whether a decision is already logged for id —
// re-delivered ST2s for a logged transaction skip tally re-validation and
// just get the stored decision back.
func (r *Replica) decisionLoggedFor(id types.TxID) bool {
	t := r.peekTx(id)
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.decisionLogged
}

// replyLoggedDecisionST2Locked sends a plain ST2R. Caller holds t.mu.
func (r *Replica) replyLoggedDecisionST2Locked(to transport.Addr, reqID uint64, t *txState) {
	if !t.decisionLogged {
		return
	}
	st2r := &types.ST2Reply{
		ReqID:        reqID,
		TxID:         t.id,
		ShardID:      r.cfg.Shard,
		ReplicaID:    r.cfg.Index,
		Decision:     t.decision,
		ViewDecision: t.viewDecision,
		ViewCurrent:  t.viewCurrent,
	}
	r.signThen(st2r.Payload(), func(sig types.Signature) {
		st2r.Sig = sig
		r.send(to, st2r)
	})
}

// onWriteback applies a decision certificate (paper §4.3 step 2): validate,
// finalize the store, wake dependent transactions, and notify interested
// recovery clients. The certificate is validated before any state exists
// for the transaction.
func (r *Replica) onWriteback(_ transport.Addr, m *types.WritebackRequest) {
	if m.Meta == nil || m.Cert == nil || m.Meta.ID() != m.TxID || m.Cert.TxID != m.TxID {
		return
	}
	if m.Decision != m.Cert.Decision {
		return
	}
	// Resurrection guard: a writeback below the watermark for GC-truncated
	// history is dropped; one whose outcome (with certificate) the store
	// already proves is a pure duplicate — writebacks carry no reply, so
	// there is nothing to re-serve and no state to rebuild. A finalized
	// record still missing its certificate falls through: finalize attaches
	// it and notifies anyone interested.
	switch rec, oc := r.lifecycleCheck(m.TxID, m.Meta.Timestamp); oc {
	case lifecycleStale:
		return
	case lifecycleServed:
		if rec.Cert != nil {
			return
		}
	}
	vfStart := r.tracer.Start(m.TC)
	err := r.qv.VerifyDecisionCert(m.Cert, m.Meta)
	r.tracer.End(m.TC, r.traceNode, "replica.verify", 0, vfStart)
	if err != nil {
		return
	}
	r.Stats.Writebacks.Add(1)
	r.finalize(m.TxID, m.Meta, m.Decision, m.Cert, m.TC)
}

// finalize records a proven decision, updates the store, and resolves
// dependency waits. The decision (with its certificate) is durably
// logged before anything is applied or replied — WAL discipline — so a
// restarted replica rejoins with every finalized outcome it ever acted
// on.
func (r *Replica) finalize(id types.TxID, meta *types.TxMeta, dec types.Decision, cert *types.DecisionCert, tc types.TraceContext) {
	// The log-then-apply pair is fenced against checkpoint rotation
	// (Replica.applyMu): a checkpoint that rotated after our record was
	// appended waits for the store apply before snapshotting, so the
	// outcome is always in the kept suffix or in the snapshot.
	r.applyMu.RLock()
	if !r.logFinal(id, meta, dec, cert, tc) {
		r.applyMu.RUnlock()
		return // mute: the outcome never reached disk
	}
	changed := r.store.Finalize(id, meta, dec, cert)
	r.applyMu.RUnlock()
	t := r.tx(id)
	t.mu.Lock()
	if t.meta == nil {
		t.meta = meta
	}
	first := !t.finalized
	t.finalized = true
	if !t.voteReady {
		// Align the stored vote with the outcome for late duplicate ST1s.
		t.vote = types.VoteCommit
		if dec == types.DecisionAbort {
			t.vote = types.VoteAbort
		}
		t.voteReady = true
	}
	// Clients whose ST1 raced the writeback get their (derived) vote now.
	r.flushVoteWaitersLocked(t)
	interested := t.interested.take()
	t.mu.Unlock()
	// Finalized states leave the checkpoint-capture index: the outcome is
	// in the store section of every future snapshot.
	r.unmarkLive(id)
	if first && dec == types.DecisionCommit && meta != nil {
		r.adm.noteCommitted(meta.Timestamp.ClientID)
	}

	var waiters []types.TxID
	if changed || first {
		r.mu.Lock()
		waiters = r.depWaiters[id]
		delete(r.depWaiters, id)
		r.mu.Unlock()
	}

	// Notify clients that were recovering this transaction.
	for addr, reqID := range interested {
		reply := &types.ST1Reply{
			ReqID: reqID, TxID: id, ShardID: r.cfg.Shard, ReplicaID: r.cfg.Index,
			RPKind: types.RPCert, Cert: cert, CertMeta: meta,
		}
		r.send(addr, reply)
	}

	// Wake transactions whose votes were deferred on this dependency
	// (Algorithm 1 lines 15–19).
	for _, waiter := range waiters {
		r.resolveDependency(waiter, id, dec)
	}
}

// resolveDependency marks dep decided for the waiting transaction and, if
// it was the last one, fixes the vote and answers the queued clients.
func (r *Replica) resolveDependency(waiter, dep types.TxID, dec types.Decision) {
	t := r.peekTx(waiter)
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.voteReady {
		return
	}
	delete(t.waitingOn, dep)
	if dec == types.DecisionAbort {
		t.depAborted = true
	}
	if len(t.waitingOn) > 0 {
		return
	}
	vote := types.VoteCommit
	if t.depAborted {
		r.store.RemovePrepared(waiter)
		vote = types.VoteAbort
	}
	// Dependency resolution happens long after the triggering request, so
	// there is no carrier context to attribute the vote to.
	r.finishVoteLocked(t, vote, nil, nil, types.TraceContext{})
	r.flushVoteWaitersLocked(t)
}
