package replica

import (
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/types"
)

// onST1 runs the Prepare-phase concurrency-control check (paper §4.2
// step 2, Algorithm 1). A correct replica executes the check at most once
// per transaction and stores its vote for duplicate and recovery requests.
func (r *Replica) onST1(from transport.Addr, m *types.ST1Request) {
	if m.Meta == nil {
		return
	}
	id := m.Meta.ID()
	r.Stats.ST1s.Add(1)

	r.mu.Lock()
	t := r.txLocked(id)
	if t.meta == nil {
		t.meta = m.Meta
	}
	if m.Recovery {
		t.interested[from] = m.ReqID
	}
	// Recovery fast-forward: if we already hold a certificate or a logged
	// decision, return that instead of a plain vote (paper §5 common case).
	if m.Recovery {
		if rec := r.store.Tx(id); rec != nil && rec.Cert != nil &&
			(rec.Status == store.StatusCommitted || rec.Status == store.StatusAborted) {
			reply := &types.ST1Reply{
				ReqID: m.ReqID, TxID: id, ShardID: r.cfg.Shard, ReplicaID: r.cfg.Index,
				RPKind: types.RPCert, Cert: rec.Cert, CertMeta: rec.Meta,
			}
			r.mu.Unlock()
			// Certificates are self-authenticating; no signature needed.
			r.send(from, reply)
			return
		}
		if t.decisionLogged {
			r.replyLoggedDecisionLocked(from, m.ReqID, t)
			r.mu.Unlock()
			return
		}
	}
	if t.voteReady {
		r.sendVoteLocked(from, m.ReqID, t)
		r.mu.Unlock()
		return
	}
	if len(t.waitingOn) > 0 {
		// Check already ran; still waiting on dependencies.
		t.voteWaiters[from] = m.ReqID
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	vote, conflict, conflictMeta, blockedBy, pendingDeps, depAborted := r.runCheck(m.Meta, id)

	r.mu.Lock()
	t = r.txLocked(id)
	if t.voteReady { // raced with a duplicate
		r.sendVoteLocked(from, m.ReqID, t)
		r.mu.Unlock()
		return
	}
	if vote == types.VoteCommit && len(pendingDeps) > 0 {
		// Algorithm 1 line 15: defer the vote until dependencies decide.
		r.Stats.DepWaits.Add(1)
		t.voteWaiters[from] = m.ReqID
		t.depAborted = depAborted
		for _, dep := range pendingDeps {
			t.waitingOn[dep] = true
			r.depWaiters[dep] = append(r.depWaiters[dep], id)
		}
		r.mu.Unlock()
		return
	}
	if vote == types.VoteCommit && depAborted {
		// Line 16–18: a dependency aborted; withdraw the prepare.
		r.store.RemovePrepared(id)
		vote = types.VoteAbort
	}
	r.finishVoteLocked(t, vote, conflict, conflictMeta)
	if t.blockedBy == nil {
		t.blockedBy = blockedBy
	}
	r.sendVoteLocked(from, m.ReqID, t)
	r.mu.Unlock()
}

// runCheck performs Algorithm 1 lines 1–14 and classifies dependencies.
// It returns the tentative vote, optional conflict evidence, the set of
// still-undecided dependencies, and whether any dependency already aborted.
func (r *Replica) runCheck(meta *types.TxMeta, id types.TxID) (types.Vote, *types.DecisionCert, *types.TxMeta, *types.TxMeta, []types.TxID, bool) {
	// Line 1: timestamp admission.
	if !r.withinDelta(meta.Timestamp) {
		return types.VoteAbort, nil, nil, nil, nil, false
	}
	// Lines 3–4: dependency validity. Each dependency must name a
	// transaction this replica has prepared or committed, producing the
	// claimed version.
	var pending []types.TxID
	depAborted := false
	for _, d := range meta.Deps {
		rec := r.store.Tx(d.TxID)
		if rec == nil || rec.Meta == nil || rec.Meta.Timestamp != d.Version {
			return types.VoteAbort, nil, nil, nil, nil, false
		}
		switch rec.Status {
		case store.StatusAborted:
			depAborted = true
		case store.StatusPrepared:
			pending = append(pending, d.TxID)
		}
	}
	// Lines 5–14: serializability checks + prepare.
	res := r.store.CheckAndPrepare(meta, id)
	switch res.Outcome {
	case store.CheckMisbehavior:
		r.Stats.Misbehavior.Add(1)
		return types.VoteAbort, nil, nil, nil, nil, false
	case store.CheckAbort:
		return types.VoteAbort, res.Conflict, res.ConflictMeta, res.PreparedConflict, nil, false
	case store.CheckDuplicate:
		// Vote already stored (or the transaction is finalized); the
		// caller resends the stored vote.
		return types.VoteNone, nil, nil, nil, nil, false
	}
	return types.VoteCommit, nil, nil, nil, pending, depAborted
}

// finishVoteLocked fixes the replica's stage-1 vote. Caller holds r.mu.
func (r *Replica) finishVoteLocked(t *txState, vote types.Vote, conflict *types.DecisionCert, conflictMeta *types.TxMeta) {
	if t.voteReady || vote == types.VoteNone {
		if !t.voteReady && vote == types.VoteNone {
			// Duplicate outcome without a stored vote can only happen if
			// the transaction was finalized straight from a writeback;
			// derive the vote from the final status.
			switch r.store.TxStatusOf(t.id) {
			case store.StatusCommitted:
				t.vote, t.voteReady = types.VoteCommit, true
			case store.StatusAborted:
				t.vote, t.voteReady = types.VoteAbort, true
			}
		}
		return
	}
	if r.cfg.Byzantine != nil {
		vote = r.cfg.Byzantine.MutateVote(t.id, vote)
		if vote == types.VoteNone {
			return // suppressed
		}
	}
	t.vote = vote
	t.voteReady = true
	t.voteConflict = conflict
	t.conflictMeta = conflictMeta
	if vote == types.VoteCommit {
		r.Stats.VotesCommit.Add(1)
	} else {
		r.Stats.VotesAbort.Add(1)
	}
}

// sendVoteLocked signs and sends the stored ST1 vote to one client.
// Caller holds r.mu; the send happens on the batcher goroutine.
func (r *Replica) sendVoteLocked(to transport.Addr, reqID uint64, t *txState) {
	if !t.voteReady {
		t.voteWaiters[to] = reqID
		return
	}
	reply := &types.ST1Reply{
		ReqID:        reqID,
		TxID:         t.id,
		ShardID:      r.cfg.Shard,
		ReplicaID:    r.cfg.Index,
		Vote:         t.vote,
		Conflict:     t.voteConflict,
		ConflictMeta: t.conflictMeta,
		BlockedBy:    t.blockedBy,
		RPKind:       types.RPVote,
	}
	r.signThen(reply.Payload(), func(sig types.Signature) {
		reply.Sig = sig
		r.send(to, reply)
	})
}

// replyLoggedDecisionLocked answers a recovery request with the signed
// logged ST2 decision. Caller holds r.mu.
func (r *Replica) replyLoggedDecisionLocked(to transport.Addr, reqID uint64, t *txState) {
	st2r := &types.ST2Reply{
		ReqID:        reqID,
		TxID:         t.id,
		ShardID:      r.cfg.Shard,
		ReplicaID:    r.cfg.Index,
		Decision:     t.decision,
		ViewDecision: t.viewDecision,
		ViewCurrent:  t.viewCurrent,
	}
	reply := &types.ST1Reply{
		ReqID: reqID, TxID: t.id, ShardID: r.cfg.Shard, ReplicaID: r.cfg.Index,
		RPKind: types.RPDecision, Decision: t.decision, ST2R: st2r,
	}
	r.signThen(st2r.Payload(), func(sig types.Signature) {
		st2r.Sig = sig
		r.send(to, reply)
	})
}

// onST2 logs the client's tentative 2PC decision on the logging shard
// (paper §4.2 stage 2). The replica validates that the decision is
// justified by the attached vote tallies; correct replicas never change a
// logged decision within a view (equivocating clients therefore produce
// divergent logs that only the fallback reconciles).
func (r *Replica) onST2(from transport.Addr, m *types.ST2Request) {
	if m.Meta == nil || m.Meta.ID() != m.TxID {
		return
	}
	if m.Meta.LogShard() != r.cfg.Shard {
		return // not the logging shard for this transaction
	}
	r.Stats.ST2s.Add(1)
	r.mu.Lock()
	t := r.txLocked(m.TxID)
	if t.meta == nil {
		t.meta = m.Meta
	}
	t.interested[from] = m.ReqID
	if !t.decisionLogged {
		r.mu.Unlock()
		// Validate outside the lock: signature checks are expensive.
		if !r.cfg.AllowUnvalidatedST2 {
			if err := r.qv.VerifyTallyJustifies(m.Meta, m.Decision, m.Tallies); err != nil {
				return
			}
		}
		r.mu.Lock()
		t = r.txLocked(m.TxID)
		if !t.decisionLogged && t.viewCurrent <= m.View {
			t.decision = m.Decision
			t.decisionLogged = true
			t.viewDecision = m.View
		}
	}
	r.replyLoggedDecisionST2Locked(from, m.ReqID, t)
	r.mu.Unlock()
}

// replyLoggedDecisionST2Locked sends a plain ST2R. Caller holds r.mu.
func (r *Replica) replyLoggedDecisionST2Locked(to transport.Addr, reqID uint64, t *txState) {
	if !t.decisionLogged {
		return
	}
	st2r := &types.ST2Reply{
		ReqID:        reqID,
		TxID:         t.id,
		ShardID:      r.cfg.Shard,
		ReplicaID:    r.cfg.Index,
		Decision:     t.decision,
		ViewDecision: t.viewDecision,
		ViewCurrent:  t.viewCurrent,
	}
	r.signThen(st2r.Payload(), func(sig types.Signature) {
		st2r.Sig = sig
		r.send(to, st2r)
	})
}

// onWriteback applies a decision certificate (paper §4.3 step 2): validate,
// finalize the store, wake dependent transactions, and notify interested
// recovery clients.
func (r *Replica) onWriteback(_ transport.Addr, m *types.WritebackRequest) {
	if m.Meta == nil || m.Cert == nil || m.Meta.ID() != m.TxID || m.Cert.TxID != m.TxID {
		return
	}
	if m.Decision != m.Cert.Decision {
		return
	}
	if err := r.qv.VerifyDecisionCert(m.Cert, m.Meta); err != nil {
		return
	}
	r.Stats.Writebacks.Add(1)
	r.finalize(m.TxID, m.Meta, m.Decision, m.Cert)
}

// finalize records a proven decision, updates the store, and resolves
// dependency waits.
func (r *Replica) finalize(id types.TxID, meta *types.TxMeta, dec types.Decision, cert *types.DecisionCert) {
	changed := r.store.Finalize(id, meta, dec, cert)
	r.mu.Lock()
	t := r.txLocked(id)
	if t.meta == nil {
		t.meta = meta
	}
	first := !t.finalized
	t.finalized = true
	if !t.voteReady {
		// Align the stored vote with the outcome for late duplicate ST1s.
		t.vote = types.VoteCommit
		if dec == types.DecisionAbort {
			t.vote = types.VoteAbort
		}
		t.voteReady = true
	}
	var waiters []types.TxID
	if changed || first {
		waiters = r.depWaiters[id]
		delete(r.depWaiters, id)
	}
	interested := t.interested
	t.interested = make(map[transport.Addr]uint64)
	r.mu.Unlock()

	// Notify clients that were recovering this transaction.
	for addr, reqID := range interested {
		reply := &types.ST1Reply{
			ReqID: reqID, TxID: id, ShardID: r.cfg.Shard, ReplicaID: r.cfg.Index,
			RPKind: types.RPCert, Cert: cert, CertMeta: meta,
		}
		r.send(addr, reply)
	}

	// Wake transactions whose votes were deferred on this dependency
	// (Algorithm 1 lines 15–19).
	for _, waiter := range waiters {
		r.resolveDependency(waiter, id, dec)
	}
}

// resolveDependency marks dep decided for the waiting transaction and, if
// it was the last one, fixes and broadcasts the vote.
func (r *Replica) resolveDependency(waiter, dep types.TxID, dec types.Decision) {
	r.mu.Lock()
	t := r.txs[waiter]
	if t == nil || t.voteReady {
		r.mu.Unlock()
		return
	}
	delete(t.waitingOn, dep)
	if dec == types.DecisionAbort {
		t.depAborted = true
	}
	if len(t.waitingOn) > 0 {
		r.mu.Unlock()
		return
	}
	vote := types.VoteCommit
	if t.depAborted {
		r.store.RemovePrepared(waiter)
		vote = types.VoteAbort
	}
	r.finishVoteLocked(t, vote, nil, nil)
	waitersCopy := make(map[transport.Addr]uint64, len(t.voteWaiters))
	for a, q := range t.voteWaiters {
		waitersCopy[a] = q
	}
	t.voteWaiters = make(map[transport.Addr]uint64)
	for addr, reqID := range waitersCopy {
		r.sendVoteLocked(addr, reqID, t)
	}
	r.mu.Unlock()
}
