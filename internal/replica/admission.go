package replica

import (
	"sync"
	"sync/atomic"

	"repro/internal/transport"
	"repro/internal/types"
)

// Admission control: the replica's bounded front door.
//
// The paper makes clients first-class Byzantine actors — a correctly-signed
// client can spam prepares at line rate, abandon transactions to force
// recovery storms, or replay stale traffic — so the replica must bound the
// work it accepts, not just verify it. Before this layer, Deliver handed
// every message to the verify pool, whose full queue blocked the transport
// reader: backpressure, but silent and unbounded upstream (the Local
// mailbox grew without limit, and an honest client stuck behind a spammer
// simply hung until its deadline).
//
// admission replaces that with an explicit, bounded dispatch queue:
//
//   - inflight counts messages admitted but not yet finished dispatching;
//     it may never exceed cap. Over-limit arrivals are shed in O(1).
//   - Shedding is explicit: requests that carry a ReqID get an
//     types.Overloaded{RetryAfter} reply so the client backs off and
//     retries instead of burning its deadline against a silent wall.
//   - A per-client reputation score — fed only by *bad outcomes* the
//     replica already tracks (abandoned prepares, abort votes, recovery
//     traffic, stale drops), never by raw request volume — sheds abusers
//     earlier (above softCapNum/softCapDen occupancy), hands them a
//     longer RetryAfter, and enforces that hint server-side: a suspect
//     is held to a suspectRatePerSec token bucket even when the queue
//     has room, since a Byzantine client ignores hints by definition.
//     Honest hot clients are untouched below the hard cap because
//     volume alone never raises a score.
//
// Locking: admit/release are lock-free (atomics). The client-score table
// is guarded by mu and is bounded by maxTrackedClients; scores themselves
// are atomics updated from protocol handlers without extra locks.

// Default and limit constants for the admission queue.
const (
	// defaultDispatchQueue is the inflight cap when Config.DispatchQueue
	// is 0: far above any honest closed-loop load, small enough to bound
	// the memory a line-rate spammer can pin.
	defaultDispatchQueue = 1024
	// maxTrackedClients caps the reputation table; beyond it, an arbitrary
	// entry is evicted (a Byzantine client shedding identities faster than
	// this buys itself a clean score but loses its request history too).
	maxTrackedClients = 4096
	// softCapNum/softCapDen: above this fraction of the hard cap,
	// low-reputation clients are shed pre-emptively.
	softCapNum = 3
	softCapDen = 4
	// retryAfterMicros is the backoff hint handed to honest clients on a
	// hard shed; suspects get retryAfterSuspectMicros.
	retryAfterMicros        = 2_000
	retryAfterSuspectMicros = 20_000
	// suspectRatePerSec/suspectBurst: a suspect is held to roughly the
	// rate its RetryAfter hint implies even when the queue has room — a
	// Byzantine client ignores hints by definition, so the hint is
	// enforced server-side with a token bucket. The allowance leaves a
	// reforming client enough bandwidth to finish transactions, feed its
	// commit count, and decay back to clean.
	suspectRatePerSec = 128
	suspectBurst      = 32
	// scoreDecayLimit: when a client's event counts exceed it, they are
	// halved, so old sins (and old virtues) fade and a reformed client is
	// not throttled forever.
	scoreDecayLimit = 1 << 16
)

// clientScore accumulates one client's observable outcomes. All fields
// are atomics; updates come straight from protocol handlers.
type clientScore struct {
	requests   atomic.Uint64 // admitted messages (context, not a penalty)
	commits    atomic.Uint64 // finalized writebacks: good behavior
	aborts     atomic.Uint64 // abort votes on this client's transactions
	abandons   atomic.Uint64 // prepared transactions never finished (GC found them)
	recoveries atomic.Uint64 // recovery prepares other clients ran on its transactions
	stales     atomic.Uint64 // below-watermark traffic dropped by the lifecycle guard

	// Suspect rate limiting (guarded by rlMu, touched only for suspects,
	// so the honest admit path never takes it).
	rlMu     sync.Mutex
	rlTokens float64
	rlLast   uint64 // µs of the last refill; 0 = bucket never used
}

// takeSuspectToken enforces the suspect rate limit: the bucket refills at
// suspectRatePerSec up to suspectBurst, and an arrival with no token left
// is shed. The first call finds a full bucket.
func (s *clientScore) takeSuspectToken(nowMicros uint64) bool {
	s.rlMu.Lock()
	defer s.rlMu.Unlock()
	if s.rlLast == 0 {
		s.rlTokens = suspectBurst
	} else if nowMicros > s.rlLast {
		s.rlTokens += float64(nowMicros-s.rlLast) * suspectRatePerSec / 1e6
		if s.rlTokens > suspectBurst {
			s.rlTokens = suspectBurst
		}
	}
	s.rlLast = nowMicros
	if s.rlTokens < 1 {
		return false
	}
	s.rlTokens--
	return true
}

// bad is the weighted misbehavior mass: abandoning a prepared transaction
// (forcing every dependent into recovery) is the worst signal, recovery
// traffic it caused next, plain aborts and stale replays the mildest.
func (s *clientScore) bad() uint64 {
	return 4*s.abandons.Load() + 2*s.recoveries.Load() + s.aborts.Load() + s.stales.Load()
}

// suspect reports whether this client should be deprioritized under
// pressure: enough misbehavior mass, and more of it than finished work.
// Request volume is deliberately absent — a hot honest client stays clean.
func (s *clientScore) suspect() bool {
	bad, good := s.bad(), 4*s.commits.Load()
	if bad+good > scoreDecayLimit {
		s.decay()
	}
	return bad >= 8 && bad > good
}

// decay halves every counter. Racy halvings are acceptable: the score is
// a heuristic, and losing an increment moves it by one part in thousands.
func (s *clientScore) decay() {
	for _, c := range []*atomic.Uint64{&s.requests, &s.commits, &s.aborts, &s.abandons, &s.recoveries, &s.stales} {
		c.Store(c.Load() / 2)
	}
}

// admission is the replica's bounded intake queue plus reputation table.
type admission struct {
	r   *Replica
	cap int64 // inflight cap; <= 0 disables admission (unlimited, seed behavior)

	inflight atomic.Int64

	mu      sync.Mutex
	clients map[uint64]*clientScore
}

func newAdmission(r *Replica, queue int) *admission {
	cap := int64(queue)
	if queue == 0 {
		cap = defaultDispatchQueue
	}
	return &admission{r: r, cap: cap, clients: make(map[uint64]*clientScore)}
}

// clientIDOf extracts the client a message is attributable to, for
// admission accounting. Replica-to-replica traffic (ElectFB, DecFB, and
// replies) is not client-attributable.
func clientIDOf(msg any) (uint64, bool) {
	switch m := msg.(type) {
	case *types.ReadRequest:
		return m.ClientID, true
	case *types.ST1Request:
		return m.ClientID, true
	case *types.ST2Request:
		return m.ClientID, true
	case *types.WritebackRequest:
		return m.ClientID, true
	case *types.InvokeFB:
		return m.ClientID, true
	case *types.AbortRead:
		return m.ClientID, true
	}
	return 0, false
}

// reqIDOf extracts the request id a shed reply must echo. Only messages a
// client is actively waiting on have one; fire-and-forget traffic
// (writeback, abort-read) and replica-to-replica messages shed silently.
func reqIDOf(msg any) (uint64, bool) {
	switch m := msg.(type) {
	case *types.ReadRequest:
		return m.ReqID, true
	case *types.ST1Request:
		return m.ReqID, true
	case *types.ST2Request:
		return m.ReqID, true
	case *types.InvokeFB:
		return m.ReqID, true
	}
	return 0, false
}

// score returns (creating if needed) the reputation record for client id.
// The table is bounded by maxTrackedClients, evicting an arbitrary entry
// at the cap.
func (a *admission) score(id uint64) *clientScore {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s := a.clients[id]; s != nil {
		return s
	}
	if len(a.clients) >= maxTrackedClients {
		for k := range a.clients {
			delete(a.clients, k)
			break
		}
	}
	s := &clientScore{}
	a.clients[id] = s
	return s
}

// peekScore returns the record for id without creating one.
func (a *admission) peekScore(id uint64) *clientScore {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.clients[id]
}

// admit decides whether msg enters the dispatch queue. On admission the
// caller owes exactly one release. On refusal the message is shed: counted,
// and answered with an Overloaded reply when the sender is waiting on one.
func (a *admission) admit(from transport.Addr, msg any) bool {
	if a.cap <= 0 {
		return true // admission disabled: unlimited seed behavior
	}
	var sc *clientScore
	if cid, ok := clientIDOf(msg); ok {
		sc = a.score(cid)
		sc.requests.Add(1)
	}
	depth := a.inflight.Add(1)
	switch {
	case depth > a.cap:
		a.inflight.Add(-1)
		a.r.Stats.Shed.Add(1)
		a.r.frec.Note("shed", "dispatch queue full")
		a.shedReply(from, msg, sc)
		return false
	case sc != nil && sc.suspect() &&
		(depth*softCapDen > a.cap*softCapNum ||
			!sc.takeSuspectToken(a.r.cfg.Clock.NowMicros())):
		a.inflight.Add(-1)
		a.r.Stats.Shed.Add(1)
		a.r.Stats.ShedReputation.Add(1)
		a.r.frec.Note("shed", "low-reputation client deprioritized")
		a.shedReply(from, msg, sc)
		return false
	}
	return true
}

// release returns an admitted message's slot once its handler finished.
func (a *admission) release() {
	if a.cap > 0 {
		a.inflight.Add(-1)
	}
}

// depth is the current dispatch-queue occupancy (admitted, not yet done).
func (a *admission) depth() int64 { return a.inflight.Load() }

// DispatchDepth exposes the admission queue's occupancy (the
// basil_replica_dispatch_depth gauge) for tests and tooling.
func (r *Replica) DispatchDepth() int64 { return r.adm.depth() }

// shedReply answers a shed request with Overloaded so the client backs off
// instead of hammering its deadline. Suspects get a 10x longer hint — the
// rate limit half of deprioritization. Sent directly (never through the
// pool this queue guards); the reply is tiny and unsigned.
func (a *admission) shedReply(from transport.Addr, msg any, sc *clientScore) {
	reqID, ok := reqIDOf(msg)
	if !ok {
		return
	}
	retry := uint64(retryAfterMicros)
	if sc != nil && sc.suspect() {
		retry = retryAfterSuspectMicros
	}
	a.r.send(from, &types.Overloaded{
		ReqID:            reqID,
		ShardID:          a.r.cfg.Shard,
		ReplicaID:        a.r.cfg.Index,
		RetryAfterMicros: retry,
	})
}

// Outcome feeds, called from the protocol handlers that already track
// these events. All are O(1) atomic bumps; a nil-safe no-op when the
// client was never scored (admission disabled, or replica-local traffic).

func (a *admission) noteCommitted(clientID uint64) {
	if s := a.peekScore(clientID); s != nil {
		s.commits.Add(1)
	}
}

func (a *admission) noteAbortVote(clientID uint64) {
	if s := a.peekScore(clientID); s != nil {
		s.aborts.Add(1)
	}
}

// noteRecovery charges the *owner* of the transaction being recovered —
// the client whose abandonment forced someone else into recovery — not
// the recovering client, who is the victim.
func (a *admission) noteRecovery(ownerClientID uint64) {
	if s := a.peekScore(ownerClientID); s != nil {
		s.recoveries.Add(1)
	}
}

func (a *admission) noteStale(clientID uint64) {
	if s := a.peekScore(clientID); s != nil {
		s.stales.Add(1)
	}
}

// noteAbandoned charges a transaction's owner when watermark collection
// finds it prepared but never finished — the canonical Byzantine
// dependency-hostage pattern.
func (a *admission) noteAbandoned(ownerClientID uint64) {
	if s := a.peekScore(ownerClientID); s != nil {
		s.abandons.Add(1)
	}
}
