package replica

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/quorum"
	"repro/internal/transport"
	"repro/internal/types"
)

// newTestReplica builds one replica (f=1 shard 0 index 0) on a fresh
// Local network.
func newTestReplica(t *testing.T, batch int) (*Replica, *transport.Local) {
	t.Helper()
	net := transport.NewLocal()
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, 6, 1)
	r := New(Config{
		Shard: 0, Index: 0, F: 1,
		DeltaMicros: 60_000_000,
		BatchSize:   batch,
		Registry:    reg,
		SignerID:    0,
		SignerOf:    quorum.SignerOf(func(s, i int32) int32 { return i }),
		Net:         net,
	})
	return r, net
}

func st1For(key string, ts uint64) *types.ST1Request {
	return &types.ST1Request{
		ReqID: 1, ClientID: 9,
		Meta: &types.TxMeta{
			Timestamp: types.Timestamp{Time: ts, ClientID: 9},
			WriteSet:  []types.WriteEntry{{Key: key, Value: []byte("v")}},
			Shards:    []int32{0},
		},
	}
}

// TestRedeliveryAfterCloseDoesNotSign: a duplicate message delivered after
// Replica.Close must be dropped — no panic, no signature produced through
// the closed batcher. Before the ingest pipeline drained its pool on
// Close, a late duplicate could race the shutdown into a handler that
// enqueued signing work on a closed batcher.
func TestRedeliveryAfterCloseDoesNotSign(t *testing.T) {
	r, net := newTestReplica(t, 4)
	defer net.Close()
	client := transport.ClientAddr(9)
	var gotReplies sync.WaitGroup
	gotReplies.Add(1)
	once := sync.Once{}
	net.Register(client, transport.HandlerFunc(func(_ transport.Addr, msg any) {
		if _, ok := msg.(*types.ST1Reply); ok {
			once.Do(gotReplies.Done)
		}
	}))

	m := st1For("x", 10)
	net.Send(client, r.Addr(), m)
	gotReplies.Wait() // the live replica answered

	r.Close()
	signed := r.Stats.SigsSigned.Load()

	// Re-deliver the same ST1 (and a few friends) straight into the
	// closed replica, as a recovering client would.
	for i := 0; i < 8; i++ {
		r.Deliver(client, m)
		r.Deliver(client, st1For("y", 20+uint64(i)))
	}
	time.Sleep(20 * time.Millisecond)
	if got := r.Stats.SigsSigned.Load(); got != signed {
		t.Fatalf("closed replica signed %d new payloads", got-signed)
	}
	r.Close() // idempotent
}

// TestCloseDrainsInflightHandlers: messages accepted before Close must be
// fully processed (their signatures produced) before Close returns, and a
// burst racing Close must never panic the pool or the batcher.
func TestCloseDrainsInflightHandlers(t *testing.T) {
	r, net := newTestReplica(t, 1)
	defer net.Close()
	client := transport.ClientAddr(9)
	net.Register(client, transport.HandlerFunc(func(transport.Addr, any) {}))

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				r.Deliver(client, st1For("k", uint64(1000*g+i+1)))
			}
		}()
	}
	// Close while the burst is in flight.
	done := make(chan struct{})
	go func() { r.Close(); close(done) }()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain the pool")
	}
	// Every message either completed before the close barrier (and was
	// signed) or was dropped at Deliver; nothing may sign afterwards.
	after := r.Stats.SigsSigned.Load()
	time.Sleep(20 * time.Millisecond)
	if got := r.Stats.SigsSigned.Load(); got != after {
		t.Fatalf("signing continued after Close: %d -> %d", after, got)
	}
}
