package replica

import (
	"fmt"
	"testing"

	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/types"
)

// Lifecycle regression tests: watermark collection, the resurrection
// guard (late duplicates for collected transactions re-serve the store's
// finalized outcome), and the waiter-set cap.

// TestWaiterSetCapEvictsOldest pins the waiterSet contract directly:
// update-in-place for a repeated address, evict-oldest at capacity.
func TestWaiterSetCapEvictsOldest(t *testing.T) {
	var ws waiterSet
	for i := 0; i < maxTxWaiters; i++ {
		if ws.add(transport.ClientAddr(int32(i)), uint64(i)) {
			t.Fatalf("eviction below capacity at %d", i)
		}
	}
	// Re-adding an existing address updates in place, no eviction.
	if ws.add(transport.ClientAddr(3), 99) {
		t.Fatal("update-in-place evicted")
	}
	if ws.length() != maxTxWaiters || ws.m[transport.ClientAddr(3)] != 99 {
		t.Fatalf("length=%d reqID=%d after update", ws.length(), ws.m[transport.ClientAddr(3)])
	}
	// One past capacity: the oldest entry (addr 0) goes.
	if !ws.add(transport.ClientAddr(1000), 1) {
		t.Fatal("no eviction at capacity")
	}
	if ws.length() != maxTxWaiters {
		t.Fatalf("length=%d after eviction, want %d", ws.length(), maxTxWaiters)
	}
	if _, still := ws.m[transport.ClientAddr(0)]; still {
		t.Fatal("oldest entry survived eviction")
	}
}

// TestVoteWaiterCapBoundsMemory is the failing-before test for the waiter
// cap: a herd of distinct client addresses hammering ST1 for one
// vote-deferred transaction used to grow t.voteWaiters without bound; now
// the set is capped with evictions counted.
func TestVoteWaiterCapBoundsMemory(t *testing.T) {
	r, net := newTestReplica(t, 1)
	defer net.Close()
	defer r.Close()
	client, st1, _ := captureClient(net, 9)

	// D: prepared with a commit vote; X depends on D, so X's vote defers
	// and every duplicate ST1 for X queues as a vote waiter.
	mD := st1For("d", 10)
	idD := mD.Meta.ID()
	r.Deliver(client, mD)
	awaitReply(t, st1, idD)
	metaX := &types.TxMeta{
		Timestamp: types.Timestamp{Time: 20, ClientID: 9},
		WriteSet:  []types.WriteEntry{{Key: "x", Value: []byte("v")}},
		Deps:      []types.Dependency{{TxID: idD, Version: mD.Meta.Timestamp}},
		Shards:    []int32{0},
	}
	idX := metaX.ID()
	herd := 2 * maxTxWaiters
	for i := 0; i < herd; i++ {
		r.Deliver(transport.ClientAddr(int32(100+i)), &types.ST1Request{
			ReqID: uint64(i + 1), ClientID: uint64(100 + i), Meta: metaX,
		})
	}
	waitFor(t, func() bool { return r.Stats.WaiterEvictions.Load() >= uint64(herd-maxTxWaiters) })
	tx := r.peekTx(idX)
	tx.mu.Lock()
	n := tx.voteWaiters.length()
	tx.mu.Unlock()
	if n > maxTxWaiters {
		t.Fatalf("voteWaiters grew to %d, cap is %d", n, maxTxWaiters)
	}
}

// TestCollectedDuplicateServedFromStore is the resurrection-bug
// regression: after the watermark passes a finalized transaction and its
// txState is collected, a late duplicate ST1 must be answered with the
// finalized outcome from the store (RPCert) and must NOT rebuild votable
// protocol state.
func TestCollectedDuplicateServedFromStore(t *testing.T) {
	r, net := newTestReplica(t, 1)
	defer net.Close()
	defer r.Close()
	client, st1, _ := captureClient(net, 9)

	m := st1For("k", 10)
	id := m.Meta.ID()
	r.Deliver(client, m)
	if rep := awaitReply(t, st1, id); rep.Vote != types.VoteCommit {
		t.Fatalf("setup vote: %v", rep.Vote)
	}
	cert := &types.DecisionCert{TxID: id, Decision: types.DecisionCommit}
	r.finalize(id, m.Meta, types.DecisionCommit, cert, types.TraceContext{})

	if err := r.Checkpoint(types.Timestamp{Time: 1000}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if n := r.TxStateCount(); n != 0 {
		t.Fatalf("txStates after collect = %d, want 0", n)
	}

	// Late duplicate: outcome re-served from the store's finalized table.
	r.Deliver(client, &types.ST1Request{ReqID: 7, ClientID: 9, Meta: m.Meta})
	rep := awaitReply(t, st1, id)
	if rep.RPKind != types.RPCert || rep.Cert == nil || rep.Cert.Decision != types.DecisionCommit {
		t.Fatalf("late duplicate got %v (cert=%v), want RPCert commit", rep.RPKind, rep.Cert)
	}
	if r.peekTx(id) != nil {
		t.Fatal("late duplicate resurrected a txState")
	}

	// Same guard on the recovery and fallback entry points.
	r.Deliver(client, &types.ST1Request{ReqID: 8, ClientID: 9, Meta: m.Meta, Recovery: true})
	if rep := awaitReply(t, st1, id); rep.RPKind != types.RPCert || rep.Cert == nil {
		t.Fatalf("recovery duplicate got %v, want RPCert", rep.RPKind)
	}
	r.Deliver(client, &types.InvokeFB{ReqID: 9, ClientID: 9, TxID: id, Meta: m.Meta})
	if rep := awaitReply(t, st1, id); rep.RPKind != types.RPCert || rep.Cert == nil {
		t.Fatalf("InvokeFB duplicate got %v, want RPCert", rep.RPKind)
	}
	if r.peekTx(id) != nil {
		t.Fatal("recovery path resurrected a txState")
	}
}

// TestStaleBelowWatermarkDropped: a below-watermark request for a
// transaction with no provable outcome (its history was GC-truncated, or
// it never existed) is dropped, not re-checked — re-running the MVTSO
// check against truncated history could contradict a collected vote.
func TestStaleBelowWatermarkDropped(t *testing.T) {
	r, net := newTestReplica(t, 1)
	defer net.Close()
	defer r.Close()
	client, st1, _ := captureClient(net, 9)

	if err := r.Checkpoint(types.Timestamp{Time: 500}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	mStale := st1For("ghost", 100) // below the watermark, never seen
	idStale := mStale.Meta.ID()
	r.Deliver(client, mStale)
	waitFor(t, func() bool { return r.Stats.StaleDrops.Load() >= 1 })
	if r.peekTx(idStale) != nil {
		t.Fatal("stale request built protocol state")
	}

	// Liveness above the watermark is untouched.
	mLive := st1For("live", 600)
	r.Deliver(client, mLive)
	if rep := awaitReply(t, st1, mLive.Meta.ID()); rep.Vote != types.VoteCommit {
		t.Fatalf("above-watermark vote: %v", rep.Vote)
	}
}

// TestCheckpointCollectsOnlyFinishedState: the collector takes finalized
// and promise-free states below the watermark but never prepared
// (undecided) transactions, whatever their timestamp — dependents still
// need their decisions.
func TestCheckpointCollectsOnlyFinishedState(t *testing.T) {
	r, net := newTestReplica(t, 1)
	defer net.Close()
	defer r.Close()
	client, st1, _ := captureClient(net, 9)

	const finalized = 5
	for i := 0; i < finalized; i++ {
		m := st1For(fmt.Sprintf("k%d", i), uint64(10+i))
		id := m.Meta.ID()
		r.Deliver(client, m)
		awaitReply(t, st1, id)
		r.finalize(id, m.Meta, types.DecisionCommit,
			&types.DecisionCert{TxID: id, Decision: types.DecisionCommit}, types.TraceContext{})
	}
	mPrep := st1For("prep", 50)
	idPrep := mPrep.Meta.ID()
	r.Deliver(client, mPrep)
	awaitReply(t, st1, idPrep)
	if r.TxStateCount() != finalized+1 {
		t.Fatalf("setup: %d states", r.TxStateCount())
	}

	if err := r.Checkpoint(types.Timestamp{Time: 1000}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if n := r.TxStateCount(); n != 1 {
		t.Fatalf("txStates after collect = %d, want 1 (the prepared one)", n)
	}
	if r.Store().TxStatusOf(idPrep) != store.StatusPrepared {
		t.Fatal("prepared transaction lost")
	}
	if got := r.Stats.TxCollected.Load(); got != finalized {
		t.Fatalf("TxCollected = %d, want %d", got, finalized)
	}
	// The survivor still answers duplicates with its original vote.
	r.Deliver(client, &types.ST1Request{ReqID: 9, ClientID: 9, Meta: mPrep.Meta})
	if rep := awaitReply(t, st1, idPrep); rep.Vote != types.VoteCommit {
		t.Fatalf("prepared survivor vote: %v", rep.Vote)
	}
}
