package replica

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"repro/internal/types"
	"repro/internal/wal"
)

// Durability (WAL integration).
//
// The safety argument assumes a replica remembers what it promised: a
// stage-1 vote or a logged ST2 decision it replied with must survive a
// restart, or an honest-but-crashed replica becomes indistinguishable
// from an equivocating Byzantine one. Three record types capture exactly
// the externalized promises:
//
//	vote     — the fixed stage-1 vote plus the transaction metadata
//	           (commit votes also reinstate the prepared set on replay)
//	decision — the logged ST2 decision and its view
//	final    — a proven writeback (decision + certificate)
//
// Discipline: every record is durably appended (group-committed fsync)
// BEFORE the reply it justifies is sent; the append happens inside the
// same txState critical section that fixes the state, so no concurrent
// reader can observe-and-reply ahead of the disk. If an append ever
// fails, the replica goes mute (walFailed) — fail-stop, never
// fail-equivocate.
//
// Restart: Restore replays the newest checkpoint (store snapshot + the
// replica's per-transaction promises) and the log suffix. Prepared
// entries without a durably logged vote are withdrawn — the vote was
// never sent, so re-running the check later is safe — and the store's
// RTS floor is raised to the largest replayed timestamp, a conservative
// stand-in for the RTS entries a crash erases (writers below it abort;
// the reads they could have invalidated may still be in flight).

// WAL record tags.
const (
	walRecVote     = 1
	walRecDecision = 2
	walRecFinal    = 3
)

// logVoteLocked durably appends t's fixed vote. Caller holds t.mu; the
// group-commit wait happens under it, stalling only this transaction's
// traffic for at most the flush window. Returns false (and mutes the
// replica) if the record could not be made durable.
func (r *Replica) logVoteLocked(t *txState, tc types.TraceContext) bool {
	if r.wal == nil {
		return true
	}
	b := make([]byte, 0, 256)
	b = append(b, walRecVote)
	b = append(b, t.id[:]...)
	b = append(b, byte(t.vote))
	b = walMetaOpt(b, t.meta)
	return r.walAppend(b, tc)
}

// logDecisionLocked durably appends t's logged ST2 decision. Caller
// holds t.mu.
func (r *Replica) logDecisionLocked(t *txState, tc types.TraceContext) bool {
	if r.wal == nil {
		return true
	}
	b := make([]byte, 0, 256)
	b = append(b, walRecDecision)
	b = append(b, t.id[:]...)
	b = append(b, byte(t.decision))
	b = binary.BigEndian.AppendUint64(b, t.viewDecision)
	b = walMetaOpt(b, t.meta)
	return r.walAppend(b, tc)
}

// logFinal durably appends a proven decision before it is applied.
func (r *Replica) logFinal(id types.TxID, meta *types.TxMeta, dec types.Decision, cert *types.DecisionCert, tc types.TraceContext) bool {
	if r.wal == nil {
		return true
	}
	b := make([]byte, 0, 512)
	b = append(b, walRecFinal)
	b = append(b, id[:]...)
	b = append(b, byte(dec))
	b = walMetaOpt(b, meta)
	b = types.AppendDecisionCert(b, cert)
	return r.walAppend(b, tc)
}

// walAppend appends one record, muting the replica on failure: state may
// then be ahead of disk, but nothing further externalizes it. A sampled
// trace context gets a span covering the append plus its group-commit
// fsync wait. Muting dumps the flight recorder to stderr — the replica's
// last act, so the cause survives even when nobody scrapes
// /debug/flightrec before the restart.
func (r *Replica) walAppend(rec []byte, tc types.TraceContext) bool {
	wStart := r.tracer.Start(tc)
	//nolint:basilvet — deliberate design (package doc, "locking"): promise records append under the owning transaction's t.mu so log-before-externalize holds per transaction; the group-commit wait stalls only that transaction, and t.mu is a leaf below no store or r.mu acquisition.
	err := r.wal.Append(rec)
	r.tracer.End(tc, r.traceNode, "replica.wal_append", 0, wStart)
	if err != nil {
		r.walFailed.Store(true)
		r.frec.Note("mute", "wal append failed: "+err.Error())
		r.frec.Dump(os.Stderr)
		return false
	}
	return true
}

func walMetaOpt(b []byte, m *types.TxMeta) []byte {
	if m == nil {
		return append(b, 0)
	}
	return m.AppendCanonical(append(b, 1))
}

// replay rebuilds protocol state from what Open recovered. It runs
// before the replica is registered on the network, so no locks contend.
func (r *Replica) replay(recov *wal.Recovered) error {
	var maxTs types.Timestamp
	bump := func(ts types.Timestamp) {
		if maxTs.Less(ts) {
			maxTs = ts
		}
	}
	if len(recov.Snapshot) > 0 {
		rest, m, err := r.store.Restore(recov.Snapshot)
		if err != nil {
			return err
		}
		bump(m)
		if err := r.restoreTxSection(rest); err != nil {
			return err
		}
	}
	for i, raw := range recov.Records {
		ts, err := r.applyRecord(raw)
		if err != nil {
			return fmt.Errorf("replica: wal record %d: %w", i, err)
		}
		bump(ts)
	}
	// Withdraw prepared entries with no durably logged vote: the check
	// passed pre-crash but the vote never reached disk, hence was never
	// sent — a fresh ST1 may safely re-run the check from scratch.
	for _, id := range r.store.PreparedIDs() {
		t := r.peekTx(id)
		if t == nil {
			r.store.RemovePrepared(id)
			continue
		}
		t.mu.Lock()
		unpromised := !t.voteReady && !t.decisionLogged
		if unpromised {
			t.checkStarted = false
		}
		t.mu.Unlock()
		if unpromised {
			r.store.RemovePrepared(id)
		}
	}
	r.store.SetRTSFloor(maxTs)
	return nil
}

// applyRecord replays one WAL record, returning the largest timestamp it
// carries (for the restart RTS floor). Records are idempotent against
// the snapshot: the checkpoint rotates first and snapshots second, so
// the kept suffix may overlap state already restored.
func (r *Replica) applyRecord(raw []byte) (types.Timestamp, error) {
	if len(raw) < 1+32+1 {
		return types.Timestamp{}, types.ErrTruncated
	}
	tag := raw[0]
	var id types.TxID
	copy(id[:], raw[1:33])
	rest := raw[33:]
	var ts types.Timestamp

	switch tag {
	case walRecVote:
		vote := types.Vote(rest[0])
		meta, _, err := walDecodeMetaOpt(rest[1:])
		if err != nil {
			return ts, err
		}
		if meta != nil {
			ts = meta.Timestamp
		}
		t := r.tx(id)
		t.mu.Lock()
		if t.meta == nil {
			t.meta = meta
		}
		if !t.voteReady {
			t.checkStarted = true
			t.vote = vote
			//nolint:basilvet — replay path: this promise flag is being rebuilt FROM the WAL record just read, so the append already happened (in the crashed run); re-appending here would duplicate it.
			t.voteReady = true
			r.markLive(t)
			if vote == types.VoteCommit && meta != nil {
				r.store.RestorePrepared(meta, id)
			}
		}
		t.mu.Unlock()

	case walRecDecision:
		if len(rest) < 1+8 {
			return ts, types.ErrTruncated
		}
		dec := types.Decision(rest[0])
		view := binary.BigEndian.Uint64(rest[1:9])
		meta, _, err := walDecodeMetaOpt(rest[9:])
		if err != nil {
			return ts, err
		}
		if meta != nil {
			ts = meta.Timestamp
		}
		t := r.tx(id)
		t.mu.Lock()
		if t.meta == nil {
			t.meta = meta
		}
		// Records replay in append order; the last logged decision (the
		// highest view adopted pre-crash) wins, exactly as it did live.
		t.decision = dec
		t.decisionLogged = true
		t.viewDecision = view
		if t.viewCurrent < view {
			t.viewCurrent = view
		}
		r.markLive(t)
		t.mu.Unlock()

	case walRecFinal:
		dec := types.Decision(rest[0])
		meta, after, err := walDecodeMetaOpt(rest[1:])
		if err != nil {
			return ts, err
		}
		cert, _, err := types.DecodeDecisionCert(after)
		if err != nil {
			return ts, err
		}
		if meta != nil {
			ts = meta.Timestamp
		}
		r.store.Finalize(id, meta, dec, cert)
		// Replay rebuilds only un-collected state: no txState is created
		// for a bare final record — the outcome lives in the store, and
		// any late duplicate is served from there (lifecycle.go). A state
		// rebuilt by earlier vote/decision records is marked finalized and
		// leaves the live capture index.
		if t := r.peekTx(id); t != nil {
			t.mu.Lock()
			if t.meta == nil {
				t.meta = meta
			}
			t.finalized = true
			if !t.voteReady {
				t.checkStarted = true
				t.vote = types.VoteCommit
				if dec == types.DecisionAbort {
					t.vote = types.VoteAbort
				}
				t.voteReady = true
			}
			t.mu.Unlock()
			r.unmarkLive(id)
		}

	default:
		return ts, fmt.Errorf("unknown record tag %d", tag)
	}
	return ts, nil
}

func walDecodeMetaOpt(b []byte) (*types.TxMeta, []byte, error) {
	if len(b) < 1 {
		return nil, nil, types.ErrTruncated
	}
	if b[0] == 0 {
		return nil, b[1:], nil
	}
	return types.DecodeTxMeta(b[1:])
}

// --- checkpointing ---

// Checkpoint garbage-collects store history and finished protocol state
// below the watermark and — when the replica is durable — writes a
// snapshot superseding the log so far; replay becomes snapshot + suffix.
// The watermark must trail every timestamp still in flight (see store.GC);
// the periodic loop uses now − 2δ. On an in-memory replica only the GC
// and the txState collection run.
//
// Order matters: the collect watermark is published first, so from that
// point every below-watermark message for an unknown transaction is
// answered from the store's finalized table or dropped (lifecycle.go) —
// the state collected at the end of this pass cannot be rebuilt as
// votable in between. The watermark is clamped monotonic: a caller
// passing a lower value than an earlier pass cannot un-promise drops
// already taken.
func (r *Replica) Checkpoint(watermark types.Timestamp) error {
	var start time.Time
	if r.mx.timed {
		start = time.Now()
	}
	defer func() {
		r.mx.ckpts.Inc()
		if r.mx.timed {
			r.mx.checkpoint.Since(start)
		}
	}()
	r.mu.Lock()
	if r.collectWM.Less(watermark) {
		r.collectWM = watermark
	} else {
		watermark = r.collectWM
	}
	r.mu.Unlock()
	r.store.GC(watermark)
	if r.wal != nil {
		err := r.wal.Checkpoint(func() []byte {
			// Drain finalizes that logged their record before the rotation
			// but have not applied it to the store yet — otherwise that
			// record is pruned and the outcome misses the snapshot too. New
			// finalizes log into the kept suffix, so fuzzy capture past this
			// fence is safe (replay is idempotent).
			r.applyMu.Lock()
			r.applyMu.Unlock() //nolint:staticcheck // barrier, not a critical section
			b := r.store.Snapshot(nil)
			return r.appendTxSnapshot(b, watermark)
		})
		if err != nil {
			return err
		}
	}
	collected := r.collectBelow(watermark)
	r.frec.Note("checkpoint", fmt.Sprintf("wm=%d collected=%d", watermark.Time, collected))
	return nil
}

// txSnapVersion versions the checkpoint's replica section; v2 added the
// persisted collect watermark and live-set capture. No cross-version
// compatibility is promised: a restart on an older-format data dir fails
// loudly in restoreTxSection rather than guessing.
const txSnapVersion = 2

// appendTxSnapshot appends the replica's per-transaction promises (fixed
// votes, logged decisions, views) for transactions not yet finalized —
// finalized outcomes live in the store section. The walk covers the live
// index, not all of txs, so capture cost and r.mu hold time are
// proportional to transactions still holding an unfinalized promise, not
// to history. The capture is fuzzy against concurrent handlers, which is
// safe: anything promised after the checkpoint's rotation is also in the
// kept log suffix, and replay is idempotent across the overlap.
func (r *Replica) appendTxSnapshot(b []byte, wm types.Timestamp) []byte {
	r.mu.Lock()
	states := make([]*txState, 0, len(r.live))
	for _, t := range r.live {
		states = append(states, t)
	}
	r.mu.Unlock()

	b = append(b, txSnapVersion)
	b = binary.BigEndian.AppendUint64(b, wm.Time)
	b = binary.BigEndian.AppendUint64(b, wm.ClientID)

	var body []byte
	n := 0
	for _, t := range states {
		t.mu.Lock()
		keep := (t.voteReady || t.decisionLogged) && !t.finalized
		if keep {
			body = append(body, t.id[:]...)
			var flags byte
			if t.voteReady {
				flags |= 1
			}
			if t.decisionLogged {
				flags |= 2
			}
			body = append(body, flags, byte(t.vote), byte(t.decision))
			body = binary.BigEndian.AppendUint64(body, t.viewDecision)
			body = binary.BigEndian.AppendUint64(body, t.viewCurrent)
			body = walMetaOpt(body, t.meta)
			n++
		}
		t.mu.Unlock()
	}
	b = binary.BigEndian.AppendUint32(b, uint32(n))
	return append(b, body...)
}

// restoreTxSection rebuilds txStates from a checkpoint's replica section
// and restores the collect watermark, so a restarted replica keeps the
// stale-drop guarantee for everything collected pre-crash.
func (r *Replica) restoreTxSection(b []byte) error {
	if len(b) < 1+16+4 {
		return types.ErrTruncated
	}
	if b[0] != txSnapVersion {
		return fmt.Errorf("replica: checkpoint tx section version %d, want %d", b[0], txSnapVersion)
	}
	wm := types.Timestamp{
		Time:     binary.BigEndian.Uint64(b[1:9]),
		ClientID: binary.BigEndian.Uint64(b[9:17]),
	}
	r.mu.Lock()
	if r.collectWM.Less(wm) {
		r.collectWM = wm
	}
	r.mu.Unlock()
	n := int(binary.BigEndian.Uint32(b[17:21]))
	b = b[21:]
	for i := 0; i < n; i++ {
		if len(b) < 32+3+16 {
			return types.ErrTruncated
		}
		var id types.TxID
		copy(id[:], b)
		flags, vote, dec := b[32], types.Vote(b[33]), types.Decision(b[34])
		viewDec := binary.BigEndian.Uint64(b[35:])
		viewCur := binary.BigEndian.Uint64(b[43:])
		meta, rest, err := walDecodeMetaOpt(b[51:])
		if err != nil {
			return err
		}
		b = rest
		t := r.tx(id)
		t.mu.Lock()
		t.meta = meta
		if flags&1 != 0 {
			t.checkStarted = true
			t.vote = vote
			//nolint:basilvet — replay path: promises here are rebuilt from the checkpoint's tx section, which was only written after the records behind it were durable; no new promise is being made.
			t.voteReady = true
		}
		if flags&2 != 0 {
			t.decision = dec
			t.decisionLogged = true
		}
		t.viewDecision = viewDec
		t.viewCurrent = viewCur
		r.markLive(t)
		t.mu.Unlock()
	}
	return nil
}

// checkpointLoop checkpoints every cfg.CheckpointEvery, with the
// watermark trailing the clock by 2δ — below any timestamp admission
// could still accept and any in-flight transaction could still carry.
func (r *Replica) checkpointLoop() {
	defer r.ckptWG.Done()
	tick := time.NewTicker(r.cfg.CheckpointEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.ckptStop:
			return
		case <-tick.C:
			now := r.cfg.Clock.NowMicros()
			margin := 2 * r.cfg.DeltaMicros
			if now <= margin {
				continue
			}
			if err := r.Checkpoint(types.Timestamp{Time: now - margin}); err != nil && err != wal.ErrClosed {
				r.walFailed.Store(true)
				r.frec.Note("mute", "checkpoint failed: "+err.Error())
				r.frec.Dump(os.Stderr)
				return
			}
		}
	}
}

// WALStats exposes the append/sync counters (observability; nil-safe).
func (r *Replica) WALStats() wal.Stats {
	if r.wal == nil {
		return wal.Stats{}
	}
	return r.wal.StatsSnapshot()
}
