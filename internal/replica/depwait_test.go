package replica

import (
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

// awaitReply drains ch until a reply for id arrives.
func awaitReply(t *testing.T, ch <-chan *types.ST1Reply, id types.TxID) *types.ST1Reply {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case rep := <-ch:
			if rep.TxID == id {
				return rep
			}
		case <-deadline:
			t.Fatalf("no ST1 reply for %x", id[:4])
		}
	}
}

// TestStaleDepWaiterListResolvedNotDropped reproduces the lost-wakeup race
// between finalize and registerDeps. X's vote is deferred on dependency D
// (its depWaiters entry registered, its post-registration re-check saw
// StatusPrepared). D's decision then becomes visible in the store before
// finalize consumes depWaiters[D]; in that window a second registrant's
// re-check sees D decided and pops the stale waiter list. It must resolve
// every waiter it pops — dropping X's entry would leave X's vote stalled
// forever, since finalize's own pass then finds an empty list.
func TestStaleDepWaiterListResolvedNotDropped(t *testing.T) {
	r, net := newTestReplica(t, 1)
	defer net.Close()
	defer r.Close()
	client := transport.ClientAddr(9)
	replies := make(chan *types.ST1Reply, 16)
	net.Register(client, transport.HandlerFunc(func(_ transport.Addr, msg any) {
		if rep, ok := msg.(*types.ST1Reply); ok {
			replies <- rep
		}
	}))

	// D: the dependency, prepared (commit vote, decision still pending).
	// onST1 is called directly so the whole check runs synchronously.
	depMsg := st1For("d", 10)
	depID := depMsg.Meta.ID()
	r.onST1(client, depMsg)
	awaitReply(t, replies, depID)

	// X: depends on D with a disjoint write set; its commit vote defers.
	xMeta := &types.TxMeta{
		Timestamp: types.Timestamp{Time: 20, ClientID: 9},
		WriteSet:  []types.WriteEntry{{Key: "x", Value: []byte("v")}},
		Deps:      []types.Dependency{{TxID: depID, Version: depMsg.Meta.Timestamp}},
		Shards:    []int32{0},
	}
	xID := xMeta.ID()
	r.onST1(client, &types.ST1Request{ReqID: 2, ClientID: 9, Meta: xMeta})
	st := r.peekTx(xID)
	if st == nil {
		t.Fatal("setup: no txState for X")
	}
	st.mu.Lock()
	deferred := !st.voteReady && st.waitingOn[depID]
	st.mu.Unlock()
	if !deferred {
		t.Fatal("setup: X's vote was not deferred on D")
	}

	// The race window: D's decision is published in the store — visible to
	// any registerDeps re-check — but finalize() has not yet consumed
	// depWaiters[D].
	r.store.Finalize(depID, depMsg.Meta, types.DecisionCommit, nil)

	// A late registrant Y re-checks, sees D decided, and pops the stale
	// waiter list that still carries X's entry.
	var yID types.TxID
	yID[0] = 0xEE
	r.registerDeps(yID, []types.TxID{depID})

	rep := awaitReply(t, replies, xID)
	if rep.Vote != types.VoteCommit {
		t.Fatalf("X resolved with vote %v, want commit", rep.Vote)
	}
	r.mu.Lock()
	left := len(r.depWaiters[depID])
	r.mu.Unlock()
	if left != 0 {
		t.Fatalf("depWaiters[D] still holds %d entries after resolution", left)
	}
}
