// Package replica implements a Basil replica: the MVTSO read path, the
// concurrency-control check of Algorithm 1 with dependency waiting, the
// two-stage Prepare protocol (ST1 votes, ST2 decision logging), writeback
// application, Merkle-batched reply signing (paper §4.4), and the
// per-transaction fallback protocol (paper §5).
package replica

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/cryptoutil"
	"repro/internal/quorum"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/types"
)

// Config parameterizes a replica.
type Config struct {
	Shard int32
	Index int32 // replica index within the shard, 0..n-1
	F     int   // per-shard fault threshold; n = 5f+1

	// DeltaMicros is the δ admission bound: operations with timestamps
	// beyond local-clock+δ are refused (paper §4.1 Begin).
	DeltaMicros uint64

	// BatchSize and BatchDelay configure reply-signature batching
	// (paper §4.4). BatchSize 1 disables batching.
	BatchSize  int
	BatchDelay time.Duration

	Clock    clock.Clock
	Registry *cryptoutil.Registry
	// SignerID is this replica's global key-registry index.
	SignerID int32
	// SignerOf maps any (shard, replica) to its registry index.
	SignerOf quorum.SignerOf

	Net transport.Network

	// Byzantine, if non-nil, installs a misbehavior strategy (used by the
	// fault-injection harness). Nil means a correct replica.
	Byzantine ByzantineStrategy

	// AllowUnvalidatedST2 disables ST2 tally validation. Experiment use
	// only: it models the paper's "equiv-forced" worst case, where clients
	// are artificially allowed to log conflicting decisions at will.
	AllowUnvalidatedST2 bool
}

// ByzantineStrategy lets the fault harness corrupt a replica's visible
// behavior at well-defined interception points.
type ByzantineStrategy interface {
	// MutateVote may flip the replica's ST1 vote. Returning VoteNone
	// suppresses the reply entirely (unresponsiveness).
	MutateVote(id types.TxID, vote types.Vote) types.Vote
	// DropRead reports whether to ignore a read request.
	DropRead(key string) bool
}

// txState is the replica's per-transaction protocol state beyond the
// store's version bookkeeping.
type txState struct {
	id   types.TxID
	meta *types.TxMeta

	// Stage-1 vote, once determined. Correct replicas never change it.
	vote         types.Vote
	voteReady    bool
	voteConflict *types.DecisionCert
	conflictMeta *types.TxMeta
	blockedBy    *types.TxMeta

	// Dependency waiting (Algorithm 1 line 15).
	waitingOn  map[types.TxID]bool
	depAborted bool
	// Clients owed an ST1R once the vote resolves: client addr -> reqID.
	voteWaiters map[transport.Addr]uint64

	// Stage-2 logged decision (paper §4.2 stage 2 / §5 views).
	decision       types.Decision
	decisionLogged bool
	viewDecision   uint64
	viewCurrent    uint64

	// Fallback election state: ballots per view (leader role).
	ballots map[uint64]map[int32]types.ElectFB

	// Clients interested in this transaction's outcome (recovery).
	interested map[transport.Addr]uint64

	finalized bool
}

// Stats counts observable replica events; all fields are atomic.
type Stats struct {
	Reads          atomic.Uint64
	ST1s           atomic.Uint64
	VotesCommit    atomic.Uint64
	VotesAbort     atomic.Uint64
	Misbehavior    atomic.Uint64
	DepWaits       atomic.Uint64
	ST2s           atomic.Uint64
	Writebacks     atomic.Uint64
	FallbackInvoke atomic.Uint64
	Elections      atomic.Uint64
	DecFBs         atomic.Uint64
	SigsSigned     atomic.Uint64
	SigsVerified   atomic.Uint64
}

// Replica is one Basil replica for one shard.
type Replica struct {
	cfg     Config
	qc      quorum.Config
	addr    transport.Addr
	signer  cryptoutil.Signer
	batcher *cryptoutil.BatchSigner
	sv      *cryptoutil.SigVerifier
	qv      *quorum.Verifier
	store   *store.Store

	// shardAddrs is the static membership of this replica's shard, the
	// tos slice for whole-shard broadcasts.
	shardAddrs []transport.Addr

	mu  sync.Mutex
	txs map[types.TxID]*txState
	// depWaiters: transaction id -> ids of transactions whose vote waits
	// on its decision.
	depWaiters map[types.TxID][]types.TxID

	Stats Stats
}

// New constructs and registers a replica on cfg.Net.
func New(cfg Config) *Replica {
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	if cfg.BatchDelay <= 0 {
		cfg.BatchDelay = 500 * time.Microsecond
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	r := &Replica{
		cfg:        cfg,
		qc:         quorum.Config{F: cfg.F},
		addr:       transport.ReplicaAddr(cfg.Shard, cfg.Index),
		signer:     cfg.Registry.Signer(cfg.SignerID),
		sv:         cryptoutil.NewSigVerifier(cfg.Registry, 4096),
		store:      store.New(),
		txs:        make(map[types.TxID]*txState),
		depWaiters: make(map[types.TxID][]types.TxID),
	}
	r.shardAddrs = transport.ShardAddrs(cfg.Shard, r.qc.N())
	r.batcher = cryptoutil.NewBatchSigner(r.signer, cfg.BatchSize, cfg.BatchDelay)
	r.qv = &quorum.Verifier{Cfg: r.qc, Sigs: r.sv, SignerOf: cfg.SignerOf}
	cfg.Net.Register(r.addr, r)
	return r
}

// Addr returns the replica's transport address.
func (r *Replica) Addr() transport.Addr { return r.addr }

// Store exposes the underlying store (examples, tests, GC drivers).
func (r *Replica) Store() *store.Store { return r.store }

// Close flushes the reply batcher.
func (r *Replica) Close() { r.batcher.Close() }

// LoadGenesis installs a key's initial value outside the protocol.
func (r *Replica) LoadGenesis(key string, value []byte) {
	r.store.ApplyGenesis(key, value)
}

// Deliver implements transport.Handler: the replica's single message loop.
func (r *Replica) Deliver(from transport.Addr, msg any) {
	switch m := msg.(type) {
	case *types.ReadRequest:
		r.onRead(from, m)
	case *types.AbortRead:
		r.store.DropRTS(m.Keys, m.Ts)
	case *types.ST1Request:
		r.onST1(from, m)
	case *types.ST2Request:
		r.onST2(from, m)
	case *types.WritebackRequest:
		r.onWriteback(from, m)
	case *types.InvokeFB:
		r.onInvokeFB(from, m)
	case *types.ElectFB:
		r.onElectFB(from, m)
	case *types.DecFB:
		r.onDecFB(from, m)
	}
}

// tx returns (creating if needed) the protocol state for id.
// Caller must hold r.mu.
func (r *Replica) txLocked(id types.TxID) *txState {
	t := r.txs[id]
	if t == nil {
		t = &txState{
			id:          id,
			waitingOn:   make(map[types.TxID]bool),
			voteWaiters: make(map[transport.Addr]uint64),
			interested:  make(map[transport.Addr]uint64),
		}
		r.txs[id] = t
	}
	return t
}

// send is a convenience wrapper.
func (r *Replica) send(to transport.Addr, msg any) {
	r.cfg.Net.Send(r.addr, to, msg)
}

// broadcastShard sends msg to every replica of this shard (self included)
// with one body encode on wire transports. Shard membership is static, so
// the address slice is computed once at construction.
func (r *Replica) broadcastShard(msg any) {
	r.cfg.Net.SendAll(r.addr, r.shardAddrs, msg)
}

// signThen enqueues payload for (batched) signing; done receives the
// completed signature and typically attaches it to a reply and sends it.
func (r *Replica) signThen(payload []byte, done func(types.Signature)) {
	r.Stats.SigsSigned.Add(1)
	r.batcher.Enqueue(payload, done)
}
