// Package replica implements a Basil replica: the MVTSO read path, the
// concurrency-control check of Algorithm 1 with dependency waiting, the
// two-stage Prepare protocol (ST1 votes, ST2 decision logging), writeback
// application, Merkle-batched reply signing (paper §4.4), and the
// per-transaction fallback protocol (paper §5).
//
// Concurrency model. Deliver hands every message to a bounded worker pool
// (Config.VerifyWorkers), so signature verification — the dominant CPU
// cost — and the striped store run in parallel across messages; the
// paper's claim that BFT transaction processing keeps the parallelism of
// non-BFT OCC stores depends on exactly this. Handlers therefore run
// concurrently and synchronize at three levels, never taken in the
// reverse order:
//
//  1. txState.mu — one mutex per transaction guards its protocol state
//     (vote, logged decision, views, ballots, waiters).
//  2. Replica.mu — guards only the txs/live/depWaiters maps and the
//     collect watermark.
//  3. store locks — internal to the store (stripes plus a narrow global
//     lock, see internal/store); store calls are leaves and may be made
//     while holding txState.mu.
//
// Signature verification — the dominant crypto cost — never runs under any
// of these: handlers validate certificates and tallies before touching
// protocol state, and batch checks fan out through the same pool
// (quorum.Verifier.Pool) with inline fallback. Reply *signing* is enqueued
// to the batcher from inside txState critical sections; with BatchSize=1
// (or on the enqueue that completes a batch) the signature is computed on
// the enqueueing goroutine, so a hot transaction's own replies serialize
// behind its lock — per transaction, never across transactions.
package replica

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wal"
)

// Config parameterizes a replica.
type Config struct {
	Shard int32
	Index int32 // replica index within the shard, 0..n-1
	F     int   // per-shard fault threshold; n = 5f+1

	// DeltaMicros is the δ admission bound: operations with timestamps
	// beyond local-clock+δ are refused (paper §4.1 Begin).
	DeltaMicros uint64

	// BatchSize and BatchDelay configure reply-signature batching
	// (paper §4.4). BatchSize 1 disables batching.
	BatchSize  int
	BatchDelay time.Duration

	// DataDir, if non-empty, makes the replica durable: stage-1 votes and
	// logged ST2 decisions reach a write-ahead log in this directory
	// before the replies they justify are sent, and a restarted replica
	// rebuilds its promises from it (Restore). Empty disables durability
	// (the original in-memory behavior).
	DataDir string
	// WALFlushDelay is the WAL group-commit window: concurrent appenders
	// inside one window share a single fsync. 0 uses the wal default.
	WALFlushDelay time.Duration
	// WALSyncDelay, if non-nil, is consulted before every WAL fsync and
	// the returned duration slept out first — the chaos harness's
	// slow-disk injection (see wal.Options.SyncDelay). Must be safe for
	// concurrent use. Nil injects nothing.
	WALSyncDelay func() time.Duration
	// CheckpointEvery, if positive, periodically garbage-collects store
	// history and finished replica protocol state below a clock-derived
	// watermark (now − 2δ) and — when DataDir is set — writes a durable
	// checkpoint, bounding log, store, and replica memory growth. Without
	// DataDir only the in-memory collection runs.
	CheckpointEvery time.Duration

	// VerifyWorkers sizes the ingest worker pool that verifies signatures
	// and runs message handlers concurrently. 0 defaults to GOMAXPROCS;
	// 1 reproduces the old serial message loop.
	VerifyWorkers int
	// DispatchQueue bounds the admission queue in front of the worker
	// pool: at most this many delivered messages may be in flight
	// (queued or executing); arrivals beyond it are shed with an explicit
	// types.Overloaded reply instead of growing memory or silently
	// stalling the transport (see admission.go). 0 uses the default
	// (defaultDispatchQueue); negative disables admission entirely —
	// unlimited intake, the pre-admission behavior benchmarks compare
	// against.
	DispatchQueue int
	// Stripes is the store's per-key lock-stripe count. 0 defaults to
	// store.DefaultStripes; 1 degenerates to a single key lock (the
	// pre-striping baseline the parallel experiment compares against).
	Stripes int

	Clock    clock.Clock
	Registry *cryptoutil.Registry
	// SignerID is this replica's global key-registry index.
	SignerID int32
	// SignerOf maps any (shard, replica) to its registry index.
	SignerOf quorum.SignerOf

	Net transport.Network

	// Byzantine, if non-nil, installs a misbehavior strategy (used by the
	// fault-injection harness). Nil means a correct replica.
	Byzantine ByzantineStrategy

	// AllowUnvalidatedST2 disables ST2 tally validation. Experiment use
	// only: it models the paper's "equiv-forced" worst case, where clients
	// are artificially allowed to log conflicting decisions at will.
	AllowUnvalidatedST2 bool

	// Metrics is the registry this replica registers its instruments on
	// (counters, deliver-latency histograms, WAL/checkpoint timings,
	// store gauges). Nil creates a private registry, exposed via
	// Replica.Metrics; pass metrics.Nop to disable instrumentation
	// entirely (benchmark baselines).
	Metrics *metrics.Registry

	// Tracer, if non-nil, records this replica's pipeline spans
	// (dispatch-queue wait, MVTSO check, quorum verification, WAL
	// group-commit wait) for transactions whose requests carry a sampled
	// trace context. Nil disables span recording; the unsampled path is
	// a single branch either way.
	Tracer *trace.Tracer
}

// ByzantineStrategy lets the fault harness corrupt a replica's visible
// behavior at well-defined interception points.
type ByzantineStrategy interface {
	// MutateVote may flip the replica's ST1 vote. Returning VoteNone
	// suppresses the reply entirely (unresponsiveness).
	MutateVote(id types.TxID, vote types.Vote) types.Vote
	// DropRead reports whether to ignore a read request.
	DropRead(key string) bool
}

// VoteEquivocator is an optional ByzantineStrategy extension: a strategy
// implementing it is consulted per *recipient* when a stored ST1 vote is
// about to be signed and sent, and may return a different vote for
// different clients — the replica-side twin of the equivocating client in
// internal/client/faulty.go. The stored vote (and the WAL promise behind
// it) is never changed; only the wire reply is corrupted, exactly what a
// Byzantine signer can do. Conflict evidence is stripped from a flipped
// vote, since the equivocator cannot forge a proof for the vote it
// invents.
type VoteEquivocator interface {
	// EquivocateVote returns the vote to send to this recipient.
	// Returning the input vote sends the honest reply; VoteNone
	// suppresses it.
	EquivocateVote(id types.TxID, to transport.Addr, vote types.Vote) types.Vote
}

// txState is the replica's per-transaction protocol state beyond the
// store's version bookkeeping. Each transaction has its own lock; handlers
// for different transactions never contend on it.
//
// Lifecycle (see lifecycle.go): a state is active while the protocol can
// still need it, finalized once a proven outcome landed, and collectable
// once it sits below the checkpoint watermark with every waiter answered —
// at which point the checkpoint pass removes it from Replica.txs. Late
// duplicates for a collected transaction are answered from the store's
// finalized table (Replica.lifecycleCheck), never by resurrecting votable
// state.
type txState struct {
	mu sync.Mutex

	id   types.TxID
	meta *types.TxMeta

	// checkStarted marks that some worker owns the (at most one) MVTSO
	// check for this transaction; later duplicates queue as voteWaiters.
	checkStarted bool

	// Stage-1 vote, once determined. Correct replicas never change it.
	vote         types.Vote
	voteReady    bool
	voteConflict *types.DecisionCert
	conflictMeta *types.TxMeta
	blockedBy    *types.TxMeta

	// Dependency waiting (Algorithm 1 line 15).
	waitingOn  map[types.TxID]bool
	depAborted bool
	// Clients owed an ST1R once the vote resolves (bounded, evict-oldest;
	// see waiterSet).
	voteWaiters waiterSet

	// Stage-2 logged decision (paper §4.2 stage 2 / §5 views).
	decision       types.Decision
	decisionLogged bool
	viewDecision   uint64
	viewCurrent    uint64

	// Fallback election state: ballots per view (leader role).
	ballots map[uint64]map[int32]types.ElectFB

	// Clients interested in this transaction's outcome (recovery;
	// bounded, evict-oldest).
	interested waiterSet

	// abandonCharged: the owner was already charged (reputation feed)
	// for leaving this transaction prepared past the watermark; repeated
	// collection passes over a retained state must not charge twice.
	abandonCharged bool

	finalized bool
}

// Stats counts observable replica events; all fields are atomic.
type Stats struct {
	Reads          atomic.Uint64
	ST1s           atomic.Uint64
	VotesCommit    atomic.Uint64
	VotesAbort     atomic.Uint64
	Misbehavior    atomic.Uint64
	DepWaits       atomic.Uint64
	ST2s           atomic.Uint64
	Writebacks     atomic.Uint64
	FallbackInvoke atomic.Uint64
	Elections      atomic.Uint64
	DecFBs         atomic.Uint64
	SigsSigned     atomic.Uint64
	SigsVerified   atomic.Uint64
	// TxCollected counts txStates reclaimed below the checkpoint
	// watermark; WaiterEvictions counts per-transaction waiter entries
	// displaced by the evict-oldest cap; StaleDrops counts below-watermark
	// messages for unknown transactions dropped instead of re-run (the
	// resurrection guard's third verdict).
	TxCollected     atomic.Uint64
	WaiterEvictions atomic.Uint64
	StaleDrops      atomic.Uint64
	// Shed counts messages refused by the admission queue (admission.go);
	// ShedReputation is the subset refused early for a bad client score.
	Shed           atomic.Uint64
	ShedReputation atomic.Uint64
}

// Replica is one Basil replica for one shard.
type Replica struct {
	cfg     Config
	qc      quorum.Config
	addr    transport.Addr
	signer  cryptoutil.Signer
	batcher *cryptoutil.BatchSigner
	sv      *cryptoutil.SigVerifier
	qv      *quorum.Verifier
	store   *store.Store
	pool    *cryptoutil.VerifyPool
	// adm is the bounded admission queue and per-client reputation table
	// in front of the pool (admission.go).
	adm *admission

	// shardAddrs is the static membership of this replica's shard, the
	// tos slice for whole-shard broadcasts.
	shardAddrs []transport.Addr

	// mu guards the maps below and collectWM; per-transaction state is
	// behind each txState's own mutex.
	mu  sync.Mutex
	txs map[types.TxID]*txState
	// live indexes the subset of txs holding an unfinalized durable
	// promise (voteReady or decisionLogged) — exactly what checkpoint
	// capture must persist, so appendTxSnapshot walks this instead of all
	// of history. Maintained by markLive/unmarkLive at every promise flip
	// and finalize.
	live map[types.TxID]*txState
	// collectWM is the highest watermark protocol state has been collected
	// below (lifecycle.go): messages under it for unknown transactions are
	// served from the store's finalized table or dropped, never re-run.
	collectWM types.Timestamp
	// depWaiters: transaction id -> ids of transactions whose vote waits
	// on its decision.
	depWaiters map[types.TxID][]types.TxID

	// wal is the durability log (nil when Config.DataDir is empty);
	// walFailed mutes the replica after an append failure — fail-stop,
	// never fail-equivocate (see durability.go).
	wal       *wal.Log
	walFailed atomic.Bool
	ckptStop  chan struct{}
	ckptWG    sync.WaitGroup
	// applyMu fences finalize's log-then-apply pair against checkpoint
	// rotation: held shared from before the final record is appended
	// until the store apply completes, taken exclusively (and released
	// immediately) by Checkpoint between rotating the log and reading
	// the snapshot. Without it a final record could land in a superseded
	// segment while its store apply races past the snapshot capture —
	// pruned from the log, missing from the snapshot, gone.
	applyMu sync.RWMutex

	closed    atomic.Bool
	closeOnce sync.Once

	Stats Stats

	// reg is the metrics registry; mx the live instrument handles bound
	// on it (see metrics.go). Both are fixed at construction.
	reg *metrics.Registry
	mx  replicaMetrics

	// tracer/traceNode record pipeline spans for sampled transactions;
	// frec is the always-on flight recorder of infrequent control-plane
	// events (sheds, reputation actions, checkpoints, mute cause), dumped
	// to stderr when the replica mutes and served at /debug/flightrec.
	tracer    *trace.Tracer
	traceNode string
	frec      *trace.FlightRecorder
}

// New constructs and registers a replica on cfg.Net. With a DataDir it
// opens (and replays) the durability log, panicking if the directory is
// unusable — use Restore for an error-returning restart path.
func New(cfg Config) *Replica {
	r, err := Restore(cfg, cfg.DataDir)
	if err != nil {
		panic(fmt.Sprintf("replica: data dir %s: %v", cfg.DataDir, err))
	}
	return r
}

// Restore constructs a replica whose durable state lives in dir,
// replaying any existing write-ahead log (newest checkpoint + suffix)
// before the replica is registered on the network: the prepared set,
// fixed stage-1 votes, logged ST2 decisions, finalized outcomes, and a
// conservative RTS floor all come back exactly as promised pre-crash. An
// empty dir (on disk or as an argument) degrades gracefully: a fresh
// durable replica, or with dir == "" a purely in-memory one.
func Restore(cfg Config, dir string) (*Replica, error) {
	cfg.DataDir = dir
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	if cfg.BatchDelay <= 0 {
		cfg.BatchDelay = 500 * time.Microsecond
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	stripes := cfg.Stripes
	if stripes <= 0 {
		stripes = store.DefaultStripes
	}
	r := &Replica{
		cfg:        cfg,
		qc:         quorum.Config{F: cfg.F},
		addr:       transport.ReplicaAddr(cfg.Shard, cfg.Index),
		signer:     cfg.Registry.Signer(cfg.SignerID),
		sv:         cryptoutil.NewSigVerifier(cfg.Registry, 4096),
		store:      store.NewStriped(stripes),
		pool:       cryptoutil.NewVerifyPool(cfg.VerifyWorkers),
		txs:        make(map[types.TxID]*txState),
		live:       make(map[types.TxID]*txState),
		depWaiters: make(map[types.TxID][]types.TxID),
		ckptStop:   make(chan struct{}),
	}
	r.shardAddrs = transport.ShardAddrs(cfg.Shard, r.qc.N())
	r.tracer = cfg.Tracer
	r.traceNode = fmt.Sprintf("r%d.%d", cfg.Shard, cfg.Index)
	r.frec = trace.NewFlightRecorder(r.traceNode, 0)
	r.adm = newAdmission(r, cfg.DispatchQueue)
	r.batcher = cryptoutil.NewBatchSigner(r.signer, cfg.BatchSize, cfg.BatchDelay)
	r.qv = &quorum.Verifier{Cfg: r.qc, Sigs: r.sv, SignerOf: cfg.SignerOf, Pool: r.pool}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	r.initMetrics(reg)
	if dir != "" {
		appendLat, syncLat, pruneFails := walMetrics(reg)
		l, recov, err := wal.Open(wal.Options{
			Dir:           dir,
			FlushDelay:    cfg.WALFlushDelay,
			SyncDelay:     cfg.WALSyncDelay,
			AppendLatency: appendLat,
			SyncLatency:   syncLat,
			PruneFailures: pruneFails,
		})
		if err != nil {
			return nil, err
		}
		r.wal = l
		r.bindWALMetrics()
		if err := r.replay(recov); err != nil {
			//nolint:basilvet — close-on-error path: the replay error already aborts Restore and is what the caller sees; nothing was promised yet, so the close error adds nothing.
			l.Close()
			return nil, err
		}
	}
	// Register only after replay: no message may race the rebuild.
	cfg.Net.Register(r.addr, r)
	r.frec.Note("start", "serving")
	if cfg.CheckpointEvery > 0 {
		r.ckptWG.Add(1)
		go r.checkpointLoop()
	}
	return r, nil
}

// Addr returns the replica's transport address.
func (r *Replica) Addr() transport.Addr { return r.addr }

// Store exposes the underlying store (examples, tests, GC drivers).
func (r *Replica) Store() *store.Store { return r.store }

// FlightRecorder exposes the replica's event ring (serve it with
// trace.FlightHandler, or snapshot it in tests and postmortems).
func (r *Replica) FlightRecorder() *trace.FlightRecorder { return r.frec }

// Close drains the ingest pool (every in-flight handler completes, so no
// one is left blocked inside a WAL append), flushes the reply batcher,
// and finally syncs and closes the durability log. Messages delivered
// after Close — late duplicates are routine in an asynchronous network —
// are dropped without touching the closed pool or batcher. Idempotent.
func (r *Replica) Close() {
	r.closeOnce.Do(func() {
		r.closed.Store(true)
		r.pool.Close()
		r.batcher.Close()
		close(r.ckptStop)
		r.ckptWG.Wait()
		if r.wal != nil {
			//nolint:basilvet — shutdown path with no caller to report to: every promise was already durable when its handler replied (walAppend mutes on failure), so a final-sync error here cannot un-promise anything; restart replays the log regardless.
			r.wal.Close()
		}
	})
}

// LoadGenesis installs a key's initial value outside the protocol.
func (r *Replica) LoadGenesis(key string, value []byte) {
	r.store.ApplyGenesis(key, value)
}

// Deliver implements transport.Handler: each message passes the bounded
// admission queue (admission.go) and is dispatched onto the worker pool,
// so crypto-heavy validation and disjoint-key store operations from
// different messages proceed in parallel. Over-capacity arrivals are shed
// with an explicit Overloaded reply instead of queuing without bound.
// Per-sender FIFO is deliberately not preserved — the protocol already
// tolerates an asynchronous, reordering network.
func (r *Replica) Deliver(from transport.Addr, msg any) {
	if r.closed.Load() || r.walFailed.Load() {
		// A replica that cannot make its promises durable stops making
		// promises: fail-stop, never fail-equivocate.
		return
	}
	if !r.adm.admit(from, msg) {
		return
	}
	// Dispatch-queue wait: from admission to a pool worker picking the
	// message up. enq stays 0 — no clock read — unless the message
	// carries a sampled trace context.
	var tc types.TraceContext
	var enq int64
	if r.tracer != nil {
		tc = types.TraceContextOf(msg)
		enq = r.tracer.Start(tc)
	}
	if !r.pool.Go(func() {
		defer r.adm.release()
		r.tracer.End(tc, r.traceNode, "replica.dispatch_wait", 0, enq)
		r.dispatch(from, msg)
	}) {
		r.adm.release() // pool closed under us; the slot must not leak
	}
}

// dispatch routes one message to its handler on a pool worker, timing
// the handler into the per-kind deliver-latency histogram. The clock
// reads are skipped entirely when metrics are disabled (mx.timed false),
// keeping the Nop configuration an honest uninstrumented baseline.
func (r *Replica) dispatch(from transport.Addr, msg any) {
	var t0 time.Time
	if r.mx.timed {
		t0 = time.Now()
	}
	kind := -1
	switch m := msg.(type) {
	case *types.ReadRequest:
		kind = kindRead
		r.onRead(from, m)
	case *types.AbortRead:
		kind = kindAbortRead
		r.store.DropRTS(m.Keys, m.Ts)
	case *types.ST1Request:
		kind = kindST1
		r.onST1(from, m)
	case *types.ST2Request:
		kind = kindST2
		r.onST2(from, m)
	case *types.WritebackRequest:
		kind = kindWriteback
		r.onWriteback(from, m)
	case *types.InvokeFB:
		kind = kindInvokeFB
		r.onInvokeFB(from, m)
	case *types.ElectFB:
		kind = kindElectFB
		r.onElectFB(from, m)
	case *types.DecFB:
		kind = kindDecFB
		r.onDecFB(from, m)
	}
	if r.mx.timed && kind >= 0 {
		r.mx.deliver[kind].Since(t0)
	}
}

// tx returns (creating if needed) the protocol state for id. It takes
// only the map lock; callers lock the returned state themselves.
func (r *Replica) tx(id types.TxID) *txState {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.txs[id]
	if t == nil {
		t = &txState{
			id:        id,
			waitingOn: make(map[types.TxID]bool),
		}
		r.txs[id] = t
	}
	return t
}

// peekTx returns the state for id without creating it.
func (r *Replica) peekTx(id types.TxID) *txState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.txs[id]
}

// send is a convenience wrapper.
func (r *Replica) send(to transport.Addr, msg any) {
	r.cfg.Net.Send(r.addr, to, msg)
}

// broadcastShard sends msg to every replica of this shard (self included)
// with one body encode on wire transports. Shard membership is static, so
// the address slice is computed once at construction.
func (r *Replica) broadcastShard(msg any) {
	r.cfg.Net.SendAll(r.addr, r.shardAddrs, msg)
}

// signThen enqueues payload for (batched) signing; done receives the
// completed signature and typically attaches it to a reply and sends it.
func (r *Replica) signThen(payload []byte, done func(types.Signature)) {
	r.Stats.SigsSigned.Add(1)
	//nolint:basilvet — deliberate design (package doc): replies enqueue for Merkle-batch signing under t.mu so each transaction's replies stay ordered with its state changes; Enqueue only appends to the batch under the batcher's own short mutex, the signing itself runs on the batcher goroutine.
	r.batcher.Enqueue(payload, done)
}
