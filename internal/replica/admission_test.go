package replica

import (
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/quorum"
	"repro/internal/transport"
	"repro/internal/types"
)

// Admission-control unit tests: the bounded dispatch queue, explicit
// Overloaded shedding, and the reputation scorer. These drive the
// admission layer directly (admit without release models handlers still
// running), with a Local network capturing the shed replies.

func newQueuedReplica(t *testing.T, queue int) (*Replica, *transport.Local) {
	t.Helper()
	net := transport.NewLocal()
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, 6, 1)
	r := New(Config{
		Shard: 0, Index: 0, F: 1,
		DeltaMicros:   60_000_000,
		BatchSize:     1,
		DispatchQueue: queue,
		Registry:      reg,
		SignerID:      0,
		SignerOf:      quorum.SignerOf(func(s, i int32) int32 { return i }),
		Net:           net,
	})
	return r, net
}

func captureOverloads(net *transport.Local, id int32) (transport.Addr, chan *types.Overloaded) {
	addr := transport.ClientAddr(id)
	ch := make(chan *types.Overloaded, 64)
	net.Register(addr, transport.HandlerFunc(func(_ transport.Addr, msg any) {
		if m, ok := msg.(*types.Overloaded); ok {
			ch <- m
		}
	}))
	return addr, ch
}

// TestAdmissionHardCapSheds: arrivals beyond the inflight cap are refused,
// counted, and answered with Overloaded carrying the request id; released
// slots admit again.
func TestAdmissionHardCapSheds(t *testing.T) {
	r, net := newQueuedReplica(t, 4)
	defer net.Close()
	defer r.Close()
	client, overloads := captureOverloads(net, 9)

	admitted := 0
	for i := 0; i < 6; i++ {
		if r.adm.admit(client, &types.ST1Request{ReqID: uint64(i + 1), ClientID: 9}) {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("admitted %d, want 4 (the cap)", admitted)
	}
	if got := r.Stats.Shed.Load(); got != 2 {
		t.Fatalf("Shed = %d, want 2", got)
	}
	if d := r.adm.depth(); d != 4 {
		t.Fatalf("depth = %d, want 4", d)
	}
	for i := 0; i < 2; i++ {
		ov := awaitOverload(t, overloads)
		if ov.ReqID != 5 && ov.ReqID != 6 {
			t.Fatalf("Overloaded for ReqID %d, want 5 or 6", ov.ReqID)
		}
		if ov.RetryAfterMicros != retryAfterMicros {
			t.Fatalf("RetryAfter = %d, want %d (honest client)", ov.RetryAfterMicros, retryAfterMicros)
		}
		if ov.ShardID != 0 || ov.ReplicaID != 0 {
			t.Fatalf("Overloaded shard/replica = %d/%d", ov.ShardID, ov.ReplicaID)
		}
	}

	// Slots return on release; the next arrival is admitted again.
	for i := 0; i < 4; i++ {
		r.adm.release()
	}
	if d := r.adm.depth(); d != 0 {
		t.Fatalf("depth after release = %d, want 0", d)
	}
	if !r.adm.admit(client, &types.ST1Request{ReqID: 7, ClientID: 9}) {
		t.Fatal("arrival after release was shed")
	}
	r.adm.release()
}

func awaitOverload(t *testing.T, ch chan *types.Overloaded) *types.Overloaded {
	t.Helper()
	select {
	case ov := <-ch:
		return ov
	case <-time.After(5 * time.Second):
		t.Fatal("no Overloaded reply")
		return nil
	}
}

// TestAdmissionDisabled: a negative DispatchQueue turns admission off —
// unlimited seed behavior, nothing counted, nothing shed.
func TestAdmissionDisabled(t *testing.T) {
	r, net := newQueuedReplica(t, -1)
	defer net.Close()
	defer r.Close()
	client := transport.ClientAddr(9)
	for i := 0; i < 10_000; i++ {
		if !r.adm.admit(client, &types.ST1Request{ReqID: uint64(i), ClientID: 9}) {
			t.Fatal("disabled admission shed a message")
		}
	}
	if r.Stats.Shed.Load() != 0 || r.adm.depth() != 0 {
		t.Fatalf("disabled admission tracked state: shed=%d depth=%d",
			r.Stats.Shed.Load(), r.adm.depth())
	}
}

// TestAdmissionSoftShedSuspectsOnly: above 3/4 occupancy a client with
// misbehavior mass is shed early (with the long RetryAfter), while an
// honest client at the same depth is still admitted. Below the soft
// threshold even the suspect gets in.
func TestAdmissionSoftShedSuspectsOnly(t *testing.T) {
	r, net := newQueuedReplica(t, 8)
	defer net.Close()
	defer r.Close()
	honest, _ := captureOverloads(net, 9)
	suspect, suspectOv := captureOverloads(net, 666)

	// A suspect: abandoned prepared transactions (the worst signal),
	// nothing committed. bad = 4*3 = 12 >= 8 and > 4*commits = 0.
	sc := r.adm.score(666)
	sc.abandons.Store(3)
	if !sc.suspect() {
		t.Fatal("abandon-heavy client not a suspect")
	}

	// Below the soft threshold (3/4 of 8 = 6): the suspect is admitted.
	if !r.adm.admit(suspect, &types.ST1Request{ReqID: 100, ClientID: 666}) {
		t.Fatal("suspect shed below the soft threshold")
	}

	// Fill to 7/8 with honest traffic.
	for i := 0; r.adm.depth() < 7; i++ {
		if !r.adm.admit(honest, &types.ST1Request{ReqID: uint64(i + 1), ClientID: 9}) {
			t.Fatal("honest client shed below the hard cap")
		}
	}

	// Above the soft threshold: suspect shed with the 10x hint, honest
	// still admitted up to the hard cap.
	if r.adm.admit(suspect, &types.ST1Request{ReqID: 101, ClientID: 666}) {
		t.Fatal("suspect admitted above the soft threshold")
	}
	if got := r.Stats.ShedReputation.Load(); got != 1 {
		t.Fatalf("ShedReputation = %d, want 1", got)
	}
	ov := awaitOverload(t, suspectOv)
	if ov.RetryAfterMicros != retryAfterSuspectMicros {
		t.Fatalf("suspect RetryAfter = %d, want %d", ov.RetryAfterMicros, retryAfterSuspectMicros)
	}
	if !r.adm.admit(honest, &types.ST1Request{ReqID: 8, ClientID: 9}) {
		t.Fatal("honest client shed by the reputation path")
	}
}

// TestReputationVolumeAlone: raw request volume never makes a suspect —
// a hot honest client with zero bad outcomes stays clean.
func TestReputationVolumeAlone(t *testing.T) {
	var s clientScore
	s.requests.Store(1 << 20)
	if s.suspect() {
		t.Fatal("volume alone made a suspect")
	}
	// Bad mass balanced by commits: still not a suspect.
	s.aborts.Store(10)
	s.commits.Store(10) // good = 40 > bad = 10
	if s.suspect() {
		t.Fatal("productive client with some aborts marked suspect")
	}
	// Stale replays with nothing finished: suspect.
	var abuser clientScore
	abuser.stales.Store(20)
	if !abuser.suspect() {
		t.Fatal("stale-replay abuser not a suspect")
	}
}

// TestReputationDecay: counters halve once the event mass passes the
// decay limit, so a reformed client sheds its history.
func TestReputationDecay(t *testing.T) {
	var s clientScore
	s.abandons.Store(scoreDecayLimit) // forces decay inside suspect()
	s.commits.Store(4)
	_ = s.suspect()
	if got := s.abandons.Load(); got != scoreDecayLimit/2 {
		t.Fatalf("abandons after decay = %d, want %d", got, scoreDecayLimit/2)
	}
	if got := s.commits.Load(); got != 2 {
		t.Fatalf("commits after decay = %d, want 2", got)
	}
}

// TestReputationTableBounded: the per-client table evicts at its cap
// instead of growing with every fresh (possibly fabricated) client id.
func TestReputationTableBounded(t *testing.T) {
	r, net := newQueuedReplica(t, 8)
	defer net.Close()
	defer r.Close()
	for i := 0; i < maxTrackedClients+100; i++ {
		r.adm.score(uint64(i))
	}
	r.adm.mu.Lock()
	n := len(r.adm.clients)
	r.adm.mu.Unlock()
	if n > maxTrackedClients {
		t.Fatalf("client table grew to %d, cap is %d", n, maxTrackedClients)
	}
}

// TestReputationFedByProtocolOutcomes: the replica's own handlers feed the
// scorer — an abort vote on a client's transaction lands on its score.
func TestReputationFedByProtocolOutcomes(t *testing.T) {
	r, net := newQueuedReplica(t, 64)
	defer net.Close()
	defer r.Close()
	client, st1, _ := captureClient(net, 9)

	// Score the client by admitting one message for it (the scorer only
	// tracks clients admission has seen).
	if !r.adm.admit(client, &types.ST1Request{ReqID: 99, ClientID: 9}) {
		t.Fatal("setup admit shed")
	}
	r.adm.release()

	// Commit a write of k at ts 10, then prepare a transaction at ts 20
	// that claims to have read k at the genesis version: MVTSO sees the
	// newer committed write between the read version and the timestamp
	// and votes abort.
	a := st1For("k", 10)
	idA := a.Meta.ID()
	r.Deliver(client, a)
	if rep := awaitReply(t, st1, idA); rep.Vote != types.VoteCommit {
		t.Fatalf("first prepare voted %v", rep.Vote)
	}
	r.finalize(idA, a.Meta, types.DecisionCommit, &types.DecisionCert{TxID: idA, Decision: types.DecisionCommit}, types.TraceContext{})
	b := &types.ST1Request{
		ReqID: 2, ClientID: 9,
		Meta: &types.TxMeta{
			Timestamp: types.Timestamp{Time: 20, ClientID: 9},
			ReadSet:   []types.ReadEntry{{Key: "k", Version: types.Timestamp{}}},
			WriteSet:  []types.WriteEntry{{Key: "j", Value: []byte("w")}},
			Shards:    []int32{0},
		},
	}
	r.Deliver(client, b)
	rep := awaitReply(t, st1, b.Meta.ID())
	if rep.Vote != types.VoteAbort {
		t.Fatalf("stale-read prepare voted %v, want abort", rep.Vote)
	}
	sc := r.adm.peekScore(9)
	if sc == nil || sc.aborts.Load() == 0 {
		t.Fatal("abort vote did not feed the owner's reputation score")
	}
}
