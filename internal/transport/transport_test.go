package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type collector struct {
	mu   sync.Mutex
	msgs []any
	from []Addr
	ch   chan struct{}
}

func newCollector() *collector { return &collector{ch: make(chan struct{}, 1024)} }

func (c *collector) Deliver(from Addr, msg any) {
	c.mu.Lock()
	c.msgs = append(c.msgs, msg)
	c.from = append(c.from, from)
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) wait(n int, t *testing.T) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for %d messages (got %d)", n, i)
		}
	}
}

func TestLocalDelivery(t *testing.T) {
	net := NewLocal()
	defer net.Close()
	c := newCollector()
	dst := ClientAddr(1)
	src := ReplicaAddr(0, 2)
	net.Register(dst, c)
	net.Send(src, dst, "hello")
	c.wait(1, t)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.msgs[0] != "hello" || c.from[0] != src {
		t.Fatalf("got %v from %v", c.msgs[0], c.from[0])
	}
}

func TestLocalFIFOPerSender(t *testing.T) {
	net := NewLocal()
	defer net.Close()
	c := newCollector()
	dst := ClientAddr(1)
	net.Register(dst, c)
	const n = 500
	src := ReplicaAddr(0, 0)
	for i := 0; i < n; i++ {
		net.Send(src, dst, i)
	}
	c.wait(n, t)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < n; i++ {
		if c.msgs[i] != i {
			t.Fatalf("out of order at %d: %v", i, c.msgs[i])
		}
	}
}

func TestSendToUnknownIsDropped(t *testing.T) {
	net := NewLocal()
	defer net.Close()
	net.Send(ClientAddr(1), ClientAddr(2), "lost") // must not panic
}

func TestPolicyDrop(t *testing.T) {
	net := NewLocal()
	defer net.Close()
	c := newCollector()
	dst := ClientAddr(1)
	net.Register(dst, c)
	var dropped atomic.Int32
	net.SetPolicy(func(from, to Addr, msg any) (time.Duration, bool) {
		if s, ok := msg.(string); ok && s == "drop-me" {
			dropped.Add(1)
			return 0, true
		}
		return 0, false
	})
	net.Send(ClientAddr(9), dst, "drop-me")
	net.Send(ClientAddr(9), dst, "keep-me")
	c.wait(1, t)
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.msgs) != 1 || c.msgs[0] != "keep-me" || dropped.Load() != 1 {
		t.Fatalf("policy drop failed: %v", c.msgs)
	}
}

func TestPolicyDelay(t *testing.T) {
	net := NewLocal()
	defer net.Close()
	c := newCollector()
	dst := ClientAddr(1)
	net.Register(dst, c)
	net.SetPolicy(func(from, to Addr, msg any) (time.Duration, bool) {
		return 20 * time.Millisecond, false
	})
	start := time.Now()
	net.Send(ClientAddr(9), dst, "slow")
	c.wait(1, t)
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("delay policy not applied")
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	net := NewLocal()
	c := newCollector()
	dst := ClientAddr(1)
	net.Register(dst, c)
	net.Close()
	net.Send(ClientAddr(9), dst, "late") // must not panic or deliver
	select {
	case <-c.ch:
		t.Fatal("message delivered after close")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestAddrString(t *testing.T) {
	if ReplicaAddr(2, 3).String() != "r2.3" || ClientAddr(7).String() != "c7" {
		t.Fatal("addr rendering changed")
	}
}

func TestConcurrentSenders(t *testing.T) {
	net := NewLocal()
	defer net.Close()
	c := newCollector()
	dst := ClientAddr(1)
	net.Register(dst, c)
	const senders, per = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				net.Send(ReplicaAddr(0, int32(s)), dst, s*1000+i)
			}
		}()
	}
	wg.Wait()
	c.wait(senders*per, t)
}
