package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/types"
)

// TCP is a framed-binary implementation of Network for real multi-process
// deployments: each process runs one TCP listener serving all the nodes it
// hosts, and an address book maps transport addresses to host:port pairs.
//
// Wire format: every connection carries a stream of frames, each a 4-byte
// big-endian length followed by the sender address (9 bytes), the
// destination address (9 bytes), and the message in the canonical tagged
// encoding of internal/types — the same codec signature payloads are built
// from, so nothing is serialized twice. Only protocol messages cross the
// wire; arbitrary values are rejected at encode time and dropped.
//
// Each connection owns a writer goroutine feeding a buffered writer:
// senders enqueue encoded frames (blocking when the queue is full, which
// gives natural backpressure), and the writer coalesces whatever is queued
// into one flush — flush happens on idle, not per message. Failed
// connections are evicted everywhere they are referenced, including
// reverse routes learned from inbound traffic, so a reconnecting peer is
// never shadowed by a dead socket.
//
// Broadcasts (SendAll) encode the message body exactly once: each
// destination's frame shares the body slice and carries only its own
// 22-byte header (length prefix + from/to addrs), so fanning an ST1 or
// writeback out to a whole shard costs one serialization, not n.
//
// Dialing never happens on the send path. The first send to an
// unconnected host:port enqueues onto a connection shell whose socket a
// background goroutine is dialing; a failed dial marks the host:port down
// for DialBackoff, during which further sends drop immediately. One
// unreachable replica therefore cannot stall a shard broadcast for the
// dial timeout.
type TCP struct {
	book map[Addr]string // transport addr -> host:port
	opts TCPOptions
	// dialFn performs outbound connection attempts; a test seam, set once
	// at construction and overridable before traffic flows.
	dialFn func(hostport string) (net.Conn, error)

	// mu guards the connection tables below (handlers, conns, reverse,
	// live, down) and closed; per-connection writes queue on each conn's
	// own writer goroutine, never under mu.
	mu       sync.Mutex
	handlers map[Addr]Handler
	conns    map[string]*tcpConn // dialed (or dialing), by host:port
	// reverse maps a remote node's transport address to the inbound
	// connection its traffic arrives on, so replies reach nodes that are
	// not in the address book (clients behind ephemeral ports).
	reverse map[Addr]*tcpConn
	live    map[*tcpConn]struct{} // every open connection, for Close
	// down records host:ports whose last dial failed; sends to them are
	// dropped (fail-fast) until the backoff deadline passes.
	down   map[string]time.Time
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup

	// inbound counts currently-open accepted connections, enforced against
	// TCPOptions.MaxConns in acceptLoop. Guarded by mu.
	inbound int
	// inflight counts frames queued across every connection's out channel
	// (reserved in enqueue, released when the writer dequeues or a dead
	// connection's queue is drained), enforced against MaxInflight.
	inflight atomic.Int64

	// Wire counters (nil-safe no-ops unless TCPOptions.Metrics was set).
	mx tcpMetrics
	// reg backs the dynamic per-peer counters in dialDropMetrics; nil when
	// instrumentation is off. dialDrops is guarded by mu.
	reg       *metrics.Registry
	dialDrops map[string]*metrics.Counter
	// tracer records per-frame queueing-delay spans; nil-safe.
	tracer *trace.Tracer
}

// tcpMetrics are the transport's instrument handles; see TCPOptions.Metrics.
type tcpMetrics struct {
	framesOut, bytesOut *metrics.Counter
	framesIn, bytesIn   *metrics.Counter
	dials, dialFails    *metrics.Counter
	backoffDrops        *metrics.Counter
	broadcasts, fanout  *metrics.Counter
	// overflowDrops counts frames shed by the bounded intake: a per-conn
	// pending-byte budget or the global inflight cap was exceeded.
	overflowDrops *metrics.Counter
	// connsRejected counts inbound connections refused by MaxConns.
	connsRejected *metrics.Counter
	// acceptRetries counts transient Accept errors survived by acceptLoop.
	acceptRetries *metrics.Counter
}

// initTCPMetrics registers the wire counters. reg may be nil (off).
func initTCPMetrics(reg *metrics.Registry) tcpMetrics {
	if reg == nil {
		reg = metrics.Nop
	}
	return tcpMetrics{
		framesOut:     reg.Counter("basil_net_frames_total", "dir", "out"),
		bytesOut:      reg.Counter("basil_net_bytes_total", "dir", "out"),
		framesIn:      reg.Counter("basil_net_frames_total", "dir", "in"),
		bytesIn:       reg.Counter("basil_net_bytes_total", "dir", "in"),
		dials:         reg.Counter("basil_net_dials_total"),
		dialFails:     reg.Counter("basil_net_dial_failures_total"),
		backoffDrops:  reg.Counter("basil_net_backoff_drops_total"),
		broadcasts:    reg.Counter("basil_net_broadcasts_total"),
		fanout:        reg.Counter("basil_net_broadcast_dests_total"),
		overflowDrops: reg.Counter("basil_net_frames_dropped_overflow_total"),
		connsRejected: reg.Counter("basil_net_conns_rejected_total"),
		acceptRetries: reg.Counter("basil_net_accept_retries_total"),
	}
}

// dialDropMetrics returns the per-peer frames_dropped_dialing counter for
// hostport, registering it on first use. Frames dropped while a background
// dial is pending used to vanish without a trace; the per-peer family makes
// "this replica's broadcasts silently miss that host" visible. Caller must
// hold t.mu. Nil (a no-op counter) when instrumentation is off.
func (t *TCP) dialDropMetrics(hostport string) *metrics.Counter {
	if t.reg == nil {
		return nil
	}
	if c, ok := t.dialDrops[hostport]; ok {
		return c
	}
	c := t.reg.Counter("basil_net_frames_dropped_dialing_total", "peer", hostport)
	t.dialDrops[hostport] = c
	return c
}

// TCPOptions tunes a TCP network. The zero value selects the defaults.
type TCPOptions struct {
	// MaxFrame caps a single wire frame, both sent (oversized sends are
	// dropped) and received (oversized frames kill the connection). It
	// must be identical on every node of a deployment: a frame one node
	// is willing to send but another rejects causes a reconnect/resend
	// loop. Certificates dominate frame size. Default 16 MiB.
	MaxFrame int
	// BufSize is the per-connection buffered reader/writer size.
	// Default 64 KiB.
	BufSize int
	// Queue is the per-connection outbound frame queue length; senders
	// block when it is full. Default 256.
	Queue int
	// DialTimeout bounds outbound connection attempts. Default 3s.
	DialTimeout time.Duration
	// DialBackoff is how long a host:port whose dial failed is considered
	// down; sends to it during the window are dropped without dialing.
	// Default 1s.
	DialBackoff time.Duration
	// MaxConns caps concurrently-open inbound (accepted) connections;
	// further accepts are closed immediately and counted in
	// basil_net_conns_rejected_total. 0 = unlimited (the default).
	MaxConns int
	// AcceptRate caps accepted connections per second (a pacing delay
	// between accepts, not a burst bucket). 0 = unlimited (the default).
	AcceptRate int
	// PendingBytes budgets the bytes queued on one connection's outbound
	// queue; frames that would exceed it are dropped and counted in
	// basil_net_frames_dropped_overflow_total. It bounds the memory a slow
	// or stalled peer can pin (the frame queue alone admits Queue frames
	// of up to MaxFrame bytes each). 0 = unlimited (the default).
	PendingBytes int
	// MaxInflight caps frames queued across all connections — the
	// transport-wide inflight limit. Excess frames are dropped and counted
	// in basil_net_frames_dropped_overflow_total. 0 = unlimited.
	MaxInflight int
	// Metrics, if non-nil, registers the transport's wire counters
	// (frames/bytes in and out, dials and backoff drops, broadcast
	// fanout) on the given registry. Nil disables instrumentation.
	Metrics *metrics.Registry
	// Tracer, if non-nil, records a "net.queue" span (enqueue to socket
	// write — the frame's queueing delay) for frames whose message
	// carries a sampled trace context. Nil disables tracing.
	Tracer *trace.Tracer
}

func (o *TCPOptions) withDefaults() {
	if o.MaxFrame <= 0 {
		o.MaxFrame = 16 << 20
	}
	if o.BufSize <= 0 {
		o.BufSize = 64 << 10
	}
	if o.Queue <= 0 {
		o.Queue = 256
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.DialBackoff <= 0 {
		o.DialBackoff = time.Second
	}
}

// frameHdrSize is the fixed per-destination frame header: a 4-byte length
// prefix plus the sender and destination addresses.
const frameHdrSize = 4 + 2*addrWireSize

// wireFrame is one outbound frame: the per-destination header and the
// encoded message body. Broadcast frames share one body slice across all
// destinations — only the header differs — so the body must never be
// mutated after it is handed to enqueue.
type wireFrame struct {
	hdr  [frameHdrSize]byte
	body []byte
	// tc and enq attribute this frame's queueing delay to a sampled
	// transaction; enq is 0 on the common (unsampled) path and the
	// writer skips the span entirely.
	tc  types.TraceContext
	enq int64
}

// makeFrame stamps the per-destination header onto a shared body.
func makeFrame(from, to Addr, body []byte) wireFrame {
	var f wireFrame
	binary.BigEndian.PutUint32(f.hdr[:4], uint32(2*addrWireSize+len(body)))
	putAddr(f.hdr[4:], from)
	putAddr(f.hdr[4+addrWireSize:], to)
	f.body = body
	return f
}

// tcpConn is one TCP connection (dialed, dialing, or inbound) with its
// outbound frame queue. The writer goroutine is the only writer on the
// socket. For outbound connections the socket is attached by the
// background dial goroutine; frames enqueued meanwhile wait in out.
type tcpConn struct {
	hostport string // dial target; "" for inbound connections
	inbound  bool   // accepted (counts against MaxConns)
	out      chan wireFrame
	closed   chan struct{}
	// ready is closed once the socket is attached; while it is open the
	// peer may well be dead, so a full queue drops instead of blocking.
	ready chan struct{}
	once  sync.Once
	// pending is the byte footprint of frames currently in out, enforced
	// against TCPOptions.PendingBytes.
	pending atomic.Int64

	connMu sync.Mutex
	c      net.Conn // nil until the background dial completes (outbound)
}

// close makes the connection unusable; safe to call many times.
func (c *tcpConn) close() {
	c.once.Do(func() {
		close(c.closed)
		c.connMu.Lock()
		if c.c != nil {
			c.c.Close()
		}
		c.connMu.Unlock()
	})
}

// attach installs the dialed socket. It reports false when the connection
// was closed while the dial was in flight (the caller must close raw).
func (c *tcpConn) attach(raw net.Conn) bool {
	c.connMu.Lock()
	c.c = raw
	c.connMu.Unlock()
	close(c.ready)
	select {
	case <-c.closed:
		return false
	default:
		return true
	}
}

// frameSize is a queued frame's accounting footprint.
func frameSize(f wireFrame) int64 { return int64(len(f.hdr) + len(f.body)) }

// releaseFrame returns a dequeued (or drained) frame's reservation to the
// per-conn byte budget and the global inflight count. Every successful
// enqueue is matched by exactly one releaseFrame: the writer releases on
// dequeue, and dead connections' queues are drained by drainQueue.
func (t *TCP) releaseFrame(c *tcpConn, f wireFrame) {
	c.pending.Add(-frameSize(f))
	t.inflight.Add(-1)
}

// drainQueue empties a dead connection's outbound queue, releasing the
// reservations of frames no writer will ever dequeue. Safe to run
// concurrently with the writer or another drain: a frame is received (and
// hence released) exactly once.
func (t *TCP) drainQueue(c *tcpConn) {
	for {
		select {
		case f := <-c.out:
			t.releaseFrame(c, f)
		default:
			return
		}
	}
}

// enqResult says what enqueue did with a frame.
type enqResult uint8

// enqueue outcomes.
const (
	enqQueued         enqResult = iota
	enqDroppedDialing           // queue full while the background dial is pending
	enqDroppedLimit             // per-conn byte budget or global inflight cap
	enqDead                     // connection is dead; caller should evict
)

// enqueue hands a frame to the writer goroutine. On a live (attached)
// connection a full queue blocks — backpressure. While the background
// dial is still pending a full queue drops the frame instead: the peer is
// plausibly dead, and blocking here would let it stall a broadcast for
// the remainder of the dial timeout. The per-conn byte budget and the
// global inflight cap shed over-limit frames the same way; the result says
// which of these happened so the caller can account for the drop.
func (t *TCP) enqueue(c *tcpConn, frame wireFrame) enqResult {
	select {
	case <-c.closed:
		return enqDead
	default:
	}
	size := frameSize(frame)
	if max := int64(t.opts.PendingBytes); max > 0 && c.pending.Load()+size > max {
		t.mx.overflowDrops.Inc()
		return enqDroppedLimit
	}
	if max := int64(t.opts.MaxInflight); max > 0 && t.inflight.Load() >= max {
		t.mx.overflowDrops.Inc()
		return enqDroppedLimit
	}
	c.pending.Add(size)
	t.inflight.Add(1)
	committed := false
	select {
	case c.out <- frame:
		committed = true
	case <-c.closed:
		t.releaseFrame(c, frame)
		return enqDead
	default:
	}
	if !committed {
		// Queue full. Only block for it to drain if the socket is attached.
		select {
		case <-c.ready:
		default:
			t.releaseFrame(c, frame)
			return enqDroppedDialing
		}
		select {
		case c.out <- frame:
		case <-c.closed:
			t.releaseFrame(c, frame)
			return enqDead
		}
	}
	// The commit can race the connection dying after its final drain; if it
	// did, reclaim whatever is still queued ourselves (dequeues are
	// exactly-once either way) so the reservation cannot leak.
	select {
	case <-c.closed:
		t.drainQueue(c)
		return enqDead
	default:
	}
	return enqQueued
}

// NewTCP creates a TCP network listening on listen (empty for client-only
// processes that host no replicas) with the given address book and
// default options.
func NewTCP(listen string, book map[Addr]string) (*TCP, error) {
	return NewTCPOpts(listen, book, TCPOptions{})
}

// NewTCPOpts is NewTCP with explicit tuning options.
func NewTCPOpts(listen string, book map[Addr]string, opts TCPOptions) (*TCP, error) {
	opts.withDefaults()
	t := &TCP{
		book:     book,
		opts:     opts,
		handlers: make(map[Addr]Handler),
		conns:    make(map[string]*tcpConn),
		reverse:  make(map[Addr]*tcpConn),
		live:     make(map[*tcpConn]struct{}),
		down:     make(map[string]time.Time),
		mx:       initTCPMetrics(opts.Metrics),
		reg:      opts.Metrics,
		tracer:   opts.Tracer,
	}
	if t.reg != nil {
		t.dialDrops = make(map[string]*metrics.Counter)
	}
	t.dialFn = func(hostport string) (net.Conn, error) {
		return net.DialTimeout("tcp", hostport, t.opts.DialTimeout)
	}
	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// ListenAddr returns the bound listen address (useful with ":0").
func (t *TCP) ListenAddr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// SetRoute adds or updates an address-book entry.
func (t *TCP) SetRoute(a Addr, hostport string) {
	t.mu.Lock()
	t.book[a] = hostport
	t.mu.Unlock()
}

// acceptLoop accepts inbound connections until the listener closes. Accept
// errors other than listener closure — EMFILE under fd pressure,
// ECONNABORTED from a peer resetting mid-handshake — are transient: the
// loop backs off and retries instead of returning, because returning here
// permanently stops the server accepting connections while looking
// perfectly healthy otherwise.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	backoff := time.Millisecond
	var pace time.Duration
	if t.opts.AcceptRate > 0 {
		pace = time.Second / time.Duration(t.opts.AcceptRate)
	}
	for {
		raw, err := t.ln.Accept()
		if err != nil {
			if t.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			t.mx.acceptRetries.Inc()
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = time.Millisecond
		if !t.admitInbound() {
			t.mx.connsRejected.Inc()
			raw.Close()
			continue
		}
		c, ok := t.adopt(raw, "")
		if !ok {
			raw.Close()
			return
		}
		// learnReverse: inbound traffic teaches us how to reach peers
		// that are not in the address book.
		t.wg.Add(1)
		go t.readLoop(c, true)
		if pace > 0 {
			time.Sleep(pace)
		}
	}
}

// isClosed reports whether Close has begun.
func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// admitInbound reserves an inbound-connection slot against MaxConns; the
// slot is returned by evict when the connection dies.
func (t *TCP) admitInbound() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.opts.MaxConns > 0 && t.inbound >= t.opts.MaxConns {
		return false
	}
	t.inbound++
	return true
}

// adopt registers an inbound connection, starts its writer goroutine, and
// reports false when the network is already closed.
func (t *TCP) adopt(raw net.Conn, hostport string) (*tcpConn, bool) {
	c := &tcpConn{
		c:        raw,
		hostport: hostport,
		inbound:  hostport == "",
		out:      make(chan wireFrame, t.opts.Queue),
		closed:   make(chan struct{}),
		ready:    make(chan struct{}),
	}
	close(c.ready) // the socket exists from the start
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false
	}
	t.live[c] = struct{}{}
	t.wg.Add(1)
	t.mu.Unlock()
	go t.writeLoop(c)
	return c, true
}

// writeLoop is the connection's only socket writer. It batches every
// frame already queued into one buffered write and flushes only when the
// queue goes idle, coalescing bursts into few syscalls.
func (t *TCP) writeLoop(c *tcpConn) {
	defer t.wg.Done()
	bw := bufio.NewWriterSize(c.c, t.opts.BufSize)
	node := "net:" + c.hostport
	if c.hostport == "" {
		node = "net:reverse"
	}
	write := func(frame wireFrame) bool {
		if _, err := bw.Write(frame.hdr[:]); err != nil {
			return false
		}
		if _, err := bw.Write(frame.body); err != nil {
			return false
		}
		t.mx.framesOut.Inc()
		t.mx.bytesOut.Add(uint64(len(frame.hdr) + len(frame.body)))
		if frame.enq != 0 {
			t.tracer.End(frame.tc, node, "net.queue", 0, frame.enq)
		}
		return true
	}
	for {
		select {
		case <-c.closed:
			bw.Flush()
			t.drainQueue(c)
			return
		case frame := <-c.out:
			t.releaseFrame(c, frame)
			if !write(frame) {
				t.evict(c)
				return
			}
		coalesce:
			for {
				select {
				case more := <-c.out:
					t.releaseFrame(c, more)
					if !write(more) {
						t.evict(c)
						return
					}
				default:
					break coalesce
				}
			}
			if bw.Flush() != nil {
				t.evict(c)
				return
			}
		}
	}
}

// readLoop decodes frames arriving on c and delivers them to local
// handlers. With learnReverse set (inbound connections) it records the
// sender's reverse route so replies to unbooked peers can be sent.
func (t *TCP) readLoop(c *tcpConn, learnReverse bool) {
	defer t.wg.Done()
	defer t.evict(c)
	br := bufio.NewReaderSize(c.c, t.opts.BufSize)
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenbuf[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(lenbuf[:]))
		if n < 2*addrWireSize || n > t.opts.MaxFrame {
			return
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		from, ok1 := decodeAddr(frame)
		to, ok2 := decodeAddr(frame[addrWireSize:])
		if !ok1 || !ok2 {
			return
		}
		msg, rest, err := types.DecodeMessage(frame[2*addrWireSize:])
		if err != nil || len(rest) != 0 {
			return
		}
		t.mx.framesIn.Inc()
		t.mx.bytesIn.Add(uint64(4 + n))
		t.mu.Lock()
		h := t.handlers[to]
		if learnReverse {
			if _, known := t.book[from]; !known {
				t.reverse[from] = c
			}
		}
		t.mu.Unlock()
		if h != nil {
			h.Deliver(from, msg)
		}
	}
}

// evict closes c and removes every reference to it: the dialed-connection
// cache and any reverse routes learned from it. Reverse-route eviction is
// what lets a reconnecting client be reached again — a dead inbound socket
// must never shadow the live one.
func (t *TCP) evict(c *tcpConn) {
	t.mu.Lock()
	if c.hostport != "" && t.conns[c.hostport] == c {
		delete(t.conns, c.hostport)
	}
	for a, rc := range t.reverse {
		if rc == c {
			delete(t.reverse, a)
		}
	}
	if _, wasLive := t.live[c]; wasLive && c.inbound {
		t.inbound-- // return the MaxConns slot exactly once
	}
	delete(t.live, c)
	t.mu.Unlock()
	c.close()
	t.drainQueue(c)
}

// Register implements Network. Unlike Local, delivery runs on the
// connection-reading goroutine; handlers are already required not to block
// indefinitely.
func (t *TCP) Register(addr Addr, h Handler) {
	t.mu.Lock()
	t.handlers[addr] = h
	t.mu.Unlock()
}

// encodeBody serializes msg with the canonical tagged codec. The test
// hook lets the counting-codec test prove encode-once semantics without a
// second serialization path.
var encodeBodyHook func(msg any) // test seam; nil outside tests

func encodeBody(msg any) ([]byte, error) {
	if encodeBodyHook != nil {
		encodeBodyHook(msg)
	}
	return types.EncodeMessage(msg)
}

// Send implements Network. Messages to locally registered handlers are
// delivered directly; everything else is framed onto a cached connection.
// Non-protocol values and unroutable destinations are dropped (the
// asynchronous network model; protocols tolerate loss).
func (t *TCP) Send(from, to Addr, msg any) {
	t.SendAll(from, []Addr{to}, msg)
}

// SendAll implements Network with encode-once semantics: the message body
// is serialized at most once for the whole broadcast (lazily, so a fanout
// that resolves entirely to local handlers never touches the codec), and
// every remote destination's frame shares that body, stamped with its own
// header. Local destinations reuse the decoded value directly. The return
// value is the number of destinations actually handed the message; drops
// while a dial is pending are additionally charged to the peer's
// frames_dropped_dialing counter so partial broadcasts are visible.
func (t *TCP) SendAll(from Addr, tos []Addr, msg any) int {
	if len(tos) > 1 {
		t.mx.broadcasts.Inc()
		t.mx.fanout.Add(uint64(len(tos)))
	}
	sent := 0
	var body []byte
	var tc types.TraceContext
	var enq int64
	unencodable := false
	for _, to := range tos {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return sent
		}
		if h := t.handlers[to]; h != nil {
			t.mu.Unlock()
			h.Deliver(from, msg)
			sent++
			continue
		}
		conn := t.routeLocked(to)
		t.mu.Unlock()
		if conn == nil {
			continue // unknown, or fail-fast on a backed-off host:port
		}
		if body == nil {
			if unencodable {
				continue
			}
			var err error
			body, err = encodeBody(msg)
			if err != nil || 2*addrWireSize+len(body) > t.opts.MaxFrame {
				// Not a protocol message, or a frame the receiver would
				// kill the connection over (dropping every in-flight frame
				// with it): drop sender-side for all remote destinations.
				body, unencodable = nil, true
				continue
			}
			if t.tracer != nil {
				tc = types.TraceContextOf(msg)
				enq = t.tracer.Start(tc) // 0 unless sampled
			}
		}
		frame := makeFrame(from, to, body)
		frame.tc, frame.enq = tc, enq
		switch t.enqueue(conn, frame) {
		case enqQueued:
			sent++
		case enqDroppedDialing:
			t.mu.Lock()
			c := t.dialDropMetrics(conn.hostport)
			t.mu.Unlock()
			c.Inc()
		case enqDroppedLimit:
			// already counted in overflowDrops by enqueue
		case enqDead:
			t.evict(conn)
		}
	}
	return sent
}

// routeLocked resolves to's outbound connection, starting a background
// dial when none exists. It returns nil for unknown destinations and for
// host:ports inside their dial-failure backoff window. Caller holds t.mu.
func (t *TCP) routeLocked(to Addr) *tcpConn {
	hostport := t.book[to]
	if hostport == "" {
		return t.reverse[to]
	}
	if c := t.conns[hostport]; c != nil {
		return c
	}
	if until, dead := t.down[hostport]; dead {
		if time.Now().Before(until) {
			t.mx.backoffDrops.Inc()
			return nil // fail-fast: recently unreachable
		}
		delete(t.down, hostport)
	}
	c := &tcpConn{
		hostport: hostport,
		out:      make(chan wireFrame, t.opts.Queue),
		closed:   make(chan struct{}),
		ready:    make(chan struct{}),
	}
	t.conns[hostport] = c
	t.live[c] = struct{}{}
	t.wg.Add(1)
	go t.dialLoop(c)
	return c
}

// dialLoop connects an outbound connection shell off the send path. On
// success it attaches the socket and starts the writer (draining frames
// queued during the dial) and reader; on failure it marks the host:port
// down for the backoff window and evicts the shell.
func (t *TCP) dialLoop(c *tcpConn) {
	defer t.wg.Done()
	t.mx.dials.Inc()
	raw, err := t.dialFn(c.hostport)
	if err != nil {
		t.mx.dialFails.Inc()
		t.mu.Lock()
		t.down[c.hostport] = time.Now().Add(t.opts.DialBackoff)
		t.mu.Unlock()
		t.evict(c)
		return
	}
	if !c.attach(raw) {
		raw.Close() // closed while dialing
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.evict(c)
		return
	}
	t.wg.Add(2)
	t.mu.Unlock()
	go t.writeLoop(c)
	go t.readLoop(c, false)
}

// addrWireSize is the encoded size of an Addr: role byte + shard + index.
const addrWireSize = 9

func putAddr(b []byte, a Addr) {
	b[0] = byte(a.Role)
	binary.BigEndian.PutUint32(b[1:5], uint32(a.Shard))
	binary.BigEndian.PutUint32(b[5:9], uint32(a.Index))
}

func decodeAddr(b []byte) (Addr, bool) {
	if len(b) < addrWireSize {
		return Addr{}, false
	}
	return Addr{
		Role:  Role(b[0]),
		Shard: int32(binary.BigEndian.Uint32(b[1:5])),
		Index: int32(binary.BigEndian.Uint32(b[5:9])),
	}, true
}

// Close implements Network.
func (t *TCP) Close() {
	t.mu.Lock()
	t.closed = true
	if t.ln != nil {
		t.ln.Close()
	}
	for c := range t.live {
		c.close()
	}
	t.conns = make(map[string]*tcpConn)
	t.reverse = make(map[Addr]*tcpConn)
	t.live = make(map[*tcpConn]struct{})
	t.mu.Unlock()
	t.wg.Wait()
}
