package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/types"
)

// TCP is a framed-binary implementation of Network for real multi-process
// deployments: each process runs one TCP listener serving all the nodes it
// hosts, and an address book maps transport addresses to host:port pairs.
//
// Wire format: every connection carries a stream of frames, each a 4-byte
// big-endian length followed by the sender address (9 bytes), the
// destination address (9 bytes), and the message in the canonical tagged
// encoding of internal/types — the same codec signature payloads are built
// from, so nothing is serialized twice. Only protocol messages cross the
// wire; arbitrary values are rejected at encode time and dropped.
//
// Each connection owns a writer goroutine feeding a buffered writer:
// senders enqueue encoded frames (blocking when the queue is full, which
// gives natural backpressure), and the writer coalesces whatever is queued
// into one flush — flush happens on idle, not per message. Failed
// connections are evicted everywhere they are referenced, including
// reverse routes learned from inbound traffic, so a reconnecting peer is
// never shadowed by a dead socket.
type TCP struct {
	book map[Addr]string // transport addr -> host:port
	opts TCPOptions

	mu       sync.Mutex
	handlers map[Addr]Handler
	conns    map[string]*tcpConn // dialed, by host:port
	// reverse maps a remote node's transport address to the inbound
	// connection its traffic arrives on, so replies reach nodes that are
	// not in the address book (clients behind ephemeral ports).
	reverse map[Addr]*tcpConn
	live    map[*tcpConn]struct{} // every open connection, for Close
	ln      net.Listener
	closed  bool
	wg      sync.WaitGroup
}

// TCPOptions tunes a TCP network. The zero value selects the defaults.
type TCPOptions struct {
	// MaxFrame caps a single wire frame, both sent (oversized sends are
	// dropped) and received (oversized frames kill the connection). It
	// must be identical on every node of a deployment: a frame one node
	// is willing to send but another rejects causes a reconnect/resend
	// loop. Certificates dominate frame size. Default 16 MiB.
	MaxFrame int
	// BufSize is the per-connection buffered reader/writer size.
	// Default 64 KiB.
	BufSize int
	// Queue is the per-connection outbound frame queue length; senders
	// block when it is full. Default 256.
	Queue int
	// DialTimeout bounds outbound connection attempts. Default 3s.
	DialTimeout time.Duration
}

func (o *TCPOptions) withDefaults() {
	if o.MaxFrame <= 0 {
		o.MaxFrame = 16 << 20
	}
	if o.BufSize <= 0 {
		o.BufSize = 64 << 10
	}
	if o.Queue <= 0 {
		o.Queue = 256
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
}

// tcpConn is one TCP connection (dialed or inbound) with its outbound
// frame queue. The writer goroutine is the only writer on the socket.
type tcpConn struct {
	c        net.Conn
	hostport string // dial target; "" for inbound connections
	out      chan []byte
	closed   chan struct{}
	once     sync.Once
}

// close makes the connection unusable; safe to call many times.
func (c *tcpConn) close() {
	c.once.Do(func() {
		close(c.closed)
		c.c.Close()
	})
}

// enqueue hands a frame to the writer goroutine, blocking while the queue
// is full (backpressure). It reports false when the connection is dead.
func (c *tcpConn) enqueue(frame []byte) bool {
	select {
	case <-c.closed:
		return false
	default:
	}
	select {
	case c.out <- frame:
		return true
	case <-c.closed:
		return false
	}
}

// NewTCP creates a TCP network listening on listen (empty for client-only
// processes that host no replicas) with the given address book and
// default options.
func NewTCP(listen string, book map[Addr]string) (*TCP, error) {
	return NewTCPOpts(listen, book, TCPOptions{})
}

// NewTCPOpts is NewTCP with explicit tuning options.
func NewTCPOpts(listen string, book map[Addr]string, opts TCPOptions) (*TCP, error) {
	opts.withDefaults()
	t := &TCP{
		book:     book,
		opts:     opts,
		handlers: make(map[Addr]Handler),
		conns:    make(map[string]*tcpConn),
		reverse:  make(map[Addr]*tcpConn),
		live:     make(map[*tcpConn]struct{}),
	}
	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// ListenAddr returns the bound listen address (useful with ":0").
func (t *TCP) ListenAddr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// SetRoute adds or updates an address-book entry.
func (t *TCP) SetRoute(a Addr, hostport string) {
	t.mu.Lock()
	t.book[a] = hostport
	t.mu.Unlock()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		raw, err := t.ln.Accept()
		if err != nil {
			return
		}
		c, ok := t.adopt(raw, "")
		if !ok {
			raw.Close()
			return
		}
		// learnReverse: inbound traffic teaches us how to reach peers
		// that are not in the address book.
		t.wg.Add(1)
		go t.readLoop(c, true)
	}
}

// adopt registers a new connection, starts its writer goroutine, and
// reports false when the network is already closed.
func (t *TCP) adopt(raw net.Conn, hostport string) (*tcpConn, bool) {
	c := &tcpConn{
		c:        raw,
		hostport: hostport,
		out:      make(chan []byte, t.opts.Queue),
		closed:   make(chan struct{}),
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false
	}
	t.live[c] = struct{}{}
	t.wg.Add(1)
	t.mu.Unlock()
	go t.writeLoop(c)
	return c, true
}

// writeLoop is the connection's only socket writer. It batches every
// frame already queued into one buffered write and flushes only when the
// queue goes idle, coalescing bursts into few syscalls.
func (t *TCP) writeLoop(c *tcpConn) {
	defer t.wg.Done()
	bw := bufio.NewWriterSize(c.c, t.opts.BufSize)
	write := func(frame []byte) bool {
		_, err := bw.Write(frame)
		return err == nil
	}
	for {
		select {
		case <-c.closed:
			bw.Flush()
			return
		case frame := <-c.out:
			if !write(frame) {
				t.evict(c)
				return
			}
		coalesce:
			for {
				select {
				case more := <-c.out:
					if !write(more) {
						t.evict(c)
						return
					}
				default:
					break coalesce
				}
			}
			if bw.Flush() != nil {
				t.evict(c)
				return
			}
		}
	}
}

// readLoop decodes frames arriving on c and delivers them to local
// handlers. With learnReverse set (inbound connections) it records the
// sender's reverse route so replies to unbooked peers can be sent.
func (t *TCP) readLoop(c *tcpConn, learnReverse bool) {
	defer t.wg.Done()
	defer t.evict(c)
	br := bufio.NewReaderSize(c.c, t.opts.BufSize)
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenbuf[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(lenbuf[:]))
		if n < 2*addrWireSize || n > t.opts.MaxFrame {
			return
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		from, ok1 := decodeAddr(frame)
		to, ok2 := decodeAddr(frame[addrWireSize:])
		if !ok1 || !ok2 {
			return
		}
		msg, rest, err := types.DecodeMessage(frame[2*addrWireSize:])
		if err != nil || len(rest) != 0 {
			return
		}
		t.mu.Lock()
		h := t.handlers[to]
		if learnReverse {
			if _, known := t.book[from]; !known {
				t.reverse[from] = c
			}
		}
		t.mu.Unlock()
		if h != nil {
			h.Deliver(from, msg)
		}
	}
}

// evict closes c and removes every reference to it: the dialed-connection
// cache and any reverse routes learned from it. Reverse-route eviction is
// what lets a reconnecting client be reached again — a dead inbound socket
// must never shadow the live one.
func (t *TCP) evict(c *tcpConn) {
	t.mu.Lock()
	if c.hostport != "" && t.conns[c.hostport] == c {
		delete(t.conns, c.hostport)
	}
	for a, rc := range t.reverse {
		if rc == c {
			delete(t.reverse, a)
		}
	}
	delete(t.live, c)
	t.mu.Unlock()
	c.close()
}

// Register implements Network. Unlike Local, delivery runs on the
// connection-reading goroutine; handlers are already required not to block
// indefinitely.
func (t *TCP) Register(addr Addr, h Handler) {
	t.mu.Lock()
	t.handlers[addr] = h
	t.mu.Unlock()
}

// Send implements Network. Messages to locally registered handlers are
// delivered directly; everything else is framed onto a cached connection.
// Non-protocol values and unroutable destinations are dropped (the
// asynchronous network model; protocols tolerate loss).
func (t *TCP) Send(from, to Addr, msg any) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if h := t.handlers[to]; h != nil {
		t.mu.Unlock()
		h.Deliver(from, msg)
		return
	}
	hostport := t.book[to]
	var conn *tcpConn
	if hostport == "" {
		conn = t.reverse[to]
	}
	t.mu.Unlock()
	if conn == nil {
		if hostport == "" {
			return // unknown destination: dropped
		}
		var err error
		conn, err = t.conn(hostport)
		if err != nil {
			return
		}
	}
	frame, err := encodeFrame(from, to, msg)
	if err != nil {
		return // not a protocol message: dropped
	}
	if len(frame)-4 > t.opts.MaxFrame {
		// Drop sender-side: shipping an oversized frame would make the
		// receiver kill the whole connection (and every in-flight frame
		// on it), turning one huge certificate into a connect/kill loop.
		return
	}
	if !conn.enqueue(frame) {
		t.evict(conn)
	}
}

// encodeFrame builds a length-prefixed wire frame.
func encodeFrame(from, to Addr, msg any) ([]byte, error) {
	b := make([]byte, 4, 192)
	b = appendAddr(b, from)
	b = appendAddr(b, to)
	b, err := types.AppendMessage(b, msg)
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	return b, nil
}

// addrWireSize is the encoded size of an Addr: role byte + shard + index.
const addrWireSize = 9

func appendAddr(b []byte, a Addr) []byte {
	b = append(b, byte(a.Role))
	b = binary.BigEndian.AppendUint32(b, uint32(a.Shard))
	return binary.BigEndian.AppendUint32(b, uint32(a.Index))
}

func decodeAddr(b []byte) (Addr, bool) {
	if len(b) < addrWireSize {
		return Addr{}, false
	}
	return Addr{
		Role:  Role(b[0]),
		Shard: int32(binary.BigEndian.Uint32(b[1:5])),
		Index: int32(binary.BigEndian.Uint32(b[5:9])),
	}, true
}

// conn returns the cached dialed connection for hostport, dialing if
// needed. Replies may come back on the same socket (reverse routing on
// the peer), so a read loop is started for it too.
func (t *TCP) conn(hostport string) (*tcpConn, error) {
	t.mu.Lock()
	if c := t.conns[hostport]; c != nil {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()
	raw, err := net.DialTimeout("tcp", hostport, t.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if prev := t.conns[hostport]; prev != nil {
		t.mu.Unlock()
		raw.Close()
		return prev, nil
	}
	t.mu.Unlock()
	c, ok := t.adopt(raw, hostport)
	if !ok {
		raw.Close()
		return nil, errors.New("transport: closed")
	}
	t.mu.Lock()
	// Re-check closed: Close may have completed while we were dialing, and
	// wg.Add after its Wait (or repopulating the reset conns map) would
	// leak a goroutine past Close.
	if t.closed {
		t.mu.Unlock()
		t.evict(c)
		return nil, errors.New("transport: closed")
	}
	if prev := t.conns[hostport]; prev != nil {
		t.mu.Unlock()
		t.evict(c)
		return prev, nil
	}
	t.conns[hostport] = c
	t.wg.Add(1)
	t.mu.Unlock()
	go t.readLoop(c, false)
	return c, nil
}

// Close implements Network.
func (t *TCP) Close() {
	t.mu.Lock()
	t.closed = true
	if t.ln != nil {
		t.ln.Close()
	}
	for c := range t.live {
		c.close()
	}
	t.conns = make(map[string]*tcpConn)
	t.reverse = make(map[Addr]*tcpConn)
	t.live = make(map[*tcpConn]struct{})
	t.mu.Unlock()
	t.wg.Wait()
}
