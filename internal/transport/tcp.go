package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/types"
)

// TCP is a framed-binary implementation of Network for real multi-process
// deployments: each process runs one TCP listener serving all the nodes it
// hosts, and an address book maps transport addresses to host:port pairs.
//
// Wire format: every connection carries a stream of frames, each a 4-byte
// big-endian length followed by the sender address (9 bytes), the
// destination address (9 bytes), and the message in the canonical tagged
// encoding of internal/types — the same codec signature payloads are built
// from, so nothing is serialized twice. Only protocol messages cross the
// wire; arbitrary values are rejected at encode time and dropped.
//
// Each connection owns a writer goroutine feeding a buffered writer:
// senders enqueue encoded frames (blocking when the queue is full, which
// gives natural backpressure), and the writer coalesces whatever is queued
// into one flush — flush happens on idle, not per message. Failed
// connections are evicted everywhere they are referenced, including
// reverse routes learned from inbound traffic, so a reconnecting peer is
// never shadowed by a dead socket.
//
// Broadcasts (SendAll) encode the message body exactly once: each
// destination's frame shares the body slice and carries only its own
// 22-byte header (length prefix + from/to addrs), so fanning an ST1 or
// writeback out to a whole shard costs one serialization, not n.
//
// Dialing never happens on the send path. The first send to an
// unconnected host:port enqueues onto a connection shell whose socket a
// background goroutine is dialing; a failed dial marks the host:port down
// for DialBackoff, during which further sends drop immediately. One
// unreachable replica therefore cannot stall a shard broadcast for the
// dial timeout.
type TCP struct {
	book map[Addr]string // transport addr -> host:port
	opts TCPOptions
	// dialFn performs outbound connection attempts; a test seam, set once
	// at construction and overridable before traffic flows.
	dialFn func(hostport string) (net.Conn, error)

	// mu guards the connection tables below (handlers, conns, reverse,
	// live, down) and closed; per-connection writes queue on each conn's
	// own writer goroutine, never under mu.
	mu       sync.Mutex
	handlers map[Addr]Handler
	conns    map[string]*tcpConn // dialed (or dialing), by host:port
	// reverse maps a remote node's transport address to the inbound
	// connection its traffic arrives on, so replies reach nodes that are
	// not in the address book (clients behind ephemeral ports).
	reverse map[Addr]*tcpConn
	live    map[*tcpConn]struct{} // every open connection, for Close
	// down records host:ports whose last dial failed; sends to them are
	// dropped (fail-fast) until the backoff deadline passes.
	down   map[string]time.Time
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup

	// Wire counters (nil-safe no-ops unless TCPOptions.Metrics was set).
	mx tcpMetrics
}

// tcpMetrics are the transport's instrument handles; see TCPOptions.Metrics.
type tcpMetrics struct {
	framesOut, bytesOut *metrics.Counter
	framesIn, bytesIn   *metrics.Counter
	dials, dialFails    *metrics.Counter
	backoffDrops        *metrics.Counter
	broadcasts, fanout  *metrics.Counter
}

// initTCPMetrics registers the wire counters. reg may be nil (off).
func initTCPMetrics(reg *metrics.Registry) tcpMetrics {
	if reg == nil {
		reg = metrics.Nop
	}
	return tcpMetrics{
		framesOut:    reg.Counter("basil_net_frames_total", "dir", "out"),
		bytesOut:     reg.Counter("basil_net_bytes_total", "dir", "out"),
		framesIn:     reg.Counter("basil_net_frames_total", "dir", "in"),
		bytesIn:      reg.Counter("basil_net_bytes_total", "dir", "in"),
		dials:        reg.Counter("basil_net_dials_total"),
		dialFails:    reg.Counter("basil_net_dial_failures_total"),
		backoffDrops: reg.Counter("basil_net_backoff_drops_total"),
		broadcasts:   reg.Counter("basil_net_broadcasts_total"),
		fanout:       reg.Counter("basil_net_broadcast_dests_total"),
	}
}

// TCPOptions tunes a TCP network. The zero value selects the defaults.
type TCPOptions struct {
	// MaxFrame caps a single wire frame, both sent (oversized sends are
	// dropped) and received (oversized frames kill the connection). It
	// must be identical on every node of a deployment: a frame one node
	// is willing to send but another rejects causes a reconnect/resend
	// loop. Certificates dominate frame size. Default 16 MiB.
	MaxFrame int
	// BufSize is the per-connection buffered reader/writer size.
	// Default 64 KiB.
	BufSize int
	// Queue is the per-connection outbound frame queue length; senders
	// block when it is full. Default 256.
	Queue int
	// DialTimeout bounds outbound connection attempts. Default 3s.
	DialTimeout time.Duration
	// DialBackoff is how long a host:port whose dial failed is considered
	// down; sends to it during the window are dropped without dialing.
	// Default 1s.
	DialBackoff time.Duration
	// Metrics, if non-nil, registers the transport's wire counters
	// (frames/bytes in and out, dials and backoff drops, broadcast
	// fanout) on the given registry. Nil disables instrumentation.
	Metrics *metrics.Registry
}

func (o *TCPOptions) withDefaults() {
	if o.MaxFrame <= 0 {
		o.MaxFrame = 16 << 20
	}
	if o.BufSize <= 0 {
		o.BufSize = 64 << 10
	}
	if o.Queue <= 0 {
		o.Queue = 256
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.DialBackoff <= 0 {
		o.DialBackoff = time.Second
	}
}

// frameHdrSize is the fixed per-destination frame header: a 4-byte length
// prefix plus the sender and destination addresses.
const frameHdrSize = 4 + 2*addrWireSize

// wireFrame is one outbound frame: the per-destination header and the
// encoded message body. Broadcast frames share one body slice across all
// destinations — only the header differs — so the body must never be
// mutated after it is handed to enqueue.
type wireFrame struct {
	hdr  [frameHdrSize]byte
	body []byte
}

// makeFrame stamps the per-destination header onto a shared body.
func makeFrame(from, to Addr, body []byte) wireFrame {
	var f wireFrame
	binary.BigEndian.PutUint32(f.hdr[:4], uint32(2*addrWireSize+len(body)))
	putAddr(f.hdr[4:], from)
	putAddr(f.hdr[4+addrWireSize:], to)
	f.body = body
	return f
}

// tcpConn is one TCP connection (dialed, dialing, or inbound) with its
// outbound frame queue. The writer goroutine is the only writer on the
// socket. For outbound connections the socket is attached by the
// background dial goroutine; frames enqueued meanwhile wait in out.
type tcpConn struct {
	hostport string // dial target; "" for inbound connections
	out      chan wireFrame
	closed   chan struct{}
	// ready is closed once the socket is attached; while it is open the
	// peer may well be dead, so a full queue drops instead of blocking.
	ready chan struct{}
	once  sync.Once

	connMu sync.Mutex
	c      net.Conn // nil until the background dial completes (outbound)
}

// close makes the connection unusable; safe to call many times.
func (c *tcpConn) close() {
	c.once.Do(func() {
		close(c.closed)
		c.connMu.Lock()
		if c.c != nil {
			c.c.Close()
		}
		c.connMu.Unlock()
	})
}

// attach installs the dialed socket. It reports false when the connection
// was closed while the dial was in flight (the caller must close raw).
func (c *tcpConn) attach(raw net.Conn) bool {
	c.connMu.Lock()
	c.c = raw
	c.connMu.Unlock()
	close(c.ready)
	select {
	case <-c.closed:
		return false
	default:
		return true
	}
}

// enqueue hands a frame to the writer goroutine. On a live (attached)
// connection a full queue blocks — backpressure. While the background
// dial is still pending a full queue drops the frame instead: the peer is
// plausibly dead, and blocking here would let it stall a broadcast for
// the remainder of the dial timeout. It reports false when the connection
// is dead (the caller should evict it).
func (c *tcpConn) enqueue(frame wireFrame) bool {
	select {
	case <-c.closed:
		return false
	default:
	}
	select {
	case c.out <- frame:
		return true
	case <-c.closed:
		return false
	default:
	}
	// Queue full. Only block for it to drain if the socket is attached.
	select {
	case <-c.ready:
	default:
		return true // dial still pending: drop, connection stays usable
	}
	select {
	case c.out <- frame:
		return true
	case <-c.closed:
		return false
	}
}

// NewTCP creates a TCP network listening on listen (empty for client-only
// processes that host no replicas) with the given address book and
// default options.
func NewTCP(listen string, book map[Addr]string) (*TCP, error) {
	return NewTCPOpts(listen, book, TCPOptions{})
}

// NewTCPOpts is NewTCP with explicit tuning options.
func NewTCPOpts(listen string, book map[Addr]string, opts TCPOptions) (*TCP, error) {
	opts.withDefaults()
	t := &TCP{
		book:     book,
		opts:     opts,
		handlers: make(map[Addr]Handler),
		conns:    make(map[string]*tcpConn),
		reverse:  make(map[Addr]*tcpConn),
		live:     make(map[*tcpConn]struct{}),
		down:     make(map[string]time.Time),
		mx:       initTCPMetrics(opts.Metrics),
	}
	t.dialFn = func(hostport string) (net.Conn, error) {
		return net.DialTimeout("tcp", hostport, t.opts.DialTimeout)
	}
	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// ListenAddr returns the bound listen address (useful with ":0").
func (t *TCP) ListenAddr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// SetRoute adds or updates an address-book entry.
func (t *TCP) SetRoute(a Addr, hostport string) {
	t.mu.Lock()
	t.book[a] = hostport
	t.mu.Unlock()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		raw, err := t.ln.Accept()
		if err != nil {
			return
		}
		c, ok := t.adopt(raw, "")
		if !ok {
			raw.Close()
			return
		}
		// learnReverse: inbound traffic teaches us how to reach peers
		// that are not in the address book.
		t.wg.Add(1)
		go t.readLoop(c, true)
	}
}

// adopt registers an inbound connection, starts its writer goroutine, and
// reports false when the network is already closed.
func (t *TCP) adopt(raw net.Conn, hostport string) (*tcpConn, bool) {
	c := &tcpConn{
		c:        raw,
		hostport: hostport,
		out:      make(chan wireFrame, t.opts.Queue),
		closed:   make(chan struct{}),
		ready:    make(chan struct{}),
	}
	close(c.ready) // the socket exists from the start
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false
	}
	t.live[c] = struct{}{}
	t.wg.Add(1)
	t.mu.Unlock()
	go t.writeLoop(c)
	return c, true
}

// writeLoop is the connection's only socket writer. It batches every
// frame already queued into one buffered write and flushes only when the
// queue goes idle, coalescing bursts into few syscalls.
func (t *TCP) writeLoop(c *tcpConn) {
	defer t.wg.Done()
	bw := bufio.NewWriterSize(c.c, t.opts.BufSize)
	write := func(frame wireFrame) bool {
		if _, err := bw.Write(frame.hdr[:]); err != nil {
			return false
		}
		if _, err := bw.Write(frame.body); err != nil {
			return false
		}
		t.mx.framesOut.Inc()
		t.mx.bytesOut.Add(uint64(len(frame.hdr) + len(frame.body)))
		return true
	}
	for {
		select {
		case <-c.closed:
			bw.Flush()
			return
		case frame := <-c.out:
			if !write(frame) {
				t.evict(c)
				return
			}
		coalesce:
			for {
				select {
				case more := <-c.out:
					if !write(more) {
						t.evict(c)
						return
					}
				default:
					break coalesce
				}
			}
			if bw.Flush() != nil {
				t.evict(c)
				return
			}
		}
	}
}

// readLoop decodes frames arriving on c and delivers them to local
// handlers. With learnReverse set (inbound connections) it records the
// sender's reverse route so replies to unbooked peers can be sent.
func (t *TCP) readLoop(c *tcpConn, learnReverse bool) {
	defer t.wg.Done()
	defer t.evict(c)
	br := bufio.NewReaderSize(c.c, t.opts.BufSize)
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenbuf[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(lenbuf[:]))
		if n < 2*addrWireSize || n > t.opts.MaxFrame {
			return
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		from, ok1 := decodeAddr(frame)
		to, ok2 := decodeAddr(frame[addrWireSize:])
		if !ok1 || !ok2 {
			return
		}
		msg, rest, err := types.DecodeMessage(frame[2*addrWireSize:])
		if err != nil || len(rest) != 0 {
			return
		}
		t.mx.framesIn.Inc()
		t.mx.bytesIn.Add(uint64(4 + n))
		t.mu.Lock()
		h := t.handlers[to]
		if learnReverse {
			if _, known := t.book[from]; !known {
				t.reverse[from] = c
			}
		}
		t.mu.Unlock()
		if h != nil {
			h.Deliver(from, msg)
		}
	}
}

// evict closes c and removes every reference to it: the dialed-connection
// cache and any reverse routes learned from it. Reverse-route eviction is
// what lets a reconnecting client be reached again — a dead inbound socket
// must never shadow the live one.
func (t *TCP) evict(c *tcpConn) {
	t.mu.Lock()
	if c.hostport != "" && t.conns[c.hostport] == c {
		delete(t.conns, c.hostport)
	}
	for a, rc := range t.reverse {
		if rc == c {
			delete(t.reverse, a)
		}
	}
	delete(t.live, c)
	t.mu.Unlock()
	c.close()
}

// Register implements Network. Unlike Local, delivery runs on the
// connection-reading goroutine; handlers are already required not to block
// indefinitely.
func (t *TCP) Register(addr Addr, h Handler) {
	t.mu.Lock()
	t.handlers[addr] = h
	t.mu.Unlock()
}

// encodeBody serializes msg with the canonical tagged codec. The test
// hook lets the counting-codec test prove encode-once semantics without a
// second serialization path.
var encodeBodyHook func(msg any) // test seam; nil outside tests

func encodeBody(msg any) ([]byte, error) {
	if encodeBodyHook != nil {
		encodeBodyHook(msg)
	}
	return types.EncodeMessage(msg)
}

// Send implements Network. Messages to locally registered handlers are
// delivered directly; everything else is framed onto a cached connection.
// Non-protocol values and unroutable destinations are dropped (the
// asynchronous network model; protocols tolerate loss).
func (t *TCP) Send(from, to Addr, msg any) {
	t.SendAll(from, []Addr{to}, msg)
}

// SendAll implements Network with encode-once semantics: the message body
// is serialized at most once for the whole broadcast (lazily, so a fanout
// that resolves entirely to local handlers never touches the codec), and
// every remote destination's frame shares that body, stamped with its own
// header. Local destinations reuse the decoded value directly.
func (t *TCP) SendAll(from Addr, tos []Addr, msg any) {
	if len(tos) > 1 {
		t.mx.broadcasts.Inc()
		t.mx.fanout.Add(uint64(len(tos)))
	}
	var body []byte
	unencodable := false
	for _, to := range tos {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		if h := t.handlers[to]; h != nil {
			t.mu.Unlock()
			h.Deliver(from, msg)
			continue
		}
		conn := t.routeLocked(to)
		t.mu.Unlock()
		if conn == nil {
			continue // unknown, or fail-fast on a backed-off host:port
		}
		if body == nil {
			if unencodable {
				continue
			}
			var err error
			body, err = encodeBody(msg)
			if err != nil || 2*addrWireSize+len(body) > t.opts.MaxFrame {
				// Not a protocol message, or a frame the receiver would
				// kill the connection over (dropping every in-flight frame
				// with it): drop sender-side for all remote destinations.
				body, unencodable = nil, true
				continue
			}
		}
		if !conn.enqueue(makeFrame(from, to, body)) {
			t.evict(conn)
		}
	}
}

// routeLocked resolves to's outbound connection, starting a background
// dial when none exists. It returns nil for unknown destinations and for
// host:ports inside their dial-failure backoff window. Caller holds t.mu.
func (t *TCP) routeLocked(to Addr) *tcpConn {
	hostport := t.book[to]
	if hostport == "" {
		return t.reverse[to]
	}
	if c := t.conns[hostport]; c != nil {
		return c
	}
	if until, dead := t.down[hostport]; dead {
		if time.Now().Before(until) {
			t.mx.backoffDrops.Inc()
			return nil // fail-fast: recently unreachable
		}
		delete(t.down, hostport)
	}
	c := &tcpConn{
		hostport: hostport,
		out:      make(chan wireFrame, t.opts.Queue),
		closed:   make(chan struct{}),
		ready:    make(chan struct{}),
	}
	t.conns[hostport] = c
	t.live[c] = struct{}{}
	t.wg.Add(1)
	go t.dialLoop(c)
	return c
}

// dialLoop connects an outbound connection shell off the send path. On
// success it attaches the socket and starts the writer (draining frames
// queued during the dial) and reader; on failure it marks the host:port
// down for the backoff window and evicts the shell.
func (t *TCP) dialLoop(c *tcpConn) {
	defer t.wg.Done()
	t.mx.dials.Inc()
	raw, err := t.dialFn(c.hostport)
	if err != nil {
		t.mx.dialFails.Inc()
		t.mu.Lock()
		t.down[c.hostport] = time.Now().Add(t.opts.DialBackoff)
		t.mu.Unlock()
		t.evict(c)
		return
	}
	if !c.attach(raw) {
		raw.Close() // closed while dialing
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.evict(c)
		return
	}
	t.wg.Add(2)
	t.mu.Unlock()
	go t.writeLoop(c)
	go t.readLoop(c, false)
}

// addrWireSize is the encoded size of an Addr: role byte + shard + index.
const addrWireSize = 9

func putAddr(b []byte, a Addr) {
	b[0] = byte(a.Role)
	binary.BigEndian.PutUint32(b[1:5], uint32(a.Shard))
	binary.BigEndian.PutUint32(b[5:9], uint32(a.Index))
}

func decodeAddr(b []byte) (Addr, bool) {
	if len(b) < addrWireSize {
		return Addr{}, false
	}
	return Addr{
		Role:  Role(b[0]),
		Shard: int32(binary.BigEndian.Uint32(b[1:5])),
		Index: int32(binary.BigEndian.Uint32(b[5:9])),
	}, true
}

// Close implements Network.
func (t *TCP) Close() {
	t.mu.Lock()
	t.closed = true
	if t.ln != nil {
		t.ln.Close()
	}
	for c := range t.live {
		c.close()
	}
	t.conns = make(map[string]*tcpConn)
	t.reverse = make(map[Addr]*tcpConn)
	t.live = make(map[*tcpConn]struct{})
	t.mu.Unlock()
	t.wg.Wait()
}
