package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/types"
)

// TCP is a gob-over-TCP implementation of Network for real multi-process
// deployments: each process runs one TCP listener serving all the nodes it
// hosts, and an address book maps transport addresses to host:port pairs.
//
// Outbound connections are created lazily, cached, and serialized per
// destination. Failures drop messages (the asynchronous network model);
// protocols already tolerate loss.
type TCP struct {
	book map[Addr]string // transport addr -> host:port

	mu       sync.Mutex
	handlers map[Addr]Handler
	conns    map[string]*tcpConn
	// reverse maps a remote node's transport address to the inbound
	// connection its traffic arrives on, so replies reach nodes that are
	// not in the address book (clients behind ephemeral ports).
	reverse map[Addr]*tcpConn
	inbound []net.Conn
	ln      net.Listener
	closed  bool
	wg      sync.WaitGroup
}

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

// wireMsg is the on-the-wire envelope.
type wireMsg struct {
	From    Addr
	To      Addr
	Payload any
}

func init() {
	// Register every protocol message for gob. Names are stable across
	// binaries built from this module.
	gob.Register(&types.ReadRequest{})
	gob.Register(&types.ReadReply{})
	gob.Register(&types.AbortRead{})
	gob.Register(&types.ST1Request{})
	gob.Register(&types.ST1Reply{})
	gob.Register(&types.ST2Request{})
	gob.Register(&types.ST2Reply{})
	gob.Register(&types.WritebackRequest{})
	gob.Register(&types.InvokeFB{})
	gob.Register(&types.ElectFB{})
	gob.Register(&types.DecFB{})
}

// NewTCP creates a TCP network listening on listen (empty for client-only
// processes that host no replicas) with the given address book.
func NewTCP(listen string, book map[Addr]string) (*TCP, error) {
	t := &TCP{
		book:     book,
		handlers: make(map[Addr]Handler),
		conns:    make(map[string]*tcpConn),
		reverse:  make(map[Addr]*tcpConn),
	}
	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// ListenAddr returns the bound listen address (useful with ":0").
func (t *TCP) ListenAddr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// SetRoute adds or updates an address-book entry.
func (t *TCP) SetRoute(a Addr, hostport string) {
	t.mu.Lock()
	t.book[a] = hostport
	t.mu.Unlock()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.serveConn(c)
	}
}

func (t *TCP) serveConn(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.inbound = append(t.inbound, c)
	t.mu.Unlock()
	dec := gob.NewDecoder(c)
	back := &tcpConn{c: c, enc: gob.NewEncoder(c)}
	for {
		var m wireMsg
		if err := dec.Decode(&m); err != nil {
			return
		}
		t.mu.Lock()
		h := t.handlers[m.To]
		if _, known := t.book[m.From]; !known {
			t.reverse[m.From] = back
		}
		t.mu.Unlock()
		if h != nil {
			h.Deliver(m.From, m.Payload)
		}
	}
}

// Register implements Network. Unlike Local, delivery runs on the
// connection-reading goroutine; handlers are already required not to block
// indefinitely.
func (t *TCP) Register(addr Addr, h Handler) {
	t.mu.Lock()
	t.handlers[addr] = h
	t.mu.Unlock()
}

// Send implements Network. Messages to locally registered handlers are
// delivered directly; everything else is encoded onto a cached connection.
func (t *TCP) Send(from, to Addr, msg any) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if h := t.handlers[to]; h != nil {
		t.mu.Unlock()
		h.Deliver(from, msg)
		return
	}
	hostport := t.book[to]
	var conn *tcpConn
	if hostport == "" {
		conn = t.reverse[to]
	}
	t.mu.Unlock()
	if conn == nil {
		if hostport == "" {
			return // unknown destination: dropped
		}
		var err error
		conn, err = t.conn(hostport)
		if err != nil {
			return
		}
	}
	conn.mu.Lock()
	err := conn.enc.Encode(wireMsg{From: from, To: to, Payload: msg})
	conn.mu.Unlock()
	if err != nil && hostport != "" {
		t.dropConn(hostport, conn)
	}
}

func (t *TCP) conn(hostport string) (*tcpConn, error) {
	t.mu.Lock()
	if c := t.conns[hostport]; c != nil {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()
	raw, err := net.DialTimeout("tcp", hostport, 3*time.Second)
	if err != nil {
		return nil, err
	}
	c := &tcpConn{c: raw, enc: gob.NewEncoder(raw)}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		raw.Close()
		return nil, errors.New("transport: closed")
	}
	if prev := t.conns[hostport]; prev != nil {
		t.mu.Unlock()
		raw.Close()
		return prev, nil
	}
	t.conns[hostport] = c
	t.wg.Add(1)
	t.mu.Unlock()
	// Replies may come back on this same socket (reverse routing on the
	// peer); read them.
	go t.readOutbound(hostport, c)
	return c, nil
}

// readOutbound decodes messages arriving on a dialed connection and
// delivers them to local handlers.
func (t *TCP) readOutbound(hostport string, c *tcpConn) {
	defer t.wg.Done()
	dec := gob.NewDecoder(c.c)
	for {
		var m wireMsg
		if err := dec.Decode(&m); err != nil {
			t.dropConn(hostport, c)
			return
		}
		t.mu.Lock()
		h := t.handlers[m.To]
		t.mu.Unlock()
		if h != nil {
			h.Deliver(m.From, m.Payload)
		}
	}
}

func (t *TCP) dropConn(hostport string, c *tcpConn) {
	t.mu.Lock()
	if t.conns[hostport] == c {
		delete(t.conns, hostport)
	}
	t.mu.Unlock()
	c.c.Close()
}

// Close implements Network.
func (t *TCP) Close() {
	t.mu.Lock()
	t.closed = true
	if t.ln != nil {
		t.ln.Close()
	}
	for _, c := range t.conns {
		c.c.Close()
	}
	for _, c := range t.inbound {
		c.Close()
	}
	t.conns = make(map[string]*tcpConn)
	t.inbound = nil
	t.mu.Unlock()
	t.wg.Wait()
}
