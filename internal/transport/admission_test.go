package transport

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/types"
)

// counterTotal sums every labeled series of one counter family.
func counterTotal(reg *metrics.Registry, name string) uint64 {
	var total uint64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// flakyListener fails its first `fails` Accept calls with a transient
// error (the shape ECONNABORTED or EMFILE arrive in), then delegates.
type flakyListener struct {
	net.Listener
	fails int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if atomic.AddInt32(&l.fails, -1) >= 0 {
		return nil, &net.OpError{Op: "accept", Net: "tcp", Err: errors.New("connection aborted")}
	}
	return l.Listener.Accept()
}

// TestTCPAcceptLoopSurvivesTransientErrors is the regression test for the
// accept-loop kill bug: Accept returning a transient error (ECONNABORTED
// from a peer resetting mid-handshake, EMFILE under fd pressure) used to
// terminate acceptLoop outright, leaving the server running but
// permanently unable to accept connections. The loop must retry with
// backoff and still serve the next well-behaved client.
func TestTCPAcceptLoopSurvivesTransientErrors(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mreg := metrics.NewRegistry()
	book := map[Addr]string{}
	srv, err := NewTCPOpts("", book, TCPOptions{Metrics: mreg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Install the flaky listener by hand: the error injection sits between
	// the loop and the socket, exactly where the kernel would fail us.
	srv.ln = &flakyListener{Listener: inner, fails: 3}
	srv.wg.Add(1)
	go srv.acceptLoop()

	replicaAddr := ReplicaAddr(0, 0)
	book[replicaAddr] = inner.Addr().String()
	got := make(chan any, 1)
	srv.Register(replicaAddr, HandlerFunc(func(from Addr, msg any) { got <- msg }))

	cli, err := NewTCP("", book)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Send(ClientAddr(1), replicaAddr, &types.ReadRequest{ReqID: 1, Key: "k"})

	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("accept loop died on a transient Accept error: connection never served")
	}
	if n := counterTotal(mreg, "basil_net_accept_retries_total"); n != 3 {
		t.Fatalf("accept_retries = %d, want 3", n)
	}
}

// TestTCPMaxConnsRejectsExcess: with MaxConns=1, a second concurrent
// inbound connection is closed immediately (and counted), and closing the
// first returns the slot.
func TestTCPMaxConnsRejectsExcess(t *testing.T) {
	mreg := metrics.NewRegistry()
	srv, err := NewTCPOpts("127.0.0.1:0", map[Addr]string{}, TCPOptions{MaxConns: 1, Metrics: mreg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", srv.ListenAddr())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	isClosedByPeer := func(c net.Conn) bool {
		c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		_, err := c.Read(make([]byte, 1))
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return false // still open: the read just timed out
		}
		return err != nil
	}

	first := dial()
	defer first.Close()
	// Give the accept loop time to adopt the first connection before the
	// second arrives, so the slot is deterministically taken.
	time.Sleep(50 * time.Millisecond)
	second := dial()
	if !isClosedByPeer(second) {
		t.Fatal("second connection survived past MaxConns=1")
	}
	second.Close()
	if n := counterTotal(mreg, "basil_net_conns_rejected_total"); n == 0 {
		t.Fatal("rejected connection not counted")
	}

	// Returning the slot: close the first, and a new connection must stick.
	first.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		c := dial()
		if !isClosedByPeer(c) {
			c.Close()
			return
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("MaxConns slot never returned after the first connection closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPInflightCapDropsFrames: with MaxInflight set, frames beyond the
// global in-queue budget are shed and counted instead of growing queues.
// A never-completing dial keeps the queued frames pinned.
func TestTCPInflightCapDropsFrames(t *testing.T) {
	mreg := metrics.NewRegistry()
	dst := ReplicaAddr(0, 0)
	cli, err := NewTCPOpts("", map[Addr]string{dst: "127.0.0.1:1"},
		TCPOptions{MaxInflight: 2, Metrics: mreg})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	dialStarted := make(chan struct{})
	release := make(chan struct{})
	cli.dialFn = func(string) (net.Conn, error) {
		close(dialStarted)
		<-release
		return nil, errors.New("never")
	}
	defer close(release)

	src := ClientAddr(1)
	msg := &types.ReadRequest{ReqID: 1, Key: "k"}
	sent := cli.SendAll(src, []Addr{dst}, msg) // starts the dial, queues 1
	<-dialStarted
	for i := 0; i < 4; i++ {
		sent += cli.SendAll(src, []Addr{dst}, msg)
	}
	if sent != 2 {
		t.Fatalf("sent = %d, want 2 (MaxInflight)", sent)
	}
	if n := counterTotal(mreg, "basil_net_frames_dropped_overflow_total"); n != 3 {
		t.Fatalf("overflow drops = %d, want 3", n)
	}
}

// TestTCPPendingBytesCapDropsFrames: the per-connection byte budget sheds
// frames that would exceed it.
func TestTCPPendingBytesCapDropsFrames(t *testing.T) {
	mreg := metrics.NewRegistry()
	dst := ReplicaAddr(0, 0)
	cli, err := NewTCPOpts("", map[Addr]string{dst: "127.0.0.1:1"},
		TCPOptions{PendingBytes: 64, Metrics: mreg})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	dialStarted := make(chan struct{})
	release := make(chan struct{})
	cli.dialFn = func(string) (net.Conn, error) {
		close(dialStarted)
		<-release
		return nil, errors.New("never")
	}
	defer close(release)

	src := ClientAddr(1)
	msg := &types.ReadRequest{ReqID: 1, Key: "k"} // frame ≈ 22 + ~30 bytes
	if got := cli.SendAll(src, []Addr{dst}, msg); got != 1 {
		t.Fatalf("first send rejected: sent=%d", got)
	}
	<-dialStarted
	dropped := 0
	for i := 0; i < 5; i++ {
		if cli.SendAll(src, []Addr{dst}, msg) == 0 {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no frame shed by the 64-byte pending budget")
	}
	if n := counterTotal(mreg, "basil_net_frames_dropped_overflow_total"); n != uint64(dropped) {
		t.Fatalf("overflow drops = %d, want %d", n, dropped)
	}
}

// TestTCPDialingDropsPerPeerMetric: frames dropped because the outbound
// queue filled mid-dial are charged to the peer's own
// frames_dropped_dialing series, and SendAll's return value excludes them
// (the silent-partial-broadcast fix).
func TestTCPDialingDropsPerPeerMetric(t *testing.T) {
	mreg := metrics.NewRegistry()
	dst := ReplicaAddr(0, 0)
	const peer = "127.0.0.1:1"
	cli, err := NewTCPOpts("", map[Addr]string{dst: peer},
		TCPOptions{Queue: 1, Metrics: mreg})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	dialStarted := make(chan struct{})
	release := make(chan struct{})
	cli.dialFn = func(string) (net.Conn, error) {
		close(dialStarted)
		<-release
		return nil, errors.New("never")
	}
	defer close(release)

	src := ClientAddr(1)
	msg := &types.ReadRequest{ReqID: 1, Key: "k"}
	sent := cli.SendAll(src, []Addr{dst}, msg) // fills the 1-slot queue
	<-dialStarted
	for i := 0; i < 3; i++ {
		sent += cli.SendAll(src, []Addr{dst}, msg) // all drop: queue full, dial pending
	}
	if sent != 1 {
		t.Fatalf("sent = %d, want 1", sent)
	}
	var got uint64
	for _, c := range mreg.Snapshot().Counters {
		if c.Name == "basil_net_frames_dropped_dialing_total" {
			if c.Labels != `peer="`+peer+`"` {
				t.Fatalf("unexpected labels %q", c.Labels)
			}
			got = c.Value
		}
	}
	if got != 3 {
		t.Fatalf("frames_dropped_dialing{peer=%s} = %d, want 3", peer, got)
	}
}

// TestLocalBoundedReplicaMailbox: with SetReplicaQueueCap, a replica-role
// mailbox stops accepting past its cap (drops report as unsent), while
// client mailboxes stay unbounded.
func TestLocalBoundedReplicaMailbox(t *testing.T) {
	l := NewLocal()
	defer l.Close()
	l.SetReplicaQueueCap(4)

	gate := make(chan struct{})
	var delivered atomic.Int32
	replica := ReplicaAddr(0, 0)
	l.Register(replica, HandlerFunc(func(from Addr, msg any) {
		<-gate
		delivered.Add(1)
	}))

	accepted := 0
	for i := 0; i < 20; i++ {
		accepted += l.SendAll(ClientAddr(1), []Addr{replica}, i)
	}
	if accepted >= 20 {
		t.Fatalf("bounded mailbox accepted all %d sends", accepted)
	}
	// 1 in the blocked handler + at most cap queued (+1 for the pop/push race).
	if accepted > 6 {
		t.Fatalf("accepted %d sends, want <= 6 with cap 4", accepted)
	}
	close(gate)
	deadline := time.Now().Add(3 * time.Second)
	for int(delivered.Load()) < accepted {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d accepted", delivered.Load(), accepted)
		}
		time.Sleep(time.Millisecond)
	}

	// Clients registered under the same cap stay unbounded.
	cl := ClientAddr(9)
	stall := make(chan struct{})
	l.Register(cl, HandlerFunc(func(Addr, any) { <-stall }))
	defer close(stall)
	ok := 0
	for i := 0; i < 100; i++ {
		ok += l.SendAll(ClientAddr(1), []Addr{cl}, i)
	}
	if ok != 100 {
		t.Fatalf("client mailbox dropped: accepted %d/100", ok)
	}
}
