package transport

import (
	"testing"
	"time"

	"repro/internal/types"
)

func TestTCPDeliveryBetweenProcessesSimulated(t *testing.T) {
	// Two TCP networks model two processes sharing an address book.
	book := map[Addr]string{}
	a, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	replicaAddr := ReplicaAddr(0, 0)
	clientAddr := ClientAddr(1)
	book[replicaAddr] = a.ListenAddr()
	book[clientAddr] = b.ListenAddr()

	got := make(chan any, 1)
	a.Register(replicaAddr, HandlerFunc(func(from Addr, msg any) {
		// Echo back over TCP.
		a.Send(replicaAddr, clientAddr, msg)
	}))
	b.Register(clientAddr, HandlerFunc(func(from Addr, msg any) {
		got <- msg
	}))

	req := &types.ReadRequest{ReqID: 42, Key: "k", Ts: types.Timestamp{Time: 7, ClientID: 1}}
	b.Send(clientAddr, replicaAddr, req)

	select {
	case m := <-got:
		rr, ok := m.(*types.ReadRequest)
		if !ok || rr.ReqID != 42 || rr.Key != "k" || rr.Ts.Time != 7 {
			t.Fatalf("round trip mangled message: %#v", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no echo over TCP")
	}
}

func TestTCPLocalShortCircuit(t *testing.T) {
	n, err := NewTCP("", map[Addr]string{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	dst := ClientAddr(5)
	got := make(chan any, 1)
	n.Register(dst, HandlerFunc(func(from Addr, msg any) { got <- msg }))
	n.Send(ClientAddr(6), dst, "direct")
	select {
	case m := <-got:
		if m != "direct" {
			t.Fatalf("got %v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("local short-circuit failed")
	}
}

func TestTCPUnknownDestinationDropped(t *testing.T) {
	n, err := NewTCP("", map[Addr]string{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Send(ClientAddr(1), ClientAddr(99), "void") // must not panic
}
