package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

func TestTCPDeliveryBetweenProcessesSimulated(t *testing.T) {
	// Two TCP networks model two processes sharing an address book.
	book := map[Addr]string{}
	a, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	replicaAddr := ReplicaAddr(0, 0)
	clientAddr := ClientAddr(1)
	book[replicaAddr] = a.ListenAddr()
	book[clientAddr] = b.ListenAddr()

	got := make(chan any, 1)
	a.Register(replicaAddr, HandlerFunc(func(from Addr, msg any) {
		// Echo back over TCP.
		a.Send(replicaAddr, clientAddr, msg)
	}))
	b.Register(clientAddr, HandlerFunc(func(from Addr, msg any) {
		got <- msg
	}))

	req := &types.ReadRequest{ReqID: 42, Key: "k", Ts: types.Timestamp{Time: 7, ClientID: 1}}
	b.Send(clientAddr, replicaAddr, req)

	select {
	case m := <-got:
		rr, ok := m.(*types.ReadRequest)
		if !ok || rr.ReqID != 42 || rr.Key != "k" || rr.Ts.Time != 7 {
			t.Fatalf("round trip mangled message: %#v", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no echo over TCP")
	}
}

func TestTCPLocalShortCircuit(t *testing.T) {
	n, err := NewTCP("", map[Addr]string{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	dst := ClientAddr(5)
	got := make(chan any, 1)
	n.Register(dst, HandlerFunc(func(from Addr, msg any) { got <- msg }))
	n.Send(ClientAddr(6), dst, "direct")
	select {
	case m := <-got:
		if m != "direct" {
			t.Fatalf("got %v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("local short-circuit failed")
	}
}

func TestTCPUnknownDestinationDropped(t *testing.T) {
	n, err := NewTCP("", map[Addr]string{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Send(ClientAddr(1), ClientAddr(99), "void") // must not panic
}

// TestTCPClientReconnectEvictsReverseRoute is the regression test for the
// dead-reverse-route leak: when an inbound connection dies, the server
// must drop the reverse routes learned from it so a reconnecting client
// (new connection, same transport address) receives replies again instead
// of having them written to a dead socket forever.
func TestTCPClientReconnectEvictsReverseRoute(t *testing.T) {
	book := map[Addr]string{}
	srv, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	replicaAddr := ReplicaAddr(0, 0)
	clientAddr := ClientAddr(7) // never in the book: reachable only via reverse routes
	book[replicaAddr] = srv.ListenAddr()
	srv.Register(replicaAddr, HandlerFunc(func(from Addr, msg any) {
		srv.Send(replicaAddr, from, msg) // echo
	}))

	roundTrip := func(cli *TCP, reqID uint64) {
		t.Helper()
		got := make(chan uint64, 1)
		cli.Register(clientAddr, HandlerFunc(func(from Addr, msg any) {
			if rr, ok := msg.(*types.ReadRequest); ok {
				got <- rr.ReqID
			}
		}))
		cli.Send(clientAddr, replicaAddr, &types.ReadRequest{ReqID: reqID, Key: "k"})
		select {
		case id := <-got:
			if id != reqID {
				t.Fatalf("echo %d, want %d", id, reqID)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("no echo for request %d", reqID)
		}
	}

	cli1, err := NewTCP("", map[Addr]string{replicaAddr: srv.ListenAddr()})
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(cli1, 1)
	cli1.Close() // client goes away; server's reverse route is now dead

	// The server must evict the dead reverse route once the inbound
	// connection's read loop observes the close.
	deadline := time.Now().Add(3 * time.Second)
	for {
		srv.mu.Lock()
		_, stale := srv.reverse[clientAddr]
		srv.mu.Unlock()
		if !stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead reverse route never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Same transport address, brand-new connection: replies must arrive.
	cli2, err := NewTCP("", map[Addr]string{replicaAddr: srv.ListenAddr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	roundTrip(cli2, 2)
}

// TestTCPNonProtocolMessageDropped: only protocol messages can cross the
// wire; arbitrary values are dropped at encode time without killing the
// connection.
func TestTCPNonProtocolMessageDropped(t *testing.T) {
	book := map[Addr]string{}
	srv, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dst := ReplicaAddr(0, 0)
	book[dst] = srv.ListenAddr()
	got := make(chan any, 2)
	srv.Register(dst, HandlerFunc(func(from Addr, msg any) { got <- msg }))

	cli, err := NewTCP("", book)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Send(ClientAddr(1), dst, "not-a-protocol-message") // dropped
	cli.Send(ClientAddr(1), dst, &types.ReadRequest{ReqID: 9})
	select {
	case m := <-got:
		rr, ok := m.(*types.ReadRequest)
		if !ok || rr.ReqID != 9 {
			t.Fatalf("got %#v", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("protocol message after dropped value never arrived")
	}
}

// BenchmarkTCPTransport measures one-way message rate over a real loopback
// socket pair with the framed canonical codec — the number to compare
// against the previous gob wire format (see BenchmarkWireCodec in
// internal/types for the codec-only comparison).
func BenchmarkTCPTransport(b *testing.B) {
	book := map[Addr]string{}
	srv, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	dst := ReplicaAddr(0, 0)
	book[dst] = srv.ListenAddr()

	done := make(chan struct{})
	var got atomic.Int64
	want := int64(b.N) + 1 // +1 for the priming message
	srv.Register(dst, HandlerFunc(func(from Addr, msg any) {
		if got.Add(1) == want {
			close(done)
		}
	}))

	cli, err := NewTCP("", book)
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	src := ClientAddr(1)
	msg := &types.ST1Request{
		ReqID: 1, ClientID: 2,
		Meta: &types.TxMeta{
			Timestamp: types.Timestamp{Time: 77, ClientID: 2},
			ReadSet:   []types.ReadEntry{{Key: "alpha", Version: types.Timestamp{Time: 3}}},
			WriteSet:  []types.WriteEntry{{Key: "beta", Value: make([]byte, 128)}},
			Shards:    []int32{0},
		},
	}

	// Prime the connection: frames bursting onto a still-dialing
	// connection drop once its queue fills (fail-fast by design); the
	// benchmark measures the steady state.
	cli.Send(src, dst, msg)
	for waited := 0; got.Load() == 0; waited++ {
		if waited > 10_000 {
			b.Fatal("priming message never arrived")
		}
		time.Sleep(time.Millisecond)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cli.Send(src, dst, msg)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		b.Fatalf("received %d/%d messages", got.Load(), want)
	}
	b.StopTimer()
}
