package transport

import (
	"sync"
	"time"
)

// LinkPolicy lets tests and the fault harness shape the network: it is
// consulted on every send and may drop the message or delay its delivery.
// A nil policy delivers everything immediately.
type LinkPolicy func(from, to Addr, msg any) (delay time.Duration, drop bool)

// Local is an in-process network. Each registered node gets an unbounded
// mailbox drained by one dispatch goroutine, so a node processes messages
// sequentially while different nodes run in parallel.
type Local struct {
	// mu guards the node table, link policy, and closed flag; mailbox
	// delivery takes it for read only.
	mu     sync.RWMutex
	nodes  map[Addr]*localNode
	policy LinkPolicy
	// replicaCap bounds the mailbox of replica-role nodes registered after
	// it is set (0 = unbounded, the default). Client mailboxes stay
	// unbounded: a client only ever receives replies to requests it has in
	// flight, which the client itself bounds.
	replicaCap int
	closed     bool
	wg         sync.WaitGroup
}

type localNode struct {
	box *mailbox
	h   Handler
}

// NewLocal creates an empty local network.
func NewLocal() *Local {
	return &Local{nodes: make(map[Addr]*localNode)}
}

// SetPolicy installs a link policy. Safe to call while traffic flows.
func (l *Local) SetPolicy(p LinkPolicy) {
	l.mu.Lock()
	l.policy = p
	l.mu.Unlock()
}

// SetReplicaQueueCap bounds the mailbox of replica nodes registered from
// now on: pushes beyond cap envelopes are dropped instead of growing the
// queue, mirroring the TCP transport's bounded intake. 0 restores the
// unbounded default for subsequent registrations.
func (l *Local) SetReplicaQueueCap(cap int) {
	l.mu.Lock()
	l.replicaCap = cap
	l.mu.Unlock()
}

// Register implements Network. Re-registering an address replaces the
// previous node (a restarted replica takes over its own address); the
// old node's mailbox is closed so its dispatcher exits and messages
// still queued for the dead incarnation are dropped, exactly as a real
// network drops packets to a crashed process.
func (l *Local) Register(addr Addr, h Handler) {
	l.mu.Lock()
	cap := 0
	if addr.Role == RoleReplica {
		cap = l.replicaCap
	}
	n := &localNode{box: newBoundedMailbox(cap), h: h}
	if l.closed {
		l.mu.Unlock()
		return
	}
	old := l.nodes[addr]
	l.nodes[addr] = n
	l.mu.Unlock()
	if old != nil {
		old.box.close()
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			e, ok := n.box.pop()
			if !ok {
				return
			}
			n.h.Deliver(e.from, e.msg)
		}
	}()
}

// Send implements Network.
func (l *Local) Send(from, to Addr, msg any) {
	l.send(from, to, msg)
}

// send is Send reporting whether the message was queued (or scheduled for
// delayed delivery; a delayed push that later finds the mailbox full is
// indistinguishable from a link drop).
func (l *Local) send(from, to Addr, msg any) bool {
	l.mu.RLock()
	node := l.nodes[to]
	policy := l.policy
	closed := l.closed
	l.mu.RUnlock()
	if node == nil || closed {
		return false
	}
	if policy != nil {
		delay, drop := policy(from, to, msg)
		if drop {
			return false
		}
		if delay > 0 {
			time.AfterFunc(delay, func() { node.box.push(envelope{from: from, msg: msg}) })
			return true
		}
	}
	return node.box.push(envelope{from: from, msg: msg})
}

// SendAll implements Network. In-process delivery has no serialization to
// share, so a broadcast is exactly a Send per destination: the installed
// LinkPolicy is consulted for every (from, to) pair individually, keeping
// fault injection (per-link drops, delays, partitions) byte-identical
// between a broadcast and a loop of unicasts.
func (l *Local) SendAll(from Addr, tos []Addr, msg any) int {
	sent := 0
	for _, to := range tos {
		if l.send(from, to, msg) {
			sent++
		}
	}
	return sent
}

// Close implements Network. It stops all dispatchers and waits for them.
func (l *Local) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	nodes := make([]*localNode, 0, len(l.nodes))
	for _, n := range l.nodes {
		nodes = append(nodes, n)
	}
	l.mu.Unlock()
	for _, n := range nodes {
		n.box.close()
	}
	l.wg.Wait()
}
