package transport

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

// TestTCPSendAllEncodesBodyOnce is the encode-once regression test: a
// broadcast over the TCP transport must serialize the message body exactly
// once no matter how many destinations it fans out to, and a fanout that
// resolves entirely to local handlers must not touch the codec at all.
func TestTCPSendAllEncodesBodyOnce(t *testing.T) {
	book := map[Addr]string{}
	srv, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const fan = 3
	got := newCollector()
	tos := make([]Addr, fan)
	for i := range tos {
		tos[i] = ReplicaAddr(0, int32(i))
		book[tos[i]] = srv.ListenAddr()
		srv.Register(tos[i], got)
	}

	cli, err := NewTCP("", book)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var encodes atomic.Int32
	encodeBodyHook = func(any) { encodes.Add(1) }
	defer func() { encodeBodyHook = nil }()

	cli.SendAll(ClientAddr(9), tos, &types.ReadRequest{ReqID: 7, Key: "k"})
	got.wait(fan, t)
	if n := encodes.Load(); n != 1 {
		t.Fatalf("broadcast to %d destinations encoded the body %d times, want 1", fan, n)
	}

	// A second broadcast is a fresh encode (no stale cache).
	cli.SendAll(ClientAddr(9), tos, &types.ReadRequest{ReqID: 8, Key: "k"})
	got.wait(fan, t)
	if n := encodes.Load(); n != 2 {
		t.Fatalf("second broadcast: %d total encodes, want 2", n)
	}

	// Local-only fanout short-circuits past the codec entirely.
	local := ClientAddr(33)
	lc := newCollector()
	cli.Register(local, lc)
	cli.SendAll(ClientAddr(9), []Addr{local}, &types.ReadRequest{ReqID: 9, Key: "k"})
	lc.wait(1, t)
	if n := encodes.Load(); n != 2 {
		t.Fatalf("local-only fanout encoded the body (total %d, want 2)", n)
	}
}

// TestTCPSendAllDeadPeerDoesNotDelayLivePeers: dialing happens off the
// send path, so a broadcast including an unreachable replica returns
// immediately and live replicas get their frames while the dead peer's
// dial is still failing; after the failure the host:port is backed off and
// further sends drop without re-dialing.
func TestTCPSendAllDeadPeerDoesNotDelayLivePeers(t *testing.T) {
	book := map[Addr]string{}
	srv, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	live := ReplicaAddr(0, 0)
	dead := ReplicaAddr(0, 1)
	deadHostport := "203.0.113.1:9" // TEST-NET-3: never actually dialed
	book[live] = srv.ListenAddr()
	book[dead] = deadHostport
	got := newCollector()
	srv.Register(live, got)

	cli, err := NewTCP("", book)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const dialDelay = 300 * time.Millisecond
	var deadDials atomic.Int32
	realDial := cli.dialFn
	cli.dialFn = func(hostport string) (net.Conn, error) {
		if hostport == deadHostport {
			deadDials.Add(1)
			time.Sleep(dialDelay) // a slow, ultimately failing dial
			return nil, errors.New("unreachable")
		}
		return realDial(hostport)
	}

	msg := &types.ReadRequest{ReqID: 1, Key: "k"}
	start := time.Now()
	// Dead peer listed first: its frame is queued before the live peer's.
	cli.SendAll(ClientAddr(1), []Addr{dead, live}, msg)
	if d := time.Since(start); d >= dialDelay {
		t.Fatalf("SendAll blocked %v on a dead peer's dial", d)
	}
	got.wait(1, t)
	if d := time.Since(start); d >= dialDelay {
		t.Fatalf("live peer delivery took %v, delayed behind the dead peer's dial", d)
	}

	// Let the failing dial conclude, then verify fail-fast: sends inside
	// the backoff window must not trigger another dial.
	time.Sleep(dialDelay + 100*time.Millisecond)
	if n := deadDials.Load(); n != 1 {
		t.Fatalf("dead peer dialed %d times, want 1", n)
	}
	cli.Send(ClientAddr(1), dead, msg)
	cli.Send(ClientAddr(1), dead, msg)
	time.Sleep(20 * time.Millisecond)
	if n := deadDials.Load(); n != 1 {
		t.Fatalf("sends during backoff re-dialed the dead peer (%d dials, want 1)", n)
	}
}

// TestTCPSendFullQueueDuringDialDoesNotBlock: once a dialing shell's
// outbound queue fills, further sends to it must drop rather than block —
// otherwise a dead peer under sustained broadcast load would still stall
// senders for the remainder of the dial timeout.
func TestTCPSendFullQueueDuringDialDoesNotBlock(t *testing.T) {
	cli, err := NewTCPOpts("", map[Addr]string{
		ReplicaAddr(0, 0): "203.0.113.1:9",
	}, TCPOptions{Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const dialDelay = 300 * time.Millisecond
	cli.dialFn = func(string) (net.Conn, error) {
		time.Sleep(dialDelay)
		return nil, errors.New("unreachable")
	}

	start := time.Now()
	for i := 0; i < 50; i++ { // 50 frames >> queue of 4
		cli.Send(ClientAddr(1), ReplicaAddr(0, 0), &types.ReadRequest{ReqID: uint64(i)})
	}
	if d := time.Since(start); d >= dialDelay {
		t.Fatalf("sends beyond the dialing queue blocked for %v", d)
	}
}

// TestTCPSendAllFramesQueuedDuringDial: frames sent while the background
// dial is still in flight must be delivered once it completes, in order.
func TestTCPSendAllFramesQueuedDuringDial(t *testing.T) {
	book := map[Addr]string{}
	srv, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dst := ReplicaAddr(0, 0)
	book[dst] = srv.ListenAddr()
	got := newCollector()
	srv.Register(dst, got)

	cli, err := NewTCP("", book)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	realDial := cli.dialFn
	cli.dialFn = func(hostport string) (net.Conn, error) {
		time.Sleep(50 * time.Millisecond) // slow but successful dial
		return realDial(hostport)
	}

	const n = 20
	for i := 0; i < n; i++ {
		cli.Send(ClientAddr(1), dst, &types.ReadRequest{ReqID: uint64(i)})
	}
	got.wait(n, t)
	got.mu.Lock()
	defer got.mu.Unlock()
	for i := 0; i < n; i++ {
		rr, ok := got.msgs[i].(*types.ReadRequest)
		if !ok || rr.ReqID != uint64(i) {
			t.Fatalf("message %d mangled or out of order: %#v", i, got.msgs[i])
		}
	}
}

// TestLocalSendAllPolicyPerLink: the Local broadcast consults the link
// policy once per (from, to) pair, so per-link fault injection cannot be
// bypassed by broadcasting.
func TestLocalSendAllPolicyPerLink(t *testing.T) {
	l := NewLocal()
	defer l.Close()

	tos := make([]Addr, 3)
	sinks := make([]*collector, 3)
	for i := range tos {
		tos[i] = ReplicaAddr(0, int32(i))
		sinks[i] = newCollector()
		l.Register(tos[i], sinks[i])
	}

	var mu sync.Mutex
	seen := make(map[Addr]int)
	blocked := tos[1]
	l.SetPolicy(func(from, to Addr, msg any) (time.Duration, bool) {
		mu.Lock()
		seen[to]++
		mu.Unlock()
		return 0, to == blocked
	})

	src := ClientAddr(5)
	l.SendAll(src, tos, "bcast")
	sinks[0].wait(1, t)
	sinks[2].wait(1, t)

	mu.Lock()
	defer mu.Unlock()
	for _, to := range tos {
		if seen[to] != 1 {
			t.Fatalf("policy saw link ->%v %d times, want 1", to, seen[to])
		}
	}
	select {
	case <-sinks[1].ch:
		t.Fatal("policy-dropped destination still delivered")
	case <-time.After(20 * time.Millisecond):
	}
}

// broadcastMsg is a representative ST1 fanout payload: metadata with a
// read set, a 128-byte write and one shard — what every replica of a
// shard receives in the Prepare phase.
func broadcastMsg() *types.ST1Request {
	return &types.ST1Request{
		ReqID: 1, ClientID: 2,
		Meta: &types.TxMeta{
			Timestamp: types.Timestamp{Time: 77, ClientID: 2},
			ReadSet:   []types.ReadEntry{{Key: "alpha", Version: types.Timestamp{Time: 3}}},
			WriteSet:  []types.WriteEntry{{Key: "beta", Value: make([]byte, 128)}},
			Shards:    []int32{0},
		},
	}
}

// BenchmarkTCPBroadcast compares fanning one message out to a full shard
// (n = 6, i.e. f = 1) with a Send per destination — one body encode per
// replica — against SendAll's encode-once path. The delta is the
// serialization CPU the old broadcast loops burned on every ST1, ST2,
// writeback and abort.
func BenchmarkTCPBroadcast(b *testing.B) {
	const fan = 6
	for _, mode := range []string{"send-per-dest", "sendall"} {
		b.Run(mode, func(b *testing.B) {
			book := map[Addr]string{}
			srv, err := NewTCP("127.0.0.1:0", book)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()

			var got atomic.Int64
			want := int64(b.N)*fan + 1 // +1 for the priming message
			done := make(chan struct{})
			tos := make([]Addr, fan)
			for i := range tos {
				tos[i] = ReplicaAddr(0, int32(i))
				book[tos[i]] = srv.ListenAddr()
				srv.Register(tos[i], HandlerFunc(func(Addr, any) {
					if got.Add(1) == want {
						close(done)
					}
				}))
			}
			cli, err := NewTCP("", book)
			if err != nil {
				b.Fatal(err)
			}
			defer cli.Close()

			src := ClientAddr(1)
			msg := broadcastMsg()
			// Prime the connection: frames bursting onto a still-dialing
			// connection drop once its queue fills (fail-fast by design);
			// the benchmark measures the steady state.
			cli.Send(src, tos[0], msg)
			for waited := 0; got.Load() == 0; waited++ {
				if waited > 10_000 {
					b.Fatal("priming message never arrived")
				}
				time.Sleep(time.Millisecond)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "sendall" {
					cli.SendAll(src, tos, msg)
				} else {
					for _, to := range tos {
						cli.Send(src, to, msg)
					}
				}
			}
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				b.Fatalf("received %d/%d messages", got.Load(), want)
			}
			b.StopTimer()
		})
	}
}
