// Package transport routes protocol messages between nodes.
//
// Two implementations are provided: an in-process Local network (channels,
// with injectable per-link latency, drops and partitions) used by tests,
// examples and the benchmark harness, and a TCP network for real
// multi-process deployments that frames the canonical binary codec of
// internal/types onto buffered connections (see tcp.go for the wire
// format). Both deliver messages to a node's Handler in
// FIFO order per sender with no cross-sender ordering guarantee, matching
// an asynchronous network.
package transport

import (
	"fmt"
	"sync"
)

// Role distinguishes replica and client endpoints.
type Role uint8

// Endpoint roles.
const (
	RoleReplica Role = iota
	RoleClient
)

// Addr names a node. Replicas are (RoleReplica, shard, index); clients are
// (RoleClient, 0, clientID).
type Addr struct {
	Role  Role
	Shard int32
	Index int32
}

// ReplicaAddr builds a replica address.
func ReplicaAddr(shard, index int32) Addr {
	return Addr{Role: RoleReplica, Shard: shard, Index: index}
}

// ClientAddr builds a client address.
func ClientAddr(id int32) Addr { return Addr{Role: RoleClient, Index: id} }

// ShardAddrs enumerates the n replica addresses of shard s — the tos
// slice for a whole-shard SendAll. Network implementations do not retain
// tos, so callers with static membership may cache the result.
func ShardAddrs(s int32, n int) []Addr {
	tos := make([]Addr, n)
	for i := range tos {
		tos[i] = ReplicaAddr(s, int32(i))
	}
	return tos
}

func (a Addr) String() string {
	if a.Role == RoleReplica {
		return fmt.Sprintf("r%d.%d", a.Shard, a.Index)
	}
	return fmt.Sprintf("c%d", a.Index)
}

// Handler consumes delivered messages. Deliver is invoked on the node's
// single dispatch goroutine; implementations must not block indefinitely.
type Handler interface {
	Deliver(from Addr, msg any)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(from Addr, msg any)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(from Addr, msg any) { f(from, msg) }

// Network connects nodes.
type Network interface {
	// Register attaches a handler for addr and starts its dispatcher.
	Register(addr Addr, h Handler)
	// Send enqueues msg for delivery from -> to. Sends to unknown
	// addresses are dropped (an asynchronous network may always lose
	// messages; protocols must tolerate it).
	Send(from, to Addr, msg any)
	// SendAll enqueues msg for delivery from -> each address in tos; it is
	// the broadcast primitive every protocol fanout should use. Semantics
	// are identical to calling Send once per destination — unknown
	// addresses are dropped, per-link fault policies still see every
	// (from, to) pair — but implementations may (and the TCP transport
	// does) serialize the message body exactly once for the whole
	// broadcast, stamping only the per-destination frame header.
	// It returns the number of destinations the message was actually
	// handed to (delivered locally or queued for the wire): a sender that
	// fans out to a quorum can see a partial broadcast — frames dropped
	// while a dial is pending, bounded queues at capacity — instead of
	// silently waiting out a timeout that can never be met.
	// Implementations must not retain tos.
	SendAll(from Addr, tos []Addr, msg any) int
	// Close stops all dispatchers.
	Close()
}

// mailbox is a FIFO queue feeding one dispatch goroutine. With cap == 0 it
// is unbounded: unbounded queues avoid send/receive deadlocks between nodes
// that message each other symmetrically, and protocol-level quorum waiting
// bounds growth for honest traffic. A positive cap bounds the queue and
// push drops (and reports) the overflow instead — the shape replica-bound
// traffic wants, where a Byzantine client spamming signed requests must
// hit a wall here rather than grow the heap.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []envelope
	cap    int // 0 = unbounded
	closed bool
}

type envelope struct {
	from Addr
	msg  any
}

func newMailbox() *mailbox { return newBoundedMailbox(0) }

// newBoundedMailbox returns a mailbox that holds at most cap envelopes
// (0 = unbounded).
func newBoundedMailbox(cap int) *mailbox {
	m := &mailbox{cap: cap}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push appends e unless the mailbox is closed or full; it reports whether
// the envelope was accepted.
func (m *mailbox) push(e envelope) bool {
	m.mu.Lock()
	if m.closed || (m.cap > 0 && len(m.queue) >= m.cap) {
		m.mu.Unlock()
		return false
	}
	m.queue = append(m.queue, e)
	m.cond.Signal()
	m.mu.Unlock()
	return true
}

// pop blocks until a message is available or the mailbox closes.
func (m *mailbox) pop() (envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return envelope{}, false
	}
	e := m.queue[0]
	m.queue = m.queue[1:]
	return e, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
