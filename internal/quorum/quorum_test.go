package quorum

import (
	"testing"
	"testing/quick"

	"repro/internal/cryptoutil"
	"repro/internal/types"
)

func TestQuorumArithmetic(t *testing.T) {
	for f := 1; f <= 4; f++ {
		c := Config{F: f}
		if c.N() != 5*f+1 {
			t.Fatalf("f=%d N=%d", f, c.N())
		}
		if c.CommitQuorum() != 3*f+1 || c.AbortQuorum() != f+1 {
			t.Fatalf("f=%d CQ/AQ wrong", f)
		}
		if c.FastCommit() != 5*f+1 || c.FastAbort() != 3*f+1 {
			t.Fatalf("f=%d fast thresholds wrong", f)
		}
		if c.LogQuorum() != c.N()-f {
			t.Fatalf("f=%d log quorum != n-f", f)
		}
		// §4.2 case 1: two commit quorums overlap in at least f+1
		// replicas, i.e. at least one correct replica, which enforces
		// isolation between conflicting transactions.
		if 2*c.CommitQuorum()-c.N() < f+1 {
			t.Fatalf("f=%d CQ overlap lacks a guaranteed correct replica", f)
		}
		// §5: any 4f+1 ELECT-FB messages contain a majority of any
		// decision logged by n-f replicas: (n-f) - f ballots from correct
		// loggers must exceed half of 4f+1.
		if 2*(c.LogQuorum()-f) <= c.ElectQuorum() {
			t.Fatalf("f=%d logged decision not majority in election", f)
		}
	}
}

func TestWhy5fPlus1(t *testing.T) {
	// §4.5's impossibility: with n ≤ 5f, a fast path (CQ visible after f
	// async + f equivocation still ≥ 3f+1 overlap-safe quorum) and
	// Byzantine independence (both CQ and AQ reachable with f silent
	// replicas while neither dips below f+1) cannot coexist. Check that
	// the arithmetic that holds at n = 5f+1 fails at n = 5f.
	f := 1
	n := 5 * f // hypothetical smaller factor
	fastCommit := n
	// After asynchrony (f missing) and equivocation (f flipped), a later
	// client may observe fastCommit - 2f matching votes; safety demands
	// that still be ≥ the commit quorum 3f+1.
	if fastCommit-2*f >= 3*f+1 {
		t.Fatal("n=5f should NOT support the fast path, but arithmetic says it does")
	}
	// And at n = 5f+1 it does hold.
	n = 5*f + 1
	if n-2*f < 3*f+1 {
		t.Fatal("n=5f+1 must support the fast path")
	}
}

func TestClassify(t *testing.T) {
	c := Config{F: 1} // n=6, CQ=4, AQ=2, fastC=6, fastA=4
	cases := []struct {
		commits, aborts int
		conflict        bool
		want            ShardOutcome
	}{
		{0, 0, false, OutcomePending},
		{3, 0, false, OutcomePending},
		{4, 0, false, OutcomeCommitSlow},
		{5, 1, false, OutcomeCommitSlow},
		{6, 0, false, OutcomeCommitFast},
		{0, 2, false, OutcomeAbortSlow},
		{0, 4, false, OutcomeAbortFast},
		{2, 4, false, OutcomeAbortFast},
		{0, 1, true, OutcomeAbortFast},
		{4, 2, false, OutcomeCommitSlow}, // both quorums: classified commit, equivocation material
	}
	for _, tc := range cases {
		if got := c.Classify(tc.commits, tc.aborts, tc.conflict); got != tc.want {
			t.Errorf("Classify(%d,%d,%v) = %v, want %v", tc.commits, tc.aborts, tc.conflict, got, tc.want)
		}
	}
}

func TestFastStillPossible(t *testing.T) {
	c := Config{F: 1}
	if !c.FastStillPossible(4, 0) { // 2 missing could complete 6 commits
		t.Fatal("4C/0A should still allow fast commit")
	}
	if c.FastStillPossible(4, 1) { // 1 missing: max 5 commits < 6; max 2 aborts < 4
		t.Fatal("4C/1A cannot reach any fast outcome")
	}
	if !c.FastStillPossible(0, 3) {
		t.Fatal("0C/3A should still allow fast abort")
	}
}

func TestClassifyNeverRegressesProperty(t *testing.T) {
	// Adding votes must never move a fast outcome back to pending.
	c := Config{F: 1}
	f := func(commits, aborts uint8) bool {
		cm, ab := int(commits%7), int(aborts%7)
		if cm+ab > c.N() {
			return true
		}
		o := c.Classify(cm, ab, false)
		if o == OutcomeCommitFast || o == OutcomeAbortFast {
			o2 := c.Classify(cm, ab+0, false)
			return o2 == o
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- certificate validation against real signatures ---

type certEnv struct {
	cfg Config
	reg *cryptoutil.Registry
	v   *Verifier
}

func newCertEnv(f int) *certEnv {
	cfg := Config{F: f}
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, cfg.N(), 5)
	v := &Verifier{
		Cfg:      cfg,
		Sigs:     cryptoutil.NewSigVerifier(reg, 128),
		SignerOf: func(shard, replica int32) int32 { return replica },
	}
	return &certEnv{cfg: cfg, reg: reg, v: v}
}

func (e *certEnv) st1r(id types.TxID, replica int32, vote types.Vote) types.ST1Reply {
	r := types.ST1Reply{TxID: id, ShardID: 0, ReplicaID: replica, Vote: vote}
	r.Sig = types.Signature{SignerID: replica, Direct: e.reg.Signer(replica).Sign(r.Payload())}
	return r
}

func (e *certEnv) st2r(id types.TxID, replica int32, dec types.Decision, viewDec uint64) types.ST2Reply {
	r := types.ST2Reply{TxID: id, ShardID: 0, ReplicaID: replica, Decision: dec, ViewDecision: viewDec}
	r.Sig = types.Signature{SignerID: replica, Direct: e.reg.Signer(replica).Sign(r.Payload())}
	return r
}

func testMeta() *types.TxMeta {
	return &types.TxMeta{
		Timestamp: types.Timestamp{Time: 9, ClientID: 1},
		WriteSet:  []types.WriteEntry{{Key: "k", Value: []byte("v")}},
		Shards:    []int32{0},
	}
}

func TestFastCommitCertValidates(t *testing.T) {
	e := newCertEnv(1)
	meta := testMeta()
	id := meta.ID()
	sc := types.ShardCert{ShardID: 0, Kind: types.CertST1Fast, Vote: types.VoteCommit}
	for i := int32(0); i < int32(e.cfg.N()); i++ {
		sc.ST1Rs = append(sc.ST1Rs, e.st1r(id, i, types.VoteCommit))
	}
	cert := &types.DecisionCert{TxID: id, Decision: types.DecisionCommit, Shards: []types.ShardCert{sc}}
	if err := e.v.VerifyDecisionCert(cert, meta); err != nil {
		t.Fatalf("valid fast C-CERT rejected: %v", err)
	}
}

func TestFastCommitCertRejectsShortQuorum(t *testing.T) {
	e := newCertEnv(1)
	meta := testMeta()
	id := meta.ID()
	sc := types.ShardCert{ShardID: 0, Kind: types.CertST1Fast, Vote: types.VoteCommit}
	for i := int32(0); i < int32(e.cfg.N()-1); i++ { // one vote short
		sc.ST1Rs = append(sc.ST1Rs, e.st1r(id, i, types.VoteCommit))
	}
	cert := &types.DecisionCert{TxID: id, Decision: types.DecisionCommit, Shards: []types.ShardCert{sc}}
	if err := e.v.VerifyDecisionCert(cert, meta); err == nil {
		t.Fatal("5f C-CERT accepted")
	}
}

func TestCertRejectsDuplicateReplicas(t *testing.T) {
	e := newCertEnv(1)
	meta := testMeta()
	id := meta.ID()
	sc := types.ShardCert{ShardID: 0, Kind: types.CertST1Fast, Vote: types.VoteCommit}
	one := e.st1r(id, 0, types.VoteCommit)
	for i := 0; i < e.cfg.N(); i++ {
		sc.ST1Rs = append(sc.ST1Rs, one) // the same replica six times
	}
	cert := &types.DecisionCert{TxID: id, Decision: types.DecisionCommit, Shards: []types.ShardCert{sc}}
	if err := e.v.VerifyDecisionCert(cert, meta); err == nil {
		t.Fatal("duplicate-replica cert accepted")
	}
}

func TestCertRejectsForgedSignature(t *testing.T) {
	e := newCertEnv(1)
	meta := testMeta()
	id := meta.ID()
	sc := types.ShardCert{ShardID: 0, Kind: types.CertST1Fast, Vote: types.VoteCommit}
	for i := int32(0); i < int32(e.cfg.N()); i++ {
		r := e.st1r(id, i, types.VoteCommit)
		if i == 3 {
			r.Sig.Direct[0] ^= 1
		}
		sc.ST1Rs = append(sc.ST1Rs, r)
	}
	cert := &types.DecisionCert{TxID: id, Decision: types.DecisionCommit, Shards: []types.ShardCert{sc}}
	if err := e.v.VerifyDecisionCert(cert, meta); err == nil {
		t.Fatal("forged signature accepted")
	}
}

func TestCertRejectsVoteFlip(t *testing.T) {
	e := newCertEnv(1)
	meta := testMeta()
	id := meta.ID()
	// Signatures are over abort votes, but the cert claims commit.
	sc := types.ShardCert{ShardID: 0, Kind: types.CertST1Fast, Vote: types.VoteCommit}
	for i := int32(0); i < int32(e.cfg.N()); i++ {
		r := e.st1r(id, i, types.VoteAbort)
		r.Vote = types.VoteCommit // flip the field after signing
		sc.ST1Rs = append(sc.ST1Rs, r)
	}
	cert := &types.DecisionCert{TxID: id, Decision: types.DecisionCommit, Shards: []types.ShardCert{sc}}
	if err := e.v.VerifyDecisionCert(cert, meta); err == nil {
		t.Fatal("vote-flipped cert accepted (payload must cover the vote)")
	}
}

func TestSlowPathCertValidates(t *testing.T) {
	e := newCertEnv(1)
	meta := testMeta()
	id := meta.ID()
	sc := types.ShardCert{ShardID: meta.LogShard(), Kind: types.CertST2Logged, Vote: types.VoteCommit}
	for i := int32(0); i < int32(e.cfg.LogQuorum()); i++ {
		sc.ST2Rs = append(sc.ST2Rs, e.st2r(id, i, types.DecisionCommit, 0))
	}
	cert := &types.DecisionCert{TxID: id, Decision: types.DecisionCommit, Shards: []types.ShardCert{sc}}
	if err := e.v.VerifyDecisionCert(cert, meta); err != nil {
		t.Fatalf("valid slow C-CERT rejected: %v", err)
	}
}

func TestSlowPathCertRejectsMixedViews(t *testing.T) {
	e := newCertEnv(1)
	meta := testMeta()
	id := meta.ID()
	sc := types.ShardCert{ShardID: meta.LogShard(), Kind: types.CertST2Logged, Vote: types.VoteCommit}
	for i := int32(0); i < int32(e.cfg.LogQuorum()); i++ {
		view := uint64(0)
		if i == 2 {
			view = 1
		}
		sc.ST2Rs = append(sc.ST2Rs, e.st2r(id, i, types.DecisionCommit, view))
	}
	cert := &types.DecisionCert{TxID: id, Decision: types.DecisionCommit, Shards: []types.ShardCert{sc}}
	if err := e.v.VerifyDecisionCert(cert, meta); err == nil {
		t.Fatal("mixed-view slow cert accepted")
	}
}

func TestFastAbortCertValidates(t *testing.T) {
	e := newCertEnv(1)
	meta := testMeta()
	id := meta.ID()
	sc := types.ShardCert{ShardID: 0, Kind: types.CertST1Fast, Vote: types.VoteAbort}
	for i := int32(0); i < int32(e.cfg.FastAbort()); i++ {
		sc.ST1Rs = append(sc.ST1Rs, e.st1r(id, i, types.VoteAbort))
	}
	cert := &types.DecisionCert{TxID: id, Decision: types.DecisionAbort, Shards: []types.ShardCert{sc}}
	if err := e.v.VerifyDecisionCert(cert, meta); err != nil {
		t.Fatalf("valid fast A-CERT rejected: %v", err)
	}
}

func TestConflictCertValidates(t *testing.T) {
	e := newCertEnv(1)
	// The committed conflicting transaction T'.
	confMeta := testMeta()
	confID := confMeta.ID()
	confSC := types.ShardCert{ShardID: 0, Kind: types.CertST1Fast, Vote: types.VoteCommit}
	for i := int32(0); i < int32(e.cfg.N()); i++ {
		confSC.ST1Rs = append(confSC.ST1Rs, e.st1r(confID, i, types.VoteCommit))
	}
	confCert := &types.DecisionCert{TxID: confID, Decision: types.DecisionCommit, Shards: []types.ShardCert{confSC}}

	// The aborted transaction T, with one abort vote plus T''s C-CERT.
	meta := testMeta()
	meta.Timestamp = types.Timestamp{Time: 20, ClientID: 3}
	id := meta.ID()
	sc := types.ShardCert{
		ShardID: 0, Kind: types.CertConflict, Vote: types.VoteAbort,
		ST1Rs:    []types.ST1Reply{e.st1r(id, 2, types.VoteAbort)},
		Conflict: confCert, ConflictMeta: confMeta,
	}
	cert := &types.DecisionCert{TxID: id, Decision: types.DecisionAbort, Shards: []types.ShardCert{sc}}
	if err := e.v.VerifyDecisionCert(cert, meta); err != nil {
		t.Fatalf("valid conflict A-CERT rejected: %v", err)
	}
	// Without the inner certificate the same shape must fail (fresh
	// verifier: the cert cache legitimately remembers the good one).
	e2 := newCertEnv(1)
	sc.Conflict = nil
	bad := &types.DecisionCert{TxID: id, Decision: types.DecisionAbort, Shards: []types.ShardCert{sc}}
	if err := e2.v.VerifyDecisionCert(bad, meta); err == nil {
		t.Fatal("conflict cert without inner C-CERT accepted")
	}
}

func TestTallyJustification(t *testing.T) {
	e := newCertEnv(1)
	meta := testMeta()
	id := meta.ID()
	commitTally := types.VoteTally{TxID: id, ShardID: 0, Vote: types.VoteCommit}
	for i := int32(0); i < int32(e.cfg.CommitQuorum()); i++ {
		commitTally.Replies = append(commitTally.Replies, e.st1r(id, i, types.VoteCommit))
	}
	if err := e.v.VerifyTallyJustifies(meta, types.DecisionCommit, []types.VoteTally{commitTally}); err != nil {
		t.Fatalf("valid commit tally rejected: %v", err)
	}
	// A commit decision without a CQ for the shard must fail.
	short := commitTally
	short.Replies = short.Replies[:e.cfg.CommitQuorum()-1]
	if err := e.v.VerifyTallyJustifies(meta, types.DecisionCommit, []types.VoteTally{short}); err == nil {
		t.Fatal("short commit tally accepted")
	}
	// Abort needs only AQ = f+1.
	abortTally := types.VoteTally{TxID: id, ShardID: 0, Vote: types.VoteAbort}
	for i := int32(0); i < int32(e.cfg.AbortQuorum()); i++ {
		abortTally.Replies = append(abortTally.Replies, e.st1r(id, i, types.VoteAbort))
	}
	if err := e.v.VerifyTallyJustifies(meta, types.DecisionAbort, []types.VoteTally{abortTally}); err != nil {
		t.Fatalf("valid abort tally rejected: %v", err)
	}
	// A single abort vote with no conflict cert must not justify abort.
	one := abortTally
	one.Replies = one.Replies[:1]
	if err := e.v.VerifyTallyJustifies(meta, types.DecisionAbort, []types.VoteTally{one}); err == nil {
		t.Fatal("single abort vote justified an abort (Byzantine independence broken)")
	}
}

func TestCertCacheHit(t *testing.T) {
	e := newCertEnv(1)
	meta := testMeta()
	id := meta.ID()
	sc := types.ShardCert{ShardID: 0, Kind: types.CertST1Fast, Vote: types.VoteCommit}
	for i := int32(0); i < int32(e.cfg.N()); i++ {
		sc.ST1Rs = append(sc.ST1Rs, e.st1r(id, i, types.VoteCommit))
	}
	cert := &types.DecisionCert{TxID: id, Decision: types.DecisionCommit, Shards: []types.ShardCert{sc}}
	if err := e.v.VerifyDecisionCert(cert, meta); err != nil {
		t.Fatal(err)
	}
	// Second verification must hit the cache: even a gutted cert with the
	// same (tx, decision) passes, which is sound by Lemma 2.
	gutted := &types.DecisionCert{TxID: id, Decision: types.DecisionCommit}
	if err := e.v.VerifyDecisionCert(gutted, meta); err != nil {
		t.Fatal("cache did not serve repeat verification")
	}
	// But the opposite decision must not be cached.
	wrong := &types.DecisionCert{TxID: id, Decision: types.DecisionAbort}
	if err := e.v.VerifyDecisionCert(wrong, meta); err == nil {
		t.Fatal("uncached abort cert accepted")
	}
}
