// Package quorum centralizes Basil's quorum arithmetic for n = 5f+1
// replicas per shard (paper §3, §4.2, §4.5) and the classification of
// stage-1 vote tallies into the paper's five outcome cases, plus validation
// of vote certificates (V-CERT / C-CERT / A-CERT).
//
// Ownership: Config and Verifier are immutable after construction and
// safe for concurrent use; Verifier fans batch signature checks out
// through an optional shared cryptoutil.VerifyPool and holds no locks of
// its own.
package quorum

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cryptoutil"
	"repro/internal/types"
)

// Config fixes the per-shard fault threshold.
type Config struct {
	F int
}

// N returns the replication factor 5f+1.
func (c Config) N() int { return 5*c.F + 1 }

// CommitQuorum returns |CQ| = (n+f+1)/2 = 3f+1.
func (c Config) CommitQuorum() int { return 3*c.F + 1 }

// AbortQuorum returns |AQ| = f+1 (minimum abort evidence preserving
// Byzantine independence).
func (c Config) AbortQuorum() int { return c.F + 1 }

// FastCommit returns the unanimous fast-path commit threshold 5f+1.
func (c Config) FastCommit() int { return 5*c.F + 1 }

// FastAbort returns the durable fast-path abort threshold 3f+1.
func (c Config) FastAbort() int { return 3*c.F + 1 }

// LogQuorum returns n-f = 4f+1, the ST2 logging quorum.
func (c Config) LogQuorum() int { return 4*c.F + 1 }

// ElectQuorum returns 4f+1, the fallback leader election threshold.
func (c Config) ElectQuorum() int { return 4*c.F + 1 }

// ReadValidity returns f+1: replies needed before a read may be trusted.
func (c Config) ReadValidity() int { return c.F + 1 }

// ViewCatchupStrong returns 3f+1: matching views that let a replica advance
// to view v+1 (fallback rule R1).
func (c Config) ViewCatchupStrong() int { return 3*c.F + 1 }

// ViewCatchupWeak returns f+1: matching views that let a replica jump to a
// larger view (fallback rule R2).
func (c Config) ViewCatchupWeak() int { return c.F + 1 }

// ShardOutcome classifies a shard's stage-1 tally (paper §4.2 step 4).
type ShardOutcome uint8

// Tally classifications.
const (
	// OutcomePending: not enough votes yet to classify.
	OutcomePending ShardOutcome = iota
	// OutcomeCommitFast: 5f+1 commit votes; vote durable (case 3).
	OutcomeCommitFast
	// OutcomeCommitSlow: ≥3f+1 commit votes; requires ST2 logging (case 1).
	OutcomeCommitSlow
	// OutcomeAbortFast: ≥3f+1 abort votes (case 4) or an abort with a
	// conflicting commit certificate (case 5); vote durable.
	OutcomeAbortFast
	// OutcomeAbortSlow: ≥f+1 abort votes; requires ST2 logging (case 2).
	OutcomeAbortSlow
	// OutcomeStuck: all n replicas voted yet neither quorum can be
	// reached (possible only with Byzantine replicas voting both ways is
	// impossible — kept for defensive completeness when replies conflict).
	OutcomeStuck
)

func (o ShardOutcome) String() string {
	switch o {
	case OutcomeCommitFast:
		return "commit-fast"
	case OutcomeCommitSlow:
		return "commit-slow"
	case OutcomeAbortFast:
		return "abort-fast"
	case OutcomeAbortSlow:
		return "abort-slow"
	case OutcomeStuck:
		return "stuck"
	default:
		return "pending"
	}
}

// Classify maps (commit votes, abort votes, presence of a conflict
// certificate) to a shard outcome. received is the total distinct replies.
//
// Classification is performed eagerly in priority order: a conflict
// certificate or a full fast quorum short-circuits; otherwise the client
// keeps waiting until every reply that can still arrive cannot change the
// class (the caller decides when to stop waiting for the fast path; see
// WaitHint).
func (c Config) Classify(commits, aborts int, conflict bool) ShardOutcome {
	switch {
	case conflict:
		return OutcomeAbortFast
	case commits >= c.FastCommit():
		return OutcomeCommitFast
	case aborts >= c.FastAbort():
		return OutcomeAbortFast
	case commits >= c.CommitQuorum():
		return OutcomeCommitSlow
	case aborts >= c.AbortQuorum():
		return OutcomeAbortSlow
	default:
		return OutcomePending
	}
}

// FastStillPossible reports whether waiting for more votes could still
// upgrade the tally to a fast outcome, given votes received so far.
func (c Config) FastStillPossible(commits, aborts int) bool {
	remaining := c.N() - commits - aborts
	if remaining < 0 {
		remaining = 0
	}
	return commits+remaining >= c.FastCommit() || aborts+remaining >= c.FastAbort()
}

// Errors returned by certificate validation.
var (
	ErrBadCert       = errors.New("quorum: invalid certificate")
	ErrWrongDecision = errors.New("quorum: certificate decision mismatch")
)

// SignerOf maps a (shard, replica index) pair to the global key-registry
// id of that replica, binding shard-local reply fields to real keys.
type SignerOf func(shard, replica int32) int32

// Verifier validates tallies and decision certificates. It caches
// successful certificate verifications by (transaction, decision): by
// Lemma 2 a transaction cannot have both a commit and an abort
// certificate, so any later structurally valid certificate for the same
// pair proves the same fact. This mirrors the paper's signature-caching
// philosophy (§4.4) one level up and saves the dominant verification cost
// on hot keys, whose commit certificates accompany every read reply.
type Verifier struct {
	Cfg      Config
	Sigs     *cryptoutil.SigVerifier
	SignerOf SignerOf
	// Pool, if non-nil, fans the signature checks of multi-reply
	// validations (vote tallies, shard certificates) across its workers.
	// Field consistency and duplicate detection stay sequential; only the
	// ed25519 work parallelizes. Safe to share with the replica's ingest
	// pool: batch verification falls back to inline execution when the
	// pool is busy or closed.
	Pool *cryptoutil.VerifyPool

	// mu guards certCache; signature checks run outside it.
	mu        sync.Mutex
	certCache map[certKey]bool
}

// allSigs runs n independent signature checks, in parallel when a pool is
// attached, and reports whether all passed.
func (v *Verifier) allSigs(n int, check func(i int) bool) bool {
	if v.Pool == nil || n < 2 {
		for i := 0; i < n; i++ {
			if !check(i) {
				return false
			}
		}
		return true
	}
	return v.Pool.All(n, check)
}

type certKey struct {
	id  types.TxID
	dec types.Decision
}

func (v *Verifier) cachedCert(id types.TxID, dec types.Decision) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.certCache[certKey{id, dec}]
}

func (v *Verifier) cacheCert(id types.TxID, dec types.Decision) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.certCache == nil {
		v.certCache = make(map[certKey]bool)
	}
	if len(v.certCache) > 65536 {
		v.certCache = make(map[certKey]bool)
	}
	v.certCache[certKey{id, dec}] = true
}

// checkST1Fields validates everything about a vote except its signature.
func (v *Verifier) checkST1Fields(r *types.ST1Reply, id types.TxID) error {
	if r.TxID != id {
		return fmt.Errorf("%w: st1r for wrong tx", ErrBadCert)
	}
	if r.ReplicaID < 0 || int(r.ReplicaID) >= v.Cfg.N() {
		return fmt.Errorf("%w: replica id %d out of range", ErrBadCert, r.ReplicaID)
	}
	if r.Sig.SignerID != v.SignerOf(r.ShardID, r.ReplicaID) {
		return fmt.Errorf("%w: signer/replica mismatch", ErrBadCert)
	}
	return nil
}

// verifyST1Sig checks one vote's signature.
func (v *Verifier) verifyST1Sig(r *types.ST1Reply) bool {
	sig := r.Sig
	return v.Sigs.Verify(r.Payload(), &sig)
}

// VerifyST1Reply checks one vote's signature and field consistency.
func (v *Verifier) VerifyST1Reply(r *types.ST1Reply, id types.TxID) error {
	if err := v.checkST1Fields(r, id); err != nil {
		return err
	}
	if !v.verifyST1Sig(r) {
		return fmt.Errorf("%w: bad st1r signature", ErrBadCert)
	}
	return nil
}

// checkST2Fields validates everything about an acknowledgement except its
// signature.
func (v *Verifier) checkST2Fields(r *types.ST2Reply, id types.TxID) error {
	if r.TxID != id {
		return fmt.Errorf("%w: st2r for wrong tx", ErrBadCert)
	}
	if r.ReplicaID < 0 || int(r.ReplicaID) >= v.Cfg.N() {
		return fmt.Errorf("%w: replica id %d out of range", ErrBadCert, r.ReplicaID)
	}
	if r.Sig.SignerID != v.SignerOf(r.ShardID, r.ReplicaID) {
		return fmt.Errorf("%w: signer/replica mismatch", ErrBadCert)
	}
	return nil
}

// verifyST2Sig checks one acknowledgement's signature.
func (v *Verifier) verifyST2Sig(r *types.ST2Reply) bool {
	sig := r.Sig
	return v.Sigs.Verify(r.Payload(), &sig)
}

// VerifyST2Reply checks one logged-decision acknowledgement.
func (v *Verifier) VerifyST2Reply(r *types.ST2Reply, id types.TxID) error {
	if err := v.checkST2Fields(r, id); err != nil {
		return err
	}
	if !v.verifyST2Sig(r) {
		return fmt.Errorf("%w: bad st2r signature", ErrBadCert)
	}
	return nil
}

// VerifyShardCert validates one shard's V-CERT for transaction id with the
// expected vote.
func (v *Verifier) VerifyShardCert(sc *types.ShardCert, id types.TxID) error {
	switch sc.Kind {
	case types.CertST1Fast:
		need := v.Cfg.FastCommit()
		if sc.Vote == types.VoteAbort {
			need = v.Cfg.FastAbort()
		}
		return v.countST1(sc, id, sc.Vote, need)
	case types.CertST2Logged:
		seen := make(map[int32]bool)
		var dec types.Decision
		var view uint64
		for i := range sc.ST2Rs {
			r := &sc.ST2Rs[i]
			if r.ShardID != sc.ShardID || seen[r.ReplicaID] {
				return fmt.Errorf("%w: duplicate/foreign st2r", ErrBadCert)
			}
			if i == 0 {
				dec, view = r.Decision, r.ViewDecision
			} else if r.Decision != dec || r.ViewDecision != view {
				return fmt.Errorf("%w: st2r decision/view mismatch", ErrBadCert)
			}
			if err := v.checkST2Fields(r, id); err != nil {
				return err
			}
			seen[r.ReplicaID] = true
		}
		if len(seen) < v.Cfg.LogQuorum() {
			return fmt.Errorf("%w: %d st2r < log quorum %d", ErrBadCert, len(seen), v.Cfg.LogQuorum())
		}
		if !v.allSigs(len(sc.ST2Rs), func(i int) bool { return v.verifyST2Sig(&sc.ST2Rs[i]) }) {
			return fmt.Errorf("%w: bad st2r signature", ErrBadCert)
		}
		want := types.DecisionCommit
		if sc.Vote == types.VoteAbort {
			want = types.DecisionAbort
		}
		if dec != want {
			return fmt.Errorf("%w: st2 decision %v for vote %v", ErrBadCert, dec, sc.Vote)
		}
		return nil
	case types.CertConflict:
		if sc.Vote != types.VoteAbort {
			return fmt.Errorf("%w: conflict cert must abort", ErrBadCert)
		}
		if err := v.countST1(sc, id, types.VoteAbort, 1); err != nil {
			return err
		}
		if sc.Conflict == nil || sc.ConflictMeta == nil {
			return fmt.Errorf("%w: missing conflict certificate", ErrBadCert)
		}
		if sc.Conflict.Decision != types.DecisionCommit {
			return fmt.Errorf("%w: conflict cert is not a commit", ErrBadCert)
		}
		if sc.ConflictMeta.ID() != sc.Conflict.TxID {
			return fmt.Errorf("%w: conflict meta/cert mismatch", ErrBadCert)
		}
		return v.VerifyDecisionCert(sc.Conflict, sc.ConflictMeta)
	default:
		return fmt.Errorf("%w: unknown shard-cert kind %d", ErrBadCert, sc.Kind)
	}
}

func (v *Verifier) countST1(sc *types.ShardCert, id types.TxID, vote types.Vote, need int) error {
	seen := make(map[int32]bool)
	for i := range sc.ST1Rs {
		r := &sc.ST1Rs[i]
		if r.ShardID != sc.ShardID || r.Vote != vote || seen[r.ReplicaID] {
			return fmt.Errorf("%w: inconsistent st1r set", ErrBadCert)
		}
		if err := v.checkST1Fields(r, id); err != nil {
			return err
		}
		seen[r.ReplicaID] = true
	}
	if len(seen) < need {
		return fmt.Errorf("%w: %d votes < required %d", ErrBadCert, len(seen), need)
	}
	if !v.allSigs(len(sc.ST1Rs), func(i int) bool { return v.verifyST1Sig(&sc.ST1Rs[i]) }) {
		return fmt.Errorf("%w: bad st1r signature", ErrBadCert)
	}
	return nil
}

// VerifyDecisionCert validates a full C-CERT/A-CERT against the
// transaction metadata (paper §4.3 step 2).
//
// Commit certificates must either carry a fast-path ST1 V-CERT for every
// participant shard, or a single logging-shard ST2 V-CERT. Abort
// certificates need a single aborting shard's V-CERT (fast) or the logging
// shard's ST2 V-CERT (slow).
func (v *Verifier) VerifyDecisionCert(cert *types.DecisionCert, meta *types.TxMeta) error {
	id := meta.ID()
	if cert.TxID != id {
		return fmt.Errorf("%w: cert tx id mismatch", ErrBadCert)
	}
	if v.cachedCert(id, cert.Decision) {
		return nil
	}
	if err := v.verifyDecisionCertSlow(cert, meta, id); err != nil {
		return err
	}
	v.cacheCert(id, cert.Decision)
	return nil
}

func (v *Verifier) verifyDecisionCertSlow(cert *types.DecisionCert, meta *types.TxMeta, id types.TxID) error {
	switch cert.Decision {
	case types.DecisionCommit:
		if len(cert.Shards) == 1 && cert.Shards[0].Kind == types.CertST2Logged {
			sc := &cert.Shards[0]
			if sc.ShardID != meta.LogShard() {
				return fmt.Errorf("%w: st2 cert from non-logging shard", ErrBadCert)
			}
			if sc.Vote != types.VoteCommit {
				return ErrWrongDecision
			}
			return v.VerifyShardCert(sc, id)
		}
		// Fast path: one fast commit V-CERT per participant shard.
		have := make(map[int32]bool)
		for i := range cert.Shards {
			sc := &cert.Shards[i]
			if sc.Kind != types.CertST1Fast || sc.Vote != types.VoteCommit {
				return fmt.Errorf("%w: fast C-CERT needs fast commit shard certs", ErrBadCert)
			}
			if !meta.HasShard(sc.ShardID) || have[sc.ShardID] {
				return fmt.Errorf("%w: unexpected shard %d in cert", ErrBadCert, sc.ShardID)
			}
			if err := v.VerifyShardCert(sc, id); err != nil {
				return err
			}
			have[sc.ShardID] = true
		}
		if len(have) != len(meta.Shards) {
			return fmt.Errorf("%w: fast C-CERT covers %d of %d shards", ErrBadCert, len(have), len(meta.Shards))
		}
		return nil
	case types.DecisionAbort:
		if len(cert.Shards) != 1 {
			return fmt.Errorf("%w: A-CERT needs exactly one shard cert", ErrBadCert)
		}
		sc := &cert.Shards[0]
		if !meta.HasShard(sc.ShardID) {
			return fmt.Errorf("%w: aborting shard %d not a participant", ErrBadCert, sc.ShardID)
		}
		if sc.Kind == types.CertST2Logged {
			if sc.ShardID != meta.LogShard() {
				return fmt.Errorf("%w: st2 cert from non-logging shard", ErrBadCert)
			}
			if sc.Vote != types.VoteAbort {
				return ErrWrongDecision
			}
			return v.VerifyShardCert(sc, id)
		}
		if sc.Vote != types.VoteAbort {
			return ErrWrongDecision
		}
		return v.VerifyShardCert(sc, id)
	default:
		return fmt.Errorf("%w: decision %v", ErrBadCert, cert.Decision)
	}
}

// VerifyTallyJustifies checks that a set of tallies justifies the claimed
// 2PC decision (used by replicas validating ST2 requests, paper §4.2
// step 6): commit requires a commit tally (≥CQ) for every participant
// shard; abort requires an abort tally (≥AQ) or conflict for at least one.
func (v *Verifier) VerifyTallyJustifies(meta *types.TxMeta, dec types.Decision, tallies []types.VoteTally) error {
	id := meta.ID()
	byShard := make(map[int32]*types.VoteTally)
	for i := range tallies {
		t := &tallies[i]
		if t.TxID != id {
			return fmt.Errorf("%w: tally for wrong tx", ErrBadCert)
		}
		byShard[t.ShardID] = t
	}
	switch dec {
	case types.DecisionCommit:
		for _, sh := range meta.Shards {
			t := byShard[sh]
			if t == nil || t.Vote != types.VoteCommit {
				return fmt.Errorf("%w: missing commit tally for shard %d", ErrBadCert, sh)
			}
			if err := v.verifyTallyVotes(t, id, v.Cfg.CommitQuorum()); err != nil {
				return err
			}
		}
		return nil
	case types.DecisionAbort:
		for _, t := range byShard {
			if t.Vote != types.VoteAbort {
				continue
			}
			if t.Conflict != nil && t.ConflictMeta != nil {
				if t.ConflictMeta.ID() == t.Conflict.TxID &&
					t.Conflict.Decision == types.DecisionCommit &&
					v.VerifyDecisionCert(t.Conflict, t.ConflictMeta) == nil &&
					v.verifyTallyVotes(t, id, 1) == nil {
					return nil
				}
				continue
			}
			if err := v.verifyTallyVotes(t, id, v.Cfg.AbortQuorum()); err == nil {
				return nil
			}
		}
		return fmt.Errorf("%w: no abort quorum in tallies", ErrBadCert)
	default:
		return fmt.Errorf("%w: decision %v", ErrBadCert, dec)
	}
}

func (v *Verifier) verifyTallyVotes(t *types.VoteTally, id types.TxID, need int) error {
	seen := make(map[int32]bool)
	for i := range t.Replies {
		r := &t.Replies[i]
		if r.ShardID != t.ShardID || r.Vote != t.Vote || seen[r.ReplicaID] {
			return fmt.Errorf("%w: inconsistent tally", ErrBadCert)
		}
		if err := v.checkST1Fields(r, id); err != nil {
			return err
		}
		seen[r.ReplicaID] = true
	}
	if len(seen) < need {
		return fmt.Errorf("%w: tally %d < %d", ErrBadCert, len(seen), need)
	}
	if !v.allSigs(len(t.Replies), func(i int) bool { return v.verifyST1Sig(&t.Replies[i]) }) {
		return fmt.Errorf("%w: bad st1r signature in tally", ErrBadCert)
	}
	return nil
}
