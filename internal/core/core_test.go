package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/quorum"
	"repro/internal/transport"
)

// TestManualWiring builds a shard directly through package core — the
// same seam cmd/basil-server uses — and commits a transaction.
func TestManualWiring(t *testing.T) {
	const f = 1
	n := 5*f + 1
	net := transport.NewLocal()
	defer net.Close()
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, n, 1)
	signerOf := quorum.SignerOf(func(s, i int32) int32 { return i })

	var reps []*core.Replica
	for i := 0; i < n; i++ {
		r := core.NewReplica(core.ReplicaConfig{
			Shard: 0, Index: int32(i), F: f,
			DeltaMicros: 60_000_000,
			Registry:    reg, SignerID: int32(i), SignerOf: signerOf,
			Net: net,
		})
		r.LoadGenesis("k", []byte("v0"))
		reps = append(reps, r)
	}
	defer func() {
		for _, r := range reps {
			r.Close()
		}
	}()

	c := core.NewClient(core.ClientConfig{
		ID: 1, F: f, NumShards: 1,
		ShardOf:  func(string) int32 { return 0 },
		Registry: reg, SignerOf: signerOf, Net: net,
	})
	tx := c.Begin()
	v, err := tx.Read("k")
	if err != nil || string(v) != "v0" {
		t.Fatalf("read: %q %v", v, err)
	}
	tx.Write("k", []byte("v1"))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if c.Stats.TxCommitted.Load() != 1 {
		t.Fatal("commit not counted")
	}
}
