// Package core aggregates the two roles that make up the paper's primary
// contribution — the Basil replica (internal/replica) and the Basil client
// (internal/client) — behind one construction point. The public facade
// (package basil) composes whole clusters; core is the seam used by tests
// and by deployments that wire roles to transports manually (see
// cmd/basil-server and cmd/basil-kv).
//
// Ownership: core constructs and hands off — it retains nothing. The
// replica and client own their own synchronization (see their package
// docs); core-level callers only coordinate construction order (register
// replicas before clients send).
package core

import (
	"repro/internal/client"
	"repro/internal/replica"
)

// Replica is a Basil replica (see internal/replica for the protocol
// implementation: MVTSO check, ST1/ST2, writeback, fallback).
type Replica = replica.Replica

// ReplicaConfig parameterizes a replica.
type ReplicaConfig = replica.Config

// Client is a Basil client (see internal/client: interactive transactions,
// vote aggregation, recovery).
type Client = client.Client

// ClientConfig parameterizes a client.
type ClientConfig = client.Config

// Txn is one interactive transaction.
type Txn = client.Txn

// NewReplica constructs and registers a replica on its transport.
func NewReplica(cfg ReplicaConfig) *Replica { return replica.New(cfg) }

// NewClient constructs and registers a client on its transport.
func NewClient(cfg ClientConfig) *Client { return client.New(cfg) }
