package benchharness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/basil"
	"repro/internal/cryptoutil"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/types"
)

// stageOrder is the pipeline order the stage-breakdown table presents:
// the client lifecycle first, then the wire, then the replica ingest
// path. Span names outside this list (trace.forced markers, future
// stages) are appended alphabetically.
var stageOrder = []string{
	trace.RootSpan,
	"client.read",
	"client.prepare",
	"client.st2",
	"client.writeback",
	"client.recovery",
	"net.queue",
	"replica.dispatch_wait",
	"replica.check",
	"replica.verify",
	"replica.wal_append",
}

// TraceStageRow is one per-stage latency row of the trace breakdown —
// the numbers `make bench` records in BENCH_trace.json.
type TraceStageRow struct {
	Stage string  `json:"stage"`
	Count int     `json:"count"`
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
}

// TraceStages runs the RW-U workload through a fully sampled cluster on
// real loopback TCP (so net.queue spans exist and every trace context
// crosses the framed wire codec) and reduces the tracer's span ring to a
// per-stage latency breakdown. This is the tracer used as intended:
// where inside a transaction does the time go, stage by stage.
func TraceStages(s Scale) []TraceStageRow {
	gen := s.ycsbRWU()
	sys := NewBasilTCP(gen, basil.Options{
		F: 1, Shards: 1, BatchSize: 16,
		Tracing:     true,
		TraceSample: 1,
		TraceRing:   1 << 15,
	})
	Run(sys, gen, s.runCfg())
	spans := sys.C.Tracer().Spans()
	sys.Close()

	byStage := make(map[string][]float64)
	for _, sp := range spans {
		if sp.End < sp.Start {
			continue // clock skew across goroutines; drop rather than skew p50
		}
		byStage[sp.Name] = append(byStage[sp.Name], float64(sp.End-sp.Start)/1e3)
	}
	rows := make([]TraceStageRow, 0, len(byStage))
	add := func(name string) {
		ds := byStage[name]
		if len(ds) == 0 {
			return
		}
		delete(byStage, name)
		sort.Float64s(ds)
		rows = append(rows, TraceStageRow{
			Stage: name, Count: len(ds),
			P50Us: quantileOf(ds, 0.50), P99Us: quantileOf(ds, 0.99),
		})
	}
	for _, name := range stageOrder {
		add(name)
	}
	rest := make([]string, 0, len(byStage))
	for name := range byStage {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	for _, name := range rest {
		add(name)
	}
	return rows
}

// quantileOf reads quantile q from an already-sorted sample (nearest
// rank; the sample is the whole ring, not a sketch).
func quantileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// TraceOverhead holds the disabled-path cost measurement: what tracing
// costs when it records nothing, which is the price every deployment
// pays all the time. The acceptance bound is OverheadPct <= 2 on the
// prepare pipeline.
type TraceOverhead struct {
	StartNsPerOp     float64 `json:"start_unsampled_ns_per_op"`
	StartAllocsPerOp float64 `json:"start_unsampled_allocs_per_op"`
	BareNsPerOp      float64 `json:"pipeline_bare_ns_per_op"`
	UnsampledNsPerOp float64 `json:"pipeline_unsampled_ns_per_op"`
	OverheadPct      float64 `json:"pipeline_overhead_pct"`
}

// MeasureTraceOverhead runs the BenchmarkPrepareParallel-style pipeline
// workload bare and with a rate-zero tracer threaded through the replica
// stage calls (Start returning 0, every End a no-op) and reports the
// regression.
func MeasureTraceOverhead(s Scale) TraceOverhead {
	var o TraceOverhead
	tr := trace.New(trace.Options{SampleRate: 0})
	tc, _ := tr.Begin() // unsampled at rate 0, like every fast-path txn
	o.StartNsPerOp = nsPerOp(200000, func(int) { tr.Start(tc) })
	o.StartAllocsPerOp = allocsPerOp(20000, func() {
		st := tr.Start(tc)
		tr.End(tc, "r0.0", "replica.check", 0, st)
	})

	total := 2000
	if s.Measure >= 5*time.Second {
		total = 6000 // the -scale full variant
	}
	o.BareNsPerOp = bestOf(3, func() float64 { return tracePrepareNs(total, nil) })
	o.UnsampledNsPerOp = bestOf(3, func() float64 { return tracePrepareNs(total, tr) })
	o.OverheadPct = (o.UnsampledNsPerOp - o.BareNsPerOp) / o.BareNsPerOp * 100
	return o
}

// tracePrepareNs is prepareWorkloadNs with the replica's tracing calls
// threaded through each delivery exactly as replica ingest makes them
// (a Start/End pair around verification and one around the store
// check). A nil tracer is the bare baseline; a rate-zero tracer
// measures the disabled fast path on unsampled contexts.
func tracePrepareNs(total int, tr *trace.Tracer) float64 {
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, 6, 1)
	sv := cryptoutil.NewSigVerifier(reg, total)
	st := store.NewStriped(store.DefaultStripes)
	var tc types.TraceContext
	if tr != nil {
		tc, _ = tr.Begin() // rate 0: never sampled, like live traffic
	}

	type signed struct {
		meta    *types.TxMeta
		id      types.TxID
		payload []byte
		sig     types.Signature
	}
	msgs := make([]signed, total)
	for i := range msgs {
		m := &types.TxMeta{
			Timestamp: types.Timestamp{Time: uint64(i + 1), ClientID: 1 + uint64(i%64)},
			WriteSet:  []types.WriteEntry{{Key: fmt.Sprintf("key-%04d", i%512), Value: []byte("v")}},
			Shards:    []int32{0},
		}
		id := m.ID()
		signer := int32(i % 6)
		msgs[i] = signed{meta: m, id: id, payload: id[:],
			sig: types.Signature{SignerID: signer, Direct: reg.Signer(signer).Sign(id[:])}}
	}

	deliver := func(m *signed) {
		vStart := tr.Start(tc)
		sig := m.sig
		if !sv.Verify(m.payload, &sig) {
			panic("benchmark: bad signature")
		}
		tr.End(tc, "r0.0", "replica.verify", 0, vStart)
		cStart := tr.Start(tc)
		st.CheckAndPrepare(m.meta, m.id)
		tr.End(tc, "r0.0", "replica.check", 0, cStart)
	}

	workers := runtime.GOMAXPROCS(0)
	per := total / workers
	var seq atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m := &msgs[int(seq.Add(1))%len(msgs)]
				deliver(m)
				deliver(m)
			}
		}()
	}
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) / float64(per*workers)
}

// FigTrace is the tracing experiment behind `-experiment trace`: the
// per-stage latency breakdown a fully sampled cluster yields (the
// "explain the tail" table) and the disabled-path overhead that keeping
// the tracer compiled into the hot path costs (the "cheap enough to
// always ship" table; the pipeline row must stay within 2%).
func FigTrace(s Scale) (Table, Table) {
	stages := Table{
		Title:  "Trace stage breakdown (sample rate 1, TCP loopback, RW-U)",
		Header: []string{"stage", "count", "p50 (us)", "p99 (us)"},
	}
	for _, r := range TraceStages(s) {
		stages.Rows = append(stages.Rows, []string{
			r.Stage, fmt.Sprint(r.Count), f1(r.P50Us), f1(r.P99Us),
		})
	}

	o := MeasureTraceOverhead(s)
	over := Table{
		Title:  "Tracer disabled-path overhead (unsampled contexts)",
		Header: []string{"path", "ns/op", "allocs/op", "overhead"},
	}
	over.Rows = append(over.Rows, []string{"Tracer.Start (unsampled)", f1(o.StartNsPerOp), f2(o.StartAllocsPerOp), "-"})
	over.Rows = append(over.Rows, []string{"prepare pipeline (bare)", f1(o.BareNsPerOp), "-", "-"})
	over.Rows = append(over.Rows, []string{"prepare pipeline (tracer on, rate 0)", f1(o.UnsampledNsPerOp), "-",
		fmt.Sprintf("%+.2f%%", o.OverheadPct)})
	return stages, over
}
