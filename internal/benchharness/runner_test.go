package benchharness

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/basil"
	"repro/internal/client"
	"repro/internal/txbase"
	"repro/internal/workload"
)

func quickRun() RunConfig {
	return RunConfig{Clients: 3, Warmup: 50 * time.Millisecond, Measure: 300 * time.Millisecond}
}

func smallYCSB() workload.Generator {
	return workload.NewYCSB(workload.YCSBConfig{Keys: 500, ReadOps: 2, WriteOps: 2})
}

func TestRunBasilYCSB(t *testing.T) {
	gen := smallYCSB()
	sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4})
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
	if r.Throughput <= 0 || r.MeanLatMs <= 0 {
		t.Fatalf("bad stats: %+v", r)
	}
	if share := sys.FastPathShare(); share == 0 {
		t.Errorf("expected some fast-path commits, share=0")
	}
}

func TestRunTapirYCSB(t *testing.T) {
	gen := smallYCSB()
	sys := NewTapir(gen, 1)
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
}

func TestRunTxBasePBFT(t *testing.T) {
	gen := smallYCSB()
	sys := NewTxBase(gen, txbase.KindPBFT, 1)
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
}

func TestRunTxBaseHotStuff(t *testing.T) {
	gen := smallYCSB()
	sys := NewTxBase(gen, txbase.KindHotStuff, 1)
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
}

func TestRunSmallbankBasil(t *testing.T) {
	gen := workload.NewSmallbank(workload.SmallbankConfig{Accounts: 2_000})
	sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4})
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
}

func TestRunRetwisBasil(t *testing.T) {
	gen := workload.NewRetwis(workload.RetwisConfig{Users: 500})
	sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4})
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
}

func TestRunTPCCBasil(t *testing.T) {
	gen := workload.NewTPCC(workload.TPCCConfig{
		Warehouses: 1, Districts: 2, CustomersPer: 30, Items: 100, StockOrders: 2,
	})
	sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4})
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
}

func TestRunWithStallLateByzClients(t *testing.T) {
	gen := workload.NewYCSB(workload.YCSBConfig{Keys: 200, ReadOps: 2, WriteOps: 2, Theta: 0.9})
	sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4})
	defer sys.Close()
	r := RunWithByzClients(sys.C, gen, FailureRunConfig{
		CorrectClients: 3, ByzClients: 2, FaultFraction: 0.5,
		Mode:   client.FaultStallLate,
		Warmup: 50 * time.Millisecond, Measure: 400 * time.Millisecond,
	})
	if r.Commits == 0 {
		t.Fatalf("correct clients starved entirely: %+v", r)
	}
	if r.FaultyTxs == 0 {
		t.Fatalf("no faulty transactions were issued")
	}
}

func TestRunWithEquivForced(t *testing.T) {
	gen := workload.NewYCSB(workload.YCSBConfig{Keys: 200, ReadOps: 2, WriteOps: 2, Theta: 0.9})
	// Under a fully loaded machine (e.g. the whole bench suite running
	// concurrently) a single short window can starve spuriously; retry
	// with growing windows before declaring a liveness failure.
	for attempt := 1; attempt <= 3; attempt++ {
		sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4,
			PhaseTimeout: 25 * time.Millisecond, AllowUnvalidatedST2: true})
		r := RunWithByzClients(sys.C, gen, FailureRunConfig{
			CorrectClients: 3, ByzClients: 1, FaultFraction: 0.5,
			Mode:    client.FaultEquivForced,
			Warmup:  100 * time.Millisecond,
			Measure: time.Duration(attempt) * time.Second,
		})
		sys.Close()
		if r.Commits > 0 {
			return
		}
		if attempt == 3 {
			t.Fatalf("correct clients starved entirely after %d attempts: %+v", attempt, r)
		}
	}
}

// peakFakeSystem is a deterministic System whose per-transaction service
// time depends on the configured client count, shaping a non-monotonic
// throughput curve for FindPeak tests. mu guards clients/service:
// sessions are created from the harness while earlier sessions' commit
// goroutines are already reading the service time.
type peakFakeSystem struct {
	serviceOf func(clients int) time.Duration
	mu        sync.Mutex
	clients   int
	service   time.Duration
}

func (s *peakFakeSystem) Name() string        { return "peak-fake" }
func (s *peakFakeSystem) Load(string, []byte) {}
func (s *peakFakeSystem) Close()              {}
func (s *peakFakeSystem) NewSession() Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clients++
	s.service = s.serviceOf(s.clients)
	return peakFakeSession{s}
}

func (s *peakFakeSystem) serviceTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.service
}

type peakFakeSession struct{ s *peakFakeSystem }

func (f peakFakeSession) Begin() SysTx { return peakFakeTx{f.s} }

type peakFakeTx struct{ s *peakFakeSystem }

func (t peakFakeTx) Read(string) ([]byte, error) { return nil, nil }
func (t peakFakeTx) Write(string, []byte)        {}
func (t peakFakeTx) Abort()                      {}
func (t peakFakeTx) Commit() error {
	time.Sleep(t.s.serviceTime())
	return nil
}

// TestFindPeakNonMonotonic pins FindPeak's contract on a curve that
// rises then collapses: the peak must be the interior maximum, not the
// first or last point of the sweep. The fake system's service time
// balloons past 8 clients, modeling contention collapse.
func TestFindPeakNonMonotonic(t *testing.T) {
	makeSystem := func() System {
		return &peakFakeSystem{serviceOf: func(clients int) time.Duration {
			switch {
			case clients <= 4:
				return 2 * time.Millisecond // up to ~500/s/client region
			case clients <= 8:
				return 3 * time.Millisecond
			default:
				return 40 * time.Millisecond // collapse: 16 clients -> ~400/s total
			}
		}}
	}
	gen := plainWriteGen{}
	cfg := RunConfig{Warmup: 20 * time.Millisecond, Measure: 250 * time.Millisecond, Seed: 3}
	best, all := FindPeak(makeSystem, gen, []int{4, 8, 16}, cfg)
	if len(all) != 3 {
		t.Fatalf("sweep ran %d points, want 3", len(all))
	}
	if best.Clients != 8 {
		for _, r := range all {
			t.Logf("clients=%d tput=%.0f", r.Clients, r.Throughput)
		}
		t.Fatalf("peak found at %d clients, want the interior maximum at 8", best.Clients)
	}
	if best.Throughput < all[0].Throughput || best.Throughput < all[2].Throughput {
		t.Fatalf("reported peak %.0f below a swept point (%.0f, %.0f)",
			best.Throughput, all[0].Throughput, all[2].Throughput)
	}
}

// plainWriteGen is a no-op workload for fake-system tests.
type plainWriteGen struct{}

func (plainWriteGen) Name() string                  { return "plain-write" }
func (plainWriteGen) Populate(func(string, []byte)) {}
func (plainWriteGen) Next(rng *rand.Rand) workload.TxnFunc {
	return workload.TxnFunc{Name: "w", Body: func(tx workload.Tx) error {
		tx.Write("k", nil)
		return nil
	}}
}
