package benchharness

import (
	"testing"
	"time"

	"repro/basil"
	"repro/internal/client"
	"repro/internal/txbase"
	"repro/internal/workload"
)

func quickRun() RunConfig {
	return RunConfig{Clients: 3, Warmup: 50 * time.Millisecond, Measure: 300 * time.Millisecond}
}

func smallYCSB() workload.Generator {
	return workload.NewYCSB(workload.YCSBConfig{Keys: 500, ReadOps: 2, WriteOps: 2})
}

func TestRunBasilYCSB(t *testing.T) {
	gen := smallYCSB()
	sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4})
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
	if r.Throughput <= 0 || r.MeanLatMs <= 0 {
		t.Fatalf("bad stats: %+v", r)
	}
	if share := sys.FastPathShare(); share == 0 {
		t.Errorf("expected some fast-path commits, share=0")
	}
}

func TestRunTapirYCSB(t *testing.T) {
	gen := smallYCSB()
	sys := NewTapir(gen, 1)
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
}

func TestRunTxBasePBFT(t *testing.T) {
	gen := smallYCSB()
	sys := NewTxBase(gen, txbase.KindPBFT, 1)
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
}

func TestRunTxBaseHotStuff(t *testing.T) {
	gen := smallYCSB()
	sys := NewTxBase(gen, txbase.KindHotStuff, 1)
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
}

func TestRunSmallbankBasil(t *testing.T) {
	gen := workload.NewSmallbank(workload.SmallbankConfig{Accounts: 2_000})
	sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4})
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
}

func TestRunRetwisBasil(t *testing.T) {
	gen := workload.NewRetwis(workload.RetwisConfig{Users: 500})
	sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4})
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
}

func TestRunTPCCBasil(t *testing.T) {
	gen := workload.NewTPCC(workload.TPCCConfig{
		Warehouses: 1, Districts: 2, CustomersPer: 30, Items: 100, StockOrders: 2,
	})
	sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4})
	defer sys.Close()
	r := Run(sys, gen, quickRun())
	if r.Commits == 0 {
		t.Fatalf("no commits: %+v", r)
	}
}

func TestRunWithStallLateByzClients(t *testing.T) {
	gen := workload.NewYCSB(workload.YCSBConfig{Keys: 200, ReadOps: 2, WriteOps: 2, Theta: 0.9})
	sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4})
	defer sys.Close()
	r := RunWithByzClients(sys.C, gen, FailureRunConfig{
		CorrectClients: 3, ByzClients: 2, FaultFraction: 0.5,
		Mode:   client.FaultStallLate,
		Warmup: 50 * time.Millisecond, Measure: 400 * time.Millisecond,
	})
	if r.Commits == 0 {
		t.Fatalf("correct clients starved entirely: %+v", r)
	}
	if r.FaultyTxs == 0 {
		t.Fatalf("no faulty transactions were issued")
	}
}

func TestRunWithEquivForced(t *testing.T) {
	gen := workload.NewYCSB(workload.YCSBConfig{Keys: 200, ReadOps: 2, WriteOps: 2, Theta: 0.9})
	// Under a fully loaded machine (e.g. the whole bench suite running
	// concurrently) a single short window can starve spuriously; retry
	// with growing windows before declaring a liveness failure.
	for attempt := 1; attempt <= 3; attempt++ {
		sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4,
			PhaseTimeout: 25 * time.Millisecond, AllowUnvalidatedST2: true})
		r := RunWithByzClients(sys.C, gen, FailureRunConfig{
			CorrectClients: 3, ByzClients: 1, FaultFraction: 0.5,
			Mode:    client.FaultEquivForced,
			Warmup:  100 * time.Millisecond,
			Measure: time.Duration(attempt) * time.Second,
		})
		sys.Close()
		if r.Commits > 0 {
			return
		}
		if attempt == 3 {
			t.Fatalf("correct clients starved entirely after %d attempts: %+v", attempt, r)
		}
	}
}
