package benchharness

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/basil"
	"repro/internal/client"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// FailureRunConfig parameterizes a Byzantine-client run (paper §6.4,
// Fig. 7): a constant client population, a fraction of which issues
// faulty transactions at a given rate under one misbehavior mode.
type FailureRunConfig struct {
	CorrectClients int
	ByzClients     int
	// FaultFraction is the probability that a Byzantine client's next
	// admitted transaction misbehaves (its remaining transactions are
	// executed correctly, matching the paper's setup).
	FaultFraction float64
	Mode          client.FaultMode
	Warmup        time.Duration
	Measure       time.Duration
	Seed          int64
}

// FailureResult extends Result with fault accounting.
type FailureResult struct {
	Result
	FaultyTxs       uint64
	EquivocationsOK uint64  // equiv attempts that actually diverged
	FaultShare      float64 // faulty / (faulty + correct commits), the paper's x-axis
	PerCorrectCli   float64 // committed tx/s per correct client (the paper's y-axis)
}

// RunWithByzClients drives gen with a mixed population of correct and
// Byzantine Basil clients and reports correct-client throughput.
func RunWithByzClients(cl *basil.Cluster, gen workload.Generator, cfg FailureRunConfig) FailureResult {
	if cfg.Measure <= 0 {
		cfg.Measure = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 99
	}
	var (
		measuring atomic.Bool
		stop      atomic.Bool
		commits   atomic.Uint64
		attempts  atomic.Uint64
		faulty    atomic.Uint64
		equivOK   atomic.Uint64
	)
	lat := &metrics.Histogram{}

	var wg sync.WaitGroup
	// Correct clients: the measured population.
	for i := 0; i < cfg.CorrectClients; i++ {
		c := cl.NewClient()
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				fn := gen.Next(rng)
				start := time.Now()
				backoff := 200 * time.Microsecond
				for !stop.Load() {
					tx := c.Begin()
					if measuring.Load() {
						attempts.Add(1)
					}
					err := fn.Body(txAdapter{tx})
					if err == nil {
						err = tx.Commit()
					} else {
						tx.Abort()
					}
					if err == nil {
						if measuring.Load() {
							commits.Add(1)
							lat.Since(start)
						}
						break
					}
					if errors.Is(err, workload.ErrWorkloadAbort) {
						break
					}
					time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
					if backoff < 10*time.Millisecond {
						backoff *= 2
					}
				}
			}
		}()
	}
	// Byzantine clients: issue faulty transactions at the configured
	// rate; faulty transactions that abort are not retried (paper §6.4).
	for i := 0; i < cfg.ByzClients; i++ {
		c := cl.NewClient()
		rng := rand.New(rand.NewSource(cfg.Seed + 100_003 + int64(i)*104729))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				fn := gen.Next(rng)
				inner := c.Inner()
				if rng.Float64() < cfg.FaultFraction {
					tx := inner.Begin()
					if fn.Body(clientTxAdapter{tx}) == nil {
						ok := inner.CommitFaulty(tx, cfg.Mode)
						if measuring.Load() {
							faulty.Add(1)
							if ok && (cfg.Mode == client.FaultEquivReal || cfg.Mode == client.FaultEquivForced) {
								equivOK.Add(1)
							}
						}
					}
					continue
				}
				tx := inner.Begin()
				if err := fn.Body(clientTxAdapter{tx}); err == nil {
					_ = tx.Commit()
				} else {
					tx.Abort()
				}
			}
		}()
	}

	time.Sleep(cfg.Warmup)
	measuring.Store(true)
	t0 := time.Now()
	time.Sleep(cfg.Measure)
	measuring.Store(false)
	elapsed := time.Since(t0).Seconds()
	stop.Store(true)
	wg.Wait()

	res := FailureResult{}
	res.System = "Basil"
	res.Workload = gen.Name()
	res.Clients = cfg.CorrectClients + cfg.ByzClients
	res.Commits = commits.Load()
	res.Attempts = attempts.Load()
	res.MeasureSecs = elapsed
	res.Throughput = float64(res.Commits) / elapsed
	if res.Attempts > 0 {
		res.CommitRate = float64(res.Commits) / float64(res.Attempts)
	}
	res.MeanLatMs, res.P50LatMs, res.P90LatMs, res.P99LatMs, res.P999LatMs = latencyStats(lat.SnapshotHist())
	res.FaultyTxs = faulty.Load()
	res.EquivocationsOK = equivOK.Load()
	if total := float64(res.FaultyTxs) + float64(res.Commits); total > 0 {
		res.FaultShare = float64(res.FaultyTxs) / total
	}
	if cfg.CorrectClients > 0 {
		res.PerCorrectCli = res.Throughput / float64(cfg.CorrectClients)
	}
	return res
}

// txAdapter adapts *basil.Txn to the harness SysTx.
type txAdapter struct{ t *basil.Txn }

func (t txAdapter) Read(k string) ([]byte, error) { return t.t.Read(k) }
func (t txAdapter) Write(k string, v []byte)      { t.t.Write(k, v) }

// clientTxAdapter adapts the internal client transaction.
type clientTxAdapter struct{ t *client.Txn }

func (t clientTxAdapter) Read(k string) ([]byte, error) { return t.t.Read(k) }
func (t clientTxAdapter) Write(k string, v []byte)      { t.t.Write(k, v) }
