package benchharness

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wal"

	"repro/basil"
	"repro/internal/client"
	"repro/internal/tapir"
	"repro/internal/txbase"
	"repro/internal/workload"
)

// Scale groups the knobs that shrink the paper's cluster-scale experiments
// to a single machine. The shapes (ratios, crossovers) are the
// reproduction target; absolute tx/s are not (see docs/benchmarking.md).
type Scale struct {
	Clients    int
	Warmup     time.Duration
	Measure    time.Duration
	YCSBKeys   uint64
	Accounts   uint64 // smallbank
	Users      uint64 // retwis
	TPCC       workload.TPCCConfig
	FaultRates []float64 // fig 7 x-axis points
}

// Quick is the CI-friendly scale: seconds per experiment.
func Quick() Scale {
	return Scale{
		Clients:  8,
		Warmup:   200 * time.Millisecond,
		Measure:  time.Second,
		YCSBKeys: 20_000,
		Accounts: 20_000,
		Users:    2_000,
		TPCC: workload.TPCCConfig{
			Warehouses: 2, Districts: 4, CustomersPer: 60, Items: 400, StockOrders: 3,
		},
		FaultRates: []float64{0, 0.2, 0.4},
	}
}

// Full is the longer-running scale for the cmd tool.
func Full() Scale {
	return Scale{
		Clients:  16,
		Warmup:   time.Second,
		Measure:  5 * time.Second,
		YCSBKeys: 200_000,
		Accounts: 200_000,
		Users:    10_000,
		TPCC: workload.TPCCConfig{
			Warehouses: 4, Districts: 10, CustomersPer: 300, Items: 2_000, StockOrders: 5,
		},
		FaultRates: []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5},
	}
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// --- system factories ---

// NewBasil builds a populated Basil system.
func NewBasil(gen workload.Generator, opts basil.Options) *BasilSystem {
	sys := &BasilSystem{C: basil.NewCluster(opts)}
	Populate(sys, gen)
	return sys
}

// NewBasilTCP builds a populated Basil system whose replicas and clients
// each run on their own TCP transport over loopback, so every protocol
// message crosses the framed canonical wire codec exactly as in a real
// multi-process deployment.
func NewBasilTCP(gen workload.Generator, opts basil.Options) *BasilSystem {
	opts.Net = nil
	opts.TCPLoopback = true
	sys := &BasilSystem{C: basil.NewCluster(opts), Label: "Basil/TCP"}
	Populate(sys, gen)
	return sys
}

// NewTapir builds a populated TAPIR system.
func NewTapir(gen workload.Generator, shards int) *TapirSystem {
	sys := &TapirSystem{C: tapir.NewCluster(tapir.Config{F: 1, Shards: shards})}
	Populate(sys, gen)
	return sys
}

// NewTxBase builds a populated ordered-log baseline.
func NewTxBase(gen workload.Generator, kind txbase.Kind, shards int) *TxBaseSystem {
	sys := &TxBaseSystem{C: txbase.NewCluster(kind, txbase.ClusterConfig{F: 1, Shards: shards})}
	Populate(sys, gen)
	return sys
}

func (s Scale) runCfg() RunConfig {
	return RunConfig{Clients: s.Clients, Warmup: s.Warmup, Measure: s.Measure}
}

// workloadsFor44 builds the three Fig. 4 application workloads.
func (s Scale) workloadsFor44() []workload.Generator {
	return []workload.Generator{
		workload.NewTPCC(s.TPCC),
		workload.NewSmallbank(workload.SmallbankConfig{Accounts: s.Accounts}),
		workload.NewRetwis(workload.RetwisConfig{Users: s.Users}),
	}
}

// Fig4 reproduces Figures 4a (peak throughput) and 4b (mean latency at
// peak) across TAPIR, Basil, TxHotstuff and TxBFT-SMaRt on TPC-C,
// Smallbank and Retwis.
func Fig4(s Scale) (Table, Table) {
	tput := Table{Title: "Fig 4a: application throughput (tx/s)",
		Header: []string{"workload", "TAPIR", "Basil", "TxHotstuff", "TxBFT-SMaRt"}}
	lat := Table{Title: "Fig 4b: mean latency (ms)",
		Header: []string{"workload", "TAPIR", "Basil", "TxHotstuff", "TxBFT-SMaRt"}}
	clientCounts := []int{s.Clients, s.Clients * 3}
	for _, gen := range s.workloadsFor44() {
		batch := 16
		if gen.Name() == "tpcc" {
			batch = 4 // the paper's contended-workload batch size
		}
		factories := []func() System{
			func() System { return NewTapir(gen, 1) },
			func() System { return NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: batch}) },
			func() System { return NewTxBase(gen, txbase.KindHotStuff, 1) },
			func() System { return NewTxBase(gen, txbase.KindPBFT, 1) },
		}
		trow := []string{gen.Name()}
		lrow := []string{gen.Name()}
		for _, mk := range factories {
			// Peak-throughput methodology: sweep client counts, report
			// the best (paper §6.1).
			best, _ := FindPeak(mk, gen, clientCounts, s.runCfg())
			trow = append(trow, f1(best.Throughput))
			lrow = append(lrow, f2(best.MeanLatMs))
		}
		tput.Rows = append(tput.Rows, trow)
		lat.Rows = append(lat.Rows, lrow)
	}
	return tput, lat
}

// ycsbRWU and ycsbRWZ are the §6.2 microbenchmarks (2 reads + 2 writes).
func (s Scale) ycsbRWU() workload.Generator {
	return workload.NewYCSB(workload.YCSBConfig{Keys: s.YCSBKeys, ReadOps: 2, WriteOps: 2})
}

func (s Scale) ycsbRWZ() workload.Generator {
	return workload.NewYCSB(workload.YCSBConfig{Keys: s.YCSBKeys, ReadOps: 2, WriteOps: 2, Theta: 0.9})
}

// Fig5a reproduces the signature-cost ablation: Basil vs Basil-NoProofs on
// RW-U and RW-Z.
func Fig5a(s Scale) Table {
	t := Table{Title: "Fig 5a: impact of signatures (tx/s)",
		Header: []string{"workload", "Basil", "Basil-NoProofs", "speedup"}}
	for _, gen := range []workload.Generator{s.ycsbRWU(), s.ycsbRWZ()} {
		with := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 16})
		r1 := Run(with, gen, s.runCfg())
		with.Close()
		without := NewBasil(gen, basil.Options{F: 1, Shards: 1, NoSignatures: true})
		r2 := Run(without, gen, s.runCfg())
		without.Close()
		sp := 0.0
		if r1.Throughput > 0 {
			sp = r2.Throughput / r1.Throughput
		}
		t.Rows = append(t.Rows, []string{gen.Name(), f1(r1.Throughput), f1(r2.Throughput), f2(sp)})
	}
	return t
}

// Fig5b reproduces the read-quorum experiment: latency/throughput of a
// 24-op read-only workload when waiting for 1, f+1 or 2f+1 read replies.
func Fig5b(s Scale) Table {
	t := Table{Title: "Fig 5b: impact of read quorum size (read-only, 24 ops)",
		Header: []string{"quorum", "clients", "tput (tx/s)", "mean lat (ms)"}}
	gen := workload.ReadOnlyYCSB(s.YCSBKeys, 24)
	f := 1
	for _, q := range []struct {
		label string
		wait  int
	}{{"one read", 1}, {"f+1 reads", f + 1}, {"2f+1 reads", 2*f + 1}} {
		for _, mult := range []int{1, 2, 4} {
			sys := NewBasil(gen, basil.Options{F: f, Shards: 1, BatchSize: 16, ReadWait: q.wait})
			cfg := s.runCfg()
			cfg.Clients = s.Clients * mult / 2
			if cfg.Clients < 1 {
				cfg.Clients = 1
			}
			r := Run(sys, gen, cfg)
			sys.Close()
			t.Rows = append(t.Rows, []string{q.label, fmt.Sprint(cfg.Clients), f1(r.Throughput), f2(r.MeanLatMs)})
		}
	}
	return t
}

// Fig5c reproduces shard scaling on the RW-U workload (3 reads + 3
// writes): Basil vs Basil-NoProofs at 1..3 shards.
func Fig5c(s Scale) Table {
	t := Table{Title: "Fig 5c: impact of shard count (RW-U, 3R3W)",
		Header: []string{"shards", "Basil", "Basil-NoProofs"}}
	gen := workload.NewYCSB(workload.YCSBConfig{Keys: s.YCSBKeys, ReadOps: 3, WriteOps: 3})
	for shards := 1; shards <= 3; shards++ {
		with := NewBasil(gen, basil.Options{F: 1, Shards: shards, BatchSize: 16})
		r1 := Run(with, gen, s.runCfg())
		with.Close()
		without := NewBasil(gen, basil.Options{F: 1, Shards: shards, NoSignatures: true})
		r2 := Run(without, gen, s.runCfg())
		without.Close()
		t.Rows = append(t.Rows, []string{fmt.Sprint(shards), f1(r1.Throughput), f1(r2.Throughput)})
	}
	return t
}

// Fig6a reproduces the fast-path ablation: Basil vs Basil-NoFP on RW-U and
// RW-Z.
func Fig6a(s Scale) Table {
	t := Table{Title: "Fig 6a: fast path impact (tx/s)",
		Header: []string{"workload", "Basil-NoFP", "Basil", "gain"}}
	for _, gen := range []workload.Generator{s.ycsbRWU(), s.ycsbRWZ()} {
		nofp := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 16, DisableFastPath: true})
		r1 := Run(nofp, gen, s.runCfg())
		nofp.Close()
		fp := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 16})
		r2 := Run(fp, gen, s.runCfg())
		fp.Close()
		gain := 0.0
		if r1.Throughput > 0 {
			gain = (r2.Throughput - r1.Throughput) / r1.Throughput * 100
		}
		t.Rows = append(t.Rows, []string{gen.Name(), f1(r1.Throughput), f1(r2.Throughput), f1(gain) + "%"})
	}
	return t
}

// Fig6b reproduces the batching sweep: throughput vs signature batch size.
func Fig6b(s Scale) Table {
	t := Table{Title: "Fig 6b: throughput vs batch size (tx/s)",
		Header: []string{"workload", "b=1", "b=2", "b=4", "b=8", "b=16", "b=32"}}
	for _, gen := range []workload.Generator{s.ycsbRWU(), s.ycsbRWZ()} {
		row := []string{gen.Name()}
		for _, b := range []int{1, 2, 4, 8, 16, 32} {
			sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: b})
			r := Run(sys, gen, s.runCfg())
			sys.Close()
			row = append(row, f1(r.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7 reproduces the Byzantine-client failure experiments on RW-U (7a)
// and RW-Z (7b): per-correct-client throughput as the fraction of faulty
// transactions grows, for each misbehavior strategy.
func Fig7(s Scale, zipf bool) Table {
	name := "Fig 7a: failures, RW-U"
	gen := s.ycsbRWU()
	if zipf {
		name = "Fig 7b: failures, RW-Z"
		gen = s.ycsbRWZ()
	}
	t := Table{Title: name + " (tx/s per correct client)",
		Header: []string{"mode", "target-rate", "measured-share", "tput/correct", "equivOK"}}
	modes := []struct {
		label string
		mode  client.FaultMode
	}{
		{"stall-early", client.FaultStallEarly},
		{"stall-late", client.FaultStallLate},
		{"equiv-forced", client.FaultEquivForced},
		{"equiv-real", client.FaultEquivReal},
	}
	correct := s.Clients
	byz := s.Clients / 2
	for _, m := range modes {
		for _, rate := range s.FaultRates {
			opts := basil.Options{F: 1, Shards: 1, BatchSize: 16,
				// Aggressive recovery timeout: correct clients notice
				// stalls quickly (paper §6.4: "correct clients quickly
				// notice stalled transactions and aggressively finish
				// them").
				PhaseTimeout:        50 * time.Millisecond,
				AllowUnvalidatedST2: m.mode == client.FaultEquivForced}
			sys := NewBasil(gen, opts)
			byzN := byz
			if rate == 0 {
				byzN = 0
			}
			r := RunWithByzClients(sys.C, gen, FailureRunConfig{
				CorrectClients: correct, ByzClients: byzN,
				FaultFraction: rate, Mode: m.mode,
				Warmup: s.Warmup, Measure: s.Measure,
			})
			sys.Close()
			t.Rows = append(t.Rows, []string{
				m.label, f2(rate), f2(r.FaultShare), f2(r.PerCorrectCli), fmt.Sprint(r.EquivocationsOK),
			})
		}
	}
	return t
}

// FigLatency is a reproduction-aid experiment not in the paper: it
// injects a per-message one-way delay on every link, making round-trip
// count — not CPU — the bottleneck, which is the regime the paper's
// testbed operates in. Under it Basil's single-round-trip fast path beats
// the ordered-log baselines by the paper's mechanism: TxHotstuff pays ~9
// message delays and TxBFT-SMaRt ~5 per ordered operation, twice per
// transaction.
func FigLatency(s Scale, delay time.Duration) Table {
	t := Table{Title: fmt.Sprintf("Latency regime (%v one-way delay): commit latency (ms)", delay),
		Header: []string{"system", "mean", "p50", "p90", "p99", "p99.9", "tput (tx/s)"}}
	gen := workload.NewYCSB(workload.YCSBConfig{Keys: s.YCSBKeys, ReadOps: 2, WriteOps: 2})
	cfg := s.runCfg()
	cfg.Clients = 4

	link := transport.LinkPolicy(func(transport.Addr, transport.Addr, any) (time.Duration, bool) {
		return delay, false
	})
	policy := func(net *transport.Local) { net.SetPolicy(link) }

	bs := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 4,
		FastPathWait: 4*delay + 2*time.Millisecond})
	policy(bs.C.Net())
	r := Run(bs, gen, cfg)
	bs.Close()
	t.Rows = append(t.Rows, latencyRow("Basil", r))

	for _, kind := range []txbase.Kind{txbase.KindHotStuff, txbase.KindPBFT} {
		sys := NewTxBase(gen, kind, 1)
		policy(sys.C.Net())
		r := Run(sys, gen, cfg)
		sys.Close()
		t.Rows = append(t.Rows, latencyRow(kind.String(), r))
	}
	return t
}

// latencyRow renders one system's full percentile ladder (ms).
func latencyRow(name string, r Result) []string {
	return []string{name, f2(r.MeanLatMs), f2(r.P50LatMs), f2(r.P90LatMs),
		f2(r.P99LatMs), f2(r.P999LatMs), f1(r.Throughput)}
}

// FigWire is a reproduction-aid experiment not in the paper: the same
// YCSB workload over the in-process Local transport and over real
// loopback TCP sockets carrying the framed canonical wire codec. The gap
// between the rows is the whole cost of serialization, framing, and the
// kernel socket path.
func FigWire(s Scale) Table {
	t := Table{Title: "Wire path: in-process Local vs framed TCP loopback",
		Header: []string{"transport", "tput (tx/s)", "mean lat (ms)", "p99 lat (ms)"}}
	gen := workload.NewYCSB(workload.YCSBConfig{Keys: s.YCSBKeys, ReadOps: 2, WriteOps: 2})
	cfg := s.runCfg()
	opts := basil.Options{F: 1, Shards: 1, BatchSize: 16}

	local := NewBasil(gen, opts)
	r := Run(local, gen, cfg)
	local.Close()
	t.Rows = append(t.Rows, []string{"Local", f1(r.Throughput), f2(r.MeanLatMs), f2(r.P99LatMs)})

	tcp := NewBasilTCP(gen, opts)
	r = Run(tcp, gen, cfg)
	tcp.Close()
	t.Rows = append(t.Rows, []string{"TCP loopback", f1(r.Throughput), f2(r.MeanLatMs), f2(r.P99LatMs)})
	return t
}

// FigBroadcast is the companion microbenchmark to FigWire: it fans one
// representative ST1 request out to a full shard (n=6, f=1) over real
// loopback TCP sockets, comparing the legacy loop of per-destination
// Sends (one body encode per replica) against the encode-once SendAll
// broadcast primitive. The delta is the serialization CPU that every
// ST1/ST2/writeback/abort broadcast used to burn n times.
func FigBroadcast(s Scale) Table {
	t := Table{Title: "Shard broadcast: per-destination Send vs encode-once SendAll (TCP loopback, n=6)",
		Header: []string{"broadcast path", "us/broadcast", "body encodes"}}
	const fan = 6
	// Aim each run at roughly the scale's measurement window (a broadcast
	// is a few µs end to end), clamped to keep quick runs meaningful.
	rounds := int64(s.Measure / (50 * time.Microsecond))
	if rounds < 5_000 {
		rounds = 5_000
	}
	if rounds > 100_000 {
		rounds = 100_000
	}
	msg := &types.ST1Request{
		ReqID: 1, ClientID: 2,
		Meta: &types.TxMeta{
			Timestamp: types.Timestamp{Time: 77, ClientID: 2},
			ReadSet:   []types.ReadEntry{{Key: "alpha", Version: types.Timestamp{Time: 3}}},
			WriteSet:  []types.WriteEntry{{Key: "beta", Value: make([]byte, 128)}},
			Shards:    []int32{0},
		},
	}
	run := func(sendAll bool) float64 {
		book := map[transport.Addr]string{}
		srv, err := transport.NewTCP("127.0.0.1:0", book)
		if err != nil {
			panic(fmt.Sprintf("benchharness: broadcast bench listen: %v", err))
		}
		defer srv.Close()
		var got atomic.Int64
		total := rounds*fan + 1 // +1 for the priming message
		done := make(chan struct{})
		tos := make([]transport.Addr, fan)
		for i := range tos {
			tos[i] = transport.ReplicaAddr(0, int32(i))
			book[tos[i]] = srv.ListenAddr()
			srv.Register(tos[i], transport.HandlerFunc(func(transport.Addr, any) {
				if got.Add(1) == total {
					close(done)
				}
			}))
		}
		cli, err := transport.NewTCP("", book)
		if err != nil {
			panic(fmt.Sprintf("benchharness: broadcast bench dial: %v", err))
		}
		defer cli.Close()
		src := transport.ClientAddr(1)
		// Prime the connection: frames bursting onto a still-dialing
		// connection drop once its queue fills (fail-fast by design), so
		// measure the steady state, not the dial window.
		cli.Send(src, tos[0], msg)
		for waited := 0; got.Load() == 0; waited++ {
			if waited > 10_000 {
				panic("benchharness: broadcast bench: priming message never arrived")
			}
			time.Sleep(time.Millisecond)
		}
		start := time.Now()
		for i := int64(0); i < rounds; i++ {
			if sendAll {
				cli.SendAll(src, tos, msg)
			} else {
				for _, to := range tos {
					cli.Send(src, to, msg)
				}
			}
		}
		// The transport is allowed to drop frames (async network model);
		// a lost delivery must degrade the number, not hang the harness.
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			fmt.Printf("benchharness: broadcast bench timed out at %d/%d deliveries\n",
				got.Load(), rounds*fan)
		}
		return float64(time.Since(start).Microseconds()) / float64(rounds)
	}
	t.Rows = append(t.Rows, []string{"Send x n", f2(run(false)), fmt.Sprintf("%d", fan)})
	t.Rows = append(t.Rows, []string{"SendAll", f2(run(true)), "1"})
	return t
}

// FigParallel is a reproduction-aid experiment not in the paper: it
// measures the replica's parallel ingest pipeline by sweeping the verify
// worker-pool size (1 worker reproduces the old serial message loop)
// against the store locking regime (1 stripe is the old single store
// mutex). The RW-U workload with many closed-loop clients keeps every
// replica's ingest queue busy, so the deltas isolate how much of the
// paper's "BFT at OCC-store parallelism" claim the pipeline recovers.
func FigParallel(s Scale) Table {
	t := Table{Title: "Parallel pipeline: verify workers × store locking (RW-U)",
		Header: []string{"verify-workers", "store", "tput (tx/s)", "mean lat (ms)"}}
	gen := s.ycsbRWU()
	cfg := s.runCfg()
	workerCounts := []int{1, 4}
	if gm := runtime.GOMAXPROCS(0); gm != 1 && gm != 4 {
		workerCounts = append(workerCounts, gm)
	}
	for _, workers := range workerCounts {
		for _, stripes := range []int{1, 0} {
			label := "striped"
			if stripes == 1 {
				label = "global-lock"
			}
			sys := NewBasil(gen, basil.Options{
				F: 1, Shards: 1, BatchSize: 16,
				VerifyWorkers: workers, StoreStripes: stripes,
			})
			r := Run(sys, gen, cfg)
			sys.Close()
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(workers), label, f1(r.Throughput), f2(r.MeanLatMs),
			})
		}
	}
	return t
}

// FigDurability is a reproduction-aid experiment not in the paper: it
// sweeps the WAL group-commit window under concurrent appenders and
// reports what durability actually costs per prepare — the fsync
// amortization curve. One fsync retires every record appended inside a
// window, so the per-append cost collapses as concurrency rises; the
// row shape to look for is fsyncs/append well below 1 from 8 appenders
// up. The final rows run a whole durable Basil cluster (every vote and
// decision logged) against the in-memory baseline on the same workload.
func FigDurability(s Scale) Table {
	t := Table{Title: "Durability: WAL group-commit window sweep (8 appenders) + durable cluster",
		Header: []string{"config", "window", "appends/s", "fsyncs/append"}}
	const (
		appenders = 8
		total     = 4096
	)
	// Negative disables the window entirely (the no-batching baseline);
	// zero would apply wal.DefaultFlushDelay.
	for _, window := range []time.Duration{-1, 100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond, time.Millisecond} {
		dir, err := os.MkdirTemp("", "walbench")
		if err != nil {
			panic(fmt.Sprintf("benchharness: walbench tmpdir: %v", err))
		}
		perSec, fsyncsPer, err := walAppendSweep(dir, window, appenders, total)
		//nolint:basilvet — bench temp dir: a failed cleanup leaks a tmpdir, nothing more, and surfacing it would obscure the sweep error below.
		os.RemoveAll(dir)
		if err != nil {
			panic(fmt.Sprintf("benchharness: walbench: %v", err))
		}
		label := window.String()
		if window < 0 {
			label = "none"
		}
		t.Rows = append(t.Rows, []string{"wal append", label, f1(perSec), fmt.Sprintf("%.3f", fsyncsPer)})
	}

	// End to end: a durable cluster on the RW-U workload vs in-memory.
	// Several ingest workers per replica let one worker's group-commit
	// wait overlap the next worker's append — on a single core this
	// interleaving, not parallelism, is what fills the flush window.
	gen := s.ycsbRWU()
	cfg := s.runCfg()
	mem := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 16, VerifyWorkers: 8})
	r := Run(mem, gen, cfg)
	mem.Close()
	t.Rows = append(t.Rows, []string{"cluster in-memory", "-", f1(r.Throughput), "0"})
	dir, err := os.MkdirTemp("", "walcluster")
	if err != nil {
		panic(fmt.Sprintf("benchharness: walcluster tmpdir: %v", err))
	}
	defer os.RemoveAll(dir)
	dur := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 16, VerifyWorkers: 8,
		DataDir: dir, WALFlushDelay: 200 * time.Microsecond})
	r2 := Run(dur, gen, cfg)
	var appends, syncs uint64
	for i := 0; i < dur.C.ReplicaCount(); i++ {
		st := dur.C.Replica(0, i).WALStats()
		appends += st.Appends
		syncs += st.Syncs
	}
	dur.Close()
	per := "n/a"
	if appends > 0 {
		per = fmt.Sprintf("%.3f", float64(syncs)/float64(appends))
	}
	t.Rows = append(t.Rows, []string{"cluster durable", "200µs", f1(r2.Throughput), per})
	return t
}

// FigCheckpoint is a reproduction-aid experiment not in the paper: it
// runs a durable cluster through the RW-U workload, then walks the
// checkpoint ladder the transaction-state lifecycle introduces. The row
// shape to look for: the watermark-zero checkpoint carries the whole
// history (txstates stay put, the snapshot is large), the first
// watermark-advanced checkpoint pays a one-time collection of everything
// finished, and the steady-state checkpoint after it is cheap because
// both the snapshot and the txState capture are O(live). The flat-in-
// history trajectory across workload sizes is recorded by `make bench`
// in BENCH_checkpoint.json.
func FigCheckpoint(s Scale) Table {
	t := Table{Title: "Checkpoint: watermark collection vs retained history (durable cluster)",
		Header: []string{"phase", "txstates", "duration", "collected"}}
	gen := s.ycsbRWU()
	dir, err := os.MkdirTemp("", "ckptcluster")
	if err != nil {
		panic(fmt.Sprintf("benchharness: ckptcluster tmpdir: %v", err))
	}
	defer os.RemoveAll(dir)
	b := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 16, VerifyWorkers: 8,
		DataDir: dir, WALFlushDelay: 200 * time.Microsecond})
	defer b.Close()
	Run(b, gen, s.runCfg())

	r := b.C.Replica(0, 0)
	t.Rows = append(t.Rows, []string{"after workload", fmt.Sprint(r.TxStateCount()), "-", "-"})

	ckpt := func(label string, wm types.Timestamp) {
		t0 := time.Now()
		if err := r.Checkpoint(wm); err != nil {
			panic(fmt.Sprintf("benchharness: checkpoint: %v", err))
		}
		t.Rows = append(t.Rows, []string{label, fmt.Sprint(r.TxStateCount()),
			time.Since(t0).Round(10 * time.Microsecond).String(),
			fmt.Sprint(r.Stats.TxCollected.Load())})
	}
	// Watermark zero: nothing is collectable, the snapshot retains the
	// entire version and outcome history — the pre-lifecycle shape.
	ckpt("checkpoint, watermark zero (retained)", types.Timestamp{})
	// The workload's timestamps come from the wall clock; a max watermark
	// is above all of them, so this collects everything finished.
	wm := types.Timestamp{Time: ^uint64(0)}
	ckpt("checkpoint, watermark advanced (collects)", wm)
	ckpt("steady-state checkpoint", wm)
	return t
}

// walAppendSweep appends `total` vote-sized records split across
// concurrent appenders and reports throughput and fsync amortization.
func walAppendSweep(dir string, window time.Duration, appenders, total int) (perSec, fsyncsPerAppend float64, err error) {
	l, _, err := wal.Open(wal.Options{Dir: dir, FlushDelay: window})
	if err != nil {
		return 0, 0, err
	}
	rec := make([]byte, 192)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/appenders; i++ {
				if aerr := l.Append(rec); aerr != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := l.StatsSnapshot()
	if cerr := l.Close(); cerr != nil {
		return 0, 0, cerr
	}
	if st.Appends == 0 {
		return 0, 0, fmt.Errorf("no appends completed")
	}
	return float64(st.Appends) / elapsed.Seconds(), float64(st.Syncs) / float64(st.Appends), nil
}

// CommitRates reproduces the §6.1 prose numbers: fast-path rate and commit
// rate per workload for Basil.
func CommitRates(s Scale) Table {
	t := Table{Title: "§6.1 commit & fast-path rates (Basil)",
		Header: []string{"workload", "commit-rate", "fastpath-share"}}
	for _, gen := range s.workloadsFor44() {
		sys := NewBasil(gen, basil.Options{F: 1, Shards: 1, BatchSize: 16})
		r := Run(sys, gen, s.runCfg())
		share := sys.FastPathShare()
		sys.Close()
		t.Rows = append(t.Rows, []string{gen.Name(), f2(r.CommitRate), f2(share)})
	}
	return t
}
