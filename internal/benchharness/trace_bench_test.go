package benchharness

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
)

// traceBenchOut makes `go test -run TestWriteTraceBench` write the
// tracing stage breakdown and disabled-path overhead as JSON (used by
// `make bench` to record the trajectory in BENCH_trace.json). Empty =
// skipped.
var traceBenchOut = flag.String("tracebench", "", "write the trace stage/overhead benchmark results as JSON to this file")

// traceBenchDoc is the BENCH_trace.json schema: the per-stage p50/p99
// latency rows a fully sampled cluster yields, and the unsampled-path
// cost of leaving the tracer compiled into the hot path.
type traceBenchDoc struct {
	Stages   []TraceStageRow `json:"stages"`
	Overhead TraceOverhead   `json:"overhead"`
}

// TestWriteTraceBench runs the tracing experiment and records the
// results. Run via `make bench`:
//
//	go test ./internal/benchharness/ -run TestWriteTraceBench \
//	    -tracebench BENCH_trace.json -v -count=1
//
// The overhead side is the PR's acceptance number: the prepare pipeline
// with a rate-zero tracer threaded through must stay within 2% of bare
// (the assertion lives in the alloc-free test in internal/trace; here
// the measured number is recorded so the trajectory is visible).
func TestWriteTraceBench(t *testing.T) {
	if *traceBenchOut == "" {
		t.Skip("no -tracebench output path; run via make bench")
	}
	s := Quick()
	doc := traceBenchDoc{
		Stages:   TraceStages(s),
		Overhead: MeasureTraceOverhead(s),
	}
	for _, r := range doc.Stages {
		t.Logf("%-24s n=%-6d p50=%8.1fus p99=%8.1fus", r.Stage, r.Count, r.P50Us, r.P99Us)
	}
	o := doc.Overhead
	t.Logf("unsampled Start: %.1f ns/op, %.2f allocs/op", o.StartNsPerOp, o.StartAllocsPerOp)
	t.Logf("pipeline bare %.1f ns/op, tracer-on %.1f ns/op, overhead %+.2f%% (bound: +2%%)",
		o.BareNsPerOp, o.UnsampledNsPerOp, o.OverheadPct)
	if o.StartAllocsPerOp != 0 {
		t.Errorf("unsampled Start/End allocates (%.2f allocs/op); the disabled path must be alloc-free", o.StartAllocsPerOp)
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*traceBenchOut, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
