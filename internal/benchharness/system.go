// Package benchharness drives the paper's evaluation (§6): it runs
// closed-loop clients over any system under test (Basil, TAPIR,
// TxHotstuff, TxBFT-SMaRt), measures throughput and latency the way the
// paper does (latency from first invocation to commit, aborted
// transactions retried with exponential backoff), and defines one
// experiment per figure/table.
package benchharness

import (
	"time"

	"repro/basil"
	"repro/internal/tapir"
	"repro/internal/txbase"
	"repro/internal/types"
	"repro/internal/workload"
)

// SysTx is one system-level transaction attempt.
type SysTx interface {
	workload.Tx
	Commit() error
	Abort()
}

// Session is one closed-loop client's connection.
type Session interface {
	Begin() SysTx
}

// System is a running deployment under test.
type System interface {
	Name() string
	Load(key string, value []byte)
	NewSession() Session
	Close()
}

// --- Basil adapter ---

// BasilSystem adapts basil.Cluster to the harness. It tracks the clients
// it hands out so aggregate protocol stats (fast-path share, recoveries)
// can be reported after a run.
type BasilSystem struct {
	C       *basil.Cluster
	Label   string
	clients []*basil.Client
}

// Name implements System.
func (s *BasilSystem) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "Basil"
}

// Load implements System.
func (s *BasilSystem) Load(key string, value []byte) { s.C.Load(key, value) }

// NewSession implements System.
func (s *BasilSystem) NewSession() Session {
	c := s.C.NewClient()
	s.clients = append(s.clients, c)
	return basilSession{c: c}
}

// Close implements System.
func (s *BasilSystem) Close() { s.C.Close() }

// FastPathShare returns the fraction of finished Prepare phases that took
// the single-round-trip fast path, summed over all sessions.
func (s *BasilSystem) FastPathShare() float64 {
	var fast, slow uint64
	for _, c := range s.clients {
		fast += c.Stats().FastPathTaken.Load()
		slow += c.Stats().SlowPathTaken.Load()
	}
	if fast+slow == 0 {
		return 0
	}
	return float64(fast) / float64(fast+slow)
}

// Recoveries sums dependency-recovery invocations across sessions.
func (s *BasilSystem) Recoveries() uint64 {
	var n uint64
	for _, c := range s.clients {
		n += c.Stats().Recoveries.Load()
	}
	return n
}

// Overloads sums the explicit Overloaded (load-shed) replies the
// sessions consumed — the scenario harness's admission accounting.
func (s *BasilSystem) Overloads() uint64 {
	var n uint64
	for _, c := range s.clients {
		n += c.Stats().Overloads.Load()
	}
	return n
}

type basilSession struct{ c *basil.Client }

func (s basilSession) Begin() SysTx { return basilTx{t: s.c.Begin()} }

type basilTx struct{ t *basil.Txn }

func (t basilTx) Read(k string) ([]byte, error) { return t.t.Read(k) }
func (t basilTx) Write(k string, v []byte)      { t.t.Write(k, v) }
func (t basilTx) Commit() error                 { return t.t.Commit() }
func (t basilTx) Abort()                        { t.t.Abort() }

// Meta exposes the transaction's metadata for serializability auditing;
// internal/scenario discovers it by interface assertion on SysTx.
func (t basilTx) Meta() *types.TxMeta { return t.t.Meta() }

// --- TAPIR adapter ---

// TapirSystem adapts tapir.Cluster.
type TapirSystem struct{ C *tapir.Cluster }

// Name implements System.
func (s *TapirSystem) Name() string { return "TAPIR" }

// Load implements System.
func (s *TapirSystem) Load(key string, value []byte) { s.C.Load(key, value) }

// NewSession implements System.
func (s *TapirSystem) NewSession() Session { return tapirSession{c: s.C.NewClient()} }

// Close implements System.
func (s *TapirSystem) Close() { s.C.Close() }

type tapirSession struct{ c *tapir.Client }

func (s tapirSession) Begin() SysTx { return tapirTx{t: s.c.Begin()} }

type tapirTx struct{ t *tapir.Txn }

func (t tapirTx) Read(k string) ([]byte, error) { return t.t.Read(k) }
func (t tapirTx) Write(k string, v []byte)      { t.t.Write(k, v) }
func (t tapirTx) Commit() error                 { return t.t.Commit() }
func (t tapirTx) Abort()                        { t.t.Abort() }

// --- ordered-log baseline adapter ---

// TxBaseSystem adapts txbase.Cluster (PBFT or HotStuff substrate).
type TxBaseSystem struct{ C *txbase.Cluster }

// Name implements System.
func (s *TxBaseSystem) Name() string { return s.C.Kind().String() }

// Load implements System.
func (s *TxBaseSystem) Load(key string, value []byte) { s.C.Load(key, value) }

// NewSession implements System.
func (s *TxBaseSystem) NewSession() Session { return txbaseSession{c: s.C.NewClient()} }

// Close implements System.
func (s *TxBaseSystem) Close() { s.C.Close() }

type txbaseSession struct{ c *txbase.Client }

func (s txbaseSession) Begin() SysTx { return txbaseTx{t: s.c.Begin()} }

type txbaseTx struct{ t *txbase.Txn }

func (t txbaseTx) Read(k string) ([]byte, error) { return t.t.Read(k) }
func (t txbaseTx) Write(k string, v []byte)      { t.t.Write(k, v) }
func (t txbaseTx) Commit() error                 { return t.t.Commit() }
func (t txbaseTx) Abort()                        { t.t.Abort() }

// Populate loads a generator's initial database into a system.
func Populate(sys System, gen workload.Generator) {
	gen.Populate(sys.Load)
	// Give replica-side load a moment to settle (loads are synchronous in
	// all current systems, but keep the barrier for future transports).
	time.Sleep(time.Millisecond)
}
