package benchharness

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
	"time"

	"repro/internal/workload"
)

// admissionBenchOut makes `go test -run TestWriteAdmissionBench` write the
// overload-scenario comparison as JSON (used by `make bench` to record the
// trajectory in BENCH_admission.json). Empty = skipped.
var admissionBenchOut = flag.String("admissionbench", "", "write the admission overload benchmark results as JSON to this file")

// admissionBenchRow is one scenario in BENCH_admission.json.
type admissionBenchRow struct {
	Config          string  `json:"config"`
	DispatchQueue   int     `json:"dispatch_queue"`
	Spammers        int     `json:"spammers"`
	HonestTputTxps  float64 `json:"honest_tput_txps"`
	HonestP99Ms     float64 `json:"honest_p99_ms"`
	HonestCommits   uint64  `json:"honest_commits"`
	Shed            uint64  `json:"shed_total"`
	ShedReputation  uint64  `json:"shed_reputation_total"`
	HonestOverloads uint64  `json:"honest_overloads"`
	SpamST1PerSec   float64 `json:"spam_st1_per_sec"`
	// BaselineShare is honest throughput as a fraction of the no-spammer
	// baseline row — the admission PR's acceptance number (the limited
	// row must stay high while the unlimited row collapses).
	BaselineShare float64 `json:"baseline_share"`
}

// TestWriteAdmissionBench runs the three overload scenarios (no spammer /
// unlimited+spammer / limited+spammer) and records honest throughput,
// tail latency and shed accounting. Run via `make bench`:
//
//	go test ./internal/benchharness/ -run TestWriteAdmissionBench \
//	    -admissionbench BENCH_admission.json -v -count=1
func TestWriteAdmissionBench(t *testing.T) {
	if *admissionBenchOut == "" {
		t.Skip("no -admissionbench output path; run via make bench")
	}
	s := Quick()
	// Warmup must outlast the 2δ watermark trail (500ms at the scenario's
	// δ=250ms) so the spammer is a scored suspect before measurement
	// starts; the longer measure window is for tail latency.
	s.Warmup = 700 * time.Millisecond
	s.Measure = 2 * s.Measure
	gen := workload.NewYCSB(workload.YCSBConfig{Keys: s.YCSBKeys, ReadOps: 2, WriteOps: 2})

	var rows []admissionBenchRow
	baseline := 0.0
	for _, sc := range AdmissionScenarios() {
		r := RunAdmissionScenario(s, gen, sc)
		row := admissionBenchRow{
			Config:          sc.Label,
			DispatchQueue:   sc.DispatchQueue,
			Spammers:        sc.Spammers,
			HonestTputTxps:  r.Throughput,
			HonestP99Ms:     r.P99LatMs,
			HonestCommits:   r.Commits,
			Shed:            r.Shed,
			ShedReputation:  r.ShedReputation,
			HonestOverloads: r.HonestOverloads,
			SpamST1PerSec:   float64(r.SpamAttempts) / r.MeasureSecs,
		}
		if sc.Spammers == 0 {
			baseline = r.Throughput
		}
		if baseline > 0 {
			row.BaselineShare = r.Throughput / baseline
		}
		rows = append(rows, row)
		t.Logf("%-22s tput=%.1f tx/s (%.0f%% of baseline) p99=%.2fms shed=%d rep=%d overloads=%d spam=%.0f/s",
			row.Config, row.HonestTputTxps, row.BaselineShare*100, row.HonestP99Ms,
			row.Shed, row.ShedReputation, row.HonestOverloads, row.SpamST1PerSec)
	}

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*admissionBenchOut, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
