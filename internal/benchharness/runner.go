package benchharness

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// RunConfig parameterizes one measurement run.
type RunConfig struct {
	// Clients is the closed-loop client count.
	Clients int
	// Warmup is discarded; Measure is the recorded window.
	Warmup  time.Duration
	Measure time.Duration
	// MaxRetries bounds per-transaction retries (0 = retry forever,
	// matching the paper's closed loop).
	MaxRetries int
	Seed       int64
}

// Result aggregates one run.
type Result struct {
	System   string
	Workload string
	Clients  int

	Throughput  float64 // committed tx/s in the measure window
	MeanLatMs   float64 // mean commit latency (first attempt -> commit)
	P50LatMs    float64
	P90LatMs    float64
	P99LatMs    float64
	P999LatMs   float64
	CommitRate  float64 // commits / attempts
	Commits     uint64
	Attempts    uint64
	AppAborts   uint64  // application-logic aborts (not retried)
	Starved     uint64  // transactions that hit MaxRetries
	PerTxpsCli  float64 // committed tx/s per client
	MeasureSecs float64
}

// Run drives gen against sys with closed-loop clients and returns
// aggregate statistics. Latency is measured from a transaction's first
// invocation until its commit returns (paper §6 setup), with aborted
// transactions retried under exponential backoff.
func Run(sys System, gen workload.Generator, cfg RunConfig) Result {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Measure <= 0 {
		cfg.Measure = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}

	var (
		measuring atomic.Bool
		stop      atomic.Bool
		commits   atomic.Uint64
		attempts  atomic.Uint64
		appAborts atomic.Uint64
		starved   atomic.Uint64
	)
	// Commit latency goes through the same log-scale histogram the
	// production metrics plane uses: lock-free, allocation-free recording
	// from every client goroutine, percentiles recovered from the buckets
	// (within one sub-bucket, ≈6%).
	lat := &metrics.Histogram{}

	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		sess := sys.NewSession()
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				fn := gen.Next(rng)
				start := time.Now()
				backoff := 200 * time.Microsecond
				retries := 0
				for !stop.Load() {
					tx := sess.Begin()
					if measuring.Load() {
						attempts.Add(1)
					}
					err := fn.Body(tx)
					if err == nil {
						err = tx.Commit()
					} else {
						tx.Abort()
					}
					if err == nil {
						if measuring.Load() {
							commits.Add(1)
							lat.Since(start)
						}
						break
					}
					if errors.Is(err, workload.ErrWorkloadAbort) {
						// Application rollback: completed, not retried.
						if measuring.Load() {
							appAborts.Add(1)
						}
						break
					}
					retries++
					if cfg.MaxRetries > 0 && retries >= cfg.MaxRetries {
						if measuring.Load() {
							starved.Add(1)
						}
						break
					}
					time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
					if backoff < 10*time.Millisecond {
						backoff *= 2
					}
				}
			}
		}()
	}

	time.Sleep(cfg.Warmup)
	measuring.Store(true)
	t0 := time.Now()
	time.Sleep(cfg.Measure)
	measuring.Store(false)
	elapsed := time.Since(t0).Seconds()
	stop.Store(true)
	wg.Wait()

	res := Result{
		System:      sys.Name(),
		Workload:    gen.Name(),
		Clients:     cfg.Clients,
		Commits:     commits.Load(),
		Attempts:    attempts.Load(),
		AppAborts:   appAborts.Load(),
		Starved:     starved.Load(),
		MeasureSecs: elapsed,
	}
	res.Throughput = float64(res.Commits) / elapsed
	res.PerTxpsCli = res.Throughput / float64(cfg.Clients)
	if res.Attempts > 0 {
		res.CommitRate = float64(res.Commits) / float64(res.Attempts)
	}
	res.MeanLatMs, res.P50LatMs, res.P90LatMs, res.P99LatMs, res.P999LatMs = latencyStats(lat.SnapshotHist())
	return res
}

// latencyStats extracts the latency summary (ms) from a histogram
// snapshot: mean plus the p50/p90/p99/p99.9 percentile ladder.
func latencyStats(s metrics.HistSnapshot) (mean, p50, p90, p99, p999 float64) {
	const ms = 1e6 // ns per ms
	return s.MeanNanos() / ms,
		s.Quantile(0.50) / ms,
		s.Quantile(0.90) / ms,
		s.Quantile(0.99) / ms,
		s.Quantile(0.999) / ms
}

// FindPeak sweeps client counts and returns the run with the highest
// throughput, mirroring the paper's "peak throughput" methodology.
// makeSystem must return a freshly populated system for each trial.
func FindPeak(makeSystem func() System, gen workload.Generator, clientCounts []int, cfg RunConfig) (Result, []Result) {
	var best Result
	var all []Result
	for _, n := range clientCounts {
		sys := makeSystem()
		c := cfg
		c.Clients = n
		r := Run(sys, gen, c)
		sys.Close()
		all = append(all, r)
		if r.Throughput > best.Throughput {
			best = r
		}
	}
	return best, all
}
