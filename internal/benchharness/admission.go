package benchharness

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/basil"
	"repro/internal/client"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// The overload experiment (the admission-control PR's acceptance
// scenario): honest closed-loop clients share a shard with a Byzantine
// line-rate spammer — a faulty.go-style client that broadcasts signed ST1s
// and abandons them (FaultStallEarly), looping with no think time and no
// interest in replies. Its transaction body is blind writes over a private
// key range: a body with reads would throttle itself on round trips, so
// only write-only spam reaches line rate. Against the unlimited seed
// configuration (DispatchQueue < 0) the spam queues ahead of honest
// traffic without bound and honest latency/throughput degrade; against a
// limited shard the replicas shed the excess with explicit Overloaded
// replies, watermark GC charges the spammer for every abandoned prepared
// transaction it collects (admission.noteAbandoned), and once the spammer
// is a suspect, reputation soft-shedding keeps the top quarter of the
// queue available to honest traffic. The scenario therefore runs with a
// short δ and a fast checkpoint cadence so the abandon feed lands inside
// the measurement window (production cadences would score the same
// spammer, just on a 30–60s horizon).

// AdmissionRunConfig parameterizes one overload run.
type AdmissionRunConfig struct {
	Clients  int // honest closed-loop clients
	Spammers int // Byzantine line-rate stall-early clients
	// SpamGen is the spammers' transaction body (default: gen). A
	// write-only generator keeps the spammer at true line rate — reads
	// are synchronous round trips, and a spammer that waits on its own
	// abandoned prepared writes throttles itself.
	SpamGen workload.Generator
	// SpamRate caps each spammer's ST1 broadcasts per second (0 =
	// unpaced). The harness shares one process (and possibly one core)
	// with the replicas it attacks, so an unpaced loop measures CPU
	// contention between attacker and victim rather than intake
	// behavior; a paced spammer models a remote sender saturating the
	// wire while the replicas keep their own cycles.
	SpamRate int
	Warmup   time.Duration
	Measure  time.Duration
	Seed     int64
}

// AdmissionResult extends Result with intake accounting.
type AdmissionResult struct {
	Result
	SpamAttempts    uint64 // ST1 broadcasts the spammers fired (measure window)
	Shed            uint64 // replica admission refusals, all causes
	ShedReputation  uint64 // refusals of suspects below the hard cap
	HonestOverloads uint64 // Overloaded replies honest clients consumed
}

// RunAdmission drives gen with honest clients plus line-rate spammers and
// reports honest-client throughput/latency with shed accounting.
func RunAdmission(cl *basil.Cluster, gen workload.Generator, cfg AdmissionRunConfig) AdmissionResult {
	if cfg.Measure <= 0 {
		cfg.Measure = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	var (
		measuring atomic.Bool
		stop      atomic.Bool
		commits   atomic.Uint64
		attempts  atomic.Uint64
		spam      atomic.Uint64
	)
	lat := &metrics.Histogram{}

	var wg sync.WaitGroup
	honest := make([]*basil.Client, cfg.Clients)
	for i := range honest {
		honest[i] = cl.NewClient()
	}
	for i, c := range honest {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		wg.Add(1)
		go func(c *basil.Client) {
			defer wg.Done()
			for !stop.Load() {
				fn := gen.Next(rng)
				start := time.Now()
				for !stop.Load() {
					tx := c.Begin()
					if measuring.Load() {
						attempts.Add(1)
					}
					err := fn.Body(txAdapter{tx})
					if err == nil {
						err = tx.Commit()
					} else {
						tx.Abort()
					}
					if err == nil {
						if measuring.Load() {
							commits.Add(1)
							lat.Since(start)
						}
						break
					}
					if errors.Is(err, workload.ErrWorkloadAbort) {
						break
					}
					// No harness backoff: the client's own Overloaded-driven
					// pacing is part of what this experiment measures.
				}
			}
		}(c)
	}
	spamGen := cfg.SpamGen
	if spamGen == nil {
		spamGen = gen
	}
	for i := 0; i < cfg.Spammers; i++ {
		c := cl.NewClient()
		rng := rand.New(rand.NewSource(cfg.Seed + 900_001 + int64(i)*104729))
		wg.Add(1)
		go func() {
			defer wg.Done()
			inner := c.Inner()
			// Pacing: fire bursts of burst transactions every tick so the
			// millisecond-granular sleep still reaches SpamRate.
			const tick = 2 * time.Millisecond
			burst := 1 << 30
			if cfg.SpamRate > 0 {
				burst = cfg.SpamRate * int(tick) / int(time.Second)
				if burst < 1 {
					burst = 1
				}
			}
			for !stop.Load() {
				for b := 0; b < burst && !stop.Load(); b++ {
					fn := spamGen.Next(rng)
					tx := inner.Begin()
					if fn.Body(clientTxAdapter{tx}) != nil {
						tx.Abort()
						continue
					}
					inner.CommitFaulty(tx, client.FaultStallEarly)
					if measuring.Load() {
						spam.Add(1)
					}
				}
				if cfg.SpamRate > 0 {
					time.Sleep(tick)
				}
			}
		}()
	}

	time.Sleep(cfg.Warmup)
	measuring.Store(true)
	t0 := time.Now()
	time.Sleep(cfg.Measure)
	measuring.Store(false)
	elapsed := time.Since(t0).Seconds()
	stop.Store(true)
	wg.Wait()

	res := AdmissionResult{}
	res.System = "Basil"
	res.Workload = gen.Name()
	res.Clients = cfg.Clients + cfg.Spammers
	res.Commits = commits.Load()
	res.Attempts = attempts.Load()
	res.MeasureSecs = elapsed
	res.Throughput = float64(res.Commits) / elapsed
	if res.Attempts > 0 {
		res.CommitRate = float64(res.Commits) / float64(res.Attempts)
	}
	res.MeanLatMs, res.P50LatMs, res.P90LatMs, res.P99LatMs, res.P999LatMs = latencyStats(lat.SnapshotHist())
	res.SpamAttempts = spam.Load()
	for s := 0; s < cl.Shards(); s++ {
		for i := 0; i < cl.ReplicaCount(); i++ {
			r := cl.Replica(s, i)
			res.Shed += r.Stats.Shed.Load()
			res.ShedReputation += r.Stats.ShedReputation.Load()
		}
	}
	for _, c := range honest {
		res.HonestOverloads += c.Stats().Overloads.Load()
	}
	return res
}

// blindWriteSpam is the spammers' transaction body: blind writes over a
// private spam:N key range, no reads. Disjoint keys keep the attack a pure
// intake flood — honest transactions never read the spammer's abandoned
// prepared writes, so any honest degradation is queueing, not dependency
// poisoning.
type blindWriteSpam struct{ keys uint64 }

func (g blindWriteSpam) Name() string                          { return "blind-write-spam" }
func (g blindWriteSpam) Populate(func(key string, val []byte)) {}

func (g blindWriteSpam) Next(rng *rand.Rand) workload.TxnFunc {
	key := fmt.Sprintf("spam:%d", rng.Uint64()%g.keys)
	val := make([]byte, 8)
	rng.Read(val)
	return workload.TxnFunc{Name: "spam", Body: func(tx workload.Tx) error {
		tx.Write(key, val)
		return nil
	}}
}

// AdmissionScenario is one row of the overload experiment.
type AdmissionScenario struct {
	Label         string
	DispatchQueue int // negative = admission disabled (the seed baseline)
	Spammers      int
}

// AdmissionScenarios is the canonical three-row comparison: the
// no-spammer baseline and the spammed shard with admission off vs on.
func AdmissionScenarios() []AdmissionScenario {
	return []AdmissionScenario{
		{Label: "unlimited, no spammer", DispatchQueue: -1, Spammers: 0},
		{Label: "unlimited + spammer", DispatchQueue: -1, Spammers: 1},
		{Label: "limited + spammer", DispatchQueue: 24, Spammers: 1},
	}
}

// RunAdmissionScenario builds the cluster for one scenario and runs it.
// Two ingest workers per replica keep service capacity scarce enough that
// a single line-rate spammer genuinely saturates the shard (the admission
// cap must also sit below the pool's task buffer of workers*16, where
// pool backpressure would otherwise mask explicit shedding). δ is 250ms
// with a 100ms checkpoint cadence, so the watermark trails the clock by
// 500ms and abandoned spam transactions feed the reputation scorer inside
// the run; honest attempts re-Begin with a fresh timestamp per retry and
// stay far above the watermark.
func RunAdmissionScenario(s Scale, gen workload.Generator, sc AdmissionScenario) AdmissionResult {
	sys := NewBasil(gen, basil.Options{
		F: 1, Shards: 1, BatchSize: 16,
		VerifyWorkers:   2,
		DispatchQueue:   sc.DispatchQueue,
		PhaseTimeout:    50 * time.Millisecond,
		DeltaMicros:     250_000,
		CheckpointEvery: 100 * time.Millisecond,
	})
	defer sys.Close()
	return RunAdmission(sys.C, gen, AdmissionRunConfig{
		Clients: s.Clients, Spammers: sc.Spammers,
		SpamGen: blindWriteSpam{keys: 512},
		// ~4k ST1 broadcasts/s (24k replica-frames/s on a 6-replica
		// shard) is several times this scale's honest message load:
		// enough to pin the dispatch queue and collapse the unbounded
		// baseline, while the pacing keeps the in-process attacker from
		// simply out-spinning its victims for CPU.
		SpamRate: 4000,
		Warmup:   s.Warmup, Measure: s.Measure,
	})
}

// FigAdmission is the overload experiment table: honest throughput and
// tail latency for each scenario, with shed accounting. The row shape to
// look for: "limited + spammer" holds honest throughput near the
// no-spammer baseline with bounded p99, while "unlimited + spammer" (the
// seed configuration) degrades.
func FigAdmission(s Scale) Table {
	t := Table{Title: "Admission control: honest throughput under a line-rate spammer",
		Header: []string{"config", "tput (tx/s)", "p99 lat (ms)", "shed", "rep-shed", "overloads", "spam-st1/s"}}
	gen := s.ycsbRWU()
	for _, sc := range AdmissionScenarios() {
		r := RunAdmissionScenario(s, gen, sc)
		t.Rows = append(t.Rows, []string{
			sc.Label, f1(r.Throughput), f2(r.P99LatMs),
			fmt.Sprint(r.Shed), fmt.Sprint(r.ShedReputation),
			fmt.Sprint(r.HonestOverloads), f1(float64(r.SpamAttempts) / r.MeasureSecs),
		})
	}
	return t
}
