package benchharness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/types"
)

// FigMetrics is the observability-overhead experiment backing the
// "metrics are free enough to leave on" claim: microbenchmarks of the
// record path (ns/op and allocs/op — the histogram must be 0 allocs) and
// the BenchmarkPrepareParallel pipeline workload with and without live
// instrumentation. The overhead row is the acceptance bound: the
// instrumented hot path must regress the pipeline by less than 2%.
func FigMetrics(s Scale) Table {
	t := Table{
		Title:  "Observability plane: record-path cost and hot-path overhead",
		Header: []string{"path", "ns/op", "allocs/op", "overhead"},
	}

	var h metrics.Histogram
	var c metrics.Counter
	obsNs := nsPerOp(200000, func(i int) { h.Observe(time.Duration(i & 0xFFFFF)) })
	obsAllocs := allocsPerOp(20000, func() { h.Observe(12345) })
	t.Rows = append(t.Rows, []string{"Histogram.Observe", f1(obsNs), f2(obsAllocs), "-"})

	addNs := nsPerOp(200000, func(int) { c.Add(1) })
	addAllocs := allocsPerOp(20000, func() { c.Add(1) })
	t.Rows = append(t.Rows, []string{"Counter.Add", f1(addNs), f2(addAllocs), "-"})

	var hNil *metrics.Histogram
	nilNs := nsPerOp(200000, func(i int) { hNil.Observe(time.Duration(i)) })
	t.Rows = append(t.Rows, []string{"Observe (metrics off, nil handle)", f1(nilNs), "0.00", "-"})

	// The replica hot path: signed disjoint-key prepares delivered twice
	// (the BenchmarkPrepareParallel workload), bare vs carrying exactly
	// the instrumentation the replica wires in: the deliver-latency clock
	// pair plus the store's prepare counters.
	total := 2000
	if s.Measure >= 5*time.Second {
		total = 6000 // the -scale full variant
	}
	bare := bestOf(3, func() float64 { return prepareWorkloadNs(total, false) })
	live := bestOf(3, func() float64 { return prepareWorkloadNs(total, true) })
	t.Rows = append(t.Rows, []string{"prepare pipeline (bare)", f1(bare), "-", "-"})
	t.Rows = append(t.Rows, []string{"prepare pipeline (metrics live)", f1(live), "-",
		fmt.Sprintf("%+.2f%%", (live-bare)/bare*100)})
	return t
}

// prepareWorkloadNs runs `total` signed single-write prepares (each
// delivered twice — re-delivery is routine) through the verify+store
// pipeline on GOMAXPROCS workers and reports ns per delivered pair.
func prepareWorkloadNs(total int, instrumented bool) float64 {
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, 6, 1)
	sv := cryptoutil.NewSigVerifier(reg, total)
	st := store.NewStriped(store.DefaultStripes)
	var hDeliver *metrics.Histogram
	if instrumented {
		mreg := metrics.NewRegistry()
		st.SetMetrics(store.RegistryMetrics(mreg))
		hDeliver = mreg.Histogram("basil_replica_deliver_latency_seconds", "kind", "st1")
	}

	type signed struct {
		meta    *types.TxMeta
		id      types.TxID
		payload []byte
		sig     types.Signature
	}
	msgs := make([]signed, total)
	for i := range msgs {
		m := &types.TxMeta{
			Timestamp: types.Timestamp{Time: uint64(i + 1), ClientID: 1 + uint64(i%64)},
			WriteSet:  []types.WriteEntry{{Key: fmt.Sprintf("key-%04d", i%512), Value: []byte("v")}},
			Shards:    []int32{0},
		}
		id := m.ID()
		signer := int32(i % 6)
		msgs[i] = signed{meta: m, id: id, payload: id[:],
			sig: types.Signature{SignerID: signer, Direct: reg.Signer(signer).Sign(id[:])}}
	}

	deliver := func(m *signed) {
		var t0 time.Time
		if instrumented {
			t0 = time.Now()
		}
		sig := m.sig
		if !sv.Verify(m.payload, &sig) {
			panic("benchmark: bad signature")
		}
		st.CheckAndPrepare(m.meta, m.id)
		if instrumented {
			hDeliver.Since(t0)
		}
	}

	workers := runtime.GOMAXPROCS(0)
	per := total / workers
	var seq atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m := &msgs[int(seq.Add(1))%len(msgs)]
				deliver(m)
				deliver(m)
			}
		}()
	}
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) / float64(per*workers)
}

// nsPerOp times n calls of fn and returns nanoseconds per call.
func nsPerOp(n int, fn func(i int)) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// allocsPerOp counts heap allocations per call (the hand-rolled
// equivalent of testing.AllocsPerRun, usable outside a test binary).
func allocsPerOp(n int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		fn()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(n)
}

// bestOf returns the minimum of k runs (the standard way to strip
// scheduler noise from a fixed-work measurement).
func bestOf(k int, run func() float64) float64 {
	best := run()
	for i := 1; i < k; i++ {
		if v := run(); v < best {
			best = v
		}
	}
	return best
}
