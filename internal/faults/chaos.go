package faults

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/replica"
	"repro/internal/transport"
	"repro/internal/types"
)

// Chaos is a mutable, composable link policy for scenario storms: a
// background seeded drop rate plus a partition set, both changeable while
// traffic flows. Install Policy() once on a transport.Local and drive the
// knobs from a chaos schedule (internal/scenario); the policy reads its
// state under the Chaos mutex on every send, so an Isolate or Heal takes
// effect on the next message.
//
// Partition semantics: a message is cut when exactly one endpoint is in
// the isolated set — isolated nodes form an island that can still talk
// among itself, and everyone else keeps talking around it, which is what
// a real network partition does.
type Chaos struct {
	// mu guards the isolation set, the drop probability and the per-link
	// rng table; the policy callback takes it on every send.
	mu       sync.Mutex
	seed     int64
	dropP    float64
	links    map[[2]transport.Addr]*rand64
	isolated map[transport.Addr]bool
}

// rand64 is a tiny splitmix64 stream: one allocation per link, no
// math/rand lock, deterministic per link in link-call order.
type rand64 struct{ state uint64 }

func (r *rand64) next() float64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return unit(z ^ (z >> 31))
}

// NewChaos builds an inactive chaos policy (no drops, no partition).
func NewChaos(seed int64) *Chaos {
	return &Chaos{
		seed:     seed,
		links:    make(map[[2]transport.Addr]*rand64),
		isolated: make(map[transport.Addr]bool),
	}
}

// Policy returns the LinkPolicy to install on the transport. The policy
// consults the Chaos state on every send, so knob changes apply to
// in-flight traffic immediately.
func (c *Chaos) Policy() transport.LinkPolicy {
	return func(from, to transport.Addr, msg any) (time.Duration, bool) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if len(c.isolated) > 0 && c.isolated[from] != c.isolated[to] {
			return 0, true
		}
		if c.dropP > 0 {
			key := [2]transport.Addr{from, to}
			rng := c.links[key]
			if rng == nil {
				rng = &rand64{state: mix(c.seed, addrBytes(from), addrBytes(to))}
				c.links[key] = rng
			}
			if rng.next() < c.dropP {
				return 0, true
			}
		}
		return 0, false
	}
}

// SetDrop sets the background per-message drop probability (0 disables).
func (c *Chaos) SetDrop(p float64) {
	c.mu.Lock()
	c.dropP = p
	c.mu.Unlock()
}

// Isolate replaces the isolated set: messages between an isolated and a
// non-isolated endpoint are cut until Heal (or the next Isolate).
func (c *Chaos) Isolate(addrs ...transport.Addr) {
	c.mu.Lock()
	c.isolated = make(map[transport.Addr]bool, len(addrs))
	for _, a := range addrs {
		c.isolated[a] = true
	}
	c.mu.Unlock()
}

// Heal clears the partition; background drops (SetDrop) are unaffected.
func (c *Chaos) Heal() {
	c.mu.Lock()
	c.isolated = make(map[transport.Addr]bool)
	c.mu.Unlock()
}

// DiskChaos injects fsync latency into replica write-ahead logs — the
// slow-disk primitive of scenario storms. Wire Delay into
// basil.Options.WALSyncDelay at cluster construction; Arm/Disarm flip it
// mid-run. All methods are safe for concurrent use: the delay is an
// atomic and the target set is written once per Arm under the mutex.
type DiskChaos struct {
	delayNs atomic.Int64
	// mu guards targets; Delay reads it on every fsync.
	mu      sync.Mutex
	targets map[[2]int32]bool // nil or empty = every replica
}

// Arm starts injecting delay into each targeted replica's fsyncs
// (targets as (shard, index) pairs; none = all replicas).
func (d *DiskChaos) Arm(delay time.Duration, targets ...[2]int32) {
	d.mu.Lock()
	d.targets = make(map[[2]int32]bool, len(targets))
	for _, t := range targets {
		d.targets[t] = true
	}
	d.mu.Unlock()
	d.delayNs.Store(int64(delay))
}

// Disarm stops the injection.
func (d *DiskChaos) Disarm() { d.delayNs.Store(0) }

// Delay implements the basil.Options.WALSyncDelay contract.
func (d *DiskChaos) Delay(shard, index int32) time.Duration {
	ns := d.delayNs.Load()
	if ns <= 0 {
		return 0
	}
	d.mu.Lock()
	ok := len(d.targets) == 0 || d.targets[[2]int32{shard, index}]
	d.mu.Unlock()
	if !ok {
		return 0
	}
	return time.Duration(ns)
}

// EquivocatingReplica is the replica-side twin of the equivocating client
// (internal/client/faulty.go FaultEquivReal): while armed, it sends
// *different* signed ST1 votes for the same transaction to different
// recipients — commit to some clients, abort to others — while its stored
// vote, WAL promise and local state stay honest. Which recipient sees
// which vote is a pure function of (seed, transaction, recipient), so an
// armed storm is reproducible from its seed. Arm/Disarm are safe to call
// while the replica serves traffic.
type EquivocatingReplica struct {
	seed  int64
	armed atomic.Bool
}

// NewEquivocatingReplica builds a disarmed equivocator.
func NewEquivocatingReplica(seed int64) *EquivocatingReplica {
	return &EquivocatingReplica{seed: seed}
}

// Arm enables (or disables) the equivocation.
func (e *EquivocatingReplica) Arm(on bool) { e.armed.Store(on) }

// Armed reports whether equivocation is live.
func (e *EquivocatingReplica) Armed() bool { return e.armed.Load() }

// MutateVote implements replica.ByzantineStrategy: the stored vote stays
// honest — equivocation happens per recipient at send time.
func (e *EquivocatingReplica) MutateVote(_ types.TxID, v types.Vote) types.Vote { return v }

// DropRead implements replica.ByzantineStrategy.
func (e *EquivocatingReplica) DropRead(string) bool { return false }

// EquivocateVote implements replica.VoteEquivocator: while armed, half of
// all (transaction, recipient) pairs — chosen by seed-derived hash — get
// the opposite vote.
func (e *EquivocatingReplica) EquivocateVote(id types.TxID, to transport.Addr, vote types.Vote) types.Vote {
	if !e.armed.Load() || vote == types.VoteNone {
		return vote
	}
	if mix(e.seed, id[:], addrBytes(to))&1 == 0 {
		return vote
	}
	if vote == types.VoteCommit {
		return types.VoteAbort
	}
	return types.VoteCommit
}

// Compile-time interface checks: the equivocator must satisfy both the
// base strategy and the per-recipient extension the replica consults.
var (
	_ replica.ByzantineStrategy = (*EquivocatingReplica)(nil)
	_ replica.VoteEquivocator   = (*EquivocatingReplica)(nil)
)
