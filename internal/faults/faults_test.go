package faults

import (
	"testing"

	"repro/internal/types"
)

func TestVoteAbortReplica(t *testing.T) {
	var s VoteAbortReplica
	if s.MutateVote(types.TxID{}, types.VoteCommit) != types.VoteAbort {
		t.Fatal("commit vote not flipped")
	}
	if s.DropRead("k") {
		t.Fatal("reads should pass through")
	}
}

func TestUnresponsiveReplica(t *testing.T) {
	s := UnresponsiveReplica{Reads: true, Votes: true}
	if s.MutateVote(types.TxID{}, types.VoteCommit) != types.VoteNone {
		t.Fatal("vote not suppressed")
	}
	if !s.DropRead("k") {
		t.Fatal("read not dropped")
	}
	quiet := UnresponsiveReplica{}
	if quiet.MutateVote(types.TxID{}, types.VoteAbort) != types.VoteAbort {
		t.Fatal("passive strategy changed the vote")
	}
	if quiet.DropRead("k") {
		t.Fatal("passive strategy dropped a read")
	}
}

func TestFlakyReplicaDistribution(t *testing.T) {
	f := NewFlakyReplica(1, 0.3, 0.2, 0.5)
	aborts, silents, passes := 0, 0, 0
	for i := 0; i < 10_000; i++ {
		switch f.MutateVote(types.TxID{}, types.VoteCommit) {
		case types.VoteAbort:
			aborts++
		case types.VoteNone:
			silents++
		default:
			passes++
		}
	}
	frac := func(n int) float64 { return float64(n) / 10_000 }
	if fa, fs := frac(aborts), frac(silents); fa < 0.25 || fa > 0.35 || fs < 0.15 || fs > 0.25 {
		t.Fatalf("flaky distribution off: abort=%.3f silent=%.3f", fa, fs)
	}
	if passes == 0 {
		t.Fatal("no votes passed through")
	}
	drops := 0
	for i := 0; i < 10_000; i++ {
		if f.DropRead("k") {
			drops++
		}
	}
	if fd := frac(drops); fd < 0.45 || fd > 0.55 {
		t.Fatalf("drop rate off: %.3f", fd)
	}
}
