package faults

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

func TestVoteAbortReplica(t *testing.T) {
	var s VoteAbortReplica
	if s.MutateVote(types.TxID{}, types.VoteCommit) != types.VoteAbort {
		t.Fatal("commit vote not flipped")
	}
	if s.DropRead("k") {
		t.Fatal("reads should pass through")
	}
}

func TestUnresponsiveReplica(t *testing.T) {
	s := UnresponsiveReplica{Reads: true, Votes: true}
	if s.MutateVote(types.TxID{}, types.VoteCommit) != types.VoteNone {
		t.Fatal("vote not suppressed")
	}
	if !s.DropRead("k") {
		t.Fatal("read not dropped")
	}
	quiet := UnresponsiveReplica{}
	if quiet.MutateVote(types.TxID{}, types.VoteAbort) != types.VoteAbort {
		t.Fatal("passive strategy changed the vote")
	}
	if quiet.DropRead("k") {
		t.Fatal("passive strategy dropped a read")
	}
}

// txid derives a distinct transaction id from an integer. Flaky vote
// decisions are deterministic per transaction (a re-delivered vote is
// mishandled identically), so distribution is measured across distinct
// transactions, not repeated calls.
func txid(i int) types.TxID {
	var id types.TxID
	id[0], id[1], id[2], id[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
	return id
}

func TestFlakyReplicaDistribution(t *testing.T) {
	f := NewFlakyReplica(1, 0.3, 0.2, 0.5)
	aborts, silents, passes := 0, 0, 0
	for i := 0; i < 10_000; i++ {
		switch f.MutateVote(txid(i), types.VoteCommit) {
		case types.VoteAbort:
			aborts++
		case types.VoteNone:
			silents++
		default:
			passes++
		}
	}
	frac := func(n int) float64 { return float64(n) / 10_000 }
	if fa, fs := frac(aborts), frac(silents); fa < 0.25 || fa > 0.35 || fs < 0.15 || fs > 0.25 {
		t.Fatalf("flaky distribution off: abort=%.3f silent=%.3f", fa, fs)
	}
	if passes == 0 {
		t.Fatal("no votes passed through")
	}
	drops := 0
	for i := 0; i < 10_000; i++ {
		if f.DropRead("k") {
			drops++
		}
	}
	if fd := frac(drops); fd < 0.45 || fd > 0.55 {
		t.Fatalf("drop rate off: %.3f", fd)
	}
}

// TestFaultScheduleDeterministic is the -race regression for the
// determinism contract of the package doc: fault decisions derive from
// the seed and the identity of the decision point, so the schedule one
// link (or one transaction, or one key) observes is identical across
// same-seed runs no matter how concurrent goroutines interleave. Before
// per-identity derivation, all links shared one rng and any concurrency
// reshuffled every decision.
func TestFaultScheduleDeterministic(t *testing.T) {
	links := [][2]transport.Addr{
		{transport.ClientAddr(1), transport.ReplicaAddr(0, 0)},
		{transport.ClientAddr(1), transport.ReplicaAddr(0, 1)},
		{transport.ClientAddr(2), transport.ReplicaAddr(0, 0)},
		{transport.ReplicaAddr(0, 0), transport.ClientAddr(1)},
	}
	const perLink = 2000

	// One run: every link hammered from its own goroutine, concurrently.
	runDrops := func(seed int64) [][]bool {
		policy := DropLinks(seed, 0.3)
		out := make([][]bool, len(links))
		var wg sync.WaitGroup
		for i, l := range links {
			i, l := i, l
			out[i] = make([]bool, perLink)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < perLink; j++ {
					_, drop := policy(l[0], l[1], nil)
					out[i][j] = drop
				}
			}()
		}
		wg.Wait()
		return out
	}
	a, b := runDrops(99), runDrops(99)
	for i := range links {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("link %d decision %d differs between same-seed runs", i, j)
			}
		}
	}
	// Different seeds must differ somewhere (sanity: the seed is live).
	c := runDrops(100)
	same := true
	for i := range links {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seed 99 and 100 produced identical schedules")
	}

	// Flaky votes: concurrent hammering over a shared id set must agree
	// with a serial same-seed pass, id by id.
	serial := NewFlakyReplica(7, 0.3, 0.2, 0)
	want := make(map[types.TxID]types.Vote)
	for i := 0; i < 500; i++ {
		want[txid(i)] = serial.MutateVote(txid(i), types.VoteCommit)
	}
	conc := NewFlakyReplica(7, 0.3, 0.2, 0)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if got := conc.MutateVote(txid(i), types.VoteCommit); got != want[txid(i)] {
					select {
					case errs <- fmt.Sprintf("tx %d: concurrent vote %v != serial %v", i, got, want[txid(i)]):
					default:
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}

	// Read drops: each key's decision sequence is (seed, key, n)-derived,
	// so two same-seed replicas agree per key even when calls to
	// different keys interleave arbitrarily.
	f1, f2 := NewFlakyReplica(11, 0, 0, 0.4), NewFlakyReplica(11, 0, 0, 0.4)
	keys := []string{"a", "b", "c"}
	seq1 := make(map[string][]bool)
	for i := 0; i < 300; i++ {
		k := keys[i%len(keys)]
		seq1[k] = append(seq1[k], f1.DropRead(k))
	}
	var wg2 sync.WaitGroup
	seq2 := make([][]bool, len(keys))
	for i, k := range keys {
		i, k := i, k
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for j := 0; j < 100; j++ {
				seq2[i] = append(seq2[i], f2.DropRead(k))
			}
		}()
	}
	wg2.Wait()
	for i, k := range keys {
		for j, d := range seq2[i] {
			if d != seq1[k][j] {
				t.Fatalf("key %q decision %d differs between interleavings", k, j)
			}
		}
	}
}

// TestChaosPartition pins the partition semantics: exactly-one-isolated
// endpoints are cut, the isolated island keeps internal connectivity,
// and Heal restores everything.
func TestChaosPartition(t *testing.T) {
	c := NewChaos(1)
	policy := c.Policy()
	r0, r1 := transport.ReplicaAddr(0, 0), transport.ReplicaAddr(0, 1)
	cl := transport.ClientAddr(9)
	pass := func(from, to transport.Addr) bool {
		_, drop := policy(from, to, nil)
		return !drop
	}
	if !pass(cl, r0) || !pass(r0, r1) {
		t.Fatal("inactive chaos dropped traffic")
	}
	c.Isolate(r0)
	if pass(cl, r0) || pass(r0, cl) || pass(r0, r1) {
		t.Fatal("isolated replica still reachable")
	}
	if !pass(cl, r1) {
		t.Fatal("partition cut an unrelated link")
	}
	c.Isolate(r0, r1)
	if !pass(r0, r1) {
		t.Fatal("island-internal link cut")
	}
	if pass(cl, r0) {
		t.Fatal("client reached the island")
	}
	c.Heal()
	if !pass(cl, r0) || !pass(r0, r1) {
		t.Fatal("heal did not restore connectivity")
	}
}

// TestChaosDropDeterministic: the background drop stream is per-link
// seeded, like DropLinks.
func TestChaosDropDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		c := NewChaos(seed)
		c.SetDrop(0.5)
		policy := c.Policy()
		out := make([]bool, 500)
		for i := range out {
			_, out[i] = policy(transport.ClientAddr(1), transport.ReplicaAddr(0, 0), nil)
		}
		return out
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between same-seed runs", i)
		}
	}
	drops := 0
	for _, d := range a {
		if d {
			drops++
		}
	}
	if drops < 150 || drops > 350 {
		t.Fatalf("drop rate implausible for p=0.5: %d/500", drops)
	}
}

// TestDiskChaos pins targeting and arm/disarm.
func TestDiskChaos(t *testing.T) {
	var d DiskChaos
	if d.Delay(0, 0) != 0 {
		t.Fatal("disarmed chaos injected delay")
	}
	d.Arm(3*time.Millisecond, [2]int32{0, 1})
	if d.Delay(0, 1) != 3*time.Millisecond {
		t.Fatal("targeted replica got no delay")
	}
	if d.Delay(0, 0) != 0 {
		t.Fatal("untargeted replica got a delay")
	}
	d.Arm(time.Millisecond) // no targets = everyone
	if d.Delay(1, 4) != time.Millisecond {
		t.Fatal("arm-all missed a replica")
	}
	d.Disarm()
	if d.Delay(0, 1) != 0 {
		t.Fatal("disarm did not stop the injection")
	}
}

// TestEquivocatingReplica pins the per-recipient equivocation contract:
// honest while disarmed, split-brain while armed (some recipients see the
// stored vote, some the opposite), deterministic per seed, and the stored
// vote itself never mutated.
func TestEquivocatingReplica(t *testing.T) {
	e := NewEquivocatingReplica(3)
	id := txid(42)
	to := transport.ClientAddr(1)
	if e.EquivocateVote(id, to, types.VoteCommit) != types.VoteCommit {
		t.Fatal("disarmed equivocator flipped a vote")
	}
	if e.MutateVote(id, types.VoteCommit) != types.VoteCommit {
		t.Fatal("equivocator mutated the stored vote")
	}
	e.Arm(true)
	flipped, honest := 0, 0
	for i := 0; i < 64; i++ {
		switch e.EquivocateVote(id, transport.ClientAddr(int32(i)), types.VoteCommit) {
		case types.VoteAbort:
			flipped++
		case types.VoteCommit:
			honest++
		}
	}
	if flipped == 0 || honest == 0 {
		t.Fatalf("armed equivocator not split-brain: %d flipped, %d honest", flipped, honest)
	}
	// Deterministic per (seed, tx, recipient).
	e2 := NewEquivocatingReplica(3)
	e2.Arm(true)
	for i := 0; i < 64; i++ {
		a := e.EquivocateVote(id, transport.ClientAddr(int32(i)), types.VoteCommit)
		b := e2.EquivocateVote(id, transport.ClientAddr(int32(i)), types.VoteCommit)
		if a != b {
			t.Fatalf("recipient %d: same-seed equivocators disagree", i)
		}
	}
	if e.EquivocateVote(id, to, types.VoteNone) != types.VoteNone {
		t.Fatal("suppressed vote resurrected")
	}
}
