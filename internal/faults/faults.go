// Package faults supplies Byzantine behavior strategies for replicas and
// clients, used by the failure experiments (paper §6.4) and the
// adversarial test suite, plus seeded network-fault link policies for the
// whole-cluster fuzz battery.
//
// Ownership: strategies are installed at cluster construction and invoked
// from replica pool workers and transport dispatchers concurrently; every
// strategy here is either stateless or guards its state with its own
// mutex (seeded RNGs included, so drop decisions are reproducible).
package faults

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/replica"
	"repro/internal/transport"
	"repro/internal/types"
)

// DropLinks returns a seeded LinkPolicy that drops each message with
// probability p, independently per (from, to, message). The policy is
// deterministic for a given seed and call sequence, so a failing fuzz run
// reproduces from its printed seed.
func DropLinks(seed int64, p float64) transport.LinkPolicy {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(from, to transport.Addr, msg any) (time.Duration, bool) {
		mu.Lock()
		drop := rng.Float64() < p
		mu.Unlock()
		return 0, drop
	}
}

// VoteAbortReplica always votes abort, the cheapest way for a Byzantine
// replica to disable Basil's fast path (paper §6.3: "Byzantine replicas,
// by refusing to vote or voting abort, can effectively disable the fast
// path option").
type VoteAbortReplica struct{}

// MutateVote implements replica.ByzantineStrategy.
func (VoteAbortReplica) MutateVote(types.TxID, types.Vote) types.Vote { return types.VoteAbort }

// DropRead implements replica.ByzantineStrategy.
func (VoteAbortReplica) DropRead(string) bool { return false }

// UnresponsiveReplica stays silent on the selected paths, forcing clients
// onto larger read quorums and the slow path (paper §6.4 intro).
type UnresponsiveReplica struct {
	Reads bool // drop read requests
	Votes bool // suppress ST1 votes
}

// MutateVote implements replica.ByzantineStrategy.
func (u UnresponsiveReplica) MutateVote(_ types.TxID, v types.Vote) types.Vote {
	if u.Votes {
		return types.VoteNone
	}
	return v
}

// DropRead implements replica.ByzantineStrategy.
func (u UnresponsiveReplica) DropRead(string) bool { return u.Reads }

// FlakyReplica misbehaves probabilistically, for randomized stress tests.
type FlakyReplica struct {
	// mu guards rng: strategy callbacks arrive from concurrent handlers
	// and math/rand sources are not goroutine-safe.
	mu        sync.Mutex
	rng       *rand.Rand
	PAbort    float64
	PSilent   float64
	PDropRead float64
}

// NewFlakyReplica builds a seeded flaky replica.
func NewFlakyReplica(seed int64, pAbort, pSilent, pDropRead float64) *FlakyReplica {
	return &FlakyReplica{
		rng: rand.New(rand.NewSource(seed)), PAbort: pAbort, PSilent: pSilent, PDropRead: pDropRead,
	}
}

// MutateVote implements replica.ByzantineStrategy.
func (f *FlakyReplica) MutateVote(_ types.TxID, v types.Vote) types.Vote {
	f.mu.Lock()
	p := f.rng.Float64()
	f.mu.Unlock()
	switch {
	case p < f.PSilent:
		return types.VoteNone
	case p < f.PSilent+f.PAbort:
		return types.VoteAbort
	default:
		return v
	}
}

// DropRead implements replica.ByzantineStrategy.
func (f *FlakyReplica) DropRead(string) bool {
	f.mu.Lock()
	p := f.rng.Float64()
	f.mu.Unlock()
	return p < f.PDropRead
}

// Compile-time interface checks.
var (
	_ replica.ByzantineStrategy = VoteAbortReplica{}
	_ replica.ByzantineStrategy = UnresponsiveReplica{}
	_ replica.ByzantineStrategy = (*FlakyReplica)(nil)
)
