// Package faults supplies Byzantine behavior strategies for replicas and
// clients, used by the failure experiments (paper §6.4), the adversarial
// test suite and the production-scenario harness (internal/scenario),
// plus seeded network-fault link policies for the whole-cluster fuzz
// battery and composable chaos injectors (partitions, slow disks,
// replica-side equivocation) for scenario storms.
//
// Ownership: strategies are installed at cluster construction and invoked
// from replica pool workers and transport dispatchers concurrently; every
// strategy here is either stateless or guards its state with its own
// mutex. Random decisions are derived from the seed and the *identity* of
// the decision point (link, transaction, key) rather than from a shared
// call sequence, so a fault schedule is deterministic for a given seed no
// matter how concurrent goroutines interleave — a failing run reproduces
// from its printed seed (regression-tested under -race in
// TestFaultScheduleDeterministic).
package faults

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/replica"
	"repro/internal/transport"
	"repro/internal/types"
)

// mix hashes the seed together with identity material into a stable
// 64-bit value — the root of every derived decision stream. The fnv sum
// is run through a splitmix64 finalizer: fnv-1a alone barely moves the
// high bits when inputs differ only in trailing bytes (sequential
// counters), and unit() reads the top 53 bits.
func mix(seed int64, parts ...[]byte) uint64 {
	h := fnv.New64a()
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], uint64(seed))
	h.Write(s[:])
	for _, p := range parts {
		h.Write(p)
	}
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a hash to [0, 1) with 53 bits of precision.
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// addrBytes serializes an address for hashing.
func addrBytes(a transport.Addr) []byte {
	var b [9]byte
	b[0] = byte(a.Role)
	binary.BigEndian.PutUint32(b[1:], uint32(a.Shard))
	binary.BigEndian.PutUint32(b[5:], uint32(a.Index))
	return b[:]
}

// DropLinks returns a seeded LinkPolicy that drops each message with
// probability p. Each (from, to) link owns an rng derived from the seed
// and the link identity, so the drop pattern seen by one link depends
// only on the seed and that link's own message order — never on how
// traffic on other links interleaves with it. A failing fuzz run
// therefore reproduces from its printed seed.
func DropLinks(seed int64, p float64) transport.LinkPolicy {
	var (
		mu    sync.Mutex
		links = make(map[[2]transport.Addr]*rand.Rand)
	)
	return func(from, to transport.Addr, msg any) (time.Duration, bool) {
		key := [2]transport.Addr{from, to}
		mu.Lock()
		rng := links[key]
		if rng == nil {
			rng = rand.New(rand.NewSource(int64(mix(seed, addrBytes(from), addrBytes(to)))))
			links[key] = rng
		}
		drop := rng.Float64() < p
		mu.Unlock()
		return 0, drop
	}
}

// VoteAbortReplica always votes abort, the cheapest way for a Byzantine
// replica to disable Basil's fast path (paper §6.3: "Byzantine replicas,
// by refusing to vote or voting abort, can effectively disable the fast
// path option").
type VoteAbortReplica struct{}

// MutateVote implements replica.ByzantineStrategy.
func (VoteAbortReplica) MutateVote(types.TxID, types.Vote) types.Vote { return types.VoteAbort }

// DropRead implements replica.ByzantineStrategy.
func (VoteAbortReplica) DropRead(string) bool { return false }

// UnresponsiveReplica stays silent on the selected paths, forcing clients
// onto larger read quorums and the slow path (paper §6.4 intro).
type UnresponsiveReplica struct {
	Reads bool // drop read requests
	Votes bool // suppress ST1 votes
}

// MutateVote implements replica.ByzantineStrategy.
func (u UnresponsiveReplica) MutateVote(_ types.TxID, v types.Vote) types.Vote {
	if u.Votes {
		return types.VoteNone
	}
	return v
}

// DropRead implements replica.ByzantineStrategy.
func (u UnresponsiveReplica) DropRead(string) bool { return u.Reads }

// FlakyReplica misbehaves probabilistically, for randomized stress tests.
// Vote decisions are a pure function of (seed, transaction id): a given
// transaction is mishandled the same way on every delivery and on every
// same-seed run, independent of handler interleaving. Read drops draw
// from a per-key decision sequence (seed, key, nth read of that key),
// guarded by the strategy's own mutex.
type FlakyReplica struct {
	seed      int64
	PAbort    float64
	PSilent   float64
	PDropRead float64

	// mu guards readSeq: read-drop decisions consume a per-key sequence
	// number, and DropRead is called from concurrent read handlers.
	mu      sync.Mutex
	readSeq map[string]uint64
}

// NewFlakyReplica builds a seeded flaky replica.
func NewFlakyReplica(seed int64, pAbort, pSilent, pDropRead float64) *FlakyReplica {
	return &FlakyReplica{
		seed: seed, PAbort: pAbort, PSilent: pSilent, PDropRead: pDropRead,
		readSeq: make(map[string]uint64),
	}
}

// MutateVote implements replica.ByzantineStrategy.
func (f *FlakyReplica) MutateVote(id types.TxID, v types.Vote) types.Vote {
	p := unit(mix(f.seed, id[:]))
	switch {
	case p < f.PSilent:
		return types.VoteNone
	case p < f.PSilent+f.PAbort:
		return types.VoteAbort
	default:
		return v
	}
}

// DropRead implements replica.ByzantineStrategy.
func (f *FlakyReplica) DropRead(key string) bool {
	f.mu.Lock()
	n := f.readSeq[key]
	f.readSeq[key] = n + 1
	f.mu.Unlock()
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], n)
	return unit(mix(f.seed, []byte(key), seq[:])) < f.PDropRead
}

// Compile-time interface checks.
var (
	_ replica.ByzantineStrategy = VoteAbortReplica{}
	_ replica.ByzantineStrategy = UnresponsiveReplica{}
	_ replica.ByzantineStrategy = (*FlakyReplica)(nil)
)
