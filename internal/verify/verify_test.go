package verify

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func ts(t, c uint64) types.Timestamp { return types.Timestamp{Time: t, ClientID: c} }

func tx(id byte, at types.Timestamp, reads map[string]types.Timestamp, writes ...string) CommittedTx {
	w := make(map[string]bool)
	for _, k := range writes {
		w[k] = true
	}
	if reads == nil {
		reads = map[string]types.Timestamp{}
	}
	var txid types.TxID
	txid[0] = id
	return CommittedTx{ID: txid, Ts: at, Reads: reads, Writes: w}
}

func TestEmptyHistoryOK(t *testing.T) {
	var c Checker
	if err := c.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
}

func TestLinearHistoryOK(t *testing.T) {
	var c Checker
	c.Add(tx(1, ts(1, 1), nil, "x"))
	c.Add(tx(2, ts(2, 1), map[string]types.Timestamp{"x": ts(1, 1)}, "x"))
	c.Add(tx(3, ts(3, 1), map[string]types.Timestamp{"x": ts(2, 1)}, "y"))
	if err := c.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckTimestampOrderConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestLostUpdateDetected(t *testing.T) {
	// Both T2 and T3 read x@T1 and write x: classic lost update. The DSG
	// has T2 -> T3 (ww) plus T3 -> T2 (rw, T3 read the version T2
	// overwrote): a cycle.
	var c Checker
	c.Add(tx(1, ts(1, 1), nil, "x"))
	c.Add(tx(2, ts(2, 1), map[string]types.Timestamp{"x": ts(1, 1)}, "x"))
	c.Add(tx(3, ts(3, 1), map[string]types.Timestamp{"x": ts(1, 1)}, "x"))
	err := c.CheckSerializable()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle, got %v", err)
	}
}

func TestWriteSkewDetected(t *testing.T) {
	// T2 reads x, writes y; T3 reads y, writes x; both read the initial
	// versions: write skew, non-serializable.
	var c Checker
	c.Add(tx(1, ts(1, 1), nil, "x", "y"))
	c.Add(tx(2, ts(2, 1), map[string]types.Timestamp{"x": ts(1, 1)}, "y"))
	c.Add(tx(3, ts(3, 1), map[string]types.Timestamp{"y": ts(1, 1)}, "x"))
	err := c.CheckSerializable()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle, got %v", err)
	}
}

func TestPhantomVersionDetected(t *testing.T) {
	var c Checker
	c.Add(tx(1, ts(5, 1), map[string]types.Timestamp{"x": ts(3, 9)}))
	err := c.CheckSerializable()
	if err == nil || !strings.Contains(err.Error(), "phantom") {
		t.Fatalf("expected phantom, got %v", err)
	}
}

func TestGenesisReadOK(t *testing.T) {
	var c Checker
	c.Add(tx(1, ts(2, 1), map[string]types.Timestamp{"x": {}}, "x"))
	if err := c.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateTimestampDetected(t *testing.T) {
	var c Checker
	c.Add(tx(1, ts(1, 1), nil, "x"))
	c.Add(tx(2, ts(1, 1), nil, "y"))
	err := c.CheckSerializable()
	if err == nil || !strings.Contains(err.Error(), "duplicate timestamp") {
		t.Fatalf("expected duplicate-timestamp error, got %v", err)
	}
}

func TestFutureReadDetected(t *testing.T) {
	var c Checker
	c.Add(tx(1, ts(5, 1), nil, "x"))
	c.Add(tx(2, ts(3, 1), map[string]types.Timestamp{"x": ts(5, 1)}))
	if err := c.CheckTimestampOrderConsistent(); err == nil {
		t.Fatal("expected future-read error")
	}
}

func TestSnapshotReadChainOK(t *testing.T) {
	// A long chain of read-modify-writes on two keys stays acyclic.
	var c Checker
	prevX, prevY := ts(0, 0), ts(0, 0)
	for i := uint64(1); i <= 20; i++ {
		at := ts(i, i%3)
		c.Add(tx(byte(i), at, map[string]types.Timestamp{"x": prevX, "y": prevY}, "x", "y"))
		prevX, prevY = at, at
	}
	if err := c.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
}
