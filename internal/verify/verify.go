// Package verify checks Byz-serializability of executions (paper §2.2,
// Appendix B): it rebuilds Adya's direct serialization graph (DSG) from
// the transactions correct clients committed and asserts it is acyclic.
// Tests and the adversarial harness use it as the ground-truth oracle.
//
// Ownership: the checkers are pure functions over execution records the
// caller has already collected; nothing here is concurrent or retains
// state between calls.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// CommittedTx is one committed transaction as observed by a correct
// client: its timestamp, what it read (key -> version read) and what it
// wrote.
type CommittedTx struct {
	ID     types.TxID
	Ts     types.Timestamp
	Reads  map[string]types.Timestamp
	Writes map[string]bool
}

// FromMeta converts transaction metadata into the checker's form.
func FromMeta(meta *types.TxMeta) CommittedTx {
	tx := CommittedTx{
		ID:     meta.ID(),
		Ts:     meta.Timestamp,
		Reads:  make(map[string]types.Timestamp, len(meta.ReadSet)),
		Writes: make(map[string]bool, len(meta.WriteSet)),
	}
	for _, r := range meta.ReadSet {
		tx.Reads[r.Key] = r.Version
	}
	for _, w := range meta.WriteSet {
		tx.Writes[w.Key] = true
	}
	return tx
}

// edge kinds in the DSG.
const (
	edgeWW = "ww"
	edgeWR = "wr"
	edgeRW = "rw"
)

// Checker accumulates committed transactions and validates the DSG.
type Checker struct {
	txs []CommittedTx
}

// Add records one committed transaction.
func (c *Checker) Add(tx CommittedTx) { c.txs = append(c.txs, tx) }

// Len returns the number of recorded transactions.
func (c *Checker) Len() int { return len(c.txs) }

// CheckSerializable rebuilds the DSG and returns an error describing the
// first violation found: a cycle, a read of a version that no committed
// transaction produced (phantom version), or duplicate timestamps.
//
// Version order per key is the MVTSO timestamp order of its writers, per
// the protocol's definition (Appendix B, Lemma 1).
func (c *Checker) CheckSerializable() error {
	n := len(c.txs)
	if n == 0 {
		return nil
	}
	// Index writers per key by timestamp.
	byTs := make(map[types.Timestamp]int, n)
	for i, tx := range c.txs {
		if j, dup := byTs[tx.Ts]; dup && c.txs[j].ID != tx.ID {
			return fmt.Errorf("verify: duplicate timestamp %v used by two transactions", tx.Ts)
		}
		byTs[tx.Ts] = i
	}
	writers := make(map[string][]int) // key -> tx indices sorted by ts
	for i, tx := range c.txs {
		for k := range tx.Writes {
			writers[k] = append(writers[k], i)
		}
	}
	for _, idxs := range writers {
		sort.Slice(idxs, func(a, b int) bool {
			return c.txs[idxs[a]].Ts.Less(c.txs[idxs[b]].Ts)
		})
	}

	adj := make([][]int, n)
	addEdge := func(from, to int) {
		if from != to {
			adj[from] = append(adj[from], to)
		}
	}

	// ww edges: consecutive writers in version order.
	for _, idxs := range writers {
		for i := 0; i+1 < len(idxs); i++ {
			addEdge(idxs[i], idxs[i+1])
		}
	}
	// wr and rw edges from read versions.
	for i, tx := range c.txs {
		for key, ver := range tx.Reads {
			ws := writers[key]
			// Locate the writer of the read version; zero version =
			// genesis (no writer).
			writerIdx := -1
			if !ver.IsZero() {
				j, ok := byTs[ver]
				if !ok || !c.txs[j].Writes[key] {
					return fmt.Errorf("verify: tx %v read phantom version %v of %q", tx.ID, ver, key)
				}
				writerIdx = j
				addEdge(writerIdx, i) // wr
			}
			// rw edge: the version-order successor of the read version.
			for _, w := range ws {
				if ver.Less(c.txs[w].Ts) {
					addEdge(i, w)
					break
				}
			}
		}
	}

	// Cycle detection (iterative DFS with colors).
	color := make([]uint8, n) // 0 white, 1 gray, 2 black
	type frame struct{ node, next int }
	for start := 0; start < n; start++ {
		if color[start] != 0 {
			continue
		}
		stack := []frame{{start, 0}}
		color[start] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				nb := adj[f.node][f.next]
				f.next++
				switch color[nb] {
				case 0:
					color[nb] = 1
					stack = append(stack, frame{nb, 0})
				case 1:
					return fmt.Errorf("verify: DSG cycle through tx %v and tx %v (serializability violated)",
						c.txs[f.node].ID, c.txs[nb].ID)
				}
				continue
			}
			color[f.node] = 2
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// CheckTimestampOrderConsistent additionally verifies the MVTSO claim that
// every DSG edge goes from a lower to a higher timestamp (Appendix B,
// Lemma 1) — a stronger, Basil-specific property.
func (c *Checker) CheckTimestampOrderConsistent() error {
	byTs := make(map[types.Timestamp]int, len(c.txs))
	for i, tx := range c.txs {
		byTs[tx.Ts] = i
	}
	for _, tx := range c.txs {
		for key, ver := range tx.Reads {
			if !ver.IsZero() {
				if !ver.Less(tx.Ts) {
					return fmt.Errorf("verify: tx at %v read version %v of %q from its future", tx.Ts, ver, key)
				}
				if j, ok := byTs[ver]; ok && !c.txs[j].Writes[key] {
					return fmt.Errorf("verify: tx at %v read %q from non-writer", tx.Ts, key)
				}
			}
		}
	}
	return nil
}
