// Package workload implements the paper's four benchmark workloads —
// YCSB-T (§6.2), Smallbank, Retwis and TPC-C (§6.1) — as generators over a
// generic transactional key-value interface, so the same workload drives
// Basil, TAPIR and the ordered-log baselines.
//
// Ownership: a Generator is shared across client goroutines but all
// randomness flows through the per-client *rand.Rand passed to Next, so
// generators hold no mutable state and runs are reproducible from the
// harness seed.
package workload

import (
	"math"
	"math/rand"
)

// Zipf generates zipf-distributed values in [0, n) with parameter theta in
// (0, 1), using the YCSB/Gray et al. algorithm. (The stdlib rand.Zipf
// requires s > 1 and cannot express the paper's 0.75 and 0.9 skews.)
type Zipf struct {
	n       uint64
	theta   float64
	alpha   float64
	zetan   float64
	eta     float64
	zeta2th float64
}

// NewZipf builds a generator over [0, n). theta must be in (0, 1);
// theta = 0 is served by the caller using a uniform draw instead.
func NewZipf(n uint64, theta float64) *Zipf {
	z := &Zipf{n: n, theta: theta}
	z.zetan = zetaStatic(n, theta)
	z.zeta2th = zetaStatic(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2th/z.zetan)
	return z
}

// zetaStatic computes sum_{i=1..n} 1/i^theta. O(n) once at setup; for the
// paper's key counts (≤10M) this is a few tens of milliseconds.
func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / pow(float64(i), theta)
	}
	return sum
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// Next draws the next zipf value using rng.
func (z *Zipf) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// N returns the generator's range.
func (z *Zipf) N() uint64 { return z.n }
