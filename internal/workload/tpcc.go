package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// TPCCConfig configures the TPC-C OLTP benchmark (paper §6.1: 20
// warehouses). Scale knobs exist because the in-process harness replicates
// every key 5f+1 times; the contention structure (payment vs new-order on
// warehouse and district rows) is preserved at any scale.
type TPCCConfig struct {
	Warehouses   int
	Districts    int // per warehouse (spec: 10)
	CustomersPer int // per district (spec: 3000)
	Items        int // spec: 100000
	// StockOrders bounds how many recent orders stock-level scans
	// (spec: 20; large read sets are very expensive under BFT).
	StockOrders int
}

// TPCC implements the five TPC-C transactions over a key-value encoding.
// Following the paper (§6.1), secondary indices are modeled as separate
// tables: a customer-by-last-name index and a latest-order-per-customer
// table.
type TPCC struct {
	cfg TPCCConfig
}

// NewTPCC builds the generator; zero fields get spec-scale or
// harness-scale defaults.
func NewTPCC(cfg TPCCConfig) *TPCC {
	if cfg.Warehouses == 0 {
		cfg.Warehouses = 20
	}
	if cfg.Districts == 0 {
		cfg.Districts = 10
	}
	if cfg.CustomersPer == 0 {
		cfg.CustomersPer = 3000
	}
	if cfg.Items == 0 {
		cfg.Items = 100_000
	}
	if cfg.StockOrders == 0 {
		cfg.StockOrders = 5
	}
	return &TPCC{cfg: cfg}
}

// Name implements Generator.
func (t *TPCC) Name() string { return "tpcc" }

// --- keys ---

func wKey(w int) string       { return fmt.Sprintf("w:%d", w) }
func dKey(w, d int) string    { return fmt.Sprintf("d:%d:%d", w, d) }
func cKey(w, d, c int) string { return fmt.Sprintf("c:%d:%d:%d", w, d, c) }
func cIdxKey(w, d int, ln string) string {
	return fmt.Sprintf("cidx:%d:%d:%s", w, d, ln)
}
func lastOrdKey(w, d, c int) string { return fmt.Sprintf("lastord:%d:%d:%d", w, d, c) }
func oKey(w, d int, oid uint64) string {
	return fmt.Sprintf("o:%d:%d:%d", w, d, oid)
}
func noPtrKey(w, d int) string { return fmt.Sprintf("noptr:%d:%d", w, d) }
func olKey(w, d int, oid uint64, n int) string {
	return fmt.Sprintf("ol:%d:%d:%d:%d", w, d, oid, n)
}
func iKey(i int) string    { return fmt.Sprintf("i:%d", i) }
func sKey(w, i int) string { return fmt.Sprintf("s:%d:%d", w, i) }
func hKey(w, d, c int, seq uint64) string {
	return fmt.Sprintf("h:%d:%d:%d:%d", w, d, c, seq)
}

// --- row codecs: fixed-width field packing ---

func packU64s(vs ...uint64) []byte {
	b := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		b = binary.BigEndian.AppendUint64(b, v)
	}
	return b
}

func unpackU64s(b []byte, n int) []uint64 {
	out := make([]uint64, n)
	for i := 0; i < n && (i+1)*8 <= len(b); i++ {
		out[i] = binary.BigEndian.Uint64(b[i*8:])
	}
	return out
}

// warehouseRow: [ytd, taxBP] (tax in basis points)
// districtRow:  [ytd, nextOID, taxBP]
// customerRow:  [balance(int64), ytdPayment, paymentCnt, deliveryCnt]
// orderRow:     [cid, olCnt, carrier]
// orderLine:    [item, supplyW, qty, amountCents]
// stockRow:     [qty, ytd, orderCnt, remoteCnt]
// itemRow:      [priceCents]
// noPtr:        [oldestUndelivered]

// lastNames renders a TPC-C style last name from a 0..999 seed.
var lastNameParts = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName renders the spec's syllable-composed last name for seed n.
func LastName(n int) string {
	return lastNameParts[n/100%10] + lastNameParts[n/10%10] + lastNameParts[n%10]
}

// Populate implements Generator.
func (t *TPCC) Populate(load func(key string, value []byte)) {
	for w := 0; w < t.cfg.Warehouses; w++ {
		load(wKey(w), packU64s(0, uint64(500+w%1500))) // ytd, tax
		for i := 0; i < t.cfg.Items; i++ {
			if w == 0 {
				load(iKey(i), packU64s(uint64(100+i%9900))) // price
			}
			load(sKey(w, i), packU64s(uint64(10+i%91), 0, 0, 0))
		}
		for d := 0; d < t.cfg.Districts; d++ {
			load(dKey(w, d), packU64s(0, 1, uint64(d%2000)))
			load(noPtrKey(w, d), packU64s(1))
			nameBuckets := make(map[string][]uint64)
			for c := 0; c < t.cfg.CustomersPer; c++ {
				load(cKey(w, d, c), packU64s(uint64(10_000), 0, 0, 0))
				load(lastOrdKey(w, d, c), packU64s(0))
				ln := LastName(c % 1000)
				nameBuckets[ln] = append(nameBuckets[ln], uint64(c))
			}
			for ln, ids := range nameBuckets {
				load(cIdxKey(w, d, ln), packU64s(ids...))
			}
		}
	}
}

// Next implements Generator with the standard mix: NewOrder 45%,
// Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%.
func (t *TPCC) Next(rng *rand.Rand) TxnFunc {
	p := rng.Float64()
	w := rng.Intn(t.cfg.Warehouses)
	d := rng.Intn(t.cfg.Districts)
	switch {
	case p < 0.45:
		return t.newOrder(rng, w, d)
	case p < 0.88:
		return t.payment(rng, w, d)
	case p < 0.92:
		return t.orderStatus(rng, w, d)
	case p < 0.96:
		return t.delivery(rng, w)
	default:
		return t.stockLevel(rng, w, d)
	}
}

// nuRand is the spec's non-uniform random distribution.
func nuRand(rng *rand.Rand, a, x, y int) int {
	c := 123 % (a + 1)
	return (((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

func (t *TPCC) customer(rng *rand.Rand) int {
	return nuRand(rng, 1023, 0, t.cfg.CustomersPer-1)
}

func (t *TPCC) item(rng *rand.Rand) int {
	return nuRand(rng, 8191, 0, t.cfg.Items-1)
}

// newOrder: the order-entry transaction; 1% roll back on an invalid item.
func (t *TPCC) newOrder(rng *rand.Rand, w, d int) TxnFunc {
	c := t.customer(rng)
	nItems := 5 + rng.Intn(11)
	items := make([]int, nItems)
	supply := make([]int, nItems)
	qty := make([]uint64, nItems)
	seen := make(map[int]bool)
	for i := range items {
		it := t.item(rng)
		for seen[it] {
			it = t.item(rng)
		}
		seen[it] = true
		items[i] = it
		supply[i] = w
		if t.cfg.Warehouses > 1 && rng.Intn(100) == 0 {
			supply[i] = rng.Intn(t.cfg.Warehouses) // remote order line
		}
		qty[i] = uint64(1 + rng.Intn(10))
	}
	invalid := rng.Intn(100) == 0
	return TxnFunc{Name: "neworder", Body: func(tx Tx) error {
		if _, err := tx.Read(wKey(w)); err != nil {
			return err
		}
		dRow, err := tx.Read(dKey(w, d))
		if err != nil {
			return err
		}
		df := unpackU64s(dRow, 3)
		oid := df[1]
		tx.Write(dKey(w, d), packU64s(df[0], oid+1, df[2]))
		if _, err := tx.Read(cKey(w, d, c)); err != nil {
			return err
		}
		if invalid {
			return ErrWorkloadAbort // unused item number: rolled back
		}
		var total uint64
		for i, it := range items {
			iRow, err := tx.Read(iKey(it))
			if err != nil {
				return err
			}
			price := unpackU64s(iRow, 1)[0]
			sRow, err := tx.Read(sKey(supply[i], it))
			if err != nil {
				return err
			}
			sf := unpackU64s(sRow, 4)
			newQty := sf[0]
			if newQty >= qty[i]+10 {
				newQty -= qty[i]
			} else {
				newQty = newQty - qty[i] + 91
			}
			remote := uint64(0)
			if supply[i] != w {
				remote = 1
			}
			tx.Write(sKey(supply[i], it), packU64s(newQty, sf[1]+qty[i], sf[2]+1, sf[3]+remote))
			amount := qty[i] * price
			total += amount
			tx.Write(olKey(w, d, oid, i), packU64s(uint64(it), uint64(supply[i]), qty[i], amount))
		}
		tx.Write(oKey(w, d, oid), packU64s(uint64(c), uint64(nItems), 0))
		tx.Write(lastOrdKey(w, d, c), packU64s(oid))
		return nil
	}}
}

// payment: 60% by customer id, 40% by last name through the index table.
func (t *TPCC) payment(rng *rand.Rand, w, d int) TxnFunc {
	amount := uint64(100 + rng.Intn(500_000))
	byName := rng.Intn(100) < 40
	c := t.customer(rng)
	ln := LastName(nuRand(rng, 255, 0, 999) % 1000)
	seq := rng.Uint64()
	return TxnFunc{Name: "payment", Body: func(tx Tx) error {
		wRow, err := tx.Read(wKey(w))
		if err != nil {
			return err
		}
		wf := unpackU64s(wRow, 2)
		tx.Write(wKey(w), packU64s(wf[0]+amount, wf[1]))
		dRow, err := tx.Read(dKey(w, d))
		if err != nil {
			return err
		}
		df := unpackU64s(dRow, 3)
		tx.Write(dKey(w, d), packU64s(df[0]+amount, df[1], df[2]))
		cid := c
		if byName {
			idx, err := tx.Read(cIdxKey(w, d, ln))
			if err != nil {
				return err
			}
			n := len(idx) / 8
			if n == 0 {
				return ErrWorkloadAbort
			}
			ids := unpackU64s(idx, n)
			cid = int(ids[n/2]) // spec: pick the middle customer
		}
		cRow, err := tx.Read(cKey(w, d, cid))
		if err != nil {
			return err
		}
		cf := unpackU64s(cRow, 4)
		tx.Write(cKey(w, d, cid), packU64s(cf[0]-amount, cf[1]+amount, cf[2]+1, cf[3]))
		tx.Write(hKey(w, d, cid, seq), packU64s(amount))
		return nil
	}}
}

// orderStatus: read-only; customer's latest order and its lines.
func (t *TPCC) orderStatus(rng *rand.Rand, w, d int) TxnFunc {
	byName := rng.Intn(100) < 60
	c := t.customer(rng)
	ln := LastName(nuRand(rng, 255, 0, 999) % 1000)
	return TxnFunc{Name: "orderstatus", Body: func(tx Tx) error {
		cid := c
		if byName {
			idx, err := tx.Read(cIdxKey(w, d, ln))
			if err != nil {
				return err
			}
			n := len(idx) / 8
			if n == 0 {
				return ErrWorkloadAbort
			}
			cid = int(unpackU64s(idx, n)[n/2])
		}
		if _, err := tx.Read(cKey(w, d, cid)); err != nil {
			return err
		}
		lo, err := tx.Read(lastOrdKey(w, d, cid))
		if err != nil {
			return err
		}
		oid := unpackU64s(lo, 1)[0]
		if oid == 0 {
			return nil // customer has no orders yet
		}
		oRow, err := tx.Read(oKey(w, d, oid))
		if err != nil {
			return err
		}
		of := unpackU64s(oRow, 3)
		for i := uint64(0); i < of[1]; i++ {
			if _, err := tx.Read(olKey(w, d, oid, int(i))); err != nil {
				return err
			}
		}
		return nil
	}}
}

// delivery: deliver the oldest undelivered order of each district.
func (t *TPCC) delivery(rng *rand.Rand, w int) TxnFunc {
	carrier := uint64(1 + rng.Intn(10))
	return TxnFunc{Name: "delivery", Body: func(tx Tx) error {
		for d := 0; d < t.cfg.Districts; d++ {
			ptrRow, err := tx.Read(noPtrKey(w, d))
			if err != nil {
				return err
			}
			oldest := unpackU64s(ptrRow, 1)[0]
			dRow, err := tx.Read(dKey(w, d))
			if err != nil {
				return err
			}
			nextOID := unpackU64s(dRow, 3)[1]
			if oldest >= nextOID {
				continue // no undelivered orders in this district
			}
			oRow, err := tx.Read(oKey(w, d, oldest))
			if err != nil {
				return err
			}
			of := unpackU64s(oRow, 3)
			cid, olCnt := int(of[0]), of[1]
			var total uint64
			for i := uint64(0); i < olCnt; i++ {
				olRow, err := tx.Read(olKey(w, d, oldest, int(i)))
				if err != nil {
					return err
				}
				total += unpackU64s(olRow, 4)[3]
			}
			tx.Write(oKey(w, d, oldest), packU64s(of[0], of[1], carrier))
			cRow, err := tx.Read(cKey(w, d, cid))
			if err != nil {
				return err
			}
			cf := unpackU64s(cRow, 4)
			tx.Write(cKey(w, d, cid), packU64s(cf[0]+total, cf[1], cf[2], cf[3]+1))
			tx.Write(noPtrKey(w, d), packU64s(oldest+1))
		}
		return nil
	}}
}

// stockLevel: read-only; counts low-stock items across recent orders.
func (t *TPCC) stockLevel(rng *rand.Rand, w, d int) TxnFunc {
	threshold := uint64(10 + rng.Intn(11))
	return TxnFunc{Name: "stocklevel", Body: func(tx Tx) error {
		dRow, err := tx.Read(dKey(w, d))
		if err != nil {
			return err
		}
		nextOID := unpackU64s(dRow, 3)[1]
		low := 0
		start := uint64(1)
		if nextOID > uint64(t.cfg.StockOrders) {
			start = nextOID - uint64(t.cfg.StockOrders)
		}
		for oid := start; oid < nextOID; oid++ {
			oRow, err := tx.Read(oKey(w, d, oid))
			if err != nil {
				return err
			}
			of := unpackU64s(oRow, 3)
			for i := uint64(0); i < of[1]; i++ {
				olRow, err := tx.Read(olKey(w, d, oid, int(i)))
				if err != nil {
					return err
				}
				item := unpackU64s(olRow, 4)[0]
				sRow, err := tx.Read(sKey(w, int(item)))
				if err != nil {
					return err
				}
				if unpackU64s(sRow, 4)[0] < threshold {
					low++
				}
			}
		}
		return nil
	}}
}
