package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// RetwisConfig configures the Retwis social-network workload used by the
// TAPIR evaluation and paper §6.1 (users follow a zipf 0.75 distribution).
type RetwisConfig struct {
	Users uint64
	Theta float64
}

// Retwis emulates a simple social network: user profiles (user:<id>),
// follower/following counters, per-user post lists (posts:<id>) and a
// global post counter. The transaction mix follows the TAPIR paper:
// AddUser 5%, Follow/Unfollow 15%, PostTweet 30%, GetTimeline 50%.
type Retwis struct {
	cfg      RetwisConfig
	zipf     *Zipf
	nextUser atomic.Uint64 // ids beyond the preloaded range, for AddUser
}

// NewRetwis builds the generator (defaults: 10k users, zipf 0.75).
func NewRetwis(cfg RetwisConfig) *Retwis {
	if cfg.Users == 0 {
		cfg.Users = 10_000
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.75
	}
	r := &Retwis{cfg: cfg, zipf: NewZipf(cfg.Users, cfg.Theta)}
	r.nextUser.Store(cfg.Users)
	return r
}

// Name implements Generator.
func (r *Retwis) Name() string { return "retwis" }

func userKey(id uint64) string      { return fmt.Sprintf("user:%d", id) }
func followersKey(id uint64) string { return fmt.Sprintf("followers:%d", id) }
func followingKey(id uint64) string { return fmt.Sprintf("following:%d", id) }
func postsKey(id uint64) string     { return fmt.Sprintf("posts:%d", id) }
func postKey(id uint64) string      { return fmt.Sprintf("post:%d", id) }

// Populate implements Generator.
func (r *Retwis) Populate(load func(key string, value []byte)) {
	for i := uint64(0); i < r.cfg.Users; i++ {
		load(userKey(i), []byte(fmt.Sprintf("user-%d", i)))
		load(followersKey(i), U64(0))
		load(followingKey(i), U64(0))
		load(postsKey(i), U64(0))
	}
	load("postseq", U64(0))
}

func (r *Retwis) user(rng *rand.Rand) uint64 {
	raw := r.zipf.Next(rng)
	return (raw * 0x9E3779B97F4A7C15) % r.cfg.Users
}

// Next implements Generator.
func (r *Retwis) Next(rng *rand.Rand) TxnFunc {
	p := rng.Float64()
	switch {
	case p < 0.05:
		id := r.nextUser.Add(1)
		return TxnFunc{Name: "adduser", Body: func(tx Tx) error {
			// Reads an existing profile (referrer) then creates the user.
			if _, err := tx.Read(userKey(r.user(rng))); err != nil {
				return err
			}
			tx.Write(userKey(id), []byte(fmt.Sprintf("user-%d", id)))
			tx.Write(followersKey(id), U64(0))
			tx.Write(followingKey(id), U64(0))
			tx.Write(postsKey(id), U64(0))
			return nil
		}}
	case p < 0.20:
		a, b := r.user(rng), r.user(rng)
		for b == a {
			b = r.user(rng)
		}
		return TxnFunc{Name: "follow", Body: func(tx Tx) error {
			fa, err := tx.Read(followingKey(a))
			if err != nil {
				return err
			}
			fb, err := tx.Read(followersKey(b))
			if err != nil {
				return err
			}
			tx.Write(followingKey(a), U64(DecU64(fa)+1))
			tx.Write(followersKey(b), U64(DecU64(fb)+1))
			return nil
		}}
	case p < 0.50:
		u := r.user(rng)
		seq := rng.Uint64()
		return TxnFunc{Name: "post", Body: func(tx Tx) error {
			pc, err := tx.Read(postsKey(u))
			if err != nil {
				return err
			}
			n := DecU64(pc)
			tx.Write(postsKey(u), U64(n+1))
			tx.Write(postKey(u<<20|n%(1<<20)), []byte(fmt.Sprintf("tweet-%d-%d", u, seq)))
			return nil
		}}
	default:
		u := r.user(rng)
		return TxnFunc{Name: "timeline", Body: func(tx Tx) error {
			// Read the profile, counters and the last up-to-4 posts.
			if _, err := tx.Read(userKey(u)); err != nil {
				return err
			}
			pc, err := tx.Read(postsKey(u))
			if err != nil {
				return err
			}
			n := DecU64(pc)
			for i := uint64(0); i < 4 && i < n; i++ {
				idx := n - 1 - i
				if _, err := tx.Read(postKey(u<<20 | idx%(1<<20))); err != nil {
					return err
				}
			}
			return nil
		}}
	}
}
