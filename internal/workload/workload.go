package workload

import (
	"encoding/binary"
	"errors"
	"math/rand"
)

// Tx is the transactional interface every system under test exposes
// (Basil, TAPIR, TxHotstuff, TxBFT-SMaRt). Commit/Abort are driven by the
// harness; workload transaction bodies only Read and Write.
type Tx interface {
	Read(key string) ([]byte, error)
	Write(key string, value []byte)
}

// ErrWorkloadAbort is returned by a transaction body that decides to abort
// for application reasons (e.g. TPC-C new-order with an invalid item).
// The harness counts these separately from serializability aborts.
var ErrWorkloadAbort = errors.New("workload: application abort")

// TxnFunc is one transaction body. The harness wraps it with Begin/Commit.
type TxnFunc struct {
	// Name labels the transaction type for per-type statistics.
	Name string
	// Body performs the reads and writes.
	Body func(tx Tx) error
}

// Generator produces a workload: an initial database and a stream of
// transactions.
type Generator interface {
	// Name labels the workload.
	Name() string
	// Populate emits every initial (key, value) pair.
	Populate(load func(key string, value []byte))
	// Next draws the next transaction using the caller's rng (each
	// closed-loop client owns one rng; generators must be stateless or
	// internally synchronized).
	Next(rng *rand.Rand) TxnFunc
}

// --- small codec helpers shared by the workloads ---

// U64 encodes v as 8 big-endian bytes.
func U64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// DecU64 decodes an 8-byte value; zero on short input.
func DecU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 encodes a signed value.
func I64(v int64) []byte { return U64(uint64(v)) }

// DecI64 decodes a signed value.
func DecI64(b []byte) int64 { return int64(DecU64(b)) }
