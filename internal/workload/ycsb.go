package workload

import (
	"fmt"
	"math/rand"
)

// YCSBConfig configures the YCSB-T microbenchmark of paper §6.2: identical
// transactions of ReadOps reads and WriteOps read-modify-writes over Keys
// keys, drawn uniformly (Theta = 0) or zipf-skewed (RW-Z uses Theta 0.9).
type YCSBConfig struct {
	Keys      uint64
	ReadOps   int
	WriteOps  int
	Theta     float64 // 0 = uniform; paper uses 0.9 for RW-Z
	ValueSize int
}

// YCSB is the YCSB-T generator.
type YCSB struct {
	cfg  YCSBConfig
	zipf *Zipf
	name string
}

// NewYCSB builds the generator. The paper's configurations:
//
//	RW-U: Theta 0, 10M keys, 2 reads + 2 writes
//	RW-Z: Theta 0.9, 10M keys, 2 reads + 2 writes
func NewYCSB(cfg YCSBConfig) *YCSB {
	if cfg.Keys == 0 {
		cfg.Keys = 1 << 20
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 64
	}
	y := &YCSB{cfg: cfg}
	if cfg.Theta > 0 {
		y.zipf = NewZipf(cfg.Keys, cfg.Theta)
		y.name = fmt.Sprintf("ycsb-rw-z%.2f", cfg.Theta)
	} else {
		y.name = "ycsb-rw-u"
	}
	return y
}

// Name implements Generator.
func (y *YCSB) Name() string { return y.name }

// Key renders key i.
func (y *YCSB) Key(i uint64) string { return fmt.Sprintf("ycsb:%d", i) }

// Populate implements Generator.
func (y *YCSB) Populate(load func(key string, value []byte)) {
	val := make([]byte, y.cfg.ValueSize)
	for i := uint64(0); i < y.cfg.Keys; i++ {
		load(y.Key(i), val)
	}
}

func (y *YCSB) nextKey(rng *rand.Rand) uint64 {
	if y.zipf != nil {
		// Scramble so hot keys scatter across shards, as YCSB does.
		raw := y.zipf.Next(rng)
		return (raw * 0x9E3779B97F4A7C15) % y.cfg.Keys
	}
	return rng.Uint64() % y.cfg.Keys
}

// Next implements Generator: WriteOps read-modify-writes followed by
// ReadOps plain reads over distinct keys.
func (y *YCSB) Next(rng *rand.Rand) TxnFunc {
	total := y.cfg.ReadOps + y.cfg.WriteOps
	keys := make([]uint64, 0, total)
	seen := make(map[uint64]bool, total)
	for len(keys) < total {
		k := y.nextKey(rng)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	writes := y.cfg.WriteOps
	stamp := rng.Uint64()
	return TxnFunc{
		Name: "rw",
		Body: func(tx Tx) error {
			for i, k := range keys {
				key := y.Key(k)
				v, err := tx.Read(key)
				if err != nil {
					return err
				}
				if i < writes {
					nv := make([]byte, len(v))
					copy(nv, v)
					if len(nv) < 8 {
						nv = make([]byte, 8)
					}
					for j := 0; j < 8; j++ {
						nv[j] = byte(stamp >> (8 * j))
					}
					tx.Write(key, nv)
				}
			}
			return nil
		},
	}
}

// ReadOnly returns a read-only YCSB variant with n reads per transaction
// (paper Fig. 5b uses 24).
func ReadOnlyYCSB(keys uint64, reads int) *YCSB {
	y := NewYCSB(YCSBConfig{Keys: keys, ReadOps: reads, WriteOps: 0})
	y.name = fmt.Sprintf("ycsb-ro%d", reads)
	return y
}
