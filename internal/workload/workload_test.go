package workload

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// memTx is an in-memory Tx for running workload bodies without a cluster.
type memTx struct {
	db     map[string][]byte
	writes map[string][]byte
}

func newMemTx(db map[string][]byte) *memTx {
	return &memTx{db: db, writes: make(map[string][]byte)}
}

func (t *memTx) Read(key string) ([]byte, error) {
	if v, ok := t.writes[key]; ok {
		return v, nil
	}
	return t.db[key], nil
}

func (t *memTx) Write(key string, value []byte) { t.writes[key] = value }

func (t *memTx) commit() {
	for k, v := range t.writes {
		t.db[k] = v
	}
	t.writes = make(map[string][]byte)
}

// runWorkload executes n transactions of gen against an in-memory store.
func runWorkload(t *testing.T, gen Generator, n int, seed int64) map[string][]byte {
	t.Helper()
	db := make(map[string][]byte)
	gen.Populate(func(k string, v []byte) { db[k] = append([]byte(nil), v...) })
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		fn := gen.Next(rng)
		tx := newMemTx(db)
		err := fn.Body(tx)
		if err != nil && !errors.Is(err, ErrWorkloadAbort) {
			t.Fatalf("%s tx %d (%s): %v", gen.Name(), i, fn.Name, err)
		}
		if err == nil {
			tx.commit()
		}
	}
	return db
}

func TestZipfBounds(t *testing.T) {
	for _, theta := range []float64{0.5, 0.75, 0.9, 0.99} {
		z := NewZipf(1000, theta)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 10_000; i++ {
			v := z.Next(rng)
			if v >= 1000 {
				t.Fatalf("theta=%v out of range: %d", theta, v)
			}
		}
	}
}

func TestZipfSkewIncreasesWithTheta(t *testing.T) {
	share := func(theta float64) float64 {
		z := NewZipf(10_000, theta)
		rng := rand.New(rand.NewSource(7))
		hot := 0
		const draws = 50_000
		for i := 0; i < draws; i++ {
			if z.Next(rng) < 100 { // top 1% of keys
				hot++
			}
		}
		return float64(hot) / draws
	}
	s75, s90 := share(0.75), share(0.90)
	if !(s90 > s75 && s75 > 0.05) {
		t.Fatalf("skew ordering wrong: s75=%.3f s90=%.3f", s75, s90)
	}
}

func TestZipfDeterministicForSeed(t *testing.T) {
	f := func(seed int64) bool {
		z := NewZipf(500, 0.9)
		a := z.Next(rand.New(rand.NewSource(seed)))
		b := z.Next(rand.New(rand.NewSource(seed)))
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestYCSBDistinctKeysPerTx(t *testing.T) {
	y := NewYCSB(YCSBConfig{Keys: 100, ReadOps: 3, WriteOps: 3, Theta: 0.9})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		fn := y.Next(rng)
		db := make(map[string][]byte)
		y.Populate(func(k string, v []byte) { db[k] = v })
		tx := newMemTx(db)
		if err := fn.Body(tx); err != nil {
			t.Fatal(err)
		}
		if len(tx.writes) != 3 {
			t.Fatalf("expected 3 writes, got %d", len(tx.writes))
		}
	}
}

func TestYCSBReadOnly(t *testing.T) {
	y := ReadOnlyYCSB(100, 24)
	rng := rand.New(rand.NewSource(3))
	db := make(map[string][]byte)
	y.Populate(func(k string, v []byte) { db[k] = v })
	fn := y.Next(rng)
	tx := newMemTx(db)
	if err := fn.Body(tx); err != nil {
		t.Fatal(err)
	}
	if len(tx.writes) != 0 {
		t.Fatal("read-only workload wrote")
	}
}

func TestSmallbankConservation(t *testing.T) {
	// Money moves between accounts but (modulo deposits/withdrawals,
	// which are external flows) the running of sendPayment and amalgamate
	// alone conserves totals. Run the full mix and verify per-transaction
	// deltas match the transaction type.
	sb := NewSmallbank(SmallbankConfig{Accounts: 50, HotAccounts: 10})
	db := make(map[string][]byte)
	sb.Populate(func(k string, v []byte) { db[k] = append([]byte(nil), v...) })
	total := func() int64 {
		var sum int64
		for _, v := range db {
			sum += DecI64(v)
		}
		return sum
	}
	before := total()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		fn := sb.Next(rng)
		if fn.Name != "sendpayment" && fn.Name != "amalgamate" && fn.Name != "balance" {
			continue
		}
		tx := newMemTx(db)
		err := fn.Body(tx)
		if err != nil && !errors.Is(err, ErrWorkloadAbort) {
			t.Fatal(err)
		}
		if err == nil {
			tx.commit()
		}
		if got := total(); got != before {
			t.Fatalf("tx %d (%s) changed total: %d -> %d", i, fn.Name, before, got)
		}
	}
}

func TestSmallbankHotSkew(t *testing.T) {
	sb := NewSmallbank(SmallbankConfig{Accounts: 10_000, HotAccounts: 100, HotProbability: 0.9})
	rng := rand.New(rand.NewSource(5))
	hot := 0
	const draws = 10_000
	for i := 0; i < draws; i++ {
		if sb.account(rng) < 100 {
			hot++
		}
	}
	if share := float64(hot) / draws; math.Abs(share-0.9) > 0.03 {
		t.Fatalf("hot share %.3f, want ~0.9", share)
	}
}

func TestSmallbankRuns(t *testing.T) {
	runWorkload(t, NewSmallbank(SmallbankConfig{Accounts: 100}), 500, 1)
}

func TestRetwisRuns(t *testing.T) {
	db := runWorkload(t, NewRetwis(RetwisConfig{Users: 100}), 500, 2)
	if len(db) == 0 {
		t.Fatal("retwis produced no state")
	}
}

func TestRetwisFollowSymmetric(t *testing.T) {
	r := NewRetwis(RetwisConfig{Users: 50})
	db := make(map[string][]byte)
	r.Populate(func(k string, v []byte) { db[k] = append([]byte(nil), v...) })
	rng := rand.New(rand.NewSource(11))
	followers, following := uint64(0), uint64(0)
	for i := 0; i < 400; i++ {
		fn := r.Next(rng)
		if fn.Name != "follow" {
			continue
		}
		tx := newMemTx(db)
		if err := fn.Body(tx); err != nil {
			t.Fatal(err)
		}
		tx.commit()
	}
	for i := uint64(0); i < 50; i++ {
		followers += DecU64(db[followersKey(i)])
		following += DecU64(db[followingKey(i)])
	}
	if followers != following {
		t.Fatalf("follow counters asymmetric: %d followers vs %d following", followers, following)
	}
}

func TestTPCCRuns(t *testing.T) {
	gen := NewTPCC(TPCCConfig{Warehouses: 1, Districts: 2, CustomersPer: 40, Items: 60, StockOrders: 2})
	runWorkload(t, gen, 400, 3)
}

func TestTPCCNewOrderAdvancesOID(t *testing.T) {
	gen := NewTPCC(TPCCConfig{Warehouses: 1, Districts: 1, CustomersPer: 10, Items: 20, StockOrders: 2})
	db := make(map[string][]byte)
	gen.Populate(func(k string, v []byte) { db[k] = append([]byte(nil), v...) })
	rng := rand.New(rand.NewSource(4))
	orders := 0
	for i := 0; i < 200 && orders < 10; i++ {
		fn := gen.Next(rng)
		if fn.Name != "neworder" {
			continue
		}
		tx := newMemTx(db)
		err := fn.Body(tx)
		if errors.Is(err, ErrWorkloadAbort) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		tx.commit()
		orders++
	}
	next := unpackU64s(db[dKey(0, 0)], 3)[1]
	if next < uint64(orders) {
		t.Fatalf("district nextOID %d after %d orders", next, orders)
	}
	// Every created order must have its order lines present.
	for oid := uint64(1); oid < next; oid++ {
		oRow, ok := db[oKey(0, 0, oid)]
		if !ok {
			continue // rolled-back slot
		}
		cnt := unpackU64s(oRow, 3)[1]
		for i := uint64(0); i < cnt; i++ {
			if _, ok := db[olKey(0, 0, oid, int(i))]; !ok {
				t.Fatalf("order %d missing line %d", oid, i)
			}
		}
	}
}

func TestTPCCLastNameIndex(t *testing.T) {
	gen := NewTPCC(TPCCConfig{Warehouses: 1, Districts: 1, CustomersPer: 200, Items: 20})
	db := make(map[string][]byte)
	gen.Populate(func(k string, v []byte) { db[k] = v })
	// Every customer must be reachable through its last-name bucket.
	for c := 0; c < 200; c++ {
		ln := LastName(c % 1000)
		idx, ok := db[cIdxKey(0, 0, ln)]
		if !ok {
			t.Fatalf("missing index bucket %s", ln)
		}
		found := false
		for _, id := range unpackU64s(idx, len(idx)/8) {
			if id == uint64(c) {
				found = true
			}
		}
		if !found {
			t.Fatalf("customer %d not in bucket %s", c, ln)
		}
	}
}

func TestLastNameSyllables(t *testing.T) {
	if LastName(0) != "BARBARBAR" || LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("syllable composition wrong: %q %q", LastName(0), LastName(371))
	}
}

func TestCodecs(t *testing.T) {
	if DecU64(U64(12345)) != 12345 || DecI64(I64(-7)) != -7 {
		t.Fatal("codec round trip failed")
	}
	if DecU64(nil) != 0 || DecU64([]byte{1}) != 0 {
		t.Fatal("short input should decode to zero")
	}
}
