package workload

import (
	"fmt"
	"math/rand"
)

// SmallbankConfig configures the Smallbank banking benchmark (paper §6.1:
// one million accounts, 1,000 of which receive 90% of accesses).
type SmallbankConfig struct {
	Accounts       uint64
	HotAccounts    uint64
	HotProbability float64
	InitialBalance int64
}

// Smallbank implements the six-transaction Smallbank mix over two tables:
// savings (sav:<id>) and checking (chk:<id>).
type Smallbank struct {
	cfg SmallbankConfig
}

// NewSmallbank builds the generator with the paper's defaults when fields
// are zero.
func NewSmallbank(cfg SmallbankConfig) *Smallbank {
	if cfg.Accounts == 0 {
		cfg.Accounts = 1_000_000
	}
	if cfg.HotAccounts == 0 {
		cfg.HotAccounts = 1000
	}
	if cfg.HotProbability == 0 {
		cfg.HotProbability = 0.9
	}
	if cfg.InitialBalance == 0 {
		cfg.InitialBalance = 10_000
	}
	if cfg.HotAccounts > cfg.Accounts {
		cfg.HotAccounts = cfg.Accounts
	}
	return &Smallbank{cfg: cfg}
}

// Name implements Generator.
func (s *Smallbank) Name() string { return "smallbank" }

func savKey(id uint64) string { return fmt.Sprintf("sav:%d", id) }
func chkKey(id uint64) string { return fmt.Sprintf("chk:%d", id) }

// Populate implements Generator.
func (s *Smallbank) Populate(load func(key string, value []byte)) {
	bal := I64(s.cfg.InitialBalance)
	for i := uint64(0); i < s.cfg.Accounts; i++ {
		load(savKey(i), bal)
		load(chkKey(i), bal)
	}
}

// account draws an account id with the configured hotspot skew.
func (s *Smallbank) account(rng *rand.Rand) uint64 {
	if s.cfg.HotAccounts >= s.cfg.Accounts || rng.Float64() < s.cfg.HotProbability {
		return rng.Uint64() % s.cfg.HotAccounts
	}
	return s.cfg.HotAccounts + rng.Uint64()%(s.cfg.Accounts-s.cfg.HotAccounts)
}

// twoAccounts draws two distinct accounts.
func (s *Smallbank) twoAccounts(rng *rand.Rand) (uint64, uint64) {
	a := s.account(rng)
	b := s.account(rng)
	for b == a {
		b = s.account(rng)
	}
	return a, b
}

// Next implements Generator with the standard OLTPBench mix:
// Amalgamate 15%, Balance 15%, DepositChecking 15%, SendPayment 25%,
// TransactSavings 15%, WriteCheck 15%.
func (s *Smallbank) Next(rng *rand.Rand) TxnFunc {
	p := rng.Float64()
	switch {
	case p < 0.15:
		a, b := s.twoAccounts(rng)
		return TxnFunc{Name: "amalgamate", Body: func(tx Tx) error { return s.amalgamate(tx, a, b) }}
	case p < 0.30:
		a := s.account(rng)
		return TxnFunc{Name: "balance", Body: func(tx Tx) error { return s.balance(tx, a) }}
	case p < 0.45:
		a := s.account(rng)
		amt := int64(rng.Intn(100) + 1)
		return TxnFunc{Name: "deposit", Body: func(tx Tx) error { return s.depositChecking(tx, a, amt) }}
	case p < 0.70:
		a, b := s.twoAccounts(rng)
		amt := int64(rng.Intn(100) + 1)
		return TxnFunc{Name: "sendpayment", Body: func(tx Tx) error { return s.sendPayment(tx, a, b, amt) }}
	case p < 0.85:
		a := s.account(rng)
		amt := int64(rng.Intn(100) + 1)
		return TxnFunc{Name: "transactsav", Body: func(tx Tx) error { return s.transactSavings(tx, a, amt) }}
	default:
		a := s.account(rng)
		amt := int64(rng.Intn(100) + 1)
		return TxnFunc{Name: "writecheck", Body: func(tx Tx) error { return s.writeCheck(tx, a, amt) }}
	}
}

func (s *Smallbank) amalgamate(tx Tx, a, b uint64) error {
	sv, err := tx.Read(savKey(a))
	if err != nil {
		return err
	}
	cv, err := tx.Read(chkKey(a))
	if err != nil {
		return err
	}
	bv, err := tx.Read(chkKey(b))
	if err != nil {
		return err
	}
	total := DecI64(sv) + DecI64(cv)
	tx.Write(savKey(a), I64(0))
	tx.Write(chkKey(a), I64(0))
	tx.Write(chkKey(b), I64(DecI64(bv)+total))
	return nil
}

func (s *Smallbank) balance(tx Tx, a uint64) error {
	if _, err := tx.Read(savKey(a)); err != nil {
		return err
	}
	_, err := tx.Read(chkKey(a))
	return err
}

func (s *Smallbank) depositChecking(tx Tx, a uint64, amt int64) error {
	cv, err := tx.Read(chkKey(a))
	if err != nil {
		return err
	}
	tx.Write(chkKey(a), I64(DecI64(cv)+amt))
	return nil
}

func (s *Smallbank) sendPayment(tx Tx, a, b uint64, amt int64) error {
	av, err := tx.Read(chkKey(a))
	if err != nil {
		return err
	}
	bv, err := tx.Read(chkKey(b))
	if err != nil {
		return err
	}
	if DecI64(av) < amt {
		return ErrWorkloadAbort
	}
	tx.Write(chkKey(a), I64(DecI64(av)-amt))
	tx.Write(chkKey(b), I64(DecI64(bv)+amt))
	return nil
}

func (s *Smallbank) transactSavings(tx Tx, a uint64, amt int64) error {
	sv, err := tx.Read(savKey(a))
	if err != nil {
		return err
	}
	if DecI64(sv)+amt < 0 {
		return ErrWorkloadAbort
	}
	tx.Write(savKey(a), I64(DecI64(sv)+amt))
	return nil
}

func (s *Smallbank) writeCheck(tx Tx, a uint64, amt int64) error {
	sv, err := tx.Read(savKey(a))
	if err != nil {
		return err
	}
	cv, err := tx.Read(chkKey(a))
	if err != nil {
		return err
	}
	bal := DecI64(sv) + DecI64(cv)
	if bal < amt {
		amt++ // overdraft penalty, per the benchmark spec
	}
	tx.Write(chkKey(a), I64(DecI64(cv)-amt))
	return nil
}
