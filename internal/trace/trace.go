// Package trace is the sampling distributed tracer behind the admin
// server's /traces endpoints. A transaction is sampled once, at client
// Begin, and the decision rides the wire as types.TraceContext on every
// carrier request, so client, transport and replica stages of one
// transaction share a trace id without any cross-process coordination.
// Components record completed spans into a bounded lock-free ring; span
// trees are assembled only at query time, so the record path never takes
// a lock and the unsampled path never reads the clock or allocates.
//
// Beyond probabilistic sampling, a transaction that hits a shed
// (Overloaded), client recovery, or the fallback protocol is *force*
// captured: the client upgrades its context mid-flight and records a
// trace.forced marker span, so the traces an operator most needs — the
// tail — are always present regardless of the sampling rate.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/types"
)

// Span is one completed, named interval of a traced transaction. Spans
// are recorded after the fact (no open-span handle, nothing to close on
// error paths) and carry their parent by span id; Parent 0 attaches the
// span to the trace's root. The root span itself is recorded by Finish
// under the name RootSpan.
type Span struct {
	TraceID uint64
	SpanID  uint64
	Parent  uint64
	Name    string
	Node    string // recording component, e.g. "r0.2" or "c7"
	Start   int64  // UnixNano
	End     int64  // UnixNano
	Attrs   string // optional "k=v" detail, single string to avoid map allocs
}

// RootSpan is the span name Finish records for the whole transaction;
// the HTTP renderers treat it as the tree root.
const RootSpan = "txn"

// Options configures a Tracer. The zero value is usable: sampling off,
// default ring and top-K sizes.
type Options struct {
	// SampleRate is the probability in [0,1] that Begin samples a new
	// transaction. Forced capture (Force) ignores it.
	SampleRate float64
	// RingSize bounds the completed-span ring (default 4096 spans).
	RingSize int
	// TopK bounds the slowest-transaction index served at /traces/slow
	// (default 32).
	TopK int
	// Clock overrides the span clock (tests); default time.Now().UnixNano.
	Clock func() int64
}

// Tracer records spans for sampled transactions. All methods are safe
// for concurrent use and nil-safe: a nil *Tracer samples nothing and
// records nothing, so call sites need no tracing-enabled branches.
type Tracer struct {
	rate  float64
	clock func() int64
	seed  uint64
	seq   atomic.Uint64 // trace id source
	spans atomic.Uint64 // span id source
	ring  spanRing

	// mu guards the slow top-K heap only — never held on the span record
	// path, and a leaf: nothing is called while holding it.
	mu   sync.Mutex
	slow []SlowEntry // min-heap by DurNanos, capacity topK
	topK int
}

// SlowEntry summarizes one finished transaction in the top-K-by-duration
// index behind /traces/slow.
type SlowEntry struct {
	TraceID  uint64 `json:"-"`
	Trace    string `json:"trace_id"` // hex form of TraceID
	DurNanos int64  `json:"dur_ns"`
	Status   string `json:"status"`
	End      int64  `json:"end_unix_ns"`
}

// New builds a Tracer with the given options.
func New(o Options) *Tracer {
	if o.RingSize <= 0 {
		o.RingSize = 4096
	}
	if o.TopK <= 0 {
		o.TopK = 32
	}
	if o.Clock == nil {
		o.Clock = func() int64 { return time.Now().UnixNano() }
	}
	t := &Tracer{
		rate:  o.SampleRate,
		clock: o.Clock,
		seed:  uint64(time.Now().UnixNano()) | 1,
		topK:  o.TopK,
	}
	t.ring.init(o.RingSize)
	return t
}

// splitmix64 is the SplitMix64 finalizer: a cheap, stateless mixer that
// turns the sequential trace counter into well-distributed ids, which
// double as the sampling coin.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Begin makes the sampling decision for a new transaction and returns
// its wire context plus the root span id the client parents its
// lifecycle spans under. The trace id is assigned even when unsampled so
// a later Force can upgrade the same transaction without re-keying.
// Alloc-free on every path.
func (t *Tracer) Begin() (types.TraceContext, uint64) {
	if t == nil {
		return types.TraceContext{}, 0
	}
	id := splitmix64(t.seq.Add(1) ^ t.seed)
	tc := types.TraceContext{TraceID: id}
	if t.rate >= 1 {
		tc.Sampled = true
	} else if t.rate > 0 {
		// Use the top 53 bits of the id as the sampling coin.
		tc.Sampled = float64(id>>11)/(1<<53) < t.rate
	}
	return tc, t.spans.Add(1)
}

// Now reads the tracer's clock (the fake one in tests): the begun anchor
// a client takes at transaction start so a mid-flight Force still yields
// a root span with a real start time. Returns 0 on a nil tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Force upgrades tc to sampled (no-op if it already is) and records a
// trace.forced marker span naming the reason ("overload", "recovery",
// "fallback"), so forced traces are distinguishable from lucky ones.
func (t *Tracer) Force(tc *types.TraceContext, node, reason string) {
	if t == nil || tc == nil || tc.TraceID == 0 {
		return
	}
	if !tc.Sampled {
		tc.Sampled = true
	}
	now := t.clock()
	t.put(&Span{
		TraceID: tc.TraceID, SpanID: t.spans.Add(1),
		Name: "trace.forced", Node: node,
		Start: now, End: now, Attrs: "reason=" + reason,
	})
}

// Start returns the span start timestamp, or 0 when the transaction is
// unsampled (or the tracer nil) — the unsampled path is a single branch
// with no clock read and no allocation. Pass the result to End.
func (t *Tracer) Start(tc types.TraceContext) int64 {
	if t == nil || !tc.Sampled {
		return 0
	}
	return t.clock()
}

// End completes a span opened by Start. A zero start (unsampled) is a
// no-op, so call sites never branch on sampling themselves.
func (t *Tracer) End(tc types.TraceContext, node, name string, parent uint64, start int64) {
	if start == 0 || t == nil {
		return
	}
	t.Record(tc, node, name, parent, start, t.clock())
}

// Record stores a completed span with explicit endpoints — for stages
// whose timestamps were captured elsewhere (e.g. a frame's enqueue time
// measured in the sender but recorded after the flush). No-op when start
// is 0 or the context is unsampled.
func (t *Tracer) Record(tc types.TraceContext, node, name string, parent uint64, start, end int64) {
	if t == nil || start == 0 || !tc.Sampled {
		return
	}
	t.put(&Span{
		TraceID: tc.TraceID, SpanID: t.spans.Add(1), Parent: parent,
		Name: name, Node: node, Start: start, End: end,
	})
}

// Finish seals a sampled transaction: records the root span (from the
// begun timestamp taken at Begin time) and feeds the top-K slow index.
// status is free-form ("commit", "abort", "failed").
func (t *Tracer) Finish(tc types.TraceContext, node string, root uint64, begun int64, status string) {
	if t == nil || !tc.Sampled || begun == 0 {
		return
	}
	end := t.clock()
	t.put(&Span{
		TraceID: tc.TraceID, SpanID: root,
		Name: RootSpan, Node: node, Start: begun, End: end,
		Attrs: "status=" + status,
	})
	t.noteSlow(SlowEntry{
		TraceID: tc.TraceID, Trace: hexID(tc.TraceID),
		DurNanos: end - begun, Status: status, End: end,
	})
}

// put stores a completed span in the ring.
func (t *Tracer) put(s *Span) { t.ring.put(s) }

// Spans snapshots the completed-span ring, oldest first.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// Slow returns the top-K slowest finished transactions, slowest first.
func (t *Tracer) Slow() []SlowEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SlowEntry, len(t.slow))
	copy(out, t.slow)
	t.mu.Unlock()
	// The heap is min-first; present slowest first.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].DurNanos > out[j-1].DurNanos; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// noteSlow offers a finished transaction to the bounded min-heap of the
// slowest seen so far.
func (t *Tracer) noteSlow(e SlowEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.slow) < t.topK {
		t.slow = append(t.slow, e)
		t.siftUp(len(t.slow) - 1)
		return
	}
	if e.DurNanos <= t.slow[0].DurNanos {
		return
	}
	t.slow[0] = e
	t.siftDown(0)
}

func (t *Tracer) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.slow[p].DurNanos <= t.slow[i].DurNanos {
			return
		}
		t.slow[p], t.slow[i] = t.slow[i], t.slow[p]
		i = p
	}
}

func (t *Tracer) siftDown(i int) {
	n := len(t.slow)
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < n && t.slow[l].DurNanos < t.slow[min].DurNanos {
			min = l
		}
		if r < n && t.slow[r].DurNanos < t.slow[min].DurNanos {
			min = r
		}
		if min == i {
			return
		}
		t.slow[i], t.slow[min] = t.slow[min], t.slow[i]
		i = min
	}
}

// spanRing is a bounded lock-free overwrite ring of completed spans:
// writers claim a slot with one atomic add and store a pointer; readers
// snapshot by loading every slot. Overwrites lose the oldest spans, which
// is the intended behavior for a recent-traces window.
type spanRing struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64
}

func (r *spanRing) init(n int) { r.slots = make([]atomic.Pointer[Span], n) }

func (r *spanRing) put(s *Span) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(s)
}

// snapshot returns the live spans oldest-slot-first. Ordering across a
// wrap is approximate (concurrent writers), which is fine for grouping
// by trace id at render time.
func (r *spanRing) snapshot() []*Span {
	n := uint64(len(r.slots))
	head := r.next.Load()
	out := make([]*Span, 0, n)
	for off := uint64(0); off < n; off++ {
		if s := r.slots[(head+off)%n].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

const hexDigits = "0123456789abcdef"

// hexID formats a trace id as 16 lowercase hex digits without fmt.
func hexID(id uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}
