package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/types"
)

// fakeClock is a deterministic span clock.
type fakeClock struct {
	mu  sync.Mutex
	now int64
}

func (c *fakeClock) tick(d int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

func newTestTracer(rate float64) (*Tracer, *fakeClock) {
	c := &fakeClock{now: 1}
	return New(Options{SampleRate: rate, RingSize: 128, TopK: 4,
		Clock: func() int64 { return c.tick(1000) }}), c
}

func TestBeginSampling(t *testing.T) {
	always, _ := newTestTracer(1)
	never, _ := newTestTracer(0)
	for i := 0; i < 100; i++ {
		tc, root := always.Begin()
		if !tc.Sampled || tc.TraceID == 0 || root == 0 {
			t.Fatalf("rate 1: got %+v root %d", tc, root)
		}
		tc, _ = never.Begin()
		if tc.Sampled {
			t.Fatal("rate 0: sampled")
		}
		if tc.TraceID == 0 {
			t.Fatal("rate 0: trace id must still be assigned for later Force")
		}
	}
	half, _ := newTestTracer(0.5)
	sampled := 0
	for i := 0; i < 2000; i++ {
		if tc, _ := half.Begin(); tc.Sampled {
			sampled++
		}
	}
	if sampled < 700 || sampled > 1300 {
		t.Fatalf("rate 0.5 sampled %d/2000", sampled)
	}
}

func TestSpanLifecycleAndFinish(t *testing.T) {
	tr, _ := newTestTracer(1)
	tc, root := tr.Begin()
	begun := tr.Start(tc)
	s := tr.Start(tc)
	tr.End(tc, "c0", "client.read", root, s)
	tr.Record(tc, "r0.1", "replica.check", 0, 5000, 6000)
	tr.Finish(tc, "c0", root, begun, "commit")

	spans := tr.Spans()
	byName := map[string]*Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	r := byName[RootSpan]
	if r == nil || r.SpanID != root || r.Attrs != "status=commit" || r.End <= r.Start {
		t.Fatalf("bad root span %+v", r)
	}
	if rd := byName["client.read"]; rd == nil || rd.Parent != root || rd.Node != "c0" {
		t.Fatalf("bad read span %+v", byName["client.read"])
	}
	if ck := byName["replica.check"]; ck == nil || ck.Start != 5000 || ck.End != 6000 {
		t.Fatalf("bad check span %+v", byName["replica.check"])
	}
	slow := tr.Slow()
	if len(slow) != 1 || slow[0].TraceID != tc.TraceID || slow[0].Status != "commit" {
		t.Fatalf("bad slow index %+v", slow)
	}
}

func TestForceUpgradesContext(t *testing.T) {
	tr, _ := newTestTracer(0)
	tc, _ := tr.Begin()
	if tc.Sampled {
		t.Fatal("precondition: unsampled")
	}
	tr.Force(&tc, "c2", "overload")
	if !tc.Sampled {
		t.Fatal("Force must set Sampled")
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "trace.forced" || spans[0].Attrs != "reason=overload" {
		t.Fatalf("bad forced marker %+v", spans)
	}
	// Subsequent spans on the upgraded context record normally.
	s := tr.Start(tc)
	if s == 0 {
		t.Fatal("upgraded context must record")
	}
}

func TestSlowIndexKeepsTopK(t *testing.T) {
	tr, _ := newTestTracer(1)
	for i := 0; i < 20; i++ {
		tc, root := tr.Begin()
		begun := int64(1)
		// Fabricate durations 1..20ms by stepping the fake clock i times.
		for j := 0; j <= i; j++ {
			tr.Start(tc)
		}
		tr.Finish(tc, "c0", root, begun, "commit")
	}
	slow := tr.Slow()
	if len(slow) != 4 {
		t.Fatalf("topK: got %d entries", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].DurNanos > slow[i-1].DurNanos {
			t.Fatalf("slow not sorted desc: %+v", slow)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(Options{SampleRate: 1, RingSize: 8, TopK: 2,
		Clock: func() int64 { return 7 }})
	tc := types.TraceContext{TraceID: 9, Sampled: true}
	for i := 0; i < 100; i++ {
		tr.Record(tc, "n", "s", 0, 1, 2)
	}
	if got := len(tr.Spans()); got != 8 {
		t.Fatalf("ring holds %d spans, want 8", got)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tc, root := tr.Begin()
	if tc != (types.TraceContext{}) || root != 0 {
		t.Fatal("nil Begin must return zero values")
	}
	if tr.Start(tc) != 0 {
		t.Fatal("nil Start must return 0")
	}
	tr.End(tc, "n", "s", 0, 0)
	tr.Record(tc, "n", "s", 0, 1, 2)
	tr.Finish(tc, "n", 0, 1, "commit")
	tr.Force(&tc, "n", "overload")
	if tr.Spans() != nil || tr.Slow() != nil {
		t.Fatal("nil snapshots must be nil")
	}
}

// TestUnsampledPathAllocFree pins the disabled-path contract (mirrors
// metrics' TestRecordPathAllocFree): Begin, Start, End, Record and
// Finish on an unsampled transaction allocate nothing.
func TestUnsampledPathAllocFree(t *testing.T) {
	tr, _ := newTestTracer(0)
	tc, root := tr.Begin()
	if n := testing.AllocsPerRun(100, func() {
		tc2, _ := tr.Begin()
		s := tr.Start(tc2)
		tr.End(tc2, "n", "s", 0, s)
		tr.Record(tc2, "n", "s", 0, s, s)
		tr.Finish(tc2, "n", root, s, "commit")
	}); n != 0 {
		t.Fatalf("unsampled path allocates %v/op", n)
	}
	_ = tc
	var nilTr *Tracer
	if n := testing.AllocsPerRun(100, func() {
		tc2, _ := nilTr.Begin()
		s := nilTr.Start(tc2)
		nilTr.End(tc2, "n", "s", 0, s)
	}); n != 0 {
		t.Fatalf("nil-tracer path allocates %v/op", n)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr, _ := newTestTracer(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tc, root := tr.Begin()
				begun := tr.Start(tc)
				s := tr.Start(tc)
				tr.End(tc, "n", "client.read", root, s)
				tr.Finish(tc, "n", root, begun, "commit")
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			_ = tr.Spans()
			_ = tr.Slow()
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if len(tr.Spans()) == 0 || len(tr.Slow()) != 4 {
		t.Fatal("concurrent recording lost everything")
	}
}

func TestTracesHandlerJSON(t *testing.T) {
	tr, _ := newTestTracer(1)
	tc, root := tr.Begin()
	begun := tr.Start(tc)
	s := tr.Start(tc)
	tr.End(tc, "c0", "client.prepare", root, s)
	tr.Record(tc, "r0.1", "replica.check", 0, begun+10, begun+20)
	tr.Force(&tc, "c0", "fallback")
	tr.Finish(tc, "c0", root, begun, "abort")

	rec := httptest.NewRecorder()
	TracesHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var got struct{ Traces []JSONTrace }
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(got.Traces) != 1 {
		t.Fatalf("got %d traces", len(got.Traces))
	}
	jt := got.Traces[0]
	if jt.Status != "abort" || jt.Forced != "fallback" || jt.Incomplete {
		t.Fatalf("bad trace header %+v", jt)
	}
	names := map[string]bool{}
	for _, c := range jt.Root.Children {
		names[c.Name] = true
	}
	if !names["client.prepare"] || !names["replica.check"] || !names["trace.forced"] {
		t.Fatalf("missing children: %+v", jt.Root.Children)
	}

	// Limit parameter.
	rec = httptest.NewRecorder()
	TracesHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/traces?n=0", nil))
	if rec.Code != 200 {
		t.Fatalf("limit request: %d", rec.Code)
	}
}

func TestSlowHandlerJSON(t *testing.T) {
	tr, _ := newTestTracer(1)
	tc, root := tr.Begin()
	begun := tr.Start(tc)
	tr.Finish(tc, "c0", root, begun, "commit")

	rec := httptest.NewRecorder()
	SlowHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/traces/slow", nil))
	var got struct {
		Slow []struct {
			Trace  string     `json:"trace_id"`
			DurMs  float64    `json:"dur_ms"`
			Status string     `json:"status"`
			Tree   *JSONTrace `json:"trace"`
		}
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(got.Slow) != 1 || got.Slow[0].Status != "commit" || got.Slow[0].Tree == nil {
		t.Fatalf("bad slow rows: %+v", got.Slow)
	}
	if got.Slow[0].Trace != hexID(tc.TraceID) {
		t.Fatalf("trace id %q, want %q", got.Slow[0].Trace, hexID(tc.TraceID))
	}
}

func TestIncompleteTraceSynthesizesRoot(t *testing.T) {
	tr, _ := newTestTracer(1)
	tc := types.TraceContext{TraceID: 42, Sampled: true}
	tr.Record(tc, "r0.0", "replica.check", 0, 100, 300)
	traces := assemble(tr.Spans(), 0)
	if len(traces) != 1 || !traces[0].Incomplete {
		t.Fatalf("expected one incomplete trace, got %+v", traces)
	}
	if traces[0].StartUnixNs != 100 || traces[0].DurUs != 0 {
		t.Fatalf("bad synthesized envelope %+v", traces[0])
	}
}

func TestFlightRecorder(t *testing.T) {
	f := NewFlightRecorder("r0.1", 4)
	for i := 0; i < 10; i++ {
		f.Note("shed", "kind=st1")
	}
	f.Note("mute", "wal append failed")
	ev := f.Snapshot()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ev))
	}
	if ev[len(ev)-1].Kind != "mute" {
		t.Fatalf("newest event %+v", ev[len(ev)-1])
	}
	var sb strings.Builder
	f.Dump(&sb)
	if !strings.Contains(sb.String(), "flightrec r0.1") || !strings.Contains(sb.String(), "wal append failed") {
		t.Fatalf("dump output: %q", sb.String())
	}

	var nilRec *FlightRecorder
	nilRec.Note("x", "y")
	if nilRec.Snapshot() != nil || nilRec.Name() != "" {
		t.Fatal("nil recorder must be inert")
	}
	nilRec.Dump(&sb)

	rec := httptest.NewRecorder()
	FlightHandler(f, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flightrec", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var got struct {
		Recorders []struct {
			Name   string  `json:"name"`
			Events []Event `json:"events"`
		}
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(got.Recorders) != 1 || got.Recorders[0].Name != "r0.1" || len(got.Recorders[0].Events) != 4 {
		t.Fatalf("bad recorders: %+v", got.Recorders)
	}
}

func TestHexID(t *testing.T) {
	if got := hexID(0xDEADBEEF); got != "00000000deadbeef" {
		t.Fatalf("hexID: %q", got)
	}
}
