package trace

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Event is one entry in a replica's flight recorder: a timestamped,
// categorized note about an infrequent state change (shed, reputation
// action, checkpoint, mute...). Events are deliberately coarse — the
// recorder exists so a postmortem can reconstruct *why* a replica acted,
// not to log per-transaction traffic.
type Event struct {
	At     int64  `json:"at_unix_ns"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// FlightRecorder is a bounded lock-free overwrite ring of Events, one per
// replica. It records only infrequent control-plane transitions, so its
// cost is invisible on the data path; its contents are served at
// /debug/flightrec and dumped automatically when the replica mutes.
// A nil *FlightRecorder ignores all calls.
type FlightRecorder struct {
	name  string
	clock func() int64
	slots []atomic.Pointer[Event]
	next  atomic.Uint64
}

// NewFlightRecorder builds a recorder labeled name (e.g. "r0.2") holding
// the last size events (default 1024).
func NewFlightRecorder(name string, size int) *FlightRecorder {
	if size <= 0 {
		size = 1024
	}
	return &FlightRecorder{
		name:  name,
		clock: func() int64 { return time.Now().UnixNano() },
		slots: make([]atomic.Pointer[Event], size),
	}
}

// Note records one event. Safe on a nil recorder and from any goroutine.
func (f *FlightRecorder) Note(kind, detail string) {
	if f == nil {
		return
	}
	e := &Event{At: f.clock(), Kind: kind, Detail: detail}
	i := f.next.Add(1) - 1
	f.slots[i%uint64(len(f.slots))].Store(e)
}

// Name returns the recorder's label.
func (f *FlightRecorder) Name() string {
	if f == nil {
		return ""
	}
	return f.name
}

// Snapshot returns the recorded events, oldest first.
func (f *FlightRecorder) Snapshot() []Event {
	if f == nil {
		return nil
	}
	n := uint64(len(f.slots))
	head := f.next.Load()
	out := make([]Event, 0, n)
	for off := uint64(0); off < n; off++ {
		if e := f.slots[(head+off)%n].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// Dump writes a human-readable transcript of the ring — the automatic
// last act of a replica that mutes, so the cause survives in the log
// even if nobody scrapes /debug/flightrec before restart.
func (f *FlightRecorder) Dump(w io.Writer) {
	if f == nil {
		return
	}
	events := f.Snapshot()
	fmt.Fprintf(w, "flightrec %s: %d events\n", f.name, len(events))
	for _, e := range events {
		fmt.Fprintf(w, "  %s %-12s %s\n",
			time.Unix(0, e.At).UTC().Format("15:04:05.000000"), e.Kind, e.Detail)
	}
}
