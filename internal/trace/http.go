package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
)

// JSONSpan is one node of the span tree served at /traces: offsets are
// relative to the trace root's start, durations are microseconds.
type JSONSpan struct {
	Name     string     `json:"name"`
	Node     string     `json:"node"`
	StartUs  int64      `json:"start_us"`
	DurUs    int64      `json:"dur_us"`
	Attrs    string     `json:"attrs,omitempty"`
	Children []JSONSpan `json:"children,omitempty"`
}

// JSONTrace is one assembled trace: the root transaction span with its
// children nested beneath it.
type JSONTrace struct {
	TraceID     string   `json:"trace_id"`
	Status      string   `json:"status,omitempty"`
	Forced      string   `json:"forced,omitempty"` // reason, when force-captured
	StartUnixNs int64    `json:"start_unix_ns"`
	DurUs       int64    `json:"dur_us"`
	Incomplete  bool     `json:"incomplete,omitempty"` // root span evicted or txn in flight
	Root        JSONSpan `json:"root"`
}

// assemble groups a span-ring snapshot into JSONTrace trees, most recent
// first, at most limit entries. It runs entirely on the snapshot — no
// tracer locks are held while marshaling (snapshot-then-serve).
func assemble(spans []*Span, limit int) []JSONTrace {
	byTrace := map[uint64][]*Span{}
	for _, s := range spans {
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	out := make([]JSONTrace, 0, len(byTrace))
	for id, ss := range byTrace {
		out = append(out, buildTrace(id, ss))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNs > out[j].StartUnixNs })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// buildTrace turns one trace's spans into a tree. Spans parent to the
// span id they name, or to the root when the parent is 0 or absent
// (replica and transport spans only know the trace id).
func buildTrace(id uint64, ss []*Span) JSONTrace {
	t := JSONTrace{TraceID: hexID(id)}
	var root *Span
	for _, s := range ss {
		switch s.Name {
		case RootSpan:
			root = s
			t.Status = trimPrefix(s.Attrs, "status=")
		case "trace.forced":
			if t.Forced == "" {
				t.Forced = trimPrefix(s.Attrs, "reason=")
			}
		}
	}
	if root == nil {
		// Root evicted from the ring or transaction still in flight:
		// synthesize an envelope so the children are still visible.
		t.Incomplete = true
		root = &Span{TraceID: id, Name: RootSpan}
		for _, s := range ss {
			if root.Start == 0 || s.Start < root.Start {
				root.Start = s.Start
			}
			if s.End > root.End {
				root.End = s.End
			}
		}
	}
	t.StartUnixNs = root.Start
	t.DurUs = (root.End - root.Start) / 1e3
	t.Root = JSONSpan{
		Name: root.Name, Node: root.Node,
		DurUs: (root.End - root.Start) / 1e3, Attrs: root.Attrs,
	}

	// Children sorted by start; one level of nesting under explicit
	// parents, everything else under the root.
	sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
	known := map[uint64]*JSONSpan{root.SpanID: &t.Root}
	for _, s := range ss {
		if s == root {
			continue
		}
		js := JSONSpan{
			Name: s.Name, Node: s.Node,
			StartUs: (s.Start - root.Start) / 1e3,
			DurUs:   (s.End - s.Start) / 1e3,
			Attrs:   s.Attrs,
		}
		p := known[s.Parent]
		if p == nil {
			p = &t.Root
		}
		p.Children = append(p.Children, js)
		if s.SpanID != 0 {
			known[s.SpanID] = &p.Children[len(p.Children)-1]
		}
	}
	return t
}

func trimPrefix(s, prefix string) string {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):]
	}
	return s
}

// TracesHandler serves the recent-traces view: JSON span trees assembled
// from the tracer's ring, most recent first. ?n= bounds the count
// (default 64).
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		limit := 64
		if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n > 0 {
			limit = n
		}
		traces := assemble(t.Spans(), limit)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Traces []JSONTrace `json:"traces"`
		}{traces})
	})
}

// slowTrace is one /traces/slow row: the top-K summary joined with the
// span tree, when the ring still holds the trace's spans.
type slowTrace struct {
	SlowEntry
	DurMs float64    `json:"dur_ms"`
	Trace *JSONTrace `json:"trace,omitempty"`
}

// SlowHandler serves the top-K slowest finished transactions with their
// span trees (trees may be absent when the ring has since evicted the
// spans — the summary row survives regardless).
func SlowHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		entries := t.Slow()
		trees := map[string]*JSONTrace{}
		for _, jt := range assemble(t.Spans(), 0) {
			c := jt
			trees[jt.TraceID] = &c
		}
		rows := make([]slowTrace, 0, len(entries))
		for _, e := range entries {
			rows = append(rows, slowTrace{
				SlowEntry: e,
				DurMs:     float64(e.DurNanos) / 1e6,
				Trace:     trees[e.Trace],
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Slow []slowTrace `json:"slow"`
		}{rows})
	})
}

// FlightHandler serves the flight recorders' event rings as JSON, one
// object per recorder. Nil recorders are skipped.
func FlightHandler(recs ...*FlightRecorder) http.Handler {
	type recJSON struct {
		Name   string  `json:"name"`
		Events []Event `json:"events"`
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		out := make([]recJSON, 0, len(recs))
		for _, f := range recs {
			if f == nil {
				continue
			}
			ev := f.Snapshot()
			if ev == nil {
				ev = []Event{}
			}
			out = append(out, recJSON{Name: f.Name(), Events: ev})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Recorders []recJSON `json:"recorders"`
		}{out})
	})
}
