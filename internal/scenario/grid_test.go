package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/basil"
	"repro/internal/faults"
	"repro/internal/types"
	"repro/internal/verify"
)

// TestParameterGrid sweeps the deployment grid — shard count x network
// fault rate x client count — and renders a per-cell DSG verdict: every
// cell's committed execution (including post-run-resolved unknowns)
// must be Byzantine-serializable. The grid is the cheap wide-angle
// complement to the deep named scenarios: one table-driven pass over
// the configuration corners the matrix doesn't individually storm.
func TestParameterGrid(t *testing.T) {
	txPerClient := 12
	if raceEnabled {
		txPerClient = 5
	}
	type cell struct {
		shards  int
		drop    float64
		clients int
	}
	var grid []cell
	for _, shards := range []int{1, 2} {
		for _, drop := range []float64{0, 0.02} {
			for _, clients := range []int{2, 4} {
				grid = append(grid, cell{shards, drop, clients})
			}
		}
	}
	for _, c := range grid {
		c := c
		name := fmt.Sprintf("shards=%d/drop=%.2f/clients=%d", c.shards, c.drop, c.clients)
		t.Run(name, func(t *testing.T) {
			const seed = 1701
			phase, retry := 60*time.Millisecond, 250*time.Millisecond
			if raceEnabled {
				phase, retry = 240*time.Millisecond, time.Second
			}
			cl := basil.NewCluster(basil.Options{
				F: 1, Shards: c.shards, BatchSize: 4,
				PhaseTimeout: phase, RetryTimeout: retry,
			})
			defer cl.Close()
			const nKeys = 10
			keys := make([]string, nKeys)
			for i := range keys {
				keys[i] = fmt.Sprintf("gr%02d", i)
				cl.Load(keys[i], []byte{0})
			}
			if c.drop > 0 {
				cl.Net().SetPolicy(faults.DropLinks(seed, c.drop))
			}

			var (
				mu       sync.Mutex
				checker  verify.Checker
				unknowns []*types.TxMeta
			)
			var wg sync.WaitGroup
			for w := 0; w < c.clients; w++ {
				w := w
				cli := cl.NewClient()
				rng := rand.New(rand.NewSource(seed + int64(w)*31))
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < txPerClient; i++ {
						for attempt := 0; ; attempt++ {
							tx := cli.Begin()
							ok := true
							for _, ki := range rng.Perm(nKeys)[:2] {
								if _, err := tx.Read(keys[ki]); err != nil {
									ok = false
									break
								}
							}
							if !ok {
								tx.Abort()
							} else {
								tx.Write(keys[rng.Intn(nKeys)], []byte{byte(w), byte(i)})
								err := tx.Commit()
								if err == nil {
									mu.Lock()
									checker.Add(verify.FromMeta(tx.Meta()))
									mu.Unlock()
									break
								}
								if !errors.Is(err, basil.ErrAborted) {
									mu.Lock()
									unknowns = append(unknowns, tx.Meta())
									mu.Unlock()
									break
								}
							}
							if attempt >= 20 {
								break // starved cell traffic still yields a valid (smaller) DSG
							}
						}
					}
				}()
			}
			wg.Wait()

			// Heal and resolve unknown outcomes before the oracle runs.
			cl.Net().SetPolicy(nil)
			resolver := cl.NewClient()
			pending := unknowns
			for pass := 0; pass < 6 && len(pending) > 0; pass++ {
				var next []*types.TxMeta
				for _, meta := range pending {
					dec, _, err := resolver.Inner().FinishTransaction(meta)
					if err != nil {
						next = append(next, meta)
						continue
					}
					if dec == types.DecisionCommit {
						checker.Add(verify.FromMeta(meta))
					}
				}
				pending = next
			}
			if len(pending) > 0 {
				t.Fatalf("%d unknown outcomes unresolved", len(pending))
			}
			if checker.Len() == 0 {
				t.Fatal("cell committed nothing")
			}
			if err := checker.CheckSerializable(); err != nil {
				t.Fatalf("DSG verdict: %v", err)
			}
			if err := checker.CheckTimestampOrderConsistent(); err != nil {
				t.Fatalf("timestamp-order verdict: %v", err)
			}
		})
	}
}
