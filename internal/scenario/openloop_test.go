package scenario

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benchharness"
	"repro/internal/workload"
)

// fakeSystem is a deterministic in-memory System whose transactions
// take a fixed service time, for open-loop accounting tests.
type fakeSystem struct {
	service time.Duration
	commits atomic.Uint64
}

func (s *fakeSystem) Name() string                     { return "fake" }
func (s *fakeSystem) Load(string, []byte)              {}
func (s *fakeSystem) Close()                           {}
func (s *fakeSystem) NewSession() benchharness.Session { return fakeSession{s} }

type fakeSession struct{ s *fakeSystem }

func (f fakeSession) Begin() benchharness.SysTx { return fakeTx{f.s} }

type fakeTx struct{ s *fakeSystem }

func (t fakeTx) Read(string) ([]byte, error) { return nil, nil }
func (t fakeTx) Write(string, []byte)        {}
func (t fakeTx) Abort()                      {}
func (t fakeTx) Commit() error {
	time.Sleep(t.s.service)
	t.s.commits.Add(1)
	return nil
}

// plainGen is a trivial generator for the fake system.
type plainGen struct{}

func (plainGen) Name() string                  { return "plain" }
func (plainGen) Populate(func(string, []byte)) {}
func (plainGen) Next(rng *rand.Rand) workload.TxnFunc {
	return workload.TxnFunc{Name: "plain", Body: func(tx workload.Tx) error {
		tx.Write("k", nil)
		return nil
	}}
}

// TestOpenLoopQueueingDelayVisible is the satellite regression for the
// harness's central property: when arrivals outpace service capacity,
// the measured tail must include the time transactions waited for a
// session — a closed-loop runner can never show this, because it only
// offers load as fast as the system absorbs it. One session serving
// 2ms transactions has capacity 500/s; offering 2000/s must drive p99
// far above the 2ms service time.
func TestOpenLoopQueueingDelayVisible(t *testing.T) {
	sys := &fakeSystem{service: 2 * time.Millisecond}
	res := OpenLoad(sys, plainGen{}, LoadConfig{
		Phases:   []LoadPhase{{Dur: time.Second, StartRate: 2000, EndRate: 2000}},
		Sessions: 1, MaxPending: 512, Seed: 7,
	})
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	// Queueing must dominate: with a 512-deep queue at 4x overload the
	// wait grows to hundreds of milliseconds; anything near the 2ms
	// service time means latency was measured from dispatch, not from
	// intended arrival.
	if res.AllP99Ms < 20 {
		t.Fatalf("p99 %.2fms does not include queueing delay (service time 2ms)", res.AllP99Ms)
	}
	if res.Dropped == 0 {
		t.Fatal("4x overload over a bounded queue must drop arrivals explicitly")
	}
	if res.Offered != res.Commits+res.Dropped+res.AppAborts+res.Starved+res.Unknowns {
		t.Fatalf("arrival accounting leaks: offered %d != %d commits + %d dropped + %d appAborts + %d starved + %d unknown",
			res.Offered, res.Commits, res.Dropped, res.AppAborts, res.Starved, res.Unknowns)
	}
}

// TestOpenLoopCalmLatencyLow is the complement: under light load the
// same accounting must NOT invent queueing delay.
func TestOpenLoopCalmLatencyLow(t *testing.T) {
	sys := &fakeSystem{service: 2 * time.Millisecond}
	res := OpenLoad(sys, plainGen{}, LoadConfig{
		Phases:   []LoadPhase{{Dur: time.Second, StartRate: 50, EndRate: 50}},
		Sessions: 4, MaxPending: 64, Seed: 7,
	})
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	if res.AllP99Ms > 50 {
		t.Fatalf("p99 %.2fms under light load; queueing delay invented", res.AllP99Ms)
	}
	if res.Dropped != 0 {
		t.Fatalf("%d drops under light load", res.Dropped)
	}
}

// TestRateAtRamp pins the piecewise-linear profile interpolation.
func TestRateAtRamp(t *testing.T) {
	phases := []LoadPhase{
		{Dur: 2 * time.Second, StartRate: 50, EndRate: 50},
		{Dur: 4 * time.Second, StartRate: 50, EndRate: 450},
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 50}, {time.Second, 50}, {2 * time.Second, 50},
		{4 * time.Second, 250}, {6*time.Second - time.Millisecond, 449.9},
		{7 * time.Second, 0},
	}
	for _, c := range cases {
		got := rateAt(phases, c.at)
		if got < c.want-1 || got > c.want+1 {
			t.Fatalf("rateAt(%s) = %.1f, want ~%.1f", c.at, got, c.want)
		}
	}
}

// TestRecoveryMs pins the bins-based recovery measurement.
func TestRecoveryMs(t *testing.T) {
	bin := 250 * time.Millisecond
	// 16 bins: warmup ramp, calm ~10/bin, storm collapse, recovery at
	// bin 12, plus a final partial bin the search must ignore.
	bins := []uint64{2, 5, 10, 10, 10, 10, 0, 0, 1, 2, 3, 4, 9, 10, 10, 3}
	stormStart, stormEnd := 1500*time.Millisecond, 2*time.Second
	got := recoveryMs(bins, bin, stormStart, stormEnd, 0.7)
	// Baseline = mean(bins[2:6]) = 10, threshold 7; the first qualifying
	// 3-bin window starts at bin 11 (4,9,10 -> mean 7.67):
	// 11*250ms - 2000ms = 750ms.
	if got != 750 {
		t.Fatalf("recoveryMs = %.0f, want 750", got)
	}
	// Never recovering reports -1.
	flat := []uint64{2, 5, 10, 10, 10, 10, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1}
	if got := recoveryMs(flat, bin, stormStart, stormEnd, 0.7); got != -1 {
		t.Fatalf("recoveryMs (never) = %.0f, want -1", got)
	}
	// No storm window: not applicable.
	if got := recoveryMs(bins, bin, 0, 0, 0.7); got != 0 {
		t.Fatalf("recoveryMs (no storm) = %.0f, want 0", got)
	}
}

// TestVerdictChecks pins the SLO evaluation: every non-zero clause
// becomes a named check and any failing clause fails the verdict.
func TestVerdictChecks(t *testing.T) {
	in := verdictInput{
		open: OpenResult{
			Commits: 500, Offered: 520, Dropped: 5,
			CalmP99Ms: 80, StormP99Ms: 400, CalmCount: 300, StormCount: 150,
		},
		sheds: 3, overloads: 2, recoveryMs: 700,
		tuning: Tuning{RateScale: 1, LatScale: 1, SpamScale: 1},
	}
	slo := SLO{
		CalmP99Ms: 100, StormP99Ms: 500, MinCommits: 400,
		RecoverWithin: time.Second, RequireSheds: true,
		RequireBackpressure: true, MaxDropFrac: 0.05,
	}
	v := slo.evaluate(in)
	if !v.Pass {
		t.Fatalf("verdict failed: %+v", v.Checks)
	}
	wantChecks := 9 // serializable, unknowns, min-commits, calm, storm, recovery, sheds, backpressure, drop-frac
	if len(v.Checks) != wantChecks {
		t.Fatalf("%d checks, want %d: %+v", len(v.Checks), wantChecks, v.Checks)
	}

	// A single breached clause must flip the verdict.
	in.open.CalmP99Ms = 150
	if v := slo.evaluate(in); v.Pass {
		t.Fatal("breached calm p99 still passed")
	}
	in.open.CalmP99Ms = 80

	// Race tuning widens the budget back to passing.
	in.tuning = Tuning{RateScale: 1, LatScale: 8, SpamScale: 1}
	in.open.CalmP99Ms = 150
	if v := slo.evaluate(in); !v.Pass {
		t.Fatalf("race-scaled budget should absorb 150ms: %+v", v.Checks)
	}
}
