package scenario

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/basil"
	"repro/internal/benchharness"
	"repro/internal/metrics"
	"repro/internal/types"
	"repro/internal/workload"
)

// LoadPhase is one segment of the offered-load profile: the arrival rate
// ramps linearly from StartRate to EndRate tx/s over Dur.
type LoadPhase struct {
	Dur       time.Duration
	StartRate float64
	EndRate   float64
}

// LoadConfig parameterizes one open-loop run. Unlike the closed-loop
// benchharness runner — where a slow system silently throttles its own
// offered load — arrivals here follow a Poisson process at the
// configured rate regardless of how the system is doing, and each
// transaction's latency is measured from its *intended* arrival time.
// A transaction that sat in the dispatch queue because every session
// was busy pays that wait in its recorded latency, which is what a real
// user behind an overloaded service experiences.
type LoadConfig struct {
	// Phases is the piecewise-linear rate profile; the run lasts the sum
	// of their durations.
	Phases []LoadPhase
	// Users is the simulated user population: each arrival belongs to
	// user seq%Users and draws its transaction from that user's own
	// deterministic stream, so the workload is user-attributed no matter
	// which of the (far fewer) real sessions executes it.
	Users int
	// Sessions is the real connection pool multiplexing all users.
	Sessions int
	// MaxPending bounds arrivals admitted but not yet executing; an
	// arrival that finds the queue full is dropped and counted (the
	// client-side give-up of an overloaded service, never silent).
	MaxPending int
	// MaxRetries bounds per-transaction commit retries.
	MaxRetries int
	// Bin is the commits-over-time histogram resolution used for
	// recovery-time verdicts. Default 250ms.
	Bin time.Duration
	// StormStart/StormEnd delimit the chaos window within the run.
	// Completions whose *intended arrival* predates StormStart are
	// "calm" (residual storm backlog never contaminates the calm tail);
	// arrivals inside the window are "storm". Zero values mean the whole
	// run is calm.
	StormStart time.Duration
	StormEnd   time.Duration
	Seed       int64
}

func (c *LoadConfig) withDefaults() {
	if c.Users <= 0 {
		c.Users = 1000
	}
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 128
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.Bin <= 0 {
		c.Bin = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Total returns the profile's duration.
func (c *LoadConfig) Total() time.Duration {
	var d time.Duration
	for _, p := range c.Phases {
		d += p.Dur
	}
	return d
}

// OpenResult aggregates one open-loop run. Every offered arrival is
// accounted for exactly once: committed, application-aborted, starved
// (retry budget exhausted), unknown (a timeout left the outcome
// undecided — resolved after the run through the recovery protocol), or
// dropped at the dispatch queue.
type OpenResult struct {
	Offered   uint64
	Commits   uint64
	AppAborts uint64
	Starved   uint64
	Unknowns  uint64
	Dropped   uint64
	Elapsed   time.Duration

	CalmMeanMs float64
	CalmP99Ms  float64
	StormP99Ms float64
	AllMeanMs  float64
	AllP99Ms   float64
	CalmCount  uint64
	StormCount uint64

	// Bins counts commits per BinDur of wall time from load start, for
	// recovery-to-baseline measurement.
	Bins   []uint64
	BinDur time.Duration

	// Metas holds committed transactions' metadata (systems that expose
	// it) for the serializability oracle; UnknownMetas are the undecided
	// ones awaiting post-run resolution.
	Metas        []*types.TxMeta
	UnknownMetas []*types.TxMeta
}

// arrival is one intended transaction: user seq%Users's next request,
// due at offset due from load start.
type arrival struct {
	due     time.Duration
	user    int
	userSeq uint64
}

// metaTx is the optional SysTx extension systems expose for
// serializability auditing.
type metaTx interface{ Meta() *types.TxMeta }

// rate returns the offered rate at offset t into the profile.
func rateAt(phases []LoadPhase, t time.Duration) float64 {
	for _, p := range phases {
		if t < p.Dur {
			frac := float64(t) / float64(p.Dur)
			return p.StartRate + (p.EndRate-p.StartRate)*frac
		}
		t -= p.Dur
	}
	return 0
}

// OpenLoad drives sys with open-loop Poisson arrivals per cfg and
// returns the aggregate. The dispatcher generates the arrival schedule
// in real time (exponential gaps at the instantaneous rate) and hands
// arrivals to Sessions worker goroutines over a MaxPending-bounded
// queue; a full queue drops the arrival explicitly. Latency is
// completion time minus intended arrival time, so both service time and
// queueing delay appear in the tail.
func OpenLoad(sys benchharness.System, gen workload.Generator, cfg LoadConfig) OpenResult {
	cfg.withDefaults()
	total := cfg.Total()

	var (
		offered   atomic.Uint64
		commits   atomic.Uint64
		appAborts atomic.Uint64
		starved   atomic.Uint64
		unknowns  atomic.Uint64
		dropped   atomic.Uint64

		calmLat  = &metrics.Histogram{}
		stormLat = &metrics.Histogram{}
		allLat   = &metrics.Histogram{}
	)
	// Commit bins: generously sized for the drain tail after the last
	// arrival; completions past the end clamp into the final bin.
	bins := make([]atomic.Uint64, int(total/cfg.Bin)+8)

	var (
		mu           sync.Mutex
		metas        []*types.TxMeta
		unknownMetas []*types.TxMeta
	)

	arrivals := make(chan arrival, cfg.MaxPending)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Sessions; w++ {
		sess := sys.NewSession()
		rng := rand.New(rand.NewSource(cfg.Seed + 7_000_003*int64(w+1)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range arrivals {
				// The user's own deterministic stream: which session runs
				// the request must not change what the user asked for.
				userRng := rand.New(rand.NewSource(int64(userStream(cfg.Seed, a.user, a.userSeq))))
				fn := gen.Next(userRng)
				backoff := 500 * time.Microsecond
				for attempt := 0; ; attempt++ {
					tx := sess.Begin()
					err := fn.Body(tx)
					if err == nil {
						err = tx.Commit()
					} else {
						tx.Abort()
					}
					if err == nil {
						lat := time.Since(start) - a.due
						if lat < 0 {
							lat = 0
						}
						allLat.Observe(lat)
						switch classify(a.due, cfg.StormStart, cfg.StormEnd) {
						case classCalm:
							calmLat.Observe(lat)
						case classStorm:
							stormLat.Observe(lat)
						}
						idx := int((a.due + lat) / cfg.Bin)
						if idx >= len(bins) {
							idx = len(bins) - 1
						}
						bins[idx].Add(1)
						commits.Add(1)
						if mt, ok := tx.(metaTx); ok {
							mu.Lock()
							metas = append(metas, mt.Meta())
							mu.Unlock()
						}
						break
					}
					if errors.Is(err, workload.ErrWorkloadAbort) {
						appAborts.Add(1)
						break
					}
					if !errors.Is(err, basil.ErrAborted) {
						// Timeout mid-protocol: the outcome is unknown and
						// terminal for this arrival; the run resolves it
						// afterwards through the recovery protocol.
						unknowns.Add(1)
						if mt, ok := tx.(metaTx); ok {
							mu.Lock()
							unknownMetas = append(unknownMetas, mt.Meta())
							mu.Unlock()
						}
						break
					}
					// Definite serializability abort: retry with backoff.
					if attempt >= cfg.MaxRetries {
						starved.Add(1)
						break
					}
					time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
					if backoff < 20*time.Millisecond {
						backoff *= 2
					}
				}
			}
		}()
	}

	// Dispatcher: walk the Poisson schedule in real time. Gaps are
	// exponential at the instantaneous profile rate; a due arrival that
	// finds the queue full is dropped, never queued late.
	dispatchRng := rand.New(rand.NewSource(cfg.Seed))
	userSeq := make([]uint64, cfg.Users)
	var due time.Duration
	seq := 0
	for {
		r := rateAt(cfg.Phases, due)
		if r <= 0 {
			break
		}
		gap := time.Duration(dispatchRng.ExpFloat64() / r * float64(time.Second))
		// Floor pathological gaps so a momentary huge rate cannot spin.
		if gap < 10*time.Microsecond {
			gap = 10 * time.Microsecond
		}
		due += gap
		if due >= total {
			break
		}
		if wait := due - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		user := seq % cfg.Users
		a := arrival{due: due, user: user, userSeq: userSeq[user]}
		userSeq[user]++
		seq++
		offered.Add(1)
		select {
		case arrivals <- a:
		default:
			dropped.Add(1)
		}
	}
	close(arrivals)
	wg.Wait()

	res := OpenResult{
		Offered:   offered.Load(),
		Commits:   commits.Load(),
		AppAborts: appAborts.Load(),
		Starved:   starved.Load(),
		Unknowns:  unknowns.Load(),
		Dropped:   dropped.Load(),
		Elapsed:   time.Since(start),
		BinDur:    cfg.Bin,
	}
	calm, storm, all := calmLat.SnapshotHist(), stormLat.SnapshotHist(), allLat.SnapshotHist()
	const ms = 1e6
	res.CalmMeanMs = calm.MeanNanos() / ms
	res.CalmP99Ms = calm.Quantile(0.99) / ms
	res.StormP99Ms = storm.Quantile(0.99) / ms
	res.AllMeanMs = all.MeanNanos() / ms
	res.AllP99Ms = all.Quantile(0.99) / ms
	res.CalmCount = calmLat.Count()
	res.StormCount = stormLat.Count()
	res.Bins = make([]uint64, len(bins))
	for i := range bins {
		res.Bins[i] = bins[i].Load()
	}
	res.Metas = metas
	res.UnknownMetas = unknownMetas
	return res
}

const (
	classCalm = iota
	classStorm
	classPost
)

// classify buckets an arrival by its intended time relative to the
// declared storm window. With no window, everything is calm.
func classify(due, stormStart, stormEnd time.Duration) int {
	if stormStart == 0 && stormEnd == 0 {
		return classCalm
	}
	switch {
	case due < stormStart:
		return classCalm
	case due < stormEnd:
		return classStorm
	default:
		return classPost
	}
}

// userStream derives user u's op-n rng seed from the run seed —
// splitmix64 over the packed identity, mirroring internal/faults's
// identity-derived decision streams.
func userStream(seed int64, user int, n uint64) uint64 {
	z := uint64(seed) ^ (uint64(user)<<32 | n&math.MaxUint32)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
