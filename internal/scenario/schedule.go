package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/basil"
	"repro/internal/faults"
	"repro/internal/transport"
)

// Event is one timed chaos action, fired At after load start. Do runs on
// the schedule goroutine against the live Runtime; returning an error
// records it and fails the run's "chaos schedule applied" check rather
// than panicking mid-storm.
type Event struct {
	At   time.Duration
	Name string
	Do   func(rt *Runtime) error
}

// Runtime is the live cluster plus its chaos injectors, handed to every
// scheduled event. The injectors are wired at cluster construction
// (partition policy on the transport, fsync delay into every WAL, the
// equivocation strategy onto its replica) and armed or released by
// events while load flows.
type Runtime struct {
	Cluster *basil.Cluster
	Chaos   *faults.Chaos
	Disk    *faults.DiskChaos
	Equiv   *faults.EquivocatingReplica
	Seed    int64

	// mu guards the event log; events fire from the schedule goroutine
	// while RunScenario's main goroutine may be reading nothing yet, but
	// the log is also appended by spammer shutdown and read post-join.
	mu        sync.Mutex
	eventLog  []string
	eventErrs []string
}

// logEvent records an applied event (and its error, if any).
func (rt *Runtime) logEvent(name string, at time.Duration, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if err != nil {
		rt.eventErrs = append(rt.eventErrs, fmt.Sprintf("%s@%s: %v", name, at, err))
		return
	}
	rt.eventLog = append(rt.eventLog, fmt.Sprintf("%s@%s", name, at))
}

// events returns the applied-event log and any event errors.
func (rt *Runtime) events() (applied, errs []string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]string(nil), rt.eventLog...), append([]string(nil), rt.eventErrs...)
}

// runSchedule fires events at their offsets from start until the list is
// done or stop closes. The goroutine is owned by RunScenario: wg-tracked
// and stop-bound, joined before the verdict is computed.
func runSchedule(rt *Runtime, events []Event, start time.Time, stop <-chan struct{}, wg *sync.WaitGroup) {
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, ev := range evs {
			if wait := time.Until(start.Add(ev.At)); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-stop:
					t.Stop()
					return
				case <-t.C:
				}
			}
			rt.logEvent(ev.Name, ev.At, ev.Do(rt))
		}
	}()
}

// --- canonical event constructors used by the matrix ---

// KillReplica crashes replica (shard, index): its goroutines stop, its
// in-memory state is gone, and only its WAL survives.
func KillReplica(at time.Duration, shard, index int) Event {
	return Event{At: at, Name: fmt.Sprintf("kill-replica-%d.%d", shard, index), Do: func(rt *Runtime) error {
		rt.Cluster.Replica(shard, index).Close()
		return nil
	}}
}

// RestartReplica rebuilds the crashed replica from its write-ahead log
// and rejoins it to the transport.
func RestartReplica(at time.Duration, shard, index int) Event {
	return Event{At: at, Name: fmt.Sprintf("restart-replica-%d.%d", shard, index), Do: func(rt *Runtime) error {
		_, err := rt.Cluster.RestartReplica(shard, index)
		return err
	}}
}

// SlowDisk injects delay into every targeted replica's WAL fsyncs (no
// targets = all replicas).
func SlowDisk(at time.Duration, delay time.Duration, targets ...[2]int32) Event {
	return Event{At: at, Name: fmt.Sprintf("slow-disk-%s", delay), Do: func(rt *Runtime) error {
		rt.Disk.Arm(delay, targets...)
		return nil
	}}
}

// FastDisk releases the fsync delay.
func FastDisk(at time.Duration) Event {
	return Event{At: at, Name: "fast-disk", Do: func(rt *Runtime) error {
		rt.Disk.Disarm()
		return nil
	}}
}

// Partition isolates replica (shard, index) from everyone else. Note the
// quorum arithmetic for n=5f+1=6: isolating exactly one replica kills
// the fast path (needs all 6) but leaves both the commit quorum (4) and
// the ST2 logging quorum (5) reachable; isolating two would stall every
// commit on the logging quorum, which is an outage, not a degradation.
func Partition(at time.Duration, shard, index int) Event {
	return Event{At: at, Name: fmt.Sprintf("partition-%d.%d", shard, index), Do: func(rt *Runtime) error {
		rt.Chaos.Isolate(transport.ReplicaAddr(int32(shard), int32(index)))
		return nil
	}}
}

// Heal clears the partition.
func Heal(at time.Duration) Event {
	return Event{At: at, Name: "heal", Do: func(rt *Runtime) error {
		rt.Chaos.Heal()
		return nil
	}}
}

// ArmEquivocation starts the installed replica-side equivocator sending
// conflicting ST1 votes per recipient; DisarmEquivocation stops it.
func ArmEquivocation(at time.Duration) Event {
	return Event{At: at, Name: "arm-equivocation", Do: func(rt *Runtime) error {
		if rt.Equiv == nil {
			return fmt.Errorf("scenario has no equivocating replica installed")
		}
		rt.Equiv.Arm(true)
		return nil
	}}
}

// DisarmEquivocation returns the equivocator to honest behavior.
func DisarmEquivocation(at time.Duration) Event {
	return Event{At: at, Name: "disarm-equivocation", Do: func(rt *Runtime) error {
		if rt.Equiv == nil {
			return fmt.Errorf("scenario has no equivocating replica installed")
		}
		rt.Equiv.Arm(false)
		return nil
	}}
}
