package scenario

import (
	"testing"
)

// TestSmokeScenarios runs the seeded smoke subset end-to-end over real
// clusters: open-loop load, the partition storm, unknown resolution,
// the final-read audit and the DSG oracle, asserting every SLO verdict
// passes. A failure prints the scenario's seed; the run reproduces from
// it (every arrival, workload draw and chaos decision derives from the
// seed).
func TestSmokeScenarios(t *testing.T) {
	const seed = 42
	for _, sc := range Smoke() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := RunScenario(sc, seed, DefaultTuning())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if res.Open.Commits == 0 {
				t.Fatalf("seed %d: no commits", seed)
			}
			for _, c := range res.Verdict.Checks {
				t.Logf("check %-22s ok=%-5v %s", c.Name, c.Ok, c.Detail)
			}
			if !res.Verdict.Pass {
				t.Fatalf("seed %d: scenario %s failed its SLOs (reproduce with the same seed)", seed, sc.Name)
			}
		})
	}
}

// TestSmokeScenarioSeedReproducible pins the reproducibility contract
// on the cheap axis we can assert exactly: the same seed offers the
// same arrival count and user-attributed workload stream. (Latency and
// interleaving are wall-clock and may differ; the offered schedule and
// the transactions' contents may not.)
func TestSmokeScenarioSeedReproducible(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock dispatch under the race detector skews arrival counts")
	}
	sc := Smoke()[0]
	a, err := RunScenario(sc, 7, DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc, 7, DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	// The Poisson schedule is seed-derived: both runs draw the same
	// inter-arrival gaps, so offered counts agree within the handful of
	// arrivals that real-time dispatch can clip at the window edge.
	diff := int64(a.Open.Offered) - int64(b.Open.Offered)
	if diff < -3 || diff > 3 {
		t.Fatalf("same-seed runs offered %d vs %d arrivals", a.Open.Offered, b.Open.Offered)
	}
}
