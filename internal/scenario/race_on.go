//go:build race

package scenario

// raceEnabled reports whether the race detector instruments this build.
// DefaultTuning scales arrival rates and latency SLOs by it: the
// instrumented crypto path is an order of magnitude slower, which is a
// property of the detector, not of the system under test.
const raceEnabled = true
