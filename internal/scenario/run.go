package scenario

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/basil"
	"repro/internal/benchharness"
	"repro/internal/client"
	"repro/internal/faults"
	"repro/internal/replica"
	"repro/internal/types"
	"repro/internal/verify"
	"repro/internal/workload"
)

// Result is one scenario's full outcome: the open-loop aggregate, the
// protocol-level evidence the verdict consumed, and the verdict itself.
type Result struct {
	Name string
	Desc string
	Seed int64

	Open          OpenResult
	ThroughputTxs float64
	Sheds         uint64
	RepSheds      uint64
	Overloads     uint64
	SpamSent      uint64
	Unresolved    int
	Audited       int
	RecoveryMs    float64
	FastPathShare float64
	Events        []string
	EventErrs     []string

	Verdict Verdict
}

// RunScenario builds the scenario's cluster, runs its open-loop load and
// chaos schedule, resolves every unknown outcome through the recovery
// protocol, audits final reads against the DSG oracle, and returns the
// verdict. The run is reproducible from (scenario, seed, tuning): load
// arrivals, workload draws, spam pacing and every chaos decision derive
// from the seed.
func RunScenario(sc Scenario, seed int64, tn Tuning) (Result, error) {
	if seed == 0 {
		seed = 1
	}
	if tn.RateScale <= 0 {
		tn = DefaultTuning()
	}

	// Scale the offered load to the build.
	load := sc.Load
	load.Seed = seed
	load.Phases = append([]LoadPhase(nil), sc.Load.Phases...)
	for i := range load.Phases {
		load.Phases[i].StartRate *= tn.RateScale
		load.Phases[i].EndRate *= tn.RateScale
	}

	rt := &Runtime{
		Chaos: faults.NewChaos(seed),
		Disk:  &faults.DiskChaos{},
		Seed:  seed,
	}

	opts := basil.Options{
		F:               1,
		Shards:          max(sc.Shards, 1),
		BatchSize:       16,
		VerifyWorkers:   2,
		DispatchQueue:   sc.DispatchQueue,
		DeltaMicros:     sc.DeltaMicros,
		CheckpointEvery: sc.CheckpointEvery,
		PhaseTimeout:    100 * time.Millisecond,
		RetryTimeout:    400 * time.Millisecond,
		Seed:            seed,
	}
	if raceEnabled {
		opts.PhaseTimeout *= 4
		opts.RetryTimeout *= 4
	}
	if sc.Durable {
		dir, err := os.MkdirTemp("", "scenario-"+sc.Name+"-")
		if err != nil {
			return Result{}, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		defer os.RemoveAll(dir)
		opts.DataDir = dir
		opts.WALSyncDelay = rt.Disk.Delay
	}
	if sc.EquivReplica >= 0 {
		rt.Equiv = faults.NewEquivocatingReplica(seed)
		target := int32(sc.EquivReplica)
		opts.ReplicaByzantine = func(shard, index int32) replica.ByzantineStrategy {
			if shard == 0 && index == target {
				return rt.Equiv
			}
			return nil
		}
	}

	cl := basil.NewCluster(opts)
	defer cl.Close()
	rt.Cluster = cl
	cl.Net().SetPolicy(rt.Chaos.Policy())

	gen := workload.NewYCSB(workload.YCSBConfig{
		Keys: sc.Keys, ReadOps: sc.ReadOps, WriteOps: sc.WriteOps, ValueSize: 32,
	})
	sys := &benchharness.BasilSystem{C: cl, Label: sc.Name}
	benchharness.Populate(sys, gen)

	// Spammers (if any) attack for the whole run: stall-early blind
	// writes over a private key range, paced so the in-process attacker
	// saturates intake without out-spinning its victims for CPU.
	stopSpam := make(chan struct{})
	var spamWG sync.WaitGroup
	var spamSent atomic.Uint64
	for i := 0; i < sc.Spammers; i++ {
		c := cl.NewClient()
		rng := rand.New(rand.NewSource(seed + 900_001 + int64(i)*104729))
		spamWG.Add(1)
		go func() {
			defer spamWG.Done()
			inner := c.Inner()
			rate := float64(sc.SpamRate) * tn.SpamScale
			const tick = 2 * time.Millisecond
			burst := int(rate * tick.Seconds())
			if burst < 1 {
				burst = 1
			}
			for {
				select {
				case <-stopSpam:
					return
				default:
				}
				for b := 0; b < burst; b++ {
					key := fmt.Sprintf("spam:%d", rng.Uint64()%512)
					tx := inner.Begin()
					tx.Write(key, []byte{byte(b)})
					inner.CommitFaulty(tx, client.FaultStallEarly)
					spamSent.Add(1)
				}
				time.Sleep(tick)
			}
		}()
	}

	// The storm: chaos schedule over the open-loop run.
	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup
	start := time.Now()
	runSchedule(rt, sc.Events, start, stopChaos, &chaosWG)

	open := OpenLoad(sys, gen, load)

	close(stopChaos)
	chaosWG.Wait()
	close(stopSpam)
	spamWG.Wait()

	// Quiesce: release every injector so the post-run resolution and
	// audit see a healthy cluster (the storm itself is already over).
	rt.Chaos.Heal()
	rt.Chaos.SetDrop(0)
	rt.Disk.Disarm()
	if rt.Equiv != nil {
		rt.Equiv.Arm(false)
	}

	// Resolve every unknown outcome through the recovery protocol: an
	// unknown that committed must count in the DSG. Unknowns can depend
	// on each other, so the sweep repeats — finishing one transaction
	// unblocks replicas deferring another's vote.
	var checker verify.Checker
	for _, m := range open.Metas {
		checker.Add(verify.FromMeta(m))
	}
	resolver := cl.NewClient()
	pending := open.UnknownMetas
	for pass := 0; pass < 6 && len(pending) > 0; pass++ {
		var next []*types.TxMeta
		for _, meta := range pending {
			dec, _, err := resolver.Inner().FinishTransaction(meta)
			if err != nil {
				next = append(next, meta)
				continue
			}
			if dec == types.DecisionCommit {
				checker.Add(verify.FromMeta(meta))
			}
		}
		pending = next
	}

	// Final-read audit: read a sample of the key space through fresh
	// transactions and feed them to the oracle. A lost committed write
	// makes the audit read an older version at a newer timestamp, which
	// the timestamp-order check rejects.
	audited := auditReads(cl, gen, sc.Keys, &checker)

	serialErr := checker.CheckSerializable()
	if serialErr == nil {
		serialErr = checker.CheckTimestampOrderConsistent()
	}

	res := Result{
		Name: sc.Name, Desc: sc.Desc, Seed: seed,
		Open:          open,
		ThroughputTxs: float64(open.Commits) / open.Elapsed.Seconds(),
		SpamSent:      spamSent.Load(),
		Unresolved:    len(pending),
		Audited:       audited,
		FastPathShare: sys.FastPathShare(),
		RecoveryMs:    recoveryMs(open.Bins, open.BinDur, load.StormStart, load.StormEnd, sc.SLO.RecoverFrac),
	}
	for s := 0; s < cl.Shards(); s++ {
		for i := 0; i < cl.ReplicaCount(); i++ {
			r := cl.Replica(s, i)
			res.Sheds += r.Stats.Shed.Load()
			res.RepSheds += r.Stats.ShedReputation.Load()
		}
	}
	res.Overloads = sys.Overloads()
	res.Events, res.EventErrs = rt.events()

	res.Verdict = sc.SLO.evaluate(verdictInput{
		open:       open,
		serialErr:  serialErr,
		audited:    audited,
		unresolved: len(pending),
		sheds:      res.Sheds,
		overloads:  res.Overloads,
		recoveryMs: res.RecoveryMs,
		eventErrs:  res.EventErrs,
		hasEvents:  len(sc.Events) > 0,
		tuning:     tn,
	})
	return res, nil
}

// auditReads runs read-only transactions over a key sample and adds the
// committed ones to the checker. Reads batch 8 keys per transaction and
// tolerate a couple of retries each; the return value is how many audit
// transactions made it into the DSG.
func auditReads(cl *basil.Cluster, gen *workload.YCSB, keys uint64, checker *verify.Checker) int {
	sample := keys
	if sample > 48 {
		sample = 48
	}
	step := keys / sample
	if step == 0 {
		step = 1
	}
	audited := 0
	auditor := cl.NewClient()
	for base := uint64(0); base < sample; base += 8 {
		var meta *types.TxMeta
		for attempt := 0; attempt < 3; attempt++ {
			tx := auditor.Begin()
			ok := true
			for i := base; i < base+8 && i < sample; i++ {
				if _, err := tx.Read(gen.Key(i * step % keys)); err != nil {
					ok = false
					break
				}
			}
			if !ok {
				tx.Abort()
				continue
			}
			if tx.Commit() == nil {
				meta = tx.Meta()
			}
			break
		}
		if meta != nil {
			checker.Add(verify.FromMeta(meta))
			audited++
		}
	}
	return audited
}
