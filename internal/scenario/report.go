package scenario

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/benchharness"
)

// JSONScenario is one scenario's row in BENCH_scenarios.json.
type JSONScenario struct {
	Name    string  `json:"name"`
	Desc    string  `json:"desc"`
	Seed    int64   `json:"seed"`
	Pass    bool    `json:"pass"`
	Checks  []Check `json:"checks"`
	Offered uint64  `json:"offered"`
	Commits uint64  `json:"commits"`
	Dropped uint64  `json:"dropped"`
	Starved uint64  `json:"starved"`
	Unknown uint64  `json:"unknown"`

	ThroughputTxs float64  `json:"throughput_txs"`
	CalmP99Ms     float64  `json:"calm_p99_ms"`
	StormP99Ms    float64  `json:"storm_p99_ms"`
	RecoveryMs    float64  `json:"recovery_ms"`
	FastPathShare float64  `json:"fast_path_share"`
	Sheds         uint64   `json:"sheds"`
	Overloads     uint64   `json:"overloads"`
	SpamSent      uint64   `json:"spam_sent"`
	Events        []string `json:"events,omitempty"`
}

// JSONReport is the BENCH_scenarios.json schema (documented in
// docs/benchmarking.md).
type JSONReport struct {
	Experiment string         `json:"experiment"`
	Seed       int64          `json:"seed"`
	Race       bool           `json:"race"`
	Scenarios  []JSONScenario `json:"scenarios"`
}

// toJSON flattens a Result into its report row.
func toJSON(r Result) JSONScenario {
	return JSONScenario{
		Name: r.Name, Desc: r.Desc, Seed: r.Seed,
		Pass: r.Verdict.Pass, Checks: r.Verdict.Checks,
		Offered: r.Open.Offered, Commits: r.Open.Commits,
		Dropped: r.Open.Dropped, Starved: r.Open.Starved, Unknown: r.Open.Unknowns,
		ThroughputTxs: r.ThroughputTxs,
		CalmP99Ms:     r.Open.CalmP99Ms, StormP99Ms: r.Open.StormP99Ms,
		RecoveryMs: r.RecoveryMs, FastPathShare: r.FastPathShare,
		Sheds: r.Sheds, Overloads: r.Overloads, SpamSent: r.SpamSent,
		Events: r.Events,
	}
}

// RunMatrix runs every scenario in scs with the given seed and tuning
// and returns the results plus the assembled report.
func RunMatrix(scs []Scenario, seed int64, tn Tuning) ([]Result, JSONReport, error) {
	rep := JSONReport{Experiment: "scenarios", Seed: seed, Race: raceEnabled}
	var results []Result
	for _, sc := range scs {
		r, err := RunScenario(sc, seed, tn)
		if err != nil {
			return results, rep, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		results = append(results, r)
		rep.Scenarios = append(rep.Scenarios, toJSON(r))
	}
	return results, rep, nil
}

// WriteJSON writes the report.
func WriteJSON(path string, rep JSONReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FigScenarios renders the scenario verdicts as a bench table: one row
// per scenario with its verdict and the headline numbers each SLO was
// judged on.
func FigScenarios(results []Result) benchharness.Table {
	t := benchharness.Table{
		Title:  "Production scenarios: open-loop load, chaos storms, SLO verdicts",
		Header: []string{"scenario", "verdict", "offered", "commits", "tput (tx/s)", "calm p99 (ms)", "storm p99 (ms)", "recover (ms)", "sheds"},
	}
	for _, r := range results {
		verdict := "PASS"
		if !r.Verdict.Pass {
			verdict = "FAIL"
			for _, c := range r.Verdict.Checks {
				if !c.Ok {
					verdict = "FAIL:" + c.Name
					break
				}
			}
		}
		recover := fmt.Sprintf("%.0f", r.RecoveryMs)
		if r.RecoveryMs < 0 {
			recover = "never"
		}
		t.Rows = append(t.Rows, []string{
			r.Name, verdict,
			fmt.Sprint(r.Open.Offered), fmt.Sprint(r.Open.Commits),
			fmt.Sprintf("%.1f", r.ThroughputTxs),
			fmt.Sprintf("%.1f", r.Open.CalmP99Ms),
			fmt.Sprintf("%.1f", r.Open.StormP99Ms),
			recover,
			fmt.Sprint(r.Sheds),
		})
	}
	return t
}
