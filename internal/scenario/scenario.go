// Package scenario is the production-scenario harness: it subjects a
// running Basil cluster to open-loop load (Poisson arrivals at a
// configured, possibly ramping rate — latency measured from each
// transaction's *intended* arrival time, so queueing delay is visible
// instead of hidden by closed-loop self-throttling), composes chaos
// storms over the cluster from the repo's fault primitives (crash and
// WAL restart, injected fsync latency, network partition, replica-side
// vote equivocation, Byzantine spam), and renders an explicit pass/fail
// verdict for each named scenario against its SLOs: tail latency held,
// no committed write lost (the internal/verify DSG oracle over the full
// run plus a final-read audit), recovery time back to baseline
// throughput, and admission behavior within budget.
//
// The named matrix (Matrix) is emitted as BENCH_scenarios.json by
// `basil-bench -experiment scenarios`; a seeded smoke subset (Smoke)
// runs in the regular test suite. Every scenario reproduces from its
// recorded seed: arrivals, workload draws and chaos decisions all
// derive from it (see internal/faults for the identity-derived fault
// streams).
//
// Ownership: a Runtime and its injectors are owned by RunScenario for
// the duration of one run; the open-loop dispatcher, session workers,
// spammers and the chaos schedule goroutine are all wg-tracked and
// stop-bound, and are joined before the verdict is computed.
package scenario

import (
	"time"
)

// Tuning scales a scenario to the build and host it runs on. The race
// detector slows the crypto-heavy protocol by roughly an order of
// magnitude, which is a property of the instrumentation, not of the
// system under test — race builds offer less load and accept looser
// tails, exactly like the repo's timing-sensitive tests.
type Tuning struct {
	// RateScale multiplies every phase's arrival rate (and the commit
	// floor derived from it).
	RateScale float64
	// LatScale multiplies every latency SLO and the recovery deadline.
	LatScale float64
	// SpamScale multiplies spammer pacing.
	SpamScale float64
}

// DefaultTuning returns the tuning for this build: unity without the
// race detector, scaled-down rates and relaxed tails with it.
func DefaultTuning() Tuning {
	if raceEnabled {
		return Tuning{RateScale: 0.2, LatScale: 8, SpamScale: 0.25}
	}
	return Tuning{RateScale: 1, LatScale: 1, SpamScale: 1}
}

// Scenario is one named production scenario: a cluster shape, an
// open-loop load profile, a chaos schedule and the SLOs the run must
// meet.
type Scenario struct {
	Name string
	Desc string

	// Workload shape: YCSB-style transactions of ReadOps reads and
	// WriteOps read-modify-writes over Keys keys.
	Keys     uint64
	ReadOps  int
	WriteOps int

	// Cluster shape. Durable gives every replica a write-ahead log under
	// a per-run temp dir (required by crash-restart and slow-disk
	// storms). EquivReplica, if >= 0, installs the equivocating-replica
	// strategy on that index of shard 0 (armed only by a chaos event).
	Shards          int
	Durable         bool
	DispatchQueue   int
	DeltaMicros     uint64
	CheckpointEvery time.Duration
	EquivReplica    int

	// Byzantine client-side spam running for the whole scenario:
	// Spammers stall-early blind-write clients paced at SpamRate ST1
	// broadcasts per second each (see internal/benchharness/admission.go
	// for why spam is write-only and paced).
	Spammers int
	SpamRate int

	Load   LoadConfig
	Events []Event
	SLO    SLO
}
