package scenario

import (
	"fmt"
	"time"
)

// SLO is a scenario's explicit service-level objectives. Zero-valued
// fields are unchecked; every non-zero field becomes one named check in
// the verdict. Latency budgets are in milliseconds before tuning (race
// builds multiply them by Tuning.LatScale); MinCommits is before tuning
// too (scaled by Tuning.RateScale).
type SLO struct {
	// CalmP99Ms bounds the p99 of completions whose intended arrival
	// predates the storm (the whole run when there is no storm window).
	CalmP99Ms float64
	// StormP99Ms bounds the p99 of arrivals inside the storm window.
	StormP99Ms float64
	// MinCommits floors the committed-transaction count.
	MinCommits uint64
	// RecoverWithin bounds how long after the storm ends throughput must
	// return to RecoverFrac of the calm baseline (sliding 3-bin window
	// over the commit timeline).
	RecoverWithin time.Duration
	// RecoverFrac is the recovered-throughput fraction (default 0.7).
	RecoverFrac float64
	// RequireSheds asserts the replicas' admission control engaged
	// (explicit sheds > 0) — the spam scenario's core claim.
	RequireSheds bool
	// RequireBackpressure asserts overload surfaced *somewhere explicit*
	// (generator drops, starved retries, replica sheds or Overloaded
	// replies) instead of only as silently growing latency.
	RequireBackpressure bool
	// MaxDropFrac bounds generator-side drops as a fraction of offered
	// load (0 = unchecked; scenarios that must not saturate set it).
	MaxDropFrac float64
}

// Check is one named SLO clause with its observed outcome.
type Check struct {
	Name   string `json:"name"`
	Ok     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// Verdict is a scenario's pass/fail decision: pass iff every check
// passed.
type Verdict struct {
	Pass   bool    `json:"pass"`
	Checks []Check `json:"checks"`
}

func (v *Verdict) add(name string, ok bool, format string, args ...any) {
	v.Checks = append(v.Checks, Check{Name: name, Ok: ok, Detail: fmt.Sprintf(format, args...)})
}

// finalize computes Pass.
func (v *Verdict) finalize() {
	v.Pass = true
	for _, c := range v.Checks {
		if !c.Ok {
			v.Pass = false
		}
	}
}

// verdictInput is everything the SLO evaluation consumes, gathered by
// RunScenario after all goroutines joined.
type verdictInput struct {
	open       OpenResult
	serialErr  error   // DSG oracle outcome over commits + resolved unknowns + final reads
	audited    int     // final-read audit transactions that committed
	unresolved int     // unknowns FinishTransaction could not decide
	sheds      uint64  // replica admission refusals
	overloads  uint64  // Overloaded replies honest clients consumed
	recoveryMs float64 // -1 = never recovered; 0 with no storm window
	eventErrs  []string
	hasEvents  bool
	tuning     Tuning
}

// evaluate renders the SLO against one run's evidence.
func (s SLO) evaluate(in verdictInput) Verdict {
	var v Verdict
	tn := in.tuning

	// Safety first: the DSG oracle over every committed transaction
	// (including post-run-resolved unknowns and the final-read audit)
	// must hold — this is the "no committed write lost" clause, since a
	// lost write surfaces as a final read serialized against its
	// timestamp order.
	if in.serialErr != nil {
		v.add("serializable", false, "%v", in.serialErr)
	} else {
		v.add("serializable", true,
			"DSG acyclic, ts-order consistent; %d final-read audits", in.audited)
	}
	v.add("unknowns-resolved", in.unresolved == 0,
		"%d unknown outcomes undecided after recovery sweep", in.unresolved)

	if s.MinCommits > 0 {
		want := uint64(float64(s.MinCommits) * tn.RateScale)
		if want == 0 {
			want = 1
		}
		v.add("min-commits", in.open.Commits >= want,
			"%d commits (floor %d)", in.open.Commits, want)
	}
	if s.CalmP99Ms > 0 {
		budget := s.CalmP99Ms * tn.LatScale
		v.add("calm-p99", in.open.CalmP99Ms <= budget,
			"%.1fms (budget %.0fms, n=%d)", in.open.CalmP99Ms, budget, in.open.CalmCount)
	}
	if s.StormP99Ms > 0 {
		budget := s.StormP99Ms * tn.LatScale
		v.add("storm-p99", in.open.StormP99Ms <= budget,
			"%.1fms (budget %.0fms, n=%d)", in.open.StormP99Ms, budget, in.open.StormCount)
	}
	if s.RecoverWithin > 0 {
		deadline := float64(s.RecoverWithin.Milliseconds()) * tn.LatScale
		ok := in.recoveryMs >= 0 && in.recoveryMs <= deadline
		detail := fmt.Sprintf("%.0fms to baseline (deadline %.0fms)", in.recoveryMs, deadline)
		if in.recoveryMs < 0 {
			detail = fmt.Sprintf("never returned to baseline (deadline %.0fms)", deadline)
		}
		v.add("recovery", ok, "%s", detail)
	}
	if s.RequireSheds {
		v.add("admission-engaged", in.sheds > 0,
			"%d replica sheds, %d honest Overloaded replies", in.sheds, in.overloads)
	}
	if s.RequireBackpressure {
		explicit := in.open.Dropped + in.open.Starved + in.sheds + in.overloads
		v.add("backpressure-explicit", explicit > 0,
			"%d drops + %d starved + %d sheds + %d overloads", in.open.Dropped, in.open.Starved, in.sheds, in.overloads)
	}
	if s.MaxDropFrac > 0 && in.open.Offered > 0 {
		frac := float64(in.open.Dropped) / float64(in.open.Offered)
		v.add("drop-frac", frac <= s.MaxDropFrac,
			"%.3f of offered load dropped (budget %.3f)", frac, s.MaxDropFrac)
	}
	if in.hasEvents {
		v.add("chaos-applied", len(in.eventErrs) == 0, "event errors: %v", in.eventErrs)
	}
	v.finalize()
	return v
}

// recoveryMs measures time from storm end until committed throughput
// returns to frac of the calm baseline: baseline is the mean commits/bin
// over the pre-storm bins (skipping the first two as warmup), recovery
// is the start of the first 3-bin sliding window at or above
// frac*baseline after the storm. Returns -1 if throughput never
// recovers inside the record, 0 when there is no storm window.
func recoveryMs(bins []uint64, binDur, stormStart, stormEnd time.Duration, frac float64) float64 {
	if stormStart == 0 && stormEnd == 0 {
		return 0
	}
	if frac <= 0 {
		frac = 0.7
	}
	stormStartBin := int(stormStart / binDur)
	stormEndBin := int(stormEnd / binDur)
	warm := 2
	if stormStartBin-warm < 1 {
		warm = 0
	}
	if stormStartBin <= warm {
		return -1
	}
	var base float64
	for _, b := range bins[warm:stormStartBin] {
		base += float64(b)
	}
	base /= float64(stormStartBin - warm)
	if base <= 0 {
		return -1
	}
	const window = 3
	// The final bin is a partial interval plus drain-tail clamp; exclude
	// it from the search.
	for i := stormEndBin; i+window <= len(bins)-1; i++ {
		var sum float64
		for _, b := range bins[i : i+window] {
			sum += float64(b)
		}
		if sum/window >= frac*base {
			ms := float64(time.Duration(i)*binDur-stormEnd) / float64(time.Millisecond)
			if ms < 0 {
				ms = 0
			}
			return ms
		}
	}
	return -1
}
