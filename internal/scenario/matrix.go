package scenario

import "time"

// Matrix is the named production-scenario suite. Rates are calibrated
// for the repo's reference single-core host (closed-loop saturation is
// roughly 200 tx/s there — see BENCH_admission.json): steady scenarios
// offer a comfortable fraction of capacity so SLO misses indict the
// storm, not the host, and the overload ramp deliberately blows far
// past it. Race builds scale all of this through DefaultTuning.
func Matrix() []Scenario {
	return []Scenario{
		{
			Name: "baseline",
			Desc: "steady open-loop load, no chaos: the SLO floor every storm is judged against",
			Keys: 512, ReadOps: 1, WriteOps: 1, EquivReplica: -1,
			Load: LoadConfig{
				Phases:   []LoadPhase{{Dur: 8 * time.Second, StartRate: 60, EndRate: 60}},
				Sessions: 8, MaxPending: 128,
			},
			SLO: SLO{CalmP99Ms: 400, MinCommits: 300, MaxDropFrac: 0.01},
		},
		{
			Name: "ramp-to-overload",
			Desc: "arrival rate ramps to ~3x capacity; overload must surface as explicit backpressure, not silent collapse",
			Keys: 512, ReadOps: 1, WriteOps: 1, EquivReplica: -1,
			Load: LoadConfig{
				Phases: []LoadPhase{
					{Dur: 2 * time.Second, StartRate: 50, EndRate: 50},
					{Dur: 3 * time.Second, StartRate: 50, EndRate: 600},
					{Dur: 1500 * time.Millisecond, StartRate: 600, EndRate: 600},
				},
				Sessions: 8, MaxPending: 192,
				StormStart: 2 * time.Second, StormEnd: 6500 * time.Millisecond,
			},
			SLO: SLO{CalmP99Ms: 400, MinCommits: 200, RequireBackpressure: true},
		},
		{
			Name: "kill-mid-storm",
			Desc: "one replica crashes under load and restarts from its WAL; no committed write may be lost",
			Keys: 384, ReadOps: 1, WriteOps: 1, EquivReplica: -1, Durable: true,
			Load: LoadConfig{
				Phases:   []LoadPhase{{Dur: 8 * time.Second, StartRate: 35, EndRate: 35}},
				Sessions: 8, MaxPending: 128,
				StormStart: 2500 * time.Millisecond, StormEnd: 5 * time.Second,
			},
			Events: []Event{
				KillReplica(2500*time.Millisecond, 0, 4),
				RestartReplica(5*time.Second, 0, 4),
			},
			SLO: SLO{CalmP99Ms: 500, MinCommits: 120, RecoverWithin: 2500 * time.Millisecond},
		},
		{
			Name: "slow-disk",
			Desc: "every WAL fsync slows by 6ms mid-run (group commit absorbs it or the tail shows it), then heals",
			Keys: 384, ReadOps: 1, WriteOps: 1, EquivReplica: -1, Durable: true,
			Load: LoadConfig{
				Phases:   []LoadPhase{{Dur: 8 * time.Second, StartRate: 35, EndRate: 35}},
				Sessions: 8, MaxPending: 128,
				StormStart: 2500 * time.Millisecond, StormEnd: 5 * time.Second,
			},
			Events: []Event{
				SlowDisk(2500*time.Millisecond, 6*time.Millisecond),
				FastDisk(5 * time.Second),
			},
			SLO: SLO{CalmP99Ms: 500, StormP99Ms: 2000, MinCommits: 140, RecoverWithin: 2500 * time.Millisecond},
		},
		{
			Name: "partition-heal",
			Desc: "one replica is partitioned away (fast path dies, slow path carries on) and later heals",
			Keys: 512, ReadOps: 1, WriteOps: 1, EquivReplica: -1,
			Load: LoadConfig{
				Phases:   []LoadPhase{{Dur: 8 * time.Second, StartRate: 40, EndRate: 40}},
				Sessions: 8, MaxPending: 128,
				StormStart: 2500 * time.Millisecond, StormEnd: 5 * time.Second,
			},
			Events: []Event{
				Partition(2500*time.Millisecond, 0, 5),
				Heal(5 * time.Second),
			},
			SLO: SLO{CalmP99Ms: 400, MinCommits: 150, RecoverWithin: 2500 * time.Millisecond},
		},
		{
			Name: "equivocating-replica",
			Desc: "a Byzantine replica sends different ST1 votes to different recipients; serializability must hold anyway",
			Keys: 512, ReadOps: 1, WriteOps: 1, EquivReplica: 5,
			Load: LoadConfig{
				Phases:   []LoadPhase{{Dur: 8 * time.Second, StartRate: 40, EndRate: 40}},
				Sessions: 8, MaxPending: 128,
				StormStart: 2500 * time.Millisecond, StormEnd: 5 * time.Second,
			},
			Events: []Event{
				ArmEquivocation(2500 * time.Millisecond),
				DisarmEquivocation(5 * time.Second),
			},
			SLO: SLO{CalmP99Ms: 400, MinCommits: 150},
		},
		{
			Name: "spammer-honest-mix",
			Desc: "a stall-early spam client floods a bounded shard; admission must shed it while honest traffic commits",
			Keys: 384, ReadOps: 1, WriteOps: 1, EquivReplica: -1,
			DispatchQueue: 24, DeltaMicros: 250_000, CheckpointEvery: 100 * time.Millisecond,
			Spammers: 1, SpamRate: 3000,
			Load: LoadConfig{
				Phases:   []LoadPhase{{Dur: 8 * time.Second, StartRate: 30, EndRate: 30}},
				Sessions: 8, MaxPending: 128,
			},
			SLO: SLO{CalmP99Ms: 900, MinCommits: 100, RequireSheds: true},
		},
	}
}

// Smoke is the seeded subset that runs inside the regular test suite:
// short, low-rate versions of the calm baseline and the partition storm,
// tuned so a race build on a single core still meets its scaled SLOs.
func Smoke() []Scenario {
	return []Scenario{
		{
			Name: "smoke-baseline",
			Desc: "short steady run, no chaos",
			Keys: 128, ReadOps: 1, WriteOps: 1, EquivReplica: -1,
			Load: LoadConfig{
				Phases:   []LoadPhase{{Dur: 2500 * time.Millisecond, StartRate: 30, EndRate: 30}},
				Sessions: 4, MaxPending: 64, Bin: 200 * time.Millisecond,
			},
			SLO: SLO{CalmP99Ms: 500, MinCommits: 40, MaxDropFrac: 0.02},
		},
		{
			Name: "smoke-partition-heal",
			Desc: "short partition storm over one replica",
			Keys: 128, ReadOps: 1, WriteOps: 1, EquivReplica: -1,
			Load: LoadConfig{
				Phases:   []LoadPhase{{Dur: 4 * time.Second, StartRate: 25, EndRate: 25}},
				Sessions: 4, MaxPending: 64, Bin: 200 * time.Millisecond,
				StormStart: 1200 * time.Millisecond, StormEnd: 2400 * time.Millisecond,
			},
			Events: []Event{
				Partition(1200*time.Millisecond, 0, 5),
				Heal(2400 * time.Millisecond),
			},
			SLO: SLO{CalmP99Ms: 500, MinCommits: 30, RecoverWithin: 1500 * time.Millisecond},
		},
	}
}
