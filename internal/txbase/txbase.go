// Package txbase is the transaction layer the paper layers over black-box
// ordered logs to build its TxHotstuff and TxBFT-SMaRt baselines (§6): a
// per-shard key-value store with an OCC serializability check, driven by a
// client-side two-phase commit in which both the Prepare and the
// Commit/Abort of every transaction are totally ordered by the shard's
// consensus group.
//
// Each shard runs one consensus group (PBFT or HotStuff) at shard id
// ConsensusShardBase+s, and 3f+1 execution nodes at shard id s. Execution
// is deterministic, so correct replicas return matching votes; clients
// wait for f+1 matching replies, and replies are Merkle-batch signed just
// like Basil's (the paper grants the baselines the same batching scheme).
package txbase

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/types"
)

// ConsensusShardBase offsets consensus-group addresses from execution-node
// addresses on the shared transport.
const ConsensusShardBase = 1 << 20

// Op codes for ordered commands.
const (
	opPrepare byte = 1
	opDecide  byte = 2
)

// TxRecordID identifies a transaction in the baseline layer.
type TxRecordID = types.TxID

// PrepareCmd is the ordered prepare request.
type PrepareCmd struct {
	TxID     types.TxID
	ReadKeys []string
	ReadVers []uint64
	WriteK   []string
	WriteV   [][]byte
}

// encodeCmd serializes a command payload.
func encodePrepare(p *PrepareCmd) []byte {
	b := []byte{opPrepare}
	b = append(b, p.TxID[:]...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(p.ReadKeys)))
	for i, k := range p.ReadKeys {
		b = appendStr(b, k)
		b = binary.BigEndian.AppendUint64(b, p.ReadVers[i])
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(p.WriteK)))
	for i, k := range p.WriteK {
		b = appendStr(b, k)
		b = appendStr(b, string(p.WriteV[i]))
	}
	return b
}

func encodeDecide(id types.TxID, commit bool) []byte {
	b := []byte{opDecide}
	b = append(b, id[:]...)
	if commit {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

func appendStr(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

type reader struct {
	b []byte
	e bool
}

func (r *reader) str() string {
	if r.e || len(r.b) < 4 {
		r.e = true
		return ""
	}
	n := int(binary.BigEndian.Uint32(r.b))
	r.b = r.b[4:]
	if len(r.b) < n {
		r.e = true
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) u64() uint64 {
	if r.e || len(r.b) < 8 {
		r.e = true
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) u32() uint32 {
	if r.e || len(r.b) < 4 {
		r.e = true
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func decodePrepare(b []byte) (*PrepareCmd, bool) {
	if len(b) < 1+32 {
		return nil, false
	}
	p := &PrepareCmd{}
	copy(p.TxID[:], b[1:33])
	r := &reader{b: b[33:]}
	nr := int(r.u32())
	for i := 0; i < nr && !r.e; i++ {
		p.ReadKeys = append(p.ReadKeys, r.str())
		p.ReadVers = append(p.ReadVers, r.u64())
	}
	nw := int(r.u32())
	for i := 0; i < nw && !r.e; i++ {
		p.WriteK = append(p.WriteK, r.str())
		p.WriteV = append(p.WriteV, []byte(r.str()))
	}
	return p, !r.e
}

// --- wire messages between clients and execution nodes ---

// ReadReq asks an execution node for a key's committed value.
type ReadReq struct {
	ReqID uint64
	Key   string
}

// ReadResp answers with the value and its version.
type ReadResp struct {
	ReqID   uint64
	Key     string
	Value   []byte
	Version uint64
	Replica int32
	Sig     types.Signature
}

func (r *ReadResp) payload() []byte {
	b := []byte("txb/read/")
	b = binary.BigEndian.AppendUint64(b, r.ReqID)
	b = appendStr(b, r.Key)
	b = appendStr(b, string(r.Value))
	b = binary.BigEndian.AppendUint64(b, r.Version)
	b = binary.BigEndian.AppendUint32(b, uint32(r.Replica))
	return b
}

// TxResp reports an execution node's result for an ordered command.
type TxResp struct {
	ReqID   uint64
	TxID    types.TxID
	Phase   byte // opPrepare or opDecide
	Commit  bool // prepare vote, or decision echo
	Replica int32
	Sig     types.Signature
}

func (r *TxResp) payload() []byte {
	b := []byte("txb/resp/")
	b = binary.BigEndian.AppendUint64(b, r.ReqID)
	b = append(b, r.TxID[:]...)
	b = append(b, r.Phase)
	if r.Commit {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(r.Replica))
	return b
}

// --- execution node ---

type entry struct {
	val []byte
	ver uint64
}

type preparedTx struct {
	cmd  *PrepareCmd
	vote bool
}

// ExecNode is one replica's execution state for one shard.
type ExecNode struct {
	shard   int32
	index   int32
	addr    transport.Addr
	net     transport.Network
	batcher *cryptoutil.BatchSigner

	// mu guards all execution state below (kv, locks, prepared, decided,
	// seq); one big lock is the point of this baseline.
	mu       sync.Mutex
	kv       map[string]entry
	locks    map[string]types.TxID
	prepared map[types.TxID]*preparedTx
	decided  map[types.TxID]bool
	seq      uint64
	// reqOrigin remembers which client submitted a command so replies can
	// be routed (commands carry ClientID).
}

// NewExecNode builds the execution node for (shard, index).
func NewExecNode(shard, index int32, net transport.Network, signer cryptoutil.Signer, batch int, delay time.Duration) *ExecNode {
	n := &ExecNode{
		shard: shard, index: index,
		addr:     transport.ReplicaAddr(shard, index),
		net:      net,
		batcher:  cryptoutil.NewBatchSigner(signer, batch, delay),
		kv:       make(map[string]entry),
		locks:    make(map[string]types.TxID),
		prepared: make(map[types.TxID]*preparedTx),
		decided:  make(map[types.TxID]bool),
	}
	net.Register(n.addr, n)
	return n
}

// Load installs an initial value.
func (n *ExecNode) Load(key string, val []byte) {
	n.mu.Lock()
	n.kv[key] = entry{val: val}
	n.mu.Unlock()
}

// Close flushes the reply batcher.
func (n *ExecNode) Close() { n.batcher.Close() }

// Deliver serves unordered reads.
func (n *ExecNode) Deliver(from transport.Addr, msg any) {
	rr, ok := msg.(*ReadReq)
	if !ok {
		return
	}
	n.mu.Lock()
	e := n.kv[rr.Key]
	n.mu.Unlock()
	resp := &ReadResp{ReqID: rr.ReqID, Key: rr.Key, Value: e.val, Version: e.ver, Replica: n.index}
	n.batcher.Enqueue(resp.payload(), func(sig types.Signature) {
		resp.Sig = sig
		n.net.Send(n.addr, from, resp)
	})
}

// Execute applies one committed block (smr.Executor contract); commands
// are deterministic so all correct replicas produce identical votes.
func (n *ExecNode) Execute(_ int32, blk *smr.Block) {
	for i := range blk.Cmds {
		cmd := blk.Cmds[i]
		n.seq++
		if len(cmd.Payload) == 0 {
			continue
		}
		switch cmd.Payload[0] {
		case opPrepare:
			p, ok := decodePrepare(cmd.Payload)
			if !ok {
				continue
			}
			vote := n.applyPrepare(p)
			n.reply(cmd, opPrepare, p.TxID, vote)
		case opDecide:
			if len(cmd.Payload) < 34 {
				continue
			}
			var id types.TxID
			copy(id[:], cmd.Payload[1:33])
			commit := cmd.Payload[33] == 1
			n.applyDecide(id, commit)
			n.reply(cmd, opDecide, id, commit)
		}
	}
}

// applyPrepare runs the standard OCC backward-validation check (Kung &
// Robinson [60], as in the paper's baseline execution layer): every read
// must still see the current committed version and no touched key may be
// locked by another in-flight transaction; on success the write set is
// locked until the decision arrives.
func (n *ExecNode) applyPrepare(p *PrepareCmd) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if pt, dup := n.prepared[p.TxID]; dup {
		return pt.vote
	}
	vote := true
	for i, k := range p.ReadKeys {
		if n.kv[k].ver != p.ReadVers[i] {
			vote = false
			break
		}
		if owner, locked := n.locks[k]; locked && owner != p.TxID {
			vote = false
			break
		}
	}
	if vote {
		for _, k := range p.WriteK {
			if owner, locked := n.locks[k]; locked && owner != p.TxID {
				vote = false
				break
			}
		}
	}
	if vote {
		for _, k := range p.WriteK {
			n.locks[k] = p.TxID
		}
	}
	n.prepared[p.TxID] = &preparedTx{cmd: p, vote: vote}
	return vote
}

// applyDecide commits or aborts a prepared transaction.
func (n *ExecNode) applyDecide(id types.TxID, commit bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.decided[id] {
		return
	}
	n.decided[id] = true
	pt := n.prepared[id]
	if pt == nil {
		return
	}
	delete(n.prepared, id)
	if commit && pt.vote {
		for i, k := range pt.cmd.WriteK {
			n.kv[k] = entry{val: pt.cmd.WriteV[i], ver: n.seq}
		}
	}
	for _, k := range pt.cmd.WriteK {
		if n.locks[k] == id {
			delete(n.locks, k)
		}
	}
}

func (n *ExecNode) reply(cmd smr.Command, phase byte, id types.TxID, commit bool) {
	resp := &TxResp{ReqID: cmd.ReqID, TxID: id, Phase: phase, Commit: commit, Replica: n.index}
	to := transport.ClientAddr(int32(cmd.ClientID))
	n.batcher.Enqueue(resp.payload(), func(sig types.Signature) {
		resp.Sig = sig
		n.net.Send(n.addr, to, resp)
	})
}

// Submitter abstracts the consensus group's submission entry point
// (satisfied by pbft.Group and hotstuff.Group).
type Submitter interface {
	Submit(from transport.Addr, cmd smr.Command)
}

// errors
var (
	// ErrAborted mirrors basil's abort result.
	ErrAborted = errors.New("txbase: transaction aborted")
	// ErrTimeout reports reply starvation.
	ErrTimeout = errors.New("txbase: timeout")
)
