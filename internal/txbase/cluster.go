package txbase

import (
	"hash/fnv"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/smr"
	"repro/internal/smr/hotstuff"
	"repro/internal/smr/pbft"
	"repro/internal/transport"
)

// Kind selects the ordered-log substrate.
type Kind int

// Substrate kinds.
const (
	// KindPBFT is the TxBFT-SMaRt stand-in.
	KindPBFT Kind = iota
	// KindHotStuff is the TxHotstuff stand-in.
	KindHotStuff
)

func (k Kind) String() string {
	if k == KindHotStuff {
		return "TxHotstuff"
	}
	return "TxBFT-SMaRt"
}

// ClusterConfig parameterizes a baseline deployment.
type ClusterConfig struct {
	F          int // n = 3f+1 per shard
	Shards     int
	BatchMax   int // consensus batch size (paper: 4 for HotStuff, 16 for BFT-SMaRt)
	BatchDelay time.Duration
	SigBatch   int // reply-signature batch size
	Seed       int64
	ShardOf    func(key string) int32
	Timeout    time.Duration
}

// Cluster is a running baseline deployment: per shard, one consensus group
// plus 3f+1 deterministic execution nodes.
type Cluster struct {
	cfg      ClusterConfig
	kind     Kind
	net      *transport.Local
	registry *cryptoutil.Registry
	signerOf func(shard, replica int32) int32
	exec     [][]*ExecNode
	submit   func(s int32, from transport.Addr, cmd PreparedCommand)
	closers  []func()
	nextCli  int32
}

// NewCluster builds and starts a baseline cluster of the given kind.
func NewCluster(kind Kind, cfg ClusterConfig) *Cluster {
	if cfg.F <= 0 {
		cfg.F = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.BatchMax <= 0 {
		if kind == KindHotStuff {
			cfg.BatchMax = 4 // the paper's best TxHotstuff batch
		} else {
			cfg.BatchMax = 16 // the paper's best TxBFT-SMaRt batch
		}
	}
	if cfg.BatchDelay <= 0 {
		cfg.BatchDelay = time.Millisecond
	}
	if cfg.SigBatch <= 0 {
		cfg.SigBatch = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.ShardOf == nil {
		shards := int32(cfg.Shards)
		cfg.ShardOf = func(key string) int32 {
			h := fnv.New32a()
			h.Write([]byte(key))
			return int32(h.Sum32() % uint32(shards))
		}
	}
	n := 3*cfg.F + 1
	net := transport.NewLocal()
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, cfg.Shards*n, cfg.Seed)
	signerOf := func(shard, replica int32) int32 {
		s := shard
		if s >= ConsensusShardBase {
			s -= ConsensusShardBase
		}
		return s*int32(n) + replica
	}
	c := &Cluster{
		cfg: cfg, kind: kind, net: net, registry: reg, signerOf: signerOf,
		exec: make([][]*ExecNode, cfg.Shards),
	}
	type groupHandle interface {
		Submit(from transport.Addr, cmd smr.Command)
		Close()
	}
	groups := make([]groupHandle, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		c.exec[s] = make([]*ExecNode, n)
		execs := c.exec[s]
		for i := 0; i < n; i++ {
			execs[i] = NewExecNode(int32(s), int32(i), net,
				reg.Signer(signerOf(int32(s), int32(i))), cfg.SigBatch, 500*time.Microsecond)
		}
		// The consensus executor fans a committed block out to every
		// execution node of the shard (each consensus replica i drives
		// exec node i; in-process we route by replica index).
		executor := execFan{nodes: execs}
		switch kind {
		case KindHotStuff:
			g := hotstuff.NewGroup(hotstuff.Config{
				Shard: ConsensusShardBase + int32(s), F: cfg.F,
				BatchMax: cfg.BatchMax, BatchDelay: cfg.BatchDelay,
				Registry: reg, SignerOf: signerOf, Net: net, Executor: executor,
			})
			groups[s] = g
		default:
			g := pbft.NewGroup(pbft.Config{
				Shard: ConsensusShardBase + int32(s), F: cfg.F,
				BatchMax: cfg.BatchMax, BatchDelay: cfg.BatchDelay,
				Registry: reg, SignerOf: signerOf, Net: net, Executor: executor,
			})
			groups[s] = g
		}
		c.closers = append(c.closers, groups[s].Close)
	}
	c.submit = func(s int32, from transport.Addr, cmd PreparedCommand) {
		groups[s].Submit(from, smr.Command{ClientID: cmd.ClientID, ReqID: cmd.ReqID, Payload: cmd.Payload})
	}
	return c
}

// execFan delivers a committed block to the execution node matching the
// consensus replica that committed it.
type execFan struct {
	nodes []*ExecNode
}

// Execute implements smr.Executor.
func (f execFan) Execute(replicaIndex int32, blk *smr.Block) {
	if int(replicaIndex) < len(f.nodes) {
		f.nodes[replicaIndex].Execute(replicaIndex, blk)
	}
}

// Load installs a key's initial value on its shard.
func (c *Cluster) Load(key string, val []byte) {
	s := c.cfg.ShardOf(key)
	for _, n := range c.exec[s] {
		n.Load(key, val)
	}
}

// NewClient attaches a baseline client.
func (c *Cluster) NewClient() *Client {
	c.nextCli++
	return NewClient(ClientConfig{
		ID: c.nextCli, F: c.cfg.F, NumShards: int32(c.cfg.Shards),
		ShardOf: c.cfg.ShardOf, Net: c.net, Registry: c.registry,
		SignerOf: c.signerOf, Submit: c.submit, Timeout: c.cfg.Timeout,
	})
}

// Kind reports the substrate kind.
func (c *Cluster) Kind() Kind { return c.kind }

// Net exposes the transport for policy injection (latency experiments).
func (c *Cluster) Net() *transport.Local { return c.net }

// Close stops the cluster.
func (c *Cluster) Close() {
	for _, cl := range c.closers {
		cl()
	}
	for _, shard := range c.exec {
		for _, n := range shard {
			n.Close()
		}
	}
	c.net.Close()
}
