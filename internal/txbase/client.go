package txbase

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/quorum"
	"repro/internal/transport"
	"repro/internal/types"
)

// ClientConfig parameterizes a baseline client.
type ClientConfig struct {
	ID        int32
	F         int // per-shard consensus fault threshold (n = 3f+1)
	NumShards int32
	ShardOf   func(key string) int32
	Net       transport.Network
	Registry  *cryptoutil.Registry
	SignerOf  quorum.SignerOf
	// Submit hands a command to shard s's consensus group.
	Submit func(s int32, from transport.Addr, cmd PreparedCommand)
	// Timeout bounds each phase.
	Timeout time.Duration
}

// PreparedCommand pairs an opaque payload with its client routing info.
type PreparedCommand struct {
	ClientID uint64
	ReqID    uint64
	Payload  []byte
}

// Stats counts client events.
type Stats struct {
	TxBegun     atomic.Uint64
	TxCommitted atomic.Uint64
	TxAborted   atomic.Uint64
}

// Client drives interactive transactions over the ordered-log baseline:
// reads are unordered quorum reads; Prepare and Commit/Abort are both
// totally ordered per shard (two consensus instances per shard per
// transaction — the redundant coordination Basil's merged design removes).
type Client struct {
	cfg    ClientConfig
	addr   transport.Addr
	sv     *cryptoutil.SigVerifier
	reqSeq atomic.Uint64
	// mu guards pending; held only for map bookkeeping, never across a
	// network wait.
	mu      sync.Mutex
	pending map[uint64]chan any

	Stats Stats
}

// NewClient constructs and registers a baseline client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	c := &Client{
		cfg:     cfg,
		addr:    transport.ClientAddr(cfg.ID),
		sv:      cryptoutil.NewSigVerifier(cfg.Registry, 4096),
		pending: make(map[uint64]chan any),
	}
	cfg.Net.Register(c.addr, c)
	return c
}

// Deliver routes replies to pending requests.
func (c *Client) Deliver(_ transport.Addr, msg any) {
	var reqID uint64
	switch m := msg.(type) {
	case *ReadResp:
		reqID = m.ReqID
	case *TxResp:
		reqID = m.ReqID
	default:
		return
	}
	c.mu.Lock()
	ch := c.pending[reqID]
	c.mu.Unlock()
	if ch != nil {
		select {
		case ch <- msg:
		default:
		}
	}
}

func (c *Client) newRequest(buf int) (uint64, chan any) {
	id := c.reqSeq.Add(1)
	ch := make(chan any, buf)
	c.mu.Lock()
	c.pending[id] = ch
	c.mu.Unlock()
	return id, ch
}

func (c *Client) endRequest(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Txn is a baseline interactive transaction.
type Txn struct {
	c        *Client
	reads    map[string]uint64 // key -> version read
	readKeys []string
	writes   map[string][]byte
	writeKs  []string
}

// Begin starts a transaction.
func (c *Client) Begin() *Txn {
	c.Stats.TxBegun.Add(1)
	return &Txn{c: c, reads: make(map[string]uint64), writes: make(map[string][]byte)}
}

// Read performs an unordered quorum read (f+1 matching of 2f+1 asked).
func (t *Txn) Read(key string) ([]byte, error) {
	if v, ok := t.writes[key]; ok {
		return v, nil
	}
	c := t.c
	n := 3*c.cfg.F + 1
	shard := c.cfg.ShardOf(key)
	reqID, ch := c.newRequest(n)
	defer c.endRequest(reqID)
	req := &ReadReq{ReqID: reqID, Key: key}
	ask := 2*c.cfg.F + 1
	off := int(reqID) % n
	tos := make([]transport.Addr, ask)
	for i := range tos {
		tos[i] = transport.ReplicaAddr(shard, int32((off+i)%n))
	}
	c.cfg.Net.SendAll(c.addr, tos, req)
	type rv struct {
		ver uint64
		val string
	}
	counts := make(map[rv]int)
	deadline := time.NewTimer(c.cfg.Timeout)
	defer deadline.Stop()
	for {
		select {
		case m := <-ch:
			r, ok := m.(*ReadResp)
			if !ok || r.Key != key {
				continue
			}
			sig := r.Sig
			if sig.SignerID != c.cfg.SignerOf(shard, r.Replica) || !c.sv.Verify(r.payload(), &sig) {
				continue
			}
			k := rv{r.Version, string(r.Value)}
			counts[k]++
			if counts[k] >= c.cfg.F+1 {
				if _, seen := t.reads[key]; !seen {
					t.reads[key] = r.Version
					t.readKeys = append(t.readKeys, key)
				}
				return r.Value, nil
			}
		case <-deadline.C:
			return nil, ErrTimeout
		}
	}
}

// Write buffers a write.
func (t *Txn) Write(key string, value []byte) {
	if _, ok := t.writes[key]; !ok {
		t.writeKs = append(t.writeKs, key)
	}
	t.writes[key] = value
}

// Abort abandons the transaction (nothing was made visible).
func (t *Txn) Abort() { t.c.Stats.TxAborted.Add(1) }

// Commit runs 2PC with both phases ordered per shard.
func (t *Txn) Commit() error {
	c := t.c
	shards := t.participantShards()
	if len(shards) == 0 {
		c.Stats.TxCommitted.Add(1)
		return nil
	}
	id := t.txID(shards)

	// Phase 1: ordered Prepare on each shard; gather f+1 matching votes.
	commit := true
	reqID, ch := c.newRequest((3*c.cfg.F + 1) * len(shards))
	for _, s := range shards {
		cmd := t.prepareCmdFor(s, id)
		c.cfg.Submit(s, c.addr, PreparedCommand{ClientID: uint64(c.cfg.ID), ReqID: reqID, Payload: cmd})
	}
	votes, err := c.collectPhase(ch, id, opPrepare, shards)
	c.endRequest(reqID)
	if err != nil {
		c.Stats.TxAborted.Add(1)
		return err
	}
	for _, s := range shards {
		if !votes[s] {
			commit = false
		}
	}

	// Phase 2: ordered Commit/Abort on each shard; wait for f+1 acks.
	reqID2, ch2 := c.newRequest((3*c.cfg.F + 1) * len(shards))
	payload := encodeDecide(id, commit)
	for _, s := range shards {
		c.cfg.Submit(s, c.addr, PreparedCommand{ClientID: uint64(c.cfg.ID), ReqID: reqID2, Payload: payload})
	}
	_, err = c.collectPhase(ch2, id, opDecide, shards)
	c.endRequest(reqID2)
	if err != nil {
		c.Stats.TxAborted.Add(1)
		return err
	}
	if commit {
		c.Stats.TxCommitted.Add(1)
		return nil
	}
	c.Stats.TxAborted.Add(1)
	return ErrAborted
}

// collectPhase waits for f+1 matching replies per shard.
func (c *Client) collectPhase(ch chan any, id types.TxID, phase byte, shards []int32) (map[int32]bool, error) {
	// Replica indexes are shard-local; shard identity is implicit in the
	// signer id, so track votes per (shard) via signer mapping.
	type skey struct {
		shard   int32
		replica int32
	}
	need := c.cfg.F + 1
	seen := make(map[skey]bool)
	tally := make(map[int32]map[bool]int)
	result := make(map[int32]bool)
	deadline := time.NewTimer(c.cfg.Timeout)
	defer deadline.Stop()
	for {
		select {
		case m := <-ch:
			r, ok := m.(*TxResp)
			if !ok || r.TxID != id || r.Phase != phase {
				continue
			}
			// Identify the shard by trying each participant's signer map.
			matched := int32(-1)
			sig := r.Sig
			for _, s := range shards {
				if sig.SignerID == c.cfg.SignerOf(s, r.Replica) {
					matched = s
					break
				}
			}
			if matched < 0 || !c.sv.Verify(r.payload(), &sig) {
				continue
			}
			k := skey{matched, r.Replica}
			if seen[k] {
				continue
			}
			seen[k] = true
			if tally[matched] == nil {
				tally[matched] = make(map[bool]int)
			}
			tally[matched][r.Commit]++
			if tally[matched][r.Commit] >= need {
				if _, done := result[matched]; !done {
					result[matched] = r.Commit
				}
			}
			if len(result) == len(shards) {
				return result, nil
			}
		case <-deadline.C:
			return nil, ErrTimeout
		}
	}
}

func (t *Txn) participantShards() []int32 {
	set := make(map[int32]bool)
	for _, k := range t.readKeys {
		set[t.c.cfg.ShardOf(k)] = true
	}
	for _, k := range t.writeKs {
		set[t.c.cfg.ShardOf(k)] = true
	}
	out := make([]int32, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// txID derives a unique id from the client, a nonce and the access sets.
func (t *Txn) txID(shards []int32) types.TxID {
	b := make([]byte, 0, 128)
	b = binary.BigEndian.AppendUint32(b, uint32(t.c.cfg.ID))
	b = binary.BigEndian.AppendUint64(b, t.c.reqSeq.Add(1))
	for _, k := range t.readKeys {
		b = appendStr(b, k)
		b = binary.BigEndian.AppendUint64(b, t.reads[k])
	}
	for _, k := range t.writeKs {
		b = appendStr(b, k)
		b = appendStr(b, string(t.writes[k]))
	}
	for _, s := range shards {
		b = binary.BigEndian.AppendUint32(b, uint32(s))
	}
	return sha256.Sum256(b)
}

// prepareCmdFor builds the shard-local prepare payload.
func (t *Txn) prepareCmdFor(s int32, id types.TxID) []byte {
	p := &PrepareCmd{TxID: id}
	for _, k := range t.readKeys {
		if t.c.cfg.ShardOf(k) == s {
			p.ReadKeys = append(p.ReadKeys, k)
			p.ReadVers = append(p.ReadVers, t.reads[k])
		}
	}
	for _, k := range t.writeKs {
		if t.c.cfg.ShardOf(k) == s {
			p.WriteK = append(p.WriteK, k)
			p.WriteV = append(p.WriteV, t.writes[k])
		}
	}
	return encodePrepare(p)
}
