package txbase

import (
	"encoding/binary"
	"sync"
	"testing"
)

func enc64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func dec64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func testBasic(t *testing.T, kind Kind) {
	t.Helper()
	cl := NewCluster(kind, ClusterConfig{F: 1, Shards: 1, BatchMax: 1})
	defer cl.Close()
	cl.Load("x", enc64(10))

	c := cl.NewClient()
	tx := c.Begin()
	v, err := tx.Read("x")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if dec64(v) != 10 {
		t.Fatalf("x=%d want 10", dec64(v))
	}
	tx.Write("x", enc64(11))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	tx2 := c.Begin()
	v, err = tx2.Read("x")
	if err != nil {
		t.Fatalf("read2: %v", err)
	}
	if dec64(v) != 11 {
		t.Fatalf("x=%d after commit, want 11", dec64(v))
	}
	tx2.Abort()
}

func TestPBFTBasic(t *testing.T)     { testBasic(t, KindPBFT) }
func TestHotStuffBasic(t *testing.T) { testBasic(t, KindHotStuff) }

func testCounter(t *testing.T, kind Kind) {
	t.Helper()
	cl := NewCluster(kind, ClusterConfig{F: 1, Shards: 1, BatchMax: 2})
	defer cl.Close()
	cl.Load("ctr", enc64(0))

	const workers = 3
	const per = 5
	var wg sync.WaitGroup
	var mu sync.Mutex
	commits := 0
	for w := 0; w < workers; w++ {
		c := cl.NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					tx := c.Begin()
					v, err := tx.Read("ctr")
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					tx.Write("ctr", enc64(dec64(v)+1))
					if err := tx.Commit(); err == nil {
						mu.Lock()
						commits++
						mu.Unlock()
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	c := cl.NewClient()
	tx := c.Begin()
	v, err := tx.Read("ctr")
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	tx.Abort()
	if dec64(v) != uint64(commits) || commits != workers*per {
		t.Fatalf("ctr=%d commits=%d want %d", dec64(v), commits, workers*per)
	}
}

func TestPBFTCounter(t *testing.T)     { testCounter(t, KindPBFT) }
func TestHotStuffCounter(t *testing.T) { testCounter(t, KindHotStuff) }

func testCrossShard(t *testing.T, kind Kind) {
	t.Helper()
	cl := NewCluster(kind, ClusterConfig{
		F: 1, Shards: 2, BatchMax: 1,
		ShardOf: func(k string) int32 { return int32(k[0]-'a') % 2 },
	})
	defer cl.Close()
	cl.Load("a", enc64(100))
	cl.Load("b", enc64(0))

	c := cl.NewClient()
	tx := c.Begin()
	av, err := tx.Read("a")
	if err != nil {
		t.Fatalf("read a: %v", err)
	}
	bv, err := tx.Read("b")
	if err != nil {
		t.Fatalf("read b: %v", err)
	}
	tx.Write("a", enc64(dec64(av)-40))
	tx.Write("b", enc64(dec64(bv)+40))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	tx2 := c.Begin()
	av, _ = tx2.Read("a")
	bv, _ = tx2.Read("b")
	tx2.Abort()
	if dec64(av) != 60 || dec64(bv) != 40 {
		t.Fatalf("a=%d b=%d want 60 40", dec64(av), dec64(bv))
	}
}

func TestPBFTCrossShard(t *testing.T)     { testCrossShard(t, KindPBFT) }
func TestHotStuffCrossShard(t *testing.T) { testCrossShard(t, KindHotStuff) }

func TestPrepareEncodingRoundTrip(t *testing.T) {
	p := &PrepareCmd{
		ReadKeys: []string{"k1", "k2"},
		ReadVers: []uint64{3, 9},
		WriteK:   []string{"w"},
		WriteV:   [][]byte{[]byte("val")},
	}
	p.TxID[0] = 0xAB
	got, ok := decodePrepare(encodePrepare(p))
	if !ok {
		t.Fatal("decode failed")
	}
	if got.TxID != p.TxID || len(got.ReadKeys) != 2 || got.ReadVers[1] != 9 ||
		got.WriteK[0] != "w" || string(got.WriteV[0]) != "val" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}
