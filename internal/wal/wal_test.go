package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// openT opens a log in dir, failing the test on error.
func openT(t *testing.T, dir string, opts Options) (*Log, *Recovered) {
	t.Helper()
	opts.Dir = dir
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func recN(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(recN(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rec2 := openT(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), n)
	}
	for i, r := range rec2.Records {
		if !bytes.Equal(r, recN(i)) {
			t.Fatalf("record %d = %q, want %q", i, r, recN(i))
		}
	}
	// Appending after recovery extends the same history.
	if err := l2.Append(recN(n)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	l2.Close()
	_, rec3 := openT(t, dir, Options{})
	if len(rec3.Records) != n+1 {
		t.Fatalf("after re-append: %d records, want %d", len(rec3.Records), n+1)
	}
}

func TestWALTruncatedTailTolerated(t *testing.T) {
	for _, cut := range []int{1, 5, 9} { // bytes chopped off the last frame
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openT(t, dir, Options{})
			for i := 0; i < 10; i++ {
				if err := l.Append(recN(i)); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()

			// Tear the tail of the (only) segment, as a crash mid-write would.
			path := filepath.Join(dir, segName(1))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
				t.Fatal(err)
			}

			l2, rec := openT(t, dir, Options{})
			if len(rec.Records) != 9 {
				t.Fatalf("recovered %d records after torn tail, want 9", len(rec.Records))
			}
			// The torn bytes are gone: appending then re-opening must yield a
			// clean history of 9 old + 1 new records.
			if err := l2.Append([]byte("fresh")); err != nil {
				t.Fatal(err)
			}
			l2.Close()
			_, rec2 := openT(t, dir, Options{})
			if len(rec2.Records) != 10 || string(rec2.Records[9]) != "fresh" {
				t.Fatalf("post-truncation history wrong: %d records", len(rec2.Records))
			}
		})
	}
}

func TestWALCorruptionMidLogRefused(t *testing.T) {
	dir := t.TempDir()
	// Two segments: tiny SegmentBytes forces rotation.
	l, _ := openT(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if err := l.Append(recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Flip a payload byte in the FIRST segment: not a tail, so replay must
	// refuse rather than silently drop records.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+8] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted mid-log corruption")
	}
}

func TestWALCheckpointPrunesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		if err := l.Append(recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(func() []byte { return []byte("snapshot-at-20") }); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for i := 20; i < 25; i++ {
		if err := l.Append(recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Pre-checkpoint segments are gone.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok {
			if data, err := os.ReadFile(filepath.Join(dir, e.Name())); err == nil && seq < 2 && len(data) > len(segMagic) {
				t.Fatalf("superseded segment %s survived with content", e.Name())
			}
		}
	}

	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if string(rec.Snapshot) != "snapshot-at-20" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("suffix has %d records, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, recN(20+i)) {
			t.Fatalf("suffix record %d = %q", i, r)
		}
	}
}

func TestWALCheckpointCoversConcurrentAppends(t *testing.T) {
	// Appends racing a checkpoint must never be lost: each record ends up
	// in the snapshot, in the kept suffix, or in both (idempotent replay).
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{FlushDelay: 50 * time.Microsecond})
	var wg sync.WaitGroup
	const n = 64
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%04d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	var snapped [][]byte
	if err := l.Checkpoint(func() []byte {
		// The snapshot sees everything rotated out; emulate a state dump by
		// recording what a replayer would have applied so far.
		r, err := readAll(dir)
		if err != nil {
			t.Errorf("mid-checkpoint read: %v", err)
		}
		snapped = r
		return flatten(r)
	}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	wg.Wait()
	l.Close()

	_, rec := mustRecover(t, dir)
	seen := make(map[string]bool)
	for _, r := range snapped {
		seen[string(r)] = true
	}
	for _, r := range rec.Records {
		seen[string(r)] = true
	}
	if len(seen) != 4*n {
		t.Fatalf("checkpoint+suffix cover %d records, want %d", len(seen), 4*n)
	}
}

// readAll returns every record currently replayable from dir's segments
// (ignoring checkpoints) — test helper emulating a state dump.
func readAll(dir string) ([][]byte, error) {
	rec, _, _, _, err := recoverState(dir)
	if err != nil {
		return nil, err
	}
	return rec.Records, nil
}

func flatten(rs [][]byte) []byte {
	var b []byte
	for _, r := range rs {
		b = binary.BigEndian.AppendUint32(b, uint32(len(r)))
		b = append(b, r...)
	}
	return b
}

func mustRecover(t *testing.T, dir string) (*Log, *Recovered) {
	t.Helper()
	l, rec := openT(t, dir, Options{})
	t.Cleanup(func() { l.Close() })
	return l, rec
}

func TestWALGroupCommitCoalescesSyncs(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{FlushDelay: 2 * time.Millisecond})
	defer l.Close()
	const (
		appenders = 8
		perG      = 20
	)
	var wg sync.WaitGroup
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := l.Append([]byte("x")); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := l.StatsSnapshot()
	if st.Appends != appenders*perG {
		t.Fatalf("appends = %d, want %d", st.Appends, appenders*perG)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("group commit did not coalesce: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	t.Logf("%d appends retired by %d fsyncs (%.2f appends/fsync)",
		st.Appends, st.Syncs, float64(st.Appends)/float64(st.Syncs))
}

func TestWALUnreadableCheckpointRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := l.Append(recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(func() []byte { return []byte("good") }); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		if err := l.Append(recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Corrupt the published checkpoint's payload (bit rot — a torn write
	// cannot happen: the payload is fsynced before the rename publishes
	// it). The segments it superseded are pruned, so "replay what's
	// left" would silently forget the first five records — recovery must
	// refuse instead of opening a log that forgot its promises.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), ckptPrefix, ckptSuffix); ok {
			p := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(p)
			data[len(data)-1] ^= 0xff
			os.WriteFile(p, data, 0o644)
		}
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open served a log whose only checkpoint is unreadable")
	}
}

func TestWALMissingSegmentRefused(t *testing.T) {
	// A gap in the replayable suffix (a segment vanished) is corruption,
	// not a shorter history.
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if err := l.Append(recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if err := os.Remove(filepath.Join(dir, segName(2))); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a log with a missing segment")
	}
}

func TestWALTornHeaderTailTolerated(t *testing.T) {
	// A crash inside openSegment can leave the newest segment file
	// visible but without its magic. That segment holds nothing; recovery
	// must skip it (not refuse) and the next rotation recreates it.
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 6; i++ {
		if err := l.Append(recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if err := os.WriteFile(filepath.Join(dir, segName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, Options{})
	if len(rec.Records) != 6 {
		t.Fatalf("recovered %d records, want 6", len(rec.Records))
	}
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, rec2 := openT(t, dir, Options{})
	if len(rec2.Records) != 7 {
		t.Fatalf("post-torn-header history has %d records, want 7", len(rec2.Records))
	}
}

func TestWALTornHeaderAfterCheckpointKeepsNumbering(t *testing.T) {
	// Torn header on the segment the checkpoint rotation created: Open
	// must recreate it at the cut, not restart numbering below the
	// snapshot's coverage.
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if err := l.Append(recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(func() []byte { return []byte("snap") }); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Tear the post-checkpoint segment's header.
	if err := os.WriteFile(filepath.Join(dir, segName(2)), []byte{'B', 'W'}, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, Options{})
	if string(rec.Snapshot) != "snap" || len(rec.Records) != 0 {
		t.Fatalf("recovered snapshot=%q records=%d", rec.Snapshot, len(rec.Records))
	}
	if err := l2.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, rec2 := openT(t, dir, Options{})
	if string(rec2.Snapshot) != "snap" || len(rec2.Records) != 1 || string(rec2.Records[0]) != "post" {
		t.Fatalf("numbering broke: snapshot=%q records=%v", rec2.Snapshot, rec2.Records)
	}
}

func TestWALFrameCRC(t *testing.T) {
	// The frame layout is load-bearing for recovery; pin it.
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	payload := []byte("pinned")
	if err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	frame := data[len(segMagic):]
	if got := binary.BigEndian.Uint32(frame); got != uint32(len(payload)) {
		t.Fatalf("length prefix = %d", got)
	}
	if got := binary.BigEndian.Uint32(frame[4:]); got != crc32.ChecksumIEEE(payload) {
		t.Fatalf("crc mismatch")
	}
	if !bytes.Equal(frame[8:], payload) {
		t.Fatalf("payload mismatch")
	}
}

func TestWALCheckpointWithoutCutSegmentRefused(t *testing.T) {
	// The rotation that publishes ckpt-N durably creates seg-N first, so
	// a checkpoint with no segment at (or after) its cut means the
	// post-checkpoint suffix was deleted. Replaying snapshot-only would
	// silently forget every promise appended after the checkpoint —
	// recovery must refuse, exactly like a mid-suffix gap.
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := l.Append(recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(func() []byte { return []byte("snap") }); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Promises appended after the checkpoint live in the cut segment.
	if err := l.Append([]byte("post-checkpoint-promise")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := os.Remove(filepath.Join(dir, segName(2))); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a checkpoint whose cut segment is gone (post-checkpoint records silently dropped)")
	}
}

// TestWALLatencyHistogramsRecordWhenEnabled is the regression guard for
// the metrics-tax gating (basilvet BV005): Append and the flusher read
// the clock only when their histogram option is non-nil, and this test
// pins the other side of that bargain — with live histograms wired in,
// every successful Append is observed and at least one fsync is timed.
// A mean above a minute would mean a mismatched gate (recording
// time.Since of a zero start), so the bound catches half-gated code too.
func TestWALLatencyHistogramsRecordWhenEnabled(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	opts := Options{
		AppendLatency: reg.Histogram("test_wal_append_latency_seconds"),
		SyncLatency:   reg.Histogram("test_wal_sync_latency_seconds"),
	}
	l, _ := openT(t, dir, opts)
	const n = 25
	for i := 0; i < n; i++ {
		if err := l.Append(recN(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := opts.AppendLatency.Count(); got != n {
		t.Fatalf("append latency histogram recorded %d samples, want %d", got, n)
	}
	if got := opts.SyncLatency.Count(); got == 0 {
		t.Fatal("sync latency histogram recorded no samples")
	}
	for _, h := range []*metrics.Histogram{opts.AppendLatency, opts.SyncLatency} {
		if mean := h.SnapshotHist().MeanNanos(); mean > float64(time.Minute) {
			t.Fatalf("histogram mean %v ns is implausible — clock read and observation gates disagree", mean)
		}
	}
}

// TestWALSyncDelayInjection pins the slow-disk hook: an injected fsync
// delay must show up in append latency (the appender blocks behind the
// slowed group commit) while leaving the log's contents and durability
// accounting untouched. The scenario harness's slow-disk chaos storms
// rely on exactly this seam.
func TestWALSyncDelayInjection(t *testing.T) {
	dir := t.TempDir()
	const delay = 5 * time.Millisecond
	var calls atomic.Int64
	l, _ := openT(t, dir, Options{
		SyncDelay: func() time.Duration {
			calls.Add(1)
			return delay
		},
	})
	const n = 8
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := l.Append(recN(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	if calls.Load() == 0 {
		t.Fatal("SyncDelay was never consulted")
	}
	// Every append waited on a delayed sync; sequential appends therefore
	// cannot finish faster than one injected delay each (coalescing can
	// only merge concurrent appends, and these are serial).
	if min := time.Duration(n) * delay; elapsed < min {
		t.Fatalf("%d serial appends took %v, want >= %v with a %v injected sync delay", n, elapsed, min, delay)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, rec := openT(t, dir, Options{})
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), n)
	}
}
