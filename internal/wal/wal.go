// Package wal is the durability subsystem: an append-only, segmented
// write-ahead log of length-prefixed, CRC32-framed records, plus
// checkpoint files that bound both log and replay length.
//
// Group commit. Append blocks until the record is on disk, but the fsync
// that makes it so is shared: a background flusher collects everything
// appended inside one flush window (Options.FlushDelay, the same knob
// shape as the replica's reply-signature BatchDelay) and retires the
// whole batch with a single File.Sync. Durability therefore costs one
// fsync amortized across every record that arrived in the window, which
// is what makes logging each prepare affordable.
//
// Checkpoints. Checkpoint(snap) rotates to a fresh segment first and
// builds the snapshot after, so the snapshot is guaranteed to cover every
// record in the segments it supersedes (state mutated between rotation
// and the snapshot read shows up in both the snapshot and the kept
// suffix; replay of the suffix must therefore be idempotent). The
// checkpoint file is written to a temp name, fsynced, renamed, and the
// directory fsynced, then all superseded segments and older checkpoints
// are pruned. Replay = newest valid checkpoint + the segment suffix.
//
// Crash tolerance. A crash mid-append leaves a truncated or torn final
// frame; recovery stops replay at the first bad frame of the *last*
// segment (and truncates it away before appending resumes) but treats
// corruption anywhere else as real damage and refuses to open. A crash
// mid-checkpoint leaves either a .tmp file (ignored) or a valid renamed
// checkpoint with stale segments not yet pruned (pruned on next open).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Segment and checkpoint file naming. Sequence numbers only ever grow;
// ckpt-N supersedes every seg-M with M < N.
const (
	segPrefix  = "seg-"
	segSuffix  = ".wal"
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ck"
)

// segMagic starts every segment and checkpoint file: "BWAL" plus a
// format version byte.
var segMagic = []byte{'B', 'W', 'A', 'L', 1}

// ErrClosed reports an Append or Checkpoint on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCorrupt reports damage that truncated-tail tolerance cannot excuse:
// a bad frame in a non-final segment, or an unreadable segment header.
var ErrCorrupt = errors.New("wal: corrupt log")

// DefaultFlushDelay is the group-commit window applied when
// Options.FlushDelay is zero.
const DefaultFlushDelay = 200 * time.Microsecond

// Options parameterizes Open.
type Options struct {
	// Dir is the log directory, created if missing.
	Dir string
	// FlushDelay is the group-commit window: how long the flusher waits
	// after the first unsynced append before forcing the fsync, so
	// concurrent appenders coalesce into one sync. 0 applies
	// DefaultFlushDelay (200µs); negative disables the window — the
	// flusher syncs as soon as it sees work (appends arriving while a
	// sync is in flight still share the next one).
	FlushDelay time.Duration
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size. Default 4 MiB.
	SegmentBytes int64
	// NoSync skips fsync entirely (benchmark baselines only; a crash may
	// lose acknowledged records).
	NoSync bool
	// SyncDelay, if non-nil, is consulted before every group-commit fsync
	// the flusher issues and the returned duration is slept out first —
	// the chaos harness's slow-disk injection (internal/scenario). The
	// sleep happens outside the log mutex, exactly where a slow device
	// would stall: appenders in the window keep coalescing behind it, so
	// an injected delay degrades append latency the same way a real
	// degraded disk does. Must be safe for concurrent use; a zero or
	// negative return injects nothing.
	SyncDelay func() time.Duration

	// AppendLatency, if non-nil, records each successful Append's total
	// latency (write + group-commit wait + fsync). SyncLatency records
	// each fsync the flusher issues. PruneFailures counts checkpoint
	// prunes that could not remove superseded files (stale segments cost
	// disk, not correctness — but silent accumulation fills disks). All
	// are nil-safe no-ops when unset (see internal/metrics).
	AppendLatency *metrics.Histogram
	SyncLatency   *metrics.Histogram
	PruneFailures *metrics.Counter
}

func (o *Options) withDefaults() {
	if o.FlushDelay == 0 {
		o.FlushDelay = DefaultFlushDelay
	}
	if o.FlushDelay < 0 {
		o.FlushDelay = 0
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
}

// Recovered is what Open found on disk: the newest valid checkpoint
// snapshot (nil if none) and every record appended after it, in append
// order.
type Recovered struct {
	Snapshot []byte
	Records  [][]byte
}

// Stats are cumulative counters since Open.
type Stats struct {
	Appends uint64 // records durably appended
	Syncs   uint64 // fsyncs issued for them (group commit shares syncs)
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	opts Options
	dir  *os.File // held open for directory fsyncs

	// mu guards every field below — segment handle, generation counters,
	// and group-commit state; appenders park on cond (which releases mu)
	// while the flusher syncs.
	mu   sync.Mutex
	cond *sync.Cond // appenders wait for sync; the flusher waits for work
	f    *os.File   // current segment
	seq  uint64     // current segment sequence number
	size int64

	appended uint64 // generation: records written to the OS buffer
	synced   uint64 // generation: records durably on disk
	syncing  bool   // a flusher sync pass is in flight
	syncErr  error  // sticky: first sync failure poisons the log
	closed   bool

	stats Stats
}

// Open recovers whatever log state dir holds and opens it for appending.
// The returned Recovered carries the newest checkpoint snapshot and the
// record suffix to replay; a truncated tail on the final segment is
// dropped (and truncated on disk) rather than treated as corruption.
func Open(opts Options) (*Log, *Recovered, error) {
	opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	dir, err := os.Open(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{opts: opts, dir: dir}
	l.cond = sync.NewCond(&l.mu)

	rec, cut, lastSeq, lastValid, err := recoverState(opts.Dir)
	if err != nil {
		dir.Close()
		return nil, nil, err
	}
	// Resume appending into the last segment, truncating any torn tail so
	// new frames follow the last valid one. No usable segment means a
	// fresh one — numbered from the checkpoint cut when one exists, so a
	// recreated segment never sorts below the snapshot that covers its
	// predecessors.
	if lastSeq == 0 {
		l.seq = 1
		if cut > 1 {
			l.seq = cut
		}
		if err := l.openSegment(); err != nil {
			dir.Close()
			return nil, nil, err
		}
	} else {
		path := filepath.Join(opts.Dir, segName(lastSeq))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			dir.Close()
			return nil, nil, err
		}
		if err := f.Truncate(lastValid); err != nil {
			f.Close()
			dir.Close()
			return nil, nil, err
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			dir.Close()
			return nil, nil, err
		}
		l.f, l.seq, l.size = f, lastSeq, lastValid
	}
	go l.flusher()
	return l, rec, nil
}

// Append writes one record and blocks until it (and everything appended
// before it) is durable. Concurrent appenders share the flush window's
// single fsync.
func (l *Log) Append(rec []byte) error {
	var start time.Time
	if l.opts.AppendLatency != nil {
		start = time.Now()
	}
	frame := make([]byte, 8+len(rec))
	binary.BigEndian.PutUint32(frame, uint32(len(rec)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(rec))
	copy(frame[8:], rec)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	if _, err := l.f.Write(frame); err != nil {
		l.syncErr = err
		l.cond.Broadcast()
		return err
	}
	l.size += int64(len(frame))
	l.appended++
	gen := l.appended
	l.cond.Broadcast() // wake the flusher
	for l.synced < gen && l.syncErr == nil && !l.closed {
		l.cond.Wait()
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.synced < gen {
		return ErrClosed
	}
	l.stats.Appends++
	if l.opts.AppendLatency != nil {
		l.opts.AppendLatency.Since(start)
	}
	return nil
}

// flusher is the group-commit loop: wait for unsynced appends, sleep out
// the flush window so concurrent appenders pile in, then retire the whole
// batch with one fsync.
func (l *Log) flusher() {
	for {
		l.mu.Lock()
		for l.appended == l.synced && !l.closed && l.syncErr == nil {
			l.cond.Wait()
		}
		if (l.closed && l.appended == l.synced) || l.syncErr != nil {
			l.mu.Unlock()
			return
		}
		l.syncing = true
		l.mu.Unlock()

		if d := l.opts.FlushDelay; d > 0 {
			time.Sleep(d)
		}

		l.mu.Lock()
		if l.closed || l.syncErr != nil {
			// Close (or a failure) retired the pending appends while this
			// pass slept; the segment file may already be closed.
			l.syncing = false
			l.cond.Broadcast()
			l.mu.Unlock()
			return
		}
		target := l.appended
		f := l.f
		l.mu.Unlock()

		var err error
		if !l.opts.NoSync {
			var syncStart time.Time
			if l.opts.SyncLatency != nil {
				syncStart = time.Now()
			}
			if l.opts.SyncDelay != nil {
				if d := l.opts.SyncDelay(); d > 0 {
					time.Sleep(d)
				}
			}
			err = f.Sync()
			if l.opts.SyncLatency != nil {
				l.opts.SyncLatency.Since(syncStart)
			}
		}

		l.mu.Lock()
		l.syncing = false
		if l.closed {
			l.cond.Broadcast()
			l.mu.Unlock()
			return
		}
		if err != nil {
			l.syncErr = err
		} else if l.synced < target {
			l.synced = target
			l.stats.Syncs++
		}
		if l.size >= l.opts.SegmentBytes && l.syncErr == nil {
			if err := l.rotateLocked(); err != nil {
				l.syncErr = err
			}
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// rotateLocked closes the current segment (syncing any frames the
// flusher has not retired yet, and waking their appenders) and opens the
// next one. Caller holds l.mu with no flusher sync pass in flight.
func (l *Log) rotateLocked() error {
	if l.appended != l.synced {
		// Unsynced frames may not move between files; sync them first.
		if !l.opts.NoSync {
			//nolint:basilvet — intentional barrier: the appenders this sync retires are parked on l.cond (which released l.mu), and rotation must not race new appends into the closing segment.
			if err := l.f.Sync(); err != nil {
				return err
			}
		}
		l.synced = l.appended
		l.stats.Syncs++
		l.cond.Broadcast()
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.seq++
	return l.openSegment()
}

// openSegment creates segment l.seq and makes its existence durable.
func (l *Log) openSegment() error {
	path := filepath.Join(l.opts.Dir, segName(l.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return err
	}
	if !l.opts.NoSync {
		//nolint:basilvet — intentional barrier: a new segment must exist durably before any append lands in it; runs only at open/rotate, never on the append fast path.
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		//nolint:basilvet — intentional barrier: the directory entry must be durable too, same rotation-only path as above.
		if err := l.dir.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	l.f, l.size = f, int64(len(segMagic))
	return nil
}

// Checkpoint rotates to a fresh segment, calls snap to capture a
// snapshot covering (at least) every record in the superseded segments,
// writes it durably, and prunes the segments and checkpoints it
// replaced. snap runs without any log lock held, so appends continue
// (into the kept suffix) while the snapshot is built.
func (l *Log) Checkpoint(snap func() []byte) error {
	l.mu.Lock()
	// A flusher sync pass holds a reference to the current segment file;
	// rotating (closing it) under its feet would fail that sync.
	for l.syncing && !l.closed && l.syncErr == nil {
		l.cond.Wait()
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.syncErr != nil {
		err := l.syncErr
		l.mu.Unlock()
		return err
	}
	if err := l.rotateLocked(); err != nil {
		l.syncErr = err
		l.cond.Broadcast()
		l.mu.Unlock()
		return err
	}
	cut := l.seq // everything below this segment is covered by the snapshot
	l.mu.Unlock()

	data := snap()

	// Write ckpt-<cut>: magic, u64 length, u32 CRC, payload — atomically
	// published by the rename, made durable by the directory sync.
	tmp := filepath.Join(l.opts.Dir, fmt.Sprintf("%s%08d.tmp", ckptPrefix, cut))
	final := filepath.Join(l.opts.Dir, ckptName(cut))
	buf := make([]byte, 0, len(segMagic)+12+len(data))
	buf = append(buf, segMagic...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(data)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(data))
	buf = append(buf, data...)
	if err := writeFileSync(tmp, buf, !l.opts.NoSync); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if !l.opts.NoSync {
		if err := l.dir.Sync(); err != nil {
			return err
		}
	}
	// Best-effort prune: the checkpoint is fully published and durable at
	// this point, so a failure here (e.g. a transient ReadDir error)
	// costs stale files on disk, not correctness. Escalating it would
	// make the replica mute itself over promises that are all safely on
	// disk; the next checkpoint retries. Counted so persistent failures
	// (disk filling with superseded segments) are visible in /metrics.
	if err := prune(l.opts.Dir, cut); err != nil {
		l.opts.PruneFailures.Inc()
	}
	return nil
}

// Close flushes and syncs everything appended, wakes all waiters, and
// closes the files. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	// Retire anything the flusher has not synced yet; in-flight Appends
	// are woken either by this sync or by the closed flag.
	var err error
	if l.appended != l.synced && l.syncErr == nil {
		if !l.opts.NoSync {
			//nolint:basilvet — intentional barrier: Close owns l.mu precisely to fence out new appenders while the final frames are made durable; shutdown-only path.
			err = l.f.Sync()
		}
		if err == nil {
			l.synced = l.appended
			l.stats.Syncs++
		} else {
			l.syncErr = err
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	if cerr := l.dir.Close(); err == nil {
		err = cerr
	}
	return err
}

// StatsSnapshot returns the append/sync counters.
func (l *Log) StatsSnapshot() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// --- recovery ---

func segName(seq uint64) string  { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }
func ckptName(seq uint64) string { return fmt.Sprintf("%s%08d%s", ckptPrefix, seq, ckptSuffix) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if len(name) <= len(prefix)+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name[len(prefix):len(name)-len(suffix)], "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// recoverState scans dir: picks the newest checkpoint whose CRC
// validates, then replays every segment at or after it. It returns the
// recovered state, the checkpoint cut (0 if none), the last usable
// segment's sequence number (0 if none), and the byte offset of the
// last valid frame boundary in that segment (so Open can truncate a
// torn tail).
func recoverState(dir string) (*Recovered, uint64, uint64, int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	var segs, ckpts []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, seq)
		}
		if seq, ok := parseSeq(e.Name(), ckptPrefix, ckptSuffix); ok {
			ckpts = append(ckpts, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })

	rec := &Recovered{}
	var cut uint64
	for _, cseq := range ckpts {
		data, err := readCheckpoint(filepath.Join(dir, ckptName(cseq)))
		if err != nil {
			// Checkpoints are fsynced before the rename publishes them, so
			// an unreadable one is bit rot, not a torn write (a crash
			// mid-write leaves only a .tmp, never parsed here). Fall back
			// to the next older checkpoint; whether the segments it needs
			// still exist is decided by the contiguity check below.
			continue
		}
		rec.Snapshot, cut = data, cseq
		break
	}
	if len(ckpts) > 0 && rec.Snapshot == nil {
		// Published checkpoints exist but none is readable. The segments
		// they superseded are pruned, so replaying "what's left" would
		// silently forget promises; refuse instead.
		return nil, 0, 0, 0, fmt.Errorf("%w: no readable checkpoint among %d", ErrCorrupt, len(ckpts))
	}

	// The replayable suffix must be contiguous and must start exactly at
	// the checkpoint's cut (the rotation that published it created that
	// segment) — a gap means pruned segments whose records the chosen
	// snapshot does not cover.
	var replay []uint64
	for _, seq := range segs {
		if seq >= cut {
			replay = append(replay, seq)
		}
	}
	if cut > 0 && len(replay) == 0 {
		// The rotation that published ckpt-cut created seg-cut before the
		// checkpoint was renamed into place, so a checkpoint with no
		// segment at (or after) its cut means the post-checkpoint history
		// was deleted out from under us. Replaying snapshot-only would
		// silently forget every promise appended after the checkpoint;
		// refuse instead.
		return nil, 0, 0, 0, fmt.Errorf("%w: checkpoint %d has no segment at its cut", ErrCorrupt, cut)
	}
	if len(replay) > 0 {
		want := cut
		if cut == 0 {
			want = 1 // a fresh log starts at seg-1
		}
		for _, seq := range replay {
			if seq != want {
				return nil, 0, 0, 0, fmt.Errorf("%w: segment %d missing (have %d)", ErrCorrupt, want, seq)
			}
			want++
		}
	}

	var lastSeq uint64
	var lastValid int64
	for i, seq := range replay {
		last := i == len(replay)-1
		records, valid, err := readSegment(filepath.Join(dir, segName(seq)), last)
		if err != nil {
			return nil, 0, cut, 0, err
		}
		if valid < 0 {
			// Torn header on the final segment: a crash inside openSegment
			// left the file without its magic. Skip it; Open resumes on
			// the previous segment and the next rotation recreates this
			// one with O_TRUNC.
			break
		}
		rec.Records = append(rec.Records, records...)
		lastSeq, lastValid = seq, valid
	}
	return rec, cut, lastSeq, lastValid, nil
}

// readSegment parses one segment's frames. A bad frame is a tolerated
// truncated tail only when tail is true (the final segment); anywhere
// else it is corruption. A final segment shorter than its header (crash
// inside openSegment before the magic hit disk) returns offset -1: the
// segment holds nothing and should be skipped, not refused.
func readSegment(path string, tail bool) ([][]byte, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if tail && len(data) < len(segMagic) {
		return nil, -1, nil
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != string(segMagic) {
		return nil, 0, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, filepath.Base(path))
	}
	var records [][]byte
	off := int64(len(segMagic))
	rest := data[len(segMagic):]
	for len(rest) > 0 {
		if len(rest) < 8 {
			break // torn frame header
		}
		n := binary.BigEndian.Uint32(rest)
		crc := binary.BigEndian.Uint32(rest[4:])
		if uint64(len(rest)-8) < uint64(n) {
			break // torn payload
		}
		payload := rest[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break // torn or bit-flipped frame
		}
		records = append(records, payload)
		rest = rest[8+n:]
		off += 8 + int64(n)
	}
	if len(rest) > 0 && !tail {
		return nil, 0, fmt.Errorf("%w: %s: bad frame at offset %d", ErrCorrupt, filepath.Base(path), off)
	}
	return records, off, nil
}

func readCheckpoint(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	hdr := len(segMagic) + 12
	if len(data) < hdr || string(data[:len(segMagic)]) != string(segMagic) {
		return nil, fmt.Errorf("%w: %s: bad checkpoint header", ErrCorrupt, filepath.Base(path))
	}
	n := binary.BigEndian.Uint64(data[len(segMagic):])
	crc := binary.BigEndian.Uint32(data[len(segMagic)+8:])
	if uint64(len(data)-hdr) < n {
		return nil, fmt.Errorf("%w: %s: truncated checkpoint", ErrCorrupt, filepath.Base(path))
	}
	payload := data[hdr : hdr+int(n)]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("%w: %s: checkpoint CRC mismatch", ErrCorrupt, filepath.Base(path))
	}
	return payload, nil
}

// prune removes segments and checkpoints superseded by ckpt-cut. Failures
// are ignored: stale files cost disk, not correctness, and the next
// checkpoint retries.
func prune(dir string, cut uint64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok && seq < cut {
			//nolint:basilvet — documented best-effort: a failed remove costs disk, not correctness; the next checkpoint retries and PruneFailures counts persistent trouble.
			os.Remove(filepath.Join(dir, e.Name()))
		}
		if seq, ok := parseSeq(e.Name(), ckptPrefix, ckptSuffix); ok && seq < cut {
			//nolint:basilvet — documented best-effort, same policy as the segment remove above.
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return nil
}

func writeFileSync(path string, data []byte, doSync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if doSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
