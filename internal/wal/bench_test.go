package wal

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// walBenchOut makes `go test -run TestWriteWALBench` write the
// group-commit sweep as JSON (used by `make bench` to record the perf
// trajectory in BENCH_wal.json). Empty = skipped.
var walBenchOut = flag.String("walbench", "", "write the WAL group-commit benchmark results as JSON to this file")

// benchAppend runs total appends of a prepare-sized record split across
// `appenders` goroutines against a fresh log, returning wall time and
// the log's final counters.
func benchAppend(dir string, window time.Duration, appenders, total int) (time.Duration, Stats, error) {
	l, _, err := Open(Options{Dir: dir, FlushDelay: window})
	if err != nil {
		return 0, Stats{}, err
	}
	rec := make([]byte, 192) // roughly a vote record: tag+txid+vote+small meta
	for i := range rec {
		rec[i] = byte(i)
	}
	per := total / appenders
	var wg sync.WaitGroup
	errs := make(chan error, appenders)
	start := time.Now()
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(rec); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := l.StatsSnapshot()
	cerr := l.Close()
	select {
	case err := <-errs:
		return elapsed, st, err
	default:
	}
	return elapsed, st, cerr
}

// BenchmarkWALAppend measures one durable append under concurrent
// appenders sharing the group-commit window (`make bench`).
func BenchmarkWALAppend(b *testing.B) {
	// A negative window disables group-commit batching (the baseline);
	// zero would apply the package default.
	for _, window := range []time.Duration{-1, 200 * time.Microsecond} {
		b.Run(fmt.Sprintf("window=%v", windowLabel(window)), func(b *testing.B) {
			l, _, err := Open(Options{Dir: b.TempDir(), FlushDelay: window})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			rec := make([]byte, 192)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := l.Append(rec); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			st := l.StatsSnapshot()
			if st.Appends > 0 {
				b.ReportMetric(float64(st.Syncs)/float64(st.Appends), "fsyncs/append")
			}
		})
	}
}

// windowLabel names a sweep point ("none" = batching disabled).
func windowLabel(w time.Duration) string {
	if w < 0 {
		return "none"
	}
	return w.String()
}

// walBenchRow is one row of BENCH_wal.json.
type walBenchRow struct {
	Appenders       uint64  `json:"appenders"`
	WindowMicros    int64   `json:"window_us"`
	Appends         uint64  `json:"appends"`
	Fsyncs          uint64  `json:"fsyncs"`
	FsyncsPerAppend float64 `json:"fsyncs_per_append"`
	AppendsPerSec   float64 `json:"appends_per_sec"`
	UsPerAppend     float64 `json:"us_per_append"`
}

// TestWriteWALBench sweeps concurrency × group-commit window and records
// the amortization curve as JSON. It also enforces the acceptance bar
// in-line: at 8 concurrent appenders with a nonzero window, durability
// must cost strictly less than one fsync per append. Skipped unless
// -walbench names an output file.
func TestWriteWALBench(t *testing.T) {
	if *walBenchOut == "" {
		t.Skip("no -walbench output file given")
	}
	const total = 4096
	var rows []walBenchRow
	for _, appenders := range []int{1, 2, 8, 32} {
		for _, window := range []time.Duration{-1, 200 * time.Microsecond, time.Millisecond} {
			elapsed, st, err := benchAppend(t.TempDir(), window, appenders, total)
			if err != nil {
				t.Fatalf("appenders=%d window=%v: %v", appenders, window, err)
			}
			row := walBenchRow{
				Appenders:       uint64(appenders),
				WindowMicros:    max(window.Microseconds(), 0), // 0 = no window (baseline)
				Appends:         st.Appends,
				Fsyncs:          st.Syncs,
				FsyncsPerAppend: float64(st.Syncs) / float64(st.Appends),
				AppendsPerSec:   float64(st.Appends) / elapsed.Seconds(),
				UsPerAppend:     float64(elapsed.Microseconds()) / float64(st.Appends),
			}
			rows = append(rows, row)
			if appenders >= 8 && window > 0 && row.FsyncsPerAppend >= 1 {
				t.Errorf("group commit failed to amortize: %d appenders, window %v: %.3f fsyncs/append",
					appenders, window, row.FsyncsPerAppend)
			}
			t.Logf("appenders=%-2d window=%-6s %6.0f appends/s  %.3f fsyncs/append",
				appenders, windowLabel(window), row.AppendsPerSec, row.FsyncsPerAppend)
		}
	}
	out := struct {
		Benchmark string        `json:"benchmark"`
		Workload  string        `json:"workload"`
		Rows      []walBenchRow `json:"results"`
	}{
		Benchmark: "WALGroupCommit",
		Workload:  "192-byte durable appends (vote-record shape), fixed 4096 total, split across concurrent appenders",
		Rows:      rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*walBenchOut, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", *walBenchOut, err)
	}
}
