// Package cryptoutil supplies Basil's cryptographic substrate: signature
// schemes (ed25519 and a no-op scheme for the NoProofs ablation), a key
// registry mapping replica ids to verification keys, Merkle-tree reply
// batching with inclusion proofs (paper §4.4), and a root-signature cache
// that amortizes verification across replies from the same batch.
//
// Concurrency and ownership: the Registry is immutable after construction
// and shared freely. SigVerifier and VerifyPool are internally
// synchronized and designed for sharing (one pool may serve many clients
// and a replica's whole ingest path; see pool.go for the queue-helping
// rule that makes nested use from a worker deadlock-free). BatchSigner
// serializes its own state; Enqueue may compute the signature on the
// calling goroutine when it completes a batch.
package cryptoutil

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"math/rand"
)

// Scheme selects a signature scheme for a deployment.
type Scheme uint8

// Available signature schemes.
const (
	// SchemeEd25519 uses stdlib ed25519 over SHA-256 payload digests.
	SchemeEd25519 Scheme = iota
	// SchemeNone disables signatures entirely (Basil-NoProofs, Fig. 5a).
	// Sign returns a fixed one-byte tag and Verify accepts it.
	SchemeNone
)

// Signer signs payload digests on behalf of one node.
type Signer interface {
	// Sign signs the payload (already domain-separated) and returns the
	// signature bytes.
	Sign(payload []byte) []byte
	// ID returns the signer's key-registry index.
	ID() int32
}

// Verifier verifies payload signatures against registry keys.
type Verifier interface {
	// Verify reports whether sig is a valid signature by signer over
	// payload.
	Verify(signer int32, payload, sig []byte) bool
}

// digest hashes a payload to the fixed-size value that is actually signed.
func digest(payload []byte) [32]byte { return sha256.Sum256(payload) }

// Registry holds every node's verification key. Index i belongs to the
// node with global key id i (replicas and clients share one id space).
type Registry struct {
	scheme Scheme
	pubs   []ed25519.PublicKey
	privs  []ed25519.PrivateKey
}

// NewRegistry generates n deterministic key pairs under the given scheme.
// Key generation is seeded so tests and benchmarks are reproducible.
func NewRegistry(scheme Scheme, n int, seed int64) *Registry {
	r := &Registry{scheme: scheme}
	if scheme == SchemeNone {
		return r
	}
	rng := rand.New(rand.NewSource(seed))
	r.pubs = make([]ed25519.PublicKey, n)
	r.privs = make([]ed25519.PrivateKey, n)
	for i := 0; i < n; i++ {
		seedBytes := make([]byte, ed25519.SeedSize)
		rng.Read(seedBytes)
		priv := ed25519.NewKeyFromSeed(seedBytes)
		r.privs[i] = priv
		r.pubs[i] = priv.Public().(ed25519.PublicKey)
	}
	return r
}

// Scheme returns the registry's signature scheme.
func (r *Registry) Scheme() Scheme { return r.scheme }

// Signer returns the signing half for node id.
func (r *Registry) Signer(id int32) Signer {
	if r.scheme == SchemeNone {
		return noSigner{id: id}
	}
	if int(id) >= len(r.privs) {
		panic(fmt.Sprintf("cryptoutil: signer id %d out of range %d", id, len(r.privs)))
	}
	return &edSigner{id: id, priv: r.privs[id]}
}

// Verify reports whether sig is a valid signature by signer over payload.
func (r *Registry) Verify(signer int32, payload, sig []byte) bool {
	if r.scheme == SchemeNone {
		return len(sig) == 1 && sig[0] == noSigTag
	}
	if signer < 0 || int(signer) >= len(r.pubs) {
		return false
	}
	d := digest(payload)
	return ed25519.Verify(r.pubs[signer], d[:], sig)
}

// VerifyDigest verifies a signature over an already-hashed digest (used for
// Merkle batch roots, which are themselves hashes).
func (r *Registry) VerifyDigest(signer int32, d [32]byte, sig []byte) bool {
	if r.scheme == SchemeNone {
		return len(sig) == 1 && sig[0] == noSigTag
	}
	if signer < 0 || int(signer) >= len(r.pubs) {
		return false
	}
	return ed25519.Verify(r.pubs[signer], d[:], sig)
}

type edSigner struct {
	id   int32
	priv ed25519.PrivateKey
}

func (s *edSigner) Sign(payload []byte) []byte {
	d := digest(payload)
	return ed25519.Sign(s.priv, d[:])
}

func (s *edSigner) ID() int32 { return s.id }

// SignDigest signs an already-hashed digest.
func (s *edSigner) SignDigest(d [32]byte) []byte { return ed25519.Sign(s.priv, d[:]) }

// DigestSigner is implemented by signers that can sign a precomputed
// 32-byte digest directly (used for Merkle roots).
type DigestSigner interface {
	SignDigest(d [32]byte) []byte
}

const noSigTag byte = 0xA5

type noSigner struct{ id int32 }

func (s noSigner) Sign([]byte) []byte         { return []byte{noSigTag} }
func (s noSigner) SignDigest([32]byte) []byte { return []byte{noSigTag} }
func (s noSigner) ID() int32                  { return s.id }

var _ DigestSigner = noSigner{}
var _ DigestSigner = (*edSigner)(nil)
