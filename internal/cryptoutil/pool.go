package cryptoutil

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// VerifyPool is a bounded worker pool for signature verification and other
// CPU-heavy message validation. It exists so a replica's ingest path can
// validate crypto in parallel, off every protocol lock: the transport's
// dispatch goroutine hands each message to the pool and the (thread-safe)
// handlers run concurrently on its workers.
//
// Two submission modes are provided. Go enqueues one top-level task and
// may block when the queue is full (backpressure toward the transport).
// All fans a batch of small boolean checks across the workers through a
// separate sub-task queue: whatever the queue cannot take runs inline on
// the caller, and while waiting the caller helps drain *sub-tasks only* —
// never whole message handlers — so All is safe to call from a pool
// worker (which is exactly what happens when a replica handler validates
// an ST2 tally from inside the pool) and a cheap batch never inherits the
// latency of an unrelated heavy handler.
type VerifyPool struct {
	tasks    chan func() // top-level tasks (message handlers)
	subTasks chan func() // batch sub-tasks (individual signature checks)
	workers  int
	wg       sync.WaitGroup // workers
	inflight sync.WaitGroup // accepted, not yet executed tasks

	// mu guards closed, fencing new submissions off from Close.
	mu     sync.Mutex
	closed bool
}

// NewVerifyPool starts a pool with the given number of workers;
// workers <= 0 defaults to GOMAXPROCS.
func NewVerifyPool(workers int) *VerifyPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &VerifyPool{
		tasks:    make(chan func(), workers*16),
		subTasks: make(chan func(), workers*16),
		workers:  workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool size.
func (p *VerifyPool) Workers() int { return p.workers }

func (p *VerifyPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case fn, ok := <-p.tasks:
			if !ok {
				// Close drained every accepted task (inflight barrier)
				// before closing the channel; nothing can be pending.
				return
			}
			fn()
			p.inflight.Done()
		case fn := <-p.subTasks:
			fn()
			p.inflight.Done()
		}
	}
}

// accept reserves one task slot; it fails once the pool is closed.
func (p *VerifyPool) accept() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.inflight.Add(1)
	return true
}

// Go runs fn on a pool worker, blocking while the queue is full. It
// reports whether fn was accepted; after Close it drops fn and returns
// false.
func (p *VerifyPool) Go(fn func()) bool {
	if !p.accept() {
		return false
	}
	p.tasks <- fn
	return true
}

// trySub is the non-blocking sub-task submission used by All.
func (p *VerifyPool) trySub(fn func()) bool {
	if !p.accept() {
		return false
	}
	select {
	case p.subTasks <- fn:
		return true
	default:
		p.inflight.Done()
		return false
	}
}

// All evaluates task(0..n-1) and reports whether every call returned true.
// Tasks should be small leaf checks (one signature each): they are spread
// across the workers via the sub-task queue, anything the queue cannot
// take immediately (or everything, once the pool is closed) runs inline on
// the caller, and while waiting the caller drains other sub-tasks. All
// therefore always completes without external capacity and never
// deadlocks when invoked from a pool worker. After the first failure the
// remaining tasks are skipped.
func (p *VerifyPool) All(n int, task func(i int) bool) bool {
	switch {
	case n <= 0:
		return true
	case n == 1:
		return task(0)
	}
	var ok atomic.Bool
	ok.Store(true)
	run := func(i int) {
		if ok.Load() && !task(i) {
			ok.Store(false)
		}
	}
	doneCh := make(chan struct{}, n-1)
	dispatched := 0
	for i := 0; i < n-1; i++ {
		i := i
		if p.trySub(func() { run(i); doneCh <- struct{}{} }) {
			dispatched++
		} else {
			run(i)
		}
	}
	run(n - 1)
	for dispatched > 0 {
		select {
		case <-doneCh:
			dispatched--
		case fn := <-p.subTasks:
			// Help with sub-task work (ours or another batch's) while
			// waiting; sub-tasks are leaf checks, so this neither inverts
			// latency nor nests unboundedly.
			fn()
			p.inflight.Done()
		}
	}
	return ok.Load()
}

// Close stops accepting tasks, waits for every accepted task to finish,
// and shuts the workers down. It is idempotent and safe to call
// concurrently with Go/All: submissions racing with Close either complete
// before Close returns or are dropped.
func (p *VerifyPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.inflight.Wait()
	close(p.tasks)
	p.wg.Wait()
}
