package cryptoutil

import "crypto/sha256"

// Merkle-tree reply batching (paper §4.4, Figure 2).
//
// A replica accumulates b reply payloads, builds a Merkle tree over their
// leaf hashes, signs the root once, and ships each client its own reply,
// the root, the root signature, and the log(b) sibling hashes needed to
// reconstruct the root from that reply.
//
// The leaf layer is padded to a power of two by repeating the last leaf
// hash, so every level pairs fully and a proof is unambiguous given the
// leaf index alone (the index supplies left/right orientation).

// leafHash domain-separates leaves from interior nodes so a proof cannot
// confuse the two (second-preimage hardening).
func leafHash(payload []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(payload)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func nodeHash(l, r [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// MerkleTree is a complete binary hash tree over a batch of payloads.
type MerkleTree struct {
	levels [][][32]byte // levels[0] = padded leaves, last level = [root]
}

// NewMerkleTree hashes the payloads and builds the tree. It panics on an
// empty batch (callers flush only non-empty batches).
func NewMerkleTree(payloads [][]byte) *MerkleTree {
	if len(payloads) == 0 {
		panic("cryptoutil: empty merkle batch")
	}
	n := 1
	for n < len(payloads) {
		n <<= 1
	}
	leaves := make([][32]byte, n)
	for i, p := range payloads {
		leaves[i] = leafHash(p)
	}
	for i := len(payloads); i < n; i++ {
		leaves[i] = leaves[len(payloads)-1]
	}
	t := &MerkleTree{levels: [][][32]byte{leaves}}
	cur := leaves
	for len(cur) > 1 {
		next := make([][32]byte, len(cur)/2)
		for i := range next {
			next[i] = nodeHash(cur[2*i], cur[2*i+1])
		}
		t.levels = append(t.levels, next)
		cur = next
	}
	return t
}

// Root returns the tree root.
func (t *MerkleTree) Root() [32]byte {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// Proof returns the sibling path for leaf index i, bottom-up.
func (t *MerkleTree) Proof(i int) [][32]byte {
	proof := make([][32]byte, 0, len(t.levels)-1)
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		proof = append(proof, t.levels[lvl][idx^1])
		idx >>= 1
	}
	return proof
}

// VerifyProof reconstructs the root from a payload, its leaf index, and the
// sibling path, and compares it against root.
func VerifyProof(payload []byte, index uint32, proof [][32]byte, root [32]byte) bool {
	h := leafHash(payload)
	idx := index
	for _, sib := range proof {
		if idx&1 == 1 {
			h = nodeHash(sib, h)
		} else {
			h = nodeHash(h, sib)
		}
		idx >>= 1
	}
	return h == root
}
