package cryptoutil

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/types"
)

// BatchSigner amortizes signature generation across replies (paper §4.4).
// Replies are queued with their payload; once Size payloads accumulate (or
// MaxDelay elapses with a non-empty queue) the signer builds one Merkle
// tree, signs the root, and completes every queued reply with the shared
// root signature plus its individual inclusion proof.
//
// Size=1 degenerates to direct per-reply signatures with no tree overhead,
// which is the b=1 point of Fig. 6b.
type BatchSigner struct {
	signer   Signer
	size     int
	maxDelay time.Duration

	// mu guards the batch under assembly (pending, timer, closed); it is
	// a leaf lock held only to append or cut a batch, so Enqueue is safe
	// to call under callers' own locks.
	mu      sync.Mutex
	pending []pendingSig
	timer   *time.Timer
	closed  bool
}

type pendingSig struct {
	payload []byte
	done    func(types.Signature)
}

// NewBatchSigner creates a batch signer flushing at size payloads or after
// maxDelay, whichever comes first. size < 1 is treated as 1.
func NewBatchSigner(signer Signer, size int, maxDelay time.Duration) *BatchSigner {
	if size < 1 {
		size = 1
	}
	if maxDelay <= 0 {
		maxDelay = time.Millisecond
	}
	return &BatchSigner{signer: signer, size: size, maxDelay: maxDelay}
}

// Enqueue schedules payload for signing; done is invoked (on the flushing
// goroutine) with the completed signature. Enqueue after Close is a no-op
// on both the direct and the batched path.
func (b *BatchSigner) Enqueue(payload []byte, done func(types.Signature)) {
	if b.size == 1 {
		b.mu.Lock()
		closed := b.closed
		b.mu.Unlock()
		if closed {
			return
		}
		sig := types.Signature{SignerID: b.signer.ID(), Direct: b.signer.Sign(payload)}
		done(sig)
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.pending = append(b.pending, pendingSig{payload: payload, done: done})
	if len(b.pending) >= b.size {
		batch := b.take()
		b.mu.Unlock()
		b.flush(batch)
		return
	}
	if b.timer == nil {
		b.timer = time.AfterFunc(b.maxDelay, b.onTimer)
	}
	b.mu.Unlock()
}

func (b *BatchSigner) onTimer() {
	b.mu.Lock()
	batch := b.take()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.flush(batch)
	}
}

// take removes and returns the pending batch; caller holds b.mu.
func (b *BatchSigner) take() []pendingSig {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

func (b *BatchSigner) flush(batch []pendingSig) {
	payloads := make([][]byte, len(batch))
	for i, p := range batch {
		payloads[i] = p.payload
	}
	tree := NewMerkleTree(payloads)
	root := tree.Root()
	var rootSig []byte
	if ds, ok := b.signer.(DigestSigner); ok {
		rootSig = ds.SignDigest(root)
	} else {
		rootSig = b.signer.Sign(root[:])
	}
	for i, p := range batch {
		p.done(types.Signature{
			SignerID: b.signer.ID(),
			Root:     root,
			RootSig:  rootSig,
			Proof:    tree.Proof(i),
			Index:    uint32(i),
		})
	}
}

// Close flushes any pending batch and stops the timer.
func (b *BatchSigner) Close() {
	b.mu.Lock()
	b.closed = true
	batch := b.take()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.flush(batch)
	}
}

// SigVerifier verifies types.Signature values (direct or batched) against a
// registry, caching verified batch roots so the root signature is checked
// once per batch rather than once per reply (paper §4.4 signature cache).
// Direct signatures get the same treatment through a bounded
// verified-digest cache: protocol messages routinely re-carry the same
// signed replies (an ST2 tally embeds the ST1Rs the client collected,
// recovery re-delivers them, certificates repeat them per shard), and a
// (digest, signer, sig) triple that verified once always verifies.
type SigVerifier struct {
	reg *Registry

	// mu guards the verification caches and their FIFO eviction order;
	// ed25519 work runs outside it.
	mu    sync.Mutex
	cache map[[32]byte]int32 // verified root -> signer
	order [][32]byte         // FIFO eviction
	// direct holds digests of already-verified direct signatures.
	direct      map[[32]byte]bool
	directOrder [][32]byte
	max         int

	directHits atomic.Uint64
}

// NewSigVerifier creates a verifier with a bounded root cache.
func NewSigVerifier(reg *Registry, cacheSize int) *SigVerifier {
	if cacheSize < 1 {
		cacheSize = 1
	}
	return &SigVerifier{
		reg:    reg,
		cache:  make(map[[32]byte]int32),
		direct: make(map[[32]byte]bool),
		max:    cacheSize,
	}
}

// DirectCacheHits reports how many direct-signature verifications were
// answered from the verified-digest cache (observability for tests and the
// parallel experiment).
func (v *SigVerifier) DirectCacheHits() uint64 { return v.directHits.Load() }

// directKey folds the payload digest, signer id and signature bytes into
// one cache key, so a Byzantine sender cannot poison the cache by pairing
// a cached payload with a garbage signature.
func directKey(d [32]byte, signer int32, sig []byte) [32]byte {
	h := sha256.New()
	h.Write(d[:])
	var idb [4]byte
	binary.LittleEndian.PutUint32(idb[:], uint32(signer))
	h.Write(idb[:])
	h.Write(sig)
	var k [32]byte
	h.Sum(k[:0])
	return k
}

// Verify checks sig over payload. For batched signatures it verifies the
// Merkle inclusion proof and then the root signature (via the cache); for
// direct signatures it consults the verified-digest cache first.
func (v *SigVerifier) Verify(payload []byte, sig *types.Signature) bool {
	if v.reg.Scheme() == SchemeNone {
		return true
	}
	if !sig.IsBatched() {
		d := digest(payload)
		key := directKey(d, sig.SignerID, sig.Direct)
		v.mu.Lock()
		hit := v.direct[key]
		v.mu.Unlock()
		if hit {
			v.directHits.Add(1)
			return true
		}
		if !v.reg.VerifyDigest(sig.SignerID, d, sig.Direct) {
			return false
		}
		v.mu.Lock()
		if !v.direct[key] {
			if len(v.directOrder) >= v.max {
				oldest := v.directOrder[0]
				v.directOrder = v.directOrder[1:]
				delete(v.direct, oldest)
			}
			v.direct[key] = true
			v.directOrder = append(v.directOrder, key)
		}
		v.mu.Unlock()
		return true
	}
	if !VerifyProof(payload, sig.Index, sig.Proof, sig.Root) {
		return false
	}
	v.mu.Lock()
	cachedSigner, hit := v.cache[sig.Root]
	v.mu.Unlock()
	if hit && cachedSigner == sig.SignerID {
		return true
	}
	if !v.reg.VerifyDigest(sig.SignerID, sig.Root, sig.RootSig) {
		return false
	}
	v.mu.Lock()
	if _, exists := v.cache[sig.Root]; !exists {
		if len(v.order) >= v.max {
			oldest := v.order[0]
			v.order = v.order[1:]
			delete(v.cache, oldest)
		}
		v.cache[sig.Root] = sig.SignerID
		v.order = append(v.order, sig.Root)
	}
	v.mu.Unlock()
	return true
}
