package cryptoutil

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/types"
)

func TestSignVerify(t *testing.T) {
	reg := NewRegistry(SchemeEd25519, 3, 1)
	payload := []byte("hello world")
	for id := int32(0); id < 3; id++ {
		sig := reg.Signer(id).Sign(payload)
		if !reg.Verify(id, payload, sig) {
			t.Fatalf("signature by %d did not verify", id)
		}
		if reg.Verify((id+1)%3, payload, sig) {
			t.Fatalf("signature by %d verified under wrong key", id)
		}
		if reg.Verify(id, []byte("tampered"), sig) {
			t.Fatal("tampered payload verified")
		}
	}
	if reg.Verify(99, payload, []byte("junk")) {
		t.Fatal("out-of-range signer verified")
	}
}

func TestRegistryDeterministic(t *testing.T) {
	a := NewRegistry(SchemeEd25519, 2, 42)
	b := NewRegistry(SchemeEd25519, 2, 42)
	p := []byte("x")
	if !b.Verify(0, p, a.Signer(0).Sign(p)) {
		t.Fatal("same seed should generate identical keys")
	}
	c := NewRegistry(SchemeEd25519, 2, 43)
	if c.Verify(0, p, a.Signer(0).Sign(p)) {
		t.Fatal("different seed should generate different keys")
	}
}

func TestNoSigScheme(t *testing.T) {
	reg := NewRegistry(SchemeNone, 0, 1)
	sig := reg.Signer(7).Sign([]byte("anything"))
	if !reg.Verify(7, []byte("whatever"), sig) {
		t.Fatal("no-sig scheme must accept its tag")
	}
	if reg.Verify(7, []byte("x"), []byte("bogus!")) {
		t.Fatal("no-sig scheme must reject wrong tags")
	}
}

func TestMerkleProofAllLeaves(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 33} {
		payloads := make([][]byte, n)
		for i := range payloads {
			payloads[i] = []byte{byte(i), byte(i >> 8), 0xAA}
		}
		tree := NewMerkleTree(payloads)
		root := tree.Root()
		for i := range payloads {
			proof := tree.Proof(i)
			if !VerifyProof(payloads[i], uint32(i), proof, root) {
				t.Fatalf("n=%d leaf %d proof failed", n, i)
			}
			// Wrong index must fail (orientation matters). The padded
			// duplicate of the final odd leaf is indistinguishable from
			// its sibling by construction, so only check pairs of real,
			// distinct leaves.
			if i^1 < n && VerifyProof(payloads[i], uint32(i^1), proof, root) {
				t.Fatalf("n=%d leaf %d verified under wrong index", n, i)
			}
		}
		// Foreign payload must fail.
		if VerifyProof([]byte("forged"), 0, tree.Proof(0), root) {
			t.Fatalf("n=%d forged payload verified", n)
		}
	}
}

func TestMerkleProofProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%32) + 1
		rng := rand.New(rand.NewSource(seed))
		payloads := make([][]byte, count)
		for i := range payloads {
			payloads[i] = make([]byte, 1+rng.Intn(40))
			rng.Read(payloads[i])
		}
		tree := NewMerkleTree(payloads)
		i := rng.Intn(count)
		return VerifyProof(payloads[i], uint32(i), tree.Proof(i), tree.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMerkleTamperedProofFails(t *testing.T) {
	payloads := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	tree := NewMerkleTree(payloads)
	proof := tree.Proof(2)
	proof[0][5] ^= 1
	if VerifyProof(payloads[2], 2, proof, tree.Root()) {
		t.Fatal("tampered proof verified")
	}
}

func TestBatchSignerSizeFlush(t *testing.T) {
	reg := NewRegistry(SchemeEd25519, 1, 1)
	bs := NewBatchSigner(reg.Signer(0), 4, time.Hour) // timer never fires
	defer bs.Close()
	var mu sync.Mutex
	var sigs []types.Signature
	payloads := [][]byte{[]byte("p0"), []byte("p1"), []byte("p2"), []byte("p3")}
	done := make(chan struct{})
	for _, p := range payloads {
		p := p
		bs.Enqueue(p, func(sig types.Signature) {
			mu.Lock()
			sigs = append(sigs, sig)
			if len(sigs) == len(payloads) {
				close(done)
			}
			mu.Unlock()
		})
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("batch did not flush at size")
	}
	sv := NewSigVerifier(reg, 16)
	root := sigs[0].Root
	for i := range sigs {
		if sigs[i].Root != root {
			t.Fatal("batch should share one root")
		}
		s := sigs[i]
		if !sv.Verify(payloads[s.Index], &s) {
			t.Fatalf("batched signature %d failed to verify", i)
		}
	}
}

func TestBatchSignerTimerFlush(t *testing.T) {
	reg := NewRegistry(SchemeEd25519, 1, 1)
	bs := NewBatchSigner(reg.Signer(0), 1000, 5*time.Millisecond)
	defer bs.Close()
	got := make(chan types.Signature, 1)
	bs.Enqueue([]byte("solo"), func(sig types.Signature) { got <- sig })
	select {
	case sig := <-got:
		sv := NewSigVerifier(reg, 16)
		if !sv.Verify([]byte("solo"), &sig) {
			t.Fatal("timer-flushed signature invalid")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer flush never happened")
	}
}

func TestBatchSizeOneIsDirect(t *testing.T) {
	reg := NewRegistry(SchemeEd25519, 1, 1)
	bs := NewBatchSigner(reg.Signer(0), 1, time.Millisecond)
	defer bs.Close()
	var sig types.Signature
	doneCh := make(chan struct{})
	bs.Enqueue([]byte("x"), func(s types.Signature) { sig = s; close(doneCh) })
	<-doneCh
	if sig.IsBatched() {
		t.Fatal("size-1 batch should produce a direct signature")
	}
	if !NewSigVerifier(reg, 4).Verify([]byte("x"), &sig) {
		t.Fatal("direct signature invalid")
	}
}

// TestBatchSignerClosedRejectsBoth: Enqueue after Close must be a no-op on
// the size-1 direct path exactly like on the batched path (regression:
// the fast path used to keep signing after Close).
func TestBatchSignerClosedRejectsBoth(t *testing.T) {
	reg := NewRegistry(SchemeEd25519, 1, 1)
	for _, size := range []int{1, 4} {
		bs := NewBatchSigner(reg.Signer(0), size, time.Millisecond)
		bs.Close()
		signed := make(chan struct{})
		bs.Enqueue([]byte("late"), func(types.Signature) { close(signed) })
		select {
		case <-signed:
			t.Fatalf("size=%d: Enqueue after Close still signed", size)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestSigVerifierRejectsWrongSigner(t *testing.T) {
	reg := NewRegistry(SchemeEd25519, 2, 1)
	bs := NewBatchSigner(reg.Signer(0), 1, time.Millisecond)
	defer bs.Close()
	ch := make(chan types.Signature, 1)
	bs.Enqueue([]byte("x"), func(s types.Signature) { ch <- s })
	sig := <-ch
	sig.SignerID = 1 // claim another identity
	if NewSigVerifier(reg, 4).Verify([]byte("x"), &sig) {
		t.Fatal("signature accepted under wrong signer id")
	}
}

func TestSigVerifierRootCache(t *testing.T) {
	reg := NewRegistry(SchemeEd25519, 1, 1)
	bs := NewBatchSigner(reg.Signer(0), 2, time.Hour)
	defer bs.Close()
	type pair struct {
		payload []byte
		sig     types.Signature
	}
	ch := make(chan pair, 2)
	for _, p := range [][]byte{[]byte("a"), []byte("b")} {
		p := p
		bs.Enqueue(p, func(s types.Signature) { ch <- pair{p, s} })
	}
	p1, p2 := <-ch, <-ch
	sv := NewSigVerifier(reg, 4)
	if !sv.Verify(p1.payload, &p1.sig) || !sv.Verify(p2.payload, &p2.sig) {
		t.Fatal("batched signatures failed")
	}
	// Second verification of the same root hits the cache; a corrupted
	// root signature must still fail because the proof binds the payload.
	bad := p2.sig
	bad.Index = p1.sig.Index // wrong index -> proof mismatch
	if sv.Verify(p2.payload, &bad) {
		t.Fatal("cache bypassed the inclusion proof")
	}
}
