package cryptoutil

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/types"
)

func TestVerifyPoolAll(t *testing.T) {
	p := NewVerifyPool(4)
	defer p.Close()
	var ran atomic.Int64
	if !p.All(100, func(i int) bool { ran.Add(1); return true }) {
		t.Fatal("all-true batch reported failure")
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", ran.Load())
	}
	if p.All(50, func(i int) bool { return i != 17 }) {
		t.Fatal("batch with one failure reported success")
	}
	if !p.All(0, func(int) bool { t.Fatal("n=0 ran a task"); return false }) {
		t.Fatal("empty batch must pass")
	}
}

// All must complete even when invoked from a pool worker with every other
// slot busy — the inline fallback is what makes the replica's
// verify-inside-handler pattern deadlock-free.
func TestVerifyPoolAllFromWorker(t *testing.T) {
	p := NewVerifyPool(1)
	defer p.Close()
	done := make(chan bool, 1)
	p.Go(func() {
		done <- p.All(32, func(int) bool { return true })
	})
	if !<-done {
		t.Fatal("nested All failed")
	}
}

func TestVerifyPoolCloseDrains(t *testing.T) {
	p := NewVerifyPool(2)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Go(func() { ran.Add(1) })
		}()
	}
	wg.Wait()
	p.Close()
	accepted := ran.Load()
	// Every accepted task must have executed before Close returned.
	if accepted != 64 {
		t.Fatalf("accepted %d of 64 pre-close tasks", accepted)
	}
	if p.Go(func() { ran.Add(1) }) {
		t.Fatal("Go after Close must be rejected")
	}
	if ran.Load() != accepted {
		t.Fatal("task ran after Close")
	}
	// All after Close falls back to inline execution and still completes.
	var inline atomic.Int64
	if !p.All(8, func(int) bool { inline.Add(1); return true }) {
		t.Fatal("All after Close failed")
	}
	if inline.Load() != 8 {
		t.Fatalf("All after Close ran %d of 8 inline", inline.Load())
	}
	p.Close() // idempotent
}

func TestSigVerifierDirectCache(t *testing.T) {
	reg := NewRegistry(SchemeEd25519, 2, 1)
	sv := NewSigVerifier(reg, 16)
	payload := []byte("st1 reply payload")
	sig := types.Signature{SignerID: 0, Direct: reg.Signer(0).Sign(payload)}

	if !sv.Verify(payload, &sig) {
		t.Fatal("valid signature rejected")
	}
	if sv.DirectCacheHits() != 0 {
		t.Fatal("first verification must miss the cache")
	}
	for i := 0; i < 3; i++ {
		if !sv.Verify(payload, &sig) {
			t.Fatal("re-verification rejected")
		}
	}
	if sv.DirectCacheHits() != 3 {
		t.Fatalf("expected 3 cache hits, got %d", sv.DirectCacheHits())
	}

	// Same payload with a corrupted signature must not hit the cache.
	bad := sig
	bad.Direct = append([]byte(nil), sig.Direct...)
	bad.Direct[0] ^= 0xFF
	if sv.Verify(payload, &bad) {
		t.Fatal("corrupted signature accepted")
	}
	// A different signer claiming the same bytes must not hit either.
	wrong := sig
	wrong.SignerID = 1
	if sv.Verify(payload, &wrong) {
		t.Fatal("wrong signer accepted")
	}
}

func TestSigVerifierDirectCacheEviction(t *testing.T) {
	reg := NewRegistry(SchemeEd25519, 1, 1)
	sv := NewSigVerifier(reg, 2)
	sign := func(s string) ([]byte, types.Signature) {
		p := []byte(s)
		return p, types.Signature{SignerID: 0, Direct: reg.Signer(0).Sign(p)}
	}
	pa, sa := sign("a")
	pb, sb := sign("b")
	pc, sc := sign("c")
	sv.Verify(pa, &sa)
	sv.Verify(pb, &sb)
	sv.Verify(pc, &sc) // evicts "a"
	sv.Verify(pa, &sa) // miss, re-verified and re-cached
	if sv.DirectCacheHits() != 0 {
		t.Fatalf("expected 0 hits across evictions, got %d", sv.DirectCacheHits())
	}
	sv.Verify(pa, &sa)
	if sv.DirectCacheHits() != 1 {
		t.Fatalf("expected re-cached entry to hit, got %d", sv.DirectCacheHits())
	}
}
