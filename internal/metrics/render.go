package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Histograms are emitted with cumulative
// `_bucket{le="..."}` series over the non-empty buckets (bounds in
// seconds, the Prometheus convention for latency), plus `_sum` and
// `_count`. A `# TYPE` line is emitted once per metric family.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastType := ""
	for _, c := range s.Counters {
		if c.Name != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", c.Name); err != nil {
				return err
			}
			lastType = c.Name
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", c.Name, promLabels(c.Labels), c.Value); err != nil {
			return err
		}
	}
	lastType = ""
	for _, g := range s.Gauges {
		if g.Name != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", g.Name); err != nil {
				return err
			}
			lastType = g.Name
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", g.Name, promLabels(g.Labels), g.Value); err != nil {
			return err
		}
	}
	lastType = ""
	for _, h := range s.Hists {
		if h.Name != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
				return err
			}
			lastType = h.Name
		}
		// The overflow bucket (UpperNanos == MaxUint64) is NOT emitted in
		// the loop: the mandatory +Inf bucket below already carries the
		// total count, and emitting both would duplicate the le="+Inf"
		// series, which the exposition format forbids.
		cum := uint64(0)
		for _, b := range h.Hist.Buckets {
			if b.UpperNanos == math.MaxUint64 {
				continue
			}
			cum += b.Count
			le := strconv.FormatFloat(float64(b.UpperNanos)/1e9, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				h.Name, promLabels(joinLabels(h.Labels, `le="`+le+`"`)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			h.Name, promLabels(joinLabels(h.Labels, `le="+Inf"`)), h.Hist.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, promLabels(h.Labels),
			strconv.FormatFloat(float64(h.Hist.SumNanos)/1e9, 'g', -1, 64)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", h.Name, promLabels(h.Labels), h.Hist.Count); err != nil {
			return err
		}
	}
	return nil
}

// promLabels wraps a rendered label string in braces, or returns "" for
// the unlabeled case.
func promLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// joinLabels appends one extra rendered label to an existing label set.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// jsonHist is the JSON view of one histogram: the summary statistics an
// operator actually reads, derived from the buckets at render time.
type jsonHist struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

type jsonSnapshot struct {
	Counters   []CounterValue `json:"counters"`
	Gauges     []GaugeValue   `json:"gauges"`
	Histograms []jsonHist     `json:"histograms"`
}

// WriteJSON renders the snapshot as a JSON document: raw counter and
// gauge values plus per-histogram count/mean/p50/p90/p99/p99.9/max in
// milliseconds.
func (s Snapshot) WriteJSON(w io.Writer) error {
	js := jsonSnapshot{Counters: s.Counters, Gauges: s.Gauges, Histograms: []jsonHist{}}
	if js.Counters == nil {
		js.Counters = []CounterValue{}
	}
	if js.Gauges == nil {
		js.Gauges = []GaugeValue{}
	}
	for _, h := range s.Hists {
		jh := jsonHist{
			Name:   h.Name,
			Labels: h.Labels,
			Count:  h.Hist.Count,
			MeanMs: round3(h.Hist.MeanNanos() / 1e6),
			P50Ms:  round3(h.Hist.Quantile(0.50) / 1e6),
			P90Ms:  round3(h.Hist.Quantile(0.90) / 1e6),
			P99Ms:  round3(h.Hist.Quantile(0.99) / 1e6),
			P999Ms: round3(h.Hist.Quantile(0.999) / 1e6),
		}
		if n := len(h.Hist.Buckets); n > 0 {
			jh.MaxMs = round3(float64(h.Hist.Buckets[n-1].LowerNanos) / 1e6)
		}
		js.Histograms = append(js.Histograms, jh)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// round3 keeps three decimals — enough for ms-scale latency reporting
// without drowning the JSON in float noise.
func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}
