package metrics

import (
	"testing"
	"time"
)

// BenchmarkHistogramObserve is the record-path cost statement: a few
// nanoseconds and — the property the whole package is designed around —
// zero allocations per op (run with -benchmem; TestRecordPathAllocFree
// enforces the same in plain `go test`).
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i&0xFFFFF) * time.Nanosecond)
	}
}

// BenchmarkCounterAdd measures the counter hot path.
func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkHistogramObserveParallel shows contention behavior: all
// goroutines hammer the same histogram (shared atomics, no locks).
func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(time.Duration(i&0xFFFFF) * time.Nanosecond)
			i++
		}
	})
}

// BenchmarkNilObserve is the disabled-instrumentation cost: one nil
// check, nothing else.
func BenchmarkNilObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}
