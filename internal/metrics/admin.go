package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Health is the answer a component gives to "are you able to serve?".
// The durability layer's fail-stop semantics surface here: a replica
// whose WAL append failed reports OK=false/State="muted" and never
// serves protocol traffic again (see internal/replica/durability.go).
type Health struct {
	OK     bool   `json:"ok"`
	State  string `json:"state"`            // "serving", "muted", "closed"
	Detail string `json:"detail,omitempty"` // human-readable cause
}

// Route mounts an extra handler on the admin mux — how the tracer's
// /traces, /traces/slow and /debug/flightrec endpoints ride the same
// listener without this package importing internal/trace.
type Route struct {
	Pattern string
	Handler http.Handler
}

// getOnly rejects every method but GET (and HEAD, which net/http treats
// as GET) with 405 + Allow, per RFC 9110. All admin endpoints are
// read-only views; anything else hitting them is a client bug.
func getOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// AdminHandler serves the observability endpoints:
//
//	/metrics — Prometheus text exposition of the registry
//	/stats   — JSON snapshot (counters, gauges, histogram percentiles)
//	/healthz — health JSON; HTTP 503 when not OK, 200 otherwise
//
// plus any extra routes. Every route — including extras — is GET-only.
// health may be nil, in which case /healthz always reports serving.
func AdminHandler(reg *Registry, health func() Health, extra ...Route) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := Health{OK: true, State: "serving"}
		if health != nil {
			h = health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	for _, rt := range extra {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	return getOnly(mux)
}

// AdminServer is a running admin HTTP listener (basil-server -admin-addr).
type AdminServer struct {
	lis net.Listener
	srv *http.Server
}

// StartAdmin binds addr (":0" picks a free port) and serves AdminHandler
// on it in a background goroutine until Close.
func StartAdmin(addr string, reg *Registry, health func() Health, extra ...Route) (*AdminServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	a := &AdminServer{
		lis: lis,
		srv: &http.Server{Handler: AdminHandler(reg, health, extra...), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = a.srv.Serve(lis) }()
	return a, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *AdminServer) Addr() string { return a.lis.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (a *AdminServer) Close() error { return a.srv.Close() }
