package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Health is the answer a component gives to "are you able to serve?".
// The durability layer's fail-stop semantics surface here: a replica
// whose WAL append failed reports OK=false/State="muted" and never
// serves protocol traffic again (see internal/replica/durability.go).
type Health struct {
	OK     bool   `json:"ok"`
	State  string `json:"state"`            // "serving", "muted", "closed"
	Detail string `json:"detail,omitempty"` // human-readable cause
}

// AdminHandler serves the observability endpoints:
//
//	/metrics — Prometheus text exposition of the registry
//	/stats   — JSON snapshot (counters, gauges, histogram percentiles)
//	/healthz — health JSON; HTTP 503 when not OK, 200 otherwise
//
// health may be nil, in which case /healthz always reports serving.
func AdminHandler(reg *Registry, health func() Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := Health{OK: true, State: "serving"}
		if health != nil {
			h = health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	return mux
}

// AdminServer is a running admin HTTP listener (basil-server -admin-addr).
type AdminServer struct {
	lis net.Listener
	srv *http.Server
}

// StartAdmin binds addr (":0" picks a free port) and serves AdminHandler
// on it in a background goroutine until Close.
func StartAdmin(addr string, reg *Registry, health func() Health) (*AdminServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	a := &AdminServer{
		lis: lis,
		srv: &http.Server{Handler: AdminHandler(reg, health), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = a.srv.Serve(lis) }()
	return a, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *AdminServer) Addr() string { return a.lis.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (a *AdminServer) Close() error { return a.srv.Close() }
