package metrics

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket geometry: exact unit buckets below
// 32, then 16 linear sub-buckets per power-of-two octave, with lower
// bounds that invert the index function.
func TestBucketBoundaries(t *testing.T) {
	for v := uint64(0); v < 32; v++ {
		if got := bucketIdx(v); got != int(v) {
			t.Fatalf("bucketIdx(%d) = %d, want exact bucket", v, got)
		}
	}
	// Boundary continuity: 31 -> 31, 32 -> 32.
	if got := bucketIdx(32); got != 32 {
		t.Fatalf("bucketIdx(32) = %d, want 32", got)
	}
	// Every bucket's lower bound maps back into that bucket, and bounds
	// are strictly increasing.
	for i := 0; i < histBuckets; i++ {
		lo := bucketLower(i)
		if got := bucketIdx(lo); got != i {
			t.Fatalf("bucketIdx(bucketLower(%d)=%d) = %d", i, lo, got)
		}
		if i+1 < histBuckets && bucketUpper(i) != bucketLower(i+1) {
			t.Fatalf("bucket %d upper %d != bucket %d lower %d", i, bucketUpper(i), i+1, bucketLower(i+1))
		}
		if up := bucketUpper(i); up != math.MaxUint64 {
			// The value one below the upper bound still lands in i.
			if got := bucketIdx(up - 1); got != i {
				t.Fatalf("bucketIdx(upper-1=%d) = %d, want %d", up-1, got, i)
			}
		}
	}
	// Relative bucket width ≤ 1/16 of the lower bound for v ≥ 32.
	for _, v := range []uint64{32, 1000, 12345, 1 << 20, 1 << 40, 1<<63 + 9} {
		i := bucketIdx(v)
		lo, up := bucketLower(i), bucketUpper(i)
		if v < lo || (up != math.MaxUint64 && v >= up) {
			t.Fatalf("v=%d outside its bucket [%d,%d)", v, lo, up)
		}
		if up != math.MaxUint64 && float64(up-lo) > float64(lo)/16+1 {
			t.Fatalf("bucket [%d,%d) wider than lo/16", lo, up)
		}
	}
	// The largest index must stay inside the array.
	if got := bucketIdx(math.MaxUint64); got != histBuckets-1 {
		t.Fatalf("bucketIdx(MaxUint64) = %d, want %d", got, histBuckets-1)
	}
}

// TestHistogramQuantiles checks quantile recovery on a known uniform
// sample: the log-scale estimate must land within one sub-bucket
// (6.25% + interpolation slack) of the true value.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	const n = 100000
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(rng.Int63n(1_000_000))) // uniform [0, 1ms)
	}
	s := h.SnapshotHist()
	if s.Count != n {
		t.Fatalf("count %d, want %d", s.Count, n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := q * 1e6
		got := s.Quantile(q)
		if math.Abs(got-want) > want*0.08 {
			t.Fatalf("q=%v: got %.0f ns, want ≈%.0f (±8%%)", q, got, want)
		}
	}
	mean := s.MeanNanos()
	if math.Abs(mean-5e5) > 5e4 {
		t.Fatalf("mean %.0f, want ≈500000", mean)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// -race proves the record path is data-race free and the totals add up.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(1 << 30)))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.SnapshotHist()
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	var sum uint64
	for _, b := range s.Buckets {
		sum += b.Count
	}
	if sum != workers*per {
		t.Fatalf("bucket sum %d, want %d", sum, workers*per)
	}
}

// TestRecordPathAllocFree is the hard zero-allocation guarantee: if a
// future change adds an allocation to Observe or Add, this fails in CI
// rather than silently taxing every hot path.
func TestRecordPathAllocFree(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345 * time.Nanosecond) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v per op, want 0", n)
	}
	// Nil handles (disabled instrumentation) must also be free.
	var hn *Histogram
	var cn *Counter
	if n := testing.AllocsPerRun(1000, func() { hn.Observe(5); cn.Add(1) }); n != 0 {
		t.Fatalf("nil record path allocates %v per op, want 0", n)
	}
}

// TestRegistrySnapshotDiff covers registration of all metric kinds,
// bound counters, snapshot contents and interval deltas.
func TestRegistrySnapshotDiff(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("basil_test_events_total")
	var ext atomic.Uint64
	reg.BindCounter("basil_test_bound_total", &ext)
	reg.BindCounterFunc("basil_test_fn_total", func() uint64 { return 77 })
	g := reg.Gauge("basil_test_depth")
	reg.BindGaugeFunc("basil_test_size", func() int64 { return 11 })
	h := reg.Histogram("basil_test_latency_seconds", "kind", "x")

	c.Add(3)
	ext.Add(40)
	g.Set(-2)
	h.Observe(100 * time.Microsecond)
	h.Observe(200 * time.Microsecond)

	s1 := reg.Snapshot()
	want := map[string]uint64{
		"basil_test_events_total": 3,
		"basil_test_bound_total":  40,
		"basil_test_fn_total":     77,
	}
	for _, cv := range s1.Counters {
		if cv.Value != want[cv.Name] {
			t.Fatalf("counter %s = %d, want %d", cv.Name, cv.Value, want[cv.Name])
		}
	}
	if len(s1.Gauges) != 2 || s1.Gauges[0].Name != "basil_test_depth" || s1.Gauges[0].Value != -2 {
		t.Fatalf("gauges: %+v", s1.Gauges)
	}
	if len(s1.Hists) != 1 || s1.Hists[0].Hist.Count != 2 || s1.Hists[0].Labels != `kind="x"` {
		t.Fatalf("hists: %+v", s1.Hists)
	}

	c.Add(5)
	h.Observe(time.Millisecond)
	d := reg.Snapshot().Sub(s1)
	for _, cv := range d.Counters {
		switch cv.Name {
		case "basil_test_events_total":
			if cv.Value != 5 {
				t.Fatalf("delta events = %d, want 5", cv.Value)
			}
		case "basil_test_bound_total", "basil_test_fn_total":
			if cv.Value != 0 {
				t.Fatalf("delta %s = %d, want 0", cv.Name, cv.Value)
			}
		}
	}
	if d.Hists[0].Hist.Count != 1 {
		t.Fatalf("delta hist count = %d, want 1", d.Hists[0].Hist.Count)
	}
	var sum uint64
	for _, b := range d.Hists[0].Hist.Buckets {
		sum += b.Count
	}
	if sum != 1 {
		t.Fatalf("delta hist bucket sum = %d, want 1", sum)
	}
}

// TestNopRegistry: a Nop registry hands out nil (no-op) handles, retains
// nothing, and renders empty.
func TestNopRegistry(t *testing.T) {
	if Nop.Enabled() {
		t.Fatal("Nop.Enabled() = true")
	}
	c := Nop.Counter("x_total")
	h := Nop.Histogram("x_seconds")
	g := Nop.Gauge("x")
	if c != nil || h != nil || g != nil {
		t.Fatal("Nop registry returned live handles")
	}
	c.Add(1)
	h.Observe(time.Second)
	g.Set(9)
	s := Nop.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Hists) != 0 {
		t.Fatalf("Nop snapshot not empty: %+v", s)
	}
}

// TestDuplicateRegistrationPanics: two metrics under one full name is a
// wiring bug that must fail loudly at startup, not alias silently.
func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Counter("dup_total")
}

// TestWritePrometheus checks the exposition format: TYPE lines, label
// rendering, cumulative le buckets ending in +Inf, and _sum/_count.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("basil_a_total").Add(7)
	reg.Counter("basil_b_total", "kind", "st1").Add(2)
	reg.Gauge("basil_depth").Set(5)
	h := reg.Histogram("basil_lat_seconds")
	h.Observe(100 * time.Nanosecond) // bucket [96,102) region
	h.Observe(time.Millisecond)

	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE basil_a_total counter\nbasil_a_total 7\n",
		`basil_b_total{kind="st1"} 2`,
		"# TYPE basil_depth gauge\nbasil_depth 5\n",
		"# TYPE basil_lat_seconds histogram",
		`basil_lat_seconds_bucket{le="+Inf"} 2`,
		"basil_lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Cumulative: the last finite le line must report 2 as well once both
	// buckets are passed; simply check _sum is ~0.0010001 seconds.
	if !strings.Contains(out, "basil_lat_seconds_sum 0.0010001") {
		t.Fatalf("sum line wrong:\n%s", out)
	}
}

// TestWriteJSON checks the JSON renderer shape and percentile fields.
func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("basil_a_total").Add(1)
	h := reg.Histogram("basil_lat_seconds")
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	var b strings.Builder
	if err := reg.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   []CounterValue `json:"counters"`
		Histograms []struct {
			Name   string  `json:"name"`
			Count  uint64  `json:"count"`
			P50Ms  float64 `json:"p50_ms"`
			P999Ms float64 `json:"p999_ms"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, b.String())
	}
	if len(doc.Counters) != 1 || doc.Counters[0].Value != 1 {
		t.Fatalf("counters: %+v", doc.Counters)
	}
	if len(doc.Histograms) != 1 || doc.Histograms[0].Count != 1000 {
		t.Fatalf("histograms: %+v", doc.Histograms)
	}
	if p := doc.Histograms[0].P50Ms; math.Abs(p-0.5) > 0.05 {
		t.Fatalf("p50 %.3f ms, want ≈0.5", p)
	}
	if p := doc.Histograms[0].P999Ms; math.Abs(p-0.999) > 0.1 {
		t.Fatalf("p99.9 %.3f ms, want ≈1", p)
	}
}

// TestAdminHandler drives the three endpoints through httptest,
// including the 503 on an unhealthy report.
func TestAdminHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("basil_x_total").Add(9)
	healthy := true
	h := AdminHandler(reg, func() Health {
		if healthy {
			return Health{OK: true, State: "serving"}
		}
		return Health{OK: false, State: "muted", Detail: "wal append failed"}
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "basil_x_total 9") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/stats"); code != 200 || !strings.Contains(body, `"basil_x_total"`) {
		t.Fatalf("/stats: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"serving"`) {
		t.Fatalf("/healthz healthy: %d %q", code, body)
	}
	healthy = false
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, `"muted"`) {
		t.Fatalf("/healthz muted: %d %q", code, body)
	}
}
