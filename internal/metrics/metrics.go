// Package metrics is the observability plane: a dependency-free registry
// of atomic counters, gauges, and fixed-bucket log-scale latency
// histograms, with snapshot/diff support and two renderers (Prometheus
// text exposition and JSON). It exists so every layer — replica, store,
// WAL, transport, client, bench harness — reports through one mechanism
// that is cheap enough to leave on in production.
//
// Record-path cost. Counter.Add and Histogram.Observe are a handful of
// atomic adds into fixed arrays: zero heap allocations (enforced by
// TestRecordPathAllocFree and BenchmarkHistogramObserve), no locks, no
// maps. All record-path methods are nil-safe — calling them on a nil
// *Counter/*Gauge/*Histogram is a no-op — so instrumentation can be
// compiled in unconditionally and disabled by registering against Nop.
//
// Histogram shape. Buckets are log-scale: one power-of-two octave split
// into 16 linear sub-buckets (HdrHistogram-style), so any recorded value
// lands in a bucket whose bounds are within 1/16 ≈ 6.25% of it. That is
// tight enough for p50/p90/p99/p99.9 reporting while keeping the bucket
// array fixed-size (976 slots covering the full uint64 nanosecond range)
// and the record path branch-free beyond the index computation.
//
// Ownership. A Registry is created by the component that owns the
// process-visible namespace (one per replica, per client, per transport)
// and is internally synchronized: registration takes a mutex, recording
// never does. Snapshot reads are atomic per-field but not cross-field
// consistent — acceptable for monitoring, not for invariants.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 on a nil receiver).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (queue depths, pool sizes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative to decrease). No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket geometry: values < 32 get exact unit buckets; every
// larger power-of-two octave [2^e, 2^(e+1)) is split into 16 linear
// sub-buckets, so a bucket's width is at most 1/16 of its lower bound.
const (
	histSubBuckets = 16
	// histBuckets covers the full non-negative int64 range:
	// indices 0..31 are exact, then 16 per octave for e = 5..63.
	histBuckets = 32 + histSubBuckets*(63-4)
)

// bucketIdx maps a non-negative value to its bucket index.
func bucketIdx(v uint64) int {
	if v < 32 {
		return int(v)
	}
	e := bits.Len64(v) - 1 // floor(log2 v), ≥ 5
	// Top 4 mantissa bits after the leading 1 select the sub-bucket.
	return histSubBuckets*(e-3) + int(v>>(e-4)) - histSubBuckets
}

// bucketLower returns the smallest value mapping to bucket i.
func bucketLower(i int) uint64 {
	if i < 32 {
		return uint64(i)
	}
	e := i/histSubBuckets + 3
	pos := i % histSubBuckets
	return uint64(histSubBuckets+pos) << (e - 4)
}

// bucketUpper returns the exclusive upper bound of bucket i.
func bucketUpper(i int) uint64 {
	if i+1 >= histBuckets {
		return math.MaxUint64
	}
	return bucketLower(i + 1)
}

// Histogram is a fixed-bucket log-scale latency histogram. The zero
// value is ready to use; Observe is lock-free and allocation-free.
// Values are recorded in nanoseconds.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
// No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIdx(v)].Add(1)
}

// Since records the elapsed time from t0 until now. No-op on nil.
func (h *Histogram) Since(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0))
	}
}

// Count returns the number of recorded observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SnapshotHist captures the histogram's current state.
func (h *Histogram) SnapshotHist() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{
				LowerNanos: bucketLower(i),
				UpperNanos: bucketUpper(i),
				Count:      n,
			})
		}
	}
	return s
}

// Bucket is one non-empty histogram bucket: counts of values in
// [LowerNanos, UpperNanos).
type Bucket struct {
	LowerNanos uint64 `json:"lower_ns"`
	UpperNanos uint64 `json:"upper_ns"`
	Count      uint64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram: total count, sum
// of recorded nanoseconds, and the non-empty buckets in ascending order.
type HistSnapshot struct {
	Count    uint64   `json:"count"`
	SumNanos uint64   `json:"sum_ns"`
	Buckets  []Bucket `json:"buckets,omitempty"`
}

// MeanNanos returns the mean recorded value, 0 when empty.
func (s HistSnapshot) MeanNanos() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNanos) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in nanoseconds by
// linear interpolation within the bucket containing the target rank.
// The estimate is within one sub-bucket (≈6.25%) of the true value.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var seen float64
	for _, b := range s.Buckets {
		n := float64(b.Count)
		if seen+n > rank {
			// Interpolate the rank's position inside this bucket.
			frac := 0.5
			if n > 1 {
				frac = (rank - seen) / n
			}
			lo, hi := float64(b.LowerNanos), float64(b.UpperNanos)
			if hi <= lo || b.UpperNanos == math.MaxUint64 {
				return lo
			}
			return lo + frac*(hi-lo)
		}
		seen += n
	}
	if len(s.Buckets) > 0 {
		return float64(s.Buckets[len(s.Buckets)-1].LowerNanos)
	}
	return 0
}

// Sub returns the histogram delta s − prev (counts subtract bucket-wise;
// buckets absent from prev pass through). Both snapshots must come from
// the same histogram, prev earlier.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count:    s.Count - prev.Count,
		SumNanos: s.SumNanos - prev.SumNanos,
	}
	old := make(map[uint64]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		old[b.LowerNanos] = b.Count
	}
	for _, b := range s.Buckets {
		if n := b.Count - old[b.LowerNanos]; n > 0 {
			out.Buckets = append(out.Buckets, Bucket{
				LowerNanos: b.LowerNanos,
				UpperNanos: b.UpperNanos,
				Count:      n,
			})
		}
	}
	return out
}

// metric kinds inside the registry.
type counterEntry struct {
	name, labels string
	c            *Counter
	ext          *atomic.Uint64 // bound external counter (BindCounter)
	fn           func() uint64  // bound external reader (BindCounterFunc)
}

type gaugeEntry struct {
	name, labels string
	g            *Gauge
	fn           func() int64
}

type histEntry struct {
	name, labels string
	h            *Histogram
}

// Registry names and owns a set of metrics. Registration (any method
// returning or binding a metric) takes a mutex and may allocate;
// recording through the returned handles never does. The zero value is
// NOT usable — call NewRegistry.
type Registry struct {
	nop bool

	// mu guards registration state (names and the instrument slices);
	// the record path reads handles without it.
	mu       sync.Mutex
	names    map[string]bool
	counters []counterEntry
	gauges   []gaugeEntry
	hists    []histEntry
}

// NewRegistry returns an empty live registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// Nop is the disabled registry: every registration returns a nil handle
// (record paths become no-ops) and nothing is retained. Pass it where a
// *Registry is expected to turn instrumentation off.
var Nop = &Registry{nop: true}

// Enabled reports whether this registry actually records (false for Nop
// and for a nil registry).
func (r *Registry) Enabled() bool { return r != nil && !r.nop }

// labelString renders "k1=\"v1\",k2=\"v2\"" from pairs; panics on an odd
// count (a registration-time programming error). Label values are
// escaped per the Prometheus text exposition format (backslash, double
// quote, newline), so a value like `path="/x"` cannot corrupt the
// rendered series.
func labelString(pairs []string) string {
	if len(pairs)%2 != 0 {
		panic("metrics: odd label pair count")
	}
	s := ""
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			s += ","
		}
		s += pairs[i] + "=\"" + escapeLabelValue(pairs[i+1]) + "\""
	}
	return s
}

// escapeLabelValue applies the exposition-format escapes to a label
// value: \ → \\, " → \", newline → \n.
func escapeLabelValue(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// register reserves name{labels}, panicking on duplicates — two metrics
// with the same full name is always a wiring bug worth failing loudly on.
func (r *Registry) register(name, labels string) {
	full := name + "{" + labels + "}"
	if r.names[full] {
		panic(fmt.Sprintf("metrics: duplicate registration of %s", full))
	}
	r.names[full] = true
}

// Counter registers and returns a counter. Labels are key,value pairs.
// On Nop it returns nil (a valid no-op handle).
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	labels := labelString(labelPairs)
	r.register(name, labels)
	c := &Counter{}
	r.counters = append(r.counters, counterEntry{name: name, labels: labels, c: c})
	return c
}

// BindCounter exposes an existing atomic counter (for instance a field of
// a pre-existing Stats struct) under name without copying it: snapshots
// read v directly, and the owning code keeps incrementing its atomic as
// before. No-op on Nop.
func (r *Registry) BindCounter(name string, v *atomic.Uint64, labelPairs ...string) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	labels := labelString(labelPairs)
	r.register(name, labels)
	r.counters = append(r.counters, counterEntry{name: name, labels: labels, ext: v})
}

// BindCounterFunc exposes a cumulative value computed at snapshot time
// (e.g. a counter behind another subsystem's lock). fn must be safe to
// call from any goroutine. No-op on Nop.
func (r *Registry) BindCounterFunc(name string, fn func() uint64, labelPairs ...string) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	labels := labelString(labelPairs)
	r.register(name, labels)
	r.counters = append(r.counters, counterEntry{name: name, labels: labels, fn: fn})
}

// Gauge registers and returns a settable gauge (nil on Nop).
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	labels := labelString(labelPairs)
	r.register(name, labels)
	g := &Gauge{}
	r.gauges = append(r.gauges, gaugeEntry{name: name, labels: labels, g: g})
	return g
}

// BindGaugeFunc exposes a gauge computed at snapshot time (sizes held
// behind other locks, for example store occupancy). No-op on Nop.
func (r *Registry) BindGaugeFunc(name string, fn func() int64, labelPairs ...string) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	labels := labelString(labelPairs)
	r.register(name, labels)
	r.gauges = append(r.gauges, gaugeEntry{name: name, labels: labels, fn: fn})
}

// Histogram registers and returns a latency histogram (nil on Nop).
func (r *Registry) Histogram(name string, labelPairs ...string) *Histogram {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	labels := labelString(labelPairs)
	r.register(name, labels)
	h := &Histogram{}
	r.hists = append(r.hists, histEntry{name: name, labels: labels, h: h})
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  uint64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// HistValue is one histogram in a snapshot.
type HistValue struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Hist   HistSnapshot
}

// Snapshot is a point-in-time copy of every metric in a registry,
// sorted by (name, labels). Snapshots support Sub (interval deltas) and
// feed both renderers.
type Snapshot struct {
	Counters []CounterValue
	Gauges   []GaugeValue
	Hists    []HistValue
}

// Snapshot captures every registered metric. Values are read atomically
// per metric; the set is not a consistent cut across metrics.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if !r.Enabled() {
		return s
	}
	r.mu.Lock()
	counters := append([]counterEntry(nil), r.counters...)
	gauges := append([]gaugeEntry(nil), r.gauges...)
	hists := append([]histEntry(nil), r.hists...)
	r.mu.Unlock()
	for _, e := range counters {
		var v uint64
		switch {
		case e.c != nil:
			v = e.c.Load()
		case e.ext != nil:
			v = e.ext.Load()
		case e.fn != nil:
			v = e.fn()
		}
		s.Counters = append(s.Counters, CounterValue{Name: e.name, Labels: e.labels, Value: v})
	}
	for _, e := range gauges {
		var v int64
		if e.g != nil {
			v = e.g.Load()
		} else if e.fn != nil {
			v = e.fn()
		}
		s.Gauges = append(s.Gauges, GaugeValue{Name: e.name, Labels: e.labels, Value: v})
	}
	for _, e := range hists {
		s.Hists = append(s.Hists, HistValue{Name: e.name, Labels: e.labels, Hist: e.h.SnapshotHist()})
	}
	sortSnapshot(&s)
	return s
}

func sortSnapshot(s *Snapshot) {
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return s.Counters[i].Labels < s.Counters[j].Labels
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		if s.Gauges[i].Name != s.Gauges[j].Name {
			return s.Gauges[i].Name < s.Gauges[j].Name
		}
		return s.Gauges[i].Labels < s.Gauges[j].Labels
	})
	sort.Slice(s.Hists, func(i, j int) bool {
		if s.Hists[i].Name != s.Hists[j].Name {
			return s.Hists[i].Name < s.Hists[j].Name
		}
		return s.Hists[i].Labels < s.Hists[j].Labels
	})
}

// Sub returns the interval delta s − prev: counters and histogram counts
// subtract (metrics new in s pass through); gauges keep their current
// value, since a gauge delta is rarely meaningful.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{Gauges: append([]GaugeValue(nil), s.Gauges...)}
	oldC := make(map[string]uint64, len(prev.Counters))
	for _, c := range prev.Counters {
		oldC[c.Name+"{"+c.Labels+"}"] = c.Value
	}
	for _, c := range s.Counters {
		c.Value -= oldC[c.Name+"{"+c.Labels+"}"]
		out.Counters = append(out.Counters, c)
	}
	oldH := make(map[string]HistSnapshot, len(prev.Hists))
	for _, h := range prev.Hists {
		oldH[h.Name+"{"+h.Labels+"}"] = h.Hist
	}
	for _, h := range s.Hists {
		h.Hist = h.Hist.Sub(oldH[h.Name+"{"+h.Labels+"}"])
		out.Hists = append(out.Hists, h)
	}
	return out
}
