package metrics

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("updategolden", false, "rewrite testdata golden files")

// TestPrometheusGolden locks the text exposition format down byte-for-byte:
// TYPE lines once per family, label-value escaping, cumulative le buckets
// with exactly one +Inf per series (even when the histogram's overflow
// bucket is populated), and _sum/_count. Regenerate deliberately with
// `go test ./internal/metrics/ -run Golden -updategolden` after a
// renderer change.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("basil_requests_total", "kind", "read").Add(3)
	reg.Counter("basil_requests_total", "kind", "weird\"v\\al\nue").Add(1)
	reg.Gauge("basil_queue_depth", "shard", "0").Set(42)

	s := reg.Snapshot()
	// Hand-crafted histogram so the bucket bounds — including a populated
	// overflow bucket, unreachable through Observe — are deterministic.
	s.Hists = append(s.Hists, HistValue{
		Name:   "basil_lat_seconds",
		Labels: `op="prepare"`,
		Hist: HistSnapshot{
			Count:    6,
			SumNanos: 4500,
			Buckets: []Bucket{
				{LowerNanos: 0, UpperNanos: 1000, Count: 1},
				{LowerNanos: 1000, UpperNanos: 2000, Count: 2},
				{LowerNanos: 1 << 40, UpperNanos: math.MaxUint64, Count: 3},
			},
		},
	})

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -updategolden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Conformance spot-checks independent of the golden bytes.
	if strings.Count(got, `le="+Inf"`) != 1 {
		t.Fatalf("want exactly one +Inf bucket per series:\n%s", got)
	}
	if !strings.Contains(got, `kind="weird\"v\\al\nue"`) {
		t.Fatalf("label value not escaped per exposition format:\n%s", got)
	}
}

// TestEscapeLabelValue pins the three exposition-format escapes.
func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":     "plain",
		`back\slen`: `back\\slen`,
		`qu"ote`:    `qu\"ote`,
		"new\nline": `new\nline`,
		"":          "",
	}
	for in, want := range cases {
		if got := escapeLabelValue(in); got != want {
			t.Fatalf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}
