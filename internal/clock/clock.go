// Package clock abstracts time sources so the δ admission bound of the
// Basil read/prepare path (paper §4.1) can be tested under injected skew,
// and so simulations are reproducible.
//
// Ownership: Clock implementations must be safe for concurrent use —
// replicas call NowMicros from pool workers and the checkpoint loop
// simultaneously. The provided implementations (Real, the test clocks)
// are stateless or internally synchronized.
package clock

import (
	"sync/atomic"
	"time"
)

// Clock supplies the scalar time component of MVTSO timestamps, in
// microseconds. Implementations must be safe for concurrent use.
type Clock interface {
	// NowMicros returns the current time in microseconds.
	NowMicros() uint64
}

// Real reads the wall clock.
type Real struct{}

// NowMicros implements Clock.
func (Real) NowMicros() uint64 { return uint64(time.Now().UnixMicro()) }

// Skewed offsets a base clock by a fixed amount (positive or negative),
// modelling NTP drift between nodes.
type Skewed struct {
	Base   Clock
	Offset int64 // microseconds, may be negative
}

// NowMicros implements Clock.
func (s Skewed) NowMicros() uint64 {
	v := int64(s.Base.NowMicros()) + s.Offset
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// Manual is an explicitly advanced clock for deterministic tests.
type Manual struct {
	now atomic.Uint64
}

// NewManual creates a manual clock starting at start microseconds.
func NewManual(start uint64) *Manual {
	m := &Manual{}
	m.now.Store(start)
	return m
}

// NowMicros implements Clock.
func (m *Manual) NowMicros() uint64 { return m.now.Load() }

// Advance moves the clock forward by d microseconds.
func (m *Manual) Advance(d uint64) { m.now.Add(d) }

// Set pins the clock to t microseconds.
func (m *Manual) Set(t uint64) { m.now.Store(t) }
