package clock

import (
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	c := Real{}
	a := c.NowMicros()
	time.Sleep(2 * time.Millisecond)
	b := c.NowMicros()
	if b <= a {
		t.Fatalf("real clock did not advance: %d -> %d", a, b)
	}
}

func TestSkewedClock(t *testing.T) {
	m := NewManual(1000)
	ahead := Skewed{Base: m, Offset: 500}
	behind := Skewed{Base: m, Offset: -300}
	if ahead.NowMicros() != 1500 || behind.NowMicros() != 700 {
		t.Fatalf("skew wrong: %d %d", ahead.NowMicros(), behind.NowMicros())
	}
	// Negative skew clamps at zero rather than wrapping.
	deep := Skewed{Base: NewManual(10), Offset: -100}
	if deep.NowMicros() != 0 {
		t.Fatalf("underflow not clamped: %d", deep.NowMicros())
	}
}

func TestManualClock(t *testing.T) {
	m := NewManual(5)
	if m.NowMicros() != 5 {
		t.Fatal("start value wrong")
	}
	m.Advance(10)
	if m.NowMicros() != 15 {
		t.Fatal("advance wrong")
	}
	m.Set(100)
	if m.NowMicros() != 100 {
		t.Fatal("set wrong")
	}
}
