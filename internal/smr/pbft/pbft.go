// Package pbft implements a PBFT-style totally ordered log (Castro &
// Liskov, OSDI '99) as the BFT-SMaRt stand-in baseline (paper §6): a
// stable leader batches client commands into blocks, and each block passes
// through pre-prepare, prepare (all-to-all) and commit (all-to-all) before
// execution — five message delays from submission to client-visible reply,
// matching the delay count the paper attributes to BFT-SMaRt.
//
// Replicas authenticate messages with ed25519 signatures from the shared
// key registry. View changes are out of scope: the paper's baseline
// experiments run gracious executions with a stable leader.
package pbft

import (
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/smr"
	"repro/internal/transport"
)

// Config parameterizes one PBFT group (one shard).
type Config struct {
	Shard    int32
	F        int // n = 3f+1
	BatchMax int // max commands per block
	// BatchDelay bounds how long the leader waits to fill a batch.
	BatchDelay time.Duration
	Registry   *cryptoutil.Registry
	// SignerOf maps (shard, replica) to registry index.
	SignerOf func(shard, replica int32) int32
	Net      transport.Network
	// Executor runs committed blocks on each replica.
	Executor smr.Executor
}

// N returns the group size.
func (c Config) N() int { return 3*c.F + 1 }

// Quorum returns 2f+1.
func (c Config) Quorum() int { return 2*c.F + 1 }

// message kinds
type prePrepare struct {
	View  uint64
	Block *smr.Block
	Sig   []byte
}

type prepare struct {
	View    uint64
	Seq     uint64
	Digest  [32]byte
	Replica int32
	Sig     []byte
}

type commit struct {
	View    uint64
	Seq     uint64
	Digest  [32]byte
	Replica int32
	Sig     []byte
}

type submitMsg struct {
	Cmd smr.Command
}

func prepPayload(kind byte, view, seq uint64, digest [32]byte, replica int32) []byte {
	b := make([]byte, 0, 64)
	b = append(b, "pbft/"...)
	b = append(b, kind)
	b = append(b, byte(view), byte(view>>8), byte(view>>16), byte(view>>24))
	b = append(b, byte(seq), byte(seq>>8), byte(seq>>16), byte(seq>>24),
		byte(seq>>32), byte(seq>>40), byte(seq>>48), byte(seq>>56))
	b = append(b, digest[:]...)
	b = append(b, byte(replica), byte(replica>>8), byte(replica>>16), byte(replica>>24))
	return b
}

// slot tracks one sequence number's agreement progress at a replica.
type slot struct {
	block     *smr.Block
	digest    [32]byte
	prepares  map[int32]bool
	commits   map[int32]bool
	prepared  bool
	committed bool
	executed  bool
}

// Replica is one PBFT replica.
type Replica struct {
	cfg    Config
	index  int32
	addr   transport.Addr
	signer cryptoutil.Signer

	// mu guards all protocol state below; signing and broadcasting happen
	// after release (basilvet BV001).
	mu      sync.Mutex
	view    uint64
	nextSeq uint64 // leader: next sequence to assign
	execSeq uint64 // next sequence to execute
	slots   map[uint64]*slot
	queue   []smr.Command
	timer   *time.Timer
	closed  bool
}

// NewReplica constructs and registers replica index of the group.
func NewReplica(cfg Config, index int32) *Replica {
	if cfg.BatchMax < 1 {
		cfg.BatchMax = 16
	}
	if cfg.BatchDelay <= 0 {
		cfg.BatchDelay = time.Millisecond
	}
	r := &Replica{
		cfg:    cfg,
		index:  index,
		addr:   transport.ReplicaAddr(cfg.Shard, index),
		signer: cfg.Registry.Signer(cfg.SignerOf(cfg.Shard, index)),
		slots:  make(map[uint64]*slot),
	}
	cfg.Net.Register(r.addr, r)
	return r
}

// Addr returns the replica's transport address.
func (r *Replica) Addr() transport.Addr { return r.addr }

// Close stops batch timers.
func (r *Replica) Close() {
	r.mu.Lock()
	r.closed = true
	if r.timer != nil {
		r.timer.Stop()
	}
	r.mu.Unlock()
}

func (r *Replica) leaderOf(view uint64) int32 { return int32(view % uint64(r.cfg.N())) }

func (r *Replica) isLeader() bool {
	return r.leaderOf(r.view) == r.index
}

func (r *Replica) broadcast(msg any) {
	r.cfg.Net.SendAll(r.addr, transport.ShardAddrs(r.cfg.Shard, r.cfg.N()), msg)
}

// Deliver implements transport.Handler.
func (r *Replica) Deliver(from transport.Addr, msg any) {
	switch m := msg.(type) {
	case *submitMsg:
		r.onSubmit(m.Cmd)
	case *prePrepare:
		r.onPrePrepare(m)
	case *prepare:
		r.onPrepare(m)
	case *commit:
		r.onCommit(m)
	}
}

// onSubmit queues a command at the leader; non-leaders forward.
func (r *Replica) onSubmit(cmd smr.Command) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if !r.isLeader() {
		leader := r.leaderOf(r.view)
		r.mu.Unlock()
		r.cfg.Net.Send(r.addr, transport.ReplicaAddr(r.cfg.Shard, leader), &submitMsg{Cmd: cmd})
		return
	}
	r.queue = append(r.queue, cmd)
	if len(r.queue) >= r.cfg.BatchMax {
		blk, view := r.takeBatchLocked()
		r.mu.Unlock()
		r.propose(blk, view)
		return
	}
	if r.timer == nil {
		r.timer = time.AfterFunc(r.cfg.BatchDelay, func() {
			r.mu.Lock()
			var blk *smr.Block
			var view uint64
			if !r.closed && len(r.queue) > 0 {
				blk, view = r.takeBatchLocked()
			}
			r.timer = nil
			r.mu.Unlock()
			if blk != nil {
				r.propose(blk, view)
			}
		})
	}
	r.mu.Unlock()
}

// takeBatchLocked assigns the queued batch a sequence number and clears
// the batch timer. Caller holds r.mu; the caller signs and pre-prepares
// the returned block after releasing it (signing must not run under the
// replica mutex).
func (r *Replica) takeBatchLocked() (*smr.Block, uint64) {
	blk := &smr.Block{Seq: r.nextSeq, Cmds: r.queue}
	r.nextSeq++
	r.queue = nil
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
	return blk, r.view
}

// propose signs and broadcasts the pre-prepare for a taken batch, outside
// the lock.
func (r *Replica) propose(blk *smr.Block, view uint64) {
	d := blk.Digest()
	pp := &prePrepare{
		View:  view,
		Block: blk,
		Sig:   r.signer.Sign(prepPayload('p', view, blk.Seq, d, r.index)),
	}
	r.broadcast(pp)
}

func (r *Replica) slotFor(seq uint64) *slot {
	s := r.slots[seq]
	if s == nil {
		s = &slot{prepares: make(map[int32]bool), commits: make(map[int32]bool)}
		r.slots[seq] = s
	}
	return s
}

func (r *Replica) onPrePrepare(m *prePrepare) {
	r.mu.Lock()
	if m.View != r.view {
		r.mu.Unlock()
		return
	}
	leader := r.leaderOf(m.View)
	r.mu.Unlock()
	d := m.Block.Digest()
	if !r.cfg.Registry.Verify(r.cfg.SignerOf(r.cfg.Shard, leader),
		prepPayload('p', m.View, m.Block.Seq, d, leader), m.Sig) {
		return
	}
	r.mu.Lock()
	s := r.slotFor(m.Block.Seq)
	if s.block != nil {
		r.mu.Unlock()
		return
	}
	s.block = m.Block
	s.digest = d
	r.mu.Unlock()

	p := &prepare{
		View: m.View, Seq: m.Block.Seq, Digest: d, Replica: r.index,
		Sig: r.signer.Sign(prepPayload('P', m.View, m.Block.Seq, d, r.index)),
	}
	r.broadcast(p)
	r.checkProgress(m.Block.Seq)
}

func (r *Replica) onPrepare(m *prepare) {
	if !r.cfg.Registry.Verify(r.cfg.SignerOf(r.cfg.Shard, m.Replica),
		prepPayload('P', m.View, m.Seq, m.Digest, m.Replica), m.Sig) {
		return
	}
	r.mu.Lock()
	s := r.slotFor(m.Seq)
	s.prepares[m.Replica] = true
	r.mu.Unlock()
	r.checkProgress(m.Seq)
}

func (r *Replica) onCommit(m *commit) {
	if !r.cfg.Registry.Verify(r.cfg.SignerOf(r.cfg.Shard, m.Replica),
		prepPayload('C', m.View, m.Seq, m.Digest, m.Replica), m.Sig) {
		return
	}
	r.mu.Lock()
	s := r.slotFor(m.Seq)
	s.commits[m.Replica] = true
	r.mu.Unlock()
	r.checkProgress(m.Seq)
}

// checkProgress advances the slot through prepared → committed → executed.
func (r *Replica) checkProgress(seq uint64) {
	r.mu.Lock()
	s := r.slotFor(seq)
	if s.block == nil {
		r.mu.Unlock()
		return
	}
	// Decide state transitions under the lock; sign and send after
	// releasing it.
	var c *commit
	if !s.prepared && len(s.prepares) >= r.cfg.Quorum() {
		s.prepared = true
		c = &commit{View: r.view, Seq: seq, Digest: s.digest, Replica: r.index}
	}
	if !s.committed && len(s.commits) >= r.cfg.Quorum() {
		s.committed = true
	}
	// Execute in sequence order.
	var toExec []*smr.Block
	for {
		s2 := r.slots[r.execSeq]
		if s2 == nil || !s2.committed || s2.executed || s2.block == nil {
			break
		}
		s2.executed = true
		toExec = append(toExec, s2.block)
		r.execSeq++
	}
	r.mu.Unlock()
	if c != nil {
		c.Sig = r.signer.Sign(prepPayload('C', c.View, c.Seq, c.Digest, c.Replica))
		r.broadcast(c)
	}
	for _, blk := range toExec {
		r.cfg.Executor.Execute(r.index, blk)
	}
}

// Group is a whole PBFT shard plus its client-side submission handle.
type Group struct {
	cfg      Config
	replicas []*Replica
}

// NewGroup starts n replicas for cfg.
func NewGroup(cfg Config) *Group {
	g := &Group{cfg: cfg}
	for i := 0; i < cfg.N(); i++ {
		g.replicas = append(g.replicas, NewReplica(cfg, int32(i)))
	}
	return g
}

// Submit hands a command to the group's leader from a client address.
func (g *Group) Submit(from transport.Addr, cmd smr.Command) {
	// Send to replica 0, the stable leader in view 0.
	g.cfg.Net.Send(from, g.replicas[0].addr, &submitMsg{Cmd: cmd})
}

// Replicas exposes the group members.
func (g *Group) Replicas() []*Replica { return g.replicas }

// Close stops the group.
func (g *Group) Close() {
	for _, r := range g.replicas {
		r.Close()
	}
}
