package pbft

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/smr"
	"repro/internal/transport"
)

// recorder captures execution order per replica.
type recorder struct {
	mu   sync.Mutex
	seqs map[int32][]uint64
	cmds map[int32][]string
	ch   chan struct{}
}

func newRecorder() *recorder {
	return &recorder{
		seqs: make(map[int32][]uint64),
		cmds: make(map[int32][]string),
		ch:   make(chan struct{}, 4096),
	}
}

func (r *recorder) Execute(idx int32, blk *smr.Block) {
	r.mu.Lock()
	r.seqs[idx] = append(r.seqs[idx], blk.Seq)
	for _, c := range blk.Cmds {
		r.cmds[idx] = append(r.cmds[idx], string(c.Payload))
	}
	r.mu.Unlock()
	r.ch <- struct{}{}
}

func newGroup(t *testing.T, batch int, rec *recorder) (*Group, *transport.Local) {
	t.Helper()
	net := transport.NewLocal()
	cfg := Config{
		Shard: 0, F: 1, BatchMax: batch, BatchDelay: time.Millisecond,
		Registry: cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, 4, 1),
		SignerOf: func(shard, replica int32) int32 { return replica },
		Net:      net, Executor: rec,
	}
	return NewGroup(cfg), net
}

func TestPBFTOrdersAndExecutesEverywhere(t *testing.T) {
	rec := newRecorder()
	g, net := newGroup(t, 2, rec)
	defer net.Close()
	defer g.Close()

	client := transport.ClientAddr(1)
	net.Register(client, transport.HandlerFunc(func(transport.Addr, any) {}))
	const cmds = 6
	for i := 0; i < cmds; i++ {
		g.Submit(client, smr.Command{ClientID: 1, ReqID: uint64(i), Payload: []byte{byte('a' + i)}})
	}
	// Wait for all four replicas to execute all commands.
	deadline := time.After(5 * time.Second)
	for {
		rec.mu.Lock()
		done := 0
		for _, cs := range rec.cmds {
			if len(cs) == cmds {
				done++
			}
		}
		rec.mu.Unlock()
		if done == 4 {
			break
		}
		select {
		case <-rec.ch:
		case <-deadline:
			t.Fatalf("replicas never executed all commands: %v", rec.cmds)
		}
	}
	// All replicas must agree on the exact execution order.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	ref := rec.cmds[0]
	for idx, cs := range rec.cmds {
		for i := range ref {
			if cs[i] != ref[i] {
				t.Fatalf("replica %d diverged at %d: %v vs %v", idx, i, cs, ref)
			}
		}
	}
	// Sequence numbers must be strictly increasing per replica.
	for idx, seqs := range rec.seqs {
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("replica %d executed out of order: %v", idx, seqs)
			}
		}
	}
}

func TestPBFTBatchTimerFlushesPartialBatch(t *testing.T) {
	rec := newRecorder()
	g, net := newGroup(t, 100, rec) // batch never fills; timer must fire
	defer net.Close()
	defer g.Close()
	client := transport.ClientAddr(1)
	net.Register(client, transport.HandlerFunc(func(transport.Addr, any) {}))
	g.Submit(client, smr.Command{ClientID: 1, ReqID: 1, Payload: []byte("solo")})
	deadline := time.After(5 * time.Second)
	for {
		rec.mu.Lock()
		n := len(rec.cmds[0])
		rec.mu.Unlock()
		if n == 1 {
			return
		}
		select {
		case <-rec.ch:
		case <-deadline:
			t.Fatal("partial batch never flushed")
		}
	}
}
