package hotstuff

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/smr"
	"repro/internal/transport"
)

type recorder struct {
	mu   sync.Mutex
	cmds map[int32][]string
	ch   chan struct{}
}

func newRecorder() *recorder {
	return &recorder{cmds: make(map[int32][]string), ch: make(chan struct{}, 4096)}
}

func (r *recorder) Execute(idx int32, blk *smr.Block) {
	r.mu.Lock()
	for _, c := range blk.Cmds {
		r.cmds[idx] = append(r.cmds[idx], string(c.Payload))
	}
	r.mu.Unlock()
	r.ch <- struct{}{}
}

func TestHotStuffThreeChainCommit(t *testing.T) {
	rec := newRecorder()
	net := transport.NewLocal()
	defer net.Close()
	g := NewGroup(Config{
		Shard: 0, F: 1, BatchMax: 2, BatchDelay: time.Millisecond,
		Registry: cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, 4, 1),
		SignerOf: func(shard, replica int32) int32 { return replica },
		Net:      net, Executor: rec,
	})
	defer g.Close()

	client := transport.ClientAddr(1)
	net.Register(client, transport.HandlerFunc(func(transport.Addr, any) {}))
	const cmds = 5
	for i := 0; i < cmds; i++ {
		g.Submit(client, smr.Command{ClientID: 1, ReqID: uint64(i), Payload: []byte{byte('a' + i)}})
	}
	deadline := time.After(10 * time.Second)
	for {
		rec.mu.Lock()
		full := 0
		for _, cs := range rec.cmds {
			if len(cs) >= cmds {
				full++
			}
		}
		rec.mu.Unlock()
		if full == 4 {
			break
		}
		select {
		case <-rec.ch:
		case <-deadline:
			rec.mu.Lock()
			defer rec.mu.Unlock()
			t.Fatalf("three-chain never committed everything: %v", rec.cmds)
		}
	}
	// Agreement: all replicas execute the same commands in the same order
	// (duplicates permitted across blocks are deduplicated upstream; the
	// chain itself must deliver identical sequences).
	rec.mu.Lock()
	defer rec.mu.Unlock()
	ref := rec.cmds[0]
	for idx, cs := range rec.cmds {
		if len(cs) < len(ref) {
			t.Fatalf("replica %d short: %v vs %v", idx, cs, ref)
		}
		for i := range ref {
			if cs[i] != ref[i] {
				t.Fatalf("replica %d diverged: %v vs %v", idx, cs, ref)
			}
		}
	}
}

func TestHotStuffIdleAfterCommit(t *testing.T) {
	// The pacemaker must stop proposing empty blocks once all non-empty
	// blocks have committed (no infinite churn on an idle group).
	rec := newRecorder()
	net := transport.NewLocal()
	defer net.Close()
	g := NewGroup(Config{
		Shard: 0, F: 1, BatchMax: 1, BatchDelay: time.Millisecond,
		Registry: cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, 4, 1),
		SignerOf: func(shard, replica int32) int32 { return replica },
		Net:      net, Executor: rec,
	})
	defer g.Close()
	client := transport.ClientAddr(1)
	net.Register(client, transport.HandlerFunc(func(transport.Addr, any) {}))
	g.Submit(client, smr.Command{ClientID: 1, ReqID: 1, Payload: []byte("one")})

	deadline := time.After(10 * time.Second)
	for {
		rec.mu.Lock()
		n := len(rec.cmds[0])
		rec.mu.Unlock()
		if n >= 1 {
			break
		}
		select {
		case <-rec.ch:
		case <-deadline:
			t.Fatal("single command never committed")
		}
	}
	// Heights must stop advancing shortly after the commit.
	time.Sleep(20 * time.Millisecond)
	h1 := g.Replicas()[0].heightSnapshot()
	time.Sleep(50 * time.Millisecond)
	h2 := g.Replicas()[0].heightSnapshot()
	if h2 > h1+1 {
		t.Fatalf("chain still churning while idle: %d -> %d", h1, h2)
	}
}
