// Package hotstuff implements a chained-HotStuff ordered log (Yin et al.,
// PODC '19) as the TxHotstuff baseline substrate (paper §6).
//
// The protocol is the pipelined three-phase variant: each height's leader
// proposes a block extending the highest known quorum certificate (QC);
// replicas vote to the next leader; collecting n-f votes forms the next
// QC. A block commits once it heads a three-chain (its QC has a child QC
// that has a child QC), giving the ~nine message delays from submission to
// client-visible reply that the paper measures for TxHotstuff.
//
// Leaders rotate round-robin per height. The pacemaker is the happy-path
// one (propose on QC formation, plus a low idle timer to keep the chain
// advancing when new commands arrive); view synchronization under leader
// failure is out of scope, matching the paper's gracious-execution
// baseline runs.
package hotstuff

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/smr"
	"repro/internal/transport"
)

// Config parameterizes one HotStuff group (one shard).
type Config struct {
	Shard      int32
	F          int // n = 3f+1
	BatchMax   int
	BatchDelay time.Duration
	Registry   *cryptoutil.Registry
	SignerOf   func(shard, replica int32) int32
	Net        transport.Network
	Executor   smr.Executor
}

// N returns the group size.
func (c Config) N() int { return 3*c.F + 1 }

// Quorum returns 2f+1.
func (c Config) Quorum() int { return 2*c.F + 1 }

// node is one chained block.
type node struct {
	Height  uint64
	Parent  [32]byte
	Cmds    []smr.Command
	Justify *qc // QC for the parent
}

func (n *node) digest() [32]byte {
	b := make([]byte, 0, 128)
	b = append(b, "hs/node/"...)
	b = binary.BigEndian.AppendUint64(b, n.Height)
	b = append(b, n.Parent[:]...)
	for i := range n.Cmds {
		b = n.Cmds[i].AppendCanonical(b)
	}
	if n.Justify != nil {
		b = append(b, n.Justify.Block[:]...)
	}
	return sha256.Sum256(b)
}

// qc is a quorum certificate: n-f signatures over a block digest.
type qc struct {
	Height uint64
	Block  [32]byte
	Voters []int32
	Sigs   [][]byte
}

func votePayload(height uint64, block [32]byte, replica int32) []byte {
	b := make([]byte, 0, 64)
	b = append(b, "hs/vote/"...)
	b = binary.BigEndian.AppendUint64(b, height)
	b = append(b, block[:]...)
	b = binary.BigEndian.AppendUint32(b, uint32(replica))
	return b
}

type proposal struct {
	Node     *node
	Proposer int32
	Sig      []byte
}

type vote struct {
	Height  uint64
	Block   [32]byte
	Replica int32
	Sig     []byte
}

type submitMsg struct{ Cmd smr.Command }

// Replica is one HotStuff replica.
type Replica struct {
	cfg    Config
	index  int32
	addr   transport.Addr
	signer cryptoutil.Signer

	// mu guards all chain state below; signing and broadcasting happen
	// after release (basilvet BV001).
	mu       sync.Mutex
	nodes    map[[32]byte]*node
	highQC   *qc
	height   uint64 // last proposed/observed height
	lastVote uint64
	votes    map[[32]byte]map[int32][]byte
	execHt   uint64
	maxCmdHt uint64 // highest height of a known non-empty block
	execQ    []*smr.Block
	// pool holds commands awaiting inclusion, keyed by digest; commands
	// are broadcast to every replica so whichever replica leads the next
	// height can include them (duplicates are deduplicated at execution).
	pool    map[[32]byte]smr.Command
	poolOrd [][32]byte
	timer   *time.Timer
	closed  bool
}

var genesisDigest = sha256.Sum256([]byte("hs/genesis"))

// NewReplica constructs and registers one replica.
func NewReplica(cfg Config, index int32) *Replica {
	if cfg.BatchMax < 1 {
		cfg.BatchMax = 4
	}
	if cfg.BatchDelay <= 0 {
		cfg.BatchDelay = time.Millisecond
	}
	r := &Replica{
		cfg:    cfg,
		index:  index,
		addr:   transport.ReplicaAddr(cfg.Shard, index),
		signer: cfg.Registry.Signer(cfg.SignerOf(cfg.Shard, index)),
		nodes:  make(map[[32]byte]*node),
		votes:  make(map[[32]byte]map[int32][]byte),
		pool:   make(map[[32]byte]smr.Command),
	}
	g := &node{Height: 0}
	r.nodes[genesisDigest] = g
	r.highQC = &qc{Height: 0, Block: genesisDigest}
	cfg.Net.Register(r.addr, r)
	return r
}

// Addr returns the transport address.
func (r *Replica) Addr() transport.Addr { return r.addr }

// Close stops timers.
func (r *Replica) Close() {
	r.mu.Lock()
	r.closed = true
	if r.timer != nil {
		r.timer.Stop()
	}
	r.mu.Unlock()
}

func (r *Replica) leaderOf(height uint64) int32 { return int32(height % uint64(r.cfg.N())) }

func (r *Replica) broadcast(msg any) {
	r.cfg.Net.SendAll(r.addr, transport.ShardAddrs(r.cfg.Shard, r.cfg.N()), msg)
}

// Deliver implements transport.Handler.
func (r *Replica) Deliver(from transport.Addr, msg any) {
	switch m := msg.(type) {
	case *submitMsg:
		r.onSubmit(m.Cmd)
	case *proposal:
		r.onProposal(m)
	case *vote:
		r.onVote(m)
	}
}

// onSubmit pools a command; whichever replica leads the next height
// includes pooled commands in its proposal when a batch fills or the
// delay elapses.
func (r *Replica) onSubmit(cmd smr.Command) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	d := cmdDigest(&cmd)
	if _, dup := r.pool[d]; !dup {
		r.pool[d] = cmd
		r.poolOrd = append(r.poolOrd, d)
	}
	if len(r.pool) >= r.cfg.BatchMax {
		pn := r.tryProposeLocked()
		r.mu.Unlock()
		r.propose(pn)
		return
	}
	if r.timer == nil {
		r.timer = time.AfterFunc(r.cfg.BatchDelay, func() {
			r.mu.Lock()
			var pn *node
			if !r.closed {
				pn = r.tryProposeLocked()
			}
			r.timer = nil
			r.mu.Unlock()
			r.propose(pn)
		})
	}
	r.mu.Unlock()
}

func cmdDigest(c *smr.Command) [32]byte {
	return sha256.Sum256(c.AppendCanonical(nil))
}

// tryProposeLocked builds a block for height highQC.Height+1 if this
// replica leads it, returning it for the caller to sign and broadcast
// after releasing r.mu (signing must not run under the replica mutex).
// Empty blocks are proposed only while non-empty blocks still await their
// three-chain commit — they keep the chain moving without spinning
// forever on an idle group. Caller holds r.mu.
func (r *Replica) tryProposeLocked() *node {
	next := r.highQC.Height + 1
	if r.leaderOf(next) != r.index || next <= r.height {
		return nil
	}
	if len(r.pool) == 0 && r.execHt >= r.maxCmdHt {
		return nil // nothing pending; stay idle
	}
	r.height = next
	var cmds []smr.Command
	var rest [][32]byte
	for i, d := range r.poolOrd {
		if _, ok := r.pool[d]; !ok {
			continue
		}
		if len(cmds) >= r.cfg.BatchMax {
			rest = append(rest, r.poolOrd[i:]...)
			break
		}
		cmds = append(cmds, r.pool[d])
		delete(r.pool, d)
	}
	r.poolOrd = rest
	n := &node{
		Height:  next,
		Parent:  r.highQC.Block,
		Cmds:    cmds,
		Justify: r.highQC,
	}
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
	return n
}

// propose signs and broadcasts a built block, outside the lock. nil
// (nothing to propose) is a no-op so callers can thread the
// tryProposeLocked result through unconditionally.
func (r *Replica) propose(n *node) {
	if n == nil {
		return
	}
	d := n.digest()
	p := &proposal{
		Node:     n,
		Proposer: r.index,
		Sig:      r.signer.Sign(votePayload(n.Height, d, r.index)),
	}
	r.broadcast(p)
}

// verifyQC checks an n-f vote certificate.
func (r *Replica) verifyQC(c *qc) bool {
	if c.Block == genesisDigest && c.Height == 0 {
		return true
	}
	if len(c.Voters) < r.cfg.Quorum() || len(c.Voters) != len(c.Sigs) {
		return false
	}
	seen := make(map[int32]bool)
	for i, v := range c.Voters {
		if seen[v] {
			return false
		}
		seen[v] = true
		if !r.cfg.Registry.Verify(r.cfg.SignerOf(r.cfg.Shard, v),
			votePayload(c.Height, c.Block, v), c.Sigs[i]) {
			return false
		}
	}
	return true
}

func (r *Replica) onProposal(m *proposal) {
	n := m.Node
	if n == nil || n.Justify == nil {
		return
	}
	d := n.digest()
	if r.leaderOf(n.Height) != m.Proposer {
		return
	}
	if !r.cfg.Registry.Verify(r.cfg.SignerOf(r.cfg.Shard, m.Proposer),
		votePayload(n.Height, d, m.Proposer), m.Sig) {
		return
	}
	if !r.verifyQC(n.Justify) || n.Justify.Block != n.Parent {
		return
	}
	r.mu.Lock()
	if _, dup := r.nodes[d]; dup {
		r.mu.Unlock()
		return
	}
	r.nodes[d] = n
	if len(n.Cmds) > 0 && n.Height > r.maxCmdHt {
		r.maxCmdHt = n.Height
	}
	if n.Justify.Height > r.highQC.Height {
		r.highQC = n.Justify
	}
	// Drop pooled commands this block includes; they are in flight.
	for i := range n.Cmds {
		delete(r.pool, cmdDigest(&n.Cmds[i]))
	}
	// A replica that leads the next height proposes immediately when work
	// is pending (pipelining).
	pn := r.tryProposeLocked()
	// Safety rule (simplified for the gracious-execution scope): vote at
	// most once per height, only for monotonically increasing heights.
	if n.Height <= r.lastVote {
		r.commitChainLocked(d)
		q := r.takeExecLocked()
		r.mu.Unlock()
		r.propose(pn)
		r.runExec(q)
		return
	}
	r.lastVote = n.Height
	r.commitChainLocked(d)
	q := r.takeExecLocked()
	r.mu.Unlock()
	r.propose(pn)
	r.runExec(q)

	v := &vote{
		Height: n.Height, Block: d, Replica: r.index,
		Sig: r.signer.Sign(votePayload(n.Height, d, r.index)),
	}
	nextLeader := r.leaderOf(n.Height + 1)
	r.cfg.Net.Send(r.addr, transport.ReplicaAddr(r.cfg.Shard, nextLeader), v)
}

// onVote gathers votes as the leader of height+1 and forms the next QC.
func (r *Replica) onVote(m *vote) {
	if r.leaderOf(m.Height+1) != r.index {
		return
	}
	if !r.cfg.Registry.Verify(r.cfg.SignerOf(r.cfg.Shard, m.Replica),
		votePayload(m.Height, m.Block, m.Replica), m.Sig) {
		return
	}
	r.mu.Lock()
	byReplica := r.votes[m.Block]
	if byReplica == nil {
		byReplica = make(map[int32][]byte)
		r.votes[m.Block] = byReplica
	}
	byReplica[m.Replica] = m.Sig
	if len(byReplica) < r.cfg.Quorum() {
		r.mu.Unlock()
		return
	}
	if r.highQC.Height >= m.Height {
		r.mu.Unlock()
		return // already have a QC at this height
	}
	newQC := &qc{Height: m.Height, Block: m.Block}
	for rep, sig := range byReplica {
		newQC.Voters = append(newQC.Voters, rep)
		newQC.Sigs = append(newQC.Sigs, sig)
	}
	r.highQC = newQC
	// Pipeline: immediately propose the next block (possibly empty) so
	// ancestors advance toward their three-chain commit.
	pn := r.tryProposeLocked()
	r.mu.Unlock()
	r.propose(pn)
}

// commitChainLocked applies the three-chain commit rule: when node b has a
// grandchild chain b ← b' ← b” connected by QCs, b and its ancestors
// commit. With our monotone heights it suffices to commit the
// great-grandparent of each newly inserted node. Caller holds r.mu.
func (r *Replica) commitChainLocked(d [32]byte) {
	n := r.nodes[d]
	if n == nil || n.Justify == nil {
		return
	}
	p := r.nodes[n.Justify.Block] // parent (has QC)
	if p == nil || p.Justify == nil {
		return
	}
	gp := r.nodes[p.Justify.Block] // grandparent (has QC)
	if gp == nil {
		return
	}
	// Three-chain formed through gp: commit gp and all its uncommitted
	// ancestors in height order.
	var chain []*node
	cur := gp
	for cur != nil && cur.Height > r.execHt {
		chain = append(chain, cur)
		cur = r.nodes[cur.Parent]
	}
	for i := len(chain) - 1; i >= 0; i-- {
		b := chain[i]
		if b.Height != r.execHt+1 && !(r.execHt == 0 && b.Height == 1) {
			// Height gap (missed block): stop; it will commit later.
			if b.Height <= r.execHt {
				continue
			}
		}
		r.execHt = b.Height
		if len(b.Cmds) > 0 {
			r.execQ = append(r.execQ, &smr.Block{Seq: b.Height, Cmds: b.Cmds})
		}
	}
}

// takeExecLocked drains the pending execution queue. Caller holds r.mu.
func (r *Replica) takeExecLocked() []*smr.Block {
	q := r.execQ
	r.execQ = nil
	return q
}

// runExec executes committed blocks in order, outside the lock.
func (r *Replica) runExec(q []*smr.Block) {
	for _, blk := range q {
		r.cfg.Executor.Execute(r.index, blk)
	}
}

// Group is a whole HotStuff shard.
type Group struct {
	cfg      Config
	replicas []*Replica
}

// NewGroup starts n replicas.
func NewGroup(cfg Config) *Group {
	g := &Group{cfg: cfg}
	for i := 0; i < cfg.N(); i++ {
		g.replicas = append(g.replicas, NewReplica(cfg, int32(i)))
	}
	return g
}

// Submit broadcasts a command to every replica's pool; the next leaders
// include it (execution deduplicates double inclusion).
func (g *Group) Submit(from transport.Addr, cmd smr.Command) {
	tos := make([]transport.Addr, len(g.replicas))
	for i, r := range g.replicas {
		tos[i] = r.addr
	}
	g.cfg.Net.SendAll(from, tos, &submitMsg{Cmd: cmd})
}

// Replicas exposes group members.
func (g *Group) Replicas() []*Replica { return g.replicas }

// Close stops the group.
func (g *Group) Close() {
	for _, r := range g.replicas {
		r.Close()
	}
}

// heightSnapshot reports the highest QC height this replica has observed
// (test instrumentation).
func (r *Replica) heightSnapshot() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.highQC.Height
}
