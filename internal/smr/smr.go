// Package smr defines the ordered-log abstraction shared by the two BFT
// baselines (paper §6): a PBFT-style log (the BFT-SMaRt stand-in) and a
// chained-HotStuff log. The transaction layer (internal/txbase) executes
// committed commands on every replica and replies to clients.
//
// Both baselines run n = 3f+1 replicas per shard and, per the paper's
// setup, are evaluated in gracious executions (stable leader, no replica
// crashes); view-change machinery is therefore intentionally minimal.
package smr

import (
	"crypto/sha256"
	"encoding/binary"
)

// Command is one opaque client request to be totally ordered.
type Command struct {
	ClientID uint64
	ReqID    uint64
	Payload  []byte
}

// AppendCanonical appends the command's deterministic encoding.
func (c *Command) AppendCanonical(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, c.ClientID)
	b = binary.BigEndian.AppendUint64(b, c.ReqID)
	b = binary.BigEndian.AppendUint32(b, uint32(len(c.Payload)))
	return append(b, c.Payload...)
}

// Block is a batch of commands occupying one log slot.
type Block struct {
	Seq  uint64
	Cmds []Command
}

// Digest hashes a block deterministically.
func (b *Block) Digest() [32]byte {
	buf := make([]byte, 0, 64)
	buf = binary.BigEndian.AppendUint64(buf, b.Seq)
	for i := range b.Cmds {
		buf = b.Cmds[i].AppendCanonical(buf)
	}
	return sha256.Sum256(buf)
}

// Executor consumes committed blocks in sequence order on one replica.
// Deliver runs on the replica's dispatch goroutine.
type Executor interface {
	Execute(replicaIndex int32, blk *Block)
}

// Log is a replicated ordered log viewed from one client-side submission
// point. Submit hands a command to the current leader (or all replicas,
// implementation-specific); ordering and execution happen asynchronously.
type Log interface {
	Submit(cmd Command)
	Close()
}
