package smr

import (
	"bytes"
	"testing"
)

func TestCommandCanonicalDeterministic(t *testing.T) {
	c := Command{ClientID: 7, ReqID: 9, Payload: []byte("abc")}
	if !bytes.Equal(c.AppendCanonical(nil), c.AppendCanonical(nil)) {
		t.Fatal("command encoding nondeterministic")
	}
	d := Command{ClientID: 7, ReqID: 9, Payload: []byte("abd")}
	if bytes.Equal(c.AppendCanonical(nil), d.AppendCanonical(nil)) {
		t.Fatal("different payloads encode identically")
	}
}

func TestBlockDigestBindsContents(t *testing.T) {
	b1 := &Block{Seq: 1, Cmds: []Command{{ClientID: 1, ReqID: 1, Payload: []byte("x")}}}
	b2 := &Block{Seq: 1, Cmds: []Command{{ClientID: 1, ReqID: 1, Payload: []byte("y")}}}
	b3 := &Block{Seq: 2, Cmds: b1.Cmds}
	if b1.Digest() == b2.Digest() || b1.Digest() == b3.Digest() {
		t.Fatal("block digest does not bind contents")
	}
	if b1.Digest() != b1.Digest() {
		t.Fatal("digest nondeterministic")
	}
}
