// Package tapir implements a TAPIR-like non-Byzantine baseline (Zhang et
// al., SOSP '15; paper §6): a distributed transactional store that merges
// two-phase commit with inconsistent replication. It uses 2f+1 replicas
// per shard (crash faults only), no signatures, a single-replica read
// path, and a single-round-trip fast path when all replicas of every
// shard agree on the prepare verdict.
//
// Substitution note (docs/benchmarking.md): this is a behavioral stand-in for the
// original C++ TAPIR, preserving the properties the paper's comparison
// rests on — no cryptography, small quorums, 1-RTT commits — rather than
// the exact IR view-change machinery.
package tapir

import (
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/types"
)

// Errors mirroring the Basil client's.
var (
	ErrAborted = errors.New("tapir: transaction aborted")
	ErrTimeout = errors.New("tapir: timeout")
)

// --- messages ---

type readReq struct {
	ReqID uint64
	Key   string
	Ts    types.Timestamp
}

type readResp struct {
	ReqID   uint64
	Key     string
	Value   []byte
	Version types.Timestamp
	Replica int32
}

type prepareReq struct {
	ReqID uint64
	Meta  *types.TxMeta
}

type prepareResp struct {
	ReqID   uint64
	TxID    types.TxID
	Vote    types.Vote
	Replica int32
}

type decideReq struct {
	TxID     types.TxID
	Meta     *types.TxMeta
	Decision types.Decision
}

// --- replica ---

// Replica is one TAPIR-style replica; it reuses the MVTSO store for
// multiversioned state but ignores certificates (trusted, crash-only
// replicas).
type Replica struct {
	shard int32
	index int32
	addr  transport.Addr
	net   transport.Network
	clk   clock.Clock
	st    *store.Store
}

// NewReplica constructs and registers one replica.
func NewReplica(shard, index int32, net transport.Network, clk clock.Clock) *Replica {
	r := &Replica{
		shard: shard, index: index,
		addr: transport.ReplicaAddr(shard, index),
		net:  net, clk: clk,
		st: store.New(),
	}
	net.Register(r.addr, r)
	return r
}

// Load installs a genesis value.
func (r *Replica) Load(key string, val []byte) { r.st.ApplyGenesis(key, val) }

// Deliver implements transport.Handler.
func (r *Replica) Deliver(from transport.Addr, msg any) {
	switch m := msg.(type) {
	case *readReq:
		res := r.st.Read(m.Key, m.Ts)
		resp := &readResp{ReqID: m.ReqID, Key: m.Key, Replica: r.index}
		if res.Committed != nil {
			resp.Value = res.Committed.Value
			resp.Version = res.Committed.Version()
		}
		r.net.Send(r.addr, from, resp)
	case *prepareReq:
		id := m.Meta.ID()
		vote := types.VoteCommit
		switch r.st.CheckAndPrepare(m.Meta, id).Outcome {
		case store.CheckAbort, store.CheckMisbehavior:
			vote = types.VoteAbort
		case store.CheckDuplicate:
			switch r.st.TxStatusOf(id) {
			case store.StatusAborted:
				vote = types.VoteAbort
			default:
				vote = types.VoteCommit
			}
		}
		r.net.Send(r.addr, from, &prepareResp{ReqID: m.ReqID, TxID: id, Vote: vote, Replica: r.index})
	case *decideReq:
		r.st.Finalize(m.TxID, m.Meta, m.Decision, nil)
	}
}

// --- cluster ---

// Config parameterizes a TAPIR deployment.
type Config struct {
	F       int // crash threshold; n = 2f+1
	Shards  int
	ShardOf func(key string) int32
	Timeout time.Duration
	Clock   clock.Clock
}

// Cluster is a running TAPIR deployment.
type Cluster struct {
	cfg      Config
	net      *transport.Local
	replicas [][]*Replica
	nextCli  int32
}

// NewCluster builds and starts the cluster.
func NewCluster(cfg Config) *Cluster {
	if cfg.F <= 0 {
		cfg.F = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.ShardOf == nil {
		shards := int32(cfg.Shards)
		cfg.ShardOf = func(key string) int32 {
			h := fnv.New32a()
			h.Write([]byte(key))
			return int32(h.Sum32() % uint32(shards))
		}
	}
	c := &Cluster{cfg: cfg, net: transport.NewLocal(), replicas: make([][]*Replica, cfg.Shards)}
	n := 2*cfg.F + 1
	for s := 0; s < cfg.Shards; s++ {
		c.replicas[s] = make([]*Replica, n)
		for i := 0; i < n; i++ {
			c.replicas[s][i] = NewReplica(int32(s), int32(i), c.net, cfg.Clock)
		}
	}
	return c
}

// Load installs a key's genesis value on its shard.
func (c *Cluster) Load(key string, val []byte) {
	s := c.cfg.ShardOf(key)
	for _, r := range c.replicas[s] {
		r.Load(key, val)
	}
}

// Close stops the transport.
func (c *Cluster) Close() { c.net.Close() }

// Stats counts client events.
type Stats struct {
	TxBegun     atomic.Uint64
	TxCommitted atomic.Uint64
	TxAborted   atomic.Uint64
	FastPath    atomic.Uint64
}

// Client drives TAPIR transactions.
type Client struct {
	cfg    Config
	id     int32
	addr   transport.Addr
	net    *transport.Local
	reqSeq atomic.Uint64
	// mu guards pending; held only for map bookkeeping, never across a
	// network wait.
	mu      sync.Mutex
	pending map[uint64]chan any

	Stats Stats
}

// NewClient attaches a client.
func (c *Cluster) NewClient() *Client {
	c.nextCli++
	cl := &Client{
		cfg: c.cfg, id: c.nextCli,
		addr:    transport.ClientAddr(c.nextCli),
		net:     c.net,
		pending: make(map[uint64]chan any),
	}
	c.net.Register(cl.addr, cl)
	return cl
}

// Deliver routes replies.
func (cl *Client) Deliver(_ transport.Addr, msg any) {
	var id uint64
	switch m := msg.(type) {
	case *readResp:
		id = m.ReqID
	case *prepareResp:
		id = m.ReqID
	default:
		return
	}
	cl.mu.Lock()
	ch := cl.pending[id]
	cl.mu.Unlock()
	if ch != nil {
		select {
		case ch <- msg:
		default:
		}
	}
}

func (cl *Client) newRequest(buf int) (uint64, chan any) {
	id := cl.reqSeq.Add(1)
	ch := make(chan any, buf)
	cl.mu.Lock()
	cl.pending[id] = ch
	cl.mu.Unlock()
	return id, ch
}

func (cl *Client) endRequest(id uint64) {
	cl.mu.Lock()
	delete(cl.pending, id)
	cl.mu.Unlock()
}

// Txn is a TAPIR interactive transaction.
type Txn struct {
	cl       *Client
	ts       types.Timestamp
	reads    []types.ReadEntry
	readKeys map[string]bool
	writes   map[string][]byte
	order    []string
}

// Begin starts a transaction at a client-chosen timestamp.
func (cl *Client) Begin() *Txn {
	cl.Stats.TxBegun.Add(1)
	return &Txn{
		cl:       cl,
		ts:       types.Timestamp{Time: cl.cfg.Clock.NowMicros(), ClientID: uint64(cl.id)},
		readKeys: make(map[string]bool),
		writes:   make(map[string][]byte),
	}
}

// Read fetches from a single (rotating) replica — the trusted-replica read
// path that Byzantine tolerance forbids Basil (paper §6.2).
func (t *Txn) Read(key string) ([]byte, error) {
	if v, ok := t.writes[key]; ok {
		return v, nil
	}
	cl := t.cl
	shard := cl.cfg.ShardOf(key)
	n := 2*cl.cfg.F + 1
	for attempt := 0; attempt < n; attempt++ {
		reqID, ch := cl.newRequest(2)
		idx := int32((int(reqID) + attempt) % n)
		cl.net.Send(cl.addr, transport.ReplicaAddr(shard, idx), &readReq{ReqID: reqID, Key: key, Ts: t.ts})
		deadline := time.NewTimer(cl.cfg.Timeout)
		select {
		case m := <-ch:
			deadline.Stop()
			cl.endRequest(reqID)
			rr, ok := m.(*readResp)
			if !ok {
				continue
			}
			if !t.readKeys[key] {
				t.reads = append(t.reads, types.ReadEntry{Key: key, Version: rr.Version})
				t.readKeys[key] = true
			}
			return rr.Value, nil
		case <-deadline.C:
			deadline.Stop()
			cl.endRequest(reqID)
		}
	}
	return nil, ErrTimeout
}

// Write buffers a write.
func (t *Txn) Write(key string, value []byte) {
	if _, ok := t.writes[key]; !ok {
		t.order = append(t.order, key)
	}
	t.writes[key] = value
}

// Abort abandons the transaction.
func (t *Txn) Abort() { t.cl.Stats.TxAborted.Add(1) }

// Commit merges 2PC prepare with replication: broadcast Prepare to every
// replica of each shard, take the shard vote from f+1 matching replies
// (fast when all 2f+1 agree), then asynchronously broadcast the decision.
func (t *Txn) Commit() error {
	cl := t.cl
	meta := t.buildMeta()
	if len(meta.Shards) == 0 {
		cl.Stats.TxCommitted.Add(1)
		return nil
	}
	id := meta.ID()
	n := 2*cl.cfg.F + 1
	reqID, ch := cl.newRequest(n * len(meta.Shards))
	defer cl.endRequest(reqID)
	req := &prepareReq{ReqID: reqID, Meta: meta}
	for _, s := range meta.Shards {
		cl.net.SendAll(cl.addr, transport.ShardAddrs(s, n), req)
	}
	type skey struct {
		shard   int32
		replica int32
	}
	votes := make(map[int32]map[types.Vote]int)
	seen := make(map[skey]bool)
	decided := make(map[int32]types.Vote)
	total := make(map[int32]int)
	fast := true
	deadline := time.NewTimer(cl.cfg.Timeout)
	defer deadline.Stop()
	var fastC <-chan time.Time
	var fastTimer *time.Timer
	defer func() {
		if fastTimer != nil {
			fastTimer.Stop()
		}
	}()
	allIn := func() bool {
		for _, s := range meta.Shards {
			if total[s] < n {
				return false
			}
		}
		return true
	}
collect:
	for {
		select {
		case m := <-ch:
			pr, ok := m.(*prepareResp)
			if !ok || pr.TxID != id {
				continue
			}
			// Replica index alone is ambiguous across shards; disambiguate
			// by counting per (shard) using the sender info embedded in
			// votes: each shard's replicas reply once, so attribute by
			// first shard still missing this replica index.
			var shard int32 = -1
			for _, s := range meta.Shards {
				if !seen[skey{s, pr.Replica}] {
					shard = s
					break
				}
			}
			if shard < 0 {
				continue
			}
			seen[skey{shard, pr.Replica}] = true
			if votes[shard] == nil {
				votes[shard] = make(map[types.Vote]int)
			}
			votes[shard][pr.Vote]++
			total[shard]++
			if votes[shard][pr.Vote] >= cl.cfg.F+1 {
				if _, done := decided[shard]; !done {
					decided[shard] = pr.Vote
				}
			}
			if len(decided) == len(meta.Shards) {
				if allIn() {
					for _, s := range meta.Shards {
						if votes[s][decided[s]] != total[s] {
							fast = false
						}
					}
					break collect
				}
				if fastTimer == nil {
					// Classifiable; give stragglers a short window to
					// complete the unanimous fast quorum.
					fastTimer = time.NewTimer(2 * time.Millisecond)
					fastC = fastTimer.C
				}
			}
		case <-fastC:
			for _, s := range meta.Shards {
				if total[s] < n || votes[s][decided[s]] != total[s] {
					fast = false
				}
			}
			break collect
		case <-deadline.C:
			cl.Stats.TxAborted.Add(1)
			return ErrTimeout
		}
	}
	decision := types.DecisionCommit
	for _, v := range decided {
		if v != types.VoteCommit {
			decision = types.DecisionAbort
		}
	}
	if fast {
		cl.Stats.FastPath.Add(1)
	}
	// Slow path: one extra round in real TAPIR (IR consensus); modeled as
	// a synchronous decision broadcast acknowledgement-free resend.
	dec := &decideReq{TxID: id, Meta: meta, Decision: decision}
	for _, s := range meta.Shards {
		cl.net.SendAll(cl.addr, transport.ShardAddrs(s, n), dec)
	}
	if decision == types.DecisionCommit {
		cl.Stats.TxCommitted.Add(1)
		return nil
	}
	cl.Stats.TxAborted.Add(1)
	return ErrAborted
}

func (t *Txn) buildMeta() *types.TxMeta {
	meta := &types.TxMeta{Timestamp: t.ts}
	meta.ReadSet = append(meta.ReadSet, t.reads...)
	for _, k := range t.order {
		meta.WriteSet = append(meta.WriteSet, types.WriteEntry{Key: k, Value: t.writes[k]})
	}
	set := make(map[int32]bool)
	for _, r := range meta.ReadSet {
		set[t.cl.cfg.ShardOf(r.Key)] = true
	}
	for _, w := range meta.WriteSet {
		set[t.cl.cfg.ShardOf(w.Key)] = true
	}
	for s := range set {
		meta.Shards = append(meta.Shards, s)
	}
	sortShards(meta.Shards)
	return meta
}

func sortShards(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
