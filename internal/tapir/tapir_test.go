package tapir

import (
	"encoding/binary"
	"sync"
	"testing"
)

func enc(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func dec(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func TestBasicReadWrite(t *testing.T) {
	cl := NewCluster(Config{F: 1, Shards: 1})
	defer cl.Close()
	cl.Load("x", enc(3))
	c := cl.NewClient()
	tx := c.Begin()
	v, err := tx.Read("x")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if dec(v) != 3 {
		t.Fatalf("x=%d want 3", dec(v))
	}
	tx.Write("x", enc(4))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	tx2 := c.Begin()
	v, _ = tx2.Read("x")
	tx2.Abort()
	if dec(v) != 4 {
		t.Fatalf("x=%d want 4", dec(v))
	}
}

func TestFastPathCounted(t *testing.T) {
	cl := NewCluster(Config{F: 1, Shards: 1})
	defer cl.Close()
	cl.Load("k", enc(0))
	c := cl.NewClient()
	for i := 0; i < 5; i++ {
		tx := c.Begin()
		tx.Write("k", enc(uint64(i)))
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	if c.Stats.FastPath.Load() == 0 {
		t.Fatal("expected fast-path commits")
	}
}

func TestConcurrentCounter(t *testing.T) {
	cl := NewCluster(Config{F: 1, Shards: 1})
	defer cl.Close()
	cl.Load("ctr", enc(0))
	const workers, per = 4, 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	commits := 0
	for w := 0; w < workers; w++ {
		c := cl.NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					tx := c.Begin()
					v, err := tx.Read("ctr")
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					tx.Write("ctr", enc(dec(v)+1))
					if err := tx.Commit(); err == nil {
						mu.Lock()
						commits++
						mu.Unlock()
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	c := cl.NewClient()
	tx := c.Begin()
	v, err := tx.Read("ctr")
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	tx.Abort()
	if dec(v) != workers*per {
		t.Fatalf("ctr=%d want %d", dec(v), workers*per)
	}
}

func TestCrossShard(t *testing.T) {
	cl := NewCluster(Config{F: 1, Shards: 2,
		ShardOf: func(k string) int32 { return int32(k[0]) % 2 }})
	defer cl.Close()
	cl.Load("a", enc(10))
	cl.Load("b", enc(20))
	c := cl.NewClient()
	tx := c.Begin()
	a, err := tx.Read("a")
	if err != nil {
		t.Fatalf("read a: %v", err)
	}
	b, err := tx.Read("b")
	if err != nil {
		t.Fatalf("read b: %v", err)
	}
	tx.Write("a", enc(dec(a)+dec(b)))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	tx2 := c.Begin()
	a, _ = tx2.Read("a")
	tx2.Abort()
	if dec(a) != 30 {
		t.Fatalf("a=%d want 30", dec(a))
	}
}
