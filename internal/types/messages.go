package types

// Protocol messages. One struct per arrow in the paper's figures 1 and 3.
//
// Every message that a replica signs carries a Signature; the signed bytes
// are produced by the message's Payload method (domain-separated canonical
// encoding). Batched signatures (paper §4.4) share a Merkle root: the
// Signature then carries the root, the root signature and the inclusion
// proof instead of a direct signature.

// MsgType discriminates transport envelopes.
type MsgType uint8

// Message type tags for transport dispatch.
const (
	MsgRead MsgType = iota + 1
	MsgReadReply
	MsgST1
	MsgST1Reply
	MsgST2
	MsgST2Reply
	MsgWriteback
	MsgInvokeFB
	MsgElectFB
	MsgDecFB
	MsgAbortRead  // release RTS after client-side Abort during execution
	MsgOverloaded // explicit load-shed reply from an over-capacity replica
)

// Signature authenticates a replica reply. Exactly one of Direct or
// (Root, RootSig, Proof, Index) is populated. SignerID is the replica's
// global key-registry index.
type Signature struct {
	SignerID int32
	// Direct is an ed25519 signature over the payload digest.
	Direct []byte
	// Batched form: the payload's leaf hash is proven against Root by
	// Proof/Index, and RootSig signs Root (paper §4.4).
	Root    [32]byte
	RootSig []byte
	Proof   [][32]byte
	Index   uint32
}

// IsBatched reports whether the signature uses the Merkle-batched form.
func (s *Signature) IsBatched() bool { return len(s.RootSig) > 0 }

// domain tags keep signature payloads for different message kinds disjoint.
const (
	domST1R    = "basil/st1r/"
	domST2R    = "basil/st2r/"
	domRead    = "basil/read/"
	domElectFB = "basil/electfb/"
	domDecFB   = "basil/decfb/"
)

// ReadRequest asks a replica for the latest committed and prepared versions
// of Key below Ts (paper §4.1 Read).
type ReadRequest struct {
	ReqID    uint64
	ClientID uint64
	Key      string
	Ts       Timestamp
	// TC is the advisory trace context (tracectx.go); unsampled contexts
	// add no wire bytes.
	TC TraceContext
}

// CommittedRead is a replica's committed branch of a read reply. Version
// and value binding is verified against the writer's metadata hash and the
// commit certificate: H(WriterMeta) must equal Cert.TxID and (Key,Value)
// must appear in WriterMeta.WriteSet. The genesis version (zero timestamp)
// carries no certificate and is trusted as the load-time state.
type CommittedRead struct {
	Value      []byte
	WriterMeta *TxMeta       // nil for the genesis version
	Cert       *DecisionCert // nil for the genesis version
}

// Version returns the committed version's timestamp.
func (c *CommittedRead) Version() Timestamp {
	if c.WriterMeta == nil {
		return Timestamp{}
	}
	return c.WriterMeta.Timestamp
}

// PreparedRead is a replica's prepared branch of a read reply: a visible but
// uncommitted write. Clients accept it only when f+1 replicas return the
// same version (paper §4.1 step 3). The full writer metadata is included so
// that a dependent client can later finish the writer via the fallback.
type PreparedRead struct {
	Value      []byte
	WriterMeta *TxMeta
}

// Version returns the prepared version's timestamp.
func (p *PreparedRead) Version() Timestamp { return p.WriterMeta.Timestamp }

// ReadReply answers a ReadRequest (paper §4.1 step 2).
type ReadReply struct {
	ReqID     uint64
	Key       string
	ShardID   int32
	ReplicaID int32 // index within the shard
	Committed *CommittedRead
	Prepared  *PreparedRead
	Sig       Signature
}

// Payload returns the signed bytes of the read reply. The payload covers
// the versions and value digests, not the certificates (certificates are
// self-authenticating).
func (r *ReadReply) Payload() []byte {
	b := make([]byte, 0, 128)
	b = append(b, domRead...)
	b = appendU64(b, r.ReqID)
	b = appendString(b, r.Key)
	b = appendU32(b, uint32(r.ShardID))
	b = appendU32(b, uint32(r.ReplicaID))
	if r.Committed != nil {
		b = append(b, 1)
		b = r.Committed.Version().AppendCanonical(b)
		b = appendBytes(b, r.Committed.Value)
	} else {
		b = append(b, 0)
	}
	if r.Prepared != nil {
		b = append(b, 1)
		b = r.Prepared.Version().AppendCanonical(b)
		b = appendBytes(b, r.Prepared.Value)
	} else {
		b = append(b, 0)
	}
	return b
}

// AbortRead tells replicas to drop the read timestamps a transaction placed
// during execution (paper §4.1 Abort). Best-effort; replicas also expire
// RTS entries on their own.
type AbortRead struct {
	ClientID uint64
	Ts       Timestamp
	Keys     []string
}

// ST1Request carries the full transaction in the Prepare phase (paper §4.2
// stage 1). Recovery marks it as an RP (Recovery Prepare) resend by an
// interested client (paper §5 common case).
type ST1Request struct {
	ReqID    uint64
	ClientID uint64
	Meta     *TxMeta
	Recovery bool
	// TC is the advisory trace context (tracectx.go).
	TC TraceContext
}

// RPKind tells which artifact an RP reply fast-forwards the client to.
type RPKind uint8

// RP reply kinds (paper §5: RPR is an ST1R, an ST2R, or a certificate).
const (
	RPNone     RPKind = iota
	RPVote            // replica has (only) an ST1 vote
	RPDecision        // replica has a logged ST2 decision
	RPCert            // replica holds the final decision certificate
)

// ST1Reply is a replica's signed concurrency-control vote (paper §4.2
// step 3). When the vote is Abort because of a conflict with a committed
// transaction, Conflict carries that transaction's commit certificate and
// ConflictMeta its metadata (abort fast path case 5).
type ST1Reply struct {
	ReqID        uint64
	TxID         TxID
	ShardID      int32
	ReplicaID    int32
	Vote         Vote
	Conflict     *DecisionCert
	ConflictMeta *TxMeta
	// BlockedBy carries the metadata of the prepared-but-undecided
	// transaction that caused an abort vote, letting the aborted client
	// finish it via the fallback (§5 invariant). Advisory: it is not part
	// of the signed payload and is never required for safety.
	BlockedBy *TxMeta
	// Recovery fast-forward state (populated only on RP replies).
	RPKind   RPKind
	Decision Decision  // with RPDecision: the logged decision
	ST2R     *ST2Reply // with RPDecision: the signed logged decision
	Cert     *DecisionCert
	CertMeta *TxMeta
	Sig      Signature
}

// Payload returns the signed bytes of the vote: domain, tx id, shard and
// replica, and the vote itself.
func (r *ST1Reply) Payload() []byte {
	b := make([]byte, 0, 64)
	b = append(b, domST1R...)
	b = append(b, r.TxID[:]...)
	b = appendU32(b, uint32(r.ShardID))
	b = appendU32(b, uint32(r.ReplicaID))
	b = append(b, byte(r.Vote))
	return b
}

// VoteTally is the client's record of a shard's stage-1 votes (paper §4.2
// step 4). For fast shards the tally doubles as the durable V-CERT.
type VoteTally struct {
	TxID         TxID
	ShardID      int32
	Vote         Vote
	Replies      []ST1Reply
	Conflict     *DecisionCert // abort-with-conflicting-C-CERT fast path
	ConflictMeta *TxMeta
}

// ST2Request logs the client's tentative 2PC decision on the logging shard
// (paper §4.2 stage 2). Tallies justify the decision. View is 0 for the
// original client and >0 when resent under the fallback.
type ST2Request struct {
	ReqID    uint64
	ClientID uint64
	TxID     TxID
	Meta     *TxMeta
	Decision Decision
	Tallies  []VoteTally
	View     uint64
	// TC is the advisory trace context (tracectx.go).
	TC TraceContext
}

// ST2Reply acknowledges a logged decision (paper §4.2 step 6). ViewDecision
// is the view in which the logged decision was adopted; ViewCurrent is the
// replica's current fallback view for this transaction (paper §5).
type ST2Reply struct {
	ReqID        uint64
	TxID         TxID
	ShardID      int32
	ReplicaID    int32
	Decision     Decision
	ViewDecision uint64
	ViewCurrent  uint64
	Sig          Signature
}

// Payload returns the signed bytes of the logged-decision acknowledgement.
func (r *ST2Reply) Payload() []byte {
	b := make([]byte, 0, 80)
	b = append(b, domST2R...)
	b = append(b, r.TxID[:]...)
	b = appendU32(b, uint32(r.ShardID))
	b = appendU32(b, uint32(r.ReplicaID))
	b = append(b, byte(r.Decision))
	b = appendU64(b, r.ViewDecision)
	b = appendU64(b, r.ViewCurrent)
	return b
}

// ShardCertKind says how a shard's vote was made durable.
type ShardCertKind uint8

// Shard certificate kinds.
const (
	// CertST1Fast: a fast-path V-CERT of matching ST1 replies
	// (5f+1 commits, or ≥3f+1 aborts).
	CertST1Fast ShardCertKind = iota + 1
	// CertST2Logged: a V-CERT_Slog of n-f matching ST2 replies.
	CertST2Logged
	// CertConflict: a single abort vote plus the conflicting transaction's
	// commit certificate (abort fast path case 5).
	CertConflict
)

// ShardCert is a durable V-CERT for one shard.
type ShardCert struct {
	ShardID      int32
	Kind         ShardCertKind
	Vote         Vote
	ST1Rs        []ST1Reply
	ST2Rs        []ST2Reply
	Conflict     *DecisionCert
	ConflictMeta *TxMeta
}

// DecisionCert is a C-CERT (Decision=Commit) or A-CERT (Decision=Abort):
// the self-contained, independently verifiable proof of a transaction's
// outcome (paper §4.3). Fast-path commit certificates contain one ST1
// V-CERT per participant shard; slow-path certificates contain the single
// logging-shard ST2 V-CERT; fast-path abort certificates contain one
// aborting shard's V-CERT.
type DecisionCert struct {
	TxID     TxID
	Decision Decision
	Shards   []ShardCert
}

// WritebackRequest broadcasts the decision certificate to all participant
// shards (paper §4.3). Meta lets replicas that never processed ST1 apply
// the writes.
type WritebackRequest struct {
	ClientID uint64
	TxID     TxID
	Decision Decision
	Cert     *DecisionCert
	Meta     *TxMeta
	// TC is the advisory trace context (tracectx.go).
	TC TraceContext
}

// Overloaded is a replica's explicit load-shed reply: the admission queue
// was over capacity (or the sender's reputation deprioritized it under
// pressure), so the request was dropped without processing. ReqID echoes
// the shed request so the client's reply mux can route it; RetryAfterMicros
// is the replica's backoff hint. The message is unsigned and advisory: a
// forged Overloaded can only delay a client's retry pacing (retries stay
// bounded by the client's own deadline), never change a quorum outcome.
type Overloaded struct {
	ReqID            uint64
	ShardID          int32
	ReplicaID        int32
	RetryAfterMicros uint64
}

// InvokeFB starts the divergent-case fallback (paper §5 step 1). ST2Rs are
// the signed current views gathered from RPR responses; Decision/Tallies
// optionally let replicas that have not yet logged a decision adopt the
// invoking client's (validated) decision first, preserving the invariant
// that ELECT-FB messages carry client-proposed decisions only (Lemma 5).
type InvokeFB struct {
	ReqID    uint64
	ClientID uint64
	TxID     TxID
	Meta     *TxMeta
	ST2Rs    []ST2Reply
	Decision Decision
	Tallies  []VoteTally
	// TC is the advisory trace context (tracectx.go).
	TC TraceContext
}

// ElectFB is a replica's leader-election ballot for a transaction's
// fallback view (paper §5 step 2).
type ElectFB struct {
	TxID      TxID
	ShardID   int32
	ReplicaID int32
	Decision  Decision
	View      uint64 // the view whose leader this ballot elects
	Sig       Signature
}

// Payload returns the signed ballot bytes.
func (e *ElectFB) Payload() []byte {
	b := make([]byte, 0, 64)
	b = append(b, domElectFB...)
	b = append(b, e.TxID[:]...)
	b = appendU32(b, uint32(e.ShardID))
	b = appendU32(b, uint32(e.ReplicaID))
	b = append(b, byte(e.Decision))
	return appendU64(b, e.View)
}

// DecFB is the elected fallback leader's reconciled decision (paper §5
// step 3), justified by 4f+1 ElectFB ballots with matching views.
type DecFB struct {
	TxID     TxID
	ShardID  int32
	LeaderID int32
	Decision Decision
	View     uint64
	Elects   []ElectFB
	Sig      Signature
}

// Payload returns the signed decision bytes.
func (d *DecFB) Payload() []byte {
	b := make([]byte, 0, 64)
	b = append(b, domDecFB...)
	b = append(b, d.TxID[:]...)
	b = appendU32(b, uint32(d.ShardID))
	b = appendU32(b, uint32(d.LeaderID))
	b = append(b, byte(d.Decision))
	return appendU64(b, d.View)
}
