package types

// TraceContext is the wire-propagated distributed-tracing context
// (internal/trace). A client stamps it on a transaction at Begin —
// probabilistically sampled, or force-sampled when the transaction hits a
// shed, recovery or fallback — and every carrier request (ReadRequest,
// ST1Request, ST2Request, WritebackRequest, InvokeFB) forwards it so
// replicas can attribute their pipeline stages to the originating
// transaction. It is advisory and unsigned: a forged context can only
// pollute a bounded trace ring, never influence a protocol decision.
//
// Wire form: an unsampled context encodes to NOTHING — the message bytes
// are exactly the pre-tracing encoding, so the common path pays zero bytes
// and signature payloads never change. A sampled context appends a small
// trailer (marker byte + trace id) after the message's canonical fields;
// the decoder consumes it because a transport frame carries exactly one
// message, so any trailing bytes belong to the trailer or the frame is
// malformed.
type TraceContext struct {
	TraceID uint64
	Sampled bool
}

// traceTrailerMark introduces the sampled-trace trailer after a carrier
// message's canonical fields.
const traceTrailerMark = 0x54 // 'T'

// traceTrailerSize is the encoded trailer length: marker + trace id.
const traceTrailerSize = 1 + 8

// appendTraceTrailer appends the sampled-trace trailer; unsampled contexts
// append nothing, keeping common-path frames byte-identical to the
// pre-tracing encoding.
func appendTraceTrailer(b []byte, tc TraceContext) []byte {
	if !tc.Sampled {
		return b
	}
	b = append(b, traceTrailerMark)
	return appendU64(b, tc.TraceID)
}

// traceTrailer consumes an optional sampled-trace trailer from the
// remaining input. Absence is the common case and leaves the decoder
// untouched.
func (d *decoder) traceTrailer() TraceContext {
	if d.err != nil || len(d.b) < traceTrailerSize || d.b[0] != traceTrailerMark {
		return TraceContext{}
	}
	d.b = d.b[1:]
	return TraceContext{TraceID: d.u64(), Sampled: true}
}

// TraceContextOf extracts the trace context carried by msg; the zero
// context for non-carrier messages. Used by transports to attribute
// queueing delay without knowing message internals.
func TraceContextOf(msg any) TraceContext {
	switch m := msg.(type) {
	case *ReadRequest:
		return m.TC
	case *ST1Request:
		return m.TC
	case *ST2Request:
		return m.TC
	case *WritebackRequest:
		return m.TC
	case *InvokeFB:
		return m.TC
	}
	return TraceContext{}
}
