package types

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// wireRand builds pseudo-random but deterministic protocol values so the
// round-trip tests cover populated optional fields, nested certificates
// and batched signatures.
type wireRand struct{ r *rand.Rand }

func newWireRand(seed int64) *wireRand {
	return &wireRand{r: rand.New(rand.NewSource(seed))}
}

func (w *wireRand) bytes(n int) []byte {
	b := make([]byte, 1+w.r.Intn(n))
	w.r.Read(b)
	return b
}

func (w *wireRand) txid() TxID {
	var id TxID
	w.r.Read(id[:])
	return id
}

func (w *wireRand) hash() [32]byte { return [32]byte(w.txid()) }

func (w *wireRand) ts() Timestamp {
	return Timestamp{Time: w.r.Uint64(), ClientID: w.r.Uint64()}
}

func (w *wireRand) sig(batched bool) Signature {
	s := Signature{SignerID: int32(w.r.Intn(64))}
	if !batched {
		s.Direct = w.bytes(64)
		return s
	}
	s.Root = w.hash()
	s.RootSig = w.bytes(64)
	s.Proof = [][32]byte{w.hash(), w.hash()}
	s.Index = w.r.Uint32()
	return s
}

func (w *wireRand) meta() *TxMeta {
	return &TxMeta{
		Timestamp: w.ts(),
		ReadSet:   []ReadEntry{{Key: "k1", Version: w.ts()}, {Key: "k2", Version: w.ts()}},
		WriteSet:  []WriteEntry{{Key: "k3", Value: w.bytes(32)}},
		Deps:      []Dependency{{TxID: w.txid(), Version: w.ts()}},
		Shards:    []int32{0, int32(w.r.Intn(8))},
	}
}

func (w *wireRand) st1Reply() ST1Reply {
	return ST1Reply{
		ReqID: w.r.Uint64(), TxID: w.txid(),
		ShardID: int32(w.r.Intn(8)), ReplicaID: int32(w.r.Intn(6)),
		Vote: VoteCommit, BlockedBy: w.meta(), Sig: w.sig(true),
	}
}

func (w *wireRand) st2Reply() ST2Reply {
	return ST2Reply{
		ReqID: w.r.Uint64(), TxID: w.txid(),
		ShardID: int32(w.r.Intn(8)), ReplicaID: int32(w.r.Intn(6)),
		Decision: DecisionCommit, ViewDecision: w.r.Uint64() % 4,
		ViewCurrent: w.r.Uint64() % 4, Sig: w.sig(false),
	}
}

func (w *wireRand) cert() *DecisionCert {
	return &DecisionCert{
		TxID: w.txid(), Decision: DecisionCommit,
		Shards: []ShardCert{{
			ShardID: 1, Kind: CertST1Fast, Vote: VoteCommit,
			ST1Rs: []ST1Reply{w.st1Reply()},
		}, {
			ShardID: 2, Kind: CertST2Logged, Vote: VoteCommit,
			ST2Rs: []ST2Reply{w.st2Reply(), w.st2Reply()},
		}},
	}
}

func (w *wireRand) tally() VoteTally {
	return VoteTally{
		TxID: w.txid(), ShardID: 3, Vote: VoteAbort,
		Replies:  []ST1Reply{w.st1Reply(), w.st1Reply()},
		Conflict: w.cert(), ConflictMeta: w.meta(),
	}
}

// wireMessages returns one populated instance of every protocol message.
func wireMessages(seed int64) []any {
	w := newWireRand(seed)
	st1r := w.st1Reply()
	st1r.Conflict = w.cert()
	st1r.ConflictMeta = w.meta()
	st1r.RPKind = RPDecision
	st1r.Decision = DecisionCommit
	st2r := w.st2Reply()
	st1r.ST2R = &st2r
	st1r.Cert = w.cert()
	st1r.CertMeta = w.meta()
	return []any{
		&ReadRequest{ReqID: w.r.Uint64(), ClientID: w.r.Uint64(), Key: "balance", Ts: w.ts(),
			TC: TraceContext{TraceID: w.r.Uint64(), Sampled: true}},
		&ReadReply{
			ReqID: w.r.Uint64(), Key: "balance", ShardID: 2, ReplicaID: 4,
			Committed: &CommittedRead{Value: w.bytes(64), WriterMeta: w.meta(), Cert: w.cert()},
			Prepared:  &PreparedRead{Value: w.bytes(64), WriterMeta: w.meta()},
			Sig:       w.sig(true),
		},
		&AbortRead{ClientID: w.r.Uint64(), Ts: w.ts(), Keys: []string{"a", "b", "c"}},
		&ST1Request{ReqID: w.r.Uint64(), ClientID: w.r.Uint64(), Meta: w.meta(), Recovery: true,
			TC: TraceContext{TraceID: w.r.Uint64(), Sampled: true}},
		&st1r,
		&ST2Request{
			ReqID: w.r.Uint64(), ClientID: w.r.Uint64(), TxID: w.txid(),
			Meta: w.meta(), Decision: DecisionCommit,
			Tallies: []VoteTally{w.tally(), w.tally()}, View: 3,
			TC: TraceContext{TraceID: w.r.Uint64(), Sampled: true},
		},
		&st2r,
		&WritebackRequest{
			ClientID: w.r.Uint64(), TxID: w.txid(), Decision: DecisionAbort,
			Cert: w.cert(), Meta: w.meta(),
			TC: TraceContext{TraceID: w.r.Uint64(), Sampled: true},
		},
		&InvokeFB{
			ReqID: w.r.Uint64(), ClientID: w.r.Uint64(), TxID: w.txid(),
			Meta: w.meta(), ST2Rs: []ST2Reply{w.st2Reply()},
			Decision: DecisionCommit, Tallies: []VoteTally{w.tally()},
			TC: TraceContext{TraceID: w.r.Uint64(), Sampled: true},
		},
		&Overloaded{ReqID: w.r.Uint64(), ShardID: 2, ReplicaID: 5,
			RetryAfterMicros: w.r.Uint64()},
		&ElectFB{TxID: w.txid(), ShardID: 1, ReplicaID: 2, Decision: DecisionCommit,
			View: 2, Sig: w.sig(false)},
		&DecFB{TxID: w.txid(), ShardID: 1, LeaderID: 3, Decision: DecisionAbort,
			View: 2, Elects: []ElectFB{
				{TxID: w.txid(), ShardID: 1, ReplicaID: 0, View: 2, Sig: w.sig(false)},
				{TxID: w.txid(), ShardID: 1, ReplicaID: 4, View: 2, Sig: w.sig(true)},
			}, Sig: w.sig(false)},
	}
}

// TestWireRoundTripAllMessages encodes every protocol message, decodes it,
// and re-encodes the result: a canonical codec must reproduce the exact
// original bytes, which also proves field-level equality.
func TestWireRoundTripAllMessages(t *testing.T) {
	msgs := wireMessages(7)
	if len(msgs) != 12 {
		t.Fatalf("expected all 12 protocol messages, have %d", len(msgs))
	}
	for _, msg := range msgs {
		enc, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		dec, rest, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%T: %d trailing bytes after decode", msg, len(rest))
		}
		re, err := EncodeMessage(dec)
		if err != nil {
			t.Fatalf("%T: re-encode: %v", msg, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("%T: decode(encode(m)) re-encodes differently\n  enc %x\n  re  %x", msg, enc, re)
		}
	}
}

// TestWireRoundTripSparseMessages covers the all-optionals-nil shapes.
func TestWireRoundTripSparseMessages(t *testing.T) {
	for _, msg := range []any{
		&ReadReply{ReqID: 1, Key: "k", ShardID: 0, ReplicaID: 1},
		&ST1Request{ReqID: 2, ClientID: 3},
		&ST1Reply{ReqID: 4, Vote: VoteAbort},
		&ST2Request{ReqID: 5, ClientID: 6, Decision: DecisionAbort},
		&WritebackRequest{ClientID: 7, Decision: DecisionCommit},
		&InvokeFB{ReqID: 8, ClientID: 9},
		&DecFB{View: 1},
		&AbortRead{ClientID: 10},
		&Overloaded{ReqID: 11},
	} {
		enc, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		dec, rest, err := DecodeMessage(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("%T: decode: %v (rest %d)", msg, err, len(rest))
		}
		re, _ := EncodeMessage(dec)
		if !bytes.Equal(enc, re) {
			t.Fatalf("%T: sparse round trip mismatch", msg)
		}
	}
}

func TestWireDecodeFieldFidelity(t *testing.T) {
	in := &ReadRequest{ReqID: 42, ClientID: 99, Key: "k", Ts: Timestamp{Time: 7, ClientID: 99}}
	enc, _ := EncodeMessage(in)
	dec, _, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := dec.(*ReadRequest)
	if !ok {
		t.Fatalf("decoded %T", dec)
	}
	if *out != *in {
		t.Fatalf("got %+v want %+v", out, in)
	}
}

func TestWireRejectsUnknownAndTruncated(t *testing.T) {
	if _, err := EncodeMessage("not a protocol message"); err == nil {
		t.Fatal("encoded a non-protocol value")
	}
	if _, _, err := DecodeMessage(nil); err == nil {
		t.Fatal("decoded empty input")
	}
	if _, _, err := DecodeMessage([]byte{0xEE}); err == nil {
		t.Fatal("decoded unknown tag")
	}
	enc, _ := EncodeMessage(wireMessages(3)[1]) // ReadReply, deeply nested
	for _, cut := range []int{1, 2, len(enc) / 2, len(enc) - 1} {
		if _, _, err := DecodeMessage(enc[:cut]); err == nil {
			t.Fatalf("decoded truncated input (cut %d)", cut)
		}
	}
}

// TestWireDecodeDepthBounded feeds a frame whose certificate nesting
// exceeds maxWireDepth and expects ErrWireNesting instead of a stack
// overflow.
func TestWireDecodeDepthBounded(t *testing.T) {
	// Build an ST1Reply whose Conflict cert holds an ST1Reply whose
	// Conflict cert holds ... deeper than the decoder allows.
	inner := ST1Reply{Vote: VoteAbort}
	for i := 0; i < maxWireDepth+2; i++ {
		inner = ST1Reply{
			Vote: VoteAbort,
			Conflict: &DecisionCert{Decision: DecisionAbort, Shards: []ShardCert{
				{Kind: CertConflict, Vote: VoteAbort, ST1Rs: []ST1Reply{inner}},
			}},
		}
	}
	enc, err := EncodeMessage(&inner)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = DecodeMessage(enc)
	if err != ErrWireNesting {
		t.Fatalf("want ErrWireNesting, got %v", err)
	}
}

// traceCarriers returns one instance per message kind that carries a
// TraceContext, stamped with tc.
func traceCarriers(seed int64, tc TraceContext) []any {
	w := newWireRand(seed)
	return []any{
		&ReadRequest{ReqID: w.r.Uint64(), ClientID: 3, Key: "k", Ts: w.ts(), TC: tc},
		&ST1Request{ReqID: w.r.Uint64(), ClientID: 3, Meta: w.meta(), TC: tc},
		&ST2Request{ReqID: w.r.Uint64(), ClientID: 3, TxID: w.txid(), Meta: w.meta(),
			Decision: DecisionCommit, Tallies: []VoteTally{w.tally()}, TC: tc},
		&WritebackRequest{ClientID: 3, TxID: w.txid(), Decision: DecisionCommit,
			Cert: w.cert(), Meta: w.meta(), TC: tc},
		&InvokeFB{ReqID: w.r.Uint64(), ClientID: 3, TxID: w.txid(), Meta: w.meta(), TC: tc},
	}
}

// clearTC zeroes the carrier's trace context in place.
func clearTC(msg any) {
	switch m := msg.(type) {
	case *ReadRequest:
		m.TC = TraceContext{}
	case *ST1Request:
		m.TC = TraceContext{}
	case *ST2Request:
		m.TC = TraceContext{}
	case *WritebackRequest:
		m.TC = TraceContext{}
	case *InvokeFB:
		m.TC = TraceContext{}
	}
}

// TestWireTraceContextRoundTrip proves a sampled trace context survives
// encode/decode on every carrier message kind, field-exact.
func TestWireTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xDEADBEEFCAFE0123, Sampled: true}
	for _, msg := range traceCarriers(21, tc) {
		enc, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		dec, rest, err := DecodeMessage(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("%T: decode: %v (rest %d)", msg, err, len(rest))
		}
		if got := TraceContextOf(dec); got != tc {
			t.Fatalf("%T: trace context %+v, want %+v", msg, got, tc)
		}
		re, err := EncodeMessage(dec)
		if err != nil || !bytes.Equal(enc, re) {
			t.Fatalf("%T: traced message re-encodes differently (%v)", msg, err)
		}
	}
}

// TestWireUnsampledTraceContextUnchangedBytes proves the common path pays
// zero wire bytes for tracing: an unsampled context — even with a non-zero
// trace id — encodes to exactly the bytes of a message with no context at
// all, and decodes back to the zero context.
func TestWireUnsampledTraceContextUnchangedBytes(t *testing.T) {
	unsampled := traceCarriers(33, TraceContext{TraceID: 77, Sampled: false})
	bare := traceCarriers(33, TraceContext{})
	for i, msg := range unsampled {
		encUnsampled, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		encBare, err := EncodeMessage(bare[i])
		if err != nil {
			t.Fatalf("%T: encode bare: %v", msg, err)
		}
		if !bytes.Equal(encUnsampled, encBare) {
			t.Fatalf("%T: unsampled trace context changed the frame bytes", msg)
		}
		dec, rest, err := DecodeMessage(encUnsampled)
		if err != nil || len(rest) != 0 {
			t.Fatalf("%T: decode: %v (rest %d)", msg, err, len(rest))
		}
		if got := TraceContextOf(dec); got != (TraceContext{}) {
			t.Fatalf("%T: decoded context %+v, want zero", msg, got)
		}
		// The sampled form of the same message differs only by the trailer.
		clearTC(msg)
		reBare, _ := EncodeMessage(msg)
		if !bytes.Equal(reBare, encBare) {
			t.Fatalf("%T: clearing the context should reproduce the bare bytes", msg)
		}
	}
}

// BenchmarkWireCodec measures the canonical wire codec against gob (the
// transport's previous wire format) on a representative ST2Request — the
// serialization pass the new framed transport removed.
func BenchmarkWireCodec(b *testing.B) {
	w := newWireRand(11)
	msg := &ST2Request{
		ReqID: 1, ClientID: 2, TxID: w.txid(), Meta: w.meta(),
		Decision: DecisionCommit, Tallies: []VoteTally{w.tally()}, View: 0,
	}
	b.Run("canonical/encode", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 4096)
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			var err error
			buf, err = AppendMessage(buf, msg)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	enc, _ := EncodeMessage(msg)
	b.Run("canonical/decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := DecodeMessage(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob/encode", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := enc.Encode(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob/decode", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		for i := 0; i < b.N; i++ {
			var out ST2Request
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
