package types

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimestampOrder(t *testing.T) {
	a := Timestamp{Time: 1, ClientID: 5}
	b := Timestamp{Time: 2, ClientID: 1}
	c := Timestamp{Time: 2, ClientID: 2}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("timestamp ordering broken")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("Compare inconsistent")
	}
	if !a.LessEq(a) || !a.LessEq(b) || b.LessEq(a) {
		t.Fatal("LessEq inconsistent")
	}
}

func TestTimestampTotalOrderProperty(t *testing.T) {
	// Less must be a strict total order: trichotomy and transitivity.
	f := func(t1, t2, t3 Timestamp) bool {
		tri := 0
		if t1.Less(t2) {
			tri++
		}
		if t2.Less(t1) {
			tri++
		}
		if t1 == t2 {
			tri++
		}
		if tri != 1 {
			return false
		}
		if t1.Less(t2) && t2.Less(t3) && !t1.Less(t3) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroTimestamp(t *testing.T) {
	if !(Timestamp{}).IsZero() {
		t.Fatal("zero ts not zero")
	}
	if (Timestamp{Time: 1}).IsZero() {
		t.Fatal("nonzero ts is zero")
	}
}

func randMeta(rng *rand.Rand) *TxMeta {
	m := &TxMeta{Timestamp: Timestamp{Time: rng.Uint64() % 1000, ClientID: rng.Uint64() % 10}}
	for i := 0; i < rng.Intn(4); i++ {
		m.ReadSet = append(m.ReadSet, ReadEntry{
			Key:     string(rune('a' + rng.Intn(26))),
			Version: Timestamp{Time: rng.Uint64() % 100},
		})
	}
	for i := 0; i < rng.Intn(4); i++ {
		val := make([]byte, rng.Intn(16))
		rng.Read(val)
		m.WriteSet = append(m.WriteSet, WriteEntry{Key: string(rune('a' + rng.Intn(26))), Value: val})
	}
	for i := 0; i < rng.Intn(3); i++ {
		var id TxID
		rng.Read(id[:])
		m.Deps = append(m.Deps, Dependency{TxID: id, Version: Timestamp{Time: rng.Uint64() % 50}})
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		m.Shards = append(m.Shards, int32(rng.Intn(5)))
	}
	return m
}

func TestTxMetaEncodingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		m := randMeta(rng)
		enc := m.AppendCanonical(nil)
		dec, rest, err := DecodeTxMeta(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("trailing bytes: %d", len(rest))
		}
		if !bytes.Equal(dec.AppendCanonical(nil), enc) {
			t.Fatalf("round trip not canonical")
		}
		if dec.ID() != m.ID() {
			t.Fatalf("id changed through round trip")
		}
	}
}

func TestTxMetaEncodingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randMeta(rng)
	a := m.AppendCanonical(nil)
	b := m.AppendCanonical(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("canonical encoding nondeterministic")
	}
}

func TestTxIDBindsContent(t *testing.T) {
	m := &TxMeta{Timestamp: Timestamp{Time: 1, ClientID: 2},
		WriteSet: []WriteEntry{{Key: "k", Value: []byte("v")}}, Shards: []int32{0}}
	id1 := m.ID()
	m.WriteSet[0].Value = []byte("w")
	if m.ID() == id1 {
		t.Fatal("tx id did not change with contents (equivocation possible)")
	}
}

func TestDecodeTruncated(t *testing.T) {
	m := &TxMeta{Timestamp: Timestamp{Time: 1}, WriteSet: []WriteEntry{{Key: "k", Value: []byte("v")}}}
	enc := m.AppendCanonical(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeTxMeta(enc[:cut]); err == nil && cut < len(enc) {
			// Some prefixes may decode as a shorter valid meta; they must
			// at least not panic. Only the empty-read/write/dep prefix is
			// legitimately decodable.
			continue
		}
	}
}

func TestShardIndexStable(t *testing.T) {
	var id TxID
	for i := range id {
		id[i] = byte(i)
	}
	for n := 1; n <= 7; n++ {
		a := id.ShardIndex(n)
		b := id.ShardIndex(n)
		if a != b || a < 0 || a >= n {
			t.Fatalf("ShardIndex(%d) unstable or out of range: %d", n, a)
		}
	}
	if id.ShardIndex(0) != 0 {
		t.Fatal("ShardIndex(0) must be 0")
	}
}

func TestLogShardIsParticipant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		m := randMeta(rng)
		ls := m.LogShard()
		if len(m.Shards) > 0 && !m.HasShard(ls) {
			t.Fatalf("log shard %d not a participant %v", ls, m.Shards)
		}
	}
}

func TestReadsWritesLookup(t *testing.T) {
	m := &TxMeta{
		ReadSet:  []ReadEntry{{Key: "a", Version: Timestamp{Time: 3}}},
		WriteSet: []WriteEntry{{Key: "b"}},
	}
	if v, ok := m.ReadsKey("a"); !ok || v.Time != 3 {
		t.Fatal("ReadsKey broken")
	}
	if _, ok := m.ReadsKey("zz"); ok {
		t.Fatal("ReadsKey false positive")
	}
	if !m.WritesKey("b") || m.WritesKey("a") {
		t.Fatal("WritesKey broken")
	}
}

func TestVoteDecisionStrings(t *testing.T) {
	if VoteCommit.String() != "commit" || VoteAbort.String() != "abort" || VoteNone.String() != "none" {
		t.Fatal("vote strings")
	}
	if DecisionCommit.String() != "commit" || DecisionAbort.String() != "abort" || DecisionNone.String() != "none" {
		t.Fatal("decision strings")
	}
}

func TestPayloadsDomainSeparated(t *testing.T) {
	var id TxID
	id[0] = 1
	st1 := &ST1Reply{TxID: id, ShardID: 1, ReplicaID: 2, Vote: VoteCommit}
	st2 := &ST2Reply{TxID: id, ShardID: 1, ReplicaID: 2, Decision: DecisionCommit}
	e := &ElectFB{TxID: id, ShardID: 1, ReplicaID: 2, Decision: DecisionCommit, View: 0}
	d := &DecFB{TxID: id, ShardID: 1, LeaderID: 2, Decision: DecisionCommit, View: 0}
	payloads := [][]byte{st1.Payload(), st2.Payload(), e.Payload(), d.Payload()}
	for i := range payloads {
		for j := i + 1; j < len(payloads); j++ {
			if bytes.Equal(payloads[i], payloads[j]) {
				t.Fatalf("payloads %d and %d collide (domain separation broken)", i, j)
			}
		}
	}
}

func TestST1PayloadCoversVote(t *testing.T) {
	a := &ST1Reply{Vote: VoteCommit}
	b := &ST1Reply{Vote: VoteAbort}
	if bytes.Equal(a.Payload(), b.Payload()) {
		t.Fatal("vote not covered by signature payload")
	}
}

func TestST2PayloadCoversViews(t *testing.T) {
	a := &ST2Reply{Decision: DecisionCommit, ViewDecision: 0}
	b := &ST2Reply{Decision: DecisionCommit, ViewDecision: 1}
	if bytes.Equal(a.Payload(), b.Payload()) {
		t.Fatal("decision view not covered by signature payload")
	}
}
