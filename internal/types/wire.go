package types

import (
	"errors"
	"fmt"
)

// Tagged wire encoding for protocol messages.
//
// The transport frames each message as a one-byte MsgType tag followed by
// the message's canonical field encoding, reusing the same deterministic
// append helpers the signature payloads are built from (encode.go). This
// keeps exactly one serialization path in the system: the bytes a replica
// signs and the bytes that cross the wire come from the same codec, and
// nothing is reflect-encoded twice the way the old gob transport did.
//
// Optional pointer fields are encoded as a presence byte (0/1) followed by
// the value. Slices carry a u32 count. All integers are big-endian.
//
// The decoder is defensive: every length is bounds-checked against the
// remaining input, and certificate nesting (an ST1Reply can carry a
// DecisionCert whose ShardCerts carry further ST1Replies) is capped so a
// malicious peer cannot recurse the decoder off the stack.

// ErrWireNesting reports certificate nesting beyond maxWireDepth.
var ErrWireNesting = errors.New("types: wire encoding nested too deep")

// maxWireDepth caps DecisionCert/ST1Reply recursion during decode. Honest
// traffic nests at most a handful of levels (reply -> conflict cert ->
// shard cert -> vote replies); 16 leaves generous headroom.
const maxWireDepth = 16

// EncodeMessage returns the tagged wire encoding of msg. It fails on
// values that are not one of the twelve protocol messages.
func EncodeMessage(msg any) ([]byte, error) {
	return AppendMessage(make([]byte, 0, 128), msg)
}

// AppendMessage appends the tagged wire encoding of msg to b.
func AppendMessage(b []byte, msg any) ([]byte, error) {
	switch m := msg.(type) {
	case *ReadRequest:
		b = append(b, byte(MsgRead))
		b = appendU64(b, m.ReqID)
		b = appendU64(b, m.ClientID)
		b = appendString(b, m.Key)
		b = m.Ts.AppendCanonical(b)
		b = appendTraceTrailer(b, m.TC)
	case *ReadReply:
		b = append(b, byte(MsgReadReply))
		b = appendU64(b, m.ReqID)
		b = appendString(b, m.Key)
		b = appendU32(b, uint32(m.ShardID))
		b = appendU32(b, uint32(m.ReplicaID))
		b = appendCommittedRead(b, m.Committed)
		b = appendPreparedRead(b, m.Prepared)
		b = appendSignature(b, &m.Sig)
	case *AbortRead:
		b = append(b, byte(MsgAbortRead))
		b = appendU64(b, m.ClientID)
		b = m.Ts.AppendCanonical(b)
		b = appendU32(b, uint32(len(m.Keys)))
		for _, k := range m.Keys {
			b = appendString(b, k)
		}
	case *ST1Request:
		b = append(b, byte(MsgST1))
		b = appendU64(b, m.ReqID)
		b = appendU64(b, m.ClientID)
		b = appendTxMetaOpt(b, m.Meta)
		b = appendBool(b, m.Recovery)
		b = appendTraceTrailer(b, m.TC)
	case *ST1Reply:
		b = append(b, byte(MsgST1Reply))
		b = appendST1Reply(b, m)
	case *ST2Request:
		b = append(b, byte(MsgST2))
		b = appendU64(b, m.ReqID)
		b = appendU64(b, m.ClientID)
		b = append(b, m.TxID[:]...)
		b = appendTxMetaOpt(b, m.Meta)
		b = append(b, byte(m.Decision))
		b = appendU32(b, uint32(len(m.Tallies)))
		for i := range m.Tallies {
			b = appendVoteTally(b, &m.Tallies[i])
		}
		b = appendU64(b, m.View)
		b = appendTraceTrailer(b, m.TC)
	case *ST2Reply:
		b = append(b, byte(MsgST2Reply))
		b = appendST2Reply(b, m)
	case *WritebackRequest:
		b = append(b, byte(MsgWriteback))
		b = appendU64(b, m.ClientID)
		b = append(b, m.TxID[:]...)
		b = append(b, byte(m.Decision))
		b = appendDecisionCertOpt(b, m.Cert)
		b = appendTxMetaOpt(b, m.Meta)
		b = appendTraceTrailer(b, m.TC)
	case *InvokeFB:
		b = append(b, byte(MsgInvokeFB))
		b = appendU64(b, m.ReqID)
		b = appendU64(b, m.ClientID)
		b = append(b, m.TxID[:]...)
		b = appendTxMetaOpt(b, m.Meta)
		b = appendU32(b, uint32(len(m.ST2Rs)))
		for i := range m.ST2Rs {
			b = appendST2Reply(b, &m.ST2Rs[i])
		}
		b = append(b, byte(m.Decision))
		b = appendU32(b, uint32(len(m.Tallies)))
		for i := range m.Tallies {
			b = appendVoteTally(b, &m.Tallies[i])
		}
		b = appendTraceTrailer(b, m.TC)
	case *Overloaded:
		b = append(b, byte(MsgOverloaded))
		b = appendU64(b, m.ReqID)
		b = appendU32(b, uint32(m.ShardID))
		b = appendU32(b, uint32(m.ReplicaID))
		b = appendU64(b, m.RetryAfterMicros)
	case *ElectFB:
		b = append(b, byte(MsgElectFB))
		b = appendElectFB(b, m)
	case *DecFB:
		b = append(b, byte(MsgDecFB))
		b = append(b, m.TxID[:]...)
		b = appendU32(b, uint32(m.ShardID))
		b = appendU32(b, uint32(m.LeaderID))
		b = append(b, byte(m.Decision))
		b = appendU64(b, m.View)
		b = appendU32(b, uint32(len(m.Elects)))
		for i := range m.Elects {
			b = appendElectFB(b, &m.Elects[i])
		}
		b = appendSignature(b, &m.Sig)
	default:
		return nil, fmt.Errorf("types: cannot wire-encode %T", msg)
	}
	return b, nil
}

// DecodeMessage parses one tagged message from b, returning the decoded
// message (always a pointer type matching what handlers switch on) and
// the remaining bytes.
func DecodeMessage(b []byte) (any, []byte, error) {
	if len(b) == 0 {
		return nil, nil, ErrTruncated
	}
	tag, d := MsgType(b[0]), &decoder{b: b[1:]}
	var msg any
	switch tag {
	case MsgRead:
		m := &ReadRequest{ReqID: d.u64(), ClientID: d.u64(), Key: d.str(), Ts: d.ts()}
		m.TC = d.traceTrailer()
		msg = m
	case MsgReadReply:
		m := &ReadReply{ReqID: d.u64(), Key: d.str(),
			ShardID: int32(d.u32()), ReplicaID: int32(d.u32())}
		m.Committed = d.committedRead()
		m.Prepared = d.preparedRead()
		m.Sig = d.signature()
		msg = m
	case MsgAbortRead:
		m := &AbortRead{ClientID: d.u64(), Ts: d.ts()}
		n := d.count()
		for i := 0; i < n && d.err == nil; i++ {
			m.Keys = append(m.Keys, d.str())
		}
		msg = m
	case MsgST1:
		m := &ST1Request{ReqID: d.u64(), ClientID: d.u64(),
			Meta: d.txMetaOpt(), Recovery: d.bool()}
		m.TC = d.traceTrailer()
		msg = m
	case MsgST1Reply:
		msg = d.st1Reply(0)
	case MsgST2:
		m := &ST2Request{ReqID: d.u64(), ClientID: d.u64(), TxID: d.txid()}
		m.Meta = d.txMetaOpt()
		m.Decision = Decision(d.u8())
		n := d.count()
		for i := 0; i < n && d.err == nil; i++ {
			m.Tallies = append(m.Tallies, d.voteTally(0))
		}
		m.View = d.u64()
		m.TC = d.traceTrailer()
		msg = m
	case MsgST2Reply:
		msg = d.st2Reply()
	case MsgWriteback:
		m := &WritebackRequest{ClientID: d.u64(), TxID: d.txid(),
			Decision: Decision(d.u8())}
		m.Cert = d.decisionCertOpt(0)
		m.Meta = d.txMetaOpt()
		m.TC = d.traceTrailer()
		msg = m
	case MsgInvokeFB:
		m := &InvokeFB{ReqID: d.u64(), ClientID: d.u64(), TxID: d.txid()}
		m.Meta = d.txMetaOpt()
		n := d.count()
		for i := 0; i < n && d.err == nil; i++ {
			m.ST2Rs = append(m.ST2Rs, *d.st2Reply())
		}
		m.Decision = Decision(d.u8())
		n = d.count()
		for i := 0; i < n && d.err == nil; i++ {
			m.Tallies = append(m.Tallies, d.voteTally(0))
		}
		m.TC = d.traceTrailer()
		msg = m
	case MsgOverloaded:
		msg = &Overloaded{ReqID: d.u64(), ShardID: int32(d.u32()),
			ReplicaID: int32(d.u32()), RetryAfterMicros: d.u64()}
	case MsgElectFB:
		msg = d.electFB()
	case MsgDecFB:
		m := &DecFB{TxID: d.txid(), ShardID: int32(d.u32()),
			LeaderID: int32(d.u32()), Decision: Decision(d.u8()), View: d.u64()}
		n := d.count()
		for i := 0; i < n && d.err == nil; i++ {
			m.Elects = append(m.Elects, *d.electFB())
		}
		m.Sig = d.signature()
		msg = m
	default:
		return nil, nil, fmt.Errorf("types: unknown wire tag %d", tag)
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	return msg, d.b, nil
}

// AppendDecisionCert appends the optional-certificate wire encoding
// (presence byte + body) to b — the same bytes a cert occupies inside a
// protocol message. Exported for the durability subsystem, whose WAL
// records and checkpoints reuse the canonical codec.
func AppendDecisionCert(b []byte, c *DecisionCert) []byte {
	return appendDecisionCertOpt(b, c)
}

// DecodeDecisionCert parses an optional DecisionCert produced by
// AppendDecisionCert, returning the remaining bytes.
func DecodeDecisionCert(b []byte) (*DecisionCert, []byte, error) {
	d := &decoder{b: b}
	c := d.decisionCertOpt(0)
	if d.err != nil {
		return nil, nil, d.err
	}
	return c, d.b, nil
}

// --- encode helpers ---

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendSignature(b []byte, s *Signature) []byte {
	b = appendU32(b, uint32(s.SignerID))
	b = appendBytes(b, s.Direct)
	b = append(b, s.Root[:]...)
	b = appendBytes(b, s.RootSig)
	b = appendU32(b, uint32(len(s.Proof)))
	for _, p := range s.Proof {
		b = append(b, p[:]...)
	}
	return appendU32(b, s.Index)
}

func appendTxMetaOpt(b []byte, m *TxMeta) []byte {
	if m == nil {
		return append(b, 0)
	}
	return m.AppendCanonical(append(b, 1))
}

func appendCommittedRead(b []byte, c *CommittedRead) []byte {
	if c == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendBytes(b, c.Value)
	b = appendTxMetaOpt(b, c.WriterMeta)
	return appendDecisionCertOpt(b, c.Cert)
}

func appendPreparedRead(b []byte, p *PreparedRead) []byte {
	if p == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendBytes(b, p.Value)
	return appendTxMetaOpt(b, p.WriterMeta)
}

func appendST1Reply(b []byte, r *ST1Reply) []byte {
	b = appendU64(b, r.ReqID)
	b = append(b, r.TxID[:]...)
	b = appendU32(b, uint32(r.ShardID))
	b = appendU32(b, uint32(r.ReplicaID))
	b = append(b, byte(r.Vote))
	b = appendDecisionCertOpt(b, r.Conflict)
	b = appendTxMetaOpt(b, r.ConflictMeta)
	b = appendTxMetaOpt(b, r.BlockedBy)
	b = append(b, byte(r.RPKind), byte(r.Decision))
	if r.ST2R == nil {
		b = append(b, 0)
	} else {
		b = appendST2Reply(append(b, 1), r.ST2R)
	}
	b = appendDecisionCertOpt(b, r.Cert)
	b = appendTxMetaOpt(b, r.CertMeta)
	return appendSignature(b, &r.Sig)
}

func appendST2Reply(b []byte, r *ST2Reply) []byte {
	b = appendU64(b, r.ReqID)
	b = append(b, r.TxID[:]...)
	b = appendU32(b, uint32(r.ShardID))
	b = appendU32(b, uint32(r.ReplicaID))
	b = append(b, byte(r.Decision))
	b = appendU64(b, r.ViewDecision)
	b = appendU64(b, r.ViewCurrent)
	return appendSignature(b, &r.Sig)
}

func appendVoteTally(b []byte, t *VoteTally) []byte {
	b = append(b, t.TxID[:]...)
	b = appendU32(b, uint32(t.ShardID))
	b = append(b, byte(t.Vote))
	b = appendU32(b, uint32(len(t.Replies)))
	for i := range t.Replies {
		b = appendST1Reply(b, &t.Replies[i])
	}
	b = appendDecisionCertOpt(b, t.Conflict)
	return appendTxMetaOpt(b, t.ConflictMeta)
}

func appendShardCert(b []byte, c *ShardCert) []byte {
	b = appendU32(b, uint32(c.ShardID))
	b = append(b, byte(c.Kind), byte(c.Vote))
	b = appendU32(b, uint32(len(c.ST1Rs)))
	for i := range c.ST1Rs {
		b = appendST1Reply(b, &c.ST1Rs[i])
	}
	b = appendU32(b, uint32(len(c.ST2Rs)))
	for i := range c.ST2Rs {
		b = appendST2Reply(b, &c.ST2Rs[i])
	}
	b = appendDecisionCertOpt(b, c.Conflict)
	return appendTxMetaOpt(b, c.ConflictMeta)
}

func appendDecisionCertOpt(b []byte, c *DecisionCert) []byte {
	if c == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = append(b, c.TxID[:]...)
	b = append(b, byte(c.Decision))
	b = appendU32(b, uint32(len(c.Shards)))
	for i := range c.Shards {
		b = appendShardCert(b, &c.Shards[i])
	}
	return b
}

func appendElectFB(b []byte, e *ElectFB) []byte {
	b = append(b, e.TxID[:]...)
	b = appendU32(b, uint32(e.ShardID))
	b = appendU32(b, uint32(e.ReplicaID))
	b = append(b, byte(e.Decision))
	b = appendU64(b, e.View)
	return appendSignature(b, &e.Sig)
}

// --- decode helpers ---

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.err = ErrTruncated
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

// count reads a u32 element count and sanity-bounds it against the
// remaining input (every element occupies at least one byte), so a
// hostile length prefix cannot drive a near-infinite decode loop.
func (d *decoder) count() int {
	n := int(d.u32())
	if d.err == nil && n > len(d.b) {
		d.err = ErrTruncated
		return 0
	}
	return n
}

func (d *decoder) hash32() [32]byte { return [32]byte(d.txid()) }

func (d *decoder) signature() Signature {
	s := Signature{SignerID: int32(d.u32())}
	s.Direct = d.bytes()
	s.Root = d.hash32()
	s.RootSig = d.bytes()
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		s.Proof = append(s.Proof, d.hash32())
	}
	s.Index = d.u32()
	return s
}

func (d *decoder) txMetaOpt() *TxMeta {
	if d.u8() == 0 || d.err != nil {
		return nil
	}
	m, rest, err := DecodeTxMeta(d.b)
	if err != nil {
		d.err = err
		return nil
	}
	d.b = rest
	return m
}

func (d *decoder) committedRead() *CommittedRead {
	if d.u8() == 0 || d.err != nil {
		return nil
	}
	c := &CommittedRead{Value: d.bytes()}
	c.WriterMeta = d.txMetaOpt()
	c.Cert = d.decisionCertOpt(0)
	return c
}

func (d *decoder) preparedRead() *PreparedRead {
	if d.u8() == 0 || d.err != nil {
		return nil
	}
	return &PreparedRead{Value: d.bytes(), WriterMeta: d.txMetaOpt()}
}

func (d *decoder) st1Reply(depth int) *ST1Reply {
	r := &ST1Reply{ReqID: d.u64(), TxID: d.txid(),
		ShardID: int32(d.u32()), ReplicaID: int32(d.u32()), Vote: Vote(d.u8())}
	r.Conflict = d.decisionCertOpt(depth)
	r.ConflictMeta = d.txMetaOpt()
	r.BlockedBy = d.txMetaOpt()
	r.RPKind = RPKind(d.u8())
	r.Decision = Decision(d.u8())
	if d.u8() != 0 && d.err == nil {
		r.ST2R = d.st2Reply()
	}
	r.Cert = d.decisionCertOpt(depth)
	r.CertMeta = d.txMetaOpt()
	r.Sig = d.signature()
	return r
}

func (d *decoder) st2Reply() *ST2Reply {
	return &ST2Reply{ReqID: d.u64(), TxID: d.txid(),
		ShardID: int32(d.u32()), ReplicaID: int32(d.u32()),
		Decision: Decision(d.u8()), ViewDecision: d.u64(), ViewCurrent: d.u64(),
		Sig: d.signature()}
}

func (d *decoder) voteTally(depth int) VoteTally {
	t := VoteTally{TxID: d.txid(), ShardID: int32(d.u32()), Vote: Vote(d.u8())}
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		t.Replies = append(t.Replies, *d.st1Reply(depth))
	}
	t.Conflict = d.decisionCertOpt(depth)
	t.ConflictMeta = d.txMetaOpt()
	return t
}

func (d *decoder) shardCert(depth int) ShardCert {
	c := ShardCert{ShardID: int32(d.u32()), Kind: ShardCertKind(d.u8()), Vote: Vote(d.u8())}
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		c.ST1Rs = append(c.ST1Rs, *d.st1Reply(depth))
	}
	n = d.count()
	for i := 0; i < n && d.err == nil; i++ {
		c.ST2Rs = append(c.ST2Rs, *d.st2Reply())
	}
	c.Conflict = d.decisionCertOpt(depth)
	c.ConflictMeta = d.txMetaOpt()
	return c
}

func (d *decoder) decisionCertOpt(depth int) *DecisionCert {
	if d.u8() == 0 || d.err != nil {
		return nil
	}
	if depth >= maxWireDepth {
		d.err = ErrWireNesting
		return nil
	}
	c := &DecisionCert{TxID: d.txid(), Decision: Decision(d.u8())}
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		c.Shards = append(c.Shards, d.shardCert(depth+1))
	}
	return c
}

func (d *decoder) electFB() *ElectFB {
	return &ElectFB{TxID: d.txid(), ShardID: int32(d.u32()),
		ReplicaID: int32(d.u32()), Decision: Decision(d.u8()), View: d.u64(),
		Sig: d.signature()}
}
