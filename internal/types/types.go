// Package types defines the wire-level vocabulary of the Basil protocol:
// timestamps, transaction metadata, protocol messages, votes, vote tallies
// and decision certificates, together with a deterministic binary encoding
// used for hashing and signing.
//
// Everything here is a plain value type. Messages are immutable once sent;
// the in-process transport passes pointers, so receivers must not mutate
// payloads they did not create.
package types

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Timestamp is the MVTSO transaction timestamp (Time, ClientID). Clients
// choose their own timestamps (paper §4.1); ClientID breaks ties so the
// order is total across clients.
type Timestamp struct {
	Time     uint64
	ClientID uint64
}

// Less reports whether t precedes o in the total serialization order.
func (t Timestamp) Less(o Timestamp) bool {
	if t.Time != o.Time {
		return t.Time < o.Time
	}
	return t.ClientID < o.ClientID
}

// LessEq reports t ≤ o in the total serialization order.
func (t Timestamp) LessEq(o Timestamp) bool { return !o.Less(t) }

// IsZero reports whether t is the zero timestamp (the initial version of
// every key is written at the zero timestamp by the load phase).
func (t Timestamp) IsZero() bool { return t.Time == 0 && t.ClientID == 0 }

// Compare returns -1, 0, or +1 ordering t against o.
func (t Timestamp) Compare(o Timestamp) int {
	switch {
	case t.Less(o):
		return -1
	case o.Less(t):
		return 1
	default:
		return 0
	}
}

func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%d", t.Time, t.ClientID)
}

// TxID identifies a transaction: the SHA-256 digest of its canonical
// metadata encoding. Using a content hash prevents Byzantine clients from
// equivocating a transaction's contents (paper §4.2, ST1).
type TxID [32]byte

func (id TxID) String() string { return hex.EncodeToString(id[:8]) }

// IsZero reports whether the id is unset.
func (id TxID) IsZero() bool { return id == TxID{} }

// ShardIndex returns the deterministic logging-shard choice among the
// transaction's participant shards (paper §4.2 stage 2: Slog is "chosen
// deterministically depending on T's id").
func (id TxID) ShardIndex(nParticipants int) int {
	if nParticipants <= 0 {
		return 0
	}
	// Fold the first 8 bytes; uniform enough for shard selection.
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(id[i])
	}
	return int(v % uint64(nParticipants))
}

// Vote is a replica's concurrency-control verdict for a transaction.
type Vote uint8

const (
	// VoteNone is the absence of a vote.
	VoteNone Vote = iota
	// VoteCommit means the MVTSO check accepted the transaction.
	VoteCommit
	// VoteAbort means the MVTSO check found a serializability conflict.
	VoteAbort
)

func (v Vote) String() string {
	switch v {
	case VoteCommit:
		return "commit"
	case VoteAbort:
		return "abort"
	default:
		return "none"
	}
}

// Decision is the final two-phase-commit outcome of a transaction.
type Decision uint8

const (
	// DecisionNone is the absence of a decision.
	DecisionNone Decision = iota
	// DecisionCommit commits the transaction.
	DecisionCommit
	// DecisionAbort aborts the transaction.
	DecisionAbort
)

func (d Decision) String() string {
	switch d {
	case DecisionCommit:
		return "commit"
	case DecisionAbort:
		return "abort"
	default:
		return "none"
	}
}

// ReadEntry records one read in a transaction's read set: the key and the
// version (writer timestamp) the client observed.
type ReadEntry struct {
	Key     string
	Version Timestamp
}

// WriteEntry records one buffered write.
type WriteEntry struct {
	Key   string
	Value []byte
}

// Dependency is a write-read dependency on a prepared-but-uncommitted
// transaction: the reader may not commit until the writer does.
type Dependency struct {
	TxID    TxID
	Version Timestamp // the prepared version that was read
}

// TxMeta is the full transaction metadata shipped in ST1 messages. Its
// canonical encoding hashes to the transaction id, so Byzantine clients
// cannot present different contents to different replicas.
type TxMeta struct {
	Timestamp Timestamp
	ReadSet   []ReadEntry
	WriteSet  []WriteEntry
	Deps      []Dependency
	// Shards lists the participant shard ids, sorted ascending. It is part
	// of the signed metadata so clients cannot spoof the participant list.
	Shards []int32
}

// ID computes the transaction id: SHA-256 over the canonical encoding.
func (m *TxMeta) ID() TxID {
	return TxID(sha256.Sum256(m.AppendCanonical(nil)))
}

// ReadsKey reports whether the read set contains key, returning the version.
func (m *TxMeta) ReadsKey(key string) (Timestamp, bool) {
	for _, r := range m.ReadSet {
		if r.Key == key {
			return r.Version, true
		}
	}
	return Timestamp{}, false
}

// WritesKey reports whether the write set contains key.
func (m *TxMeta) WritesKey(key string) bool {
	for _, w := range m.WriteSet {
		if w.Key == key {
			return true
		}
	}
	return false
}

// HasShard reports whether shard s participates in the transaction.
func (m *TxMeta) HasShard(s int32) bool {
	for _, sh := range m.Shards {
		if sh == s {
			return true
		}
	}
	return false
}

// LogShard returns the deterministic logging shard for the transaction
// (one of its participants).
func (m *TxMeta) LogShard() int32 {
	if len(m.Shards) == 0 {
		return 0
	}
	return m.Shards[m.ID().ShardIndex(len(m.Shards))]
}
