package types

import (
	"encoding/binary"
	"errors"
)

// Canonical binary encoding.
//
// The encoding is deterministic (field order fixed, lengths explicit) so
// that hashing and signing are stable across nodes. It is deliberately
// hand-rolled rather than gob/json: signatures must cover exact bytes, and
// map iteration or struct-tag drift would silently break certificate
// verification between honest nodes.

// appendU64 appends v in big-endian order.
func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

// appendU32 appends v in big-endian order.
func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

// appendBytes appends a length-prefixed byte string.
func appendBytes(b, s []byte) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// AppendCanonical appends the timestamp's canonical encoding to b.
func (t Timestamp) AppendCanonical(b []byte) []byte {
	b = appendU64(b, t.Time)
	return appendU64(b, t.ClientID)
}

// AppendCanonical appends the read entry's canonical encoding to b.
func (r ReadEntry) AppendCanonical(b []byte) []byte {
	b = appendString(b, r.Key)
	return r.Version.AppendCanonical(b)
}

// AppendCanonical appends the write entry's canonical encoding to b.
func (w WriteEntry) AppendCanonical(b []byte) []byte {
	b = appendString(b, w.Key)
	return appendBytes(b, w.Value)
}

// AppendCanonical appends the dependency's canonical encoding to b.
func (d Dependency) AppendCanonical(b []byte) []byte {
	b = append(b, d.TxID[:]...)
	return d.Version.AppendCanonical(b)
}

// AppendCanonical appends the transaction metadata's canonical encoding to
// b. TxMeta.ID hashes exactly these bytes.
func (m *TxMeta) AppendCanonical(b []byte) []byte {
	b = m.Timestamp.AppendCanonical(b)
	b = appendU32(b, uint32(len(m.ReadSet)))
	for _, r := range m.ReadSet {
		b = r.AppendCanonical(b)
	}
	b = appendU32(b, uint32(len(m.WriteSet)))
	for _, w := range m.WriteSet {
		b = w.AppendCanonical(b)
	}
	b = appendU32(b, uint32(len(m.Deps)))
	for _, d := range m.Deps {
		b = d.AppendCanonical(b)
	}
	b = appendU32(b, uint32(len(m.Shards)))
	for _, s := range m.Shards {
		b = appendU32(b, uint32(s))
	}
	return b
}

// ErrTruncated reports a short canonical encoding during decode.
var ErrTruncated = errors.New("types: truncated encoding")

// decoder is a cursor over a canonical encoding.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = ErrTruncated
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b)
	d.b = d.b[n:]
	return v
}

func (d *decoder) str() string { return string(d.bytes()) }

func (d *decoder) ts() Timestamp {
	return Timestamp{Time: d.u64(), ClientID: d.u64()}
}

func (d *decoder) txid() TxID {
	if d.err != nil {
		return TxID{}
	}
	if len(d.b) < 32 {
		d.err = ErrTruncated
		return TxID{}
	}
	var id TxID
	copy(id[:], d.b)
	d.b = d.b[32:]
	return id
}

// DecodeTxMeta parses a canonical TxMeta encoding produced by
// AppendCanonical. It returns the remaining bytes.
func DecodeTxMeta(b []byte) (*TxMeta, []byte, error) {
	d := &decoder{b: b}
	m := &TxMeta{Timestamp: d.ts()}
	nr := int(d.u32())
	if d.err == nil && nr > len(d.b) { // each entry ≥ 20 bytes; cheap sanity bound
		return nil, nil, ErrTruncated
	}
	for i := 0; i < nr && d.err == nil; i++ {
		m.ReadSet = append(m.ReadSet, ReadEntry{Key: d.str(), Version: d.ts()})
	}
	nw := int(d.u32())
	if d.err == nil && nw > len(d.b) {
		return nil, nil, ErrTruncated
	}
	for i := 0; i < nw && d.err == nil; i++ {
		m.WriteSet = append(m.WriteSet, WriteEntry{Key: d.str(), Value: d.bytes()})
	}
	nd := int(d.u32())
	if d.err == nil && nd > len(d.b) {
		return nil, nil, ErrTruncated
	}
	for i := 0; i < nd && d.err == nil; i++ {
		m.Deps = append(m.Deps, Dependency{TxID: d.txid(), Version: d.ts()})
	}
	ns := int(d.u32())
	if d.err == nil && ns > len(d.b) {
		return nil, nil, ErrTruncated
	}
	for i := 0; i < ns && d.err == nil; i++ {
		m.Shards = append(m.Shards, int32(d.u32()))
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	return m, d.b, nil
}
