package store

import (
	"encoding/binary"
	"fmt"

	"repro/internal/types"
)

// Checkpoint snapshot codec.
//
// Snapshot serializes the store's durable state — version chains
// (committed and prepared), reader records, the transaction table with
// metadata and certificates, and the restart RTS floor — in the same
// deterministic style as the canonical wire codec (fixed field order,
// explicit lengths, big-endian integers). RTS entries are deliberately
// absent: they protect ongoing reads, which do not survive a restart;
// the rtsFloor conservatively stands in for them.
//
// Restore is the inverse and requires an empty store. It returns the
// undecoded remainder so callers (the replica) can append their own
// section after the store's, plus the maximum timestamp observed, which
// feeds the restart RTS floor.

// snapVersion is the snapshot format version byte.
const snapVersion = 1

// Snapshot appends the store's durable state to b. It takes the global
// lock exclusively, so the captured state is a consistent cut.
func (s *Store) Snapshot(b []byte) []byte {
	s.global.Lock()
	defer s.global.Unlock()
	b = append(b, snapVersion)
	b = s.rtsFloor.AppendCanonical(b)

	b = binary.BigEndian.AppendUint32(b, uint32(len(s.txns)))
	for id, rec := range s.txns {
		b = append(b, id[:]...)
		b = append(b, byte(rec.Status))
		b = snapMetaOpt(b, rec.Meta)
		b = types.AppendDecisionCert(b, rec.Cert)
	}

	nKeys := 0
	for si := range s.stripes {
		nKeys += len(s.stripes[si].keys)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(nKeys))
	for si := range s.stripes {
		for k, e := range s.stripes[si].keys {
			b = snapString(b, k)
			b = binary.BigEndian.AppendUint32(b, uint32(len(e.writes)))
			for i := range e.writes {
				w := &e.writes[i]
				b = w.ver.AppendCanonical(b)
				b = append(b, w.writer[:]...)
				if w.committed {
					b = append(b, 1)
				} else {
					b = append(b, 0)
				}
				b = snapBytes(b, w.value)
			}
			b = binary.BigEndian.AppendUint32(b, uint32(len(e.readers)))
			for _, r := range e.readers {
				b = r.readerTs.AppendCanonical(b)
				b = r.readVer.AppendCanonical(b)
				b = append(b, r.reader[:]...)
			}
		}
	}
	return b
}

// Restore rebuilds the store from a Snapshot encoding. The store must be
// empty (freshly constructed). It returns the bytes following the store
// section and the maximum timestamp seen anywhere in the snapshot.
func (s *Store) Restore(data []byte) (rest []byte, maxTs types.Timestamp, err error) {
	s.global.Lock()
	defer s.global.Unlock()
	d := &snapDecoder{b: data}
	if v := d.u8(); d.err == nil && v != snapVersion {
		return nil, maxTs, fmt.Errorf("store: unknown snapshot version %d", v)
	}
	floor := d.ts()
	if s.rtsFloor.Less(floor) {
		s.rtsFloor = floor
	}
	bump := func(ts types.Timestamp) {
		if maxTs.Less(ts) {
			maxTs = ts
		}
	}
	bump(floor)

	nTx := int(d.u32())
	for i := 0; i < nTx && d.err == nil; i++ {
		id := d.txid()
		rec := &TxRecord{Status: TxStatus(d.u8())}
		rec.Meta = d.metaOpt()
		rec.Cert = d.certOpt()
		if d.err != nil {
			break
		}
		if rec.Meta != nil {
			bump(rec.Meta.Timestamp)
		}
		s.txns[id] = rec
	}

	nKeys := int(d.u32())
	for i := 0; i < nKeys && d.err == nil; i++ {
		k := d.str()
		e := s.stripeOf(k).entry(k)
		nW := int(d.u32())
		for j := 0; j < nW && d.err == nil; j++ {
			var w writeRec
			w.ver = d.ts()
			w.writer = d.txid()
			w.committed = d.u8() == 1
			w.value = d.bytes()
			e.writes = append(e.writes, w)
			bump(w.ver)
		}
		nR := int(d.u32())
		for j := 0; j < nR && d.err == nil; j++ {
			var r readRec
			r.readerTs = d.ts()
			r.readVer = d.ts()
			r.reader = d.txid()
			e.readers = append(e.readers, r)
			bump(r.readerTs)
		}
	}
	if d.err != nil {
		return nil, maxTs, fmt.Errorf("store: snapshot decode: %w", d.err)
	}
	return d.b, maxTs, nil
}

// RestorePrepared reinstates a prepared transaction during WAL replay:
// the check already passed pre-crash (the logged commit vote proves it),
// so the writes and reader records are installed directly, without
// re-running Algorithm 1 against the partially rebuilt state. No-op if
// the transaction is already known (snapshot + log-suffix overlap).
func (s *Store) RestorePrepared(meta *types.TxMeta, id types.TxID) bool {
	s.global.Lock()
	defer s.global.Unlock()
	if s.txns[id] != nil {
		return false
	}
	s.txns[id] = &TxRecord{Meta: meta, Status: StatusPrepared}
	ts := meta.Timestamp
	for _, w := range meta.WriteSet {
		s.stripeOf(w.Key).entry(w.Key).insertWrite(writeRec{ver: ts, value: w.Value, writer: id})
	}
	for _, r := range meta.ReadSet {
		e := s.stripeOf(r.Key).entry(r.Key)
		e.readers = append(e.readers, readRec{readerTs: ts, readVer: r.Version, reader: id})
	}
	return true
}

// --- tiny codec helpers (same idiom as internal/types/encode.go) ---

func snapString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func snapBytes(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

func snapMetaOpt(b []byte, m *types.TxMeta) []byte {
	if m == nil {
		return append(b, 0)
	}
	return m.AppendCanonical(append(b, 1))
}

type snapDecoder struct {
	b   []byte
	err error
}

func (d *snapDecoder) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *snapDecoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	// Every count or length prefixes data of at least one byte per unit,
	// so a value beyond the remaining input is corruption; failing here
	// keeps a corrupt length from driving a huge allocation loop.
	if uint64(v) > uint64(len(d.b)) {
		d.err = types.ErrTruncated
		return 0
	}
	return v
}

func (d *snapDecoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *snapDecoder) ts() types.Timestamp {
	return types.Timestamp{Time: d.u64(), ClientID: d.u64()}
}

func (d *snapDecoder) txid() types.TxID {
	if d.err != nil || len(d.b) < 32 {
		d.fail()
		return types.TxID{}
	}
	var id types.TxID
	copy(id[:], d.b)
	d.b = d.b[32:]
	return id
}

func (d *snapDecoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || len(d.b) < n {
		d.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b)
	d.b = d.b[n:]
	return v
}

func (d *snapDecoder) str() string { return string(d.bytes()) }

func (d *snapDecoder) metaOpt() *types.TxMeta {
	if d.u8() == 0 || d.err != nil {
		return nil
	}
	m, rest, err := types.DecodeTxMeta(d.b)
	if err != nil {
		d.err = err
		return nil
	}
	d.b = rest
	return m
}

func (d *snapDecoder) certOpt() *types.DecisionCert {
	if d.err != nil {
		return nil
	}
	c, rest, err := types.DecodeDecisionCert(d.b)
	if err != nil {
		d.err = err
		return nil
	}
	d.b = rest
	return c
}

func (d *snapDecoder) fail() {
	if d.err == nil {
		d.err = types.ErrTruncated
	}
}
