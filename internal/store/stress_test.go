package store

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

// committedVersion reports whether key holds a committed write at
// exactly ver, returning its value. Post-storm oracle helper.
func (s *Store) committedVersion(key string, ver types.Timestamp) ([]byte, bool) {
	s.global.RLock()
	defer s.global.RUnlock()
	st := s.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.keys[key]
	if e == nil {
		return nil, false
	}
	for i := range e.writes {
		if e.writes[i].committed && e.writes[i].ver == ver {
			return e.writes[i].value, true
		}
	}
	return nil, false
}

// checkInvariants validates the store's internal consistency. It is the
// oracle of the concurrent stress battery and runs after the storm (no
// concurrent mutators), so it may walk internals freely.
func (s *Store) checkInvariants() error {
	// maxRTS matches the live RTS entries exactly: it dominates every
	// outstanding entry AND is attained by one (or zero when none
	// remain). A stale upper bound is the bug class GC and dropRTS both
	// had — it silently aborts every writer below a dead read forever.
	for si := range s.stripes {
		for k, e := range s.stripes[si].keys {
			var want types.Timestamp
			for ts := range e.rts {
				if want.Less(ts) {
					want = ts
				}
			}
			if e.maxRTS != want {
				return fmt.Errorf("key %q: maxRTS %v, live RTS max %v", k, e.maxRTS, want)
			}
			// Version chains sorted strictly ascending.
			for i := 1; i < len(e.writes); i++ {
				if !e.writes[i-1].ver.Less(e.writes[i].ver) {
					return fmt.Errorf("key %q: version chain out of order at %d", k, i)
				}
			}
			// Keys live on the stripe their hash selects.
			if s.stripeIdx(k) != si {
				return fmt.Errorf("key %q on stripe %d, hashes to %d", k, si, s.stripeIdx(k))
			}
		}
	}
	// Prepared/committed/aborted sets consistent with per-key state.
	for id, rec := range s.txns {
		if rec.Meta == nil {
			continue
		}
		for _, w := range rec.Meta.WriteSet {
			e := s.stripeOf(w.Key).keys[w.Key]
			var found *writeRec
			if e != nil {
				for i := range e.writes {
					if e.writes[i].writer == id {
						found = &e.writes[i]
						break
					}
				}
			}
			switch rec.Status {
			case StatusPrepared:
				if found == nil || found.committed {
					return fmt.Errorf("tx %v prepared but write on %q missing or committed", id, w.Key)
				}
			case StatusCommitted:
				if found == nil || !found.committed {
					// GC may legitimately have collected an old committed
					// version; only flag it if a newer committed version of
					// the key does not exist.
					newer := false
					if e != nil {
						for i := range e.writes {
							if e.writes[i].committed && rec.Meta.Timestamp.Less(e.writes[i].ver) {
								newer = true
							}
						}
					}
					if !newer {
						return fmt.Errorf("tx %v committed but write on %q lost", id, w.Key)
					}
				}
			case StatusAborted:
				if found != nil {
					return fmt.Errorf("tx %v aborted but write on %q survived", id, w.Key)
				}
			}
		}
	}
	return nil
}

// stressModel tracks, per goroutine, what the storm committed; merged
// after the join it is the ground truth reads are checked against.
type stressModel struct {
	mu        sync.Mutex
	committed []*types.TxMeta
}

func (m *stressModel) commit(meta *types.TxMeta) {
	m.mu.Lock()
	m.committed = append(m.committed, meta)
	m.mu.Unlock()
}

// TestStoreConcurrentStress hammers one store from many goroutines with
// interleaved Read/CheckAndPrepare/Finalize/RemovePrepared/DropRTS/GC on
// overlapping keys — plus a dedicated GC goroutine advancing a watermark
// through the storm — then asserts the invariants the replica layer
// relies on: no committed write lost, no version at or above the final
// watermark lost, maxRTS matching the live RTS entries exactly, and the
// prepared set consistent with the per-key version chains. Run it under
// -race (it is part of `make test-race`): the interleavings, not the
// assertions, are the point.
func TestStoreConcurrentStress(t *testing.T) {
	const (
		workers = 8
		rounds  = 400
		nKeys   = 16
	)
	for _, stripes := range []int{1, 8, 64} {
		t.Run(fmt.Sprintf("stripes=%d", stripes), func(t *testing.T) {
			s := NewStriped(stripes)
			keys := make([]string, nKeys)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%02d", i)
				s.ApplyGenesis(keys[i], []byte{0})
			}
			var model stressModel
			var clock struct {
				mu sync.Mutex
				t  uint64
			}
			nextTs := func(worker int) types.Timestamp {
				clock.mu.Lock()
				clock.t++
				ts := types.Timestamp{Time: clock.t, ClientID: uint64(worker + 1)}
				clock.mu.Unlock()
				return ts
			}
			now := func() uint64 {
				clock.mu.Lock()
				defer clock.mu.Unlock()
				return clock.t
			}

			// The GC goroutine sweeps a watermark trailing the issued
			// timestamps for the whole storm; highWater is the largest
			// watermark any GC pass (goroutine or in-worker op) used, the
			// line the post-storm loss oracle is checked against.
			var highWater atomic.Uint64
			gcAt := func(w uint64) {
				for {
					cur := highWater.Load()
					if w <= cur || highWater.CompareAndSwap(cur, w) {
						break
					}
				}
				s.GC(types.Timestamp{Time: w})
			}
			gcDone := make(chan struct{})
			var gcWG sync.WaitGroup
			gcWG.Add(1)
			go func() {
				defer gcWG.Done()
				for {
					select {
					case <-gcDone:
						return
					default:
					}
					gcAt(now() / 2)
					time.Sleep(100 * time.Microsecond)
				}
			}()

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				rng := rand.New(rand.NewSource(int64(w)*7919 + 13))
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						ts := nextTs(w)
						switch op := rng.Intn(10); {
						case op < 2: // plain read, sometimes released
							k := keys[rng.Intn(nKeys)]
							s.Read(k, ts)
							if rng.Intn(2) == 0 {
								s.DropRTS([]string{k}, ts)
							}
						case op < 9: // transaction attempt
							m := &types.TxMeta{Timestamp: ts, Shards: []int32{0}}
							for _, ki := range rng.Perm(nKeys)[:1+rng.Intn(3)] {
								k := keys[ki]
								res := s.Read(k, ts)
								var ver types.Timestamp
								if res.Committed != nil {
									ver = res.Committed.Version()
								}
								m.ReadSet = append(m.ReadSet, types.ReadEntry{Key: k, Version: ver})
							}
							for _, ki := range rng.Perm(nKeys)[:1+rng.Intn(2)] {
								m.WriteSet = append(m.WriteSet,
									types.WriteEntry{Key: keys[ki], Value: []byte{byte(w + 1), byte(i)}})
							}
							id := m.ID()
							if s.CheckAndPrepare(m, id).Outcome != CheckOK {
								for _, r := range m.ReadSet {
									s.DropRTS([]string{r.Key}, ts)
								}
								continue
							}
							switch rng.Intn(6) {
							case 0:
								s.Finalize(id, m, types.DecisionAbort, nil)
							case 1:
								s.RemovePrepared(id)
							case 2:
								// Leave prepared: an undecided transaction
								// must survive the storm intact.
							default:
								s.Finalize(id, m, types.DecisionCommit, nil)
								model.commit(m)
							}
						case op == 9: // background maintenance
							if rng.Intn(2) == 0 {
								gcAt(ts.Time / 2)
							} else {
								s.StatsSnapshot()
							}
						}
					}
				}()
			}
			wg.Wait()
			close(gcDone)
			gcWG.Wait()
			finalWater := types.Timestamp{Time: highWater.Load()}

			if err := s.checkInvariants(); err != nil {
				t.Fatalf("invariant violated after storm: %v", err)
			}
			// No version at or above the watermark is lost: GC only drops
			// committed versions strictly below the newest one at or below
			// its watermark, so every model commit from the watermark up
			// must still be present, byte for byte.
			checkedAbove := 0
			for _, m := range model.committed {
				if m.Timestamp.Less(finalWater) {
					continue
				}
				checkedAbove++
				for _, w := range m.WriteSet {
					ver, ok := s.committedVersion(w.Key, m.Timestamp)
					if !ok {
						t.Fatalf("version %v of %q (at/above watermark %v) lost",
							m.Timestamp, w.Key, finalWater)
					}
					if string(ver) != string(w.Value) {
						t.Fatalf("version %v of %q diverged", m.Timestamp, w.Key)
					}
				}
			}
			if checkedAbove == 0 && len(model.committed) > 0 {
				t.Log("watermark overtook every commit; loss oracle vacuous this run")
			}
			// No committed write lost: per key, the newest committed write in
			// the model must be exactly what LatestCommitted serves.
			bestByKey := make(map[string]*types.TxMeta)
			for _, m := range model.committed {
				for _, w := range m.WriteSet {
					if cur := bestByKey[w.Key]; cur == nil || cur.Timestamp.Less(m.Timestamp) {
						bestByKey[w.Key] = m
					}
				}
			}
			for k, m := range bestByKey {
				ver, val, ok := s.LatestCommitted(k)
				if !ok {
					t.Fatalf("key %q: committed write at %v lost entirely", k, m.Timestamp)
				}
				if ver != m.Timestamp {
					t.Fatalf("key %q: latest committed %v, model says %v", k, ver, m.Timestamp)
				}
				var want []byte
				for _, w := range m.WriteSet {
					if w.Key == k {
						want = w.Value
					}
				}
				if string(val) != string(want) {
					t.Fatalf("key %q: committed value diverged", k)
				}
			}
			// Every model commit at or above the watermark is recorded
			// committed; below it, GC may legitimately have collected the
			// finalized record (but must never have flipped it).
			for _, m := range model.committed {
				switch st := s.TxStatusOf(m.ID()); st {
				case StatusCommitted:
				case StatusUnknown:
					if !m.Timestamp.Less(finalWater) {
						t.Fatalf("committed tx %v (at/above watermark) collected", m.ID())
					}
				default:
					t.Fatalf("committed tx %v recorded as %v", m.ID(), st)
				}
			}
		})
	}
}
