package store

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/types"
)

// parallelBenchOut makes `go test -run TestWriteParallelBench` write the
// pipeline-vs-baseline prepare comparison as JSON (used by `make bench` to
// record the perf trajectory in BENCH_parallel.json). Empty = skipped.
var parallelBenchOut = flag.String("parallelbench", "", "write the parallel prepare benchmark results as JSON to this file")

// signedST1 is one pre-signed prepare message for the pipeline benchmark.
type signedST1 struct {
	meta    *types.TxMeta
	id      types.TxID
	payload []byte
	sig     types.Signature
}

// genSignedST1s builds n disjoint-key single-write transactions, each
// signed by one of the registry's keys — the crypto shape of an ST1 vote.
func genSignedST1s(reg *cryptoutil.Registry, n int) []signedST1 {
	msgs := make([]signedST1, n)
	for i := range msgs {
		m := &types.TxMeta{
			Timestamp: types.Timestamp{Time: uint64(i + 1), ClientID: 1 + uint64(i%64)},
			WriteSet:  []types.WriteEntry{{Key: fmt.Sprintf("key-%04d", i%512), Value: []byte("v")}},
			Shards:    []int32{0},
		}
		id := m.ID()
		signer := int32(i % 6)
		payload := id[:]
		msgs[i] = signedST1{
			meta:    m,
			id:      id,
			payload: payload,
			sig:     types.Signature{SignerID: signer, Direct: reg.Signer(signer).Sign(payload)},
		}
	}
	return msgs
}

// deliverSeedSerial processes one delivery the way the seed replica did:
// one mutex serializes the whole handler, with signature verification
// inside the critical section and a single-stripe store.
func deliverSeedSerial(mu *sync.Mutex, reg *cryptoutil.Registry, s *Store, m *signedST1) {
	mu.Lock()
	defer mu.Unlock()
	if !reg.Verify(m.sig.SignerID, m.payload, m.sig.Direct) {
		panic("benchmark: bad signature")
	}
	s.CheckAndPrepare(m.meta, m.id)
}

// deliverPipeline processes one delivery the way the parallel pipeline
// does: verification off every lock through the digest-caching verifier,
// then the striped store.
func deliverPipeline(sv *cryptoutil.SigVerifier, s *Store, m *signedST1) {
	sig := m.sig
	if !sv.Verify(m.payload, &sig) {
		panic("benchmark: bad signature")
	}
	s.CheckAndPrepare(m.meta, m.id)
}

// deliverPipelineMetrics is deliverPipeline plus exactly the
// instrumentation the replica's dispatch wraps around it when metrics
// are live: the per-kind deliver-latency clock pair. The store-side
// counters ride along when the store was built by metricsStore. The
// pipeline-vs-pipeline-metrics gap is therefore the full observability
// tax on the hot path (acceptance bound: <2%).
func deliverPipelineMetrics(sv *cryptoutil.SigVerifier, s *Store, h *metrics.Histogram, m *signedST1) {
	t0 := time.Now()
	deliverPipeline(sv, s, m)
	h.Since(t0)
}

// metricsStore builds a striped store with live instrumentation (the
// counters a replica installs via SetMetrics) plus a deliver histogram.
func metricsStore() (*Store, *metrics.Histogram) {
	reg := metrics.NewRegistry()
	s := NewStriped(DefaultStripes)
	s.SetMetrics(RegistryMetrics(reg))
	return s, reg.Histogram("basil_replica_deliver_latency_seconds", "kind", "st1")
}

// BenchmarkPrepareParallel compares the replica ingest architectures on a
// disjoint-key prepare workload at whatever GOMAXPROCS is in effect
// (`make bench` pins 4). Each op is one delivered, signed ST1 and every
// message is delivered twice — votes really are re-verified on
// re-delivery and when tallies/certificates re-carry them — so:
//
//   - seed-serial: the pre-PR shape. One lock around verify+check, no
//     verified-digest cache, single-stripe store: both deliveries pay the
//     full ed25519 verification inside the global critical section.
//   - pipeline: this PR's shape. Verification outside any lock through
//     the digest cache (the re-delivery hits), striped store.
//
// Run with -benchtime=2000x (as `make bench` does) so the 4096 pre-signed
// messages are not reused and every message sees exactly two deliveries.
func BenchmarkPrepareParallel(b *testing.B) {
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, 6, 1)
	msgs := genSignedST1s(reg, 4096)

	b.Run("seed-serial", func(b *testing.B) {
		var mu sync.Mutex
		s := NewStriped(1)
		var seq atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				m := &msgs[int(seq.Add(1))%len(msgs)]
				deliverSeedSerial(&mu, reg, s, m)
				deliverSeedSerial(&mu, reg, s, m)
			}
		})
	})
	b.Run("pipeline", func(b *testing.B) {
		sv := cryptoutil.NewSigVerifier(reg, 4096)
		s := NewStriped(DefaultStripes)
		var seq atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				m := &msgs[int(seq.Add(1))%len(msgs)]
				deliverPipeline(sv, s, m)
				deliverPipeline(sv, s, m)
			}
		})
	})
	b.Run("pipeline-metrics", func(b *testing.B) {
		sv := cryptoutil.NewSigVerifier(reg, 4096)
		s, h := metricsStore()
		var seq atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				m := &msgs[int(seq.Add(1))%len(msgs)]
				deliverPipelineMetrics(sv, s, h, m)
				deliverPipelineMetrics(sv, s, h, m)
			}
		})
	})
}

// BenchmarkPrepareStoreOnly isolates the locking regimes without crypto:
// raw disjoint-key CheckAndPrepare throughput on the single-stripe store
// versus the striped store. On multi-core hardware this is where the
// stripe parallelism shows; on a single core the two converge (there is
// no second core to run the disjoint prepare on).
func BenchmarkPrepareStoreOnly(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		stripes int
	}{
		{"global-lock", 1},
		{fmt.Sprintf("striped-%d", DefaultStripes), DefaultStripes},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s := NewStriped(cfg.stripes)
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					m := &types.TxMeta{
						Timestamp: types.Timestamp{Time: n, ClientID: 1 + n%64},
						WriteSet:  []types.WriteEntry{{Key: fmt.Sprintf("key-%03d", n%512), Value: []byte("v")}},
						Shards:    []int32{0},
					}
					if s.CheckAndPrepare(m, m.ID()).Outcome != CheckOK {
						b.Fatal("disjoint-key prepare rejected")
					}
				}
			})
		})
	}
}

// parallelBenchResult is one row of BENCH_parallel.json.
type parallelBenchResult struct {
	Name           string  `json:"name"`
	Stripes        int     `json:"stripes"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	NsPerOp        float64 `json:"ns_per_op"`
	PreparesPerSec float64 `json:"prepares_per_sec"`
}

// measureFixed times `total` ops (two deliveries each) spread over
// GOMAXPROCS goroutines and returns ns per op. Fixed iteration counts
// keep the two configurations' allocation footprints identical, which
// auto-scaled b.N would not.
func measureFixed(total, workers int, deliver func(m *signedST1), msgs []signedST1) float64 {
	var seq atomic.Uint64
	var wg sync.WaitGroup
	per := total / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m := &msgs[int(seq.Add(1))%len(msgs)]
				deliver(m)
				deliver(m)
			}
		}()
	}
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) / float64(per*workers)
}

// TestWriteParallelBench runs the architecture comparison at GOMAXPROCS=4
// with exactly-twice delivery of 4000 pre-signed prepares, and writes the
// result (plus the speedup) as JSON. Skipped unless -parallelbench names
// an output file, so the regular test run stays fast.
func TestWriteParallelBench(t *testing.T) {
	if *parallelBenchOut == "" {
		t.Skip("no -parallelbench output file given")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const total = 4000
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, 6, 1)

	best := func(run func() float64) float64 {
		b := run()
		for i := 0; i < 2; i++ {
			if v := run(); v < b {
				b = v
			}
		}
		return b
	}
	seedNs := best(func() float64 {
		var mu sync.Mutex
		s := NewStriped(1)
		msgs := genSignedST1s(reg, total)
		return measureFixed(total, 4, func(m *signedST1) { deliverSeedSerial(&mu, reg, s, m) }, msgs)
	})
	pipeNs := best(func() float64 {
		sv := cryptoutil.NewSigVerifier(reg, total)
		s := NewStriped(DefaultStripes)
		msgs := genSignedST1s(reg, total)
		return measureFixed(total, 4, func(m *signedST1) { deliverPipeline(sv, s, m) }, msgs)
	})
	metricsNs := best(func() float64 {
		sv := cryptoutil.NewSigVerifier(reg, total)
		s, h := metricsStore()
		msgs := genSignedST1s(reg, total)
		return measureFixed(total, 4, func(m *signedST1) { deliverPipelineMetrics(sv, s, h, m) }, msgs)
	})

	out := struct {
		Benchmark string                `json:"benchmark"`
		Workload  string                `json:"workload"`
		Results   []parallelBenchResult `json:"results"`
		Speedup   float64               `json:"speedup_pipeline_over_seed"`
		// MetricsOverheadPct is the observability tax: the pipeline with
		// live metrics (deliver-latency histogram + store counters)
		// relative to the uninstrumented pipeline. Must stay below 2.
		MetricsOverheadPct float64 `json:"metrics_overhead_pct"`
	}{
		Benchmark: "BenchmarkPrepareParallel",
		Workload:  "disjoint-key signed prepares, every message delivered twice (re-delivery/tally re-carriage)",
		Results: []parallelBenchResult{
			{Name: "seed-serial (verify under one lock, no cache)", Stripes: 1, GoMaxProcs: 4,
				NsPerOp: seedNs, PreparesPerSec: 1e9 / seedNs},
			{Name: "pipeline (off-lock cached verify, striped store)", Stripes: DefaultStripes, GoMaxProcs: 4,
				NsPerOp: pipeNs, PreparesPerSec: 1e9 / pipeNs},
			{Name: "pipeline-metrics (live deliver histogram + store counters)", Stripes: DefaultStripes, GoMaxProcs: 4,
				NsPerOp: metricsNs, PreparesPerSec: 1e9 / metricsNs},
		},
		Speedup:            seedNs / pipeNs,
		MetricsOverheadPct: (metricsNs - pipeNs) / pipeNs * 100,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*parallelBenchOut, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", *parallelBenchOut, err)
	}
	t.Logf("seed-serial: %.0f ns/op, pipeline: %.0f ns/op (speedup %.2fx), with metrics: %.0f ns/op (overhead %.2f%%)",
		seedNs, pipeNs, out.Speedup, metricsNs, out.MetricsOverheadPct)
}
