package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func ts(t, c uint64) types.Timestamp { return types.Timestamp{Time: t, ClientID: c} }

func meta(at types.Timestamp, reads map[string]types.Timestamp, writes map[string]string) *types.TxMeta {
	m := &types.TxMeta{Timestamp: at, Shards: []int32{0}}
	for k, v := range reads {
		m.ReadSet = append(m.ReadSet, types.ReadEntry{Key: k, Version: v})
	}
	for k, v := range writes {
		m.WriteSet = append(m.WriteSet, types.WriteEntry{Key: k, Value: []byte(v)})
	}
	return m
}

func mustPrepare(t *testing.T, s *Store, m *types.TxMeta) types.TxID {
	t.Helper()
	id := m.ID()
	res := s.CheckAndPrepare(m, id)
	if res.Outcome != CheckOK {
		t.Fatalf("prepare failed: %v", res.Outcome)
	}
	return id
}

func TestGenesisRead(t *testing.T) {
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	r := s.Read("x", ts(10, 1))
	if r.Committed == nil || string(r.Committed.Value) != "v0" {
		t.Fatal("genesis read failed")
	}
	if !r.Committed.Version().IsZero() {
		t.Fatal("genesis version must be zero")
	}
}

func TestPrepareMakesWritesVisible(t *testing.T) {
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	m := meta(ts(5, 1), nil, map[string]string{"x": "v5"})
	mustPrepare(t, s, m)
	r := s.Read("x", ts(10, 1))
	if r.Prepared == nil || string(r.Prepared.Value) != "v5" {
		t.Fatal("prepared write not visible")
	}
	if r.Committed == nil || string(r.Committed.Value) != "v0" {
		t.Fatal("committed branch should still be genesis")
	}
	// Reads below the prepared version must not see it.
	r2 := s.Read("x", ts(3, 1))
	if r2.Prepared != nil {
		t.Fatal("prepared write visible to earlier timestamp")
	}
}

func TestCommitPromotesWrite(t *testing.T) {
	s := New()
	m := meta(ts(5, 1), nil, map[string]string{"x": "v5"})
	id := mustPrepare(t, s, m)
	if !s.Finalize(id, m, types.DecisionCommit, nil) {
		t.Fatal("finalize returned false")
	}
	r := s.Read("x", ts(10, 1))
	if r.Committed == nil || string(r.Committed.Value) != "v5" {
		t.Fatal("committed write not readable")
	}
	if r.Prepared != nil {
		t.Fatal("prepared branch should be gone once committed")
	}
	if s.TxStatusOf(id) != StatusCommitted {
		t.Fatal("status not committed")
	}
}

func TestAbortRemovesWrite(t *testing.T) {
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	m := meta(ts(5, 1), nil, map[string]string{"x": "v5"})
	id := mustPrepare(t, s, m)
	s.Finalize(id, m, types.DecisionAbort, nil)
	r := s.Read("x", ts(10, 1))
	if r.Prepared != nil || string(r.Committed.Value) != "v0" {
		t.Fatal("aborted write leaked")
	}
}

func TestFinalizeIdempotentAndStable(t *testing.T) {
	s := New()
	m := meta(ts(5, 1), nil, map[string]string{"x": "v5"})
	id := mustPrepare(t, s, m)
	s.Finalize(id, m, types.DecisionCommit, nil)
	// A later conflicting decision must not change the outcome.
	if s.Finalize(id, m, types.DecisionAbort, nil) {
		t.Fatal("second finalize changed state")
	}
	if s.TxStatusOf(id) != StatusCommitted {
		t.Fatal("decision flipped")
	}
}

func TestReadMissedWriteAborts(t *testing.T) {
	// Algorithm 1 lines 7-8: T read version 0 but a committed write at
	// ts 5 < ts(T) exists: T must abort.
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	w := meta(ts(5, 1), nil, map[string]string{"x": "v5"})
	id := mustPrepare(t, s, w)
	s.Finalize(id, w, types.DecisionCommit, nil)

	r := meta(ts(10, 2), map[string]types.Timestamp{"x": {}}, map[string]string{"y": "q"})
	res := s.CheckAndPrepare(r, r.ID())
	if res.Outcome != CheckAbort {
		t.Fatalf("expected abort, got %v", res.Outcome)
	}
}

func TestFutureReadIsMisbehavior(t *testing.T) {
	// Algorithm 1 line 6: claiming a read version above the transaction's
	// own timestamp is proof of misbehavior.
	s := New()
	m := meta(ts(5, 1), map[string]types.Timestamp{"x": ts(9, 9)}, nil)
	if res := s.CheckAndPrepare(m, m.ID()); res.Outcome != CheckMisbehavior {
		t.Fatalf("expected misbehavior, got %v", res.Outcome)
	}
}

func TestWriteInvalidatingReaderAborts(t *testing.T) {
	// Algorithm 1 lines 9-11: T2 prepared having read x@0 at ts 10; a
	// write to x at ts 5 would invalidate T2's read: abort, and the
	// result should name T2 as the prepared conflict.
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	t2 := meta(ts(10, 2), map[string]types.Timestamp{"x": {}}, map[string]string{"y": "v"})
	mustPrepare(t, s, t2)

	t1 := meta(ts(5, 1), nil, map[string]string{"x": "v5"})
	res := s.CheckAndPrepare(t1, t1.ID())
	if res.Outcome != CheckAbort {
		t.Fatalf("expected abort, got %v", res.Outcome)
	}
	if res.PreparedConflict == nil || res.PreparedConflict.ID() != t2.ID() {
		t.Fatal("abort should blame the prepared reader")
	}
}

func TestRTSBlocksOlderWriter(t *testing.T) {
	// Algorithm 1 lines 12-13: an outstanding read at ts 10 blocks a
	// write at ts 5.
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	s.Read("x", ts(10, 2)) // places RTS
	w := meta(ts(5, 1), nil, map[string]string{"x": "v5"})
	if res := s.CheckAndPrepare(w, w.ID()); res.Outcome != CheckAbort {
		t.Fatalf("expected RTS abort, got %v", res.Outcome)
	}
	// Dropping the RTS unblocks an equivalent later attempt.
	s.DropRTS([]string{"x"}, ts(10, 2))
	w2 := meta(ts(6, 1), nil, map[string]string{"x": "v6"})
	if res := s.CheckAndPrepare(w2, w2.ID()); res.Outcome != CheckOK {
		t.Fatalf("expected OK after DropRTS, got %v", res.Outcome)
	}
}

func TestHigherTimestampWriterUnaffectedByRTS(t *testing.T) {
	s := New()
	s.Read("x", ts(10, 2))
	w := meta(ts(15, 1), nil, map[string]string{"x": "v"})
	if res := s.CheckAndPrepare(w, w.ID()); res.Outcome != CheckOK {
		t.Fatalf("expected OK, got %v", res.Outcome)
	}
}

func TestPrepareReleasesRTSMaximum(t *testing.T) {
	// When a reader's prepare consumes its execution-time RTS reservation,
	// maxRTS must be recomputed from the remaining live reads — not stay
	// pinned at the highest-ever read timestamp. Otherwise the coarse
	// line-12 filter spuriously aborts every writer below that watermark
	// forever, even ones the precise reader-record check admits
	// (write ts < readVer).
	s := New()
	w30 := meta(ts(30, 1), nil, map[string]string{"x": "v30"})
	mustPrepare(t, s, w30)
	s.Finalize(w30.ID(), w30, types.DecisionCommit, nil)

	// Reader at ts 50 reads version 30, then prepares (read-only on x).
	s.Read("x", ts(50, 2))
	rd := meta(ts(50, 2), map[string]types.Timestamp{"x": ts(30, 1)}, map[string]string{"y": "v"})
	mustPrepare(t, s, rd)

	// A writer at ts 10 does not invalidate the ts-50 read of version 30
	// (10 < 30), and no live read remains outstanding — it must be
	// admitted.
	w10 := meta(ts(10, 3), nil, map[string]string{"x": "v10"})
	if res := s.CheckAndPrepare(w10, w10.ID()); res.Outcome != CheckOK {
		t.Fatalf("expected OK after reader prepared, got %v", res.Outcome)
	}
}

func TestDuplicatePrepareDetected(t *testing.T) {
	s := New()
	m := meta(ts(5, 1), nil, map[string]string{"x": "v"})
	mustPrepare(t, s, m)
	if res := s.CheckAndPrepare(m, m.ID()); res.Outcome != CheckDuplicate {
		t.Fatalf("expected duplicate, got %v", res.Outcome)
	}
}

func TestConflictCertReturnedForCommittedConflict(t *testing.T) {
	s := New()
	w := meta(ts(5, 1), nil, map[string]string{"x": "v5"})
	id := w.ID()
	cert := &types.DecisionCert{TxID: id, Decision: types.DecisionCommit}
	mustPrepare(t, s, w)
	s.Finalize(id, w, types.DecisionCommit, cert)

	r := meta(ts(10, 2), map[string]types.Timestamp{"x": {}}, map[string]string{"z": "q"})
	res := s.CheckAndPrepare(r, r.ID())
	if res.Outcome != CheckAbort || res.Conflict != cert {
		t.Fatal("committed conflict should return the certificate (abort fast path case 5)")
	}
}

func TestRemovePrepared(t *testing.T) {
	s := New()
	m := meta(ts(5, 1), map[string]types.Timestamp{"r": {}}, map[string]string{"x": "v"})
	id := mustPrepare(t, s, m)
	s.RemovePrepared(id)
	if s.TxStatusOf(id) != StatusUnknown {
		t.Fatal("record not removed")
	}
	r := s.Read("x", ts(10, 1))
	if r.Prepared != nil {
		t.Fatal("prepared write survived removal")
	}
	// Removing a committed transaction must be refused.
	m2 := meta(ts(6, 1), nil, map[string]string{"y": "v"})
	id2 := mustPrepare(t, s, m2)
	s.Finalize(id2, m2, types.DecisionCommit, nil)
	s.RemovePrepared(id2)
	if s.TxStatusOf(id2) != StatusCommitted {
		t.Fatal("RemovePrepared touched a committed transaction")
	}
}

func TestWritebackWithoutPrepareInstallsWrites(t *testing.T) {
	// A replica that missed ST1 must still apply a certified commit.
	s := New()
	m := meta(ts(5, 1), nil, map[string]string{"x": "v5"})
	s.Finalize(m.ID(), m, types.DecisionCommit, nil)
	r := s.Read("x", ts(10, 1))
	if r.Committed == nil || string(r.Committed.Value) != "v5" {
		t.Fatal("writeback-only commit not applied")
	}
}

func TestLatestCommitted(t *testing.T) {
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	m := meta(ts(5, 1), nil, map[string]string{"x": "v5"})
	s.Finalize(m.ID(), m, types.DecisionCommit, nil)
	ver, val, ok := s.LatestCommitted("x")
	if !ok || string(val) != "v5" || ver != ts(5, 1) {
		t.Fatal("LatestCommitted wrong")
	}
	if _, _, ok := s.LatestCommitted("nope"); ok {
		t.Fatal("missing key reported present")
	}
}

func TestGCKeepsNewestBelowWatermark(t *testing.T) {
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	for i := uint64(1); i <= 5; i++ {
		m := meta(ts(i*10, 1), nil, map[string]string{"x": fmt.Sprintf("v%d", i)})
		mustPrepare(t, s, m)
		s.Finalize(m.ID(), m, types.DecisionCommit, nil)
	}
	dropped := s.GC(ts(35, 0))
	if dropped == 0 {
		t.Fatal("GC dropped nothing")
	}
	// Reads at and above the watermark still see the right versions.
	r := s.Read("x", ts(36, 1))
	if r.Committed == nil || string(r.Committed.Value) != "v3" {
		t.Fatalf("read below watermark broken: %v", r.Committed)
	}
	r2 := s.Read("x", ts(100, 1))
	if string(r2.Committed.Value) != "v5" {
		t.Fatal("latest version lost")
	}
}

func TestStatsSnapshot(t *testing.T) {
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	m := meta(ts(5, 1), nil, map[string]string{"x": "v"})
	mustPrepare(t, s, m)
	st := s.StatsSnapshot()
	if st.Keys != 1 || st.Prepared != 1 || st.Versions != 2 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

// Property: random interleavings of prepares/commits/aborts never break
// per-key version ordering: committed reads always return the largest
// committed version strictly below the read timestamp.
func TestVersionOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		s.ApplyGenesis("k", []byte{0})
		// committed[t] = value byte written at time t (MVTSO assumes
		// unique timestamps, so the model skips reuses).
		committed := map[uint64]byte{}
		used := map[uint64]bool{}
		for i := 0; i < 40; i++ {
			tsv := uint64(1 + rng.Intn(100))
			if used[tsv] {
				continue
			}
			used[tsv] = true
			val := byte(rng.Intn(255) + 1)
			m := meta(ts(tsv, uint64(rng.Intn(5))), nil, map[string]string{"k": string([]byte{val})})
			id := m.ID()
			if res := s.CheckAndPrepare(m, id); res.Outcome != CheckOK {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				s.Finalize(id, m, types.DecisionCommit, nil)
				if old, ok := committed[tsv]; !ok || old == 0 {
					committed[tsv] = val
				}
			case 1:
				s.Finalize(id, m, types.DecisionAbort, nil)
			default:
				// leave prepared
			}
		}
		// Validate reads at random timestamps against the model.
		for probe := 0; probe < 20; probe++ {
			at := uint64(1 + rng.Intn(120))
			r := s.Read("k", types.Timestamp{Time: at, ClientID: 9999})
			var bestTs uint64
			var bestVal byte
			for wts, v := range committed {
				// Writer client ids (0..4) are below the prober's 9999,
				// so a write at exactly `at` is still below the read
				// timestamp in the (Time, ClientID) total order.
				if wts <= at && wts >= bestTs && v != 0 {
					bestTs, bestVal = wts, v
				}
			}
			if bestTs == 0 {
				continue // genesis expected; fine either way
			}
			if r.Committed == nil || r.Committed.Version().Time != bestTs || r.Committed.Value[0] != bestVal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
