// Package store implements the multiversioned storage a Basil replica
// keeps per shard: committed version chains, prepared (visible but
// uncommitted) writes, reader records, and read timestamps (RTS), plus the
// serializability portion of the MVTSO-Check (Algorithm 1 steps 3–6).
//
// Concurrency model. The store is sharded into a fixed array of lock
// stripes hashed by key, so prepares and reads on disjoint keys run truly
// in parallel. Three lock levels exist, always acquired in this order:
//
//  1. global (RWMutex) — held shared by every per-key operation (Read,
//     DropRTS, CheckAndPrepare, ApplyGenesis, LatestCommitted, Tx lookups)
//     and exclusively by the cross-key operations that mutate transaction
//     records or walk every key (Finalize, RemovePrepared, GC,
//     StatsSnapshot). Holding it exclusively implies exclusive access to
//     all stripes and the transaction table.
//  2. stripe mutexes — per-key state (version chains, readers, RTS).
//     Multi-key operations (CheckAndPrepare) lock all involved stripes in
//     ascending index order, making the check-and-install atomic without a
//     store-wide critical section.
//  3. txMu — the transaction table. Only the map itself needs it: fields
//     of a published TxRecord are mutated solely under the exclusive
//     global lock, so shared-lock holders may read them freely after the
//     map lookup.
//
// All locks are leaf-level with respect to the replica layer: no store
// method calls back out while holding any of them.
package store

import (
	"hash/maphash"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/types"
)

// DefaultStripes is the stripe count used by New. It comfortably exceeds
// any plausible GOMAXPROCS so disjoint-key workloads rarely collide, while
// keeping the fixed per-store footprint trivial.
const DefaultStripes = 64

// TxStatus tracks a transaction's lifecycle at this replica.
type TxStatus uint8

// Transaction statuses.
const (
	StatusUnknown TxStatus = iota
	StatusPrepared
	StatusCommitted
	StatusAborted
)

// TxRecord is the replica's bookkeeping for one transaction.
type TxRecord struct {
	Meta   *types.TxMeta
	Status TxStatus
	Cert   *types.DecisionCert // set once finalized with a certificate
}

// writeRec is one (possibly uncommitted) version of a key.
type writeRec struct {
	ver       types.Timestamp
	value     []byte
	writer    types.TxID
	committed bool
}

// readRec records a read performed by a prepared or committed transaction;
// needed for Algorithm 1 line 10 (writes must not invalidate the reads of
// already-validated transactions).
type readRec struct {
	readerTs types.Timestamp
	readVer  types.Timestamp
	reader   types.TxID
}

type keyEntry struct {
	// writes sorted ascending by version timestamp.
	writes []writeRec
	// readers of this key from prepared/committed transactions.
	readers []readRec
	// rts holds the read timestamps of ongoing (not yet prepared)
	// transactions, reference-counted because retries may re-read.
	rts    map[types.Timestamp]int
	maxRTS types.Timestamp
}

// stripe is one lock-striped slice of the key space.
type stripe struct {
	mu   sync.Mutex
	keys map[string]*keyEntry
}

// Store is one shard's multiversioned state at one replica.
type Store struct {
	// global is the cross-stripe fence: per-key operations hold it for
	// read, whole-store sweeps (GC, snapshot) hold it for write. Ordered
	// before any stripe lock.
	global  sync.RWMutex
	stripes []stripe
	seed    maphash.Seed

	// txMu is an RWMutex because the table is read-mostly and shared by
	// every stripe: version-chain scans look up writer records per entry,
	// and a plain mutex here would re-serialize the striped read path.
	txMu sync.RWMutex
	txns map[types.TxID]*TxRecord

	// rtsFloor is a conservative store-wide lower bound standing in for
	// RTS entries lost in a crash: writers below it are aborted by the
	// line-12 coarse filter even on keys with no live RTS. Set once by
	// restart (SetRTSFloor), read under the shared global lock.
	rtsFloor types.Timestamp

	// m holds optional instrumentation hooks. All fields are nil-safe
	// no-ops until SetMetrics installs live counters, so the hot paths
	// pay one nil check when observability is off.
	m Metrics
}

// Metrics are the store's instrumentation hooks (see internal/metrics):
// CheckAndPrepare outcomes, the RTS-rejection subset of aborts (Algorithm
// 1 line 12 — a writer refused because a higher-timestamped read is
// outstanding), and GC activity. Install with SetMetrics before serving.
type Metrics struct {
	Prepares      *metrics.Counter // CheckAndPrepare calls (any outcome)
	PrepareOKs    *metrics.Counter // outcomes that installed the prepare
	RTSRejections *metrics.Counter // aborts from outstanding RTS / floor
	GCRuns        *metrics.Counter // GC invocations
	GCCollected   *metrics.Counter // entries GC dropped, cumulative
}

// SetMetrics installs instrumentation counters. Call once, before the
// store serves traffic (the fields are read without synchronization).
func (s *Store) SetMetrics(m Metrics) { s.m = m }

// RegistryMetrics builds the canonical Metrics set on reg — the single
// definition of what a live replica installs, shared by the replica
// wiring and by the overhead benchmarks so the measured "observability
// tax" cannot silently diverge from real instrumentation. Label pairs
// apply to every counter.
func RegistryMetrics(reg *metrics.Registry, labelPairs ...string) Metrics {
	return Metrics{
		Prepares:      reg.Counter("basil_store_prepares_total", labelPairs...),
		PrepareOKs:    reg.Counter("basil_store_prepare_ok_total", labelPairs...),
		RTSRejections: reg.Counter("basil_store_rts_rejections_total", labelPairs...),
		GCRuns:        reg.Counter("basil_store_gc_runs_total", labelPairs...),
		GCCollected:   reg.Counter("basil_store_gc_collected_total", labelPairs...),
	}
}

// New creates an empty store with DefaultStripes lock stripes.
func New() *Store { return NewStriped(DefaultStripes) }

// NewStriped creates an empty store with n lock stripes (rounded up to a
// power of two; n < 1 means 1, which degenerates to a single key lock —
// the pre-striping baseline the parallel benchmarks compare against).
func NewStriped(n int) *Store {
	if n < 1 {
		n = 1
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	s := &Store{
		stripes: make([]stripe, pow),
		seed:    maphash.MakeSeed(),
		txns:    make(map[types.TxID]*TxRecord),
	}
	for i := range s.stripes {
		s.stripes[i].keys = make(map[string]*keyEntry)
	}
	return s
}

// Stripes returns the stripe count (observability for tests/experiments).
func (s *Store) Stripes() int { return len(s.stripes) }

// stripeIdx hashes k onto a stripe index.
func (s *Store) stripeIdx(k string) int {
	return int(maphash.String(s.seed, k) & uint64(len(s.stripes)-1))
}

func (s *Store) stripeOf(k string) *stripe { return &s.stripes[s.stripeIdx(k)] }

// entry returns (creating if needed) k's entry. Caller holds st's mutex.
func (st *stripe) entry(k string) *keyEntry {
	e := st.keys[k]
	if e == nil {
		e = &keyEntry{rts: make(map[types.Timestamp]int)}
		st.keys[k] = e
	}
	return e
}

// lockStripes locks the stripes covering every key in meta's read and
// write sets, in ascending index order (the deadlock-free total order),
// and returns the locked indices for unlockStripes.
func (s *Store) lockStripes(meta *types.TxMeta) []int {
	idxs := make([]int, 0, len(meta.ReadSet)+len(meta.WriteSet))
	for _, r := range meta.ReadSet {
		idxs = append(idxs, s.stripeIdx(r.Key))
	}
	for _, w := range meta.WriteSet {
		idxs = append(idxs, s.stripeIdx(w.Key))
	}
	sort.Ints(idxs)
	out := idxs[:0]
	last := -1
	for _, i := range idxs {
		if i != last {
			out = append(out, i)
			last = i
		}
	}
	for _, i := range out {
		s.stripes[i].mu.Lock()
	}
	return out
}

func (s *Store) unlockStripes(idxs []int) {
	for _, i := range idxs {
		s.stripes[i].mu.Unlock()
	}
}

// txLookup returns the record for id under the shared table lock.
func (s *Store) txLookup(id types.TxID) *TxRecord {
	s.txMu.RLock()
	rec := s.txns[id]
	s.txMu.RUnlock()
	return rec
}

// ApplyGenesis installs the load-time value of key at the zero timestamp.
// Genesis versions carry no certificate and are trusted by all nodes.
func (s *Store) ApplyGenesis(k string, value []byte) {
	s.global.RLock()
	defer s.global.RUnlock()
	st := s.stripeOf(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entry(k)
	rec := writeRec{value: value, committed: true}
	if len(e.writes) > 0 && e.writes[0].ver.IsZero() {
		e.writes[0] = rec
		return
	}
	e.writes = append([]writeRec{rec}, e.writes...)
}

// insertWrite places w into e.writes keeping version order.
func (e *keyEntry) insertWrite(w writeRec) {
	i := len(e.writes)
	for i > 0 && w.ver.Less(e.writes[i-1].ver) {
		i--
	}
	e.writes = append(e.writes, writeRec{})
	copy(e.writes[i+1:], e.writes[i:])
	e.writes[i] = w
}

// removeWritesBy drops all writes by tx from e.
func (e *keyEntry) removeWritesBy(tx types.TxID) {
	out := e.writes[:0]
	for _, w := range e.writes {
		if w.writer != tx {
			out = append(out, w)
		}
	}
	e.writes = out
}

// removeReadersBy drops all reader records by tx from e.
func (e *keyEntry) removeReadersBy(tx types.TxID) {
	out := e.readers[:0]
	for _, r := range e.readers {
		if r.reader != tx {
			out = append(out, r)
		}
	}
	e.readers = out
}

// ReadResult carries the replica's two read branches (paper §4.1 step 2).
type ReadResult struct {
	Committed *types.CommittedRead
	Prepared  *types.PreparedRead
}

// Read returns the latest committed and latest prepared versions of key
// with timestamps strictly below ts, and records ts in the key's RTS set.
func (s *Store) Read(k string, ts types.Timestamp) ReadResult {
	s.global.RLock()
	defer s.global.RUnlock()
	st := s.stripeOf(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entry(k)
	// Record the read timestamp.
	e.rts[ts]++
	if e.maxRTS.Less(ts) {
		e.maxRTS = ts
	}
	var res ReadResult
	for i := len(e.writes) - 1; i >= 0; i-- {
		w := e.writes[i]
		if !w.ver.Less(ts) {
			continue
		}
		if w.committed {
			if res.Committed == nil {
				rec := s.txLookup(w.writer)
				cr := &types.CommittedRead{Value: w.value}
				if rec != nil {
					cr.WriterMeta = rec.Meta
					cr.Cert = rec.Cert
				}
				res.Committed = cr
			}
			// Prepared versions older than the newest committed one are
			// irrelevant: the committed branch dominates them.
			break
		}
		if res.Prepared == nil {
			rec := s.txLookup(w.writer)
			if rec != nil && rec.Status == StatusPrepared {
				res.Prepared = &types.PreparedRead{Value: w.value, WriterMeta: rec.Meta}
			}
		}
	}
	return res
}

// DropRTS releases one reference of ts from each key (client Abort during
// execution, paper §4.1).
func (s *Store) DropRTS(keys []string, ts types.Timestamp) {
	s.global.RLock()
	defer s.global.RUnlock()
	for _, k := range keys {
		st := s.stripeOf(k)
		st.mu.Lock()
		if e := st.keys[k]; e != nil {
			e.dropRTS(ts)
		}
		st.mu.Unlock()
	}
}

// dropRTS releases one reference of ts from e, recomputing maxRTS if the
// released reference was the last of the maximum.
func (e *keyEntry) dropRTS(ts types.Timestamp) {
	if n := e.rts[ts]; n > 1 {
		e.rts[ts] = n - 1
	} else if n == 1 {
		delete(e.rts, ts)
		if ts == e.maxRTS {
			e.maxRTS = types.Timestamp{}
			for t := range e.rts {
				if e.maxRTS.Less(t) {
					e.maxRTS = t
				}
			}
		}
	}
}

// CheckOutcome is the store-level verdict of the MVTSO check.
type CheckOutcome uint8

// Check outcomes.
const (
	// CheckOK: the transaction passed lines 5–13 and was added to the
	// prepared set (line 14). The replica still waits on dependencies.
	CheckOK CheckOutcome = iota
	// CheckAbort: a serializability conflict (lines 7–13).
	CheckAbort
	// CheckMisbehavior: the read set claims a version from the future
	// (line 6) — proof of client misbehavior.
	CheckMisbehavior
	// CheckDuplicate: the transaction was already prepared/finalized here.
	CheckDuplicate
)

// CheckResult reports the outcome plus conflict evidence: when aborting
// because of a committed transaction, its certificate (the "optional
// (T', T'.C-CERT)" of Algorithm 1 lines 8 and 11); when aborting because
// of a prepared-but-undecided transaction, that transaction's metadata so
// the client can finish it via the fallback (the §5 invariant: whoever is
// aborted by T can complete T).
type CheckResult struct {
	Outcome      CheckOutcome
	Conflict     *types.DecisionCert
	ConflictMeta *types.TxMeta
	// PreparedConflict is the metadata of the undecided transaction that
	// caused the abort, if any.
	PreparedConflict *types.TxMeta
}

// CheckAndPrepare runs Algorithm 1 lines 5–14 atomically: validates the
// read set against newer writes, the write set against validated readers
// and outstanding RTS, and on success makes the transaction's writes
// visible as prepared versions. Atomicity comes from holding every
// involved key's stripe for the whole check-and-install; transactions on
// disjoint stripes proceed in parallel.
func (s *Store) CheckAndPrepare(meta *types.TxMeta, id types.TxID) CheckResult {
	s.m.Prepares.Add(1)
	s.global.RLock()
	defer s.global.RUnlock()
	if s.txLookup(id) != nil {
		return CheckResult{Outcome: CheckDuplicate}
	}
	locked := s.lockStripes(meta)
	defer s.unlockStripes(locked)
	ts := meta.Timestamp
	// Lines 5–8: reads must not have missed a write.
	for _, r := range meta.ReadSet {
		if ts.Less(r.Version) || ts == r.Version {
			return CheckResult{Outcome: CheckMisbehavior}
		}
		e := s.stripeOf(r.Key).keys[r.Key]
		if e == nil {
			continue
		}
		// Note: the read version need not exist locally — the client may
		// have read from other replicas (prepared-version deps are
		// separately validated by the replica layer). Line 7 only demands
		// that no newer-but-older-than-ts write exists here.
		for _, w := range e.writes {
			if r.Version.Less(w.ver) && w.ver.Less(ts) {
				res := CheckResult{Outcome: CheckAbort}
				if rec := s.txLookup(w.writer); rec != nil {
					if w.committed && rec.Cert != nil {
						res.Conflict = rec.Cert
						res.ConflictMeta = rec.Meta
					} else if rec.Status == StatusPrepared {
						res.PreparedConflict = rec.Meta
					}
				}
				return res
			}
		}
	}
	// Lines 9–13: writes must not invalidate validated readers or
	// outstanding reads. The restart floor stands in for RTS entries a
	// crash erased: any read the pre-crash replica admitted had a
	// timestamp at or below the floor, so writers beneath it are refused
	// exactly as the lost per-key entries would have refused them.
	if len(meta.WriteSet) > 0 && ts.Less(s.rtsFloor) {
		s.m.RTSRejections.Add(1)
		return CheckResult{Outcome: CheckAbort}
	}
	for _, w := range meta.WriteSet {
		e := s.stripeOf(w.Key).keys[w.Key]
		if e == nil {
			continue
		}
		for _, rd := range e.readers {
			if rd.readVer.Less(ts) && ts.Less(rd.readerTs) {
				res := CheckResult{Outcome: CheckAbort}
				if rec := s.txLookup(rd.reader); rec != nil {
					if rec.Status == StatusCommitted && rec.Cert != nil {
						res.Conflict = rec.Cert
						res.ConflictMeta = rec.Meta
					} else if rec.Status == StatusPrepared {
						res.PreparedConflict = rec.Meta
					}
				}
				return res
			}
		}
		if ts.Less(e.maxRTS) {
			// Line 12: an ongoing read with a higher timestamp exists.
			s.m.RTSRejections.Add(1)
			return CheckResult{Outcome: CheckAbort}
		}
	}
	// Line 14: prepare and make writes visible. The record is fully built
	// before publication; the publish re-checks for a duplicate so two
	// concurrent deliveries of a keyless transaction (no stripe to
	// serialize on) cannot both install.
	rec := &TxRecord{Meta: meta, Status: StatusPrepared}
	s.txMu.Lock()
	if s.txns[id] != nil {
		s.txMu.Unlock()
		return CheckResult{Outcome: CheckDuplicate}
	}
	s.txns[id] = rec
	s.txMu.Unlock()
	for _, w := range meta.WriteSet {
		s.stripeOf(w.Key).entry(w.Key).insertWrite(writeRec{ver: ts, value: w.Value, writer: id})
	}
	for _, r := range meta.ReadSet {
		e := s.stripeOf(r.Key).entry(r.Key)
		e.readers = append(e.readers, readRec{readerTs: ts, readVer: r.Version, reader: id})
		// The transaction has been validated; its execution-time RTS
		// reservation is superseded by the reader record. dropRTS also
		// recomputes maxRTS when the last reference at ts is released, so
		// the coarse line-12 filter tracks live reads instead of the
		// highest-ever read timestamp (which would spuriously abort every
		// lower-timestamped writer on a hot key forever).
		e.dropRTS(ts)
	}
	s.m.PrepareOKs.Add(1)
	return CheckResult{Outcome: CheckOK}
}

// Finalize applies a commit or abort decision. For commits the prepared
// writes become committed versions (installing meta's writes even if the
// transaction was never prepared here, e.g. a writeback received by a
// replica that missed ST1). It returns true if the status changed.
//
// Finalize is a cross-key operation and takes the global lock exclusively:
// it is the only mutator of published TxRecord fields, which lets every
// shared-lock holder read records without per-record locking.
func (s *Store) Finalize(id types.TxID, meta *types.TxMeta, dec types.Decision, cert *types.DecisionCert) bool {
	s.global.Lock()
	defer s.global.Unlock()
	rec := s.txns[id]
	if rec == nil {
		rec = &TxRecord{Meta: meta}
		s.txns[id] = rec
	}
	if rec.Meta == nil {
		rec.Meta = meta
	}
	switch rec.Status {
	case StatusCommitted, StatusAborted:
		if cert != nil && rec.Cert == nil {
			rec.Cert = cert
		}
		return false
	}
	if cert != nil {
		rec.Cert = cert
	}
	if dec == types.DecisionCommit {
		rec.Status = StatusCommitted
		wasPrepared := false
		if rec.Meta != nil {
			for _, w := range rec.Meta.WriteSet {
				e := s.stripeOf(w.Key).entry(w.Key)
				found := false
				for i := range e.writes {
					if e.writes[i].writer == id {
						e.writes[i].committed = true
						found = true
					}
				}
				if !found {
					e.insertWrite(writeRec{ver: rec.Meta.Timestamp, value: w.Value, writer: id, committed: true})
				} else {
					wasPrepared = true
				}
			}
			if !wasPrepared {
				// Install reader records too so future conflicting writes
				// are caught (line 10) even on replicas that skipped ST1.
				for _, r := range rec.Meta.ReadSet {
					e := s.stripeOf(r.Key).entry(r.Key)
					e.readers = append(e.readers, readRec{readerTs: rec.Meta.Timestamp, readVer: r.Version, reader: id})
				}
			}
		}
	} else {
		rec.Status = StatusAborted
		if rec.Meta != nil {
			for _, w := range rec.Meta.WriteSet {
				if e := s.stripeOf(w.Key).keys[w.Key]; e != nil {
					e.removeWritesBy(id)
				}
			}
			for _, r := range rec.Meta.ReadSet {
				if e := s.stripeOf(r.Key).keys[r.Key]; e != nil {
					e.removeReadersBy(id)
				}
			}
		}
	}
	return true
}

// RemovePrepared withdraws a prepared transaction entirely (Algorithm 1
// line 17: a replica that votes abort after dependency resolution removes
// the transaction from the prepared set). No-op unless id is prepared.
func (s *Store) RemovePrepared(id types.TxID) {
	s.global.Lock()
	defer s.global.Unlock()
	rec := s.txns[id]
	if rec == nil || rec.Status != StatusPrepared {
		return
	}
	if rec.Meta != nil {
		for _, w := range rec.Meta.WriteSet {
			if e := s.stripeOf(w.Key).keys[w.Key]; e != nil {
				e.removeWritesBy(id)
			}
		}
		for _, r := range rec.Meta.ReadSet {
			if e := s.stripeOf(r.Key).keys[r.Key]; e != nil {
				e.removeReadersBy(id)
			}
		}
	}
	delete(s.txns, id)
}

// Tx returns a snapshot of the record for id. The second result reports
// whether the transaction is known. A copy (not the live pointer) is
// returned because record fields are mutated under the store's exclusive
// lock, which callers do not hold.
func (s *Store) Tx(id types.TxID) (TxRecord, bool) {
	s.global.RLock()
	defer s.global.RUnlock()
	if rec := s.txLookup(id); rec != nil {
		return *rec, true
	}
	return TxRecord{}, false
}

// FinalizedOutcome returns a snapshot of the record for id only when its
// outcome is already decided (committed or aborted). This is the replica's
// resurrection-guard query: a late duplicate ST1/ST2/writeback for a
// transaction whose protocol state was collected at the checkpoint
// watermark is answered from this table instead of recreating votable
// protocol state. The second result is false for unknown or still-prepared
// transactions, which must take the normal protocol path.
func (s *Store) FinalizedOutcome(id types.TxID) (TxRecord, bool) {
	s.global.RLock()
	defer s.global.RUnlock()
	rec := s.txLookup(id)
	if rec == nil || (rec.Status != StatusCommitted && rec.Status != StatusAborted) {
		return TxRecord{}, false
	}
	return *rec, true
}

// PreparedIDs returns the ids of every currently prepared transaction
// (restart path: prepared entries without a durably logged vote are
// withdrawn, since the vote they would justify was never promised).
func (s *Store) PreparedIDs() []types.TxID {
	s.global.RLock()
	defer s.global.RUnlock()
	s.txMu.RLock()
	defer s.txMu.RUnlock()
	var ids []types.TxID
	for id, rec := range s.txns {
		if rec.Status == StatusPrepared {
			ids = append(ids, id)
		}
	}
	return ids
}

// TxStatusOf returns the lifecycle status of id.
func (s *Store) TxStatusOf(id types.TxID) TxStatus {
	s.global.RLock()
	defer s.global.RUnlock()
	if rec := s.txLookup(id); rec != nil {
		return rec.Status
	}
	return StatusUnknown
}

// LatestCommitted returns the newest committed version of key, for
// debugging and example tooling.
func (s *Store) LatestCommitted(k string) (types.Timestamp, []byte, bool) {
	s.global.RLock()
	defer s.global.RUnlock()
	st := s.stripeOf(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.keys[k]
	if e == nil {
		return types.Timestamp{}, nil, false
	}
	for i := len(e.writes) - 1; i >= 0; i-- {
		if e.writes[i].committed {
			return e.writes[i].ver, e.writes[i].value, true
		}
	}
	return types.Timestamp{}, nil, false
}

// SetRTSFloor installs the conservative restart lower bound for ongoing
// reads (see Store.rtsFloor). Called once by the replica restart path; it
// never lowers an existing floor.
func (s *Store) SetRTSFloor(ts types.Timestamp) {
	s.global.Lock()
	if s.rtsFloor.Less(ts) {
		s.rtsFloor = ts
	}
	s.global.Unlock()
}

// GC discards state strictly older than the watermark: committed versions
// (keeping at least the newest committed version at or below the
// watermark per key, so reads above it still have a version to serve),
// reader records, RTS entries, and finalized transaction records whose
// writes no longer survive anywhere. Prepared writes are never collected.
// Returns the number of records dropped.
//
// Watermark semantics: the caller promises no transaction at or below the
// watermark will ever be read, prepared, or recovered again — in a live
// cluster that means it trails the oldest timestamp any in-flight
// transaction could still use (clients pick now, admission caps at
// now+δ, so "now − δ − max transaction lifetime" is safely below every
// live timestamp). Everything the store knows below that line is
// unreachable history except the newest committed version per key, which
// later reads still resolve to.
func (s *Store) GC(watermark types.Timestamp) int {
	s.m.GCRuns.Add(1)
	s.global.Lock()
	defer s.global.Unlock()
	dropped := 0
	// Writers of surviving versions stay in the transaction table: Read
	// serves their metadata and certificate alongside the value, and a
	// missing record would make a real committed version indistinguishable
	// from an unprovable one.
	liveWriters := make(map[types.TxID]struct{})
	for si := range s.stripes {
		for _, e := range s.stripes[si].keys {
			// Find the newest committed version ≤ watermark; keep it.
			keepIdx := -1
			for i := len(e.writes) - 1; i >= 0; i-- {
				if e.writes[i].committed && !watermark.Less(e.writes[i].ver) {
					keepIdx = i
					break
				}
			}
			if keepIdx > 0 {
				out := e.writes[:0]
				for i, w := range e.writes {
					if i < keepIdx && w.committed && w.ver.Less(e.writes[keepIdx].ver) {
						dropped++
						continue
					}
					out = append(out, w)
				}
				e.writes = out
			}
			for i := range e.writes {
				liveWriters[e.writes[i].writer] = struct{}{}
			}
			rd := e.readers[:0]
			for _, r := range e.readers {
				if r.readerTs.Less(watermark) {
					dropped++
					continue
				}
				rd = append(rd, r)
			}
			e.readers = rd
			rtsChanged := false
			for ts := range e.rts {
				if ts.Less(watermark) {
					delete(e.rts, ts)
					dropped++
					rtsChanged = true
				}
			}
			if rtsChanged {
				// Recompute the coarse line-12 bound from the surviving
				// entries; leaving the old maximum in place would keep
				// aborting every writer below a read timestamp that no
				// longer exists (same stale-maxRTS class dropRTS fixes).
				e.maxRTS = types.Timestamp{}
				for ts := range e.rts {
					if e.maxRTS.Less(ts) {
						e.maxRTS = ts
					}
				}
			}
		}
	}
	// Collect the finalized-transaction table: under sustained load it is
	// the store's only unbounded structure. A finalized record below the
	// watermark whose writes have all been superseded (or that aborted) is
	// pure history — no read, conflict check, or recovery can name it
	// again under the watermark promise above.
	for id, rec := range s.txns {
		if rec.Status != StatusCommitted && rec.Status != StatusAborted {
			continue
		}
		if rec.Meta == nil || !rec.Meta.Timestamp.Less(watermark) {
			continue
		}
		if _, live := liveWriters[id]; live {
			continue
		}
		delete(s.txns, id)
		dropped++
	}
	s.m.GCCollected.Add(uint64(dropped))
	return dropped
}

// Stats reports store sizes for monitoring.
type Stats struct {
	Keys      int
	Versions  int
	Readers   int
	RTS       int
	Txns      int
	Prepared  int
	Committed int
	Aborted   int
}

// StatsSnapshot returns current sizes.
func (s *Store) StatsSnapshot() Stats {
	s.global.Lock()
	defer s.global.Unlock()
	var st Stats
	for si := range s.stripes {
		st.Keys += len(s.stripes[si].keys)
		for _, e := range s.stripes[si].keys {
			st.Versions += len(e.writes)
			st.Readers += len(e.readers)
			st.RTS += len(e.rts)
		}
	}
	st.Txns = len(s.txns)
	for _, r := range s.txns {
		switch r.Status {
		case StatusPrepared:
			st.Prepared++
		case StatusCommitted:
			st.Committed++
		case StatusAborted:
			st.Aborted++
		}
	}
	return st
}
