// Package store implements the multiversioned storage a Basil replica
// keeps per shard: committed version chains, prepared (visible but
// uncommitted) writes, reader records, and read timestamps (RTS), plus the
// serializability portion of the MVTSO-Check (Algorithm 1 steps 3–6).
//
// The store is a passive data structure guarded by one mutex; the replica
// layer supplies timestamps-bound checks, dependency waiting and votes.
package store

import (
	"sync"

	"repro/internal/types"
)

// TxStatus tracks a transaction's lifecycle at this replica.
type TxStatus uint8

// Transaction statuses.
const (
	StatusUnknown TxStatus = iota
	StatusPrepared
	StatusCommitted
	StatusAborted
)

// TxRecord is the replica's bookkeeping for one transaction.
type TxRecord struct {
	Meta   *types.TxMeta
	Status TxStatus
	Cert   *types.DecisionCert // set once finalized with a certificate
}

// writeRec is one (possibly uncommitted) version of a key.
type writeRec struct {
	ver       types.Timestamp
	value     []byte
	writer    types.TxID
	committed bool
}

// readRec records a read performed by a prepared or committed transaction;
// needed for Algorithm 1 line 10 (writes must not invalidate the reads of
// already-validated transactions).
type readRec struct {
	readerTs types.Timestamp
	readVer  types.Timestamp
	reader   types.TxID
}

type keyEntry struct {
	// writes sorted ascending by version timestamp.
	writes []writeRec
	// readers of this key from prepared/committed transactions.
	readers []readRec
	// rts holds the read timestamps of ongoing (not yet prepared)
	// transactions, reference-counted because retries may re-read.
	rts    map[types.Timestamp]int
	maxRTS types.Timestamp
}

// Store is one shard's multiversioned state at one replica.
type Store struct {
	mu   sync.Mutex
	keys map[string]*keyEntry
	txns map[types.TxID]*TxRecord
}

// New creates an empty store.
func New() *Store {
	return &Store{
		keys: make(map[string]*keyEntry),
		txns: make(map[types.TxID]*TxRecord),
	}
}

func (s *Store) key(k string) *keyEntry {
	e := s.keys[k]
	if e == nil {
		e = &keyEntry{rts: make(map[types.Timestamp]int)}
		s.keys[k] = e
	}
	return e
}

// ApplyGenesis installs the load-time value of key at the zero timestamp.
// Genesis versions carry no certificate and are trusted by all nodes.
func (s *Store) ApplyGenesis(k string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.key(k)
	rec := writeRec{value: value, committed: true}
	if len(e.writes) > 0 && e.writes[0].ver.IsZero() {
		e.writes[0] = rec
		return
	}
	e.writes = append([]writeRec{rec}, e.writes...)
}

// insertWrite places w into e.writes keeping version order.
func (e *keyEntry) insertWrite(w writeRec) {
	i := len(e.writes)
	for i > 0 && w.ver.Less(e.writes[i-1].ver) {
		i--
	}
	e.writes = append(e.writes, writeRec{})
	copy(e.writes[i+1:], e.writes[i:])
	e.writes[i] = w
}

// removeWritesBy drops all writes by tx from e.
func (e *keyEntry) removeWritesBy(tx types.TxID) {
	out := e.writes[:0]
	for _, w := range e.writes {
		if w.writer != tx {
			out = append(out, w)
		}
	}
	e.writes = out
}

// removeReadersBy drops all reader records by tx from e.
func (e *keyEntry) removeReadersBy(tx types.TxID) {
	out := e.readers[:0]
	for _, r := range e.readers {
		if r.reader != tx {
			out = append(out, r)
		}
	}
	e.readers = out
}

// ReadResult carries the replica's two read branches (paper §4.1 step 2).
type ReadResult struct {
	Committed      *types.CommittedRead
	Prepared       *types.PreparedRead
	PreparedWriter *TxRecord
}

// Read returns the latest committed and latest prepared versions of key
// with timestamps strictly below ts, and records ts in the key's RTS set.
func (s *Store) Read(k string, ts types.Timestamp) ReadResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.key(k)
	// Record the read timestamp.
	e.rts[ts]++
	if e.maxRTS.Less(ts) {
		e.maxRTS = ts
	}
	var res ReadResult
	for i := len(e.writes) - 1; i >= 0; i-- {
		w := e.writes[i]
		if !w.ver.Less(ts) {
			continue
		}
		if w.committed {
			if res.Committed == nil {
				rec := s.txns[w.writer]
				cr := &types.CommittedRead{Value: w.value}
				if rec != nil {
					cr.WriterMeta = rec.Meta
					cr.Cert = rec.Cert
				}
				res.Committed = cr
			}
			// Prepared versions older than the newest committed one are
			// irrelevant: the committed branch dominates them.
			break
		}
		if res.Prepared == nil {
			rec := s.txns[w.writer]
			if rec != nil && rec.Status == StatusPrepared {
				res.Prepared = &types.PreparedRead{Value: w.value, WriterMeta: rec.Meta}
				res.PreparedWriter = rec
			}
		}
	}
	return res
}

// DropRTS releases one reference of ts from each key (client Abort during
// execution, paper §4.1).
func (s *Store) DropRTS(keys []string, ts types.Timestamp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		e := s.keys[k]
		if e == nil {
			continue
		}
		if n := e.rts[ts]; n > 1 {
			e.rts[ts] = n - 1
		} else {
			delete(e.rts, ts)
			if ts == e.maxRTS {
				e.maxRTS = types.Timestamp{}
				for t := range e.rts {
					if e.maxRTS.Less(t) {
						e.maxRTS = t
					}
				}
			}
		}
	}
}

// CheckOutcome is the store-level verdict of the MVTSO check.
type CheckOutcome uint8

// Check outcomes.
const (
	// CheckOK: the transaction passed lines 5–13 and was added to the
	// prepared set (line 14). The replica still waits on dependencies.
	CheckOK CheckOutcome = iota
	// CheckAbort: a serializability conflict (lines 7–13).
	CheckAbort
	// CheckMisbehavior: the read set claims a version from the future
	// (line 6) — proof of client misbehavior.
	CheckMisbehavior
	// CheckDuplicate: the transaction was already prepared/finalized here.
	CheckDuplicate
)

// CheckResult reports the outcome plus conflict evidence: when aborting
// because of a committed transaction, its certificate (the "optional
// (T', T'.C-CERT)" of Algorithm 1 lines 8 and 11); when aborting because
// of a prepared-but-undecided transaction, that transaction's metadata so
// the client can finish it via the fallback (the §5 invariant: whoever is
// aborted by T can complete T).
type CheckResult struct {
	Outcome      CheckOutcome
	Conflict     *types.DecisionCert
	ConflictMeta *types.TxMeta
	// PreparedConflict is the metadata of the undecided transaction that
	// caused the abort, if any.
	PreparedConflict *types.TxMeta
}

// CheckAndPrepare runs Algorithm 1 lines 5–14 atomically: validates the
// read set against newer writes, the write set against validated readers
// and outstanding RTS, and on success makes the transaction's writes
// visible as prepared versions.
func (s *Store) CheckAndPrepare(meta *types.TxMeta, id types.TxID) CheckResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec := s.txns[id]; rec != nil {
		return CheckResult{Outcome: CheckDuplicate}
	}
	ts := meta.Timestamp
	// Lines 5–8: reads must not have missed a write.
	for _, r := range meta.ReadSet {
		if ts.Less(r.Version) || ts == r.Version {
			return CheckResult{Outcome: CheckMisbehavior}
		}
		e := s.keys[r.Key]
		if e == nil {
			continue
		}
		// Note: the read version need not exist locally — the client may
		// have read from other replicas (prepared-version deps are
		// separately validated by the replica layer). Line 7 only demands
		// that no newer-but-older-than-ts write exists here.
		for _, w := range e.writes {
			if r.Version.Less(w.ver) && w.ver.Less(ts) {
				res := CheckResult{Outcome: CheckAbort}
				if rec := s.txns[w.writer]; rec != nil {
					if w.committed && rec.Cert != nil {
						res.Conflict = rec.Cert
						res.ConflictMeta = rec.Meta
					} else if rec.Status == StatusPrepared {
						res.PreparedConflict = rec.Meta
					}
				}
				return res
			}
		}
	}
	// Lines 9–13: writes must not invalidate validated readers or
	// outstanding reads.
	for _, w := range meta.WriteSet {
		e := s.keys[w.Key]
		if e == nil {
			continue
		}
		for _, rd := range e.readers {
			if rd.readVer.Less(ts) && ts.Less(rd.readerTs) {
				res := CheckResult{Outcome: CheckAbort}
				if rec := s.txns[rd.reader]; rec != nil {
					if rec.Status == StatusCommitted && rec.Cert != nil {
						res.Conflict = rec.Cert
						res.ConflictMeta = rec.Meta
					} else if rec.Status == StatusPrepared {
						res.PreparedConflict = rec.Meta
					}
				}
				return res
			}
		}
		if ts.Less(e.maxRTS) {
			// Line 12: an ongoing read with a higher timestamp exists.
			return CheckResult{Outcome: CheckAbort}
		}
	}
	// Line 14: prepare and make writes visible.
	rec := &TxRecord{Meta: meta, Status: StatusPrepared}
	s.txns[id] = rec
	for _, w := range meta.WriteSet {
		s.key(w.Key).insertWrite(writeRec{ver: ts, value: w.Value, writer: id})
	}
	for _, r := range meta.ReadSet {
		e := s.key(r.Key)
		e.readers = append(e.readers, readRec{readerTs: ts, readVer: r.Version, reader: id})
		// The transaction has been validated; its execution-time RTS
		// reservation is superseded by the reader record.
		if n := e.rts[ts]; n > 1 {
			e.rts[ts] = n - 1
		} else if n == 1 {
			delete(e.rts, ts)
		}
	}
	return CheckResult{Outcome: CheckOK}
}

// Finalize applies a commit or abort decision. For commits the prepared
// writes become committed versions (installing meta's writes even if the
// transaction was never prepared here, e.g. a writeback received by a
// replica that missed ST1). It returns true if the status changed.
func (s *Store) Finalize(id types.TxID, meta *types.TxMeta, dec types.Decision, cert *types.DecisionCert) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.txns[id]
	if rec == nil {
		rec = &TxRecord{Meta: meta}
		s.txns[id] = rec
	}
	if rec.Meta == nil {
		rec.Meta = meta
	}
	switch rec.Status {
	case StatusCommitted, StatusAborted:
		if cert != nil && rec.Cert == nil {
			rec.Cert = cert
		}
		return false
	}
	if cert != nil {
		rec.Cert = cert
	}
	if dec == types.DecisionCommit {
		rec.Status = StatusCommitted
		wasPrepared := false
		if rec.Meta != nil {
			for _, w := range rec.Meta.WriteSet {
				e := s.key(w.Key)
				found := false
				for i := range e.writes {
					if e.writes[i].writer == id {
						e.writes[i].committed = true
						found = true
					}
				}
				if !found {
					e.insertWrite(writeRec{ver: rec.Meta.Timestamp, value: w.Value, writer: id, committed: true})
				} else {
					wasPrepared = true
				}
			}
			if !wasPrepared {
				// Install reader records too so future conflicting writes
				// are caught (line 10) even on replicas that skipped ST1.
				for _, r := range rec.Meta.ReadSet {
					e := s.key(r.Key)
					e.readers = append(e.readers, readRec{readerTs: rec.Meta.Timestamp, readVer: r.Version, reader: id})
				}
			}
		}
	} else {
		rec.Status = StatusAborted
		if rec.Meta != nil {
			for _, w := range rec.Meta.WriteSet {
				if e := s.keys[w.Key]; e != nil {
					e.removeWritesBy(id)
				}
			}
			for _, r := range rec.Meta.ReadSet {
				if e := s.keys[r.Key]; e != nil {
					e.removeReadersBy(id)
				}
			}
		}
	}
	return true
}

// RemovePrepared withdraws a prepared transaction entirely (Algorithm 1
// line 17: a replica that votes abort after dependency resolution removes
// the transaction from the prepared set). No-op unless id is prepared.
func (s *Store) RemovePrepared(id types.TxID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.txns[id]
	if rec == nil || rec.Status != StatusPrepared {
		return
	}
	if rec.Meta != nil {
		for _, w := range rec.Meta.WriteSet {
			if e := s.keys[w.Key]; e != nil {
				e.removeWritesBy(id)
			}
		}
		for _, r := range rec.Meta.ReadSet {
			if e := s.keys[r.Key]; e != nil {
				e.removeReadersBy(id)
			}
		}
	}
	delete(s.txns, id)
}

// Tx returns the record for id, or nil.
func (s *Store) Tx(id types.TxID) *TxRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txns[id]
}

// TxStatusOf returns the lifecycle status of id.
func (s *Store) TxStatusOf(id types.TxID) TxStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec := s.txns[id]; rec != nil {
		return rec.Status
	}
	return StatusUnknown
}

// LatestCommitted returns the newest committed version of key, for
// debugging and example tooling.
func (s *Store) LatestCommitted(k string) (types.Timestamp, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.keys[k]
	if e == nil {
		return types.Timestamp{}, nil, false
	}
	for i := len(e.writes) - 1; i >= 0; i-- {
		if e.writes[i].committed {
			return e.writes[i].ver, e.writes[i].value, true
		}
	}
	return types.Timestamp{}, nil, false
}

// GC discards committed versions, reader records and RTS entries strictly
// older than the watermark, keeping at least the newest committed version
// at or below it per key. Prepared writes are never collected. Returns the
// number of records dropped.
func (s *Store) GC(watermark types.Timestamp) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for _, e := range s.keys {
		// Find the newest committed version ≤ watermark; keep it.
		keepIdx := -1
		for i := len(e.writes) - 1; i >= 0; i-- {
			if e.writes[i].committed && !watermark.Less(e.writes[i].ver) {
				keepIdx = i
				break
			}
		}
		if keepIdx > 0 {
			out := e.writes[:0]
			for i, w := range e.writes {
				if i < keepIdx && w.committed && w.ver.Less(e.writes[keepIdx].ver) {
					dropped++
					continue
				}
				out = append(out, w)
			}
			e.writes = out
		}
		rd := e.readers[:0]
		for _, r := range e.readers {
			if r.readerTs.Less(watermark) {
				dropped++
				continue
			}
			rd = append(rd, r)
		}
		e.readers = rd
		for ts := range e.rts {
			if ts.Less(watermark) {
				delete(e.rts, ts)
				dropped++
			}
		}
	}
	return dropped
}

// Stats reports store sizes for monitoring.
type Stats struct {
	Keys      int
	Versions  int
	Readers   int
	RTS       int
	Txns      int
	Prepared  int
	Committed int
	Aborted   int
}

// StatsSnapshot returns current sizes.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st Stats
	st.Keys = len(s.keys)
	for _, e := range s.keys {
		st.Versions += len(e.writes)
		st.Readers += len(e.readers)
		st.RTS += len(e.rts)
	}
	st.Txns = len(s.txns)
	for _, r := range s.txns {
		switch r.Status {
		case StatusPrepared:
			st.Prepared++
		case StatusCommitted:
			st.Committed++
		case StatusAborted:
			st.Aborted++
		}
	}
	return st
}
