package store

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

// TestGCRecomputesMaxRTS is the regression test for the stale-maxRTS GC
// bug: GC deleted RTS entries from e.rts but left e.maxRTS at the
// collected read's timestamp, so the coarse line-12 filter in
// CheckAndPrepare kept aborting every writer below a read timestamp that
// no longer existed. (Same class as the dropRTS fix from the PR-3
// review, on the GC path.)
func TestGCRecomputesMaxRTS(t *testing.T) {
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	// An ongoing read at ts 100 raises maxRTS to 100.
	s.Read("x", ts(100, 1))
	// The read's transaction dies; much later, GC passes above it.
	if dropped := s.GC(ts(200, 0)); dropped == 0 {
		t.Fatal("GC did not collect the RTS entry")
	}
	// A writer below the collected read timestamp must now be admitted:
	// no live read exists for it to invalidate. Before the fix maxRTS
	// stayed 100 forever and this prepare aborted.
	m := meta(ts(50, 2), nil, map[string]string{"x": "v50"})
	if res := s.CheckAndPrepare(m, m.ID()); res.Outcome != CheckOK {
		t.Fatalf("writer below collected RTS aborted: %v (stale maxRTS)", res.Outcome)
	}
}

// TestGCPartialRTSKeepsMax covers the other half: when only some RTS
// entries fall below the watermark, the recomputed maxRTS must still
// dominate the survivors.
func TestGCPartialRTSKeepsMax(t *testing.T) {
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	s.Read("x", ts(100, 1))
	s.Read("x", ts(300, 1))
	s.GC(ts(200, 0)) // collects the 100 read, keeps the 300 read
	// A writer below the surviving read must still be refused.
	m := meta(ts(250, 2), nil, map[string]string{"x": "v"})
	if res := s.CheckAndPrepare(m, m.ID()); res.Outcome != CheckAbort {
		t.Fatalf("writer below surviving RTS admitted: %v", res.Outcome)
	}
}

// TestGCCollectsFinalizedTxns is the regression test for the unbounded
// transaction table: GC never touched s.txns, so finalized records
// accumulated forever under sustained load. Collected records must be
// counted in the returned dropped total, and writers of still-live
// versions must be retained (Read serves their metadata and cert).
func TestGCCollectsFinalizedTxns(t *testing.T) {
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	var ids []types.TxID
	for i := uint64(1); i <= 5; i++ {
		m := meta(ts(i*10, 1), nil, map[string]string{"x": fmt.Sprintf("v%d", i)})
		id := mustPrepare(t, s, m)
		s.Finalize(id, m, types.DecisionCommit, nil)
		ids = append(ids, id)
	}
	// An aborted transaction below the watermark is collectable too.
	ma := meta(ts(15, 2), nil, map[string]string{"x": "dead"})
	mustPrepare(t, s, ma)
	s.Finalize(ma.ID(), ma, types.DecisionAbort, nil)

	before := s.StatsSnapshot().Txns
	dropped := s.GC(ts(45, 0))
	after := s.StatsSnapshot().Txns
	if after >= before {
		t.Fatalf("txns table did not shrink: %d -> %d (dropped=%d)", before, after, dropped)
	}
	// v1..v3's versions are gone (v4 is the kept newest ≤ watermark), so
	// their records go; the abort goes; v4 and v5 still write live
	// versions and must stay.
	for i, id := range ids {
		_, ok := s.Tx(id)
		wantLive := i >= 3 // ids[3]=v4, ids[4]=v5
		if ok != wantLive {
			t.Fatalf("tx v%d: present=%v, want %v", i+1, ok, wantLive)
		}
	}
	if _, ok := s.Tx(ma.ID()); ok {
		t.Fatal("aborted tx below watermark survived GC")
	}
	// The retained writer still backs reads with metadata.
	r := s.Read("x", ts(100, 9))
	if r.Committed == nil || r.Committed.WriterMeta == nil {
		t.Fatal("live committed version lost its writer record")
	}
	if dropped < 4 { // ≥3 versions + ≥3 txns + abort bookkeeping
		t.Fatalf("dropped=%d suspiciously low", dropped)
	}
}

// TestSnapshotRestoreRoundTrip: a store rebuilt from its snapshot serves
// identical reads, conflict checks, and transaction lookups.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	s.ApplyGenesis("y", []byte("w0"))
	// Committed write on x.
	mc := meta(ts(10, 1), nil, map[string]string{"x": "v10"})
	mustPrepare(t, s, mc)
	s.Finalize(mc.ID(), mc, types.DecisionCommit, nil)
	// Prepared (undecided) write on y that also read x.
	mp := meta(ts(20, 2), map[string]types.Timestamp{"x": ts(10, 1)}, map[string]string{"y": "w20"})
	mustPrepare(t, s, mp)
	s.SetRTSFloor(ts(7, 0))

	snap := s.Snapshot(nil)
	snap = append(snap, 0xAA, 0xBB) // callers append their own sections

	s2 := New()
	rest, maxTs, err := s2.Restore(snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(rest) != 2 || rest[0] != 0xAA {
		t.Fatalf("rest = %x", rest)
	}
	if maxTs != ts(20, 2) {
		t.Fatalf("maxTs = %v, want %v", maxTs, ts(20, 2))
	}

	// Reads match.
	r := s2.Read("x", ts(15, 3))
	if r.Committed == nil || string(r.Committed.Value) != "v10" || r.Committed.WriterMeta == nil {
		t.Fatalf("restored committed read wrong: %+v", r.Committed)
	}
	rp := s2.Read("y", ts(30, 3))
	if rp.Prepared == nil || string(rp.Prepared.Value) != "w20" {
		t.Fatalf("restored prepared read wrong: %+v", rp.Prepared)
	}
	// The prepared transaction is still prepared; the committed one
	// committed.
	if s2.TxStatusOf(mp.ID()) != StatusPrepared || s2.TxStatusOf(mc.ID()) != StatusCommitted {
		t.Fatal("restored statuses wrong")
	}
	// Reader records survived: a write invalidating mp's read of x must
	// abort, exactly as on the original store.
	mw := meta(ts(15, 4), nil, map[string]string{"x": "invalidates"})
	if res := s2.CheckAndPrepare(mw, mw.ID()); res.Outcome != CheckAbort {
		t.Fatalf("restored reader record not enforced: %v", res.Outcome)
	}
	// The RTS floor survived: writers below it abort even with no RTS.
	mf := meta(ts(5, 5), nil, map[string]string{"zz": "below-floor"})
	if res := s2.CheckAndPrepare(mf, mf.ID()); res.Outcome != CheckAbort {
		t.Fatalf("restored RTS floor not enforced: %v", res.Outcome)
	}
	// Finalizing the restored prepared transaction works as usual.
	if !s2.Finalize(mp.ID(), mp, types.DecisionCommit, nil) {
		t.Fatal("finalize after restore did not apply")
	}
	if v, _, ok := s2.LatestCommitted("y"); !ok || v != ts(20, 2) {
		t.Fatal("commit after restore lost")
	}
}

// TestSnapshotRestoreTruncated: a torn snapshot must error, not build a
// half store.
func TestSnapshotRestoreTruncated(t *testing.T) {
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	m := meta(ts(10, 1), nil, map[string]string{"x": "v10"})
	mustPrepare(t, s, m)
	snap := s.Snapshot(nil)
	for _, cut := range []int{1, len(snap) / 2, len(snap) - 1} {
		if _, _, err := New().Restore(snap[:cut]); err == nil {
			t.Fatalf("Restore accepted %d of %d bytes", cut, len(snap))
		}
	}
}

// TestRestorePrepared: direct reinstatement installs writes and reader
// records without re-running the check, and is idempotent.
func TestRestorePrepared(t *testing.T) {
	s := New()
	s.ApplyGenesis("x", []byte("v0"))
	m := meta(ts(10, 1), map[string]types.Timestamp{"x": ts(0, 0)}, map[string]string{"y": "v10"})
	id := m.ID()
	if !s.RestorePrepared(m, id) {
		t.Fatal("RestorePrepared refused a fresh transaction")
	}
	if s.RestorePrepared(m, id) {
		t.Fatal("RestorePrepared not idempotent")
	}
	if s.TxStatusOf(id) != StatusPrepared {
		t.Fatal("status not prepared")
	}
	r := s.Read("y", ts(20, 2))
	if r.Prepared == nil || string(r.Prepared.Value) != "v10" {
		t.Fatal("reinstated prepared write invisible")
	}
	// The reinstated reader record guards x.
	mw := meta(ts(5, 3), nil, map[string]string{"x": "conflict"})
	if res := s.CheckAndPrepare(mw, mw.ID()); res.Outcome != CheckAbort {
		t.Fatalf("reinstated reader not enforced: %v", res.Outcome)
	}
}
