// Command basil-bench regenerates the paper's evaluation tables and
// figures (§6) as text rows. Each experiment id matches a figure; see
// docs/benchmarking.md for the experiment index and recorded
// paper-vs-measured results.
//
// Usage:
//
//	basil-bench -experiment all -scale quick
//	basil-bench -experiment fig4 -scale full
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/benchharness"
	"repro/internal/scenario"
)

func main() {
	exp := flag.String("experiment", "all",
		"experiment id: fig4, fig5a, fig5b, fig5c, fig6a, fig6b, fig7a, fig7b, latency, rates, wire, parallel, durability, checkpoint, metrics, admission, trace, scenarios, all")
	scaleName := flag.String("scale", "quick", "quick or full")
	seed := flag.Int64("seed", 1, "scenario seed (scenarios experiment); every run reproduces from it")
	jsonPath := flag.String("json", "", "write the scenarios experiment's verdicts to this JSON file")
	flag.Parse()

	var scale benchharness.Scale
	switch *scaleName {
	case "quick":
		scale = benchharness.Quick()
	case "full":
		scale = benchharness.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scaleName)
		os.Exit(2)
	}

	run := func(id string) bool {
		want := *exp == "all" || strings.EqualFold(*exp, id)
		if want {
			fmt.Printf("running %s ...\n", id)
		}
		return want
	}

	out := os.Stdout
	any := false
	if run("fig4") {
		any = true
		tput, lat := benchharness.Fig4(scale)
		tput.Render(out)
		lat.Render(out)
	}
	if run("fig5a") {
		any = true
		t := benchharness.Fig5a(scale)
		t.Render(out)
	}
	if run("fig5b") {
		any = true
		t := benchharness.Fig5b(scale)
		t.Render(out)
	}
	if run("fig5c") {
		any = true
		t := benchharness.Fig5c(scale)
		t.Render(out)
	}
	if run("fig6a") {
		any = true
		t := benchharness.Fig6a(scale)
		t.Render(out)
	}
	if run("fig6b") {
		any = true
		t := benchharness.Fig6b(scale)
		t.Render(out)
	}
	if run("fig7a") {
		any = true
		t := benchharness.Fig7(scale, false)
		t.Render(out)
	}
	if run("fig7b") {
		any = true
		t := benchharness.Fig7(scale, true)
		t.Render(out)
	}
	if run("latency") {
		any = true
		t := benchharness.FigLatency(scale, 500*time.Microsecond)
		t.Render(out)
	}
	if run("rates") {
		any = true
		t := benchharness.CommitRates(scale)
		t.Render(out)
	}
	if run("wire") {
		any = true
		t := benchharness.FigWire(scale)
		t.Render(out)
		bt := benchharness.FigBroadcast(scale)
		bt.Render(out)
	}
	if run("parallel") {
		any = true
		t := benchharness.FigParallel(scale)
		t.Render(out)
	}
	if run("durability") {
		any = true
		t := benchharness.FigDurability(scale)
		t.Render(out)
	}
	if run("checkpoint") {
		any = true
		t := benchharness.FigCheckpoint(scale)
		t.Render(out)
	}
	if run("metrics") {
		any = true
		t := benchharness.FigMetrics(scale)
		t.Render(out)
	}
	if run("admission") {
		any = true
		t := benchharness.FigAdmission(scale)
		t.Render(out)
	}
	if run("trace") {
		any = true
		stages, over := benchharness.FigTrace(scale)
		stages.Render(out)
		over.Render(out)
	}
	if strings.EqualFold(*exp, "scenarios") {
		// Not part of "all": the scenario matrix is a minute-long chaos
		// suite with its own verdict output, run deliberately.
		any = true
		fmt.Printf("running scenarios (seed %d) ...\n", *seed)
		results, rep, err := scenario.RunMatrix(scenario.Matrix(), *seed, scenario.DefaultTuning())
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenarios: %v\n", err)
			os.Exit(1)
		}
		t := scenario.FigScenarios(results)
		t.Render(out)
		for _, r := range results {
			if !r.Verdict.Pass {
				for _, c := range r.Verdict.Checks {
					if !c.Ok {
						fmt.Fprintf(out, "  FAIL %s/%s: %s (reproduce: -experiment scenarios -seed %d)\n",
							r.Name, c.Name, c.Detail, r.Seed)
					}
				}
			}
		}
		if *jsonPath != "" {
			if err := scenario.WriteJSON(*jsonPath, rep); err != nil {
				fmt.Fprintf(os.Stderr, "scenarios: write %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
