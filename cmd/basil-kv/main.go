// Command basil-kv is an interactive client for a TCP Basil deployment
// started with basil-server. It reads simple commands from stdin:
//
//	get <key>
//	put <key> <value>
//	txn <key1>=<val1> <key2>=<val2> ...   (atomic multi-key write)
//	quit
//
// The -peers flag takes the same route list as basil-server; the client
// listens on an ephemeral port that it registers with its own address
// implicitly (outbound replies use the same connection book).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/client"
	"repro/internal/cryptoutil"
	"repro/internal/quorum"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	f := flag.Int("f", 1, "per-shard fault threshold (n = 5f+1)")
	shards := flag.Int("shards", 1, "number of shards")
	listen := flag.String("listen", "127.0.0.1:0", "client listen address for replies")
	peers := flag.String("peers", "", "comma-separated shard:index=host:port routes")
	seed := flag.Int64("seed", 1, "registry key seed (must match the servers)")
	id := flag.Int("id", 1000, "client id (unique per client)")
	traceSample := flag.Float64("trace-sample", -1, "transaction tracing sample probability in [0,1]; sampled contexts ride the wire, so replicas started with -trace-sample serve the full span tree at /traces on their admin endpoints (negative = tracing off)")
	flag.Parse()

	book := make(map[transport.Addr]string)
	for _, entry := range strings.Split(*peers, ",") {
		if entry == "" {
			continue
		}
		kv := strings.SplitN(entry, "=", 2)
		if len(kv) != 2 {
			log.Fatalf("bad peer entry %q", entry)
		}
		var sh, idx int
		if _, err := fmt.Sscanf(kv[0], "%d:%d", &sh, &idx); err != nil {
			log.Fatalf("bad peer entry %q: %v", entry, err)
		}
		book[transport.ReplicaAddr(int32(sh), int32(idx))] = kv[1]
	}

	var tracer *trace.Tracer
	if *traceSample >= 0 {
		tracer = trace.New(trace.Options{SampleRate: *traceSample})
	}

	net, err := transport.NewTCPOpts(*listen, book, transport.TCPOptions{Tracer: tracer})
	if err != nil {
		log.Fatalf("transport: %v", err)
	}
	defer net.Close()

	n := 5**f + 1
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, *shards*n, *seed)
	nshards := int32(*shards)
	c := client.New(client.Config{
		ID: int32(*id), F: *f, NumShards: nshards,
		ShardOf: func(key string) int32 {
			var h uint32 = 2166136261
			for i := 0; i < len(key); i++ {
				h = (h ^ uint32(key[i])) * 16777619
			}
			return int32(h % uint32(nshards))
		},
		Registry: reg,
		SignerOf: quorum.SignerOf(func(s, i int32) int32 { return s*int32(n) + i }),
		Net:      net,
		Tracer:   tracer,
	})

	fmt.Println("basil-kv: connected. commands: get <k> | put <k> <v> | txn k=v ... | quit")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			tx := c.Begin()
			v, err := tx.Read(fields[1])
			tx.Abort()
			if err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			fmt.Printf("%q\n", v)
		case "put":
			if len(fields) != 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			tx := c.Begin()
			tx.Write(fields[1], []byte(fields[2]))
			if err := tx.Commit(); err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			fmt.Println("ok")
		case "txn":
			tx := c.Begin()
			ok := true
			for _, kv := range fields[1:] {
				parts := strings.SplitN(kv, "=", 2)
				if len(parts) != 2 {
					fmt.Printf("bad pair %q\n", kv)
					ok = false
					break
				}
				tx.Write(parts[0], []byte(parts[1]))
			}
			if !ok {
				tx.Abort()
				continue
			}
			if err := tx.Commit(); err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			fmt.Println("ok")
		default:
			fmt.Println("commands: get | put | txn | quit")
		}
	}
}
