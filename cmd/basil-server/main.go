// Command basil-server runs Basil replicas over TCP for a real
// multi-process deployment. A deployment is described by a topology:
// shards, the fault threshold f, and one host:port per replica. Each
// server process hosts the replicas whose host matches -listen.
//
// Example (single machine, one shard, f=1 → 6 replicas in 6 processes):
//
//	for i in $(seq 0 5); do
//	  basil-server -f 1 -shards 1 -replica 0:$i -listen 127.0.0.1:$((7000+i)) \
//	    -peers "$(python -c 'print(",".join(f"0:{j}=127.0.0.1:{7000+j}" for j in range(6)))')" &
//	done
//
// Keys are deterministic from -seed, so all processes agree on the
// registry without a PKI exchange (a real deployment would distribute
// public keys instead; see README).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/replica"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	f := flag.Int("f", 1, "per-shard fault threshold (n = 5f+1)")
	shards := flag.Int("shards", 1, "number of shards")
	which := flag.String("replica", "0:0", "replica to host, as shard:index")
	listen := flag.String("listen", "127.0.0.1:7000", "listen address")
	peers := flag.String("peers", "", "comma-separated shard:index=host:port routes for all replicas")
	seed := flag.Int64("seed", 1, "registry key seed (must match across all nodes)")
	batch := flag.Int("batch", 16, "reply signature batch size")
	maxFrame := flag.Int("maxframe", 16<<20, "largest wire frame in bytes, sent or accepted; must be identical on every node of the deployment (a frame one node sends but another rejects kills the connection)")
	verifyWorkers := flag.Int("verify-workers", 0, "ingest worker pool size: signature verification and message handling run concurrently on this many workers (0 = GOMAXPROCS, 1 = serial message loop)")
	stripes := flag.Int("stripes", 0, "store lock-stripe count; prepares on disjoint key stripes run in parallel (0 = default, 1 = single global key lock)")
	dataDir := flag.String("data-dir", "", "durability directory: stage-1 votes and logged decisions hit a write-ahead log here before any reply, and a restarted server rejoins with its promises intact (empty = in-memory only)")
	walWindow := flag.Duration("wal-window", 0, "WAL group-commit window; concurrent prepares within it share one fsync (0 = default 200µs)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "checkpoint cadence with -data-dir: GC below a clock-derived watermark and snapshot, bounding log and memory growth (0 = never)")
	adminAddr := flag.String("admin-addr", "", "admin HTTP listen address serving /metrics (Prometheus), /stats (JSON) and /healthz (empty = no admin endpoint)")
	maxConns := flag.Int("max-conns", 0, "maximum concurrent inbound TCP connections; further accepts are closed immediately (0 = unlimited)")
	inflight := flag.Int("inflight", 0, "global cap on frames queued across all outbound connections; beyond it sends drop and count in basil_net_frames_dropped_overflow_total (0 = unlimited)")
	dispatchQueue := flag.Int("dispatch-queue", 0, "replica admission cap: messages admitted but not yet processed; arrivals beyond it get an explicit Overloaded{RetryAfter} reply (0 = default 1024, negative = admission disabled)")
	traceSample := flag.Float64("trace-sample", -1, "transaction tracing sample probability in [0,1]; transactions that hit a shed, recovery or fallback are always captured regardless of the rate; span trees served at /traces and /traces/slow on -admin-addr (negative = tracing off)")
	flag.Parse()

	shard, index, err := parseReplica(*which)
	if err != nil {
		log.Fatalf("bad -replica: %v", err)
	}
	book, err := parseBook(*peers)
	if err != nil {
		log.Fatalf("bad -peers: %v", err)
	}

	var tracer *trace.Tracer
	if *traceSample >= 0 {
		tracer = trace.New(trace.Options{SampleRate: *traceSample})
	}

	mreg := metrics.NewRegistry()
	net, err := transport.NewTCPOpts(*listen, book, transport.TCPOptions{
		MaxFrame:    *maxFrame,
		Metrics:     mreg,
		MaxConns:    *maxConns,
		MaxInflight: *inflight,
		Tracer:      tracer,
	})
	if err != nil {
		log.Fatalf("transport: %v", err)
	}
	defer net.Close()

	n := 5**f + 1
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, *shards*n, *seed)
	signerOf := quorum.SignerOf(func(s, i int32) int32 { return s*int32(n) + i })

	r, err := replica.Restore(replica.Config{
		Shard: shard, Index: index, F: *f,
		DeltaMicros:     60_000_000,
		BatchSize:       *batch,
		VerifyWorkers:   *verifyWorkers,
		Stripes:         *stripes,
		WALFlushDelay:   *walWindow,
		CheckpointEvery: *ckptEvery,
		Registry:        reg,
		SignerID:        signerOf(shard, index),
		SignerOf:        signerOf,
		Net:             net,
		Metrics:         mreg,
		DispatchQueue:   *dispatchQueue,
		Tracer:          tracer,
	}, *dataDir)
	if err != nil {
		log.Fatalf("restore %s: %v", *dataDir, err)
	}
	defer r.Close()

	if *adminAddr != "" {
		// The flight recorder is always live (it feeds the mute dump), so
		// /debug/flightrec is served whenever there is an admin endpoint;
		// the span-tree routes need a tracer.
		extra := []metrics.Route{
			{Pattern: "/debug/flightrec", Handler: trace.FlightHandler(r.FlightRecorder())},
		}
		routes := "/metrics, /stats, /healthz, /debug/flightrec"
		if tracer != nil {
			extra = append(extra,
				metrics.Route{Pattern: "/traces", Handler: trace.TracesHandler(tracer)},
				metrics.Route{Pattern: "/traces/slow", Handler: trace.SlowHandler(tracer)},
			)
			routes += ", /traces, /traces/slow"
		}
		admin, err := metrics.StartAdmin(*adminAddr, mreg, r.Health, extra...)
		if err != nil {
			log.Fatalf("admin: %v", err)
		}
		defer admin.Close()
		fmt.Printf("basil-server: admin endpoint on http://%s (%s)\n", admin.Addr(), routes)
	}

	durable := "in-memory"
	if *dataDir != "" {
		durable = "wal at " + *dataDir
	}
	fmt.Printf("basil-server: replica %d.%d listening on %s (n=%d, %d shards, %s)\n",
		shard, index, net.ListenAddr(), n, *shards, durable)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("basil-server: shutting down")
}

func parseReplica(s string) (int32, int32, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want shard:index, got %q", s)
	}
	sh, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	idx, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, err
	}
	return int32(sh), int32(idx), nil
}

func parseBook(s string) (map[transport.Addr]string, error) {
	book := make(map[transport.Addr]string)
	if s == "" {
		return book, nil
	}
	for _, entry := range strings.Split(s, ",") {
		kv := strings.SplitN(entry, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("want shard:index=host:port, got %q", entry)
		}
		sh, idx, err := parseReplica(kv[0])
		if err != nil {
			return nil, err
		}
		book[transport.ReplicaAddr(sh, idx)] = kv[1]
	}
	return book, nil
}
