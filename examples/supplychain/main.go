// Supplychain: the paper's motivating "supply chains are networks of
// independent transactions" scenario (§1). Distrustful parties — a farm, a
// factory, a carrier and a retailer — each own a shard; goods move through
// custody transfers that are interactive cross-shard transactions. The
// demo shows (i) non-conflicting transfers proceeding in parallel with no
// total order across them and (ii) end-to-end provenance adding up.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"strings"
	"sync"

	"repro/basil"
)

var parties = []string{"farm", "factory", "carrier", "retail"}

func stockKey(party, sku string) string { return party + "/stock/" + sku }
func logKey(party, sku string) string   { return party + "/log/" + sku }

func enc(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func dec(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func shardOf(key string) int32 {
	for i, p := range parties {
		if strings.HasPrefix(key, p+"/") {
			return int32(i)
		}
	}
	return 0
}

func main() {
	cluster := basil.NewCluster(basil.Options{
		F: 1, Shards: len(parties), ShardOf: shardOf,
	})
	defer cluster.Close()

	skus := []string{"wheat", "barley", "oats"}
	for _, sku := range skus {
		cluster.Load(stockKey("farm", sku), enc(100))
		for _, p := range parties[1:] {
			cluster.Load(stockKey(p, sku), enc(0))
		}
		for _, p := range parties {
			cluster.Load(logKey(p, sku), enc(0))
		}
	}

	// transfer moves qty units of sku between two parties atomically,
	// updating both custody records and both audit logs — a 4-key,
	// 2-shard interactive transaction.
	transfer := func(c *basil.Client, from, to, sku string, qty uint64) error {
		return c.Run(func(tx *basil.Txn) error {
			src, err := tx.Read(stockKey(from, sku))
			if err != nil {
				return err
			}
			if dec(src) < qty {
				return nil // out of stock: no-op
			}
			dst, err := tx.Read(stockKey(to, sku))
			if err != nil {
				return err
			}
			slog, err := tx.Read(logKey(from, sku))
			if err != nil {
				return err
			}
			dlog, err := tx.Read(logKey(to, sku))
			if err != nil {
				return err
			}
			tx.Write(stockKey(from, sku), enc(dec(src)-qty))
			tx.Write(stockKey(to, sku), enc(dec(dst)+qty))
			tx.Write(logKey(from, sku), enc(dec(slog)+qty))
			tx.Write(logKey(to, sku), enc(dec(dlog)+qty))
			return nil
		})
	}

	// Each SKU's chain runs concurrently: logically independent flows
	// never wait on one another (the leaderless, partial-order win).
	var wg sync.WaitGroup
	for _, sku := range skus {
		client := cluster.NewClient()
		wg.Add(1)
		go func(sku string) {
			defer wg.Done()
			for hop := 0; hop+1 < len(parties); hop++ {
				for batch := 0; batch < 5; batch++ {
					if err := transfer(client, parties[hop], parties[hop+1], sku, 20); err != nil {
						log.Fatalf("%s hop %d: %v", sku, hop, err)
					}
				}
			}
		}(sku)
	}
	wg.Wait()

	// Provenance audit: all 100 units of each SKU must be accounted for.
	auditor := cluster.NewClient()
	for _, sku := range skus {
		tx := auditor.Begin()
		var total uint64
		for _, p := range parties {
			v, err := tx.Read(stockKey(p, sku))
			if err != nil {
				log.Fatalf("audit: %v", err)
			}
			total += dec(v)
		}
		retail, _ := tx.Read(stockKey("retail", sku))
		tx.Abort()
		fmt.Printf("%-7s total=%d retail=%d\n", sku, total, dec(retail))
		if total != 100 {
			log.Fatalf("%s: custody audit failed (total %d != 100)", sku, total)
		}
	}
	fmt.Println("provenance audit passed: every unit accounted for")
}
