// Quickstart: start a single-shard Basil cluster (n = 5f+1 = 6 replicas),
// run one read-modify-write transaction, and read the result back.
package main

import (
	"fmt"
	"log"

	"repro/basil"
)

func main() {
	cluster := basil.NewCluster(basil.Options{F: 1, Shards: 1})
	defer cluster.Close()

	// Load the initial state (genesis versions, outside the protocol).
	cluster.Load("greeting", []byte("hello"))

	client := cluster.NewClient()

	// Interactive transaction: read, compute, write, commit. Run retries
	// serialization aborts automatically.
	err := client.Run(func(tx *basil.Txn) error {
		v, err := tx.Read("greeting")
		if err != nil {
			return err
		}
		tx.Write("greeting", append(v, []byte(", basil")...))
		return nil
	})
	if err != nil {
		log.Fatalf("transaction failed: %v", err)
	}

	// Read it back in a fresh transaction.
	tx := client.Begin()
	v, err := tx.Read("greeting")
	if err != nil {
		log.Fatalf("read back: %v", err)
	}
	tx.Abort() // read-only; no need to commit

	fmt.Printf("greeting = %q\n", v)
	st := client.Stats()
	fmt.Printf("fast-path commits: %d, slow-path: %d\n",
		st.FastPathTaken.Load(), st.SlowPathTaken.Load())
}
