// Bank: a consortium-payments example in the spirit of the paper's
// introduction — mutually distrustful banks sharing a BFT ledger without a
// central clearing house. Each bank's accounts live on the shared Basil
// store; transfers are serializable transactions, and the demo verifies
// conservation of money at the end even with concurrent transfers.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/basil"
)

const (
	banks           = 3
	accountsPerBank = 20
	initialBalance  = 1_000
	transfers       = 120
)

func accountKey(bank, acct int) string { return fmt.Sprintf("bank%d/acct%d", bank, acct) }

func enc(v int64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(v))
	return b
}

func dec(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func main() {
	// One shard per bank: cross-bank payments are cross-shard
	// transactions committed atomically by Basil's client-driven 2PC.
	cluster := basil.NewCluster(basil.Options{
		F: 1, Shards: banks,
		ShardOf: func(key string) int32 { return int32(key[4] - '0') },
	})
	defer cluster.Close()

	for b := 0; b < banks; b++ {
		for a := 0; a < accountsPerBank; a++ {
			cluster.Load(accountKey(b, a), enc(initialBalance))
		}
	}

	// Each bank runs its own client (its own signing identity and its own
	// transactions) — Basil is leaderless, so no bank is privileged.
	var wg sync.WaitGroup
	var rejected sync.Map
	for b := 0; b < banks; b++ {
		client := cluster.NewClient()
		rng := rand.New(rand.NewSource(int64(b) + 1))
		wg.Add(1)
		go func(bank int) {
			defer wg.Done()
			for i := 0; i < transfers/banks; i++ {
				fromA := rng.Intn(accountsPerBank)
				toBank := rng.Intn(banks)
				toA := rng.Intn(accountsPerBank)
				if toBank == bank && toA == fromA {
					continue
				}
				amount := int64(1 + rng.Intn(50))
				err := client.Run(func(tx *basil.Txn) error {
					src, err := tx.Read(accountKey(bank, fromA))
					if err != nil {
						return err
					}
					if dec(src) < amount {
						rejected.Store(fmt.Sprintf("%d/%d/%d", bank, fromA, i), true)
						return nil // insufficient funds: no-op commit
					}
					dst, err := tx.Read(accountKey(toBank, toA))
					if err != nil {
						return err
					}
					tx.Write(accountKey(bank, fromA), enc(dec(src)-amount))
					tx.Write(accountKey(toBank, toA), enc(dec(dst)+amount))
					return nil
				})
				if err != nil {
					log.Fatalf("bank %d transfer failed: %v", bank, err)
				}
			}
		}(b)
	}
	wg.Wait()

	// Audit: total money must be conserved (serializability at work).
	auditor := cluster.NewClient()
	var total int64
	tx := auditor.Begin()
	for b := 0; b < banks; b++ {
		for a := 0; a < accountsPerBank; a++ {
			v, err := tx.Read(accountKey(b, a))
			if err != nil {
				log.Fatalf("audit read: %v", err)
			}
			total += dec(v)
		}
	}
	tx.Abort()

	want := int64(banks * accountsPerBank * initialBalance)
	fmt.Printf("audited total: %d (expected %d)\n", total, want)
	if total != want {
		log.Fatal("MONEY WAS NOT CONSERVED — serializability violated")
	}
	fmt.Println("conservation holds: the consortium ledger is consistent")
}
