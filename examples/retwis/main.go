// Retwis: the paper's social-network workload (§6.1) on the public API —
// users post, follow and read timelines concurrently while the store keeps
// every interleaving serializable.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/basil"
	"repro/internal/workload"
)

func main() {
	cluster := basil.NewCluster(basil.Options{F: 1, Shards: 2, BatchSize: 8})
	defer cluster.Close()

	gen := workload.NewRetwis(workload.RetwisConfig{Users: 500})
	gen.Populate(cluster.Load)

	const actors = 4
	const actionsPerActor = 40
	var wg sync.WaitGroup
	var committed, aborted sync.Map
	for a := 0; a < actors; a++ {
		client := cluster.NewClient()
		rng := rand.New(rand.NewSource(int64(a) + 7))
		wg.Add(1)
		go func(actor int) {
			defer wg.Done()
			ok, fail := 0, 0
			for i := 0; i < actionsPerActor; i++ {
				fn := gen.Next(rng)
				err := client.Run(func(tx *basil.Txn) error { return fn.Body(txShim{tx}) })
				if err != nil {
					fail++
					continue
				}
				ok++
			}
			committed.Store(actor, ok)
			aborted.Store(actor, fail)
		}(a)
	}
	wg.Wait()

	total := 0
	committed.Range(func(_, v any) bool { total += v.(int); return true })
	fmt.Printf("retwis: %d social actions committed across %d concurrent actors\n", total, actors)
	if total == 0 {
		log.Fatal("no actions committed")
	}
}

// txShim adapts basil.Txn to the workload.Tx interface.
type txShim struct{ t *basil.Txn }

func (s txShim) Read(k string) ([]byte, error) { return s.t.Read(k) }
func (s txShim) Write(k string, v []byte)      { s.t.Write(k, v) }
