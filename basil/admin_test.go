package basil_test

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/replica"
	"repro/internal/trace"
	"repro/internal/transport"
)

// TestAdminEndpointE2E is the operational loop basil-server -admin-addr
// promises: start a real TCP shard whose first replica shares one
// metrics registry with its transport, serve the admin endpoints over
// HTTP, run a transaction through the cluster, and watch the counters
// move in /metrics and /stats while /healthz tracks the replica
// lifecycle (serving -> closed).
func TestAdminEndpointE2E(t *testing.T) {
	const f = 1
	n := 5*f + 1
	book := map[transport.Addr]string{}
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, n, 1)
	signerOf := quorum.SignerOf(func(s, i int32) int32 { return i })

	// Replica 0 is the "server process" under observation: its transport
	// and replica register on the same metrics registry, exactly as
	// cmd/basil-server wires them.
	mreg := metrics.NewRegistry()
	var nets []*transport.TCP
	for i := 0; i < n; i++ {
		opts := transport.TCPOptions{}
		if i == 0 {
			opts.Metrics = mreg
		}
		tn, err := transport.NewTCPOpts("127.0.0.1:0", book, opts)
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, tn)
		book[transport.ReplicaAddr(0, int32(i))] = tn.ListenAddr()
	}
	var reps []*replica.Replica
	defer func() {
		for _, r := range reps {
			r.Close()
		}
		for _, tn := range nets {
			tn.Close()
		}
	}()
	for i := 0; i < n; i++ {
		cfg := replica.Config{
			Shard: 0, Index: int32(i), F: f,
			DeltaMicros: 60_000_000,
			Registry:    reg,
			SignerID:    int32(i),
			SignerOf:    signerOf,
			Net:         nets[i],
		}
		if i == 0 {
			cfg.Metrics = mreg
		}
		r := replica.New(cfg)
		r.LoadGenesis("acct", []byte("100"))
		reps = append(reps, r)
	}

	admin, err := metrics.StartAdmin("127.0.0.1:0", mreg, reps[0].Health)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}
	promValue := func(body, metric string) uint64 {
		t.Helper()
		m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(metric) + ` (\d+)$`).FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("metric %s not in exposition:\n%s", metric, body)
		}
		v, _ := strconv.ParseUint(m[1], 10, 64)
		return v
	}

	// Before any traffic: healthy, zero ST1s.
	if code, body := get("/healthz"); code != 200 {
		t.Fatalf("/healthz before: %d %s", code, body)
	}
	_, before := get("/metrics")
	if v := promValue(before, "basil_replica_st1_total"); v != 0 {
		t.Fatalf("st1_total before any traffic = %d", v)
	}

	// One committed read-modify-write transaction through the shard.
	clientNet, err := transport.NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer clientNet.Close()
	cl := client.New(client.Config{
		ID: 700, F: f, NumShards: 1,
		ShardOf:  func(string) int32 { return 0 },
		Registry: reg, SignerOf: signerOf, Net: clientNet,
	})
	tx := cl.Begin()
	if _, err := tx.Read("acct"); err != nil {
		t.Fatalf("read: %v", err)
	}
	tx.Write("acct", []byte("85"))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	// After the transaction the protocol, store, and wire counters must
	// all have moved.
	_, after := get("/metrics")
	// (reads fan out to only ReadWait+f of the 5f+1 replicas at a
	// rotating offset, so replica 0 need not see one — ST1, which
	// broadcasts shard-wide, is the counter that must move everywhere.)
	for _, metric := range []string{
		"basil_replica_st1_total",
		"basil_store_prepares_total",
		"basil_store_prepare_ok_total",
		`basil_net_frames_total{dir="in"}`,
		`basil_net_frames_total{dir="out"}`,
	} {
		if v := promValue(after, metric); v == 0 {
			t.Errorf("%s did not move after a committed transaction", metric)
		}
	}
	if v := promValue(after, `basil_replica_votes_total{vote="commit"}`); v == 0 {
		t.Error("no commit vote counted")
	}

	// /stats: valid JSON whose deliver-latency histogram saw the ST1.
	code, statsBody := get("/stats")
	if code != 200 {
		t.Fatalf("/stats: %d", code)
	}
	var stats struct {
		Counters []struct {
			Name  string `json:"name"`
			Value uint64 `json:"value"`
		} `json:"counters"`
		Histograms []struct {
			Name   string  `json:"name"`
			Labels string  `json:"labels"`
			Count  uint64  `json:"count"`
			P50Ms  float64 `json:"p50_ms"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(statsBody), &stats); err != nil {
		t.Fatalf("/stats not JSON: %v\n%s", err, statsBody)
	}
	sawDeliver := false
	for _, h := range stats.Histograms {
		if h.Name == "basil_replica_deliver_latency_seconds" && h.Labels == `kind="st1"` {
			sawDeliver = true
			if h.Count == 0 {
				t.Error("st1 deliver-latency histogram empty after a commit")
			}
		}
	}
	if !sawDeliver {
		t.Fatalf("no st1 deliver-latency histogram in /stats:\n%s", statsBody)
	}

	// Lifecycle: a closed replica reports unhealthy with state "closed".
	reps[0].Close()
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !regexp.MustCompile(`"closed"`).MatchString(body) {
		t.Fatalf("/healthz after close: %d %s", code, body)
	}
}

// TestAdminEndpointMethodsAndContentTypes pins the HTTP contract of every
// admin route, tracing routes included: GET answers with the right
// Content-Type; anything else is refused with 405 and an Allow header.
// All admin endpoints are read-only views — a POST reaching one is a
// client bug that must fail loudly, not be silently served.
func TestAdminEndpointMethodsAndContentTypes(t *testing.T) {
	tr := trace.New(trace.Options{SampleRate: 1})
	fr := trace.NewFlightRecorder("r0.0", 8)
	admin, err := metrics.StartAdmin("127.0.0.1:0", metrics.NewRegistry(), nil,
		metrics.Route{Pattern: "/traces", Handler: trace.TracesHandler(tr)},
		metrics.Route{Pattern: "/traces/slow", Handler: trace.SlowHandler(tr)},
		metrics.Route{Pattern: "/debug/flightrec", Handler: trace.FlightHandler(fr)},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr()

	cases := []struct{ path, wantCT string }{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/stats", "application/json"},
		{"/healthz", "application/json"},
		{"/traces", "application/json"},
		{"/traces/slow", "application/json"},
		{"/debug/flightrec", "application/json"},
	}
	for _, c := range cases {
		resp, err := http.Get(base + c.path)
		if err != nil {
			t.Fatalf("GET %s: %v", c.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", c.path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != c.wantCT {
			t.Errorf("GET %s: Content-Type %q, want %q", c.path, ct, c.wantCT)
		}

		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, _ := http.NewRequest(method, base+c.path, strings.NewReader("x"))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("%s %s: %v", method, c.path, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, c.path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
				t.Errorf("%s %s: Allow %q, want %q", method, c.path, allow, http.MethodGet)
			}
		}
	}
}
