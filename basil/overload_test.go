package basil_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/basil"
	"repro/internal/client"
)

// TestOverloadShedsExplicitlyAndKeepsHonestProgress saturates a shard past
// its admission cap with Byzantine line-rate spammers (stall-early: blast
// ST1 broadcasts, never finish) and checks the three load-shed promises:
//
//  1. honest clients make progress — every honest commit lands, and the
//     refusals they do see are explicit Overloaded replies, not hangs;
//  2. the dispatch queue never exceeds its configured cap (bounded state);
//  3. no committed write is lost — everything an honest client committed
//     is readable afterwards.
func TestOverloadShedsExplicitlyAndKeepsHonestProgress(t *testing.T) {
	const queue = 8
	cl := basil.NewCluster(basil.Options{
		F: 1, Shards: 1,
		// The admission cap must sit below the ingest pool's own task
		// buffer (workers*16): pool.Go blocks at that depth, so a larger
		// cap would turn saturation into mailbox backpressure before a
		// single explicit shed happens.
		DispatchQueue: queue,
		// Serial ingest: one worker per replica makes the signature check
		// the bottleneck, so a line-rate flood genuinely saturates intake.
		VerifyWorkers: 1,
		PhaseTimeout:  30 * time.Millisecond,
		RetryTimeout:  time.Second,
	})
	defer cl.Close()
	const honestClients, commitsEach = 2, 4
	for i := 0; i < honestClients; i++ {
		cl.Load(fmt.Sprintf("h%d", i), enc(0))
	}
	cl.Load("z", enc(0))

	// Byzantine flood: each spammer loops CommitFaulty(StallEarly), which
	// broadcasts an ST1 and returns without ever reading a vote — a pure
	// line-rate intake flood with abandoned transactions behind it.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		byz := cl.NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			inner := byz.Inner()
			for n := uint64(0); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := inner.Begin()
				tx.Write("z", enc(n))
				inner.CommitFaulty(tx, client.FaultStallEarly)
			}
		}()
	}

	// Sample the dispatch-depth gauge across the flood: it must stay at or
	// below the cap on every replica.
	var maxDepth atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < cl.ReplicaCount(); i++ {
				if d := cl.Replica(0, i).DispatchDepth(); d > maxDepth.Load() {
					maxDepth.Store(d)
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Honest clients commit through the flood, retrying on ErrTimeout —
	// the client's own Overloaded-driven backoff paces the retries.
	honest := make([]*basil.Client, honestClients)
	for i := range honest {
		honest[i] = cl.NewClient()
	}
	errCh := make(chan error, honestClients)
	for i, c := range honest {
		key := fmt.Sprintf("h%d", i)
		go func(c *basil.Client, key string) {
			for j := 1; j <= commitsEach; j++ {
				committed := false
				for attempt := 0; attempt < 100; attempt++ {
					tx := c.Begin()
					tx.Write(key, enc(uint64(j)))
					if err := tx.Commit(); err == nil {
						committed = true
						break
					}
				}
				if !committed {
					errCh <- fmt.Errorf("honest write %s=%d starved under the flood", key, j)
					return
				}
			}
			errCh <- nil
		}(c, key)
	}
	deadline := time.After(90 * time.Second)
	for range honest {
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("honest clients hung under overload instead of finishing")
		}
	}

	// Explicit-refusal check: admission is racy, so a lucky honest client
	// can land every frame in queue gaps and finish the loop above without
	// a single refusal. Probe the still-running flood until an Overloaded
	// reply is consumed — a refusal must be explicit, never a silent drop.
	probe := cl.NewClient()
	for end := time.Now().Add(60 * time.Second); probe.Stats().Overloads.Load() == 0; {
		if time.Now().After(end) {
			break
		}
		tx := probe.Begin()
		tx.Write("h0", enc(uint64(commitsEach))) // final value: keeps the lost-write check below valid
		_ = tx.Commit()
	}
	close(stop)
	wg.Wait()

	var shed, overloads uint64
	for i := 0; i < cl.ReplicaCount(); i++ {
		shed += cl.Replica(0, i).Stats.Shed.Load()
	}
	overloads = probe.Stats().Overloads.Load()
	for _, c := range honest {
		overloads += c.Stats().Overloads.Load()
	}
	if shed == 0 {
		t.Fatal("no message shed: the flood never saturated the admission cap")
	}
	if overloads == 0 {
		t.Fatal("honest clients were never told Overloaded — refusals were silent")
	}
	if d := maxDepth.Load(); d > queue {
		t.Fatalf("dispatch depth reached %d, cap is %d", d, queue)
	}
	t.Logf("shed=%d honest_overloads=%d max_depth=%d/%d", shed, overloads, maxDepth.Load(), queue)

	// Nothing committed was lost: the flood is over, reads must return the
	// last value each honest client committed.
	reader := cl.NewClient()
	for i := 0; i < honestClients; i++ {
		tx := reader.Begin()
		v, err := tx.Read(fmt.Sprintf("h%d", i))
		if err != nil {
			t.Fatalf("read h%d after the flood: %v", i, err)
		}
		tx.Abort()
		if dec(v) != commitsEach {
			t.Fatalf("h%d = %d after the flood, want %d (committed write lost)", i, dec(v), commitsEach)
		}
	}
}
