package basil_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/basil"
)

func enc(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func dec(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func TestSingleTransaction(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1})
	defer cl.Close()
	cl.Load("x", enc(7))

	c := cl.NewClient()
	tx := c.Begin()
	v, err := tx.Read("x")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if dec(v) != 7 {
		t.Fatalf("read x = %d, want 7", dec(v))
	}
	tx.Write("x", enc(8))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	tx2 := c.Begin()
	v, err = tx2.Read("x")
	if err != nil {
		t.Fatalf("read2: %v", err)
	}
	if dec(v) != 8 {
		t.Fatalf("read x = %d after commit, want 8", dec(v))
	}
	tx2.Abort()
}

func TestFastPathTaken(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1})
	defer cl.Close()
	cl.Load("k", enc(0))
	c := cl.NewClient()
	for i := 0; i < 5; i++ {
		tx := c.Begin()
		tx.Write("k", enc(uint64(i)))
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.FastPathTaken.Load() == 0 {
		t.Fatalf("expected fast-path commits, got 0 (slow=%d)", st.SlowPathTaken.Load())
	}
}

func TestConcurrentCounterSerializable(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1})
	defer cl.Close()
	cl.Load("ctr", enc(0))

	const workers = 4
	const perWorker = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c := cl.NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := c.Run(func(tx *basil.Txn) error {
					v, err := tx.Read("ctr")
					if err != nil {
						return err
					}
					tx.Write("ctr", enc(dec(v)+1))
					return nil
				})
				if err != nil {
					t.Errorf("worker tx: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	c := cl.NewClient()
	tx := c.Begin()
	v, err := tx.Read("ctr")
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	tx.Abort()
	if got := dec(v); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d (lost updates => serializability broken)", got, workers*perWorker)
	}
}

func TestCrossShardTransaction(t *testing.T) {
	cl := basil.NewCluster(basil.Options{
		F: 1, Shards: 3,
		ShardOf: func(key string) int32 { return int32(key[len(key)-1]-'0') % 3 },
	})
	defer cl.Close()
	cl.Load("a0", enc(100))
	cl.Load("b1", enc(50))
	cl.Load("c2", enc(10))

	c := cl.NewClient()
	err := c.Run(func(tx *basil.Txn) error {
		a, err := tx.Read("a0")
		if err != nil {
			return err
		}
		b, err := tx.Read("b1")
		if err != nil {
			return err
		}
		tx.Write("a0", enc(dec(a)-25))
		tx.Write("b1", enc(dec(b)+15))
		tx.Write("c2", enc(dec(a)+dec(b)))
		return nil
	})
	if err != nil {
		t.Fatalf("cross-shard tx: %v", err)
	}

	tx := c.Begin()
	a, _ := tx.Read("a0")
	b, _ := tx.Read("b1")
	csum, _ := tx.Read("c2")
	tx.Abort()
	if dec(a) != 75 || dec(b) != 65 || dec(csum) != 150 {
		t.Fatalf("post state a=%d b=%d c=%d, want 75 65 150", dec(a), dec(b), dec(csum))
	}
}

func TestManyKeysManyClients(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 2, BatchSize: 4})
	defer cl.Close()
	const keys = 20
	for i := 0; i < keys; i++ {
		cl.Load(fmt.Sprintf("k%d", i), enc(uint64(i)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		c := cl.NewClient()
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				src := fmt.Sprintf("k%d", (w*5+i)%keys)
				dst := fmt.Sprintf("k%d", (w*7+i+3)%keys)
				if src == dst {
					continue
				}
				err := c.Run(func(tx *basil.Txn) error {
					sv, err := tx.Read(src)
					if err != nil {
						return err
					}
					dv, err := tx.Read(dst)
					if err != nil {
						return err
					}
					tx.Write(src, enc(dec(sv)+1))
					tx.Write(dst, enc(dec(dv)+1))
					return nil
				})
				if err != nil {
					t.Errorf("tx: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestReadYourOwnWrites(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1})
	defer cl.Close()
	cl.Load("x", enc(1))
	c := cl.NewClient()
	tx := c.Begin()
	tx.Write("x", enc(42))
	v, err := tx.Read("x")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if dec(v) != 42 {
		t.Fatalf("read-your-write = %d, want 42", dec(v))
	}
	tx.Abort()
}

func TestAbortReleasesNothingCommitted(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1})
	defer cl.Close()
	cl.Load("x", enc(5))
	c := cl.NewClient()
	tx := c.Begin()
	tx.Write("x", enc(99))
	tx.Abort()

	time.Sleep(5 * time.Millisecond)
	tx2 := c.Begin()
	v, err := tx2.Read("x")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	tx2.Abort()
	if dec(v) != 5 {
		t.Fatalf("aborted write leaked: x=%d want 5", dec(v))
	}
}

func TestConflictingWritersOneAborts(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1})
	defer cl.Close()
	cl.Load("x", enc(0))

	// Two transactions read the same version then both try to write:
	// serializability demands at most one commit... in MVTSO both may
	// commit only if ordered without a conflict; with both reading the
	// old version and writing, the lower-timestamped write invalidates
	// the higher-timestamped read unless ordered correctly. Run many
	// rounds and verify the final count never exceeds the commits.
	c1 := cl.NewClient()
	c2 := cl.NewClient()
	commits := 0
	// A round may legitimately abort BOTH writers: each invalidates the
	// other, and with concurrent replica ingest the first abort's
	// writeback can still be in flight when the second transaction
	// validates. That outcome is serializable (trivially), so after the
	// ten genuinely concurrent rounds, extra rounds run in a degraded
	// settle mode (pauses around the commits so writebacks drain) until
	// something commits; what must never happen is the value outrunning
	// the commits.
	settle := time.Duration(0)
	pause := 10 * time.Millisecond
	if raceEnabled {
		pause = 60 * time.Millisecond // instrumented crypto is ~10x slower
	}
	for round := 0; round < 30 && (round < 10 || commits == 0); round++ {
		if round >= 10 {
			settle = pause
			time.Sleep(settle)
		}
		t1 := c1.Begin()
		t2 := c2.Begin()
		v1, err := t1.Read("x")
		if err != nil {
			t.Fatalf("t1 read: %v", err)
		}
		v2, err := t2.Read("x")
		if err != nil {
			t.Fatalf("t2 read: %v", err)
		}
		t1.Write("x", enc(dec(v1)+1))
		t2.Write("x", enc(dec(v2)+1))
		err1 := t1.Commit()
		if settle > 0 {
			// Degraded mode: let t1's writeback finish before t2 validates.
			time.Sleep(settle)
		}
		err2 := t2.Commit()
		if err1 == nil {
			commits++
		}
		if err2 == nil {
			commits++
		}
	}
	// Writebacks are fire-and-forget and replicas process messages
	// concurrently, so a read issued immediately after Commit may still
	// observe a prepared version of an aborted transaction speculatively
	// (the paper's eager reads). A genuine leak is permanent: if an
	// aborted write survived as a committed version the value would stay
	// too high forever, so read until the speculative state drains.
	var v []byte
	for attempt := 0; ; attempt++ {
		tx := c1.Begin()
		var err error
		v, err = tx.Read("x")
		if err != nil {
			t.Fatalf("final read: %v", err)
		}
		tx.Abort()
		if int(dec(v)) <= commits {
			break
		}
		if attempt >= 50 {
			t.Fatalf("final value %d exceeds committed increments %d", dec(v), commits)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if commits == 0 {
		t.Fatalf("no transaction ever committed")
	}
}

// TestClientLatencyHistogramsRecord drives one read-modify-write through
// a live cluster and asserts the client's latency histograms actually
// observed it. This is the end-to-end regression guard for the
// metrics-tax gating (basilvet BV005): the client only reads the clock
// when its registry is enabled, and this test pins that the enabled side
// still records read, commit, and whole-transaction samples.
func TestClientLatencyHistogramsRecord(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1})
	defer cl.Close()
	cl.Load("x", enc(1))

	c := cl.NewClient()
	tx := c.Begin()
	if _, err := tx.Read("x"); err != nil {
		t.Fatalf("read: %v", err)
	}
	tx.Write("x", enc(2))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	counts := map[string]uint64{}
	for _, h := range c.Inner().Metrics().Snapshot().Hists {
		counts[h.Name] += h.Hist.Count
	}
	for _, name := range []string{
		"basil_client_read_latency_seconds",
		"basil_client_commit_latency_seconds",
		"basil_client_txn_latency_seconds",
	} {
		if counts[name] == 0 {
			t.Errorf("%s recorded no samples after a committed transaction", name)
		}
	}
}
